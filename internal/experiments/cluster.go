package experiments

import (
	"fmt"
	"strings"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/rag"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/workload"
)

// ClusterResult is the multi-replica scale-out study (beyond the
// paper): N identical vLiteRAG node pipelines behind a front-end
// router, driven at a cluster-wide rate proportional to N. Near-flat
// attainment across N shows the composition scales; the round-robin vs
// least-loaded split isolates what routing buys under Poisson load.
type ClusterResult struct {
	Rows []ClusterRow
}

// ClusterRow is one (replicas, policy) sample.
type ClusterRow struct {
	Replicas int
	Policy   serve.Policy
	Rate     float64 // cluster-wide arrival rate
	Att      float64
	TTFTP90  time.Duration
	E2EP90   time.Duration
	MaxSkew  float64 // max over replicas of its share minus the fair share
}

// Cluster runs the scale-out study on ORCAS-1K + Qwen3-32B at 80 % of
// per-node capacity per replica.
func Cluster(cfg Config) (*ClusterResult, error) {
	w, err := WorkloadFor(dataset.Orcas1K)
	if err != nil {
		return nil, err
	}
	dep := deployments()[1]
	mu, err := rag.BareCapacity(dep.Node, dep.Model, workload.DefaultShape())
	if err != nil {
		return nil, err
	}
	perNode := round1(mu * 0.8)
	sizes := []int{1, 2, 4}
	if cfg.Quick {
		sizes = []int{1, 2}
	}
	res := &ClusterResult{}
	for _, n := range sizes {
		for _, policy := range serve.Policies() {
			if n == 1 && policy != serve.LeastLoaded {
				continue // a single replica routes identically under any policy
			}
			rate := perNode * float64(n)
			r, err := rag.RunCluster(rag.Options{
				Node: dep.Node, Model: dep.Model, W: w, Kind: rag.VLiteRAG,
				Rate: rate, Seed: cfg.Seed, Duration: runDuration(cfg.Quick),
			}, n, policy)
			if err != nil {
				return nil, fmt.Errorf("cluster x%d %s: %w", n, policy, err)
			}
			row := ClusterRow{
				Replicas: n, Policy: policy, Rate: rate,
				Att:     r.Summary.Attainment,
				TTFTP90: r.Summary.TTFT.P90,
				E2EP90:  r.Summary.E2E.P90,
			}
			fair := 1.0 / float64(n)
			for _, rep := range r.PerReplica {
				share := float64(rep.Submitted) / float64(r.Generated)
				if skew := share - fair; skew > row.MaxSkew {
					row.MaxSkew = skew
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render formats the scale-out table.
func (r *ClusterResult) Render() string {
	var b strings.Builder
	b.WriteString("Cluster scale-out: vLiteRAG x N replicas, ORCAS-1K + Qwen3-32B @ 0.8 capacity/replica\n")
	t := &table{header: []string{"replicas", "policy", "rate", "attainment", "TTFT p90", "E2E p90", "max skew"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%d", row.Replicas), string(row.Policy),
			fmt.Sprintf("%.1f", row.Rate), f2(row.Att), ms(row.TTFTP90), sec(row.E2EP90), f3(row.MaxSkew))
	}
	b.WriteString(t.String())
	return b.String()
}
