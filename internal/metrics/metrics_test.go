package metrics

import (
	"testing"
	"time"

	"vectorliterag/internal/workload"
)

func mkReq(arrival, searchStart, searchDone, llmStart, firstToken, done int64) workload.Request {
	return workload.Request{
		ArrivalAt: arrival, SearchStart: searchStart, SearchDone: searchDone,
		LLMStart: llmStart, FirstToken: firstToken, Done: done,
	}
}

func TestSummarizeBasic(t *testing.T) {
	ms := int64(time.Millisecond)
	reqs := []workload.Request{
		mkReq(0, 10*ms, 50*ms, 60*ms, 200*ms, 1000*ms), // TTFT 200ms ok
		mkReq(0, 20*ms, 80*ms, 90*ms, 500*ms, 2000*ms), // TTFT 500ms violation
		mkReq(0, 10*ms, 40*ms, 50*ms, 300*ms, 1500*ms), // TTFT 300ms ok
	}
	s := Summarize(reqs, 400*time.Millisecond, 0)
	if s.N != 3 || s.Unserved != 0 {
		t.Fatalf("N=%d unserved=%d", s.N, s.Unserved)
	}
	if want := 2.0 / 3.0; s.Attainment != want {
		t.Fatalf("attainment = %v", s.Attainment)
	}
	if s.TTFT.P50 != 300*time.Millisecond {
		t.Fatalf("TTFT p50 = %v", s.TTFT.P50)
	}
	if s.Breakdown.Queueing <= 0 || s.Breakdown.Search <= 0 || s.Breakdown.Prefill <= 0 {
		t.Fatalf("bad breakdown %+v", s.Breakdown)
	}
}

func TestSummarizeWarmupCut(t *testing.T) {
	ms := int64(time.Millisecond)
	early := mkReq(0, 1*ms, 2*ms, 3*ms, 10*ms, 20*ms)
	late := mkReq(100*ms, 101*ms, 102*ms, 103*ms, 900*ms, 1000*ms)
	s := Summarize([]workload.Request{early, late}, 500*time.Millisecond, 50*ms)
	if s.N != 1 {
		t.Fatalf("warmup cut kept %d", s.N)
	}
	if s.Attainment != 0 {
		t.Fatalf("attainment = %v, the late request violates", s.Attainment)
	}
}

func TestSummarizeUnservedCountAsViolations(t *testing.T) {
	ms := int64(time.Millisecond)
	served := mkReq(0, 1*ms, 2*ms, 3*ms, 100*ms, 200*ms)
	stuck := workload.Request{ArrivalAt: 0} // never got a first token
	s := Summarize([]workload.Request{served, stuck}, 500*time.Millisecond, 0)
	if s.N != 2 || s.Unserved != 1 {
		t.Fatalf("N=%d unserved=%d", s.N, s.Unserved)
	}
	if s.Attainment != 0.5 {
		t.Fatalf("attainment = %v, want 0.5", s.Attainment)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, time.Second, 0)
	if s.N != 0 || s.Attainment != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeAllUnserved(t *testing.T) {
	s := Summarize([]workload.Request{{ArrivalAt: 0}, {ArrivalAt: 5}}, time.Second, 0)
	if s.N != 2 || s.Unserved != 2 || s.Attainment != 0 {
		t.Fatalf("summary %+v", s)
	}
}

func TestBreakdownSumsToTTFT(t *testing.T) {
	ms := int64(time.Millisecond)
	r := mkReq(0, 30*ms, 90*ms, 100*ms, 250*ms, 900*ms)
	s := Summarize([]workload.Request{r}, time.Second, 0)
	sum := s.Breakdown.Queueing + s.Breakdown.Search + s.Breakdown.LLMWait + s.Breakdown.Prefill
	if sum != s.TTFT.Mean {
		t.Fatalf("breakdown sum %v != mean TTFT %v", sum, s.TTFT.Mean)
	}
}
