package workload

import (
	"math"
	"testing"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
)

func testWorkload(t *testing.T) *dataset.Workload {
	t.Helper()
	gc := dataset.GenConfig{NCenters: 32, PerCenter: 64, Dim: 16, PhysNList: 32, PhysNProbe: 4, Templates: 128, Seed: 1}
	w, err := dataset.Build(dataset.WikiAll, gc)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGeneratorRate(t *testing.T) {
	w := testWorkload(t)
	var sim des.Sim
	g := NewGenerator(w, 50, DefaultShape(), 3)
	count := 0
	g.Start(&sim, des.Time(60*1e9), func(r *Request) { count++ })
	sim.Run()
	// 50 rps for 60s => ~3000 arrivals; Poisson std ~ 55.
	if math.Abs(float64(count)-3000) > 300 {
		t.Fatalf("generated %d arrivals, want ~3000", count)
	}
	if g.Count() != count {
		t.Fatalf("Count() = %d, generated %d", g.Count(), count)
	}
}

func TestGeneratorStopsAtDeadline(t *testing.T) {
	w := testWorkload(t)
	var sim des.Sim
	g := NewGenerator(w, 100, DefaultShape(), 5)
	var last des.Time
	g.Start(&sim, des.Time(1e9), func(r *Request) { last = r.ArrivalAt })
	sim.Run()
	if last > 1e9 {
		t.Fatalf("arrival after deadline: %d", last)
	}
}

func TestGeneratorIDsAndQueries(t *testing.T) {
	w := testWorkload(t)
	var sim des.Sim
	g := NewGenerator(w, 200, DefaultShape(), 7)
	var reqs []*Request
	g.Start(&sim, des.Time(2*1e9), func(r *Request) { reqs = append(reqs, r) })
	sim.Run()
	seen := map[int]bool{}
	distinct := map[dataset.QueryID]bool{}
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("IDs not sequential: %d at position %d", r.ID, i)
		}
		if seen[r.ID] {
			t.Fatal("duplicate request ID")
		}
		seen[r.ID] = true
		distinct[r.Query] = true
		if r.Shape != DefaultShape() {
			t.Fatal("shape not propagated")
		}
	}
	if len(distinct) < 5 {
		t.Fatalf("only %d distinct queries sampled", len(distinct))
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	w := testWorkload(t)
	collect := func() []des.Time {
		var sim des.Sim
		g := NewGenerator(w, 100, DefaultShape(), 11)
		var at []des.Time
		g.Start(&sim, des.Time(2*1e9), func(r *Request) { at = append(at, r.ArrivalAt) })
		sim.Run()
		return at
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatal("different arrival counts across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("arrival times differ across identical runs")
		}
	}
}

func TestRequestDerivedMetrics(t *testing.T) {
	r := &Request{ArrivalAt: 100, SearchStart: 150, SearchDone: 300, LLMStart: 320, FirstToken: 500, Done: 900}
	if r.TTFT() != 400 {
		t.Fatalf("TTFT = %d", r.TTFT())
	}
	if r.E2E() != 800 {
		t.Fatalf("E2E = %d", r.E2E())
	}
	if r.QueueingDelay() != 50 {
		t.Fatalf("queueing = %d", r.QueueingDelay())
	}
	if r.SearchLatency() != 150 {
		t.Fatalf("search = %d", r.SearchLatency())
	}
}
