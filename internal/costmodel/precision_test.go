package costmodel

import (
	"testing"
	"time"

	"vectorliterag/internal/hw"
)

func TestShardScanTimeSQZero(t *testing.T) {
	g := GPUScanModel{GPU: hw.H100()}
	if got := g.ShardScanTimeSQ(0, 0); got != 0 {
		t.Fatalf("empty SQ kernel time = %v", got)
	}
}

func TestSQStreamsFasterThanPQGather(t *testing.T) {
	// The point of the codec upgrade: SQ8 codes are ~4x the bytes but the
	// gather-free streaming kernel beats the LUT-gather PQ scan even at
	// that handicap, so upgrades shorten GPU busy windows.
	g := GPUScanModel{GPU: hw.H100()}
	bytes := int64(100 << 20)
	blocks := 1024
	pq := g.ShardScanTime(bytes, blocks)
	sq := g.ShardScanTimeSQ(4*bytes, blocks)
	if sq >= pq {
		t.Fatalf("SQ scan of 4x bytes (%v) not below PQ scan (%v)", sq, pq)
	}
	// And per-block overhead is cheaper too: equal bytes, more blocks.
	if g.ShardScanTimeSQ(bytes, 2048) >= g.ShardScanTime(bytes, 2048) {
		t.Fatal("SQ per-block cost not below PQ at equal bytes")
	}
}

func TestShardScanTimeSQMonotone(t *testing.T) {
	g := GPUScanModel{GPU: hw.H100()}
	if g.ShardScanTimeSQ(2<<20, 16) >= g.ShardScanTimeSQ(64<<20, 16) {
		t.Fatal("SQ scan not monotone in bytes")
	}
	if g.ShardScanTimeSQ(2<<20, 16) >= g.ShardScanTimeSQ(2<<20, 512) {
		t.Fatal("SQ scan not monotone in blocks")
	}
}

func TestNVMeScanTimeZeroAndValidation(t *testing.T) {
	n := hw.DataCenterNVMe()
	if NVMeScanTime(n, 0, 0) != 0 || NVMeScanTime(n, 1<<20, 0) != 0 || NVMeScanTime(n, 0, 3) != 0 {
		t.Fatal("degenerate NVMe scans not free")
	}
	if NVMeScanTime(hw.NVMe{}, 1<<20, 1) != 0 {
		t.Fatal("zero-bandwidth device did not price to zero")
	}
}

func TestNVMeScanTimePageRounding(t *testing.T) {
	n := hw.DataCenterNVMe()
	// One byte still pays a full page read plus the per-cluster latency.
	got := NVMeScanTime(n, 1, 1)
	want := time.Duration((n.PageLatency + float64(n.PageBytes)/n.ReadBWBytes) * float64(time.Second))
	if got != want {
		t.Fatalf("one-byte fetch = %v, want one page %v", got, want)
	}
	// Each cluster pays its own seek: same bytes, more clusters, more time.
	if NVMeScanTime(n, 8<<20, 2) >= NVMeScanTime(n, 8<<20, 16) {
		t.Fatal("per-cluster page latency not billed")
	}
	// And at least one page per cluster even when bytes round to fewer.
	few := NVMeScanTime(n, 1, 8)
	wantMin := time.Duration((8*n.PageLatency + float64(8*n.PageBytes)/n.ReadBWBytes) * float64(time.Second))
	if few != wantMin {
		t.Fatalf("8-cluster minimum = %v, want %v", few, wantMin)
	}
}
