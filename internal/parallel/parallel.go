// Package parallel provides the deterministic worker-pool primitive the
// offline build path (k-means, PQ training, IVF encoding, profiling)
// uses to exploit multiple cores without changing results.
//
// Determinism contract: each chunk writes only to its own disjoint
// range of a preallocated output, so the result is independent of chunk
// boundaries and scheduling order. Order-sensitive floating-point
// reductions stay in the caller, which folds per-element partials in
// fixed index order; integer tallies may use per-worker partials since
// integer addition commutes exactly. Under that discipline a run with W
// workers is bit-identical to a run with one, so a fixed seed keeps
// producing the same index plan on any machine.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: non-positive means one worker
// per CPU core.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// chunkSize picks a grain that amortizes scheduling overhead while
// keeping enough chunks in flight to balance uneven work.
func chunkSize(n, workers int) int {
	if workers <= 1 {
		return n
	}
	// Aim for ~8 chunks per worker, bounded below so tiny inputs do not
	// fragment into per-element tasks.
	c := n / (workers * 8)
	if c < 64 {
		c = 64
	}
	return c
}

// For runs body(start, end) over the half-open chunks of [0, n) on the
// given number of workers (non-positive = NumCPU). Chunk boundaries are
// a pure function of n and workers only through the grain heuristic —
// body must only write to outputs indexed by [start, end), which makes
// the overall result independent of scheduling order.
func For(n, workers int, body func(start, end int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		body(0, n)
		return
	}
	chunk := chunkSize(n, w)
	nChunks := (n + chunk - 1) / chunk
	if w > nChunks {
		w = nChunks
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= nChunks {
					return
				}
				start := i * chunk
				end := start + chunk
				if end > n {
					end = n
				}
				body(start, end)
			}
		}()
	}
	wg.Wait()
}

// ForEach runs body(i) for every i in [0, n) on the given number of
// workers. It is For with a per-element body; use it when each item is
// heavy (e.g. one k-means training per PQ subspace).
func ForEach(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}
