package rag

import (
	"testing"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/llm"
	"vectorliterag/internal/tenant"
	"vectorliterag/internal/workload"
)

// secondW caches a second, differently seeded corpus so multi-tenant
// tests exercise genuinely distinct tenants.
var secondW *dataset.Workload

func testW2(t *testing.T) *dataset.Workload {
	t.Helper()
	if secondW == nil {
		gc := dataset.GenConfig{NCenters: 64, PerCenter: 64, Dim: 16, PhysNList: 64, PhysNProbe: 8, Templates: 256, Seed: 9}
		w, err := dataset.Build(dataset.WikiAll, gc)
		if err != nil {
			t.Fatal(err)
		}
		secondW = w
	}
	return secondW
}

func mtOpts(t *testing.T) MultiTenantOptions {
	return MultiTenantOptions{
		Node: hw.H100Node(), Model: llm.Qwen3_32B,
		Tenants: []TenantConfig{
			{Name: "gold", Tier: tenant.Gold, W: testW(t), Rate: 8},
			{Name: "silver", Tier: tenant.Silver, W: testW2(t), Rate: 6},
			{Name: "bronze", Tier: tenant.Bronze, W: testW(t), Rate: 4,
				RateSchedule: workload.Bursts(4, 30, 30*time.Second, 10*time.Second)},
		},
		Duration: 60 * time.Second, Warmup: 10 * time.Second, Drain: 90 * time.Second,
		Seed: 1,
	}
}

func TestRunMultiTenantServesEveryTenant(t *testing.T) {
	res, err := RunMultiTenant(mtOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 3 {
		t.Fatalf("got %d tenant results", len(res.Tenants))
	}
	for _, tr := range res.Tenants {
		if tr.Summary.N == 0 {
			t.Errorf("tenant %s saw no requests", tr.Name)
		}
		if tr.Summary.Attainment < 0 || tr.Summary.Attainment > 1 {
			t.Errorf("tenant %s attainment %v outside [0,1]", tr.Name, tr.Summary.Attainment)
		}
		if tr.SLOTotal <= 0 {
			t.Errorf("tenant %s has no SLO budget", tr.Name)
		}
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Fatalf("Jain index %v outside (0,1]", res.Fairness)
	}
	if res.UsedBytes > res.BudgetBytes {
		t.Fatalf("allocation overran budget: %d > %d", res.UsedBytes, res.BudgetBytes)
	}
	if res.Generated == 0 || res.AvgBatch <= 0 {
		t.Fatalf("pipeline did not serve: generated %d, avg batch %v", res.Generated, res.AvgBatch)
	}
	// Request tagging must round-trip: every request's tenant indexes a
	// result entry.
	for _, req := range res.Requests {
		if req.Tenant < 0 || req.Tenant >= len(res.Tenants) {
			t.Fatalf("request carries stray tenant %d", req.Tenant)
		}
	}
}

// TestRunMultiTenantDeterministic: same seed ⇒ bit-identical per-tenant
// summaries and fairness index — the determinism contract extended to
// the multi-tenant path.
func TestRunMultiTenantDeterministic(t *testing.T) {
	a, err := RunMultiTenant(mtOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiTenant(mtOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fairness != b.Fairness || a.Attainment != b.Attainment ||
		a.UsedBytes != b.UsedBytes || a.AvgBatch != b.AvgBatch || a.Generated != b.Generated {
		t.Fatalf("top-level results differ:\n%+v\n%+v", a, b)
	}
	for i := range a.Tenants {
		x, y := a.Tenants[i], b.Tenants[i]
		if x.Summary != y.Summary {
			t.Fatalf("tenant %s summary differs:\n%+v\n%+v", x.Name, x.Summary, y.Summary)
		}
		if x.Alloc != y.Alloc {
			t.Fatalf("tenant %s allocation differs:\n%+v\n%+v", x.Name, x.Alloc, y.Alloc)
		}
	}
}

// TestRunMultiTenantSchedulerProtectsGold: with a bursty bronze tenant,
// the FairScheduler must not leave gold worse off than the shared-queue
// baseline leaves it.
func TestRunMultiTenantSchedulerProtectsGold(t *testing.T) {
	fair, err := RunMultiTenant(mtOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	shared := mtOpts(t)
	shared.SharedQueue = true
	base, err := RunMultiTenant(shared)
	if err != nil {
		t.Fatal(err)
	}
	if fair.Tenants[0].Summary.Attainment+1e-9 < base.Tenants[0].Summary.Attainment {
		t.Errorf("fair scheduling left gold worse off: %.3f vs shared-queue %.3f",
			fair.Tenants[0].Summary.Attainment, base.Tenants[0].Summary.Attainment)
	}
	if base.Tenants[0].PeakQueue != 0 {
		t.Errorf("shared-queue baseline reports a per-tenant queue: %d", base.Tenants[0].PeakQueue)
	}
}

func TestRunMultiTenantValidation(t *testing.T) {
	if _, err := RunMultiTenant(MultiTenantOptions{Node: hw.H100Node(), Model: llm.Qwen3_32B}); err == nil {
		t.Error("no tenants accepted")
	}
	o := mtOpts(t)
	o.Tenants[0].Rate = 0
	if _, err := RunMultiTenant(o); err == nil {
		t.Error("zero-rate tenant accepted")
	}
	o = mtOpts(t)
	o.Tenants[1].Tier = "platinum"
	if _, err := RunMultiTenant(o); err == nil {
		t.Error("unknown tier accepted")
	}
	o = mtOpts(t)
	o.Tenants[2].W = nil
	if _, err := RunMultiTenant(o); err == nil {
		t.Error("nil workload accepted")
	}
}
