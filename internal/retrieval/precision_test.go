package retrieval

import (
	"testing"

	"vectorliterag/internal/splitter"
)

// sqPrecision marks every hot cluster SQ8 at the given delta; nvme
// additionally demotes every cold cluster to the NVMe tier.
func sqPrecision(f *fixture, plan *splitter.Plan, delta float64, nvme bool) *splitter.Precision {
	nlist := len(f.prof.Counts)
	prec := &splitter.Precision{
		SQ:      make([]bool, nlist),
		NVMe:    make([]bool, nlist),
		Deltas:  make([]float64, nlist),
		SQRatio: 4,
	}
	for c := 0; c < nlist; c++ {
		if plan.IsHot(c) {
			prec.SQ[c] = true
			prec.Deltas[c] = delta
			prec.SQClusters++
		} else if nvme {
			prec.NVMe[c] = true
			prec.NVMeClusters++
		}
	}
	return prec
}

// runHybrid drives n requests through a fresh hybrid engine over the
// given plan and returns the engine.
func runHybrid(t *testing.T, f *fixture, plan *splitter.Plan, n int) *Hybrid {
	t.Helper()
	e := NewHybrid(f.cfg, plan, f.gpus, f.gm)
	reqs := f.requests(n)
	f.sim.At(0, func() {
		for _, r := range reqs {
			e.Submit(r)
		}
	})
	f.sim.Run()
	if len(f.done) != n {
		t.Fatalf("forwarded %d of %d", len(f.done), n)
	}
	return e
}

func TestHybridRecallGainAccrues(t *testing.T) {
	f := setup(t)
	f.cfg.NVMe = f.node.NVMe
	plan := f.plan(t, 0.3, 8)
	const delta = 0.04
	plan.AttachPrecision(sqPrecision(f, plan, delta, false))
	e := runHybrid(t, f, plan, 8)
	gain := e.RecallGain()
	if gain <= 0 || gain > delta {
		t.Fatalf("served recall gain %v outside (0, %v]: every SQ cluster carries delta %v", gain, delta, delta)
	}
	// Zero coverage cannot touch an SQ cluster, so the gain is the hot
	// byte share of the scan — strictly below the uniform delta.
	if gain >= delta {
		t.Fatalf("gain %v not weighted by the scanned byte share", gain)
	}
}

func TestHybridNilPrecisionReportsZeroGain(t *testing.T) {
	f := setup(t)
	e := runHybrid(t, f, f.plan(t, 0.3, 8), 6)
	if g := e.RecallGain(); g != 0 {
		t.Fatalf("classic plan reported recall gain %v", g)
	}
}

func TestHybridSQScansNotSlower(t *testing.T) {
	// The SQ8 kernel prices below the PQ kernel even at 4x bytes, so
	// upgrading hot clusters must never lengthen a batch.
	run := func(withSQ bool) int64 {
		f := setup(t)
		f.cfg.NVMe = f.node.NVMe
		plan := f.plan(t, 0.3, 8)
		if withSQ {
			plan.AttachPrecision(sqPrecision(f, plan, 0.04, false))
		}
		runHybrid(t, f, plan, 8)
		return int64(f.done[len(f.done)-1].SearchDone)
	}
	if sq, pq := run(true), run(false); sq > pq {
		t.Fatalf("SQ8 upgrade lengthened the batch: %d vs %d", sq, pq)
	}
}

func TestHybridNVMeDemotionAddsLatency(t *testing.T) {
	// Demoted cold clusters pay the page-read fetch before the CPU scan;
	// with every cold cluster demoted the batch must finish strictly
	// later than the all-DRAM plan.
	run := func(withNVMe bool) int64 {
		f := setup(t)
		f.cfg.NVMe = f.node.NVMe
		plan := f.plan(t, 0.3, 8)
		if withNVMe {
			prec := sqPrecision(f, plan, 0, true)
			// NVMe only: no SQ upgrades, so the GPU path is untouched.
			for c := range prec.SQ {
				prec.SQ[c] = false
			}
			prec.SQClusters = 0
			plan.AttachPrecision(prec)
		}
		runHybrid(t, f, plan, 8)
		return int64(f.done[len(f.done)-1].SearchDone)
	}
	if nv, dram := run(true), run(false); nv <= dram {
		t.Fatalf("NVMe demotion did not add fetch latency: %d vs %d", nv, dram)
	}
}

func TestMultiTenantRecallGainAccrues(t *testing.T) {
	f := setup(t)
	f.cfg.NVMe = f.node.NVMe
	plan := f.plan(t, 0.3, f.node.NumGPUs)
	const delta = 0.04
	plan.AttachPrecision(sqPrecision(f, plan, delta, false))
	e, err := NewMultiTenant(f.cfg, []TenantSlot{{W: f.w, Plan: plan, CPUModel: f.cfg.CPUModel}}, f.gpus, f.gm)
	if err != nil {
		t.Fatal(err)
	}
	reqs := f.requests(8)
	f.sim.At(0, func() {
		for _, r := range reqs {
			e.Submit(r)
		}
	})
	f.sim.Run()
	if len(f.done) != 8 {
		t.Fatalf("forwarded %d of 8", len(f.done))
	}
	var rr RecallReporter = e
	if g := rr.RecallGain(); g <= 0 || g >= delta {
		t.Fatalf("served recall gain %v outside (0, %v)", g, delta)
	}
}
