package vecmath

import (
	"encoding/binary"
	"sort"
	"testing"
)

// fuzzPushes decodes a fuzz payload into a k and a push sequence:
// every two bytes become one distance (signed, so negatives and ties
// occur), pushed under index 0,1,2,...
func fuzzPushes(data []byte) (k int, dists []float32, ok bool) {
	if len(data) < 3 {
		return 0, nil, false
	}
	k = int(data[0])%12 + 1
	body := data[1:]
	n := len(body) / 2
	if n == 0 {
		return 0, nil, false
	}
	if n > 500 {
		n = 500
	}
	dists = make([]float32, n)
	for i := range dists {
		raw := int16(binary.LittleEndian.Uint16(body[i*2 : i*2+2]))
		dists[i] = float32(raw) / 8
	}
	return k, dists, true
}

// FuzzTopK: the hand-rolled bounded max-heap must return exactly the k
// smallest distances in ascending order, with indices that map back to
// pushed values, for any push sequence (including duplicates, negative
// values, and fewer pushes than k).
func FuzzTopK(f *testing.F) {
	f.Add([]byte("\x04sphinx of black quartz judge my vow"))
	f.Add([]byte("\x01\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("\x0b\xff\x7f\x00\x80\x01\x00\x02\x00\x01\x00\x02\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		k, dists, ok := fuzzPushes(data)
		if !ok {
			t.Skip()
		}
		top := NewTopK(k)
		for i, d := range dists {
			top.Push(i, d)
		}
		if full := len(dists) >= k; full != (top.Len() == k) {
			t.Fatalf("Len %d with %d pushes at k=%d", top.Len(), len(dists), k)
		}
		worst, wasFull := top.Worst()

		got := top.Sorted()
		// Reference: ascending sort of every pushed distance, truncated
		// to k — the k smallest as a multiset.
		want := append([]float32(nil), dists...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("returned %d neighbors, want %d", len(got), len(want))
		}
		seen := map[int]bool{}
		for i, nb := range got {
			if nb.Dist != want[i] {
				t.Fatalf("sorted dist %d = %v, want %v (got %v)", i, nb.Dist, want[i], got)
			}
			if nb.Index < 0 || nb.Index >= len(dists) {
				t.Fatalf("neighbor index %d out of range", nb.Index)
			}
			if dists[nb.Index] != nb.Dist {
				t.Fatalf("index %d was pushed with %v, returned with %v", nb.Index, dists[nb.Index], nb.Dist)
			}
			if seen[nb.Index] {
				t.Fatalf("index %d returned twice", nb.Index)
			}
			seen[nb.Index] = true
		}
		if wasFull && len(got) > 0 && worst != got[len(got)-1].Dist {
			t.Fatalf("Worst() %v != largest kept %v", worst, got[len(got)-1].Dist)
		}

		// Reset/reuse must behave like a fresh collector (the search
		// scratch path).
		top.Reset(k)
		for i, d := range dists {
			top.Push(i, d)
		}
		again := top.Sorted()
		for i := range got {
			if again[i] != got[i] {
				t.Fatalf("reused collector diverged at %d: %+v vs %+v", i, again[i], got[i])
			}
		}
	})
}
