package metrics

import (
	"math"
	"testing"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/workload"
)

func req(arrive, ttft time.Duration, hit float64) workload.Request {
	r := workload.Request{ArrivalAt: des.Time(arrive), HitRate: hit}
	if ttft > 0 {
		r.FirstToken = des.Time(arrive + ttft)
	}
	return r
}

func TestTimelineBuckets(t *testing.T) {
	slo := 100 * time.Millisecond
	reqs := []workload.Request{
		req(1*time.Second, 50*time.Millisecond, 0.9),  // win 0, met
		req(2*time.Second, 150*time.Millisecond, 0.8), // win 0, missed
		req(11*time.Second, 50*time.Millisecond, 0.6), // win 1, met
		req(12*time.Second, 0, 0),                     // win 1, unserved
		req(31*time.Second, 90*time.Millisecond, 0.4), // win 3, met
	}
	wins := Timeline(reqs, slo, 10*time.Second)
	if len(wins) != 4 {
		t.Fatalf("got %d windows, want 4 (including the empty one)", len(wins))
	}
	if wins[0].N != 2 || wins[0].Attainment != 0.5 {
		t.Fatalf("window 0: %+v", wins[0])
	}
	if got := wins[0].MeanHitRate; math.Abs(got-0.85) > 1e-12 {
		t.Fatalf("window 0 hit = %v", got)
	}
	// Unserved counts as a violation but not toward the hit mean.
	if wins[1].N != 2 || wins[1].Unserved != 1 || wins[1].Attainment != 0.5 {
		t.Fatalf("window 1: %+v", wins[1])
	}
	if wins[1].MeanHitRate != 0.6 {
		t.Fatalf("window 1 hit = %v", wins[1].MeanHitRate)
	}
	// Gap window stays in the series, empty.
	if wins[2].N != 0 || wins[2].Attainment != 0 {
		t.Fatalf("window 2: %+v", wins[2])
	}
	if wins[3].Start != 30*time.Second || wins[3].Attainment != 1 {
		t.Fatalf("window 3: %+v", wins[3])
	}
}

func TestTimelineDegenerate(t *testing.T) {
	if Timeline(nil, time.Second, time.Second) != nil {
		t.Fatal("empty request list should yield nil")
	}
	if Timeline([]workload.Request{req(0, time.Millisecond, 1)}, time.Second, 0) != nil {
		t.Fatal("zero bucket width should yield nil")
	}
}
