// Package hitrate implements the tail-query hit-rate estimator of paper
// §IV-A2. Caching the top-k hottest clusters gives each query a hit
// rate (the share of its scan work landing in cache); across queries
// these hit rates form a distribution whose *minimum within a batch*
// governs batch latency, because the CPU must finish every miss before
// the batch completes.
//
// The estimator models per-query hit rates as Beta-distributed with
//
//	mean      — read off the access profile (cumulative covered share),
//	variance  — approximated as 4·sigmaMax²·eta(1-eta), the parabolic
//	            shape validated in Fig. 8 (right), with sigmaMax²
//	            profiled once near eta=0.5,
//
// and computes the expected batch minimum via the first-order-statistic
// integral (Eq. 2). Inverting the relation numerically yields
// HitRate2Coverage, the primitive the partitioning algorithm calls.
package hitrate

import (
	"fmt"
	"math"

	"vectorliterag/internal/profiler"
	"vectorliterag/internal/stats"
)

// Estimator predicts hit-rate behaviour for any cache coverage.
type Estimator struct {
	nlist     int
	hotOrder  []int
	meanCurve []float64 // meanCurve[k] = mean work-weighted hit rate with top-k hot
	sigmaMax2 float64   // empirical variance at mean ≈ 0.5
}

// NewEstimator builds the estimator from an access profile. It
// precomputes the coverage→mean curve incrementally and profiles
// sigmaMax² at the coverage whose mean hit rate is closest to 0.5.
func NewEstimator(p *profiler.AccessProfile) (*Estimator, error) {
	nlist := len(p.Counts)
	if nlist == 0 || len(p.Queries) == 0 {
		return nil, fmt.Errorf("hitrate: empty access profile")
	}
	e := &Estimator{nlist: nlist, hotOrder: p.HotOrder}

	// contrib[c]: how much promoting cluster c adds to the mean
	// work-weighted hit rate, averaged over the training queries.
	contrib := make([]float64, nlist)
	for _, q := range p.Queries {
		probes := p.W.Probes(q)
		var total float64
		for _, c := range probes {
			total += float64(p.W.ClusterBytes(c))
		}
		if total == 0 {
			continue
		}
		for _, c := range probes {
			contrib[c] += float64(p.W.ClusterBytes(c)) / total
		}
	}
	nq := float64(len(p.Queries))
	e.meanCurve = make([]float64, nlist+1)
	for k := 1; k <= nlist; k++ {
		e.meanCurve[k] = e.meanCurve[k-1] + contrib[p.HotOrder[k-1]]/nq
	}
	// Normalize tiny float drift: full coverage must be exactly 1.
	if e.meanCurve[nlist] > 0 {
		scale := 1 / e.meanCurve[nlist]
		for k := range e.meanCurve {
			e.meanCurve[k] *= scale
		}
	}

	// Profile sigmaMax²: empirical per-query hit-rate variance at the
	// coverage whose mean is nearest 0.5 (paper: "empirically profiling
	// the variance at eta=0.5").
	kHalf := 1
	best := math.Inf(1)
	for k := 1; k < nlist; k++ {
		if d := math.Abs(e.meanCurve[k] - 0.5); d < best {
			best, kHalf = d, k
		}
	}
	e.sigmaMax2 = e.EmpiricalVariance(p, kHalf)
	if e.sigmaMax2 <= 0 {
		// Degenerate profile (e.g. every query identical): fall back to a
		// small but positive spread so the Beta stays well-defined.
		e.sigmaMax2 = 1e-4
	}
	return e, nil
}

// EmpiricalVariance measures the per-query hit-rate variance with the
// top-k clusters cached, over the profile's training queries.
func (e *Estimator) EmpiricalVariance(p *profiler.AccessProfile, k int) float64 {
	mask := p.HotMask(k)
	rates := make([]float64, len(p.Queries))
	for i, q := range p.Queries {
		rates[i] = p.W.WorkHitRate(q, mask)
	}
	return stats.Variance(rates)
}

// Clusters returns the number of hot clusters at the given coverage
// (fraction of total clusters, clamped to [0,1]).
func (e *Estimator) Clusters(coverage float64) int {
	if coverage <= 0 {
		return 0
	}
	if coverage >= 1 {
		return e.nlist
	}
	return int(math.Round(coverage * float64(e.nlist)))
}

// MeanHitRate returns the expected work-weighted hit rate at the given
// cache coverage.
func (e *Estimator) MeanHitRate(coverage float64) float64 {
	return e.meanCurve[e.Clusters(coverage)]
}

// Variance returns the modeled hit-rate variance at a given mean:
// 4·sigmaMax²·eta(1-eta) (paper §IV-A2).
func (e *Estimator) Variance(mean float64) float64 {
	return 4 * e.sigmaMax2 * mean * (1 - mean)
}

// SigmaMax2 exposes the profiled peak variance.
func (e *Estimator) SigmaMax2() float64 { return e.sigmaMax2 }

// BetaAt instantiates the Beta hit-rate distribution for a coverage.
// Degenerate means (0 or 1) are reported via ok=false.
func (e *Estimator) BetaAt(coverage float64) (stats.Beta, bool) {
	mean := e.MeanHitRate(coverage)
	if mean <= 1e-9 || mean >= 1-1e-9 {
		return stats.Beta{}, false
	}
	variance := e.Variance(mean)
	// Keep the moments Beta-feasible.
	if limit := mean * (1 - mean); variance >= limit {
		variance = limit * 0.999
	}
	if variance <= 0 {
		variance = 1e-9
	}
	b, err := stats.NewBetaFromMoments(mean, variance)
	if err != nil {
		return stats.Beta{}, false
	}
	return b, true
}

// MinHitRate returns the expected minimum hit rate within a batch of
// the given size at the given coverage (Eq. 2).
func (e *Estimator) MinHitRate(coverage float64, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	b, ok := e.BetaAt(coverage)
	if !ok {
		// Degenerate: all-or-nothing coverage.
		return e.MeanHitRate(coverage)
	}
	return b.ExpectedMin(batch)
}

// CoverageForMinHitRate is the paper's HitRate2Coverage: the smallest
// coverage whose expected batch-minimum hit rate reaches etaMin. The
// second return value is false when even full coverage cannot reach it
// (the caller then knows the SLO is infeasible at this batch size).
func (e *Estimator) CoverageForMinHitRate(etaMin float64, batch int) (float64, bool) {
	if etaMin <= 0 {
		return 0, true
	}
	if etaMin > 1 {
		return 1, false
	}
	// MinHitRate is monotone in coverage; bisect over cluster counts.
	lo, hi := 0, e.nlist
	if e.MinHitRate(1, batch) < etaMin-1e-9 {
		return 1, false
	}
	for lo < hi {
		mid := (lo + hi) / 2
		cov := float64(mid) / float64(e.nlist)
		if e.MinHitRate(cov, batch) < etaMin {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return float64(lo) / float64(e.nlist), true
}

// HotSet returns the cluster IDs cached at the given coverage,
// hottest-first.
func (e *Estimator) HotSet(coverage float64) []int {
	k := e.Clusters(coverage)
	return append([]int(nil), e.hotOrder[:k]...)
}
