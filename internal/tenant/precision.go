package tenant

// Precision extension of the joint allocator: after the placement
// greedy converges, leftover HBM budget upgrades each tenant's hottest
// placed clusters from PQ codes to SQ8 — the (tier, codec) half of the
// placement × precision decision. SQ8 stores Dim bytes per vector
// against PQ's CodeBytes (~4x), scans as a gather-free streaming
// kernel on the GPU, and recovers most of the quantization recall PQ
// gives up; the allocator spends bytes on it only where the
// tier-weighted marginal recall per byte is highest.
//
// The upgrade pass runs strictly after placement converged, so it can
// only consume budget no placement step wanted: modeled attainment is
// never lower than the placement-only allocation at equal budget (the
// property test pins this).

// PrecisionOptions parameterizes the codec-upgrade pass.
type PrecisionOptions struct {
	// SQBytesRatio is SQ8 bytes per vector over PQ bytes per vector
	// (Spec.Dim / Spec.CodeBytes at logical scale; ~4x for the paper's
	// datasets). Upgrading a cluster costs (ratio − 1) × its PQ bytes
	// of extra HBM. Values ≤ 1 disable the pass.
	SQBytesRatio float64
	// RecallDelta[i][r] is tenant i's estimated recall gain (SQ8 minus
	// PQ, in recall points) for its rank-r hottest cluster, as measured
	// by the profiler. Deltas are clamped at zero: SQ8 never loses
	// recall to PQ under this model.
	RecallDelta [][]float64
	// RecallWeight converts recall points into score units when ranking
	// upgrade candidates (default 1).
	RecallWeight float64
}

// upgradePrecision spends the budget the placement rounds left over on
// PQ→SQ8 upgrades, hottest-first within each tenant, ordered across
// tenants by Tier.Weight() × RecallWeight × recall delta per extra
// byte. Ties break toward the higher tier, then the lower tenant
// index, then the hotter rank, so the result is deterministic.
// It mutates res in place and returns the total recall gain bought
// (rate-weighted across tenants, in recall points).
func upgradePrecision(in Inputs, res *Result, ks []int) float64 {
	po := in.Precision
	if po == nil || po.SQBytesRatio <= 1 {
		return 0
	}
	rw := po.RecallWeight
	if rw == 0 {
		rw = 1
	}
	extra := po.SQBytesRatio - 1
	// next[i] is the hottest not-yet-upgraded rank of tenant i;
	// upgrades proceed in rank order because recall deltas are
	// attributed per hot rank and hotter clusters are probed more.
	next := make([]int, len(in.Tenants))
	var totalGain float64
	var aggregate float64
	for _, t := range in.Tenants {
		aggregate += t.Rate
	}
	for {
		best, bestScore := -1, 0.0
		var bestBytes int64
		for i, t := range in.Tenants {
			r := next[i]
			if r >= ks[i] || r >= len(po.RecallDelta[i]) {
				continue
			}
			step := int64(float64(t.PrefixBytes[r+1]-t.PrefixBytes[r]) * extra)
			if step <= 0 || res.UsedBytes+step > res.BudgetBytes {
				continue
			}
			delta := po.RecallDelta[i][r]
			if delta <= 0 {
				// A zero-delta cluster buys nothing; skip past it so a
				// colder-but-improvable cluster behind it stays reachable.
				next[i]++
				continue
			}
			score := float64(t.Tier.Weight()) * rw * delta / float64(max64(step, 1))
			if best < 0 || score > bestScore+1e-15 ||
				(score > bestScore-1e-15 && t.Tier.Priority() < in.Tenants[best].Tier.Priority()) {
				best, bestScore, bestBytes = i, score, step
			}
		}
		if best < 0 {
			break
		}
		r := next[best]
		t := in.Tenants[best]
		res.UsedBytes += bestBytes
		res.Allocations[best].SQClusters++
		res.Allocations[best].SQBytes += bestBytes
		res.Allocations[best].Bytes += bestBytes
		res.Allocations[best].RecallGain += po.RecallDelta[best][r]
		totalGain += po.RecallDelta[best][r] * t.Rate / aggregate
		next[best]++
	}
	return totalGain
}
