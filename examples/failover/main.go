// Failure-resilient serving: the same replica crash hits the same
// 3-replica cluster twice. The first run has no failure handling — the
// front end keeps routing around the dead replica, but every request
// caught in flight on it is simply lost, and goodput carries the hole.
// The second run turns on the resilience layer: crash failover re-runs
// the stranded requests on the survivors, per-attempt timeouts with
// bounded retries catch stragglers, a hedged backup races the slowest
// tail, and graceful degradation sheds retrieval depth while the
// cluster is short a replica. Same arrivals, same storm, zero dropped
// requests — and the run prints the crash's time-to-recover: from the
// crash instant to the completion of the last failed-over request.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	vlr "vectorliterag"
)

func main() {
	quick := flag.Bool("quick", false, "shorter run for smoke tests")
	flag.Parse()

	fmt.Println("building ORCAS-1K workload (trains a real IVF-PQ index)...")
	w, err := vlr.NewWorkload(vlr.Orcas1K)
	if err != nil {
		log.Fatal(err)
	}

	const replicas = 3
	duration := 3 * time.Minute
	if *quick {
		duration = 90 * time.Second
	}
	// 50% of one replica's capacity each: enough headroom that the two
	// survivors can absorb the crashed replica's share.
	mu, err := vlr.Capacity(vlr.H100Node(), vlr.Qwen3_32B)
	if err != nil {
		log.Fatal(err)
	}
	rate := 0.5 * mu * replicas
	storm := "crash@30s:r0:20s,straggler@55s:r1:20s:x5"

	run := func(res *vlr.ResilienceConfig) *vlr.ClusterReport {
		cr, err := vlr.ServeCluster(vlr.ClusterOptions{
			ServeOptions: vlr.ServeOptions{
				Workload: w, System: vlr.VLiteRAG, Rate: rate,
				Duration: duration, Seed: 1,
			},
			Replicas:   replicas,
			Policy:     vlr.LeastLoaded,
			Faults:     storm,
			Resilience: res,
		})
		if err != nil {
			log.Fatal(err)
		}
		return cr
	}

	fmt.Printf("\ncluster: %d replicas @ %.0f req/s, storm: %s\n\n", replicas, rate, storm)

	fmt.Println("run 1: no failure handling (requests on the crashed replica are lost)")
	bare := run(nil)

	fmt.Println("run 2: failover + retry + hedging + graceful degradation")
	// Timers are sized against end-to-end completion (decode dominates),
	// not TTFT: a timeout below the E2E tail turns every slow request
	// into a retry and the extra load collapses the cluster.
	resilient := run(&vlr.ResilienceConfig{
		Timeout:    30 * time.Second,
		MaxRetries: 2,
		HedgeDelay: 15 * time.Second,
		Degrade:    true,
	})

	row := func(label string, cr *vlr.ClusterReport) {
		failed, recover := 0, "-"
		if cr.Resilience != nil {
			failed = cr.Resilience.Stats.Failed
			for _, d := range cr.Resilience.Recoveries {
				if d > 0 {
					recover = d.Round(100 * time.Millisecond).String()
				}
			}
		}
		goodput := 0.0
		if cr.Resilience != nil {
			goodput = cr.Resilience.Goodput
		}
		fmt.Printf("%-12s %10.2f/s %12.3f %10d %10d %12s\n",
			label, goodput, cr.Summary.Attainment, cr.Summary.Unserved+failed,
			cr.Summary.N, recover)
	}
	fmt.Printf("\n%-12s %12s %12s %10s %10s %12s\n",
		"", "goodput", "attainment", "dropped", "requests", "recover")
	row("bare", bare)
	row("resilient", resilient)

	rs := resilient.Resilience.Stats
	fmt.Printf("\nresilience actions: %d retried (%d crash failovers), %d hedged (%d backup wins), %d ghosts drained\n",
		rs.Retried, rs.FailedOver, rs.Hedged, rs.HedgeWins, rs.Ghosts)

	bareDropped := bare.Summary.Unserved + bare.Resilience.Stats.Failed
	resDropped := resilient.Summary.Unserved + rs.Failed
	switch {
	case bareDropped > 0 && resDropped == 0:
		fmt.Printf("\nevery one of the %d requests the bare cluster dropped was served ✓\n", bareDropped)
	case resDropped < bareDropped:
		fmt.Printf("\ndropped requests: %d bare vs %d resilient\n", bareDropped, resDropped)
	default:
		fmt.Println("\nwarning: resilience did not reduce dropped requests at this load")
	}
}
