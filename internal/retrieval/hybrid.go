package retrieval

import (
	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/des"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/workload"
)

// Hybrid is VectorLiteRAG's distributed retrieval pipeline (§IV-B).
//
// Per batch: coarse quantization runs on the CPU; the router consults
// the mapping tables to split each query's probes into per-shard
// resident sets (pruned — only blocks for resident clusters launch)
// and a CPU remainder; GPU shard kernels and the CPU cold scan run
// concurrently; the dynamic dispatcher promotes a query the moment its
// own clusters are fully scanned instead of waiting for the batch.
type Hybrid struct {
	batcher
	plan     *splitter.Plan
	gpus     []*gpu.State // gpus[g] hosts plan.Shards[g]
	gpuModel costmodel.GPUScanModel
	// blockScale converts one physical probed cluster into its logical
	// thread-block count (NProbe/PhysNProbe — the two-scale probe
	// normalization, see dataset.Workload).
	blockScale int
	// Dispatcher toggles early query promotion (the Fig. 14 ablation).
	Dispatcher bool
	// refreshing[g] marks shard g as mid-reload: its clusters are
	// temporarily served by the CPU path (§IV-B3 service continuity).
	refreshing []bool
	// Per-batch routing work areas, reused across batches: every value
	// is rewritten before use and consumed before runBatch returns (the
	// completion closures capture only scalars), so reuse cannot leak
	// state between batches.
	shardBytes  []int64
	shardBlocks []int
	cpuWork     []int64
	cpuDone     []des.Time
	route       splitter.RouteScratch
	// sqBytes/sqBlocks are the per-shard SQ8 kernel work areas, used
	// only when the plan carries a precision refinement.
	sqBytes  []int64
	sqBlocks []int
	// recallSum/recallN accumulate the served recall gain of
	// SQ-upgraded clusters (work-weighted per query, see RecallGain).
	recallSum float64
	recallN   int
}

// NewHybrid wires the hybrid engine. The i-th shard of the plan must
// reside on gpus[i].
func NewHybrid(cfg Config, plan *splitter.Plan, gpus []*gpu.State, gm costmodel.GPUScanModel) *Hybrid {
	e := &Hybrid{
		batcher:    batcher{cfg: cfg},
		plan:       plan,
		gpus:       gpus,
		gpuModel:   gm,
		blockScale: cfg.W.Spec.NProbe / cfg.W.Gen.PhysNProbe,
		Dispatcher: true,
		refreshing: make([]bool, plan.NumShards),
	}
	e.init(e.runBatch)
	return e
}

// Name implements Engine.
func (e *Hybrid) Name() string { return "vLiteRAG" }

// Plan returns the currently serving split plan.
func (e *Hybrid) Plan() *splitter.Plan { return e.plan }

// SetPlan atomically switches to a freshly built plan (the final step
// of an adaptive index update). Refresh flags reset, and the GPU
// states' resident-shard accounting follows the new plan. KV pools are
// sized at LLM-instance construction, so a swap assumes the new plan
// fits the same memory envelope — which Algorithm 1 guarantees by
// construction (it partitions against the same MemKV bound).
func (e *Hybrid) SetPlan(plan *splitter.Plan) {
	e.plan = plan
	e.refreshing = make([]bool, plan.NumShards)
	for g := range plan.ShardBytes {
		if g < len(e.gpus) {
			e.gpus[g].ShardBytes = plan.ShardBytes[g]
		}
	}
}

// SetShardRefreshing marks shard g as being reloaded; while set, its
// clusters are served from the CPU path so service never pauses.
func (e *Hybrid) SetShardRefreshing(g int, on bool) {
	if g >= 0 && g < len(e.refreshing) {
		e.refreshing[g] = on
	}
}

// ShardRefreshing reports whether shard g is mid-reload.
func (e *Hybrid) ShardRefreshing(g int) bool {
	return g >= 0 && g < len(e.refreshing) && e.refreshing[g]
}

// RecallGain implements RecallReporter: the mean per-query modeled
// recall gain from SQ8-upgraded clusters, zero on plans without a
// precision refinement.
func (e *Hybrid) RecallGain() float64 {
	if e.recallN == 0 {
		return 0
	}
	return e.recallSum / float64(e.recallN)
}

func (e *Hybrid) runBatch(batch []*workload.Request) {
	sim := e.cfg.Sim
	w := e.cfg.W
	b := len(batch)
	cq := e.cfg.CPUModel.CQTime(b)
	tCQ := sim.Now() + e.slowAt(des.Time(cq))

	// Route every query through the mapping tables. A precision-refined
	// plan splits resident clusters by codec — PQ clusters feed the LUT
	// kernel, SQ8 clusters the streaming kernel (pq.ScanSQ's modeled
	// counterpart) — and tallies the NVMe-resident share of the CPU
	// remainder; a nil refinement keeps the classic single-codec path
	// byte for byte.
	prec := e.plan.Prec
	shardBytes := resize(&e.shardBytes, e.plan.NumShards)
	shardBlocks := resize(&e.shardBlocks, e.plan.NumShards)
	cpuWork := resize(&e.cpuWork, b)
	var sqBytes []int64
	var sqBlocks []int
	var nvmeBytes int64
	var nvmeClusters int
	if prec != nil {
		sqBytes = resize(&e.sqBytes, e.plan.NumShards)
		sqBlocks = resize(&e.sqBlocks, e.plan.NumShards)
	}
	var missTotal int64
	for i, req := range batch {
		perShard, cpuClusters := e.plan.RouteInto(&e.route, degradeProbes(w.Probes(req.Query), req.Degrade))
		var gain float64
		for g, resident := range perShard {
			if len(resident) == 0 {
				continue
			}
			if e.refreshing[g] {
				// Mid-reload shard: divert to the CPU path.
				cpuClusters = append(cpuClusters, resident...)
				continue
			}
			if prec == nil {
				shardBytes[g] += e.cfg.scanBytes(req.Query, resident)
				shardBlocks[g] += len(resident) * e.blockScale
				continue
			}
			for j, c := range resident {
				bb := e.cfg.scanBytes(req.Query, resident[j:j+1])
				// Brownout precision fallback: a ForcePQ request scans
				// SQ8-upgraded clusters through the base PQ codec —
				// cheaper bytes, no recall gain.
				if prec.IsSQ(c) && !req.ForcePQ {
					sqBytes[g] += int64(float64(bb) * prec.SQRatio)
					sqBlocks[g] += e.blockScale
					gain += float64(bb) * prec.Delta(c)
				} else {
					shardBytes[g] += bb
					shardBlocks[g] += e.blockScale
				}
			}
		}
		if prec != nil {
			for j, c := range cpuClusters {
				if prec.IsNVMe(c) {
					nvmeBytes += e.cfg.scanBytes(req.Query, cpuClusters[j:j+1])
					nvmeClusters++
				}
			}
		}
		cpuWork[i] = e.cfg.scanBytes(req.Query, cpuClusters)
		missTotal += cpuWork[i]
		full := e.cfg.scanBytesFull(req.Query)
		req.HitRate = servedHitRate(full, cpuWork[i])
		if prec != nil {
			if full > 0 {
				e.recallSum += gain / float64(full)
			}
			e.recallN++
		}
	}

	// GPU shard kernels start once CQ delivers the cluster lists; a
	// shard with both codecs launches the LUT kernel and the SQ8
	// streaming kernel back to back.
	gpuReady := tCQ
	for g := range shardBytes {
		var t des.Time
		if shardBytes[g] != 0 || shardBlocks[g] != 0 {
			t += des.Time(e.gpuModel.ShardScanTime(shardBytes[g], shardBlocks[g]))
		}
		if prec != nil && (sqBytes[g] != 0 || sqBlocks[g] != 0) {
			t += des.Time(e.gpuModel.ShardScanTimeSQ(sqBytes[g], sqBlocks[g]))
		}
		if t == 0 {
			continue
		}
		end := tCQ + e.slowAt(t)
		e.gpus[g].MarkRetrievalBusy(end)
		if end > gpuReady {
			gpuReady = end
		}
	}

	// CPU cold scan: clusters are processed grouped by query, in batch
	// order, so query i's CPU portion completes at the prefix of its
	// miss work (§IV-B2 callback mechanism).
	cpuTotal := e.slowAt(des.Time(e.cfg.CPUModel.LUTTime(missTotal, b)))
	if prec != nil && nvmeClusters > 0 {
		// SSD-resident cold clusters are fetched into DRAM before the
		// fast-scan kernel reaches them; the fetch extends the batch
		// total and is attributed byte-proportionally like the scan.
		cpuTotal += e.slowAt(des.Time(costmodel.NVMeScanTime(e.cfg.NVMe, nvmeBytes, nvmeClusters)))
	}
	cpuDone := resize(&e.cpuDone, b)
	var prefix int64
	for i := range batch {
		prefix += cpuWork[i]
		if missTotal > 0 {
			cpuDone[i] = tCQ + des.Time(float64(cpuTotal)*float64(prefix)/float64(missTotal))
		} else {
			cpuDone[i] = tCQ
		}
	}
	batchEnd := tCQ + cpuTotal
	if gpuReady > batchEnd {
		batchEnd = gpuReady
	}

	if e.Dispatcher {
		// Promote each query when its own search completes: GPU flags
		// must all be set (shard kernels are batch-granular) and its CPU
		// clusters scanned.
		e.dispatchCoalesced(batch, cpuDone, gpuReady)
	} else {
		at := batchEnd + des.Time(mergeCost)
		sim.At(at, func() {
			now := sim.Now()
			for _, req := range batch {
				req.SearchDone = now
				e.cfg.Forward(req)
			}
			e.releaseBatch(batch)
		})
	}
	// The pipeline accepts the next batch when both tiers are free.
	sim.At(batchEnd, e.doneFn)
}
