package vecmath

import (
	"container/heap"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"vectorliterag/internal/rng"
)

func TestSquaredL2Basic(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 6, 3}
	if got := SquaredL2(a, b); got != 25 {
		t.Fatalf("SquaredL2 = %v, want 25", got)
	}
}

func TestSquaredL2Zero(t *testing.T) {
	a := []float32{1.5, -2.5}
	if got := SquaredL2(a, a); got != 0 {
		t.Fatalf("distance to self = %v, want 0", got)
	}
}

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestSquaredL2MatchesExpansion(t *testing.T) {
	// ||a-b||^2 == ||a||^2 + ||b||^2 - 2<a,b>, a property the PQ LUT
	// construction relies on.
	r := rng.New(1)
	if err := quick.Check(func(seed uint16) bool {
		a := make([]float32, 8)
		b := make([]float32, 8)
		for i := range a {
			a[i] = float32(r.NormFloat64())
			b[i] = float32(r.NormFloat64())
		}
		lhs := float64(SquaredL2(a, b))
		rhs := float64(Norm2(a)) + float64(Norm2(b)) - 2*float64(Dot(a, b))
		return math.Abs(lhs-rhs) < 1e-3
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddScale(t *testing.T) {
	v := []float32{1, 2}
	Add(v, []float32{3, 4})
	if v[0] != 4 || v[1] != 6 {
		t.Fatalf("Add gave %v", v)
	}
	Scale(v, 0.5)
	if v[0] != 2 || v[1] != 3 {
		t.Fatalf("Scale gave %v", v)
	}
}

func TestArgminL2(t *testing.T) {
	rows := []float32{
		0, 0,
		5, 5,
		1, 1,
	}
	idx, d := ArgminL2([]float32{0.9, 0.9}, rows, 2)
	if idx != 2 {
		t.Fatalf("ArgminL2 index = %d, want 2", idx)
	}
	if math.Abs(float64(d)-0.02) > 1e-5 {
		t.Fatalf("ArgminL2 dist = %v, want ~0.02", d)
	}
}

func TestArgminPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArgminL2 on empty matrix did not panic")
		}
	}()
	ArgminL2([]float32{1}, nil, 1)
}

func TestTopKKeepsSmallest(t *testing.T) {
	tk := NewTopK(3)
	dists := []float32{9, 1, 8, 2, 7, 3}
	for i, d := range dists {
		tk.Push(i, d)
	}
	got := tk.Sorted()
	if len(got) != 3 {
		t.Fatalf("TopK kept %d, want 3", len(got))
	}
	wantIdx := []int{1, 3, 5}
	for i, n := range got {
		if n.Index != wantIdx[i] {
			t.Fatalf("TopK result %d = %+v, want index %d", i, n, wantIdx[i])
		}
	}
}

func TestTopKSortedAscending(t *testing.T) {
	r := rng.New(2)
	tk := NewTopK(10)
	for i := 0; i < 100; i++ {
		tk.Push(i, float32(r.Float64()))
	}
	got := tk.Sorted()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
		t.Fatalf("TopK.Sorted not ascending: %v", got)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(5)
	tk.Push(0, 1)
	tk.Push(1, 2)
	if _, ok := tk.Worst(); ok {
		t.Fatal("Worst reported full before k pushes")
	}
	if got := tk.Sorted(); len(got) != 2 {
		t.Fatalf("Sorted len = %d, want 2", len(got))
	}
}

func TestTopKWorstTracksKth(t *testing.T) {
	tk := NewTopK(2)
	tk.Push(0, 5)
	tk.Push(1, 3)
	if w, ok := tk.Worst(); !ok || w != 5 {
		t.Fatalf("Worst = %v,%v want 5,true", w, ok)
	}
	tk.Push(2, 1)
	if w, _ := tk.Worst(); w != 3 {
		t.Fatalf("Worst after better push = %v, want 3", w)
	}
}

func TestBruteForceTopKMatchesFullSort(t *testing.T) {
	r := rng.New(3)
	const dim, n, k = 4, 200, 7
	rows := make([]float32, n*dim)
	for i := range rows {
		rows[i] = float32(r.NormFloat64())
	}
	q := make([]float32, dim)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	got := BruteForceTopK(q, rows, dim, k)

	type pair struct {
		idx int
		d   float32
	}
	all := make([]pair, n)
	for i := 0; i < n; i++ {
		all[i] = pair{i, SquaredL2(q, rows[i*dim:(i+1)*dim])}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	for i := 0; i < k; i++ {
		if got[i].Index != all[i].idx {
			t.Fatalf("rank %d: got %d want %d", i, got[i].Index, all[i].idx)
		}
	}
}

func TestTopKProperty(t *testing.T) {
	// Property: the max distance kept is <= every discarded distance.
	r := rng.New(4)
	if err := quick.Check(func(kRaw uint8) bool {
		k := int(kRaw%10) + 1
		tk := NewTopK(k)
		dists := make([]float32, 50)
		for i := range dists {
			dists[i] = float32(r.Float64())
			tk.Push(i, dists[i])
		}
		kept := tk.Sorted()
		keptSet := map[int]bool{}
		var maxKept float32
		for _, n := range kept {
			keptSet[n.Index] = true
			if n.Dist > maxKept {
				maxKept = n.Dist
			}
		}
		for i, d := range dists {
			if !keptSet[i] && d < maxKept {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// heapRef replicates the previous container/heap-backed TopK so the
// hand-rolled heap can be pinned bit-identical to it, ties included.
type heapRef []Neighbor

func (h heapRef) Len() int            { return len(h) }
func (h heapRef) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h heapRef) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *heapRef) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *heapRef) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func refTopK(k int, push func(add func(int, float32))) []Neighbor {
	h := make(heapRef, 0, k)
	add := func(index int, dist float32) {
		if len(h) < k {
			heap.Push(&h, Neighbor{Index: index, Dist: dist})
			return
		}
		if dist < h[0].Dist {
			h[0] = Neighbor{Index: index, Dist: dist}
			heap.Fix(&h, 0)
		}
	}
	push(add)
	out := make([]Neighbor, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Neighbor)
	}
	return out
}

// TestTopKMatchesContainerHeapBitwise drives the hand-rolled heap and a
// container/heap reference with identical push sequences — heavy with
// duplicate distances, where sift order is observable — and requires
// identical output, index for index.
func TestTopKMatchesContainerHeapBitwise(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 200; trial++ {
		k := 1 + r.Intn(12)
		n := 1 + r.Intn(80)
		dists := make([]float32, n)
		for i := range dists {
			// Draw from 8 discrete levels so ties are common.
			dists[i] = float32(r.Intn(8))
		}
		tk := NewTopK(k)
		for i, d := range dists {
			tk.Push(i, d)
		}
		got := tk.Sorted()
		want := refTopK(k, func(add func(int, float32)) {
			for i, d := range dists {
				add(i, d)
			}
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: %+v vs container/heap %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestTopKResetReuseNoAllocs pins the scratch contract: after one
// warm-up cycle, Reset + Push + AppendSorted allocate nothing.
func TestTopKResetReuseNoAllocs(t *testing.T) {
	tk := NewTopK(8)
	out := make([]Neighbor, 0, 8)
	run := func() {
		tk.Reset(8)
		for i := 0; i < 50; i++ {
			tk.Push(i, float32((i*37)%50))
		}
		out = tk.AppendSorted(out[:0])
	}
	run()
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("TopK reuse allocates %.1f objects per cycle", allocs)
	}
	if len(out) != 8 || out[0].Dist != 0 {
		t.Fatalf("reused TopK produced %v", out)
	}
}

func TestRowNorms(t *testing.T) {
	rows := []float32{1, 2, 3, 4, 0, 0}
	got := RowNorms(rows, 2, nil)
	want := []float32{5, 25, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RowNorms = %v, want %v", got, want)
		}
	}
	// In-place reuse fills the provided buffer.
	buf := make([]float32, 3)
	if &RowNorms(rows, 2, buf)[0] != &buf[0] {
		t.Fatal("RowNorms did not reuse the provided buffer")
	}
}

// TestArgminNormScoreMatchesExact checks the decomposed argmin against
// the exact scan on Gaussian data: same winner, and the reconstructed
// distance (qnorm + score) matches the exact distance to rounding.
func TestArgminNormScoreMatchesExact(t *testing.T) {
	r := rng.New(6)
	const dim, n = 16, 200
	rows := make([]float32, n*dim)
	for i := range rows {
		rows[i] = float32(r.NormFloat64())
	}
	norms := RowNorms(rows, dim, nil)
	for trial := 0; trial < 50; trial++ {
		q := make([]float32, dim)
		for i := range q {
			q[i] = float32(r.NormFloat64())
		}
		wantIdx, wantD := ArgminL2(q, rows, dim)
		gotIdx, score := ArgminNormScore(q, rows, norms, dim)
		if gotIdx != wantIdx {
			t.Fatalf("trial %d: decomposed argmin %d, exact %d", trial, gotIdx, wantIdx)
		}
		d := float64(Norm2(q) + score)
		if math.Abs(d-float64(wantD)) > 1e-3 {
			t.Fatalf("trial %d: reconstructed dist %v vs exact %v", trial, d, wantD)
		}
	}
}

func TestArgminNormScorePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArgminNormScore on empty matrix did not panic")
		}
	}()
	ArgminNormScore([]float32{1}, nil, nil, 1)
}

// TestBruteForcerMatchesBruteForceTopK pins the norm-decomposed
// brute-forcer to the exact reference: identical indices, distances
// equal to rounding, and zero steady-state allocations.
func TestBruteForcerMatchesBruteForceTopK(t *testing.T) {
	r := rng.New(7)
	const dim, n, k = 8, 300, 9
	rows := make([]float32, n*dim)
	for i := range rows {
		rows[i] = float32(r.NormFloat64())
	}
	bf := NewBruteForcer(rows, dim)
	out := make([]Neighbor, 0, k)
	for trial := 0; trial < 30; trial++ {
		q := make([]float32, dim)
		for i := range q {
			q[i] = float32(r.NormFloat64())
		}
		want := BruteForceTopK(q, rows, dim, k)
		out = bf.AppendTopK(out[:0], q, k)
		if len(out) != len(want) {
			t.Fatalf("lengths differ: %d vs %d", len(out), len(want))
		}
		for i := range out {
			if out[i].Index != want[i].Index {
				t.Fatalf("trial %d rank %d: index %d vs %d", trial, i, out[i].Index, want[i].Index)
			}
			if math.Abs(float64(out[i].Dist-want[i].Dist)) > 1e-3 {
				t.Fatalf("trial %d rank %d: dist %v vs %v", trial, i, out[i].Dist, want[i].Dist)
			}
		}
	}
	q := rows[:dim]
	bf.AppendTopK(out[:0], q, k)
	if allocs := testing.AllocsPerRun(50, func() {
		out = bf.AppendTopK(out[:0], q, k)
	}); allocs != 0 {
		t.Fatalf("AppendTopK allocates %.1f objects per query", allocs)
	}
}
