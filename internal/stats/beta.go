// Package stats provides the statistical machinery behind
// VectorLiteRAG's analytical models: the Beta distribution used for
// per-query hit rates (paper §IV-A2), first-order-statistic integrals
// for the minimum hit rate within a batch (Eq. 2), percentile and
// histogram utilities for latency metrics, and piecewise-linear models
// for search-latency-vs-batch-size curves (paper Fig. 8).
package stats

import (
	"fmt"
	"math"
)

// Beta is a Beta(alpha, beta) distribution on [0, 1]. The paper models
// per-query cache hit rates with this family because it is the standard
// Bayesian choice for [0,1]-constrained variables and its variance has
// the same parabolic η(1-η) shape observed empirically (Fig. 8 right).
type Beta struct {
	Alpha, Beta float64
}

// NewBetaFromMoments returns the Beta distribution with the given mean
// and variance. It returns an error when the moments are infeasible
// (mean outside (0,1), or variance >= mean(1-mean), which no Beta can
// achieve).
func NewBetaFromMoments(mean, variance float64) (Beta, error) {
	if mean <= 0 || mean >= 1 {
		return Beta{}, fmt.Errorf("stats: beta mean %v outside (0,1)", mean)
	}
	limit := mean * (1 - mean)
	if variance <= 0 {
		return Beta{}, fmt.Errorf("stats: beta variance %v must be positive", variance)
	}
	if variance >= limit {
		return Beta{}, fmt.Errorf("stats: beta variance %v >= mean(1-mean)=%v is infeasible", variance, limit)
	}
	// Method of moments: nu = mean(1-mean)/var - 1; alpha = mean*nu.
	nu := limit/variance - 1
	return Beta{Alpha: mean * nu, Beta: (1 - mean) * nu}, nil
}

// Mean returns alpha/(alpha+beta).
func (b Beta) Mean() float64 { return b.Alpha / (b.Alpha + b.Beta) }

// Variance returns the distribution variance.
func (b Beta) Variance() float64 {
	s := b.Alpha + b.Beta
	return b.Alpha * b.Beta / (s * s * (s + 1))
}

// PDF evaluates the density at x in [0, 1].
func (b Beta) PDF(x float64) float64 {
	if x < 0 || x > 1 {
		return 0
	}
	if x == 0 || x == 1 {
		// Handle boundary: density may be infinite; return a large finite
		// value only when the exponent is negative, else 0.
		if (x == 0 && b.Alpha < 1) || (x == 1 && b.Beta < 1) {
			return math.Inf(1)
		}
		if (x == 0 && b.Alpha > 1) || (x == 1 && b.Beta > 1) {
			return 0
		}
	}
	logPDF := (b.Alpha-1)*math.Log(x) + (b.Beta-1)*math.Log(1-x) - logBetaFn(b.Alpha, b.Beta)
	return math.Exp(logPDF)
}

// CDF evaluates the cumulative distribution at x via the regularized
// incomplete beta function I_x(alpha, beta).
func (b Beta) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return RegIncBeta(b.Alpha, b.Beta, x)
}

// Quantile returns the x with CDF(x) = p, by bisection. p outside [0,1]
// is clamped.
func (b Beta) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if b.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ExpectedMin returns E[min of n iid draws], the first-order statistic
// mean from the paper's Eq. 2:
//
//	eta_min(n) = ∫ n·x·f(x)·(1-F(x))^(n-1) dx
//
// Rather than integrating that density form directly — which is
// numerically treacherous when alpha or beta < 1 (the density is
// singular at the boundary and fixed-grid quadrature silently drops
// mass) — we integrate the equivalent survival form obtained by parts:
//
//	E[min] = ∫ (1-F(x))^n dx
//
// whose integrand is bounded in [0,1] everywhere. n must be >= 1;
// n = 1 reduces to the distribution mean.
func (b Beta) ExpectedMin(n int) float64 {
	if n <= 1 {
		return b.Mean()
	}
	const steps = 2000 // even
	h := 1.0 / steps
	f := func(x float64) float64 {
		surv := 1 - b.CDF(x)
		if surv <= 0 {
			return 0
		}
		return math.Pow(surv, float64(n))
	}
	sum := f(0) + f(1)
	for i := 1; i < steps; i++ {
		x := float64(i) * h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// logBetaFn returns ln B(a, b) = lnΓ(a) + lnΓ(b) − lnΓ(a+b).
func logBetaFn(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued-fraction expansion from Numerical
// Recipes (Lentz's method), accurate to ~1e-12 for moderate a, b.
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lnFront := a*math.Log(x) + b*math.Log(1-x) - logBetaFn(a, b)
	front := math.Exp(lnFront)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 1e-14
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
