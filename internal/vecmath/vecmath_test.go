package vecmath

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"vectorliterag/internal/rng"
)

func TestSquaredL2Basic(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 6, 3}
	if got := SquaredL2(a, b); got != 25 {
		t.Fatalf("SquaredL2 = %v, want 25", got)
	}
}

func TestSquaredL2Zero(t *testing.T) {
	a := []float32{1.5, -2.5}
	if got := SquaredL2(a, a); got != 0 {
		t.Fatalf("distance to self = %v, want 0", got)
	}
}

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestSquaredL2MatchesExpansion(t *testing.T) {
	// ||a-b||^2 == ||a||^2 + ||b||^2 - 2<a,b>, a property the PQ LUT
	// construction relies on.
	r := rng.New(1)
	if err := quick.Check(func(seed uint16) bool {
		a := make([]float32, 8)
		b := make([]float32, 8)
		for i := range a {
			a[i] = float32(r.NormFloat64())
			b[i] = float32(r.NormFloat64())
		}
		lhs := float64(SquaredL2(a, b))
		rhs := float64(Norm2(a)) + float64(Norm2(b)) - 2*float64(Dot(a, b))
		return math.Abs(lhs-rhs) < 1e-3
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddScale(t *testing.T) {
	v := []float32{1, 2}
	Add(v, []float32{3, 4})
	if v[0] != 4 || v[1] != 6 {
		t.Fatalf("Add gave %v", v)
	}
	Scale(v, 0.5)
	if v[0] != 2 || v[1] != 3 {
		t.Fatalf("Scale gave %v", v)
	}
}

func TestArgminL2(t *testing.T) {
	rows := []float32{
		0, 0,
		5, 5,
		1, 1,
	}
	idx, d := ArgminL2([]float32{0.9, 0.9}, rows, 2)
	if idx != 2 {
		t.Fatalf("ArgminL2 index = %d, want 2", idx)
	}
	if math.Abs(float64(d)-0.02) > 1e-5 {
		t.Fatalf("ArgminL2 dist = %v, want ~0.02", d)
	}
}

func TestArgminPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArgminL2 on empty matrix did not panic")
		}
	}()
	ArgminL2([]float32{1}, nil, 1)
}

func TestTopKKeepsSmallest(t *testing.T) {
	tk := NewTopK(3)
	dists := []float32{9, 1, 8, 2, 7, 3}
	for i, d := range dists {
		tk.Push(i, d)
	}
	got := tk.Sorted()
	if len(got) != 3 {
		t.Fatalf("TopK kept %d, want 3", len(got))
	}
	wantIdx := []int{1, 3, 5}
	for i, n := range got {
		if n.Index != wantIdx[i] {
			t.Fatalf("TopK result %d = %+v, want index %d", i, n, wantIdx[i])
		}
	}
}

func TestTopKSortedAscending(t *testing.T) {
	r := rng.New(2)
	tk := NewTopK(10)
	for i := 0; i < 100; i++ {
		tk.Push(i, float32(r.Float64()))
	}
	got := tk.Sorted()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
		t.Fatalf("TopK.Sorted not ascending: %v", got)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(5)
	tk.Push(0, 1)
	tk.Push(1, 2)
	if _, ok := tk.Worst(); ok {
		t.Fatal("Worst reported full before k pushes")
	}
	if got := tk.Sorted(); len(got) != 2 {
		t.Fatalf("Sorted len = %d, want 2", len(got))
	}
}

func TestTopKWorstTracksKth(t *testing.T) {
	tk := NewTopK(2)
	tk.Push(0, 5)
	tk.Push(1, 3)
	if w, ok := tk.Worst(); !ok || w != 5 {
		t.Fatalf("Worst = %v,%v want 5,true", w, ok)
	}
	tk.Push(2, 1)
	if w, _ := tk.Worst(); w != 3 {
		t.Fatalf("Worst after better push = %v, want 3", w)
	}
}

func TestBruteForceTopKMatchesFullSort(t *testing.T) {
	r := rng.New(3)
	const dim, n, k = 4, 200, 7
	rows := make([]float32, n*dim)
	for i := range rows {
		rows[i] = float32(r.NormFloat64())
	}
	q := make([]float32, dim)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	got := BruteForceTopK(q, rows, dim, k)

	type pair struct {
		idx int
		d   float32
	}
	all := make([]pair, n)
	for i := 0; i < n; i++ {
		all[i] = pair{i, SquaredL2(q, rows[i*dim:(i+1)*dim])}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	for i := 0; i < k; i++ {
		if got[i].Index != all[i].idx {
			t.Fatalf("rank %d: got %d want %d", i, got[i].Index, all[i].idx)
		}
	}
}

func TestTopKProperty(t *testing.T) {
	// Property: the max distance kept is <= every discarded distance.
	r := rng.New(4)
	if err := quick.Check(func(kRaw uint8) bool {
		k := int(kRaw%10) + 1
		tk := NewTopK(k)
		dists := make([]float32, 50)
		for i := range dists {
			dists[i] = float32(r.Float64())
			tk.Push(i, dists[i])
		}
		kept := tk.Sorted()
		keptSet := map[int]bool{}
		var maxKept float32
		for _, n := range kept {
			keptSet[n.Index] = true
			if n.Dist > maxKept {
				maxKept = n.Dist
			}
		}
		for i, d := range dists {
			if !keptSet[i] && d < maxKept {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
