package ivf

import (
	"fmt"

	"vectorliterag/internal/hnsw"
)

// CoarseHNSW is an HNSW graph over the index's centroids — how
// production systems accelerate coarse quantization when nlist is
// large (paper §IV-A1). VectorLiteRAG deliberately keeps CQ on the CPU
// (offloading it would add device transitions and graph memory), and
// this type is the concrete structure that decision refers to.
type CoarseHNSW struct {
	graph *hnsw.Index
}

// BuildCoarseHNSW constructs the centroid graph.
func (ix *Index) BuildCoarseHNSW(cfg hnsw.Config) (*CoarseHNSW, error) {
	if cfg.Dim == 0 {
		cfg = hnsw.DefaultConfig(ix.dim)
	}
	if cfg.Dim != ix.dim {
		return nil, fmt.Errorf("ivf: hnsw dim %d != index dim %d", cfg.Dim, ix.dim)
	}
	g, err := hnsw.Build(ix.centroids, cfg)
	if err != nil {
		return nil, fmt.Errorf("ivf: coarse hnsw: %w", err)
	}
	return &CoarseHNSW{graph: g}, nil
}

// Probe returns the approximately nearest nprobe cluster IDs for the
// query, using beam width ef. Compared with Index.Probe (exhaustive
// centroid scan), this trades a little probe recall for sub-linear CQ
// cost — the trade the cost model's sqrt(nlist) CQ scaling encodes.
func (c *CoarseHNSW) Probe(query []float32, nprobe, ef int) []int {
	res := c.graph.Search(query, nprobe, ef)
	out := make([]int, len(res))
	for i, nb := range res {
		out[i] = nb.Index
	}
	return out
}

// MemoryOverheadBytes reports the graph's link storage — the extra
// memory HNSW costs over IVF's flat centroid array.
func (c *CoarseHNSW) MemoryOverheadBytes() int64 {
	return c.graph.MemoryOverheadBytes()
}
