package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
	for _, n := range []int{0, -1} {
		if Workers(n) != runtime.NumCPU() {
			t.Fatalf("Workers(%d) = %d, want NumCPU %d", n, Workers(n), runtime.NumCPU())
		}
	}
}

// TestForCoversRangeOnce: every index is visited exactly once for any
// worker count — the determinism contract's precondition.
func TestForCoversRangeOnce(t *testing.T) {
	const n = 10_000
	for _, workers := range []int{1, 2, 7, 0} {
		visits := make([]int32, n)
		For(n, workers, func(start, end int) {
			if start < 0 || end > n || start >= end {
				t.Errorf("bad chunk [%d,%d)", start, end)
			}
			for i := start; i < end; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestForDeterministic: disjoint-range writes produce identical output
// regardless of worker count.
func TestForDeterministic(t *testing.T) {
	const n = 5000
	run := func(workers int) []int {
		out := make([]int, n)
		For(n, workers, func(start, end int) {
			for i := start; i < end; i++ {
				out[i] = i * i
			}
		})
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 0} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestForEach(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		const n = 500
		visits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	For(0, 4, func(int, int) { t.Fatal("body called for n=0") })
	ForEach(0, 4, func(int) { t.Fatal("body called for n=0") })
	ForEach(-3, 4, func(int) { t.Fatal("body called for n<0") })
	// n smaller than the worker count and the chunk grain.
	count := int32(0)
	For(5, 16, func(start, end int) { atomic.AddInt32(&count, int32(end-start)) })
	if count != 5 {
		t.Fatalf("tiny For covered %d of 5", count)
	}
}
