package retrieval

import (
	"testing"

	"vectorliterag/internal/des"
)

// TestShardRefreshDivertsToCPU exercises the §IV-B3 service-continuity
// path: while a shard reloads, its clusters are served by the CPU —
// slower, but no query is dropped.
func TestShardRefreshDivertsToCPU(t *testing.T) {
	run := func(refresh bool) (int, des.Time) {
		f := setup(t)
		plan := f.plan(t, 0.3, 8)
		hy := NewHybrid(f.cfg, plan, f.gpus, f.gm)
		if refresh {
			for g := 0; g < plan.NumShards; g++ {
				hy.SetShardRefreshing(g, true)
			}
		}
		reqs := f.requests(8)
		f.sim.At(0, func() {
			for _, r := range reqs {
				hy.Submit(r)
			}
		})
		f.sim.Run()
		var last des.Time
		for _, r := range reqs {
			if r.SearchDone > last {
				last = r.SearchDone
			}
		}
		return len(f.done), last
	}
	nNormal, tNormal := run(false)
	nRefresh, tRefresh := run(true)
	if nNormal != 8 || nRefresh != 8 {
		t.Fatalf("queries dropped: normal=%d refresh=%d", nNormal, nRefresh)
	}
	if tRefresh <= tNormal {
		t.Fatalf("CPU fallback during refresh should be slower: %v vs %v", tRefresh, tNormal)
	}
}

// TestPartialRefreshOnlyAffectsThatShard verifies refresh granularity:
// refreshing one shard must cost less than refreshing all of them.
func TestPartialRefreshOnlyAffectsThatShard(t *testing.T) {
	run := func(shards []int) des.Time {
		f := setup(t)
		plan := f.plan(t, 0.3, 8)
		hy := NewHybrid(f.cfg, plan, f.gpus, f.gm)
		for _, g := range shards {
			hy.SetShardRefreshing(g, true)
		}
		reqs := f.requests(8)
		f.sim.At(0, func() {
			for _, r := range reqs {
				hy.Submit(r)
			}
		})
		f.sim.Run()
		var last des.Time
		for _, r := range reqs {
			if r.SearchDone > last {
				last = r.SearchDone
			}
		}
		return last
	}
	one := run([]int{0})
	all := run([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if one >= all {
		t.Fatalf("single-shard refresh (%v) not cheaper than full refresh (%v)", one, all)
	}
}

// TestSetPlanSwapsAtomically verifies the plan swap the update cycle
// performs once new shards are loaded.
func TestSetPlanSwapsAtomically(t *testing.T) {
	f := setup(t)
	oldPlan := f.plan(t, 0.1, 8)
	newPlan := f.plan(t, 0.5, 8)
	hy := NewHybrid(f.cfg, oldPlan, f.gpus, f.gm)
	if hy.Plan() != oldPlan {
		t.Fatal("initial plan not installed")
	}
	hy.SetShardRefreshing(0, true)
	hy.SetPlan(newPlan)
	if hy.Plan() != newPlan {
		t.Fatal("plan swap failed")
	}
	// Refresh flags reset with the new plan.
	reqs := f.requests(6)
	f.sim.At(0, func() {
		for _, r := range reqs {
			hy.Submit(r)
		}
	})
	f.sim.Run()
	if len(f.done) != 6 {
		t.Fatalf("forwarded %d after plan swap", len(f.done))
	}
	// More coverage => GPUs must have been used.
	busy := false
	for _, g := range f.gpus {
		if g.RetrievalBusyUntil() > 0 {
			busy = true
		}
	}
	if !busy {
		t.Fatal("new plan's shards never scanned")
	}
}
