// Package gpu holds the per-device runtime state shared between the
// retrieval engines and the LLM serving engine when both are co-located
// on the same accelerator — the central resource-contention coupling of
// the paper (§III-A):
//
//   - memory: index shard bytes carve directly into the KV-cache pool;
//   - compute: while a retrieval scan kernel is resident, concurrent
//     LLM iterations on the same GPU are stretched by the node's
//     contention factor.
package gpu

import (
	"vectorliterag/internal/des"
	"vectorliterag/internal/hw"
)

// State is the mutable runtime state of one GPU.
type State struct {
	ID   int
	Spec hw.GPU

	// ShardBytes is the index shard resident on this GPU; it reduces the
	// memory available for KV cache.
	ShardBytes int64

	busyUntil des.Time
}

// NewStates creates the node's GPU states.
func NewStates(node hw.Node) []*State {
	out := make([]*State, node.NumGPUs)
	for i := range out {
		out[i] = &State{ID: i, Spec: node.GPU}
	}
	return out
}

// MarkRetrievalBusy records that a retrieval kernel occupies the GPU
// until the given time. Overlapping kernels extend the busy window.
func (s *State) MarkRetrievalBusy(until des.Time) {
	if until > s.busyUntil {
		s.busyUntil = until
	}
}

// RetrievalBusyUntil reports the end of the current retrieval busy
// window (zero when idle).
func (s *State) RetrievalBusyUntil() des.Time { return s.busyUntil }

// StretchForContention returns the wall time an LLM iteration of
// duration d takes when it starts at now, given that retrieval work
// occupies the GPU until busyUntil and degrades co-running work by
// factor f: inside the contention window the iteration progresses at
// rate 1/(1+f), outside at full rate.
func StretchForContention(now des.Time, d des.Time, busyUntil des.Time, f float64) des.Time {
	if d <= 0 || busyUntil <= now || f <= 0 {
		return d
	}
	window := busyUntil - now
	// Work that completes inside the contention window.
	workInWindow := des.Time(float64(window) / (1 + f))
	if d <= workInWindow {
		return des.Time(float64(d) * (1 + f))
	}
	return window + (d - workInWindow)
}

// MemoryFree returns bytes available for KV cache after the reserve and
// the resident shard.
func (s *State) MemoryFree(weightBytesOnGPU int64) int64 {
	free := s.Spec.UsableMem() - weightBytesOnGPU - s.ShardBytes
	if free < 0 {
		return 0
	}
	return free
}
