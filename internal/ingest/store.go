// Package ingest implements the streaming-ingest subsystem: a live
// overlay over the frozen two-scale workload that lets the corpus
// mutate while serving, as ordinary events on the DES timeline.
//
// The shared dataset.Workload and ivf.Index stay immutable — every
// experiment caches and reuses them — so all live state lives here, in
// a Store of per-cluster deltas:
//
//   - inserts are routed to their nearest centroid and land in that
//     cluster's raw-float *append buffer*, brute-force scanned (via
//     vecmath.BruteForcer) and merged into the same TopK as the PQ
//     scan, until a background re-encode folds them into store-owned
//     PQ codes;
//   - deletes set bits in per-cluster *tombstone bitmaps* honored by
//     the masked PQ scans and by the append-buffer scan; tombstoned
//     vectors keep costing scan bytes until a compaction purges them —
//     the EdgeRAG observation that deferred maintenance taxes every
//     query;
//   - the Store doubles as the live cost model: per-cluster logical
//     scan-byte deltas (raw pending vectors cost Dim×4 bytes per
//     logical vector, ~16× their PQ codes on ORCAS-2K) feed the
//     retrieval engines through retrieval.LiveCost, so freshly
//     inserted, not-yet-encoded vectors make probing their cluster
//     measurably more expensive.
//
// Drift trackers (insert residual norms against the routed centroid,
// live cluster-size skew) summarize how far the live corpus has walked
// from the built partition; adapt.Controller reads them to pick
// between a cheap compaction and the full Algorithm-1 re-partition.
package ingest

import (
	"math"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/ivf"
	"vectorliterag/internal/vecmath"
	"vectorliterag/internal/workload"
)

// where a live vector lives.
const (
	locBase = iota // built inverted list (masked by deadBase)
	locApp         // store-owned encoded appends (masked by deadApp)
	locPend        // raw-float append buffer (masked by deadPend)
)

// loc addresses one vector: its cluster and position within that
// cluster's base list, encoded-append list, or pending buffer.
type loc struct {
	cluster int32
	pos     int32
	where   uint8
	dead    bool
}

// clusterState is one cluster's live overlay.
type clusterState struct {
	// Tombstones over the immutable base inverted list, by position.
	deadBase      []uint64
	deadBaseCount int
	// purgedBase counts base tombstones already cost-purged by a
	// compaction: still masked in scans, no longer billed.
	purgedBase int

	// Store-owned encoded appends (IDs + PQ codes) from past re-encodes.
	appIDs       []int32
	appCodes     []byte
	deadApp      []uint64
	deadAppCount int

	// Raw-float append buffer: pending inserts awaiting re-encode.
	pendIDs       []int32
	pendVecs      []float32
	deadPend      []uint64
	deadPendCount int
	bf            *vecmath.BruteForcer // rebuilt lazily after appends
	bfDirty       bool
}

// Store is the live-corpus overlay. It is single-goroutine, like the
// simulator whose events drive it.
type Store struct {
	w   *dataset.Workload
	ix  *ivf.Index
	dim int
	cs  int // PQ code size

	cl      []clusterState
	baseLoc []loc // vector ID → location, IDs < NVectors
	insLoc  []loc // inserted-vector ID - NVectors → location

	// Cost-model scaling: one physical vector stands for logicalPerVec
	// paper-scale vectors; deltas are pre-multiplied by kappa so they
	// add directly onto Workload.ScanBytes results.
	logicalPerVec float64
	encPerVec     float64   // kappa-scaled logical bytes, encoded form
	rawPerVec     float64   // kappa-scaled logical bytes, raw pending form
	basePerVec    []float64 // per-cluster kappa-scaled bytes of one base vector
	delta         []float64 // per-cluster live scan-byte delta

	// Drift trackers.
	baseResidual float64 // corpus mean centroid residual (L2)
	baseSkew     float64 // max/mean cluster size of the built partition
	resSum       float64 // sum of insert residuals
	resN         int

	inserts, deletes int
	pendingTotal     int // live pending vectors across clusters
	encScratch       []byte
}

// NewStore builds the live overlay for a workload. The workload and
// its index are read, never written.
func NewStore(w *dataset.Workload) *Store {
	ix := w.Index
	nlist := ix.NList()
	n := ix.NVectors()
	s := &Store{
		w: w, ix: ix, dim: ix.Dim(), cs: ix.CodeSize(),
		cl:         make([]clusterState, nlist),
		baseLoc:    make([]loc, n),
		basePerVec: make([]float64, nlist),
		delta:      make([]float64, nlist),
		encScratch: make([]byte, ix.CodeSize()),
	}
	spec := w.Spec
	s.logicalPerVec = float64(spec.NVectors) / float64(n)
	kappa := w.Kappa()
	s.encPerVec = s.logicalPerVec * float64(spec.CodeBytes) * kappa
	s.rawPerVec = s.logicalPerVec * float64(spec.Dim) * 4 * kappa
	var resSum float64
	for c := 0; c < nlist; c++ {
		ids := ix.ClusterIDs(c)
		if len(ids) > 0 {
			s.basePerVec[c] = float64(w.ClusterBytes(c)) / float64(len(ids)) * kappa
		}
		for pos, id := range ids {
			s.baseLoc[id] = loc{cluster: int32(c), pos: int32(pos), where: locBase}
			row := w.Data[int(id)*s.dim : (int(id)+1)*s.dim]
			resSum += math.Sqrt(float64(ix.CentroidResidual2(row, c)))
		}
	}
	if n > 0 {
		s.baseResidual = resSum / float64(n)
		maxSz := 0
		for c := 0; c < nlist; c++ {
			if sz := ix.ClusterSize(c); sz > maxSz {
				maxSz = sz
			}
		}
		s.baseSkew = float64(maxSz) / (float64(n) / float64(nlist))
	}
	return s
}

// grow sets bit i of the bitmap, growing it to cover i.
func setBit(bits []uint64, i int) []uint64 {
	for len(bits) <= i>>6 {
		bits = append(bits, 0)
	}
	bits[uint(i)>>6] |= 1 << (uint(i) & 63)
	return bits
}

// Insert routes the vector to its nearest centroid and appends it to
// that cluster's raw pending buffer, assigning the next vector ID. It
// fills the mutation's Cluster and ID fields and returns the cluster.
func (s *Store) Insert(m *workload.Mutation) int {
	c := s.ix.NearestCentroid(m.Vec)
	id := int32(s.ix.NVectors() + len(s.insLoc))
	cl := &s.cl[c]
	s.insLoc = append(s.insLoc, loc{cluster: int32(c), pos: int32(len(cl.pendIDs)), where: locPend})
	cl.pendIDs = append(cl.pendIDs, id)
	cl.pendVecs = append(cl.pendVecs, m.Vec...)
	cl.bfDirty = true
	s.delta[c] += s.rawPerVec
	s.resSum += math.Sqrt(float64(s.ix.CentroidResidual2(m.Vec, c)))
	s.resN++
	s.inserts++
	s.pendingTotal++
	m.Cluster, m.ID = c, id
	return c
}

// Delete resolves the mutation's Pick against the live ID population
// (base corpus plus applied inserts, linear-probing past dead IDs) and
// tombstones the victim. It fills the mutation's Cluster and ID fields
// and returns false when no live vector exists.
func (s *Store) Delete(m *workload.Mutation) bool {
	space := s.ix.NVectors() + len(s.insLoc)
	if space == 0 {
		return false
	}
	start := int(m.Pick % uint64(space))
	for off := 0; off < space; off++ {
		id := start + off
		if id >= space {
			id -= space
		}
		l := s.locOf(id)
		if l.dead {
			continue
		}
		s.kill(l)
		m.Cluster, m.ID = int(l.cluster), int32(id)
		s.deletes++
		return true
	}
	return false
}

func (s *Store) locOf(id int) *loc {
	if id < len(s.baseLoc) {
		return &s.baseLoc[id]
	}
	return &s.insLoc[id-len(s.baseLoc)]
}

// kill sets the tombstone bit for the vector at l and marks it dead.
func (s *Store) kill(l *loc) {
	cl := &s.cl[l.cluster]
	switch l.where {
	case locBase:
		cl.deadBase = setBit(cl.deadBase, int(l.pos))
		cl.deadBaseCount++
	case locApp:
		cl.deadApp = setBit(cl.deadApp, int(l.pos))
		cl.deadAppCount++
	default:
		cl.deadPend = setBit(cl.deadPend, int(l.pos))
		cl.deadPendCount++
		s.pendingTotal--
	}
	l.dead = true
}

// Reencode folds every cluster's live pending vectors into store-owned
// PQ codes (the background re-encode event): each surviving raw vector
// is encoded with the index's quantizer and moved to the encoded
// append list; tombstoned pending vectors are dropped outright. After
// a re-encode the cluster's scan cost charges encoded bytes instead of
// raw floats. It returns how many vectors were encoded.
func (s *Store) Reencode() int {
	quant := s.ix.Quantizer()
	encoded := 0
	for c := range s.cl {
		cl := &s.cl[c]
		if len(cl.pendIDs) == 0 {
			continue
		}
		for pos, id := range cl.pendIDs {
			if isSet(cl.deadPend, pos) {
				s.delta[c] -= s.rawPerVec
				continue
			}
			code := quant.Encode(cl.pendVecs[pos*s.dim:(pos+1)*s.dim], s.encScratch)
			l := &s.insLoc[int(id)-len(s.baseLoc)]
			l.where, l.pos = locApp, int32(len(cl.appIDs))
			cl.appIDs = append(cl.appIDs, id)
			cl.appCodes = append(cl.appCodes, code...)
			s.delta[c] += s.encPerVec - s.rawPerVec
			encoded++
		}
		cl.pendIDs = cl.pendIDs[:0]
		cl.pendVecs = cl.pendVecs[:0]
		cl.deadPend = cl.deadPend[:0]
		cl.deadPendCount = 0
		cl.bf, cl.bfDirty = nil, false
	}
	// pendingTotal tracks live *raw* vectors; every buffer just drained.
	s.pendingTotal = 0
	return encoded
}

// Compact is Reencode plus tombstone purge: encoded append lists are
// rewritten without their dead entries, and base-list tombstones stop
// being billed (the modeled list rewrite; scans still mask them). It
// returns (encoded, purged) counts.
func (s *Store) Compact() (int, int) {
	encoded := s.Reencode()
	purged := 0
	for c := range s.cl {
		cl := &s.cl[c]
		if cl.deadAppCount > 0 {
			keepIDs := cl.appIDs[:0]
			keepCodes := cl.appCodes[:0]
			for pos, id := range cl.appIDs {
				if isSet(cl.deadApp, pos) {
					s.delta[c] -= s.encPerVec
					purged++
					continue
				}
				l := &s.insLoc[int(id)-len(s.baseLoc)]
				l.pos = int32(len(keepIDs))
				keepIDs = append(keepIDs, id)
				keepCodes = append(keepCodes, cl.appCodes[pos*s.cs:(pos+1)*s.cs]...)
			}
			cl.appIDs = keepIDs
			cl.appCodes = keepCodes
			cl.deadApp = cl.deadApp[:0]
			cl.deadAppCount = 0
		}
		if un := cl.deadBaseCount - cl.purgedBase; un > 0 {
			s.delta[c] -= float64(un) * s.basePerVec[c]
			cl.purgedBase = cl.deadBaseCount
			purged += un
		}
	}
	return encoded, purged
}

func isSet(bits []uint64, i int) bool {
	w := uint(i) >> 6
	return int(w) < len(bits) && bits[w]&(1<<(uint(i)&63)) != 0
}

// ScanBytes implements retrieval.LiveCost: the frozen scan cost over
// the probed clusters plus each cluster's live delta (raw pending
// bytes, encoded appends, not-yet-purged tombstones).
func (s *Store) ScanBytes(q dataset.QueryID, clusters []int) int64 {
	var d float64
	for _, c := range clusters {
		d += s.delta[c]
	}
	return s.w.ScanBytes(q, clusters) + int64(d)
}

// ScanBytesAll implements retrieval.LiveCost for the full probe set.
func (s *Store) ScanBytesAll(q dataset.QueryID) int64 {
	var d float64
	for _, c := range s.w.Probes(q) {
		d += s.delta[c]
	}
	return s.w.ScanBytesAll(q) + int64(d)
}

// Search runs the full live three-stage pipeline: probe, then per
// cluster a tombstone-masked PQ scan of the base list, a masked scan
// of the encoded appends, and a BruteForcer scan of the raw pending
// buffer — all merged into one TopK (brute distances are true squared
// L2, commensurate with the LUT's approximate squared distances). It
// is the correctness surface for the overlay (tests, examples); the
// serving engines consume the Store through its cost-model methods.
func (s *Store) Search(q []float32, nprobe, k int) []vecmath.Neighbor {
	probes := s.ix.Probe(q, nprobe)
	lut := s.ix.BuildLUT(q)
	top := vecmath.NewTopK(k)
	for _, c := range probes {
		cl := &s.cl[c]
		s.ix.ScanClusterMasked(lut, c, cl.deadBase, top)
		if len(cl.appIDs) > 0 {
			lut.ScanCodesIDsMasked(cl.appCodes, cl.appIDs, cl.deadApp, top)
		}
		if len(cl.pendIDs) > 0 {
			if cl.bfDirty || cl.bf == nil {
				cl.bf = vecmath.NewBruteForcer(cl.pendVecs, s.dim)
				cl.bfDirty = false
			}
			cl.bf.ScanMaskedInto(top, q, cl.pendIDs, cl.deadPend)
		}
	}
	return top.Sorted()
}

// Alive reports whether the vector ID is live (exists and is not
// tombstoned).
func (s *Store) Alive(id int) bool {
	if id < 0 || id >= s.ix.NVectors()+len(s.insLoc) {
		return false
	}
	return !s.locOf(id).dead
}

// PendingRaw returns how many live raw vectors await re-encode.
func (s *Store) PendingRaw() int { return s.pendingTotal }

// PendingLogical returns the pending buffer size at paper scale — the
// quantity the re-encode cost model prices.
func (s *Store) PendingLogical() int64 {
	return int64(float64(s.pendingTotal) * s.logicalPerVec)
}

// PurgeableLogical returns the paper-scale count of tombstoned vectors
// a compaction would stop billing.
func (s *Store) PurgeableLogical() int64 {
	n := 0
	for c := range s.cl {
		cl := &s.cl[c]
		n += (cl.deadBaseCount - cl.purgedBase) + cl.deadAppCount + cl.deadPendCount
	}
	return int64(float64(n) * s.logicalPerVec)
}

// Inserts and Deletes report applied mutation counts.
func (s *Store) Inserts() int { return s.inserts }

// Deletes reports applied delete count.
func (s *Store) Deletes() int { return s.deletes }

// SizeSkew returns the live partition's max/mean cluster size relative
// to the built partition's — 1.0 at build time, growing as mutations
// concentrate. It is the re-partition escalation signal: a partition
// whose imbalance has outgrown what it was built with needs Algorithm
// 1, not just compaction. (The built partition is itself size-skewed by
// design, so the absolute ratio would read "escalate" on a pristine
// index.)
func (s *Store) SizeSkew() float64 {
	maxSz, total := 0, 0
	for c := range s.cl {
		cl := &s.cl[c]
		sz := s.ix.ClusterSize(c) - cl.deadBaseCount +
			len(cl.appIDs) - cl.deadAppCount +
			len(cl.pendIDs) - cl.deadPendCount
		total += sz
		if sz > maxSz {
			maxSz = sz
		}
	}
	if total == 0 || s.baseSkew == 0 {
		return 0
	}
	mean := float64(total) / float64(len(s.cl))
	return float64(maxSz) / mean / s.baseSkew
}

// ResidualRatio returns the mean centroid residual of live inserts
// over the built corpus's mean residual — >1 means new vectors land
// farther from their centroids than the partition was trained for.
func (s *Store) ResidualRatio() float64 {
	if s.resN == 0 || s.baseResidual == 0 {
		return 1
	}
	return s.resSum / float64(s.resN) / s.baseResidual
}
