package serve

import (
	"fmt"

	"vectorliterag/internal/workload"
)

// TenantClass describes one tenant's scheduling parameters: Weight is
// its deficit-round-robin quantum (requests per round) and Priority its
// dispatch rank within a round (lower is served first). In a tiered
// deployment both derive from the tenant's SLO tier.
type TenantClass struct {
	Weight   int
	Priority int
}

// FairScheduler is the multi-tenant admission stage: one FIFO queue per
// tenant, a bound on how many requests may occupy the downstream
// (retrieval) section at once, and a priority-ordered deficit
// weighted-round-robin dispatch rule.
//
// Dispatch discipline: each round grants tenant i a quantum of
// Weight(i) dispatches. Among tenants with quantum and queued work, the
// lowest Priority is always served first — a newly arrived gold request
// therefore overtakes every queued bronze request (tier-aware
// preemption of queue order; service already underway in the engines is
// never interrupted). When no tenant with remaining quantum has queued
// work, the round ends and quanta replenish, so under saturation
// long-run shares converge to the weights and no tenant starves.
//
// The in-flight bound is what creates isolation: without it (the
// shared-queue baseline) a burst from one tenant floods the retrieval
// engine's internal batch queue and every other tenant's requests wait
// behind it; with it, the surplus waits in the bursting tenant's own
// queue while other tenants' arrivals flow through WRR. Release must be
// wired to fire when a request leaves the metered section.
//
// On top of the global bound, each tenant holds at most its weight
// share of the slots (rounded up). The global bound alone cannot stop
// a bursting tenant from filling every *idle* slot — WRR is work-
// conserving — and downstream the engine batches whatever is in
// flight, so one tenant's occupied slots become co-batched scan work
// and LLM queue entries that stretch everyone's latency. The per-
// tenant cap trades that idle capacity for latency isolation, the same
// trade weighted-fair-queueing makes with per-class limits.
type FairScheduler struct {
	classes     []TenantClass
	queues      []reqRing
	rem         []int // remaining quantum this round
	lastServed  []int // dispatch serial of the tenant's latest dispatch
	serial      int
	queued      int
	inflight    int
	inflightBy  []int // per-tenant slots currently held
	caps        []int // per-tenant slot caps (weight share, rounded up)
	maxInflight int
	next        Sink

	// Bounded admission (overload control): with queueCap > 0, a tenant
	// whose own queue already holds queueCap requests has new arrivals
	// rejected at the door instead of enqueued — a rejected request costs
	// ~0 service time, a queued-then-timed-out one occupies the node
	// while it ages past its SLO (the metastable regime of faults.go,
	// reproducible from pure load). Rejections flow to the reject sink
	// (typically Collector.Abandon so they surface as unserved) and never
	// touch the in-flight accounting. Caps are per-tenant by
	// construction: one tenant filling its queue cannot cause another's
	// rejection.
	queueCap   int
	reject     Sink
	rejected   []int // per-tenant rejection totals (stats)
	onDispatch func(*workload.Request)

	dispatched []int // per-tenant dispatch totals (stats)
	peakQueue  []int // per-tenant queue high-water marks (stats)
}

// reqRing is an allocation-free FIFO of requests: a power-of-two ring
// that doubles on overflow and otherwise reuses its backing array
// forever. The previous slice-of-slices queues re-sliced their heads
// away (q = q[1:]), marching the backing array forward and forcing a
// fresh allocation every time append caught up — one of the steady-
// state allocation sources the serving-core rewrite removes.
type reqRing struct {
	buf        []*workload.Request
	head, size int
}

func (q *reqRing) len() int { return q.size }

func (q *reqRing) push(r *workload.Request) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)&(len(q.buf)-1)] = r
	q.size++
}

func (q *reqRing) pop() *workload.Request {
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.size--
	return r
}

func (q *reqRing) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]*workload.Request, n)
	for i := 0; i < q.size; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}

// NewFairScheduler builds a scheduler for the given tenant classes.
// maxInflight bounds requests concurrently past the scheduler
// (non-positive defaults to 128 — two full retrieval batches, so the
// engine always has a next batch queued while one is in service).
// Weights below 1 are raised to 1 so every tenant makes progress.
func NewFairScheduler(classes []TenantClass, maxInflight int) (*FairScheduler, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("serve: fair scheduler needs at least one tenant class")
	}
	if maxInflight <= 0 {
		maxInflight = 128
	}
	s := &FairScheduler{
		classes:     append([]TenantClass(nil), classes...),
		queues:      make([]reqRing, len(classes)),
		rem:         make([]int, len(classes)),
		lastServed:  make([]int, len(classes)),
		inflightBy:  make([]int, len(classes)),
		caps:        make([]int, len(classes)),
		rejected:    make([]int, len(classes)),
		dispatched:  make([]int, len(classes)),
		peakQueue:   make([]int, len(classes)),
		maxInflight: maxInflight,
	}
	total := 0
	for i := range s.classes {
		if s.classes[i].Weight < 1 {
			s.classes[i].Weight = 1
		}
		s.rem[i] = s.classes[i].Weight
		total += s.classes[i].Weight
	}
	for i := range s.classes {
		// Floor division keeps the sum of caps at or under the global
		// bound, so a capped-out tenant cannot squeeze another tenant's
		// share — except where the one-slot minimum below kicks in
		// (bounds smaller than the weight total), where the global
		// bound wins and low-weight tenants may transiently crowd a
		// heavier one. Size maxInflight at or above the weight total to
		// keep the no-squeeze guarantee exact.
		s.caps[i] = maxInflight * s.classes[i].Weight / total
		if s.caps[i] < 1 {
			s.caps[i] = 1
		}
	}
	return s, nil
}

// Scheduled wraps an existing scheduler as a pipeline stage builder,
// binding its downstream sink. The scheduler object is created up front
// (like a Collector) so the retrieval stage's forward hook can also
// reference Release.
func Scheduled(s *FairScheduler) Builder {
	return func(next Sink) (Stage, error) {
		if s == nil {
			return nil, fmt.Errorf("serve: nil fair scheduler")
		}
		s.next = next
		return s, nil
	}
}

// SetAdmission bounds every per-tenant queue at cap requests and routes
// rejected arrivals to the given sink. A non-positive cap disables the
// bound (the default: unbounded queues, byte-identical to the scheduler
// before admission control existed). Call before the run starts.
func (s *FairScheduler) SetAdmission(cap int, reject Sink) {
	s.queueCap = cap
	s.reject = reject
}

// SetOnDispatch installs a hook invoked on each request immediately
// before it is forwarded downstream — the brownout controller's stamp
// point, where shed fractions are applied at dispatch time (so a
// request queued before the controller raised its level still gets the
// current rung). Call before the run starts.
func (s *FairScheduler) SetOnDispatch(fn func(*workload.Request)) {
	s.onDispatch = fn
}

// Rejected returns how many of tenant t's arrivals were refused at
// admission.
func (s *FairScheduler) Rejected(t int) int { return s.rejected[t] }

// Submit implements Stage: enqueue under the request's tenant and
// dispatch as far as the in-flight bound allows. With admission control
// installed, an arrival to a full tenant queue is rejected instead.
func (s *FairScheduler) Submit(req *workload.Request) {
	t := s.clamp(req.Tenant) // untagged requests ride the first class
	if s.queueCap > 0 && s.queues[t].len() >= s.queueCap {
		s.rejected[t]++
		if s.reject != nil {
			s.reject(req)
		}
		return
	}
	s.queues[t].push(req)
	s.queued++
	if n := s.queues[t].len(); n > s.peakQueue[t] {
		s.peakQueue[t] = n
	}
	s.dispatch()
}

// Name implements Stage.
func (s *FairScheduler) Name() string {
	return fmt.Sprintf("fair-scheduler(%d tenants)", len(s.classes))
}

// Release records one request leaving the metered section and refills
// the freed slot from the queues. The request identifies whose slot
// frees; wire it into the boundary where requests exit the section.
func (s *FairScheduler) Release(req *workload.Request) {
	if s.inflight > 0 {
		s.inflight--
	}
	if req != nil {
		if t := s.clamp(req.Tenant); s.inflightBy[t] > 0 {
			s.inflightBy[t]--
		}
	}
	s.dispatch()
}

// clamp maps stray tenant IDs onto the first class.
func (s *FairScheduler) clamp(t int) int {
	if t < 0 || t >= len(s.queues) {
		return 0
	}
	return t
}

// dispatch drains queues into the downstream stage while slots remain.
func (s *FairScheduler) dispatch() {
	for s.queued > 0 && s.inflight < s.maxInflight {
		t := s.pick()
		if t < 0 {
			return // every queued tenant is at its per-tenant cap
		}
		req := s.queues[t].pop()
		s.queued--
		s.rem[t]--
		s.serial++
		s.lastServed[t] = s.serial
		s.dispatched[t]++
		s.inflight++
		s.inflightBy[t]++
		if s.onDispatch != nil {
			s.onDispatch(req)
		}
		s.next(req)
	}
}

// pick selects the next tenant: among tenants with queued work,
// remaining quantum, and a free slot under their per-tenant cap, the
// lowest Priority wins, ties going to the least recently served (then
// the lower index). If every eligible tenant has exhausted its quantum
// the round ends and quanta replenish; if no tenant is eligible even
// with fresh quanta (all capped), pick reports -1.
func (s *FairScheduler) pick() int {
	for pass := 0; pass < 2; pass++ {
		best := -1
		for i := range s.queues {
			if s.queues[i].len() == 0 || s.rem[i] <= 0 || s.inflightBy[i] >= s.caps[i] {
				continue
			}
			if best < 0 || s.better(i, best) {
				best = i
			}
		}
		if best >= 0 {
			return best
		}
		for i := range s.rem {
			s.rem[i] = s.classes[i].Weight
		}
	}
	return -1
}

// better reports whether tenant i should be served before tenant j.
func (s *FairScheduler) better(i, j int) bool {
	if s.classes[i].Priority != s.classes[j].Priority {
		return s.classes[i].Priority < s.classes[j].Priority
	}
	if s.lastServed[i] != s.lastServed[j] {
		return s.lastServed[i] < s.lastServed[j]
	}
	return i < j
}

// Inflight returns the requests currently inside the metered section.
func (s *FairScheduler) Inflight() int { return s.inflight }

// Cap returns tenant t's per-tenant slot cap.
func (s *FairScheduler) Cap(t int) int { return s.caps[t] }

// QueueLen returns tenant t's current queue depth.
func (s *FairScheduler) QueueLen(t int) int { return s.queues[t].len() }

// PeakQueue returns tenant t's queue high-water mark.
func (s *FairScheduler) PeakQueue(t int) int { return s.peakQueue[t] }

// Dispatched returns how many of tenant t's requests were sent
// downstream.
func (s *FairScheduler) Dispatched(t int) int { return s.dispatched[t] }
