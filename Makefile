# Developer entry points. CI runs `make verify`, `make bench-smoke`,
# and `make examples-smoke`.

GO ?= go

.PHONY: verify build test vet race bench bench-search bench-smoke examples-smoke fmt

verify: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full micro-benchmark sweep (one iteration each; sanity, not timing).
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Timed search-kernel benchmarks — the numbers tracked in
# BENCH_search.json (see also `vliterag run -exp bench`).
bench-search:
	$(GO) test -run=NONE -bench=Search -benchmem -benchtime=2s ./...

# One-iteration compile-and-run of the search kernel benchmarks; CI runs
# this so the benchmarks cannot rot.
bench-smoke:
	$(GO) test -run=NONE -bench=Search -benchtime=1x ./...

# Run every example binary in quick mode. `go test` only compiles the
# examples; this actually executes them, so their output paths cannot
# rot. CI runs it.
examples-smoke:
	@set -e; for d in ./examples/*/; do \
		echo "==> $$d"; \
		$(GO) run "$$d" -quick; \
	done

fmt:
	gofmt -l -w .
