package serve

import (
	"fmt"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/workload"
)

// Exchange is the Router recast as a cross-shard event exchange for
// parallel sharded runs: the front shard owns arrivals, routing, and
// the request pool; each replica pipeline lives on its own shard; and
// the only coupling between timelines is two message links per
// replica, each carrying an explicit network delay that doubles as the
// conservative lookahead window:
//
//	front ── request, arrival+net ──▶ replica
//	front ◀─ notice, completion+net ── replica
//
// Routing state (in-flight gauges, the round-robin cursor, submitted
// counts) lives entirely on the front shard, so the least-loaded
// policy reads gauges decremented by completion *notices* — load
// information that is one network delay stale, exactly as a real
// cluster front end would see it. That staleness is part of the
// modeled semantics, not an artifact: it is identical for every worker
// count, which is what keeps the merged schedule bit-identical from
// workers=1 to workers=N.
//
// Completed requests return to the front-owned pool via the notice
// link, preserving the allocation-free pooled request lifecycle: after
// the in-flight ramp, arrivals reuse requests the notices brought
// home.
type Exchange struct {
	group  *des.Group
	front  *des.Shard
	reps   []*des.Shard
	fwd    []*des.Link
	notice []*des.Link
	heads  []Sink

	policy    Policy
	netDelay  des.Time
	fbDelay   des.Time
	pool      *workload.Pool
	inflight  []int
	submitted []int
	next      int
	arrivals  int
}

// NewExchange builds the sharded cluster front end: one front shard
// plus one shard per replica, wired with forward (request) links of
// netDelay and feedback (completion-notice) links of feedbackDelay.
// Both delays must be positive — they are the lookahead conservative
// synchronization runs on. pool may be nil; when set, completion
// notices recycle requests into it.
func NewExchange(policy Policy, replicas int, netDelay, feedbackDelay time.Duration, pool *workload.Pool) (*Exchange, error) {
	policy, err := ResolvePolicy(policy)
	if err != nil {
		return nil, err
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("serve: exchange needs at least one replica, got %d", replicas)
	}
	if netDelay <= 0 || feedbackDelay <= 0 {
		return nil, fmt.Errorf("serve: exchange needs positive network delays (the conservative lookahead), got %v/%v", netDelay, feedbackDelay)
	}
	x := &Exchange{
		policy:    policy,
		netDelay:  des.Time(netDelay),
		fbDelay:   des.Time(feedbackDelay),
		pool:      pool,
		group:     des.NewGroup(),
		heads:     make([]Sink, replicas),
		inflight:  make([]int, replicas),
		submitted: make([]int, replicas),
	}
	x.front = x.group.AddShard()
	for i := 0; i < replicas; i++ {
		i := i
		rep := x.group.AddShard()
		x.reps = append(x.reps, rep)
		fwd, err := des.Connect(x.front, rep, x.netDelay, func(arg any) {
			x.heads[i](arg.(*workload.Request))
		})
		if err != nil {
			return nil, err
		}
		back, err := des.Connect(rep, x.front, x.fbDelay, func(arg any) {
			req := arg.(*workload.Request)
			x.inflight[i]--
			if x.pool != nil {
				x.pool.Put(req)
			}
		})
		if err != nil {
			return nil, err
		}
		x.fwd = append(x.fwd, fwd)
		x.notice = append(x.notice, back)
	}
	return x, nil
}

// Group returns the underlying shard group.
func (x *Exchange) Group() *des.Group { return x.group }

// FrontSim returns the front shard's simulator — where arrivals,
// drift events, and routing execute.
func (x *Exchange) FrontSim() *des.Sim { return &x.front.Sim }

// ReplicaSim returns replica i's simulator; build that replica's
// pipeline on it.
func (x *Exchange) ReplicaSim(i int) *des.Sim { return &x.reps[i].Sim }

// Replicas returns the replica count.
func (x *Exchange) Replicas() int { return len(x.reps) }

// BindReplica installs replica i's pipeline head; forwarded requests
// enter it when their network transit ends.
func (x *Exchange) BindReplica(i int, head Sink) { x.heads[i] = head }

// NoticeSink returns the sink replica i's pipeline must invoke as its
// terminal stage (after its collector snapshot): it ships the
// completed request back to the front, one feedback delay later. The
// replica must not touch the request afterwards — ownership moves back
// to the front shard with the message.
func (x *Exchange) NoticeSink(i int) Sink {
	l := x.notice[i]
	sim := &x.reps[i].Sim
	d := x.fbDelay
	return func(req *workload.Request) {
		l.Send(sim.Now()+d, req)
	}
}

// Submit routes one arrival — the front pipeline's head. It restamps
// the request ID with the global arrival index (so per-replica records
// merge back into front arrival order even when several generators
// multiplex onto the front timeline), picks a replica with the same
// scan and round-robin tie-break as Router.Submit, and puts the
// request on the wire.
func (x *Exchange) Submit(req *workload.Request) {
	req.ID = x.arrivals
	x.arrivals++
	n := len(x.fwd)
	pick := x.next % n
	if x.policy == LeastLoaded {
		best := x.inflight[pick]
		for k := 1; k < n; k++ {
			c := (x.next + k) % n
			if x.inflight[c] < best {
				best, pick = x.inflight[c], c
			}
		}
	}
	x.next++
	x.inflight[pick]++
	x.submitted[pick]++
	x.fwd[pick].Send(x.front.Sim.Now()+x.netDelay, req)
}

// Arrivals returns how many requests have been routed.
func (x *Exchange) Arrivals() int { return x.arrivals }

// Submitted returns how many requests were routed to replica i.
func (x *Exchange) Submitted(i int) int { return x.submitted[i] }

// Inflight returns the front's (notice-delayed) in-flight gauge for
// replica i.
func (x *Exchange) Inflight(i int) int { return x.inflight[i] }

// Run executes every shard to the deadline on the given number of
// worker goroutines. The result is bit-identical for any workers
// value; workers ≤ 1 stays on the calling goroutine.
func (x *Exchange) Run(deadline des.Time, workers int) {
	x.group.Run(deadline, workers)
}

// DrainArrivals hands over requests that were still in network transit
// toward a replica when the clock stopped (routed inside the last
// netDelay of the run). Call after Run; the merge step records them as
// admitted-but-unserved, as the single-timeline collector did.
func (x *Exchange) DrainArrivals(fn func(*workload.Request)) {
	for _, l := range x.fwd {
		l.Drain(func(_ des.Time, arg any) { fn(arg.(*workload.Request)) })
	}
}
