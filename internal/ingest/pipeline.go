package ingest

import (
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/update"
	"vectorliterag/internal/workload"
)

// Config wires an Ingester.
type Config struct {
	Sim   *des.Sim
	Store *Store
	Node  hw.Node
	// ReencodeEvery is the background re-encode cadence; zero disables
	// periodic re-encodes (the buffers then only fold on compaction).
	ReencodeEvery time.Duration
	// Horizon bounds the periodic re-encode schedule, like a
	// generator's arrival deadline.
	Horizon des.Time
}

// Ingester is the serial ingest station: mutations queue FIFO and are
// applied one at a time with modeled host cost (routing CQ + append
// for inserts, tombstone set for deletes); the periodic background
// re-encode occupies the same station for its modeled encode time, so
// mutations arriving during a fold wait — the mechanism behind the
// re-encode-cadence freshness dips (and, pushed far enough, the
// metastable regime where folds steal the station for longer than the
// cadence between them).
//
// A mutation becomes *searchable* when its apply completes:
// Mutation.AppliedAt is stamped at service completion and
// time-to-searchable is AppliedAt - ArrivalAt.
type Ingester struct {
	sim   *des.Sim
	store *Store
	node  hw.Node

	insertCost time.Duration
	deleteCost time.Duration

	queue []*workload.Mutation
	head  int
	busy  bool

	reencodeEvery   time.Duration
	horizon         des.Time
	reencodePending bool
	reencodes       int
	compactions     int

	log []workload.Mutation

	// Pre-bound callbacks for allocation-free scheduling.
	finishMut      func()
	finishReencode func()
	tick           func()
}

// New wires an ingest station onto the simulator and, when a cadence
// is configured, arms the periodic re-encode.
func New(cfg Config) *Ingester {
	ing := &Ingester{
		sim: cfg.Sim, store: cfg.Store, node: cfg.Node,
		insertCost:    update.InsertTime(cfg.Node, cfg.Store.w.Spec),
		deleteCost:    update.DeleteTime(),
		reencodeEvery: cfg.ReencodeEvery,
		horizon:       cfg.Horizon,
	}
	ing.finishMut = ing.onFinishMut
	ing.finishReencode = ing.onFinishReencode
	ing.tick = ing.onTick
	if ing.reencodeEvery > 0 {
		ing.sim.At(des.Time(ing.reencodeEvery), ing.tick)
	}
	return ing
}

// Submit enqueues a mutation at its arrival instant — wire it as the
// MutationGen submit callback.
func (ing *Ingester) Submit(m *workload.Mutation) {
	ing.queue = append(ing.queue, m)
	ing.kick()
}

// kick starts the next unit of station work if the station is idle. A
// pending re-encode runs before queued mutations: the fold was due
// first.
func (ing *Ingester) kick() {
	if ing.busy {
		return
	}
	if ing.reencodePending {
		ing.busy = true
		ing.sim.After(update.ReencodeTime(ing.node, ing.store.w.Spec, ing.store.PendingLogical()), ing.finishReencode)
		return
	}
	if ing.head >= len(ing.queue) {
		return
	}
	ing.busy = true
	m := ing.queue[ing.head]
	if m.Kind == workload.MutInsert {
		ing.sim.After(ing.insertCost, ing.finishMut)
	} else {
		ing.sim.After(ing.deleteCost, ing.finishMut)
	}
}

// onFinishMut applies the head mutation at its service-completion
// instant and records it in the log.
func (ing *Ingester) onFinishMut() {
	m := ing.queue[ing.head]
	ing.queue[ing.head] = nil
	ing.head++
	if ing.head > 256 && ing.head*2 > len(ing.queue) {
		n := copy(ing.queue, ing.queue[ing.head:])
		ing.queue = ing.queue[:n]
		ing.head = 0
	}
	if m.Kind == workload.MutInsert {
		ing.store.Insert(m)
		m.AppliedAt = ing.sim.Now()
	} else if ing.store.Delete(m) {
		m.AppliedAt = ing.sim.Now()
	}
	ing.log = append(ing.log, *m)
	ing.busy = false
	ing.kick()
}

// onTick marks a re-encode due and re-arms the cadence.
func (ing *Ingester) onTick() {
	ing.reencodePending = true
	ing.kick()
	if next := ing.sim.Now() + des.Time(ing.reencodeEvery); next <= ing.horizon {
		ing.sim.At(next, ing.tick)
	}
}

// onFinishReencode folds the pending buffers at the modeled encode
// completion instant.
func (ing *Ingester) onFinishReencode() {
	ing.reencodePending = false
	ing.store.Reencode()
	ing.reencodes++
	ing.busy = false
	ing.kick()
}

// Log returns the applied-mutation records (value snapshots, like a
// collector's request records).
func (ing *Ingester) Log() []workload.Mutation { return ing.log }

// Reencodes reports completed background folds.
func (ing *Ingester) Reencodes() int { return ing.reencodes }

// Compactions reports controller-driven compaction cycles applied.
func (ing *Ingester) Compactions() int { return ing.compactions }

// Queued reports mutations still waiting at the station.
func (ing *Ingester) Queued() int { return len(ing.queue) - ing.head }

// The adapt.Compactor surface: drift trackers plus the cheap
// compaction action. CompactionCost prices the cycle from current
// store state; Compact applies it (the controller models the cost on
// its own timeline, mirroring how full rebuilds run in the
// background).

// SizeSkew exposes the store's live cluster-size skew.
func (ing *Ingester) SizeSkew() float64 { return ing.store.SizeSkew() }

// ResidualRatio exposes the store's insert residual-norm ratio.
func (ing *Ingester) ResidualRatio() float64 { return ing.store.ResidualRatio() }

// CompactionCost prices a compaction cycle at current pending/purge
// volumes.
func (ing *Ingester) CompactionCost() time.Duration {
	return update.CompactionTime(ing.node, ing.store.w.Spec, ing.store.PendingLogical(), ing.store.PurgeableLogical())
}

// Compact folds and purges the store.
func (ing *Ingester) Compact() {
	ing.store.Compact()
	ing.compactions++
}
