package serve

import (
	"testing"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/workload"
)

// TestCollectorStreamsRecordsThroughPooling pins the streaming
// collector's contract under request pooling: Done snapshots the
// final timestamps, after which the same live object can be recycled
// for a later arrival without corrupting the earlier record; requests
// still in flight are re-read at aggregation time so mid-flight state
// (e.g. a first token with decode unfinished) is reported exactly as
// the pre-pooling collector saw it.
func TestCollectorStreamsRecordsThroughPooling(t *testing.T) {
	c := NewCollector()
	pool := &workload.Pool{}

	// Request 0 completes and is released back to the pool.
	r0 := pool.Get()
	r0.ID = 0
	r0.ArrivalAt = 100
	c.Admit(r0)
	r0.FirstToken = 200
	r0.Done = 300
	c.Done(r0)
	pool.Put(r0)

	// Request 1 reuses the same object for a new identity; it stays in
	// flight and keeps mutating after admission.
	r1 := pool.Get()
	if r1 != r0 {
		t.Fatal("pool did not recycle the released request")
	}
	r1.ID = 1
	r1.ArrivalAt = 1000
	c.Admit(r1)
	r1.FirstToken = 1600 // first token emitted, decode still running

	recs := c.Requests()
	if len(recs) != 2 || c.Admitted() != 2 || c.Completed() != 1 {
		t.Fatalf("records=%d admitted=%d completed=%d", len(recs), c.Admitted(), c.Completed())
	}
	if recs[0].ID != 0 || recs[0].ArrivalAt != 100 || recs[0].FirstToken != 200 || recs[0].Done != 300 {
		t.Fatalf("completed record corrupted by pooling: %+v", recs[0])
	}
	if recs[1].ID != 1 || recs[1].FirstToken != 1600 || recs[1].Done != 0 {
		t.Fatalf("in-flight record not refreshed: %+v", recs[1])
	}

	// Summaries see the same view: one served-and-done, one served but
	// stuck (still counted, still in the TTFT percentile set).
	s := c.Summarize(time.Second, des.Time(0))
	if s.N != 2 || s.Unserved != 0 {
		t.Fatalf("summary N=%d unserved=%d", s.N, s.Unserved)
	}
	if s.Attainment != 1 {
		t.Fatalf("attainment %v, both TTFTs are within the SLO", s.Attainment)
	}
}

// TestCollectorSummarizeReusesScratch guards the allocation-free
// aggregation path: repeated Summarize calls on a warm collector do
// not allocate per call.
func TestCollectorSummarizeReusesScratch(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 256; i++ {
		r := &workload.Request{ID: i, ArrivalAt: des.Time(i) * 1000}
		c.Admit(r)
		r.SearchStart = r.ArrivalAt + 10
		r.SearchDone = r.ArrivalAt + 20
		r.LLMStart = r.ArrivalAt + 30
		r.FirstToken = r.ArrivalAt + 40
		r.Done = r.ArrivalAt + 50
		c.Done(r)
	}
	c.Summarize(time.Second, 0) // size the scratch
	allocs := testing.AllocsPerRun(50, func() {
		c.Summarize(time.Second, 0)
	})
	if allocs != 0 {
		t.Fatalf("Summarize allocated %.1f objects/op on a warm collector, want 0", allocs)
	}
}
