package rag

import (
	"fmt"
	"time"

	"vectorliterag/internal/adapt"
	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/des"
	"vectorliterag/internal/hitrate"
	"vectorliterag/internal/ingest"
	"vectorliterag/internal/metrics"
	"vectorliterag/internal/perfmodel"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/retrieval"
	"vectorliterag/internal/rng"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/update"
	"vectorliterag/internal/workload"
)

// IngestOptions configures the streaming-ingest side of a live run:
// insert/delete mutation streams multiplexed onto the serving
// timeline, the background re-encode cadence, and the freshness SLO
// the run is judged against.
type IngestOptions struct {
	// InsertRate and DeleteRate are constant mutation rates in
	// mutations/second. A schedule below overrides the matching constant
	// rate (which then only labels the run), mirroring Options.Rate vs
	// RateSchedule.
	InsertRate float64
	DeleteRate float64
	// InsertSchedule / DeleteSchedule drive the streams as inhomogeneous
	// Poisson processes (ramps, bursts, diurnal cycles).
	InsertSchedule workload.Schedule
	DeleteSchedule workload.Schedule
	// ReencodeEvery is the background fold cadence: pending raw vectors
	// re-encode into PQ appends every such interval (default 25s). The
	// fold occupies the ingest station for its modeled encode time, so
	// an aggressive cadence under heavy ingest is the metastable regime.
	ReencodeEvery time.Duration
	// FreshnessSLO is the time-to-searchable budget (default 500ms).
	FreshnessSLO time.Duration
	// Compaction attaches the adaptive controller's cheap-compaction
	// action: drift triggers below the escalation thresholds run a
	// re-encode + tombstone purge instead of a full Algorithm-1
	// re-partition. Requires the vLiteRAG runtime.
	Compaction bool
	// EscalateSkew / EscalateResidual tune the controller's
	// compaction-vs-rebuild thresholds (zero keeps the adapt package
	// defaults; negative disables the compaction shortcut). Runs whose
	// insert stream tracks a drifting query distribution carry an
	// elevated residual floor by construction and may want the residual
	// threshold above it.
	EscalateSkew     float64
	EscalateResidual float64
}

// active reports whether any mutation stream is configured.
func (io *IngestOptions) active() bool {
	return io.InsertRate > 0 || io.DeleteRate > 0 ||
		io.InsertSchedule != nil || io.DeleteSchedule != nil
}

// validate rejects malformed ingest knobs and fills defaults.
func (io *IngestOptions) validate() error {
	if io.InsertRate < 0 || io.DeleteRate < 0 {
		return fmt.Errorf("rag: negative ingest rate (insert %v, delete %v)", io.InsertRate, io.DeleteRate)
	}
	if io.ReencodeEvery < 0 {
		return fmt.Errorf("rag: negative re-encode interval %v", io.ReencodeEvery)
	}
	for _, s := range []workload.Schedule{io.InsertSchedule, io.DeleteSchedule} {
		if s != nil {
			if err := workload.ValidateSchedule(s); err != nil {
				return fmt.Errorf("rag: %w", err)
			}
		}
	}
	if io.ReencodeEvery == 0 {
		io.ReencodeEvery = 25 * time.Second
	}
	if io.FreshnessSLO == 0 {
		io.FreshnessSLO = 500 * time.Millisecond
	}
	return nil
}

// LiveOptions configures a live-corpus run: the usual serving options
// plus the mutation streams.
type LiveOptions struct {
	Options
	Ingest IngestOptions
	// Monitor tunes the compaction controller's drift detection (used
	// only when Ingest.Compaction is set); zero fields derive defaults
	// exactly as RunAdaptive does.
	Monitor update.MonitorConfig
}

// LiveResult extends a run result with the ingest-side record.
type LiveResult struct {
	Result
	// Freshness summarizes time-to-searchable over the mutation log
	// (warmup excluded), against Ingest.FreshnessSLO.
	Freshness metrics.Freshness
	// FreshnessSLO echoes the budget the summary was computed against.
	FreshnessSLO time.Duration
	// Mutations is the applied-mutation log in arrival order — value
	// snapshots, the ingest twin of Result.Requests.
	Mutations []workload.Mutation
	// Reencodes counts completed background folds; Compactions counts
	// controller-driven compaction cycles.
	Reencodes   int
	Compactions int
	// SizeSkew and ResidualRatio are the drift trackers' final readings.
	SizeSkew      float64
	ResidualRatio float64
	// Rebuilds holds the compaction controller's cycle records (empty
	// without Compaction); compaction cycles carry Compaction == true.
	Rebuilds []adapt.RebuildRecord
}

// RunLive executes one live-corpus evaluation point: the serving
// pipeline of Run with a streaming-ingest subsystem sharing its DES
// timeline. Mutation streams feed a serial ingest station that routes
// inserts into per-cluster append buffers and resolves deletes into
// tombstones; the retrieval engines price every scan through the live
// overlay (raw pending costs dominate until the periodic re-encode
// folds them into PQ appends); and with Compaction set, the adaptive
// controller answers drift triggers with a cheap re-encode + purge,
// escalating to the full Algorithm-1 re-partition only past the skew
// thresholds.
//
// With no ingest configured the run is exactly Run — same events, same
// bytes — so frozen-corpus results are unchanged by construction.
// Everything schedules on the one shared timeline, so results are
// bit-identical for any Workers value, like every other run mode.
func RunLive(opts LiveOptions) (*LiveResult, error) {
	if opts.Kind == "" {
		opts.Kind = VLiteRAG
	}
	if err := opts.Ingest.validate(); err != nil {
		return nil, err
	}
	if !opts.Ingest.active() {
		res, err := Run(opts.Options)
		if err != nil {
			return nil, err
		}
		return &LiveResult{Result: *res, FreshnessSLO: opts.Ingest.FreshnessSLO}, nil
	}
	if opts.Ingest.Compaction && opts.Kind != VLiteRAG {
		return nil, fmt.Errorf("rag: compaction needs the hot-swappable vLiteRAG runtime, got %s", opts.Kind)
	}
	if opts.resilient() {
		return nil, fmt.Errorf("rag: live ingest runs single-node — fault injection needs RunCluster")
	}
	if opts.Overload != nil {
		return nil, fmt.Errorf("rag: overload control is not wired into the live-ingest pipeline; drop Overload or run without ingest")
	}
	sloTotal, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	prof, err := profileFor(opts.Options)
	if err != nil {
		return nil, err
	}
	cpuModel := costmodel.NewSearchModel(opts.Node.CPU, opts.W.Spec)
	d, err := decide(opts.Options, prof, cpuModel)
	if err != nil {
		return nil, err
	}

	var sim des.Sim
	store := ingest.NewStore(opts.W)
	ing := ingest.New(ingest.Config{
		Sim:           &sim,
		Store:         store,
		Node:          opts.Node,
		ReencodeEvery: opts.Ingest.ReencodeEvery,
		Horizon:       des.Time(opts.Duration + opts.Drain),
	})

	// Mutation sources: seeds split off the run seed on their own stream
	// IDs, so the request stream (Seed+7) and the profiling sample
	// (Seed+1) are untouched — the frozen half of a frozen-vs-live A/B
	// replays identically.
	var aux []serve.Aux
	if opts.Ingest.InsertRate > 0 || opts.Ingest.InsertSchedule != nil {
		g := workload.NewMutationGen(opts.W, workload.MutInsert,
			opts.Ingest.InsertRate, opts.Ingest.InsertSchedule, 0, rng.Stream(opts.Seed, 21))
		aux = append(aux, serve.AuxFunc(func(s *des.Sim, until des.Time) { g.Start(s, until, ing.Submit) }))
	}
	if opts.Ingest.DeleteRate > 0 || opts.Ingest.DeleteSchedule != nil {
		g := workload.NewMutationGen(opts.W, workload.MutDelete,
			opts.Ingest.DeleteRate, opts.Ingest.DeleteSchedule, 0, rng.Stream(opts.Seed, 22))
		aux = append(aux, serve.AuxFunc(func(s *des.Sim, until des.Time) { g.Start(s, until, ing.Submit) }))
	}

	// The compaction arm runs the adaptive controller with the ingester
	// bound as its compactor; construction mirrors RunAdaptive.
	var ctrl *adapt.Controller
	if opts.Ingest.Compaction {
		est, err := hitrate.NewEstimator(prof)
		if err != nil {
			return nil, err
		}
		perf, err := perfmodel.Fit(profiler.ProfileLatency(cpuModel, profiler.DefaultBatches()))
		if err != nil {
			return nil, err
		}
		mu0 := d.mu0
		if mu0 == 0 {
			if mu0, err = bareCapacity(opts.Node, opts.Model, opts.Node.NumGPUs, opts.Shape); err != nil {
				return nil, err
			}
		}
		mon := opts.Monitor
		def := update.DefaultMonitorConfig()
		if mon.WindowRequests == 0 {
			rate := opts.Rate
			if opts.RateSchedule != nil {
				rate = opts.RateSchedule.MaxRate()
			}
			if mon.WindowRequests = int(rate * 10); mon.WindowRequests < 100 {
				mon.WindowRequests = 100
			}
		}
		if mon.SLOThreshold == 0 {
			mon.SLOThreshold = def.SLOThreshold
		}
		if mon.HitRateDivergence == 0 {
			mon.HitRateDivergence = def.HitRateDivergence
		}
		ctrl, err = adapt.NewController(adapt.Config{
			Monitor:          mon,
			ProfileQueries:   opts.ProfileQueries,
			Epsilon:          opts.Epsilon,
			EscalateSkew:     opts.Ingest.EscalateSkew,
			EscalateResidual: opts.Ingest.EscalateResidual,
		}, adapt.Inputs{
			Sim:       &sim,
			W:         opts.W,
			Node:      opts.Node,
			SLOTotal:  sloTotal,
			SLOSearch: opts.SLOSearch,
			Perf:      perf,
			Mu0:       mu0,
			MemKV:     nodeKVBytes(opts.Node, opts.Model),
			Expected:  est.MeanHitRate(d.rho),
			Seed:      opts.Seed + 13,
		})
		if err != nil {
			return nil, err
		}
	}

	pool := &workload.Pool{}
	coll := serve.NewCollector()
	retr, gen := stageBuilders(&sim, opts.Options, d, cpuModel, store)
	terminal := serve.Tee(coll.Done, pool.Release)
	if ctrl != nil {
		terminal = serve.Tee(coll.Done, ctrl.Observe, pool.Release)
	}
	pipe, err := serve.Compose(&sim, terminal, serve.Admit(coll), retr, gen)
	if err != nil {
		return nil, err
	}
	if ctrl != nil {
		hs, ok := pipe.Retrieval().Engine.(retrieval.HotSwapper)
		if !ok {
			return nil, fmt.Errorf("rag: engine %s is not hot-swappable", pipe.Retrieval().Engine.Name())
		}
		ctrl.Bind(hs)
		ctrl.BindCompactor(ing)
	}

	defer installDrift(&sim, opts.Options)()
	arr := arrivalsFor(opts.Options)
	arr.SetPool(pool)
	sec := beginServeSection()
	pipe.RunAux(arr, opts.Duration, opts.Drain, aux...)
	wall, allocs, bytes := sec.end()

	res := &LiveResult{
		Result: Result{
			Kind: opts.Kind, Rate: opts.Rate, SLOTotal: sloTotal,
			ServeWall: wall, ServeAllocs: allocs, ServeBytes: bytes,
			Rho: d.rho, PlanBytes: d.planBytes, Mu0: d.mu0, Partition: d.partition,
			Requests:  coll.Requests(),
			Generated: coll.Admitted(),
			AvgBatch:  pipe.Retrieval().AvgBatch(),
			LLMGPUs:   pipe.Generation().GPUs(opts.Model.TP),
			Summary:   coll.Summarize(sloTotal, des.Time(opts.Warmup)),
		},
		FreshnessSLO:  opts.Ingest.FreshnessSLO,
		Mutations:     ing.Log(),
		Reencodes:     ing.Reencodes(),
		Compactions:   ing.Compactions(),
		SizeSkew:      store.SizeSkew(),
		ResidualRatio: store.ResidualRatio(),
	}
	res.Freshness = metrics.SummarizeFreshness(res.Mutations, opts.Ingest.FreshnessSLO, des.Time(opts.Warmup))
	if ctrl != nil {
		res.Rebuilds = ctrl.Rebuilds()
	}
	return res, nil
}
