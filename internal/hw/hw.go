// Package hw defines the hardware models the simulator runs on: CPU and
// GPU device parameters and the two node types used in the paper's
// evaluation (§V-A): an L40S node (8×48 GB L40S + dual Xeon 6426Y,
// 32 usable cores) and an H100 node (8×80 GB H100 + Xeon 8462Y,
// 64 cores).
//
// Every constant is either a public spec (memory capacity, bandwidth)
// or a calibration constant anchored to a measurement reported in the
// paper; the anchor is cited next to the constant.
package hw

import "fmt"

// CPU models the host processor that runs coarse quantization and the
// cold-cluster LUT scan.
type CPU struct {
	Name  string
	Cores int
	// MemBWBytes is the aggregate memory bandwidth available to the
	// fast-scan kernel at full thread count.
	MemBWBytes float64
	// ScanBWPerCore is the effective fast-scan LUT throughput of a single
	// core, in bytes of PQ codes per second. Calibrated so the Xeon scans
	// one ORCAS-1K query (625 MB of codes, the nprobe/nlist share of a
	// 40 GB index) in ≈0.2 s at batch size 1 with ThreadsPerQuery cores —
	// between the paper's Fig. 4 left (~0.17–0.2 s CPU fast scan on a
	// 128M index) and Fig. 8 left (~0.1–0.3 s across batch sizes).
	ScanBWPerCore float64
	// ThreadsPerQuery bounds intra-query parallelism: a single query's
	// cluster scan fans out over at most this many cores, which creates
	// the single-to-multi-threaded steps in the latency curve (Fig. 8).
	ThreadsPerQuery int
}

// GPU models one accelerator.
type GPU struct {
	Name     string
	MemBytes int64
	// MemBWBytes is HBM/GDDR bandwidth.
	MemBWBytes float64
	// ScanBWBytes is the effective IVF scan kernel throughput in bytes of
	// PQ codes per second. Calibrated so GPU search is ≈10x faster than
	// CPU fast scan (paper Fig. 4 left).
	ScanBWBytes float64
	// KernelLaunch is the fixed per-kernel-launch overhead in seconds.
	KernelLaunch float64
	// BlockCost is the scheduling cost per query-cluster thread block
	// (paper §III-A: "each query–cluster pair typically maps to a thread
	// block"; §IV-B1: launches consume scheduling bandwidth even for
	// skipped probes).
	BlockCost float64
	// TFLOPs is effective dense BF16 compute for LLM work (not peak;
	// includes typical utilization).
	TFLOPs float64
	// LoadBWBytes is host-to-device transfer bandwidth for shard loading
	// (PCIe gen4/gen5-ish effective rate).
	LoadBWBytes float64
	// Reserve is memory held back per GPU for CUDA context, activations,
	// and fragmentation slack.
	Reserve int64
}

// NVMe models the node-local SSD tier that can hold the coldest PQ
// clusters. A cold scan pays one page-read latency per page touched
// plus the streaming read time; both are sequential-read figures, since
// an IVF cluster scan reads each cluster's code block contiguously.
type NVMe struct {
	Name string
	// ReadBWBytes is sustained sequential read bandwidth.
	ReadBWBytes float64
	// PageLatency is the per-page-read service latency (queue depth 1,
	// the latency-critical path of a synchronous cluster fetch).
	PageLatency float64
	// PageBytes is the read granularity a cluster scan is billed in.
	PageBytes int64
}

// Node is one evaluation machine.
type Node struct {
	Name    string
	CPU     CPU
	GPU     GPU
	NVMe    NVMe
	NumGPUs int
	// ContentionFactor scales LLM iteration time while a retrieval
	// kernel is resident on the same GPU: t' = t * (1 + f*overlap).
	// Anchored to the ≈2x end-to-end latency inflation the paper reports
	// for ALL-GPU on ORCAS-2K under high traffic (§VI-C).
	ContentionFactor float64
}

const gb = int64(1) << 30

// Xeon8462Y is the H100-node host CPU (64 cores in the paper's setup).
func Xeon8462Y() CPU {
	return CPU{
		Name:  "Xeon Platinum 8462Y+",
		Cores: 64,
		// ~300 GB/s per socket class; fast-scan saturates much lower.
		MemBWBytes: 300e9,
		// 625 MB per ORCAS-1K query / ~0.2 s at ThreadsPerQuery=8 cores
		// => ~0.4 GB/s per core effective.
		ScanBWPerCore:   0.4e9,
		ThreadsPerQuery: 8,
	}
}

// Xeon6426Y is the L40S-node host CPU (32 usable cores per the artifact
// appendix).
func Xeon6426Y() CPU {
	c := Xeon8462Y()
	c.Name = "Xeon Gold 6426Y"
	c.Cores = 32
	c.MemBWBytes = 240e9
	return c
}

// H100 returns the 80 GB HBM3 H100 model.
func H100() GPU {
	return GPU{
		Name:       "H100-80GB",
		MemBytes:   80 * gb,
		MemBWBytes: 3.35e12,
		// ≈10x the 64-core CPU fast-scan rate (Fig. 4 left): CPU at full
		// batch ≈ 64 cores * 1.05 GB/s ≈ 67 GB/s effective; GPU ≈ 10x of
		// the *per-query* CPU path.
		ScanBWBytes:  90e9,
		KernelLaunch: 15e-6,
		BlockCost:    1.2e-6,
		TFLOPs:       400, // effective, not peak
		LoadBWBytes:  24e9,
		Reserve:      4 * gb,
	}
}

// L40S returns the 48 GB GDDR6 L40S model.
func L40S() GPU {
	return GPU{
		Name:         "L40S-48GB",
		MemBytes:     48 * gb,
		MemBWBytes:   864e9,
		ScanBWBytes:  40e9,
		KernelLaunch: 15e-6,
		BlockCost:    1.5e-6,
		TFLOPs:       120,
		LoadBWBytes:  20e9,
		Reserve:      3 * gb,
	}
}

// DataCenterNVMe is the node-local SSD model shared by both nodes:
// a PCIe gen4 datacenter drive class (~6.8 GB/s sequential read,
// ~80 µs read latency, 4 KiB pages).
func DataCenterNVMe() NVMe {
	return NVMe{
		Name:        "PCIe4 NVMe",
		ReadBWBytes: 6.8e9,
		PageLatency: 80e-6,
		PageBytes:   4 << 10,
	}
}

// H100Node is the large-model machine (Qwen3-32B, Llama3-70B).
func H100Node() Node {
	return Node{Name: "H100 node", CPU: Xeon8462Y(), GPU: H100(), NVMe: DataCenterNVMe(), NumGPUs: 8, ContentionFactor: 0.9}
}

// L40SNode is the small-model machine (Llama3-8B).
func L40SNode() Node {
	return Node{Name: "L40S node", CPU: Xeon6426Y(), GPU: L40S(), NVMe: DataCenterNVMe(), NumGPUs: 8, ContentionFactor: 0.9}
}

// WithGPUs returns a copy of the node restricted to n GPUs with CPU
// cores scaled proportionally — the provisioning policy of the paper's
// §VI-E4 robustness study (4 GPUs + 32 cores, 6 + 48, 8 + 64).
func (n Node) WithGPUs(gpus int) (Node, error) {
	if gpus <= 0 || gpus > n.NumGPUs {
		return Node{}, fmt.Errorf("hw: cannot scale %s to %d GPUs", n.Name, gpus)
	}
	out := n
	out.NumGPUs = gpus
	out.CPU.Cores = n.CPU.Cores * gpus / n.NumGPUs
	out.CPU.MemBWBytes = n.CPU.MemBWBytes * float64(gpus) / float64(n.NumGPUs)
	out.Name = fmt.Sprintf("%s (%d GPUs)", n.Name, gpus)
	return out, nil
}

// UsableMem returns the per-GPU memory available to weights, KV cache,
// and index shards.
func (g GPU) UsableMem() int64 { return g.MemBytes - g.Reserve }
