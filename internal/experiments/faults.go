package experiments

import (
	"fmt"
	"strings"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/fault"
	"vectorliterag/internal/rag"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/workload"
)

// FaultsResult is the failure-resilience study (beyond the paper): a
// 3-replica vLiteRAG cluster under a scripted storm — a replica crash,
// a straggler episode (LLM slowdown), and a bandwidth episode
// (retrieval slowdown) — evaluated under four resilience arms. The
// identical storm and arrival trace hit every arm; only the front
// end's failure handling differs. The artifact: goodput recovers arm
// by arm as failover+retry, hedging, and graceful degradation stack.
type FaultsResult struct {
	Replicas int
	Rate     float64
	Storm    fault.Schedule
	Arms     []FaultsArm
}

// FaultsArm is one resilience configuration's outcome under the storm.
type FaultsArm struct {
	Name     string
	Att      float64
	Goodput  float64
	N        int
	Unserved int
	TTFTP90  time.Duration
	E2EP90   time.Duration
	Stats    serve.ResilienceStats
	// Recover is the crash episode's time-to-recover (negative when no
	// failed-over request ever completed — the baseline arm).
	Recover time.Duration
}

// faultsStorm scripts the storm: the crash lands mid-run with traffic
// in flight, the straggler and bandwidth episodes follow after the
// crashed replica heals, so each failure mode is observed in
// isolation.
func faultsStorm() fault.Schedule {
	return fault.Schedule{
		{Kind: fault.Crash, Replica: 0, At: 30 * time.Second, Duration: 20 * time.Second},
		{Kind: fault.Straggler, Replica: 1, At: 60 * time.Second, Duration: 20 * time.Second, Factor: 5},
		{Kind: fault.Bandwidth, Replica: 2, At: 90 * time.Second, Duration: 15 * time.Second, Factor: 4},
	}
}

// faultsArms returns the four resilience configurations, weakest
// first. The baseline handles nothing: no timeout means no retries,
// and crashed in-flight work fails outright. Timers are sized against
// the cluster's *E2E completion* (seconds at this load — decode
// dominates), not its TTFT: the hedge delay sits between the
// fault-free p99 and the timeout, so backups fire only for the
// stragglers' tail — any tighter and the duplicated load collapses
// the run.
func faultsArms() []struct {
	name string
	cfg  serve.ResilienceConfig
} {
	const (
		timeout = 30 * time.Second
		hedge   = 15 * time.Second
	)
	return []struct {
		name string
		cfg  serve.ResilienceConfig
	}{
		{"baseline", serve.ResilienceConfig{}},
		{"retry", serve.ResilienceConfig{Timeout: timeout, MaxRetries: 2}},
		{"retry+hedge", serve.ResilienceConfig{Timeout: timeout, MaxRetries: 2, HedgeDelay: hedge}},
		{"retry+hedge+degrade", serve.ResilienceConfig{Timeout: timeout, MaxRetries: 2, HedgeDelay: hedge, Degrade: true}},
	}
}

// Faults runs the resilience study on ORCAS-1K + Qwen3-32B at 50 % of
// per-node capacity per replica — enough headroom that the surviving
// pair can absorb the crashed replica's share, the regime graceful
// degradation is built for.
func Faults(cfg Config) (*FaultsResult, error) {
	return faultsWithWorkers(cfg, 0)
}

// faultsWithWorkers exists for the determinism test: the resilient
// path pins the single shared timeline, so the artifact must be
// bit-identical for every Workers value.
func faultsWithWorkers(cfg Config, workers int) (*FaultsResult, error) {
	w, err := WorkloadFor(dataset.Orcas1K)
	if err != nil {
		return nil, err
	}
	dep := deployments()[1] // Qwen3-32B on the H100 node
	mu, err := rag.BareCapacity(dep.Node, dep.Model, workload.DefaultShape())
	if err != nil {
		return nil, err
	}
	const replicas = 3
	rate := round1(mu*0.5) * replicas
	duration := 240 * time.Second
	if cfg.Quick {
		duration = 120 * time.Second
	}
	res := &FaultsResult{Replicas: replicas, Rate: rate, Storm: faultsStorm()}
	for _, arm := range faultsArms() {
		rcfg := arm.cfg
		r, err := rag.RunCluster(rag.Options{
			Node: dep.Node, Model: dep.Model, W: w, Kind: rag.VLiteRAG,
			Rate: rate, Seed: cfg.Seed, Duration: duration, Workers: workers,
			Faults: res.Storm, Resilience: &rcfg,
		}, replicas, serve.LeastLoaded)
		if err != nil {
			return nil, fmt.Errorf("faults %s arm: %w", arm.name, err)
		}
		a := FaultsArm{
			Name:     arm.name,
			Att:      r.Summary.Attainment,
			Goodput:  r.Resilience.Goodput,
			N:        r.Summary.N,
			Unserved: r.Summary.Unserved,
			TTFTP90:  r.Summary.TTFT.P90,
			E2EP90:   r.Summary.E2E.P90,
			Stats:    r.Resilience.Stats,
		}
		for i, d := range r.Resilience.Recoveries {
			if i == 0 || d > a.Recover {
				a.Recover = d
			}
		}
		res.Arms = append(res.Arms, a)
	}
	return res, nil
}

// Arm returns the named arm.
func (r *FaultsResult) Arm(name string) *FaultsArm {
	for i := range r.Arms {
		if r.Arms[i].Name == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// Render formats the resilience table.
func (r *FaultsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failure resilience: vLiteRAG x%d, ORCAS-1K + Qwen3-32B @ %.1f req/s cluster-wide\n",
		r.Replicas, r.Rate)
	fmt.Fprintf(&b, "storm: %s\n", r.Storm)
	b.WriteString("identical storm and arrivals per arm; only the front end's failure handling differs\n\n")
	t := &table{header: []string{"arm", "goodput", "attainment", "unserved", "retried", "failover",
		"hedged(wins)", "timed out", "failed", "recover"}}
	for _, a := range r.Arms {
		rec := "-"
		if a.Recover > 0 {
			rec = sec(a.Recover)
		}
		t.add(a.Name, fmt.Sprintf("%.2f/s", a.Goodput), f3(a.Att),
			fmt.Sprintf("%d", a.Unserved), fmt.Sprintf("%d", a.Stats.Retried),
			fmt.Sprintf("%d", a.Stats.FailedOver),
			fmt.Sprintf("%d(%d)", a.Stats.Hedged, a.Stats.HedgeWins),
			fmt.Sprintf("%d", a.Stats.TimedOut), fmt.Sprintf("%d", a.Stats.Failed), rec)
	}
	b.WriteString(t.String())
	base, full := r.Arm("baseline"), r.Arm("retry+hedge+degrade")
	if base != nil && full != nil {
		dropped := base.Stats.Failed + base.Unserved
		if dropped > 0 && full.Stats.Failed == 0 && full.Unserved == 0 {
			fmt.Fprintf(&b, "\nresilience serves every request the baseline dropped (%d) at %.0f%% of baseline goodput ✓\n",
				dropped, 100*full.Goodput/base.Goodput)
		} else {
			fmt.Fprintf(&b, "\ndropped: baseline %d vs full resilience %d; goodput %.2f/s vs %.2f/s\n",
				dropped, full.Stats.Failed+full.Unserved, base.Goodput, full.Goodput)
		}
	}
	return b.String()
}

// CSV exports one row per arm.
func (r *FaultsResult) CSV() string {
	rows := [][]string{}
	for _, a := range r.Arms {
		rows = append(rows, []string{
			a.Name,
			fmt.Sprintf("%.4f", a.Goodput),
			fmt.Sprintf("%.4f", a.Att),
			fmt.Sprintf("%d", a.N),
			fmt.Sprintf("%d", a.Unserved),
			fmt.Sprintf("%.6f", a.TTFTP90.Seconds()),
			fmt.Sprintf("%.6f", a.E2EP90.Seconds()),
			fmt.Sprintf("%d", a.Stats.Retried),
			fmt.Sprintf("%d", a.Stats.FailedOver),
			fmt.Sprintf("%d", a.Stats.Hedged),
			fmt.Sprintf("%d", a.Stats.HedgeWins),
			fmt.Sprintf("%d", a.Stats.TimedOut),
			fmt.Sprintf("%d", a.Stats.Failed),
			fmt.Sprintf("%d", a.Stats.Ghosts),
			fmt.Sprintf("%.6f", a.Recover.Seconds()),
		})
	}
	return writeCSV([]string{"arm", "goodput_rps", "attainment", "requests", "unserved",
		"ttft_p90_s", "e2e_p90_s", "retried", "failedover", "hedged", "hedge_wins",
		"timedout", "failed", "ghosts", "recover_s"}, rows)
}
