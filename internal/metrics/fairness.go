package metrics

// JainIndex computes Jain's fairness index over per-tenant values
// (typically SLO attainments): (Σx)² / (n·Σx²). It is 1 when every
// tenant fares equally and approaches 1/n as one tenant monopolizes
// the good outcomes. An empty input returns 0 (no tenants, no fairness
// claim); an all-zero input returns 1 — equal shares are perfectly
// fair even when the equal share is nothing.
func JainIndex(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(values)) * sumSq)
}
