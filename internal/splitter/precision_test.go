package splitter

import "testing"

func TestPrecisionNilSafe(t *testing.T) {
	var p *Precision
	if p.IsSQ(0) || p.IsNVMe(0) || p.Delta(0) != 0 {
		t.Fatal("nil Precision not inert")
	}
	q := &Precision{SQ: []bool{true}, NVMe: []bool{false, true}, Deltas: []float64{0.03}}
	if !q.IsSQ(0) || q.IsSQ(1) || q.IsSQ(-1) {
		t.Fatal("IsSQ bounds wrong")
	}
	if !q.IsNVMe(1) || q.IsNVMe(2) || q.IsNVMe(-1) {
		t.Fatal("IsNVMe bounds wrong")
	}
	if q.Delta(0) != 0.03 || q.Delta(1) != 0 || q.Delta(-1) != 0 {
		t.Fatal("Delta bounds wrong")
	}
}

func TestAttachPrecisionFoldsSQBytes(t *testing.T) {
	p := profile(t)
	plan, err := Build(p, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int64(nil), plan.ShardBytes...)
	totalBefore := plan.TotalBytes()

	const ratio = 4.0
	prec := &Precision{
		SQ:      make([]bool, len(p.Counts)),
		NVMe:    make([]bool, len(p.Counts)),
		SQRatio: ratio,
	}
	marked := plan.HotClusters[0]
	prec.SQ[marked] = true
	plan.AttachPrecision(prec)

	if plan.Prec != prec {
		t.Fatal("precision not attached")
	}
	extra := int64(float64(p.W.ClusterBytes(marked)) * (ratio - 1))
	loc := plan.Mapping[marked]
	if plan.ShardBytes[loc.Shard] != before[loc.Shard]+extra {
		t.Fatalf("hosting shard bytes %d, want %d + %d", plan.ShardBytes[loc.Shard], before[loc.Shard], extra)
	}
	if plan.TotalBytes() != totalBefore+extra {
		t.Fatalf("TotalBytes %d, want %d", plan.TotalBytes(), totalBefore+extra)
	}
	// Unmarked shards untouched.
	for s := range plan.ShardBytes {
		if s != loc.Shard && plan.ShardBytes[s] != before[s] {
			t.Fatalf("shard %d bytes moved without an SQ mark", s)
		}
	}

	plan.AttachPrecision(nil)
	if plan.Prec != nil {
		t.Fatal("nil attach did not detach")
	}
}
