// Live ingest: the corpus mutates while it serves. Insert and delete
// streams ride the same simulated timeline as the queries; new vectors
// are searchable from brute-force-scanned append buffers the moment the
// ingest station applies them, then fold into PQ codes on the periodic
// re-encode; deletes serve through tombstone bitmaps until a compaction
// purges them. Mid-run the popular queries also shift, and the
// compaction-enabled controller answers the drift cheaply first —
// re-encode + tombstone purge — escalating to the full Algorithm-1
// re-partition only when the trigger recurs.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	vlr "vectorliterag"
)

func main() {
	quick := flag.Bool("quick", false, "shorter run for smoke tests")
	flag.Parse()

	fmt.Println("building ORCAS-2K workload (trains a real IVF-PQ index)...")
	w, err := vlr.NewWorkload(vlr.Orcas2K)
	if err != nil {
		log.Fatal(err)
	}

	duration := 4 * time.Minute
	if *quick {
		duration = 2 * time.Minute
	}
	rot := w.DefaultDriftRotation()
	opts := vlr.ServeOptions{
		Workload: w, System: vlr.VLiteRAG, Rate: 20, Seed: 1,
		RateSchedule: vlr.DiurnalRate(20, 8, duration),
		SLOSearch:    150 * time.Millisecond, Duration: duration,
		Drain: 2 * time.Minute,
		Drift: []vlr.DriftEvent{{At: duration / 4, Rotate: rot}},
	}
	ingest := vlr.LiveIngestOptions{
		InsertRate: 4, DeleteRate: 1,
		ReencodeEvery: 12 * time.Second, FreshnessSLO: 500 * time.Millisecond,
	}
	fmt.Printf("diurnal load around 20 req/s; 4 inserts/s + 1 deletes/s; popularity rotates by %d templates at t=%v\n\n",
		rot, duration/4)

	// Arm 1: the frozen corpus — the paper's evaluation regime.
	frozen, err := vlr.ServeLive(vlr.LiveServeOptions{ServeOptions: opts})
	if err != nil {
		log.Fatal(err)
	}
	// Arm 2: the live corpus, no controller.
	live, err := vlr.ServeLive(vlr.LiveServeOptions{ServeOptions: opts, Ingest: ingest})
	if err != nil {
		log.Fatal(err)
	}
	// Arm 3: the live corpus with the drift-compaction controller. The
	// insert stream tracks the drifted query distribution, so the
	// residual tracker carries an elevated floor; the threshold sits
	// above it and escalation comes from the repeat-trigger rule.
	ingest.Compaction = true
	ingest.EscalateResidual = 3.0
	comp, err := vlr.ServeLive(vlr.LiveServeOptions{ServeOptions: opts, Ingest: ingest})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s  %-10s  %-22s  %-22s\n", "", "frozen", "live corpus", "live + compaction")
	fmt.Printf("%-8s  %-10s  %-10s %-10s  %-10s %-10s\n",
		"window", "attainment", "attainment", "fresh att", "attainment", "fresh att")
	for i, cw := range comp.Timeline {
		fAtt, lAtt, lFresh := 0.0, 0.0, 0.0
		if i < len(frozen.Timeline) {
			fAtt = frozen.Timeline[i].Attainment
		}
		if i < len(live.Timeline) {
			lAtt, lFresh = live.Timeline[i].Attainment, live.Timeline[i].FreshAttainment
		}
		note := ""
		for _, rb := range comp.Rebuilds {
			if rb.Aborted != "" {
				continue
			}
			if in(rb.SwappedAt, cw.Start, 30*time.Second) {
				if rb.Compaction {
					note = "  <- compaction: re-encode + tombstone purge"
				} else {
					note = "  <- escalated: full re-partition swapped in"
				}
			}
		}
		fmt.Printf("%-8v  %-10.3f  %-10.3f %-10.3f  %-10.3f %-10.3f%s\n",
			cw.Start, fAtt, lAtt, lFresh, cw.Attainment, cw.FreshAttainment, note)
	}

	f := live.Freshness
	fmt.Printf("\nfreshness (live arm): %d inserts + %d deletes, tts p50 %v / p99 %v, %.1f%% within the %v SLO\n",
		f.Inserts, f.Deletes, f.TTS.P50.Round(time.Millisecond), f.TTS.P99.Round(time.Millisecond),
		100*f.Attainment, live.FreshnessSLO)
	fmt.Printf("drift trackers at run end: size skew %.2f, residual ratio %.2f\n",
		comp.SizeSkew, comp.ResidualRatio)
	fmt.Printf("overall attainment: frozen %.3f, live %.3f, live+compaction %.3f\n",
		frozen.Summary.Attainment, live.Summary.Attainment, comp.Summary.Attainment)
	if comp.Compactions > 0 {
		fmt.Println("the controller answered the drift with a cheap compaction before committing to a rebuild. ✓")
	}
}

// in reports whether the instant t falls inside the window of the given
// width starting at start.
func in(t int64, start, width time.Duration) bool {
	return t > 0 && time.Duration(t) >= start && time.Duration(t) < start+width
}
