// Package llm models LLM serving with iteration-level continuous
// batching (vLLM-style, the serving stack of the paper §V-A): requests
// are admitted into an instance when KV-cache space allows, prefill
// iterations are compute-bound in the prompt length, and decode
// iterations are memory-bandwidth-bound in weight and KV reads. The
// engine runs in virtual time on the discrete-event simulator and is
// coupled to retrieval through the shared per-GPU state (memory
// partitioning and compute contention).
package llm

import "fmt"

// ModelSpec describes one served model.
type ModelSpec struct {
	Name      string
	Params    int64 // parameter count
	Layers    int
	KVHeads   int // grouped-query KV heads
	HeadDim   int
	TP        int // tensor-parallel degree (GPUs per instance)
	BytesElem int // weight/KV element size (2 for bf16)
}

// WeightBytes returns the total model weight footprint.
func (m ModelSpec) WeightBytes() int64 { return m.Params * int64(m.BytesElem) }

// WeightBytesPerGPU returns each GPU's share under TP sharding.
func (m ModelSpec) WeightBytesPerGPU() int64 { return m.WeightBytes() / int64(m.TP) }

// KVBytesPerToken returns KV-cache bytes per token across the whole
// model: 2 (K and V) x layers x kvHeads x headDim x elemBytes.
func (m ModelSpec) KVBytesPerToken() int64 {
	return int64(2*m.Layers*m.KVHeads*m.HeadDim) * int64(m.BytesElem)
}

func (m ModelSpec) String() string { return fmt.Sprintf("%s(TP=%d)", m.Name, m.TP) }

// The three evaluation models (paper §V-A). TP degrees follow the
// paper's deployment: Llama3-8B fits one GPU; Qwen3-32B uses TP=2 on
// H100s; Llama3-70B needs TP=4 for efficient execution (§VI-B).
var (
	Llama3_8B = ModelSpec{
		Name: "Llama3-8B", Params: 8_000_000_000,
		Layers: 32, KVHeads: 8, HeadDim: 128, TP: 1, BytesElem: 2,
	}
	Qwen3_32B = ModelSpec{
		Name: "Qwen3-32B", Params: 32_000_000_000,
		Layers: 64, KVHeads: 8, HeadDim: 128, TP: 2, BytesElem: 2,
	}
	Llama3_70B = ModelSpec{
		Name: "Llama3-70B", Params: 70_000_000_000,
		Layers: 80, KVHeads: 8, HeadDim: 128, TP: 4, BytesElem: 2,
	}
)

// SLOGen returns the generation-stage TTFT SLO the paper assigns each
// model (Table I): the prefill latency measured at the model's
// throughput limit.
func SLOGen(m ModelSpec) (ms int) {
	switch m.Name {
	case Llama3_8B.Name:
		return 217
	case Qwen3_32B.Name:
		return 191
	case Llama3_70B.Name:
		return 311
	default:
		return 250
	}
}
