package workload

import (
	"math"
	"testing"
	"time"

	"vectorliterag/internal/des"
)

func TestMutationKindString(t *testing.T) {
	if MutInsert.String() != "insert" || MutDelete.String() != "delete" {
		t.Fatalf("kind strings: %q, %q", MutInsert.String(), MutDelete.String())
	}
}

func TestMutationTimeToSearchable(t *testing.T) {
	m := Mutation{ArrivalAt: 5e9, AppliedAt: 7e9}
	if got := m.TimeToSearchable(); got != 2e9 {
		t.Fatalf("TTS = %d, want 2e9", got)
	}
}

func TestMutationGenRate(t *testing.T) {
	w := testWorkload(t)
	var sim des.Sim
	g := NewMutationGen(w, MutInsert, 50, nil, 0, 3)
	count := 0
	g.Start(&sim, des.Time(60*1e9), func(m *Mutation) { count++ })
	sim.Run()
	// 50 per second for 60s => ~3000 arrivals; Poisson std ~ 55.
	if math.Abs(float64(count)-3000) > 300 {
		t.Fatalf("generated %d mutations, want ~3000", count)
	}
	if g.Count() != count {
		t.Fatalf("Count() = %d, generated %d", g.Count(), count)
	}
}

func TestMutationGenPayloads(t *testing.T) {
	w := testWorkload(t)
	var sim des.Sim
	ins := NewMutationGen(w, MutInsert, 40, nil, 2, 7)
	del := NewMutationGen(w, MutDelete, 40, nil, 2, 8)
	var muts []*Mutation
	collect := func(m *Mutation) { muts = append(muts, m) }
	ins.Start(&sim, des.Time(2*1e9), collect)
	del.Start(&sim, des.Time(2*1e9), collect)
	sim.Run()
	seq := map[MutationKind]int{}
	for _, m := range muts {
		if m.Seq != seq[m.Kind] {
			t.Fatalf("%v seq %d out of order (want %d)", m.Kind, m.Seq, seq[m.Kind])
		}
		seq[m.Kind]++
		if m.Tenant != 2 {
			t.Fatalf("tenant tag lost: %d", m.Tenant)
		}
		switch m.Kind {
		case MutInsert:
			if len(m.Vec) == 0 {
				t.Fatal("insert without payload vector")
			}
		case MutDelete:
			if m.Vec != nil || m.Pick == 0 {
				t.Fatalf("delete payload wrong: vec %v, pick %d", m.Vec, m.Pick)
			}
		}
	}
	if seq[MutInsert] == 0 || seq[MutDelete] == 0 {
		t.Fatalf("one stream empty: %d inserts, %d deletes", seq[MutInsert], seq[MutDelete])
	}
}

func TestMutationGenDeterministic(t *testing.T) {
	w := testWorkload(t)
	run := func() []des.Time {
		var sim des.Sim
		g := NewMutationGen(w, MutDelete, 30, nil, 0, 11)
		var at []des.Time
		g.Start(&sim, des.Time(10*1e9), func(m *Mutation) { at = append(at, m.ArrivalAt) })
		sim.Run()
		return at
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMutationGenSchedule(t *testing.T) {
	w := testWorkload(t)
	var sim des.Sim
	// Ramp 0 -> 80 over 60s: the stream must thin toward the start.
	g := NewMutationGen(w, MutInsert, 0, Ramp(0, 80, 60*time.Second), 0, 5)
	first, second := 0, 0
	g.Start(&sim, des.Time(60*1e9), func(m *Mutation) {
		if m.ArrivalAt < 30e9 {
			first++
		} else {
			second++
		}
	})
	sim.Run()
	if first+second == 0 {
		t.Fatal("scheduled stream generated nothing")
	}
	// Expect ~600 vs ~1800; demand a clear imbalance.
	if float64(second) < 1.5*float64(first) {
		t.Fatalf("ramp not reflected: %d first half vs %d second half", first, second)
	}
}

func TestMutationGenZeroRate(t *testing.T) {
	w := testWorkload(t)
	var sim des.Sim
	g := NewMutationGen(w, MutInsert, 0, nil, 0, 1)
	g.Start(&sim, des.Time(60*1e9), func(m *Mutation) { t.Fatal("zero-rate stream emitted") })
	sim.Run()
	if g.Count() != 0 {
		t.Fatalf("Count() = %d after zero-rate run", g.Count())
	}
}

func TestMutationGenStopsAtDeadline(t *testing.T) {
	w := testWorkload(t)
	var last des.Time
	for _, sched := range []Schedule{nil, Constant(100)} {
		var sim des.Sim
		g := NewMutationGen(w, MutDelete, 100, sched, 0, 9)
		g.Start(&sim, des.Time(1e9), func(m *Mutation) { last = m.ArrivalAt })
		sim.Run()
		if last > 1e9 {
			t.Fatalf("sched %v: arrival after deadline: %d", sched, last)
		}
	}
}
