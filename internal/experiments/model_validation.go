package experiments

import (
	"fmt"
	"strings"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hitrate"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/partition"
	"vectorliterag/internal/perfmodel"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/rng"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/update"
)

// Fig9Result reproduces Fig. 9: time to rebuild the GPU index shards
// with updated access data, broken into profiling / algorithm /
// splitting / loading.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9Row is one (dataset, SLO) bar.
type Fig9Row struct {
	Dataset string
	SLO     time.Duration
	Rho     float64
	Timing  update.RebuildTiming
}

// Fig9 estimates rebuild timing for the paper's six bars.
func Fig9(cfg Config) (*Fig9Result, error) {
	cases := []struct {
		spec dataset.Spec
		slos []time.Duration
	}{
		{dataset.WikiAll, []time.Duration{100 * time.Millisecond, 150 * time.Millisecond}},
		{dataset.Orcas1K, []time.Duration{150 * time.Millisecond, 200 * time.Millisecond}},
		{dataset.Orcas2K, []time.Duration{200 * time.Millisecond, 300 * time.Millisecond}},
	}
	node := hw.H100Node()
	res := &Fig9Result{}
	for _, c := range cases {
		w, err := WorkloadFor(c.spec)
		if err != nil {
			return nil, err
		}
		prof, err := profiler.CollectAccess(w, 4000, cfg.Seed+9)
		if err != nil {
			return nil, err
		}
		est, err := hitrate.NewEstimator(prof)
		if err != nil {
			return nil, err
		}
		perf, err := perfmodel.Fit(profiler.ProfileLatency(costmodel.NewSearchModel(node.CPU, c.spec), profiler.DefaultBatches()))
		if err != nil {
			return nil, err
		}
		for _, slo := range c.slos {
			part, err := partition.LatencyBounded(partition.Inputs{
				SLOSearch: slo, Perf: perf, Est: est,
				MemKV: 300 << 30, Mu0: 38,
				IndexBytesAt: splitter.IndexBytesAt(prof),
			})
			if err != nil {
				return nil, err
			}
			plan, err := splitter.Build(prof, part.Rho, node.NumGPUs)
			if err != nil {
				return nil, err
			}
			// The paper's update path replays ~50k calibration queries.
			timing := update.EstimateRebuild(node, c.spec, plan, 50000, part.Iterations)
			res.Rows = append(res.Rows, Fig9Row{Dataset: c.spec.Name, SLO: slo, Rho: part.Rho, Timing: timing})
		}
	}
	return res, nil
}

// Render formats the stage bars.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 9: index rebuild time breakdown (background update cycle)\n")
	t := &table{header: []string{"dataset", "SLO", "rho", "profiling", "algorithm", "splitting", "loading", "total"}}
	for _, row := range r.Rows {
		t.add(row.Dataset, ms(row.SLO), f3(row.Rho),
			sec(row.Timing.Profiling), sec(row.Timing.Algorithm),
			sec(row.Timing.Splitting), sec(row.Timing.Loading), sec(row.Timing.Total()))
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig10Result reproduces Fig. 10: predicted vs measured hybrid search
// latency (left) and tail (batch-minimum) hit rate (right) across batch
// sizes, for all three datasets.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10Row is one (dataset, batch) comparison.
type Fig10Row struct {
	Dataset     string
	Batch       int
	PredLatency time.Duration
	MeasLatency time.Duration
	PredTailHit float64
	MeasTailHit float64
}

// Fig10 validates the performance model: predictions come from the
// fitted perf model + Beta estimator; measurements replay real query
// batches against the hot set and price them with the cost model
// exactly as the hybrid engine would.
func Fig10(cfg Config) (*Fig10Result, error) {
	const coverage = 0.15
	trials := 400
	if cfg.Quick {
		trials = 80
	}
	r := rng.New(cfg.Seed + 10)
	node := hw.H100Node()
	res := &Fig10Result{}
	for _, spec := range []dataset.Spec{dataset.WikiAll, dataset.Orcas1K, dataset.Orcas2K} {
		w, err := WorkloadFor(spec)
		if err != nil {
			return nil, err
		}
		prof, err := profiler.CollectAccess(w, 4000, cfg.Seed+101)
		if err != nil {
			return nil, err
		}
		est, err := hitrate.NewEstimator(prof)
		if err != nil {
			return nil, err
		}
		sm := costmodel.NewSearchModel(node.CPU, spec)
		perf, err := perfmodel.Fit(profiler.ProfileLatency(sm, profiler.DefaultBatches()))
		if err != nil {
			return nil, err
		}
		k := est.Clusters(coverage)
		mask := prof.HotMask(k)
		for _, batch := range []int{1, 4, 7, 10, 13} {
			// Measurement: replay fresh batches.
			var sumLat, sumMin float64
			for trial := 0; trial < trials; trial++ {
				var missBytes int64
				minHit := 1.0
				for i := 0; i < batch; i++ {
					q := w.Sample(r)
					hit := w.WorkHitRate(q, mask)
					if hit < minHit {
						minHit = hit
					}
					for _, c := range w.Probes(q) {
						if !mask[c] {
							missBytes += w.ScanBytes(q, []int{c})
						}
					}
				}
				lat := sm.CQTime(batch) + sm.LUTTime(missBytes, batch)
				sumLat += lat.Seconds()
				sumMin += minHit
			}
			res.Rows = append(res.Rows, Fig10Row{
				Dataset:     spec.Name,
				Batch:       batch,
				PredLatency: perf.HybridTime(batch, est.MinHitRate(coverage, batch)),
				MeasLatency: time.Duration(sumLat / float64(trials) * 1e9),
				PredTailHit: est.MinHitRate(coverage, batch),
				MeasTailHit: sumMin / float64(trials),
			})
		}
	}
	return res, nil
}

// Render formats the validation table.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 10: performance-model validation at 15% coverage\n")
	t := &table{header: []string{"dataset", "batch", "pred latency", "meas latency", "pred tail hit", "meas tail hit"}}
	for _, row := range r.Rows {
		t.add(row.Dataset, fmt.Sprint(row.Batch), ms(row.PredLatency), ms(row.MeasLatency),
			f3(row.PredTailHit), f3(row.MeasTailHit))
	}
	b.WriteString(t.String())
	return b.String()
}
