// Package update implements VectorLiteRAG's adaptive runtime index
// update (paper §IV-B3): the router monitors average hit rates and
// per-cluster access frequencies over rolling windows; when SLO
// attainment drops below threshold while observed hit rates diverge
// from the model's expectation, a background rebuild cycle runs —
// re-profile, re-partition, re-split, reload shards — with queries for
// a mid-reload shard temporarily diverted to the CPU path.
package update

import (
	"fmt"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/splitter"
)

// MonitorConfig sets the drift-detection thresholds.
type MonitorConfig struct {
	// WindowRequests is how many requests a window holds before the
	// counters reset (the paper resets every few minutes or few thousand
	// requests).
	WindowRequests int
	// SLOThreshold: an update may trigger when windowed SLO attainment
	// falls below this.
	SLOThreshold float64
	// HitRateDivergence: and the observed mean hit rate deviates from the
	// expectation by more than this.
	HitRateDivergence float64
}

// DefaultMonitorConfig mirrors the paper's descriptions.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{WindowRequests: 2000, SLOThreshold: 0.9, HitRateDivergence: 0.1}
}

// Monitor accumulates the runtime statistics the router tracks.
type Monitor struct {
	cfg      MonitorConfig
	expected float64 // model-expected mean hit rate at the current plan

	n        int
	hitSum   float64
	sloOK    int
	triggers int
	windows  int
}

// NewMonitor starts a monitor expecting the given mean hit rate.
func NewMonitor(cfg MonitorConfig, expectedMeanHitRate float64) *Monitor {
	if cfg.WindowRequests <= 0 {
		cfg = DefaultMonitorConfig()
	}
	return &Monitor{cfg: cfg, expected: expectedMeanHitRate}
}

// SetExpected updates the expectation after a plan change.
func (m *Monitor) SetExpected(mean float64) { m.expected = mean }

// Expected returns the model-expected mean hit rate the monitor
// currently compares observations against.
func (m *Monitor) Expected() float64 { return m.expected }

// ResetWindow discards the partially filled window. The adaptive
// controller calls it at plan-swap time so observations collected under
// the old plan (including the artificially low hit rates of the
// mid-reload CPU divert) cannot contaminate the first window of the new
// plan and immediately re-trigger.
func (m *Monitor) ResetWindow() { m.reset() }

// Window reports how many requests the current (unfinished) window has
// accumulated.
func (m *Monitor) Window() int { return m.n }

// WindowsClosed reports how many full windows the monitor has
// evaluated; controllers use it to express cooldowns in window counts.
func (m *Monitor) WindowsClosed() int { return m.windows }

// Record registers one served query's observed hit rate and whether it
// met the SLO. It returns true when the window closed with drift
// detected — the caller should start an update cycle.
func (m *Monitor) Record(hitRate float64, metSLO bool) bool {
	m.n++
	m.hitSum += hitRate
	if metSLO {
		m.sloOK++
	}
	if m.n < m.cfg.WindowRequests {
		return false
	}
	attain := float64(m.sloOK) / float64(m.n)
	mean := m.hitSum / float64(m.n)
	drift := attain < m.cfg.SLOThreshold && abs(mean-m.expected) > m.cfg.HitRateDivergence
	m.windows++
	m.reset()
	if drift {
		m.triggers++
	}
	return drift
}

// Triggers reports how many update cycles this monitor has requested.
func (m *Monitor) Triggers() int { return m.triggers }

func (m *Monitor) reset() {
	m.n = 0
	m.hitSum = 0
	m.sloOK = 0
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RebuildTiming is the stage breakdown of one update cycle — the bars
// of paper Fig. 9.
type RebuildTiming struct {
	Profiling time.Duration // replaying calibration queries
	Algorithm time.Duration // latency-bounded partitioning
	Splitting time.Duration // shard materialization + mapping tables
	Loading   time.Duration // host-to-device shard transfer
}

// Total returns the end-to-end rebuild time.
func (t RebuildTiming) Total() time.Duration {
	return t.Profiling + t.Algorithm + t.Splitting + t.Loading
}

// ProfilingTime prices the profiling stage of one update cycle:
// replaying calibration queries through coarse quantization in large
// batches on the host. The adaptive controller needs this stage's cost
// *before* the new plan exists, so it is priced independently of
// EstimateRebuild.
func ProfilingTime(node hw.Node, spec dataset.Spec, calibrationQueries int) time.Duration {
	sm := costmodel.NewSearchModel(node.CPU, spec)
	const profBatch = 64
	batches := (calibrationQueries + profBatch - 1) / profBatch
	return time.Duration(batches) * sm.CQTime(profBatch)
}

// AlgorithmTime prices the latency-bounded partitioning stage: the
// algorithm evaluates the hit-rate integral and the perf model once per
// bisection step; each evaluation is dominated by the
// first-order-statistic quadrature (~50 ms wall per step in the
// original system, which converges in under a minute).
func AlgorithmTime(iters int) time.Duration {
	return 2*time.Second + time.Duration(iters)*100*time.Millisecond
}

// SplittingTime prices the shard-materialization stage: rewriting the
// hot clusters into shard layouts and mapping tables on the host.
func SplittingTime(node hw.Node, plan *splitter.Plan) time.Duration {
	return costmodel.SplitTime(node.CPU, plan.TotalBytes())
}

// LoadingTimes prices each shard's host-to-device transfer. Shards load
// over PCIe concurrently, so the slowest entry gates the cycle.
func LoadingTimes(node hw.Node, plan *splitter.Plan) []time.Duration {
	out := make([]time.Duration, len(plan.ShardBytes))
	for g, b := range plan.ShardBytes {
		out[g] = costmodel.ShardLoadTime(node.GPU, b)
	}
	return out
}

// EstimateRebuild prices one update cycle for a given plan on the given
// node. calibrationQueries is the number of training queries replayed
// (the paper profiles ~0.5 % of a 10M-query stream, i.e. ~50k);
// algorithmIters the bisection iterations the partitioner took.
func EstimateRebuild(node hw.Node, spec dataset.Spec, plan *splitter.Plan, calibrationQueries, algorithmIters int) RebuildTiming {
	var loading time.Duration
	for _, t := range LoadingTimes(node, plan) {
		if t > loading {
			loading = t
		}
	}
	return RebuildTiming{
		Profiling: ProfilingTime(node, spec, calibrationQueries),
		Algorithm: AlgorithmTime(algorithmIters),
		Splitting: SplittingTime(node, plan),
		Loading:   loading,
	}
}

// InsertTime prices applying one live insert at logical scale: routing
// the vector through coarse quantization (one single-query CQ pass —
// the same centroid scan a query pays) plus the append-buffer write.
func InsertTime(node hw.Node, spec dataset.Spec) time.Duration {
	sm := costmodel.NewSearchModel(node.CPU, spec)
	return sm.CQTime(1) + time.Millisecond
}

// DeleteTime prices applying one live delete: an ID lookup plus a
// tombstone bit set — constant host work, independent of scale.
func DeleteTime() time.Duration { return time.Millisecond }

// ReencodeTime prices folding pending raw vectors into PQ codes: the
// encoder streams each raw vector against the per-subspace codebooks,
// whose distance computations cost several passes' worth of memory
// traffic over the raw bytes rather than one. logicalVectors is the
// pending count at paper scale.
func ReencodeTime(node hw.Node, spec dataset.Spec, logicalVectors int64) time.Duration {
	const base = 5 * time.Millisecond // scheduling + list splice
	if logicalVectors <= 0 {
		return base
	}
	const encodePasses = 8
	raw := logicalVectors * int64(spec.Dim) * 4
	return base + costmodel.SplitTime(node.CPU, raw*encodePasses)
}

// CompactionTime prices one cheap-compaction cycle: re-encode the
// pending buffers plus an incremental rewrite that drops purged
// tombstoned codes from the affected lists — the per-cluster
// maintenance action that substitutes for a full re-partition while
// skew stays low.
func CompactionTime(node hw.Node, spec dataset.Spec, pendingLogical, purgedLogical int64) time.Duration {
	purge := costmodel.SplitTime(node.CPU, purgedLogical*int64(spec.CodeBytes))
	return ReencodeTime(node, spec, pendingLogical) + purge
}

// Validate sanity-checks a timing against the paper's deployability
// claims: the full cycle completes within ~a minute and per-shard
// loading within ten seconds.
func Validate(t RebuildTiming) error {
	if t.Total() > 2*time.Minute {
		return fmt.Errorf("update: rebuild %v exceeds the paper's <1min envelope by >2x", t.Total())
	}
	if t.Loading > 10*time.Second {
		return fmt.Errorf("update: shard loading %v exceeds 10s", t.Loading)
	}
	return nil
}
