package rag

import (
	"fmt"

	"vectorliterag/internal/adapt"
	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/des"
	"vectorliterag/internal/hitrate"
	"vectorliterag/internal/perfmodel"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/retrieval"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/update"
	"vectorliterag/internal/workload"
)

// AdaptiveOptions configures an adaptive vLiteRAG run: the usual
// serving options (typically with a Drift trace and/or RateSchedule so
// there is something to adapt to) plus the controller's knobs.
type AdaptiveOptions struct {
	Options
	// Monitor holds the drift-detection thresholds. A zero
	// WindowRequests derives a window of roughly ten seconds of traffic
	// at the nominal rate (min 100 requests) — the paper's "every few
	// thousand requests" scaled to this substrate's run lengths.
	Monitor update.MonitorConfig
}

// AdaptiveResult extends a run result with the control-plane record:
// every rebuild the controller executed and the expectation it started
// from. Rho reports the *initial* plan's coverage; each rebuild record
// carries the coverage it moved to.
type AdaptiveResult struct {
	Result
	// ExpectedHitRate is the model-expected mean hit rate of the initial
	// plan (the monitor's first anchor).
	ExpectedHitRate float64
	Rebuilds        []adapt.RebuildRecord
	// Pending is a rebuild still in flight when the clock stopped (its
	// remaining stages lay past duration+drain), or nil. Shards it left
	// refreshing explain a hit-rate dip at the tail of the timeline.
	Pending *adapt.RebuildRecord
	// Observed is how many completed requests fed the monitor.
	Observed int
}

// derivedWindow sizes the monitor window to roughly ten seconds of
// traffic when the caller did not choose one. With a schedule driving
// arrivals, Rate is only a label (and may be far off the real traffic),
// so the schedule's bound sizes the window — conservatively large,
// which also keeps the one-window post-swap cooldown meaningful.
func derivedWindow(opts *AdaptiveOptions) int {
	rate := opts.Rate
	if opts.RateSchedule != nil {
		rate = opts.RateSchedule.MaxRate()
	}
	w := int(rate * 10)
	if w < 100 {
		w = 100
	}
	return w
}

// RunAdaptive executes one adaptive evaluation point: a vLiteRAG
// pipeline with the adapt.Controller attached to the collector path,
// serving a (typically non-stationary) workload in virtual time. When
// drift trips the monitor, the controller re-profiles the live
// distribution, re-runs Algorithm 1, re-splits, reloads shards in the
// background (mid-reload queries divert to the CPU path), and swaps the
// new plan in — all as simulated events, inside the same run.
//
// The static counterpart for an A/B under the identical trace is plain
// Run with the same Options (same Seed, Drift, RateSchedule): its plan
// is decided once, pre-drift, and never changes.
func RunAdaptive(opts AdaptiveOptions) (*AdaptiveResult, error) {
	if opts.Kind == "" {
		opts.Kind = VLiteRAG
	}
	if opts.Kind != VLiteRAG {
		return nil, fmt.Errorf("rag: adaptive serving requires the hot-swappable vLiteRAG runtime, got %s", opts.Kind)
	}
	if opts.Overload != nil {
		return nil, fmt.Errorf("rag: overload control and the adaptive replan controller would fight over the same latency signal; run one or the other")
	}
	sloTotal, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	prof, err := profileFor(opts.Options)
	if err != nil {
		return nil, err
	}
	cpuModel := costmodel.NewSearchModel(opts.Node.CPU, opts.W.Spec)
	d, err := decide(opts.Options, prof, cpuModel)
	if err != nil {
		return nil, err
	}

	// The controller re-uses the hardware-derived models across cycles
	// and re-measures only the access profile: drift moves the query
	// distribution, not the machine.
	est, err := hitrate.NewEstimator(prof)
	if err != nil {
		return nil, err
	}
	perf, err := perfmodel.Fit(profiler.ProfileLatency(cpuModel, profiler.DefaultBatches()))
	if err != nil {
		return nil, err
	}
	mu0 := d.mu0
	if mu0 == 0 { // prebuilt-plan path skips the capacity measurement
		if mu0, err = bareCapacity(opts.Node, opts.Model, opts.Node.NumGPUs, opts.Shape); err != nil {
			return nil, err
		}
	}
	expected := est.MeanHitRate(d.rho)
	// Fill each unset monitor field independently, so a caller pinning
	// only the window (or only a threshold) still gets working defaults
	// for the rest.
	def := update.DefaultMonitorConfig()
	if opts.Monitor.WindowRequests == 0 {
		opts.Monitor.WindowRequests = derivedWindow(&opts)
	}
	if opts.Monitor.SLOThreshold == 0 {
		opts.Monitor.SLOThreshold = def.SLOThreshold
	}
	if opts.Monitor.HitRateDivergence == 0 {
		opts.Monitor.HitRateDivergence = def.HitRateDivergence
	}

	var sim des.Sim
	coll := serve.NewCollector()
	ctrl, err := adapt.NewController(adapt.Config{
		Monitor:        opts.Monitor,
		ProfileQueries: opts.ProfileQueries,
		Epsilon:        opts.Epsilon,
	}, adapt.Inputs{
		Sim:       &sim,
		W:         opts.W,
		Node:      opts.Node,
		SLOTotal:  sloTotal,
		SLOSearch: opts.SLOSearch,
		Perf:      perf,
		Mu0:       mu0,
		MemKV:     nodeKVBytes(opts.Node, opts.Model),
		Expected:  expected,
		Seed:      opts.Seed + 13,
	})
	if err != nil {
		return nil, err
	}
	retr, gen := stageBuilders(&sim, opts.Options, d, cpuModel, nil)
	pool := &workload.Pool{}
	// The controller observes each completed request before the pool
	// recycles it; the release therefore goes last in the terminal Tee.
	pipe, err := serve.Compose(&sim, serve.Tee(coll.Done, ctrl.Observe, pool.Release), serve.Admit(coll), retr, gen)
	if err != nil {
		return nil, err
	}
	hs, ok := pipe.Retrieval().Engine.(retrieval.HotSwapper)
	if !ok {
		return nil, fmt.Errorf("rag: engine %s is not hot-swappable", pipe.Retrieval().Engine.Name())
	}
	ctrl.Bind(hs)

	defer installDrift(&sim, opts.Options)()
	arr := arrivalsFor(opts.Options)
	arr.SetPool(pool)
	sec := beginServeSection()
	pipe.Run(arr, opts.Duration, opts.Drain)
	wall, allocs, bytes := sec.end()

	return &AdaptiveResult{
		Result: Result{
			Kind: opts.Kind, Rate: opts.Rate, SLOTotal: sloTotal,
			ServeWall: wall, ServeAllocs: allocs, ServeBytes: bytes,
			Rho: d.rho, PlanBytes: d.planBytes, Mu0: mu0, Partition: d.partition,
			Requests:  coll.Requests(),
			Generated: coll.Admitted(),
			AvgBatch:  pipe.Retrieval().AvgBatch(),
			LLMGPUs:   pipe.Generation().GPUs(opts.Model.TP),
			Summary:   coll.Summarize(sloTotal, des.Time(opts.Warmup)),
		},
		ExpectedHitRate: expected,
		Rebuilds:        ctrl.Rebuilds(),
		Pending:         ctrl.Pending(),
		Observed:        ctrl.Observed(),
	}, nil
}
