package kmeans

import (
	"math"
	"reflect"
	"testing"

	"vectorliterag/internal/rng"
)

func trainData(n, dim int, seed uint64) []float32 {
	r := rng.New(seed)
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = float32(r.NormFloat64())
	}
	return data
}

// TestParallelTrainBitIdentical is the determinism contract of the
// parallelized build path: for a fixed seed, any worker count must
// produce the same centroids, assignments, and inertia bit for bit.
func TestParallelTrainBitIdentical(t *testing.T) {
	data := trainData(3000, 24, 9)
	cfg := Config{K: 37, Dim: 24, MaxIters: 10, Seed: 5}

	cfg.Workers = 1
	seq, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		cfg.Workers = workers
		par, err := Train(data, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par.Centroids, seq.Centroids) {
			t.Fatalf("workers=%d: centroids differ from sequential", workers)
		}
		if !reflect.DeepEqual(par.Assignments, seq.Assignments) {
			t.Fatalf("workers=%d: assignments differ from sequential", workers)
		}
		if math.Float64bits(par.Inertia) != math.Float64bits(seq.Inertia) {
			t.Fatalf("workers=%d: inertia %x differs from sequential %x",
				workers, math.Float64bits(par.Inertia), math.Float64bits(seq.Inertia))
		}
	}
}
