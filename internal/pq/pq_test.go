package pq

import (
	"math"
	"testing"

	"vectorliterag/internal/rng"
	"vectorliterag/internal/vecmath"
)

func randomMatrix(r *rng.Rand, n, dim int) []float32 {
	m := make([]float32, n*dim)
	for i := range m {
		m[i] = float32(r.NormFloat64())
	}
	return m
}

func trainSmall(t *testing.T, r *rng.Rand, n, dim, m, k int) (*Quantizer, []float32) {
	t.Helper()
	data := randomMatrix(r, n, dim)
	q, err := Train(data, Config{Dim: dim, M: m, K: k, Iters: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return q, data
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train([]float32{1, 2, 3, 4}, Config{Dim: 4, M: 3, K: 2}); err == nil {
		t.Fatal("M not dividing dim accepted")
	}
	if _, err := Train(nil, Config{Dim: 4, M: 2, K: 2}); err == nil {
		t.Fatal("empty training data accepted")
	}
	if _, err := Train([]float32{1, 2, 3, 4}, Config{Dim: 4, M: 2, K: 16}); err == nil {
		t.Fatal("fewer vectors than codewords accepted")
	}
}

func TestEncodeDecodeReducesError(t *testing.T) {
	r := rng.New(1)
	q, data := trainSmall(t, r, 600, 8, 4, 32)
	// Reconstruction error must be far below the raw signal energy.
	var errSum, sigSum float64
	for i := 0; i < 100; i++ {
		v := data[i*8 : (i+1)*8]
		rec := q.Decode(q.Encode(v, nil))
		errSum += float64(vecmath.SquaredL2(v, rec))
		sigSum += float64(vecmath.Norm2(v))
	}
	if ratio := errSum / sigSum; ratio > 0.5 {
		t.Fatalf("reconstruction error ratio %v too high", ratio)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	r := rng.New(2)
	q, data := trainSmall(t, r, 400, 8, 2, 16)
	v := data[:8]
	a := q.Encode(v, nil)
	b := q.Encode(v, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encode not deterministic")
		}
	}
}

func TestLUTDistanceMatchesDecodedDistance(t *testing.T) {
	// ADC invariant: LUT-accumulated distance == distance from query to
	// the decoded (reconstructed) vector, because subspaces are
	// orthogonal partitions of the coordinates.
	r := rng.New(3)
	q, data := trainSmall(t, r, 500, 8, 4, 16)
	query := randomMatrix(r, 1, 8)
	lut := q.BuildLUT(query)
	for i := 0; i < 50; i++ {
		v := data[i*8 : (i+1)*8]
		code := q.Encode(v, nil)
		adc := float64(lut.Distance(code))
		exact := float64(vecmath.SquaredL2(query, q.Decode(code)))
		if math.Abs(adc-exact) > 1e-3 {
			t.Fatalf("vector %d: ADC %v != decoded distance %v", i, adc, exact)
		}
	}
}

func TestScanCodesFindsNearest(t *testing.T) {
	r := rng.New(4)
	q, data := trainSmall(t, r, 800, 8, 4, 32)
	n := 200
	codes := make([]byte, 0, n*q.CodeSize())
	for i := 0; i < n; i++ {
		codes = append(codes, q.Encode(data[i*8:(i+1)*8], nil)...)
	}
	// Query very close to vector 17.
	query := append([]float32(nil), data[17*8:18*8]...)
	lut := q.BuildLUT(query)
	top := vecmath.NewTopK(5)
	lut.ScanCodes(codes, 0, top)
	res := top.Sorted()
	found := false
	for _, nb := range res {
		if nb.Index == 17 {
			found = true
		}
	}
	if !found {
		t.Fatalf("self vector not in top-5 under ADC: %+v", res)
	}
}

func TestScanCodesBaseOffset(t *testing.T) {
	r := rng.New(5)
	q, data := trainSmall(t, r, 400, 8, 2, 16)
	codes := q.Encode(data[:8], nil)
	lut := q.BuildLUT(data[:8])
	top := vecmath.NewTopK(1)
	lut.ScanCodes(codes, 1000, top)
	if got := top.Sorted()[0].Index; got != 1000 {
		t.Fatalf("base offset ignored: index %d", got)
	}
}

func TestCodeSize(t *testing.T) {
	r := rng.New(6)
	q, _ := trainSmall(t, r, 400, 8, 4, 16)
	if q.CodeSize() != 4 {
		t.Fatalf("CodeSize = %d, want 4", q.CodeSize())
	}
}

func TestEncodePanicsOnWrongDim(t *testing.T) {
	r := rng.New(7)
	q, _ := trainSmall(t, r, 400, 8, 2, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with wrong dim did not panic")
		}
	}()
	q.Encode(make([]float32, 5), nil)
}

func TestPQRecallOnClusteredData(t *testing.T) {
	// On clustered data (the realistic case), top-10 ADC search must
	// recall a majority of the true top-10.
	r := rng.New(8)
	const dim, nCenters, perCenter = 16, 8, 100
	centers := randomMatrix(r, nCenters, dim)
	for i := range centers {
		centers[i] *= 5
	}
	n := nCenters * perCenter
	data := make([]float32, n*dim)
	for c := 0; c < nCenters; c++ {
		for i := 0; i < perCenter; i++ {
			row := (c*perCenter + i) * dim
			for d := 0; d < dim; d++ {
				data[row+d] = centers[c*dim+d] + float32(r.NormFloat64())*0.5
			}
		}
	}
	q, err := Train(data, Config{Dim: dim, M: 8, K: 64, Iters: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]byte, 0, n*q.CodeSize())
	for i := 0; i < n; i++ {
		codes = append(codes, q.Encode(data[i*dim:(i+1)*dim], nil)...)
	}
	recallSum := 0.0
	const queries = 20
	for qi := 0; qi < queries; qi++ {
		query := make([]float32, dim)
		base := r.Intn(n) * dim
		for d := 0; d < dim; d++ {
			query[d] = data[base+d] + float32(r.NormFloat64())*0.1
		}
		truth := vecmath.BruteForceTopK(query, data, dim, 10)
		lut := q.BuildLUT(query)
		top := vecmath.NewTopK(10)
		lut.ScanCodes(codes, 0, top)
		got := top.Sorted()
		gotSet := map[int]bool{}
		for _, nb := range got {
			gotSet[nb.Index] = true
		}
		hit := 0
		for _, nb := range truth {
			if gotSet[nb.Index] {
				hit++
			}
		}
		recallSum += float64(hit) / 10
	}
	if recall := recallSum / queries; recall < 0.6 {
		t.Fatalf("PQ top-10 recall %v too low", recall)
	}
}

// referenceScan is the pre-optimization scan semantics: every code's
// full distance pushed in index order, no unrolling, no abandonment.
func referenceScan(lut *LUT, codes []byte, ids []int32, top *vecmath.TopK) {
	cs := lut.M
	for i := 0; i*cs < len(codes); i++ {
		top.Push(int(ids[i]), lut.Distance(codes[i*cs:(i+1)*cs]))
	}
}

// TestScanCodesIDsMatchesReference asserts that early abandonment and
// the unrolled/specialized loops never change the selected top-k: for
// both the generic path and the M=8 fast path, across k values and
// pre-seeded collector states, results are bit-identical to pushing
// every full distance.
func TestScanCodesIDsMatchesReference(t *testing.T) {
	r := rng.New(11)
	for _, m := range []int{4, 8, 16} {
		q, data := trainSmall(t, r, 600, 16, m, 32)
		n := 300
		codes := make([]byte, 0, n*q.CodeSize())
		ids := make([]int32, n)
		for i := 0; i < n; i++ {
			codes = append(codes, q.Encode(data[(i%600)*16:(i%600)*16+16], nil)...)
			ids[i] = int32(1000 + i)
		}
		query := randomMatrix(r, 1, 16)
		lut := q.BuildLUT(query)
		for _, k := range []int{1, 3, 25, 299, 400} {
			got := vecmath.NewTopK(k)
			want := vecmath.NewTopK(k)
			// Pre-seed both collectors identically so the scan starts
			// from a partially full heap, as multi-cluster search does.
			for i := 0; i < 5; i++ {
				d := float32(r.Float64() * 50)
				got.Push(i, d)
				want.Push(i, d)
			}
			lut.ScanCodesIDs(codes, ids, got)
			referenceScan(lut, codes, ids, want)
			g, w := got.Sorted(), want.Sorted()
			if len(g) != len(w) {
				t.Fatalf("M=%d k=%d: lengths differ %d vs %d", m, k, len(g), len(w))
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("M=%d k=%d rank %d: %+v vs reference %+v", m, k, i, g[i], w[i])
				}
			}
		}
	}
}

// TestScanCodesMatchesReference covers the contiguous-ID variant the
// same way.
func TestScanCodesMatchesReference(t *testing.T) {
	r := rng.New(12)
	q, data := trainSmall(t, r, 500, 8, 8, 16)
	n := 200
	codes := make([]byte, 0, n*q.CodeSize())
	for i := 0; i < n; i++ {
		codes = append(codes, q.Encode(data[(i%500)*8:(i%500)*8+8], nil)...)
	}
	query := randomMatrix(r, 1, 8)
	lut := q.BuildLUT(query)
	for _, k := range []int{2, 10, 77} {
		got := vecmath.NewTopK(k)
		want := vecmath.NewTopK(k)
		lut.ScanCodes(codes, 50, got)
		cs := lut.M
		for i := 0; i*cs < len(codes); i++ {
			want.Push(50+i, lut.Distance(codes[i*cs:(i+1)*cs]))
		}
		g, w := got.Sorted(), want.Sorted()
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("k=%d rank %d: %+v vs reference %+v", k, i, g[i], w[i])
			}
		}
	}
}

// TestBuildLUTIntoReusesBuffer pins buffer reuse and value stability
// across rebuilds on one scratch LUT.
func TestBuildLUTIntoReusesBuffer(t *testing.T) {
	r := rng.New(13)
	q, data := trainSmall(t, r, 400, 8, 4, 16)
	var lut LUT
	q.BuildLUTInto(data[:8], &lut)
	first := q.BuildLUT(data[:8])
	code := q.Encode(data[8:16], nil)
	if lut.Distance(code) != first.Distance(code) {
		t.Fatal("BuildLUTInto differs from BuildLUT")
	}
	// Rebuild for a second query on the same struct: values must match a
	// fresh table, with no stale-entry leakage.
	q.BuildLUTInto(data[16:24], &lut)
	fresh := q.BuildLUT(data[16:24])
	if lut.Distance(code) != fresh.Distance(code) {
		t.Fatal("reused LUT differs from fresh LUT")
	}
	if allocs := testing.AllocsPerRun(50, func() {
		q.BuildLUTInto(data[:8], &lut)
	}); allocs != 0 {
		t.Fatalf("BuildLUTInto allocates %.1f objects on a warm LUT", allocs)
	}
}
