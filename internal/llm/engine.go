package llm

import (
	"fmt"
	"math"
	"sort"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/workload"
)

// EngineConfig bounds the continuous-batching scheduler. The engine
// models vLLM-style chunked prefill: every iteration advances all
// running decodes by one token AND consumes up to MaxPrefillTokens of
// pending prompt tokens, so prefills never stall decode entirely and
// TTFT stays smooth under load.
type EngineConfig struct {
	MaxSeqs           int           // max concurrently decoding requests per instance
	MaxPrefillTokens  int           // prefill-token budget per iteration (chunked prefill)
	PrefillBase       time.Duration // fixed overhead added when an iteration prefills
	DecodeBase        time.Duration // fixed per-iteration overhead
	ComputeEfficiency float64       // fraction of hw.GPU.TFLOPs realized on prefill
}

// DefaultEngineConfig mirrors common vLLM deployment limits.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		MaxSeqs:           256,
		MaxPrefillTokens:  2048,
		PrefillBase:       2 * time.Millisecond,
		DecodeBase:        1500 * time.Microsecond,
		ComputeEfficiency: 1.0,
	}
}

// Instance is one model replica spanning TP GPUs, running an
// iteration-level continuous-batching loop on the simulator.
//
// The loop is allocation-free in steady state and does O(1) work per
// iteration plus O(1) per completion — not O(running sequences):
// because every running decode gains exactly one token per iteration,
// an entry's completion iteration is known the moment it joins the
// decode set, so running entries live in a completion time-wheel
// (buckets keyed by completion tick) instead of being swept every
// iteration. The aggregate context size advances in bulk (+running per
// tick), reproducing the per-entry bookkeeping of the sweep version
// bit for bit: same completion instants, same completion order (join
// order within a tick), same decode-step durations. Entries are stored
// by value, the waiting queue compacts its backing array instead of
// re-slicing it away, the prefill-completion set is tracked as a count
// (completed prefills are always a FIFO prefix of prefilling), and the
// two scheduler callbacks (iterate, and the post-iteration step) are
// bound once at construction instead of captured per event.
type Instance struct {
	sim  *des.Sim
	spec ModelSpec
	node hw.Node
	cfg  EngineConfig
	gpus []*gpu.State

	kvCapacityTokens int64
	kvUsedTokens     int64

	waiting    []entry // not yet admitted (no KV reserved)
	wHead      int     // consumed prefix of waiting (compacted on append)
	prefilling []entry // admitted, prompt tokens still being consumed
	sumCtx     int64   // total context tokens across running entries
	busy       bool

	// The decode set, as a completion time-wheel: wheel[t & mask] holds
	// the entries whose last token lands on decode tick t, in join
	// order. nRunning counts entries across all buckets; tick is the
	// current decode iteration number. The wheel has more slots than
	// the largest per-entry decode length, so bucket and tick can never
	// collide between two generations of entries.
	wheel    [][]finEntry
	tick     int64
	nRunning int

	// Per-iteration physics constants, precomputed at construction so
	// the (very hot) iteration loop does no redundant spec math.
	weightBytesF  float64 // one full weight read, bytes
	kvPerTokenF   float64 // KV bytes per context token
	bwTotal       float64 // aggregate memory bandwidth across TP GPUs
	prefillAggOps float64 // aggregate effective FLOP/s for prefill

	// prefillDone is how many leading prefilling entries finished their
	// prompt in the iteration currently in flight. Chunked prefill
	// consumes the budget FIFO, so finishers are always a prefix — a
	// count fully describes the set, and the step event needs no
	// captured slice.
	prefillDone int

	// iterateFn / stepFn are the two loop callbacks, pre-bound so every
	// scheduled iteration reuses them.
	iterateFn func()
	stepFn    func()

	// Straggler episode: while slowUntil is ahead of the clock, every
	// iteration is stretched by slowFactor (a slow GPU / noisy neighbor
	// injected by the fault layer). Inactive episodes skip the multiply
	// entirely, so fault-free runs stay bit-identical.
	slowFactor float64
	slowUntil  des.Time

	onFirstToken func(*workload.Request)
	onDone       func(*workload.Request)

	completed int64
	tokensOut int64
}

type entry struct {
	req            *workload.Request
	generated      int
	prefillPending int   // prompt tokens not yet processed
	outTokens      int   // decode target, cached off req.Shape
	reserved       int64 // KV tokens reserved at admission
}

// finEntry is a decoding request parked in the completion wheel until
// the tick its last token lands on.
type finEntry struct {
	req       *workload.Request
	inTokens  int   // prompt length, for the context-sum release
	genAtDone int   // generated count at completion (normally outTokens)
	reserved  int64 // KV tokens to release
}

// NewInstance builds an instance over the given GPUs (len must equal
// spec.TP).
func NewInstance(sim *des.Sim, node hw.Node, spec ModelSpec, gpus []*gpu.State, cfg EngineConfig) (*Instance, error) {
	if len(gpus) != spec.TP {
		return nil, fmt.Errorf("llm: %s needs %d GPUs, got %d", spec, spec.TP, len(gpus))
	}
	inst := &Instance{sim: sim, spec: spec, node: node, cfg: cfg, gpus: gpus}
	inst.iterateFn = inst.iterate
	inst.stepFn = inst.step
	inst.weightBytesF = float64(spec.WeightBytes())
	inst.kvPerTokenF = float64(spec.KVBytesPerToken())
	inst.bwTotal = node.GPU.MemBWBytes * float64(spec.TP)
	inst.prefillAggOps = node.GPU.TFLOPs * 1e12 * float64(spec.TP) * cfg.ComputeEfficiency
	// KV pool: the minimum free memory across the instance's GPUs bounds
	// the per-GPU KV share (paged KV is allocated symmetrically under TP).
	perGPU := int64(1) << 62
	for _, g := range gpus {
		free := g.MemoryFree(spec.WeightBytesPerGPU())
		if free < perGPU {
			perGPU = free
		}
	}
	pool := perGPU * int64(spec.TP)
	inst.kvCapacityTokens = pool / spec.KVBytesPerToken()
	if inst.kvCapacityTokens <= 0 {
		return nil, fmt.Errorf("llm: no KV space for %s (per-GPU free %d bytes)", spec, perGPU)
	}
	return inst, nil
}

// KVCapacityTokens reports the instance's KV pool in tokens.
func (in *Instance) KVCapacityTokens() int64 { return in.kvCapacityTokens }

// Load returns the number of requests queued or running.
func (in *Instance) Load() int {
	return len(in.waiting) - in.wHead + len(in.prefilling) + in.nRunning
}

// Completed returns the number of finished requests.
func (in *Instance) Completed() int64 { return in.completed }

// Submit enqueues a request; the scheduling loop wakes if idle.
func (in *Instance) Submit(req *workload.Request) {
	if in.wHead > 0 && len(in.waiting) == cap(in.waiting) {
		// Compact the consumed prefix away before append would grow the
		// array: the queue stays allocation-free once warm.
		n := copy(in.waiting, in.waiting[in.wHead:])
		in.waiting = in.waiting[:n]
		in.wHead = 0
	}
	in.waiting = append(in.waiting, entry{req: req})
	in.wake()
}

func (in *Instance) wake() {
	if in.busy {
		return
	}
	in.busy = true
	in.sim.At(in.sim.Now(), in.iterateFn)
}

// iterate runs one mixed scheduler step (chunked prefill): admit
// waiting requests while KV and MaxSeqs allow, consume up to
// MaxPrefillTokens of pending prompt tokens, and advance every running
// decode by one token — all in a single iteration whose duration sums
// the decode read time and the prefill compute.
func (in *Instance) iterate() {
	// Admission: reserve KV for as many waiting requests as fit.
	for in.wHead < len(in.waiting) {
		e := in.waiting[in.wHead]
		need := int64(e.req.Shape.InputTokens + e.req.Shape.OutputTokens)
		if in.nRunning+len(in.prefilling)+1 > in.cfg.MaxSeqs {
			break
		}
		if in.kvUsedTokens+need > in.kvCapacityTokens {
			break
		}
		in.waiting[in.wHead] = entry{}
		in.wHead++
		if in.wHead == len(in.waiting) {
			in.waiting = in.waiting[:0]
			in.wHead = 0
		}
		e.reserved = need
		e.prefillPending = e.req.Shape.InputTokens
		e.outTokens = e.req.Shape.OutputTokens
		e.req.LLMStart = in.sim.Now()
		in.kvUsedTokens += need
		in.prefilling = append(in.prefilling, e)
	}

	if len(in.prefilling) == 0 && in.nRunning == 0 {
		in.busy = false
		return
	}

	// Consume prompt tokens FIFO within this iteration's budget. An
	// entry only receives tokens once every earlier entry is done, so
	// the finishers are exactly the first prefillDone entries.
	budget := in.cfg.MaxPrefillTokens
	prefillTokens := 0
	in.prefillDone = 0
	for i := range in.prefilling {
		if budget <= 0 {
			break
		}
		e := &in.prefilling[i]
		take := e.prefillPending
		if take > budget {
			take = budget
		}
		e.prefillPending -= take
		budget -= take
		prefillTokens += take
		if e.prefillPending == 0 {
			in.prefillDone++
		}
	}

	// Iteration duration: decode reads + prefill compute.
	var d time.Duration
	if in.nRunning > 0 {
		d += in.decodeStepTime()
	}
	if prefillTokens > 0 {
		d += in.prefillTime(prefillTokens)
	}
	if d == 0 {
		d = in.cfg.DecodeBase
	}
	stretched := in.stretch(d)

	in.sim.After(time.Duration(stretched), in.stepFn)
}

// park inserts a freshly prefilled entry into the completion wheel.
// The entry joined decoding with one token already emitted, gains one
// per subsequent tick, and completes on the first tick where generated
// reaches outTokens — ticks = max(1, outTokens-1) from now (even a
// 1-token request survives one decode tick, exactly as the sweep
// version's post-increment check behaved).
func (in *Instance) park(e *entry) {
	ticks := e.outTokens - 1
	if ticks < 1 {
		ticks = 1
	}
	if ticks >= len(in.wheel) {
		in.growWheel(ticks + 1)
	}
	done := in.tick + int64(ticks)
	slot := int(done & int64(len(in.wheel)-1))
	in.wheel[slot] = append(in.wheel[slot], finEntry{
		req:       e.req,
		inTokens:  e.req.Shape.InputTokens,
		genAtDone: 1 + ticks,
		reserved:  e.reserved,
	})
	in.nRunning++
}

// growWheel resizes the wheel to hold at least need ticks of lookahead,
// re-bucketing parked entries. Buckets are relocated wholesale: within
// a bucket join order is preserved, and distinct buckets cannot merge
// because the new size also exceeds every parked entry's remaining
// lookahead. Fresh slots are carved out of one flat backing array with
// a few entries of capacity each, so filling the wheel the first time
// costs two allocations, not one per slot.
func (in *Instance) growWheel(need int) {
	size := 256
	for size < need+1 {
		size *= 2
	}
	old := in.wheel
	oldMask := int64(len(old) - 1)
	in.wheel = make([][]finEntry, size)
	const slotCap = 4
	backing := make([]finEntry, size*slotCap)
	for i := range in.wheel {
		in.wheel[i] = backing[i*slotCap : i*slotCap : (i+1)*slotCap]
	}
	if len(old) == 0 {
		return
	}
	// Parked entries complete within len(old) ticks of now; walk the
	// next len(old) ticks in order and move each bucket to its slot
	// under the new mask.
	for dt := int64(0); dt < int64(len(old)); dt++ {
		t := in.tick + dt
		b := old[t&oldMask]
		if len(b) > 0 {
			in.wheel[t&int64(size-1)] = b
		}
	}
}

// step applies the iteration scheduled by iterate: decode tokens land,
// finished requests complete, fully prefilled requests emit their first
// token, and the loop re-enters iterate at the same instant.
func (in *Instance) step() {
	now := in.sim.Now()
	// Decode side: every running request gains a token — in bulk, since
	// they advance in lockstep — and this tick's wheel bucket holds
	// exactly the requests whose last token just landed, in join order.
	in.tick++
	in.tokensOut += int64(in.nRunning)
	in.sumCtx += int64(in.nRunning)
	if len(in.wheel) > 0 {
		slot := int(in.tick & int64(len(in.wheel)-1))
		bucket := in.wheel[slot]
		if len(bucket) > 0 {
			in.nRunning -= len(bucket)
			for i := range bucket {
				e := &bucket[i]
				e.req.Done = now
				in.kvUsedTokens -= e.reserved
				in.sumCtx -= int64(e.inTokens + e.genAtDone)
				in.completed++
				if in.onDone != nil {
					in.onDone(e.req)
				}
			}
			clear(bucket)
			in.wheel[slot] = bucket[:0]
		}
	}
	// Prefill side: fully prefilled requests emit their first token
	// (the TTFT endpoint) and join the decode set.
	if k := in.prefillDone; k > 0 {
		in.prefillDone = 0
		for i := range in.prefilling[:k] {
			e := &in.prefilling[i]
			e.req.FirstToken = now
			e.generated = 1
			in.tokensOut++
			in.sumCtx += int64(e.req.Shape.InputTokens + 1)
			in.park(e)
			if in.onFirstToken != nil {
				in.onFirstToken(e.req)
			}
		}
		n := copy(in.prefilling, in.prefilling[k:])
		in.prefilling = in.prefilling[:n]
	}
	in.iterate()
}

// prefillTime is compute-bound: 2*Params FLOPs per token over the
// instance's aggregate effective compute.
func (in *Instance) prefillTime(tokens int) time.Duration {
	flops := 2 * float64(in.spec.Params) * float64(tokens)
	return in.cfg.PrefillBase + time.Duration(flops/in.prefillAggOps*float64(time.Second))
}

// decodeStepTime is bandwidth-bound: one full weight read plus the KV
// reads of every running sequence, across the instance's aggregate
// memory bandwidth.
func (in *Instance) decodeStepTime() time.Duration {
	bytes := in.weightBytesF + float64(in.sumCtx)*in.kvPerTokenF
	return in.cfg.DecodeBase + time.Duration(bytes/in.bwTotal*float64(time.Second))
}

// stretch applies retrieval-kernel contention: the iteration slows by
// the node's contention factor while any of the instance's GPUs has a
// retrieval kernel resident.
func (in *Instance) stretch(d time.Duration) des.Time {
	var busyUntil des.Time
	for _, g := range in.gpus {
		if bu := g.RetrievalBusyUntil(); bu > busyUntil {
			busyUntil = bu
		}
	}
	out := gpu.StretchForContention(in.sim.Now(), des.Time(d), busyUntil, in.node.ContentionFactor)
	if in.slowFactor > 1 && in.sim.Now() < in.slowUntil {
		out = des.Time(float64(out) * in.slowFactor)
	}
	return out
}

// SetSlowdown installs a straggler episode: iterations stretch by
// factor until the given virtual instant. A factor <= 1 clears it.
func (in *Instance) SetSlowdown(factor float64, until des.Time) {
	in.slowFactor, in.slowUntil = factor, until
}

// Cluster is a set of instances with least-loaded dispatch — the
// LLM-serving half of the RAG pipeline.
type Cluster struct {
	Instances []*Instance
	// next rotates the starting point of the least-loaded scan so that
	// ties spread round-robin instead of piling onto instance 0.
	next int
}

// NewCluster packs instances onto consecutive GPU groups of size TP.
// GPUs beyond the last full group stay unused (the rigidity the paper
// calls out for DED-GPU with large models, §VI-B).
func NewCluster(sim *des.Sim, node hw.Node, spec ModelSpec, states []*gpu.State, cfg EngineConfig) (*Cluster, error) {
	n := len(states) / spec.TP
	if n == 0 {
		return nil, fmt.Errorf("llm: %d GPUs cannot host %s", len(states), spec)
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		inst, err := NewInstance(sim, node, spec, states[i*spec.TP:(i+1)*spec.TP], cfg)
		if err != nil {
			return nil, err
		}
		c.Instances = append(c.Instances, inst)
	}
	return c, nil
}

// SetCallbacks installs completion hooks on every instance.
func (c *Cluster) SetCallbacks(onFirstToken, onDone func(*workload.Request)) {
	for _, in := range c.Instances {
		in.onFirstToken = onFirstToken
		in.onDone = onDone
	}
}

// SetSlowdown installs a straggler episode on every instance (the
// fault layer slows a whole replica's LLM side at once).
func (c *Cluster) SetSlowdown(factor float64, until des.Time) {
	for _, in := range c.Instances {
		in.SetSlowdown(factor, until)
	}
}

// Submit dispatches to the least-loaded instance (round-robin among
// ties).
func (c *Cluster) Submit(req *workload.Request) {
	n := len(c.Instances)
	best := c.Instances[c.next%n]
	for i := 1; i < n; i++ {
		in := c.Instances[(c.next+i)%n]
		if in.Load() < best.Load() {
			best = in
		}
	}
	c.next++
	best.Submit(req)
}

// Completed sums finished requests across instances.
func (c *Cluster) Completed() int64 {
	var n int64
	for _, in := range c.Instances {
		n += in.Completed()
	}
	return n
}

// MeasureGenSLO derives the generation-stage TTFT SLO the way the
// paper does (§V-A: "the latency measured at the model's throughput
// limit"): it drives a standalone cluster at the given fraction of its
// measured capacity with Poisson arrivals and returns the P90 TTFT.
// Using the deployment's own measurement rather than the paper's
// absolute milliseconds keeps the SLO meaningful on this substrate.
func MeasureGenSLO(node hw.Node, spec ModelSpec, states []*gpu.State, shape workload.Shape, cfg EngineConfig, loadFraction float64) (time.Duration, error) {
	mu, err := MeasureCapacity(node, spec, states, shape, cfg)
	if err != nil {
		return 0, err
	}
	var sim des.Sim
	cluster, err := NewCluster(&sim, node, spec, states, cfg)
	if err != nil {
		return 0, err
	}
	rate := mu * loadFraction
	const horizon = des.Time(120 * 1e9)
	const warmup = des.Time(20 * 1e9)
	// A tiny deterministic LCG drives exponential gaps; math utilities
	// from internal/rng are avoided here to keep llm's dependencies flat.
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / (1 << 53)
	}
	var reqs []*workload.Request
	id := 0
	var arrive func(at des.Time)
	arrive = func(at des.Time) {
		if at > horizon {
			return
		}
		sim.At(at, func() {
			req := &workload.Request{ID: id, Shape: shape, ArrivalAt: sim.Now()}
			id++
			reqs = append(reqs, req)
			cluster.Submit(req)
			u := next()
			if u <= 0 {
				u = 1e-12
			}
			gap := des.Time(-1e9 * math.Log(u) / rate)
			arrive(sim.Now() + gap)
		})
	}
	arrive(des.Time(1e9))
	sim.RunUntil(horizon + des.Time(30*1e9))
	var ttfts []float64
	for _, r := range reqs {
		if r.ArrivalAt >= warmup && r.FirstToken > 0 {
			ttfts = append(ttfts, float64(r.TTFT()))
		}
	}
	if len(ttfts) == 0 {
		return 0, fmt.Errorf("llm: gen-SLO measurement produced no samples")
	}
	sort.Float64s(ttfts)
	p90 := ttfts[int(0.90*float64(len(ttfts)-1))]
	return time.Duration(p90), nil
}

// MeasureCapacity saturates a standalone cluster (no retrieval) with
// back-to-back requests and returns its steady-state throughput in
// requests/second — the paper's "bare LLM throughput" profiling input
// and the vertical dashed capacity lines of Fig. 11.
func MeasureCapacity(node hw.Node, spec ModelSpec, states []*gpu.State, shape workload.Shape, cfg EngineConfig) (float64, error) {
	var sim des.Sim
	cluster, err := NewCluster(&sim, node, spec, states, cfg)
	if err != nil {
		return 0, err
	}
	// Keep every instance saturated: top up queues whenever they drain.
	// The window must be long relative to the KV fill ramp (large KV
	// pools take tens of virtual seconds to reach steady state).
	const horizon = des.Time(240 * 1e9) // virtual seconds
	const warmup = des.Time(90 * 1e9)
	id := 0
	feed := func() {
		for _, in := range cluster.Instances {
			for in.Load() < cfg.MaxSeqs*2 {
				req := &workload.Request{ID: id, Shape: shape, ArrivalAt: sim.Now()}
				id++
				in.Submit(req)
			}
		}
	}
	var tick func()
	tick = func() {
		feed()
		if sim.Now() < horizon {
			sim.After(200*time.Millisecond, tick)
		}
	}
	sim.At(0, tick)
	var atWarmup int64
	sim.At(warmup, func() { atWarmup = cluster.Completed() })
	sim.RunUntil(horizon)
	done := cluster.Completed() - atWarmup
	return float64(done) / (float64(horizon-warmup) / 1e9), nil
}
