// Package vecmath implements the dense float32 vector primitives used by
// the k-means trainer, product quantizer, and IVF index: squared-L2 and
// inner-product distances, argmin scans, and top-k selection.
//
// Everything operates on flat []float32 slices; matrices are row-major
// with an explicit dimension, matching how the index stores vectors.
//
// The query-time kernels are allocation-free: TopK is a hand-rolled
// bounded max-heap (no container/heap interface{} boxing) that can be
// Reset and drained into a caller-owned slice, and the argmin scans come
// in a norm-decomposed variant (d = |x|^2 - 2<x,c> + |c|^2 with
// precomputed row norms) that turns the subtract-square inner loop into
// a plain dot product.
package vecmath

// SquaredL2 returns the squared Euclidean distance between a and b.
// The slices must have equal length. Pinning b's length to a's lets the
// compiler drop the bounds check in the loop; the 4-way unroll keeps a
// single sequential accumulator, so rounding is identical to the
// one-term-per-iteration fold.
func SquaredL2(a, b []float32) float32 {
	b = b[:len(a)]
	var sum float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		sum += d0 * d0
		d1 := a[i+1] - b[i+1]
		sum += d1 * d1
		d2 := a[i+2] - b[i+2]
		sum += d2 * d2
		d3 := a[i+3] - b[i+3]
		sum += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Dot returns the inner product of a and b. The loop is 4-way unrolled
// with a single sequential accumulator: identical rounding to the
// one-term-per-iteration fold, just less loop overhead.
func Dot(a, b []float32) float32 {
	b = b[:len(a)]
	var sum float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		sum += a[i] * b[i]
		sum += a[i+1] * b[i+1]
		sum += a[i+2] * b[i+2]
		sum += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		sum += a[i] * b[i]
	}
	return sum
}

// Norm2 returns the squared L2 norm of v.
func Norm2(v []float32) float32 {
	return Dot(v, v)
}

// Add accumulates src into dst element-wise.
func Add(dst, src []float32) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies every element of v by s.
func Scale(v []float32, s float32) {
	for i := range v {
		v[i] *= s
	}
}

// RowNorms fills dst with the squared L2 norm of each row of the
// row-major matrix rows and returns it. A nil dst allocates; otherwise
// len(dst) must equal the row count so steady-state callers can reuse
// one buffer across invocations.
func RowNorms(rows []float32, dim int, dst []float32) []float32 {
	n := len(rows) / dim
	if dst == nil {
		dst = make([]float32, n)
	}
	for i := 0; i < n; i++ {
		dst[i] = Norm2(rows[i*dim : (i+1)*dim])
	}
	return dst
}

// ArgminL2 returns the row index in the row-major matrix rows (each of
// length dim) closest to q in squared L2, together with that distance.
// It panics if rows is empty or not a multiple of dim. This is the
// exact (subtract-square) reference scan; hot paths with reusable norm
// tables use ArgminNormScore instead.
func ArgminL2(q []float32, rows []float32, dim int) (int, float32) {
	if len(rows) == 0 || len(rows)%dim != 0 {
		panic("vecmath: ArgminL2 on empty or ragged matrix")
	}
	best := -1
	bestD := float32(0)
	for i := 0; i*dim < len(rows); i++ {
		d := SquaredL2(q, rows[i*dim:(i+1)*dim])
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// ArgminNormScore returns the row index minimizing the norm-decomposed
// L2 score |c|^2 - 2<q,c> over the row-major matrix, together with that
// score. The query's own norm is a rank-invariant constant and is
// omitted; the true squared distance of the winner is qnorm + score
// (clamped at zero against rounding). norms must hold RowNorms(rows).
// It panics if rows is empty or not a multiple of dim.
func ArgminNormScore(q, rows, norms []float32, dim int) (int, float32) {
	if len(rows) == 0 || len(rows)%dim != 0 {
		panic("vecmath: ArgminNormScore on empty or ragged matrix")
	}
	best := -1
	bestS := float32(0)
	for i := 0; i*dim < len(rows); i++ {
		s := norms[i] - 2*Dot(q, rows[i*dim:(i+1)*dim])
		if best < 0 || s < bestS {
			best, bestS = i, s
		}
	}
	return best, bestS
}

// Neighbor is one search result: an item index and its distance to the
// query. Smaller distance means more similar under L2.
type Neighbor struct {
	Index int
	Dist  float32
}

// TopK maintains the k smallest-distance neighbors seen so far using a
// bounded max-heap. The heap is hand-rolled over []Neighbor — no
// container/heap interface{} boxing — so pushes never allocate once the
// backing array reaches capacity k. The zero value is not usable;
// construct with NewTopK or call Reset.
//
// The sift rules replicate container/heap's exactly (right child
// preferred only when strictly greater, sift stops on equality), so
// result ordering — including ties — is bit-identical to the previous
// container/heap implementation.
type TopK struct {
	k int
	h []Neighbor
}

// NewTopK returns a collector for the k nearest neighbors.
func NewTopK(k int) *TopK {
	t := &TopK{}
	t.Reset(k)
	return t
}

// Reset empties the collector and re-arms it for k neighbors, keeping
// the backing array so steady-state reuse performs no allocations.
func (t *TopK) Reset(k int) {
	if k <= 0 {
		panic("vecmath: TopK with non-positive k")
	}
	t.k = k
	if cap(t.h) < k {
		t.h = make([]Neighbor, 0, k)
	} else {
		t.h = t.h[:0]
	}
}

// K returns the collector's capacity k.
func (t *TopK) K() int { return t.k }

// Push offers a candidate. It is kept only if it beats the current k-th
// best (or the collector is not yet full).
func (t *TopK) Push(index int, dist float32) {
	if len(t.h) < t.k {
		t.h = append(t.h, Neighbor{Index: index, Dist: dist})
		t.up(len(t.h) - 1)
		return
	}
	if dist < t.h[0].Dist {
		t.h[0] = Neighbor{Index: index, Dist: dist}
		t.down(0, len(t.h))
	}
}

func (t *TopK) up(j int) {
	h := t.h
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].Dist > h[i].Dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (t *TopK) down(i0, n int) {
	h := t.h
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].Dist > h[j1].Dist {
			j = j2
		}
		if !(h[j].Dist > h[i].Dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// Worst returns the current k-th best distance, or +Inf semantics via
// ok=false when fewer than k candidates have been pushed. Scan loops
// use it as the early-abandon bound.
func (t *TopK) Worst() (float32, bool) {
	if len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].Dist, true
}

// Len reports how many neighbors are currently held (≤ k).
func (t *TopK) Len() int { return len(t.h) }

// AppendSorted drains the collector, appending its neighbors to dst in
// ascending distance order, and returns the extended slice. With a dst
// of sufficient capacity the drain performs no allocations; the
// collector is empty afterwards (the backing array is retained for the
// next Reset/Push cycle).
func (t *TopK) AppendSorted(dst []Neighbor) []Neighbor {
	// In-place heapsort: repeatedly swap the max to the end and re-sift,
	// which performs the identical swap sequence to container/heap.Pop
	// drains and leaves h ascending.
	h := t.h
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		t.down(0, end)
	}
	dst = append(dst, h...)
	t.h = h[:0]
	return dst
}

// Sorted drains the collector and returns neighbors in ascending
// distance order. The collector is empty afterwards.
func (t *TopK) Sorted() []Neighbor {
	return t.AppendSorted(make([]Neighbor, 0, len(t.h)))
}

// BruteForceTopK scans the whole row-major matrix and returns the k
// nearest rows to q in ascending distance order. It is the ground truth
// used to validate the approximate index in tests and to compute
// recall, so it keeps the exact subtract-square distance; repeated
// callers amortize the scan with BruteForcer.
func BruteForceTopK(q []float32, rows []float32, dim, k int) []Neighbor {
	t := NewTopK(k)
	for i := 0; i*dim < len(rows); i++ {
		t.Push(i, SquaredL2(q, rows[i*dim:(i+1)*dim]))
	}
	return t.Sorted()
}

// BruteForcer answers exact top-k queries over a fixed matrix using the
// norm decomposition: row norms are computed once at construction, so
// each query costs one dot product per row instead of a subtract-square
// scan. Not safe for concurrent use; create one per worker.
type BruteForcer struct {
	rows  []float32
	norms []float32
	dim   int
	top   TopK
}

// NewBruteForcer precomputes row norms for the row-major matrix.
func NewBruteForcer(rows []float32, dim int) *BruteForcer {
	return &BruteForcer{rows: rows, norms: RowNorms(rows, dim, nil), dim: dim}
}

// Clone returns a BruteForcer sharing this one's (immutable) matrix and
// precomputed norms but with its own query scratch — the way to hand
// each worker of a parallel loop its own forcer without recomputing
// norms.
func (b *BruteForcer) Clone() *BruteForcer {
	return &BruteForcer{rows: b.rows, norms: b.norms, dim: b.dim}
}

// ScanMaskedInto pushes every live row into an external collector
// under ids[i], skipping rows whose positional bit is set in dead
// (bit i of dead[i/64]; an empty bitmap masks nothing). This is the
// append-buffer scan of a live cluster: distances are reconstructed as
// the true squared L2 (qnorm + norm score, clamped at zero), so they
// merge into the same TopK as the PQ scan's approximate squared
// distances. The scan allocates nothing.
func (b *BruteForcer) ScanMaskedInto(top *TopK, q []float32, ids []int32, dead []uint64) {
	qn := Norm2(q)
	dim := b.dim
	masked := len(dead) > 0
	for i := 0; i*dim < len(b.rows); i++ {
		if masked && dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		d := qn + b.norms[i] - 2*Dot(q, b.rows[i*dim:(i+1)*dim])
		if d < 0 {
			d = 0
		}
		top.Push(int(ids[i]), d)
	}
}

// AppendTopK appends the k nearest rows to q (ascending distance) to
// dst and returns it. Neighbor distances are reconstructed as
// qnorm + score, clamped at zero; with a dst of sufficient capacity the
// query performs no allocations.
func (b *BruteForcer) AppendTopK(dst []Neighbor, q []float32, k int) []Neighbor {
	b.top.Reset(k)
	dim := b.dim
	for i := 0; i*dim < len(b.rows); i++ {
		b.top.Push(i, b.norms[i]-2*Dot(q, b.rows[i*dim:(i+1)*dim]))
	}
	base := len(dst)
	dst = b.top.AppendSorted(dst)
	qn := Norm2(q)
	for i := base; i < len(dst); i++ {
		d := qn + dst[i].Dist
		if d < 0 {
			d = 0
		}
		dst[i].Dist = d
	}
	return dst
}
