package workload

import (
	"fmt"
	"math"
	"time"
)

// Schedule maps virtual time to an instantaneous arrival rate in
// requests per second — the non-stationary generalization of the
// constant-rate Poisson source. Implementations must be pure functions
// of time so runs stay deterministic.
type Schedule interface {
	// RateAt returns the arrival rate at virtual time t (>= 0).
	RateAt(t time.Duration) float64
	// MaxRate returns a finite upper bound on RateAt over the whole run;
	// the generator thins candidate arrivals drawn at this bound.
	MaxRate() float64
}

// ConstantSchedule is a stationary rate — Schedule's identity element,
// useful for composing comparisons where one arm drifts and one does
// not.
type ConstantSchedule struct{ Rate float64 }

// Constant wraps a fixed rate as a Schedule.
func Constant(rate float64) ConstantSchedule { return ConstantSchedule{Rate: rate} }

// RateAt implements Schedule.
func (s ConstantSchedule) RateAt(time.Duration) float64 { return s.Rate }

// MaxRate implements Schedule.
func (s ConstantSchedule) MaxRate() float64 { return s.Rate }

// RampSchedule interpolates linearly from From to To over the first
// Over of the run, then holds at To — the gradual traffic growth that
// pushes a plan sized for yesterday's load past its operating point.
type RampSchedule struct {
	From, To float64
	Over     time.Duration
}

// Ramp builds a linear ramp schedule.
func Ramp(from, to float64, over time.Duration) RampSchedule {
	return RampSchedule{From: from, To: to, Over: over}
}

// RateAt implements Schedule.
func (s RampSchedule) RateAt(t time.Duration) float64 {
	if s.Over <= 0 || t >= s.Over {
		return s.To
	}
	if t < 0 {
		t = 0
	}
	frac := float64(t) / float64(s.Over)
	return s.From + (s.To-s.From)*frac
}

// MaxRate implements Schedule.
func (s RampSchedule) MaxRate() float64 { return math.Max(s.From, s.To) }

// BurstSchedule is a periodic square wave: Base rate with bursts of
// Peak lasting BurstLen at the start of every Period — flash-crowd
// traffic.
type BurstSchedule struct {
	Base, Peak float64
	Period     time.Duration
	BurstLen   time.Duration
}

// Bursts builds a periodic burst schedule.
func Bursts(base, peak float64, period, burstLen time.Duration) BurstSchedule {
	return BurstSchedule{Base: base, Peak: peak, Period: period, BurstLen: burstLen}
}

// RateAt implements Schedule.
func (s BurstSchedule) RateAt(t time.Duration) float64 {
	if s.Period <= 0 {
		return s.Base
	}
	if phase := t % s.Period; phase < s.BurstLen {
		return s.Peak
	}
	return s.Base
}

// MaxRate implements Schedule.
func (s BurstSchedule) MaxRate() float64 { return math.Max(s.Base, s.Peak) }

// DiurnalSchedule is a sinusoid around Mean with the given Amplitude
// and Period — the day/night cycle compressed into virtual time.
type DiurnalSchedule struct {
	Mean, Amplitude float64
	Period          time.Duration
}

// Diurnal builds a sinusoidal schedule. The rate starts at Mean,
// peaks at Mean+Amplitude a quarter period in, and bottoms out at
// Mean-Amplitude three quarters in.
func Diurnal(mean, amplitude float64, period time.Duration) DiurnalSchedule {
	return DiurnalSchedule{Mean: mean, Amplitude: amplitude, Period: period}
}

// RateAt implements Schedule.
func (s DiurnalSchedule) RateAt(t time.Duration) float64 {
	if s.Period <= 0 {
		return s.Mean
	}
	r := s.Mean + s.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(s.Period))
	if r < 0 {
		return 0
	}
	return r
}

// MaxRate implements Schedule.
func (s DiurnalSchedule) MaxRate() float64 { return s.Mean + math.Abs(s.Amplitude) }

// ValidateSchedule rejects schedules the thinning generator cannot
// drive: the bound must be positive and finite, and no rate may be
// negative at time zero (spot check; implementations are trusted to be
// non-negative throughout).
func ValidateSchedule(s Schedule) error {
	if s == nil {
		return fmt.Errorf("workload: nil schedule")
	}
	max := s.MaxRate()
	if !(max > 0) || math.IsInf(max, 0) || math.IsNaN(max) {
		return fmt.Errorf("workload: schedule max rate %v must be positive and finite", max)
	}
	if r := s.RateAt(0); r < 0 || r > max {
		return fmt.Errorf("workload: schedule rate at t=0 (%v) outside [0, max=%v]", r, max)
	}
	return nil
}
