package serve

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/workload"
)

// exchangeRun drives an Exchange with a synthetic workload: arrivals
// every 5 ms on the front, a replica "pipeline" that services each
// request in (20 + 7·(id mod 5)) ms, and the completion notice wired
// as the terminal sink. It returns the per-replica admission logs and
// submitted counts.
func exchangeRun(t *testing.T, policy Policy, replicas, workers, total int) ([][]int, []int) {
	t.Helper()
	pool := &workload.Pool{}
	x, err := NewExchange(policy, replicas, time.Millisecond, time.Millisecond, pool)
	if err != nil {
		t.Fatal(err)
	}
	logs := make([][]int, replicas)
	for i := 0; i < replicas; i++ {
		i := i
		sim := x.ReplicaSim(i)
		notice := x.NoticeSink(i)
		x.BindReplica(i, func(req *workload.Request) {
			logs[i] = append(logs[i], req.ID)
			svc := time.Duration(20+7*(req.ID%5)) * time.Millisecond
			sim.AfterArg(svc, func(a any) {
				r := a.(*workload.Request)
				r.Done = sim.Now()
				notice(r)
			}, req)
		})
	}
	front := x.FrontSim()
	n := 0
	var arrive func()
	arrive = func() {
		req := pool.Get()
		req.ArrivalAt = front.Now()
		x.Submit(req)
		n++
		if n < total {
			front.After(5*time.Millisecond, arrive)
		}
	}
	front.At(0, arrive)
	x.Run(des.Time(time.Hour), workers)
	if x.Arrivals() != total {
		t.Fatalf("%d arrivals, want %d", x.Arrivals(), total)
	}
	subs := make([]int, replicas)
	for i := range subs {
		subs[i] = x.Submitted(i)
	}
	return logs, subs
}

// TestExchangeDeterministicAcrossWorkers pins that the exchange's
// routed schedule is identical for any worker count, for both
// policies.
func TestExchangeDeterministicAcrossWorkers(t *testing.T) {
	for _, policy := range Policies() {
		refLogs, refSubs := exchangeRun(t, policy, 4, 1, 400)
		for _, workers := range []int{2, 3, 8} {
			logs, subs := exchangeRun(t, policy, 4, workers, 400)
			if !reflect.DeepEqual(logs, refLogs) || !reflect.DeepEqual(subs, refSubs) {
				t.Fatalf("%s workers=%d: routed schedule diverged from sequential", policy, workers)
			}
		}
	}
}

// TestExchangeRoutingInvariants checks the policies do what the
// single-timeline Router does: round-robin splits exactly evenly, and
// least-loaded keeps every replica busy within a fair share.
func TestExchangeRoutingInvariants(t *testing.T) {
	_, subs := exchangeRun(t, RoundRobin, 4, 2, 400)
	for i, s := range subs {
		if s != 100 {
			t.Fatalf("round-robin replica %d got %d, want 100", i, s)
		}
	}
	_, subs = exchangeRun(t, LeastLoaded, 4, 2, 400)
	for i, s := range subs {
		if s < 60 || s > 140 {
			t.Fatalf("least-loaded replica %d share %d of 400 outside [60,140]", i, s)
		}
	}
}

// TestExchangeRestampAndRecycle checks the global arrival restamp (IDs
// are the front arrival order, densely 0..N-1 across replicas) and
// that completion notices return requests to the pool, keeping the
// allocated population at the in-flight peak instead of the request
// count.
func TestExchangeRestampAndRecycle(t *testing.T) {
	pool := &workload.Pool{}
	x, err := NewExchange(LeastLoaded, 2, time.Millisecond, time.Millisecond, pool)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		i := i
		sim := x.ReplicaSim(i)
		notice := x.NoticeSink(i)
		x.BindReplica(i, func(req *workload.Request) {
			if seen[req.ID] {
				t.Errorf("duplicate restamped ID %d", req.ID)
			}
			seen[req.ID] = true
			sim.AfterArg(10*time.Millisecond, func(a any) { notice(a.(*workload.Request)) }, req)
		})
	}
	front := x.FrontSim()
	n := 0
	var arrive func()
	arrive = func() {
		req := pool.Get()
		req.ID = 999999 // generator-local ID; Submit must restamp
		x.Submit(req)
		n++
		if n < 300 {
			front.After(5*time.Millisecond, arrive)
		}
	}
	front.At(0, arrive)
	x.Run(des.Time(time.Hour), 2)
	for id := 0; id < 300; id++ {
		if !seen[id] {
			t.Fatalf("restamped ID %d never delivered", id)
		}
	}
	if got := pool.Allocated(); got >= 300/4 {
		t.Fatalf("pool allocated %d requests; notices are not recycling", got)
	}
	for i := 0; i < 2; i++ {
		if x.Inflight(i) != 0 {
			t.Fatalf("replica %d inflight %d after drain", i, x.Inflight(i))
		}
	}
}

// TestExchangeDrainArrivals checks requests still in network transit
// at the deadline come back out for the record merge.
func TestExchangeDrainArrivals(t *testing.T) {
	x, err := NewExchange(RoundRobin, 2, time.Millisecond, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		x.BindReplica(i, func(*workload.Request) {})
	}
	front := x.FrontSim()
	reqs := []*workload.Request{{}, {}, {}}
	front.At(0, func() { x.Submit(reqs[0]) })
	// These two are routed within the last netDelay before the deadline,
	// so their transit outlives the clock.
	front.At(des.Time(9500*time.Microsecond), func() { x.Submit(reqs[1]); x.Submit(reqs[2]) })
	x.Run(des.Time(10*time.Millisecond), 1)
	var stranded []int
	x.DrainArrivals(func(r *workload.Request) { stranded = append(stranded, r.ID) })
	if len(stranded) != 2 {
		t.Fatalf("drained %v, want the 2 in-transit requests", stranded)
	}
}

// TestExchangeDrainArrivalsEarlyTermination terminates a busy sharded
// run mid-storm — arrivals still flowing, replicas mid-service,
// notices in feedback transit — and checks the accounting invariant
// the record merge depends on: every routed request is either delivered
// to exactly one replica head or comes back out of DrainArrivals,
// never both, never neither. The stranded set must also be identical
// for any worker count, like every other observable of the exchange.
func TestExchangeDrainArrivalsEarlyTermination(t *testing.T) {
	const deadline = des.Time(50 * time.Millisecond)
	run := func(workers int) (delivered map[int]int, stranded []int, arrivals int) {
		pool := &workload.Pool{}
		x, err := NewExchange(RoundRobin, 3, 2*time.Millisecond, 2*time.Millisecond, pool)
		if err != nil {
			t.Fatal(err)
		}
		delivered = map[int]int{}
		// Replica shards run on separate worker goroutines; the shared
		// delivered map needs a lock (test bookkeeping only — the
		// exchange itself shares nothing across shards).
		var mu sync.Mutex
		for i := 0; i < 3; i++ {
			i := i
			sim := x.ReplicaSim(i)
			notice := x.NoticeSink(i)
			x.BindReplica(i, func(req *workload.Request) {
				mu.Lock()
				if prev, dup := delivered[req.ID]; dup {
					t.Errorf("request %d delivered to replica %d and %d", req.ID, prev, i)
				}
				delivered[req.ID] = i
				mu.Unlock()
				sim.AfterArg(10*time.Millisecond, func(a any) { notice(a.(*workload.Request)) }, req)
			})
		}
		front := x.FrontSim()
		n := 0
		var arrive func()
		arrive = func() {
			req := pool.Get()
			x.Submit(req)
			n++
			if n < 100 {
				front.After(time.Millisecond, arrive)
			}
		}
		front.At(0, arrive)
		x.Run(deadline, workers)
		x.DrainArrivals(func(r *workload.Request) { stranded = append(stranded, r.ID) })
		return delivered, stranded, x.Arrivals()
	}

	delivered, stranded, arrivals := run(1)
	if len(stranded) == 0 {
		t.Fatal("no requests in transit at the deadline; the cut is not mid-storm")
	}
	if arrivals >= 100 {
		t.Fatalf("all %d arrivals routed; the cut is not early", arrivals)
	}
	seen := map[int]bool{}
	for _, id := range stranded {
		if _, dup := delivered[id]; dup {
			t.Errorf("request %d both delivered and drained", id)
		}
		if seen[id] {
			t.Errorf("request %d drained twice", id)
		}
		seen[id] = true
	}
	if len(delivered)+len(stranded) != arrivals {
		t.Fatalf("delivered %d + drained %d != routed %d: requests lost at termination",
			len(delivered), len(stranded), arrivals)
	}
	for _, workers := range []int{2, 4} {
		_, s, a := run(workers)
		if a != arrivals || !reflect.DeepEqual(s, stranded) {
			t.Fatalf("workers=%d: stranded set %v (of %d) diverged from sequential %v (of %d)",
				workers, s, a, stranded, arrivals)
		}
	}
}

func TestExchangeValidation(t *testing.T) {
	if _, err := NewExchange(LeastLoaded, 0, time.Millisecond, time.Millisecond, nil); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := NewExchange(LeastLoaded, 2, 0, time.Millisecond, nil); err == nil {
		t.Error("zero net delay accepted")
	}
	if _, err := NewExchange(LeastLoaded, 2, time.Millisecond, 0, nil); err == nil {
		t.Error("zero feedback delay accepted")
	}
	if _, err := NewExchange("bogus", 2, time.Millisecond, time.Millisecond, nil); err == nil {
		t.Error("unknown policy accepted")
	}
}
