package metrics

import (
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/workload"
)

// Window is one bucket of an attainment-over-time series: the requests
// that *arrived* inside [Start, Start+width), their SLO attainment, and
// the mean served hit rate the retrieval tier recorded for them. It is
// the unit of the drift-study artifact — attainment dips when the plan
// goes stale and recovers after the adaptive swap.
type Window struct {
	Start       time.Duration
	N           int
	Unserved    int
	Attainment  float64
	MeanHitRate float64 // over served requests; 0 when none served

	// Freshness columns, filled by AnnotateFreshness on live-ingest
	// runs (zero on frozen runs): inserts arriving in the window and
	// the fraction of them searchable within the freshness SLO.
	Inserts         int
	FreshAttainment float64

	// Unexported accumulators, folded into the exported fields when the
	// bucketing pass finalizes; keeping them inline is what lets
	// TimelineInto aggregate without per-window side slices.
	ok, served, freshOK int
	hitSum              float64
}

// Timeline buckets requests by arrival time into fixed windows and
// computes per-window SLO attainment. Requests still stuck in the
// system count as violations, exactly as in Summarize. Windows run from
// time zero through the last arrival; empty windows are kept so the
// series has no gaps.
func Timeline(reqs []workload.Request, slo time.Duration, width time.Duration) []Window {
	return TimelineInto(nil, reqs, slo, width)
}

// TimelineInto is Timeline writing into dst's backing array when it is
// large enough — the allocation-free path for callers that rebuild the
// series repeatedly (dst may be nil or a previous result).
func TimelineInto(dst []Window, reqs []workload.Request, slo time.Duration, width time.Duration) []Window {
	if width <= 0 || len(reqs) == 0 {
		return nil
	}
	var last des.Time
	for i := range reqs {
		if reqs[i].ArrivalAt > last {
			last = reqs[i].ArrivalAt
		}
	}
	n := int(last/des.Time(width)) + 1
	if cap(dst) < n {
		dst = make([]Window, n)
	}
	wins := dst[:n]
	for i := range wins {
		wins[i] = Window{Start: time.Duration(i) * width}
	}
	for i := range reqs {
		r := &reqs[i]
		b := int(r.ArrivalAt / des.Time(width))
		wins[b].N++
		if r.FirstToken == 0 {
			wins[b].Unserved++
			continue
		}
		wins[b].served++
		wins[b].hitSum += r.HitRate
		if time.Duration(r.TTFT()) <= slo {
			wins[b].ok++
		}
	}
	for i := range wins {
		if wins[i].N > 0 {
			wins[i].Attainment = float64(wins[i].ok) / float64(wins[i].N)
		}
		if wins[i].served > 0 {
			wins[i].MeanHitRate = wins[i].hitSum / float64(wins[i].served)
		}
	}
	return wins
}
