module vectorliterag

go 1.24
