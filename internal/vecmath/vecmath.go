// Package vecmath implements the dense float32 vector primitives used by
// the k-means trainer, product quantizer, and IVF index: squared-L2 and
// inner-product distances, argmin scans, and top-k selection.
//
// Everything operates on flat []float32 slices; matrices are row-major
// with an explicit dimension, matching how the index stores vectors.
package vecmath

import "container/heap"

// SquaredL2 returns the squared Euclidean distance between a and b.
// The slices must have equal length.
func SquaredL2(a, b []float32) float32 {
	var sum float32
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	var sum float32
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Norm2 returns the squared L2 norm of v.
func Norm2(v []float32) float32 {
	return Dot(v, v)
}

// Add accumulates src into dst element-wise.
func Add(dst, src []float32) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies every element of v by s.
func Scale(v []float32, s float32) {
	for i := range v {
		v[i] *= s
	}
}

// ArgminL2 returns the row index in the row-major matrix rows (each of
// length dim) closest to q in squared L2, together with that distance.
// It panics if rows is empty or not a multiple of dim.
func ArgminL2(q []float32, rows []float32, dim int) (int, float32) {
	if len(rows) == 0 || len(rows)%dim != 0 {
		panic("vecmath: ArgminL2 on empty or ragged matrix")
	}
	best := -1
	bestD := float32(0)
	for i := 0; i*dim < len(rows); i++ {
		d := SquaredL2(q, rows[i*dim:(i+1)*dim])
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// Neighbor is one search result: an item index and its distance to the
// query. Smaller distance means more similar under L2.
type Neighbor struct {
	Index int
	Dist  float32
}

// TopK maintains the k smallest-distance neighbors seen so far using a
// bounded max-heap. The zero value is not usable; construct with NewTopK.
type TopK struct {
	k int
	h nbrMaxHeap
}

// NewTopK returns a collector for the k nearest neighbors.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("vecmath: NewTopK with non-positive k")
	}
	return &TopK{k: k, h: make(nbrMaxHeap, 0, k)}
}

// Push offers a candidate. It is kept only if it beats the current k-th
// best (or the collector is not yet full).
func (t *TopK) Push(index int, dist float32) {
	if len(t.h) < t.k {
		heap.Push(&t.h, Neighbor{Index: index, Dist: dist})
		return
	}
	if dist < t.h[0].Dist {
		t.h[0] = Neighbor{Index: index, Dist: dist}
		heap.Fix(&t.h, 0)
	}
}

// Worst returns the current k-th best distance, or +Inf semantics via
// ok=false when fewer than k candidates have been pushed.
func (t *TopK) Worst() (float32, bool) {
	if len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].Dist, true
}

// Len reports how many neighbors are currently held (≤ k).
func (t *TopK) Len() int { return len(t.h) }

// Sorted drains the collector and returns neighbors in ascending
// distance order. The collector is empty afterwards.
func (t *TopK) Sorted() []Neighbor {
	out := make([]Neighbor, len(t.h))
	for i := len(t.h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&t.h).(Neighbor)
	}
	return out
}

type nbrMaxHeap []Neighbor

func (h nbrMaxHeap) Len() int            { return len(h) }
func (h nbrMaxHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h nbrMaxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nbrMaxHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *nbrMaxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BruteForceTopK scans the whole row-major matrix and returns the k
// nearest rows to q in ascending distance order. It is the ground truth
// used to validate the approximate index in tests and to compute recall.
func BruteForceTopK(q []float32, rows []float32, dim, k int) []Neighbor {
	t := NewTopK(k)
	for i := 0; i*dim < len(rows); i++ {
		t.Push(i, SquaredL2(q, rows[i*dim:(i+1)*dim]))
	}
	return t.Sorted()
}
