package rag

import (
	"runtime"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/des"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/llm"
	"vectorliterag/internal/metrics"
	"vectorliterag/internal/retrieval"
	"vectorliterag/internal/rng"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/workload"
)

// DefaultNetDelay is the modeled front-end↔replica network transit a
// run gets when it asks for parallelism (Workers > 1) without choosing
// a NetDelay explicitly. One millisecond is a realistic same-datacenter
// RTT half and, as the conservative lookahead, wide enough that shards
// execute thousands of events per synchronization window.
const DefaultNetDelay = time.Millisecond

// shardWorkers resolves the Workers option: zero or negative means one
// worker per core.
func shardWorkers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// mergeShardRecords assembles the global per-request record set of a
// sharded run in front arrival order. Every routed request carries its
// global arrival index as its ID (the Exchange restamps at Submit), so
// per-replica collector records scatter straight into one slice;
// requests still in network transit when the clock stopped never
// reached a collector and are snapshotted from the wire — admitted but
// unserved, exactly how the single-timeline collector reported a
// request stuck between router and replica at the deadline.
func mergeShardRecords(x *serve.Exchange, repColls []*serve.Collector) []workload.Request {
	records := make([]workload.Request, x.Arrivals())
	for _, rc := range repColls {
		for _, rec := range rc.Requests() {
			if rec.ID >= 0 && rec.ID < len(records) {
				records[rec.ID] = rec
			}
		}
	}
	x.DrainArrivals(func(req *workload.Request) {
		if req.ID >= 0 && req.ID < len(records) {
			records[req.ID] = *req
		}
	})
	return records
}

// runClusterSharded is RunCluster's parallel engine: the front end
// (arrivals, drift, routing) and every replica pipeline run on separate
// shard timelines coupled only by request and completion-notice links
// of NetDelay, executed by the conservative shard group. The merged
// schedule is a pure function of the options — bit-identical for any
// Workers value — but it is a *different* (more physical) model than
// the NetDelay==0 single-timeline path: requests spend one NetDelay on
// the wire each way, and the least-loaded policy reads gauges that are
// one notice delay stale.
func runClusterSharded(opts Options, replicas int, policy serve.Policy) (*ClusterResult, error) {
	sloTotal, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	prof, err := profileFor(opts)
	if err != nil {
		return nil, err
	}
	cpuModel := costmodel.NewSearchModel(opts.Node.CPU, opts.W.Spec)
	d, err := decide(opts, prof, cpuModel)
	if err != nil {
		return nil, err
	}

	pool := &workload.Pool{}
	x, err := serve.NewExchange(policy, replicas, opts.NetDelay, opts.NetDelay, pool)
	if err != nil {
		return nil, err
	}
	repColls := make([]*serve.Collector, replicas)
	pipes := make([]*serve.Pipeline, replicas)
	for i := 0; i < replicas; i++ {
		sim := x.ReplicaSim(i)
		repColl := serve.NewCollector()
		retr, gen := stageBuilders(sim, opts, d, cpuModel, nil)
		// Terminal: snapshot the record on the replica, then ship the
		// request home — the notice must come last because ownership
		// moves back to the front with it.
		pipe, err := serve.Compose(sim,
			serve.Tee(repColl.Done, x.NoticeSink(i)),
			serve.Admit(repColl), retr, gen)
		if err != nil {
			return nil, err
		}
		x.BindReplica(i, pipe.Submit)
		repColls[i] = repColl
		pipes[i] = pipe
	}
	// Drift rotates popularity on the front timeline, where the only
	// reader (arrival sampling) lives; replica shards never touch the
	// rotation, so the trace stays race-free under parallel execution.
	defer installDrift(x.FrontSim(), opts)()
	arr := arrivalsFor(opts)
	arr.SetPool(pool)
	workers := shardWorkers(opts.Workers)
	sec := beginServeSection()
	arr.Start(x.FrontSim(), des.Time(opts.Duration), x.Submit)
	x.Run(des.Time(opts.Duration+opts.Drain), workers)
	wall, allocs, bytes := sec.end()

	records := mergeShardRecords(x, repColls)
	res := &ClusterResult{
		Result: Result{
			Kind: opts.Kind, Rate: opts.Rate, SLOTotal: sloTotal,
			ServeWall: wall, ServeAllocs: allocs, ServeBytes: bytes,
			Rho: d.rho, PlanBytes: d.planBytes, Mu0: d.mu0, Partition: d.partition,
			Requests:  records,
			Generated: x.Arrivals(),
			Summary:   metrics.Summarize(records, sloTotal, des.Time(opts.Warmup)),
		},
		Policy:   policy,
		Workers:  workers,
		NetDelay: opts.NetDelay,
	}
	var batchSum, gainSum float64
	for i, pipe := range pipes {
		rr := ReplicaResult{
			Submitted: x.Submitted(i),
			Summary:   repColls[i].Summarize(sloTotal, des.Time(opts.Warmup)),
			AvgBatch:  pipe.Retrieval().AvgBatch(),
			LLMGPUs:   pipe.Generation().GPUs(opts.Model.TP),
		}
		res.PerReplica = append(res.PerReplica, rr)
		res.LLMGPUs += rr.LLMGPUs
		batchSum += rr.AvgBatch * float64(rr.Submitted)
		if g, ok := pipe.Retrieval().Engine.(retrieval.RecallReporter); ok {
			gainSum += g.RecallGain() * float64(rr.Submitted)
		}
	}
	if res.Generated > 0 {
		res.AvgBatch = batchSum / float64(res.Generated)
		res.RecallGain = gainSum / float64(res.Generated)
	}
	if d.plan != nil && d.plan.Prec != nil {
		res.SQClusters = d.plan.Prec.SQClusters
		res.NVMeClusters = d.plan.Prec.NVMeClusters
	}
	return res, nil
}

// runMultiTenantSharded is RunMultiTenant's replicated engine: R
// identical multi-tenant nodes behind the sharded exchange, each with
// its own GPU states, retrieval engine, LLM cluster, and fair
// scheduler. The joint HBM allocation is made once per *replica* — each
// node carries every tenant's index slice sized for its 1/R share of
// that tenant's traffic — and reported rates stay nominal
// (cluster-wide). Per-tenant arrival streams are seeded by pinned
// stream splitting so the front's multiplexed order is a pure function
// of (Seed, tenant index), independent of worker count.
func runMultiTenantSharded(opts MultiTenantOptions) (*MultiTenantResult, error) {
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if opts.NetDelay == 0 {
		opts.NetDelay = DefaultNetDelay
	}
	slos, err := opts.normalizeMT()
	if err != nil {
		return nil, err
	}
	// Size each node's allocation for its share of the traffic: the
	// allocator sees per-replica rates, every other input unchanged.
	scaled := opts
	scaled.Tenants = append([]TenantConfig(nil), opts.Tenants...)
	for i := range scaled.Tenants {
		scaled.Tenants[i].Rate /= float64(replicas)
	}
	d, err := decideTenants(&scaled)
	if err != nil {
		return nil, err
	}

	pool := &workload.Pool{}
	x, err := serve.NewExchange(opts.Policy, replicas, opts.NetDelay, opts.NetDelay, pool)
	if err != nil {
		return nil, err
	}
	gm := costmodel.GPUScanModel{GPU: opts.Node.GPU}
	slots := make([]retrieval.TenantSlot, len(opts.Tenants))
	for i, tc := range opts.Tenants {
		slots[i] = retrieval.TenantSlot{W: tc.W, Plan: d.plans[i], CPUModel: d.cpuModels[i], Priority: tc.Tier.Priority()}
	}
	repColls := make([]*serve.Collector, replicas)
	scheds := make([]*serve.FairScheduler, replicas)
	rigs := make([]*overloadRig, replicas)
	pipes := make([]*serve.Pipeline, replicas)
	for r := 0; r < replicas; r++ {
		// Each replica node stacks every tenant's shard bytes on its own
		// fresh GPU states, shrinking the KV pool its LLM instances see —
		// the same layout the single-node path builds, instantiated R
		// times.
		states := gpu.NewStates(opts.Node)
		for _, plan := range d.plans {
			for g := range plan.ShardBytes {
				if g < len(states) {
					states[g].ShardBytes += plan.ShardBytes[g]
				}
			}
		}
		sim := x.ReplicaSim(r)
		retr := serve.RetrievalStage(func(forward serve.Sink) (retrieval.Engine, error) {
			return retrieval.NewMultiTenant(retrieval.Config{
				Sim:      sim,
				Forward:  forward,
				MaxBatch: opts.MaxBatch,
				NVMe:     opts.Node.NVMe,
			}, slots, states, gm)
		})
		gen := serve.GenerationStage(func() (*llm.Cluster, error) {
			return llm.NewCluster(sim, opts.Node, opts.Model, states, llm.DefaultEngineConfig())
		})
		var sched *serve.FairScheduler
		if !opts.SharedQueue {
			classes := make([]serve.TenantClass, len(opts.Tenants))
			for i, tc := range opts.Tenants {
				classes[i] = serve.TenantClass{Weight: tc.Tier.Weight(), Priority: tc.Tier.Priority()}
			}
			sched, err = serve.NewFairScheduler(classes, opts.SchedulerInflight)
			if err != nil {
				return nil, err
			}
		}
		repColl := serve.NewCollector()
		// Overload control is per replica: each node's controller sees
		// only its own timeline, so the merged schedule stays a pure
		// function of the options for any worker count. A rejected
		// request freezes its record on this replica's collector and
		// ships home with the completion notice (ownership moves with
		// it, exactly like a served request).
		var rig *overloadRig
		if opts.Overload != nil {
			budgets, bias := opts.overloadBudgets()
			rig, err = rigOverload(sim, opts.Overload, sched, budgets, bias,
				rejectSink(repColl.Abandon, x.NoticeSink(r)))
			if err != nil {
				return nil, err
			}
		}
		builders := []serve.Builder{serve.Admit(repColl)}
		if sched != nil {
			builders = append(builders, serve.Scheduled(sched))
		}
		builders = append(builders, retr, gen)
		terminal := teeObserve(rig, repColl.Done, x.NoticeSink(r))
		pipe, err := serve.Compose(sim, terminal, builders...)
		if err != nil {
			return nil, err
		}
		if sched != nil {
			// Same metering as the single-node path: the slot releases at
			// first token, completion re-installs the terminal sink.
			pipe.Generation().Cluster.SetCallbacks(sched.Release, terminal)
		}
		x.BindReplica(r, pipe.Submit)
		repColls[r] = repColl
		scheds[r] = sched
		rigs[r] = rig
		pipes[r] = pipe
	}

	workers := shardWorkers(opts.Workers)
	front := x.FrontSim()
	sec := beginServeSection()
	for i, tc := range opts.Tenants {
		seed := rng.Stream(opts.Seed+7, uint64(i))
		var arr *serve.Arrivals
		if tc.RateSchedule != nil {
			arr = serve.NewScheduledArrivals(tc.W, tc.RateSchedule, opts.Shape, seed)
		} else {
			arr = serve.NewArrivals(tc.W, tc.Rate, opts.Shape, seed)
		}
		arr.SetTenant(i)
		arr.SetPool(pool)
		arr.Start(front, des.Time(opts.Duration), x.Submit)
	}
	x.Run(des.Time(opts.Duration+opts.Drain), workers)
	wall, allocs, bytes := sec.end()

	records := mergeShardRecords(x, repColls)
	byTenant := make([][]workload.Request, len(opts.Tenants))
	for _, req := range records {
		t := req.Tenant
		if t < 0 || t >= len(byTenant) {
			t = 0
		}
		byTenant[t] = append(byTenant[t], req)
	}
	res := &MultiTenantResult{
		ServeWall: wall, ServeAllocs: allocs, ServeBytes: bytes,
		Mu0:         d.mu0,
		MuLLM:       d.alloc.MuLLM,
		BudgetBytes: d.alloc.BudgetBytes,
		UsedBytes:   d.alloc.UsedBytes,
		SharedQueue: opts.SharedQueue,
		Generated:   x.Arrivals(),
		Requests:    records,
		Replicas:    replicas,
		Workers:     workers,
		NetDelay:    opts.NetDelay,
	}
	var batchSum, gainSum float64
	for r, pipe := range pipes {
		sub := x.Submitted(r)
		res.PerReplicaSubmitted = append(res.PerReplicaSubmitted, sub)
		res.LLMGPUs += pipe.Generation().GPUs(opts.Model.TP)
		batchSum += pipe.Retrieval().AvgBatch() * float64(sub)
		if g, ok := pipe.Retrieval().Engine.(retrieval.RecallReporter); ok {
			gainSum += g.RecallGain() * float64(sub)
		}
	}
	if res.Generated > 0 {
		res.AvgBatch = batchSum / float64(res.Generated)
		res.RecallGain = gainSum / float64(res.Generated)
	}
	atts := make([]float64, len(opts.Tenants))
	var okWeighted float64
	var total int
	for i, tc := range opts.Tenants {
		sum := metrics.Summarize(byTenant[i], slos[i], des.Time(opts.Warmup))
		tr := TenantResult{
			Name: tc.Name, Tier: tc.Tier, Rate: tc.Rate,
			SLOTotal: slos[i], Alloc: d.alloc.Allocations[i], Summary: sum,
		}
		for _, sched := range scheds {
			if sched == nil {
				continue
			}
			if sched.PeakQueue(i) > tr.PeakQueue {
				tr.PeakQueue = sched.PeakQueue(i)
			}
			if opts.Overload != nil {
				tr.Rejected += sched.Rejected(i)
			}
		}
		res.Tenants = append(res.Tenants, tr)
		atts[i] = sum.Attainment
		okWeighted += sum.Attainment * float64(sum.N)
		total += sum.N
	}
	res.Fairness = metrics.JainIndex(atts)
	if total > 0 {
		res.Attainment = okWeighted / float64(total)
	}
	if opts.Overload != nil {
		res.Overload = mergeOverloadReports(opts.Overload, rigs, len(opts.Tenants),
			des.Time(opts.Duration+opts.Drain), opts.Duration+opts.Drain)
	}
	return res, nil
}
