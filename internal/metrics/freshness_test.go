package metrics

import (
	"testing"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/workload"
)

// mut builds an applied insert with the given arrival and TTS.
func mut(arrival, tts time.Duration) workload.Mutation {
	return workload.Mutation{
		Kind:      workload.MutInsert,
		ArrivalAt: des.Time(arrival),
		AppliedAt: des.Time(arrival + tts),
	}
}

func TestSummarizeFreshness(t *testing.T) {
	slo := 100 * time.Millisecond
	muts := []workload.Mutation{
		mut(1*time.Second, 10*time.Millisecond),
		mut(2*time.Second, 50*time.Millisecond),
		mut(3*time.Second, 200*time.Millisecond),                         // violation
		{Kind: workload.MutInsert, ArrivalAt: des.Time(4 * time.Second)}, // pending: violation, no percentile
		{Kind: workload.MutDelete, ArrivalAt: des.Time(5 * time.Second)}, // counted, no searchability
		mut(0, 5*time.Millisecond),                                       // before cutoff: excluded entirely
	}
	f := SummarizeFreshness(muts, slo, des.Time(500*time.Millisecond))
	if f.Inserts != 4 || f.Deletes != 1 || f.Pending != 1 {
		t.Fatalf("counts wrong: %+v", f)
	}
	if f.Attainment != 0.5 {
		t.Fatalf("attainment = %v, want 0.5 (2 of 4 inserts within SLO)", f.Attainment)
	}
	if f.TTS.P50 != 50*time.Millisecond {
		t.Fatalf("TTS p50 = %v, want 50ms", f.TTS.P50)
	}
	if f.TTS.P99 < f.TTS.P50 || f.TTS.Mean <= 0 {
		t.Fatalf("TTS quantiles inconsistent: %+v", f.TTS)
	}
}

func TestSummarizeFreshnessEmpty(t *testing.T) {
	f := SummarizeFreshness(nil, time.Second, 0)
	if f.Inserts != 0 || f.Attainment != 0 || f.TTS.P99 != 0 {
		t.Fatalf("empty log not zero: %+v", f)
	}
	// All-pending: attainment 0, no percentiles.
	f = SummarizeFreshness([]workload.Mutation{
		{Kind: workload.MutInsert, ArrivalAt: 1},
	}, time.Second, 0)
	if f.Inserts != 1 || f.Pending != 1 || f.Attainment != 0 || f.TTS.P50 != 0 {
		t.Fatalf("pending-only log wrong: %+v", f)
	}
}

func TestAnnotateFreshness(t *testing.T) {
	width := 30 * time.Second
	wins := []Window{{Start: 0}, {Start: width}}
	slo := 100 * time.Millisecond
	muts := []workload.Mutation{
		mut(1*time.Second, 10*time.Millisecond),
		mut(2*time.Second, 500*time.Millisecond), // violation in window 0
		mut(40*time.Second, 20*time.Millisecond),
		{Kind: workload.MutInsert, ArrivalAt: des.Time(45 * time.Second)}, // pending: violation
		{Kind: workload.MutDelete, ArrivalAt: des.Time(41 * time.Second)}, // ignored
		mut(100*time.Second, time.Millisecond),                            // past the timeline: dropped
	}
	AnnotateFreshness(wins, muts, slo, width)
	if wins[0].Inserts != 2 || wins[0].FreshAttainment != 0.5 {
		t.Fatalf("window 0 wrong: %+v", wins[0])
	}
	if wins[1].Inserts != 2 || wins[1].FreshAttainment != 0.5 {
		t.Fatalf("window 1 wrong: %+v", wins[1])
	}
	// Degenerate inputs are no-ops.
	AnnotateFreshness(nil, muts, slo, width)
	AnnotateFreshness(wins, muts, slo, 0)
}

func TestGoodput(t *testing.T) {
	slo := time.Second
	reqs := []workload.Request{
		{ArrivalAt: 0, FirstToken: des.Time(500 * time.Millisecond), Done: des.Time(time.Second)},
		{ArrivalAt: 0, FirstToken: des.Time(10 * time.Second), Done: des.Time(11 * time.Second)}, // SLO miss
		{ArrivalAt: des.Time(time.Second)}, // never served
	}
	g := Goodput(reqs, slo, 0, des.Time(2*time.Second))
	if g != 0.5 {
		t.Fatalf("goodput = %v, want 0.5 (1 SLO-met request / 2s)", g)
	}
	if Goodput(reqs, slo, 0, 0) != 0 {
		t.Fatal("zero window must yield zero goodput")
	}
}
