package serve

import (
	"testing"

	"vectorliterag/internal/workload"
)

// goldSilverBronze is the canonical three-tier class set (weights
// 4/2/1, priorities 0/1/2).
func goldSilverBronze() []TenantClass {
	return []TenantClass{{Weight: 4, Priority: 0}, {Weight: 2, Priority: 1}, {Weight: 1, Priority: 2}}
}

// schedFixture drives a scheduler whose downstream sink records every
// dispatched request, releasing them in dispatch order on demand.
type schedFixture struct {
	s        *FairScheduler
	sent     []*workload.Request
	released int
}

func newSched(t *testing.T, classes []TenantClass, maxInflight int) *schedFixture {
	t.Helper()
	s, err := NewFairScheduler(classes, maxInflight)
	if err != nil {
		t.Fatal(err)
	}
	f := &schedFixture{s: s}
	st, err := Scheduled(s)(func(req *workload.Request) { f.sent = append(f.sent, req) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() == "" {
		t.Fatal("scheduler stage has no name")
	}
	return f
}

// release frees the oldest still-held slot.
func (f *schedFixture) release() {
	f.s.Release(f.sent[f.released])
	f.released++
}

// order returns the dispatched tenants in dispatch order.
func (f *schedFixture) order() []int {
	out := make([]int, len(f.sent))
	for i, req := range f.sent {
		out[i] = req.Tenant
	}
	return out
}

func TestFairSchedulerWRRSharesUnderSaturation(t *testing.T) {
	f := newSched(t, goldSilverBronze(), 1)
	// Backlog every tenant in proportion to its weight (three full
	// rounds' worth), then drain one slot at a time.
	id := 0
	for tenant, n := range []int{12, 6, 3} {
		for i := 0; i < n; i++ {
			f.s.Submit(&workload.Request{ID: id, Tenant: tenant})
			id++
		}
	}
	for len(f.sent) < 21 {
		f.release()
	}
	// Each full round serves gold×4, silver×2, bronze×1 in priority
	// order; three rounds drain the backlog.
	want := []int{0, 0, 0, 0, 1, 1, 2}
	for i, tenant := range f.order() {
		if tenant != want[i%7] {
			t.Fatalf("dispatch order %v, want repeating %v", f.order(), want)
		}
	}
	if f.s.Dispatched(0) != 12 || f.s.Dispatched(1) != 6 || f.s.Dispatched(2) != 3 {
		t.Fatalf("shares %d/%d/%d, want 12/6/3", f.s.Dispatched(0), f.s.Dispatched(1), f.s.Dispatched(2))
	}
}

func TestFairSchedulerPriorityPreemptsQueueOrder(t *testing.T) {
	f := newSched(t, goldSilverBronze(), 1)
	// Fill the single slot, then backlog bronze before gold arrives.
	for i := 0; i <= 5; i++ {
		f.s.Submit(&workload.Request{ID: i, Tenant: 2})
	}
	f.s.Submit(&workload.Request{ID: 6, Tenant: 0})
	// The freed slot must go to the late-arriving gold request even
	// though five bronze requests queued first.
	f.release()
	if got := f.order()[1]; got != 0 {
		t.Fatalf("slot went to tenant %d, want gold (0); order %v", got, f.order())
	}
}

func TestFairSchedulerNoStarvationAcrossRounds(t *testing.T) {
	f := newSched(t, goldSilverBronze(), 1)
	// Gold backlog far exceeding its quantum plus one bronze request.
	for i := 0; i < 9; i++ {
		f.s.Submit(&workload.Request{ID: i, Tenant: 0})
	}
	f.s.Submit(&workload.Request{ID: 9, Tenant: 2})
	for len(f.sent) < 10 {
		f.release()
	}
	// Bronze must be served when gold's first-round quantum (4) runs
	// out — silver's quantum is idle, so bronze follows dispatch 4.
	if f.order()[4] != 2 {
		t.Fatalf("bronze starved: order %v", f.order())
	}
}

func TestFairSchedulerInflightBound(t *testing.T) {
	f := newSched(t, goldSilverBronze(), 8)
	// Gold's weight share of 8 slots is floor(8*4/7) = 4.
	if got := f.s.Cap(0); got != 4 {
		t.Fatalf("gold cap %d, want 4", got)
	}
	for i := 0; i < 10; i++ {
		f.s.Submit(&workload.Request{ID: i, Tenant: 0})
	}
	if len(f.sent) != 4 || f.s.Inflight() != 4 || f.s.QueueLen(0) != 6 {
		t.Fatalf("cap ignored: dispatched %d inflight %d queued %d", len(f.sent), f.s.Inflight(), f.s.QueueLen(0))
	}
	f.release()
	if len(f.sent) != 5 || f.s.Inflight() != 4 {
		t.Fatalf("release did not refill: dispatched %d inflight %d", len(f.sent), f.s.Inflight())
	}
	if f.s.PeakQueue(0) < 6 {
		t.Fatalf("peak queue %d, want >= 6", f.s.PeakQueue(0))
	}
}

// TestFairSchedulerPerTenantCapLeavesRoomForOthers: a bursting bronze
// tenant may hold at most its weight share of slots, so a later gold
// arrival finds a free slot immediately instead of a full section.
func TestFairSchedulerPerTenantCapLeavesRoomForOthers(t *testing.T) {
	f := newSched(t, goldSilverBronze(), 7)
	// caps: gold 4, silver 2, bronze 1.
	for i := 0; i < 20; i++ {
		f.s.Submit(&workload.Request{ID: i, Tenant: 2})
	}
	if len(f.sent) != 1 {
		t.Fatalf("bronze burst took %d slots, cap is 1", len(f.sent))
	}
	f.s.Submit(&workload.Request{ID: 20, Tenant: 0})
	if len(f.sent) != 2 || f.sent[1].Tenant != 0 {
		t.Fatalf("gold blocked by bronze burst: %v", f.order())
	}
	// Releasing bronze's slot readmits bronze (gold queue empty).
	f.release()
	if f.sent[2].Tenant != 2 || f.s.Inflight() != 2 {
		t.Fatalf("bronze slot not recycled: %v", f.order())
	}
}

func TestFairSchedulerUntaggedRidesFirstClass(t *testing.T) {
	f := newSched(t, goldSilverBronze(), 8)
	f.s.Submit(&workload.Request{ID: 0, Tenant: -1})
	f.s.Submit(&workload.Request{ID: 1, Tenant: 99})
	if len(f.sent) != 2 || f.s.Dispatched(0) != 2 {
		t.Fatalf("out-of-range tenants not clamped: %v, dispatched(0)=%d", f.order(), f.s.Dispatched(0))
	}
	// Releasing them (still stray-tagged) frees class 0's slots.
	f.release()
	f.release()
	if f.s.Inflight() != 0 {
		t.Fatalf("stray releases leaked slots: inflight %d", f.s.Inflight())
	}
}

func TestFairSchedulerEqualWeightsRoundRobin(t *testing.T) {
	classes := []TenantClass{{Weight: 1, Priority: 0}, {Weight: 1, Priority: 0}, {Weight: 1, Priority: 0}}
	f := newSched(t, classes, 1)
	for i := 0; i < 9; i++ {
		f.s.Submit(&workload.Request{ID: i, Tenant: i % 3})
	}
	for len(f.sent) < 9 {
		f.release()
	}
	// Equal priority and weight: least-recently-served rotation, i.e.
	// plain round-robin.
	for i, tenant := range f.order() {
		if tenant != i%3 {
			t.Fatalf("equal classes should round-robin, got %v", f.order())
		}
	}
}

func TestFairSchedulerValidation(t *testing.T) {
	if _, err := NewFairScheduler(nil, 8); err == nil {
		t.Fatal("empty class set accepted")
	}
	if _, err := Scheduled(nil)(func(*workload.Request) {}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	// Zero weights are raised to 1 so every tenant progresses.
	s, err := NewFairScheduler([]TenantClass{{Weight: 0, Priority: 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if _, err := Scheduled(s)(func(*workload.Request) { n++ }); err != nil {
		t.Fatal(err)
	}
	s.Submit(&workload.Request{})
	if n != 1 {
		t.Fatalf("zero-weight tenant never dispatched")
	}
	// A nil release decrements only the global gauge and must not panic.
	s.Release(nil)
}

// rejectRecorder collects requests refused at admission.
type rejectRecorder struct{ got []*workload.Request }

func (r *rejectRecorder) sink(req *workload.Request) { r.got = append(r.got, req) }

// TestFairSchedulerBoundedAdmission: the queue-cap boundary table —
// the cap counts queued (not inflight) requests, rejection starts at
// exactly cap, a drained slot re-admits, and one tenant filling its
// queue never costs another tenant a slot.
func TestFairSchedulerBoundedAdmission(t *testing.T) {
	cases := []struct {
		name        string
		queueCap    int
		maxInflight int
		// submit[i] = tenant of the i-th submission, in order.
		submit []int
		// releases drained after all submissions.
		releases     int
		wantSent     int
		wantRejected map[int]int
	}{
		{
			// Slot 1 dispatches immediately, two queue, the rest bounce.
			name: "reject starts exactly at cap", queueCap: 2, maxInflight: 1,
			submit:   []int{0, 0, 0, 0, 0},
			wantSent: 1, wantRejected: map[int]int{0: 2},
		},
		{
			// cap 0 means unbounded: nothing is ever rejected.
			name: "zero cap is unbounded", queueCap: 0, maxInflight: 1,
			submit:   []int{0, 0, 0, 0, 0, 0, 0, 0},
			wantSent: 1, wantRejected: map[int]int{0: 0},
		},
		{
			// Bronze floods its own queue past the cap; gold's later
			// arrivals still fill gold's own queue untouched — the cap
			// is per tenant, not shared.
			name: "per-tenant isolation", queueCap: 2, maxInflight: 1,
			submit:   []int{2, 2, 2, 2, 2, 0, 0},
			wantSent: 1, wantRejected: map[int]int{2: 2, 0: 0},
		},
		{
			// Draining inflight slots admits queued work downstream but
			// does not retroactively admit what was already refused.
			name: "drain dispatches the queue", queueCap: 2, maxInflight: 1,
			submit: []int{0, 0, 0, 0}, releases: 2,
			wantSent: 3, wantRejected: map[int]int{0: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newSched(t, goldSilverBronze(), tc.maxInflight)
			rej := &rejectRecorder{}
			f.s.SetAdmission(tc.queueCap, rej.sink)
			for i, tenant := range tc.submit {
				f.s.Submit(&workload.Request{ID: i, Tenant: tenant})
			}
			for i := 0; i < tc.releases; i++ {
				f.release()
			}
			if len(f.sent) != tc.wantSent {
				t.Fatalf("dispatched %d, want %d (order %v)", len(f.sent), tc.wantSent, f.order())
			}
			total := 0
			for tenant, want := range tc.wantRejected {
				if got := f.s.Rejected(tenant); got != want {
					t.Errorf("tenant %d rejected %d, want %d", tenant, got, want)
				}
				total += want
			}
			if len(rej.got) != total {
				t.Errorf("reject sink saw %d requests, want %d", len(rej.got), total)
			}
		})
	}
}

// TestFairSchedulerReadmitsAfterDrain: a queue at its cap opens one
// admission slot per dispatched request — the boundary is live, not
// latched.
func TestFairSchedulerReadmitsAfterDrain(t *testing.T) {
	f := newSched(t, goldSilverBronze(), 1)
	rej := &rejectRecorder{}
	f.s.SetAdmission(2, rej.sink)
	for i := 0; i < 4; i++ { // 1 inflight, 2 queued, 1 rejected
		f.s.Submit(&workload.Request{ID: i, Tenant: 0})
	}
	if f.s.Rejected(0) != 1 {
		t.Fatalf("rejected %d, want 1", f.s.Rejected(0))
	}
	f.release() // a queued request dispatches; the queue drops to 1
	f.s.Submit(&workload.Request{ID: 4, Tenant: 0})
	if f.s.Rejected(0) != 1 {
		t.Fatalf("re-admission failed: rejected %d, want still 1", f.s.Rejected(0))
	}
	if f.s.QueueLen(0) != 2 {
		t.Fatalf("queue length %d, want back at cap 2", f.s.QueueLen(0))
	}
}

// TestFairSchedulerOnDispatch: the dispatch hook sees exactly the
// requests that enter service, never the rejected ones, in dispatch
// order.
func TestFairSchedulerOnDispatch(t *testing.T) {
	f := newSched(t, goldSilverBronze(), 1)
	rej := &rejectRecorder{}
	f.s.SetAdmission(1, rej.sink)
	var stamped []int
	f.s.SetOnDispatch(func(req *workload.Request) { stamped = append(stamped, req.ID) })
	for i := 0; i < 4; i++ { // 1 inflight, 1 queued, 2 rejected
		f.s.Submit(&workload.Request{ID: i, Tenant: 0})
	}
	f.release()
	if want := []int{0, 1}; len(stamped) != 2 || stamped[0] != want[0] || stamped[1] != want[1] {
		t.Fatalf("hook saw %v, want %v", stamped, want)
	}
	if len(rej.got) != 2 {
		t.Fatalf("reject sink saw %d, want 2", len(rej.got))
	}
}
