package experiments

import (
	"fmt"
	"strings"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/rag"
	"vectorliterag/internal/workload"
)

// Fig11Result reproduces the main evaluation (Fig. 11): SLO attainment
// and end-to-end latency under increasing arrival rates, for every
// (dataset, LLM, system) combination.
type Fig11Result struct {
	Cells []Fig11Cell
}

// Fig11Cell is one subplot: a dataset x model pair with its sweep.
type Fig11Cell struct {
	Dataset  string
	Model    string
	Capacity float64 // standalone LLM throughput (vertical dashed line)
	Points   []SweepPoint
}

// Fig11 runs the 3x3 grid across the four main systems.
func Fig11(cfg Config) (*Fig11Result, error) {
	specs := []dataset.Spec{dataset.WikiAll, dataset.Orcas1K, dataset.Orcas2K}
	if cfg.Quick {
		specs = specs[1:2] // ORCAS-1K only
	}
	deps := deployments()
	if cfg.Quick {
		deps = deps[1:2] // Qwen3-32B only
	}
	res := &Fig11Result{}
	for _, spec := range specs {
		w, err := WorkloadFor(spec)
		if err != nil {
			return nil, err
		}
		for _, dep := range deps {
			rates, mu, err := ratesFor(dep.Node, dep.Model, cfg.Quick)
			if err != nil {
				return nil, err
			}
			points, err := sweep(cfg, dep, w, rag.Kinds(), rates, nil)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig11Cell{
				Dataset: spec.Name, Model: dep.Model.Name, Capacity: mu, Points: points,
			})
		}
	}
	return res, nil
}

// MaxAttainedRate returns the highest rate at which the system kept
// attainment >= level in the cell, or 0 if it never did.
func (c Fig11Cell) MaxAttainedRate(kind rag.Kind, level float64) float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.Kind == kind && p.Att >= level && p.Rate > best {
			best = p.Rate
		}
	}
	return best
}

// Render formats every cell.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 11: SLO attainment (left metric) and E2E latency (right metric)\n")
	for _, cell := range r.Cells {
		fmt.Fprintf(&b, "\n-- %s + %s (bare capacity %.1f rps)\n", cell.Dataset, cell.Model, cell.Capacity)
		t := &table{header: []string{"system", "rate", "attainment", "TTFT p90", "E2E p90", "search", "rho"}}
		for _, p := range cell.Points {
			t.add(string(p.Kind), fmt.Sprintf("%.1f", p.Rate), f2(p.Att), ms(p.TTFTP90), sec(p.E2EP90), ms(p.Search), f3(p.Rho))
		}
		b.WriteString(t.String())
		// Headline: SLO-bound throughput ratio vs best baseline.
		vl := cell.MaxAttainedRate(rag.VLiteRAG, 0.5)
		bestBase := 0.0
		for _, k := range []rag.Kind{rag.CPUOnly, rag.DedGPU, rag.AllGPU} {
			if v := cell.MaxAttainedRate(k, 0.5); v > bestBase {
				bestBase = v
			}
		}
		if bestBase > 0 {
			fmt.Fprintf(&b, "SLO-bound (att>=0.5) rate: vLiteRAG %.1f vs best baseline %.1f (%.2fx)\n",
				vl, bestBase, vl/bestBase)
		}
	}
	return b.String()
}

// Fig12Result reproduces the TTFT breakdown (Fig. 12) for Wiki-All and
// ORCAS-1K with Qwen3-32B at three arrival rates.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12Row is one stacked bar.
type Fig12Row struct {
	Dataset  string
	Kind     rag.Kind
	Rate     float64
	Queueing time.Duration
	Search   time.Duration
	LLM      time.Duration // wait + prefill (the grey segment)
}

// Fig12 measures the breakdowns.
func Fig12(cfg Config) (*Fig12Result, error) {
	dep := deployments()[1] // Qwen3-32B on H100
	rates := []float64{19, 32, 38}
	if cfg.Quick {
		rates = []float64{19, 32}
	}
	res := &Fig12Result{}
	for _, spec := range []dataset.Spec{dataset.WikiAll, dataset.Orcas1K} {
		w, err := WorkloadFor(spec)
		if err != nil {
			return nil, err
		}
		for _, kind := range rag.Kinds() {
			for _, rate := range rates {
				r, err := rag.Run(rag.Options{
					Node: dep.Node, Model: dep.Model, W: w, Kind: kind,
					Rate: rate, Seed: cfg.Seed, Duration: runDuration(cfg.Quick),
				})
				if err != nil {
					return nil, err
				}
				bd := r.Summary.Breakdown
				res.Rows = append(res.Rows, Fig12Row{
					Dataset: spec.Name, Kind: kind, Rate: rate,
					Queueing: bd.Queueing, Search: bd.Search, LLM: bd.LLMWait + bd.Prefill,
				})
			}
		}
	}
	return res, nil
}

// Render formats the stacked bars.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 12: TTFT breakdown with Qwen3-32B\n")
	t := &table{header: []string{"dataset", "system", "rate", "queueing", "search", "LLM(prefill)", "total"}}
	for _, row := range r.Rows {
		t.add(row.Dataset, string(row.Kind), fmt.Sprintf("%.0f", row.Rate),
			ms(row.Queueing), ms(row.Search), ms(row.LLM), ms(row.Queueing+row.Search+row.LLM))
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig14Result reproduces the dispatcher ablation (Fig. 14): average and
// P90 search latency with the dispatcher on vs off, plus batch sizes.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14Row is one (rate, dispatcher) sample.
type Fig14Row struct {
	Rate       float64
	Dispatcher bool
	AvgSearch  time.Duration
	P90Search  time.Duration
	AvgBatch   float64
}

// Fig14 runs the ablation on the ORCAS-2K index (as in the paper).
func Fig14(cfg Config) (*Fig14Result, error) {
	w, err := WorkloadFor(dataset.Orcas2K)
	if err != nil {
		return nil, err
	}
	dep := deployments()[1]
	rates := []float64{24, 32, 41}
	if cfg.Quick {
		rates = []float64{24, 32}
	}
	res := &Fig14Result{}
	for _, disp := range []bool{true, false} {
		for _, rate := range rates {
			r, err := rag.Run(rag.Options{
				Node: dep.Node, Model: dep.Model, W: w, Kind: rag.VLiteRAG,
				Rate: rate, Seed: cfg.Seed, Duration: runDuration(cfg.Quick),
				DisableDispatcher: !disp,
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig14Row{
				Rate: rate, Dispatcher: disp,
				AvgSearch: r.Summary.Breakdown.Search,
				P90Search: r.Summary.Search.P90,
				AvgBatch:  r.AvgBatch,
			})
		}
	}
	return res, nil
}

// Render formats the ablation.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 14: dynamic dispatcher ablation (ORCAS-2K)\n")
	t := &table{header: []string{"rate", "dispatcher", "avg search", "p90 search", "avg batch"}}
	for _, row := range r.Rows {
		on := "off"
		if row.Dispatcher {
			on = "on"
		}
		t.add(fmt.Sprintf("%.0f", row.Rate), on, ms(row.AvgSearch), ms(row.P90Search), f2(row.AvgBatch))
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig15Result reproduces the input/output length ablation (Fig. 15):
// P90 TTFT across arrival rates for different token shapes, on
// Llama3-8B and Llama3-70B with the ORCAS-2K index.
type Fig15Result struct {
	Rows []Fig15Row
}

// Fig15Row is one curve sample.
type Fig15Row struct {
	Model   string
	Kind    rag.Kind
	Shape   workload.Shape
	Rate    float64
	TTFTP90 time.Duration
	Att     float64
}

// Fig15 sweeps shapes {512,1024,2048}/256 and 1024/{128,256,512}.
func Fig15(cfg Config) (*Fig15Result, error) {
	w, err := WorkloadFor(dataset.Orcas2K)
	if err != nil {
		return nil, err
	}
	shapes := []workload.Shape{
		{InputTokens: 512, OutputTokens: 256, TopK: 25},
		{InputTokens: 1024, OutputTokens: 256, TopK: 25},
		{InputTokens: 2048, OutputTokens: 256, TopK: 25},
		{InputTokens: 1024, OutputTokens: 128, TopK: 25},
		{InputTokens: 1024, OutputTokens: 512, TopK: 25},
	}
	kinds := []rag.Kind{rag.CPUOnly, rag.AllGPU, rag.VLiteRAG}
	deps := []deployment{deployments()[0], deployments()[2]} // 8B and 70B
	if cfg.Quick {
		shapes = shapes[1:2]
		deps = deps[:1]
	}
	res := &Fig15Result{}
	for _, dep := range deps {
		for _, shape := range shapes {
			mu, err := rag.BareCapacity(dep.Node, dep.Model, shape)
			if err != nil {
				return nil, err
			}
			fracs := []float64{0.5, 0.8, 1.0}
			if !cfg.Quick {
				fracs = []float64{0.4, 0.6, 0.8, 0.95, 1.05}
			}
			for _, kind := range kinds {
				for _, f := range fracs {
					rate := round1(mu * f)
					r, err := rag.Run(rag.Options{
						Node: dep.Node, Model: dep.Model, W: w, Kind: kind,
						Rate: rate, Seed: cfg.Seed, Duration: runDuration(cfg.Quick),
						Shape: shape,
					})
					if err != nil {
						return nil, err
					}
					res.Rows = append(res.Rows, Fig15Row{
						Model: dep.Model.Name, Kind: kind, Shape: shape, Rate: rate,
						TTFTP90: r.Summary.TTFT.P90, Att: r.Summary.Attainment,
					})
				}
			}
		}
	}
	return res, nil
}

// Render formats the ablation.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 15: input/output length ablation (ORCAS-2K)\n")
	t := &table{header: []string{"model", "shape", "system", "rate", "TTFT p90", "attainment"}}
	for _, row := range r.Rows {
		t.add(row.Model, fmt.Sprintf("%d/%d", row.Shape.InputTokens, row.Shape.OutputTokens),
			string(row.Kind), fmt.Sprintf("%.1f", row.Rate), ms(row.TTFTP90), f2(row.Att))
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig17Result reproduces the hardware-capacity robustness study
// (Fig. 17): 4, 6, and 8 GPUs with proportionally scaled CPU cores.
type Fig17Result struct {
	Rows []Fig17Row
}

// Fig17Row is one (gpus, system, rate) sample.
type Fig17Row struct {
	GPUs    int
	Kind    rag.Kind
	Rate    float64
	Att     float64
	E2EMean time.Duration
	Rho     float64
}

// Fig17 runs Qwen3-32B + ORCAS-2K across node sizes.
func Fig17(cfg Config) (*Fig17Result, error) {
	w, err := WorkloadFor(dataset.Orcas2K)
	if err != nil {
		return nil, err
	}
	gpuCounts := []int{4, 6, 8}
	if cfg.Quick {
		gpuCounts = []int{4, 8}
	}
	kinds := []rag.Kind{rag.CPUOnly, rag.AllGPU, rag.VLiteRAG}
	res := &Fig17Result{}
	for _, g := range gpuCounts {
		node, err := hwNodeWithGPUs(g)
		if err != nil {
			return nil, err
		}
		dep := deployment{Model: deployments()[1].Model, Node: node}
		rates, _, err := ratesFor(node, dep.Model, cfg.Quick)
		if err != nil {
			return nil, err
		}
		points, err := sweep(cfg, dep, w, kinds, rates, nil)
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			res.Rows = append(res.Rows, Fig17Row{
				GPUs: g, Kind: p.Kind, Rate: p.Rate, Att: p.Att, E2EMean: p.E2EMean, Rho: p.Rho,
			})
		}
	}
	return res, nil
}

// Render formats the study.
func (r *Fig17Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 17: robustness to hardware capacity (Qwen3-32B + ORCAS-2K)\n")
	t := &table{header: []string{"GPUs", "system", "rate", "attainment", "E2E mean", "rho"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprint(row.GPUs), string(row.Kind), fmt.Sprintf("%.1f", row.Rate),
			f2(row.Att), sec(row.E2EMean), f3(row.Rho))
	}
	b.WriteString(t.String())
	return b.String()
}
