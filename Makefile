# Developer entry points. CI runs `make verify`.

GO ?= go

.PHONY: verify build test vet race bench fmt

verify: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

fmt:
	gofmt -l -w .
