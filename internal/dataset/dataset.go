// Package dataset defines the evaluation workloads. Each workload has
// two coupled representations (the two-scale design, see ARCHITECTURE.md):
//
//   - a Spec: the *logical* paper-scale geometry (vector count,
//     dimensionality, PQ code bytes, cluster count, nprobe, index bytes)
//     that the cost model consumes to produce paper-scale latencies; and
//   - a Physical realization: a real, laptop-scale IVF-PQ index built
//     over a synthetic Gaussian-mixture corpus, which supplies genuine
//     cluster-access skew, per-query probe lists, and hit-rate
//     distributions.
//
// Queries are drawn from a fixed pool of templates with Zipf-distributed
// popularity plus Gaussian noise. This mirrors how the paper's two
// workloads differ: ORCAS preserves duplicate real-user queries (heavy
// re-hits of the same hot clusters → top 20 % of clusters carry ≈93 % of
// accesses, Fig. 5 right), while Wiki-All queries are more diffuse
// (≈59 %, Fig. 5 left). The Zipf exponent and noise level per Spec are
// calibrated against those two targets in the package tests.
package dataset

import (
	"fmt"
	"math"
	"sync"
	"time"

	"vectorliterag/internal/ivf"
	"vectorliterag/internal/parallel"
	"vectorliterag/internal/rng"
)

// Spec describes a logical, paper-scale vector database.
type Spec struct {
	Name      string
	NVectors  int64         // database size at paper scale
	Dim       int           // embedding dimensionality
	CodeBytes int           // PQ code bytes per vector
	NList     int           // logical IVF cluster count
	NProbe    int           // logical clusters probed per query
	SLOSearch time.Duration // retrieval-stage SLO (paper Table I)

	// Workload shape (calibrated; see package tests).
	SkewS      float64 // Zipf exponent over query templates
	QueryNoise float64 // query perturbation stddev, in units of blob spread
}

// IndexBytes returns the compressed index footprint at paper scale.
func (s Spec) IndexBytes() int64 { return s.NVectors * int64(s.CodeBytes) }

// ScanShare returns the average fraction of the database scanned per
// query at paper scale (nprobe/nlist).
func (s Spec) ScanShare() float64 { return float64(s.NProbe) / float64(s.NList) }

// The three evaluation datasets of the paper (§V-A). Sizes follow the
// reported footprints: Wiki-All 88M×768-d ≈ 18 GB, ORCAS-1K ≈ 40 GB,
// ORCAS-2K ≈ 80 GB; nlist=131072 and nprobe=2048 follow the Faiss
// configuration guidance cited in the paper.
var (
	WikiAll = Spec{
		Name: "Wiki-All", NVectors: 88_000_000, Dim: 768, CodeBytes: 204,
		NList: 131072, NProbe: 2048, SLOSearch: 150 * time.Millisecond,
		SkewS: 0.60, QueryNoise: 2.8,
	}
	Orcas1K = Spec{
		Name: "ORCAS 1K", NVectors: 156_000_000, Dim: 1024, CodeBytes: 256,
		NList: 131072, NProbe: 2048, SLOSearch: 200 * time.Millisecond,
		SkewS: 2.40, QueryNoise: 0.35,
	}
	Orcas2K = Spec{
		Name: "ORCAS 2K", NVectors: 156_000_000, Dim: 2048, CodeBytes: 512,
		NList: 131072, NProbe: 2048, SLOSearch: 300 * time.Millisecond,
		SkewS: 2.40, QueryNoise: 0.35,
	}
)

// GenConfig controls the physical realization.
type GenConfig struct {
	NCenters   int // Gaussian mixture components
	PerCenter  int // vectors per component
	Dim        int // physical dimensionality
	PhysNList  int // physical IVF clusters
	PhysNProbe int // physical probes per query
	Templates  int // query template pool size
	Seed       uint64
	// Workers sizes the index-training/probing worker pool; non-positive
	// means one per CPU core. The built workload is bit-identical for
	// any value.
	Workers int
}

// DefaultGen is the standard laptop-scale realization: ~32k vectors,
// 128 clusters, 16-probe queries (probe share 12.5 %, vs the paper's
// 1.56 % — the difference is normalized away by Workload.kappa; the
// wider probe improves per-query hit-rate resolution to 1/16 steps).
func DefaultGen() GenConfig {
	return GenConfig{
		NCenters: 128, PerCenter: 256, Dim: 32,
		PhysNList: 128, PhysNProbe: 16, Templates: 512, Seed: 1,
	}
}

// Workload couples a Spec with its physical realization.
type Workload struct {
	Spec Spec
	Gen  GenConfig

	Index *ivf.Index
	Data  []float32 // physical corpus, row-major

	templates     []template
	pop           *rng.Zipf
	popRotation   int     // popularity drift offset (see SetPopularityRotation)
	clusterBytes  []int64 // logical storage bytes per physical cluster
	scanTotal     []int64 // per-template full-probe scan bytes (ScanBytesAll)
	kappa         float64 // probe-width normalizer (see Build)
	totalVectors  int
	blobSpread    float64
	centers       []float32
	popByTemplate []float64 // draw probability per template
}

type template struct {
	vec    []float32
	probes []int // physical cluster IDs, most similar first
}

// Build generates the corpus, trains the physical index, precomputes
// template probe lists, and derives the logical-scale calibration.
func Build(spec Spec, gc GenConfig) (*Workload, error) {
	if gc.NCenters <= 0 || gc.PerCenter <= 0 || gc.Dim <= 0 {
		return nil, fmt.Errorf("dataset: bad generation config %+v", gc)
	}
	r := rng.New(gc.Seed ^ hashName(spec.Name))
	const spread = 1.0
	centers := make([]float32, gc.NCenters*gc.Dim)
	for i := range centers {
		centers[i] = float32(r.NormFloat64()) * 8
	}
	n := gc.NCenters * gc.PerCenter
	data := make([]float32, n*gc.Dim)
	for c := 0; c < gc.NCenters; c++ {
		for i := 0; i < gc.PerCenter; i++ {
			row := (c*gc.PerCenter + i) * gc.Dim
			for d := 0; d < gc.Dim; d++ {
				data[row+d] = centers[c*gc.Dim+d] + float32(r.NormFloat64()*spread)
			}
		}
	}
	ix, err := ivf.Build(data, ivf.BuildConfig{
		Dim: gc.Dim, NList: gc.PhysNList, PQM: 8, PQK: 64, TrainIters: 8, Seed: gc.Seed + 11,
		Workers: gc.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	w := &Workload{
		Spec: spec, Gen: gc, Index: ix, Data: data,
		totalVectors: n, blobSpread: spread, centers: centers,
	}

	// Query templates: each anchored at a convex mixture of a "home"
	// center (reused round-robin, so template rank correlates with a
	// region's popularity) and a random secondary center. Mixing matters:
	// a query's nprobe nearest clusters then span both a popular core
	// and colder periphery, so per-query hit rates under a hot-cluster
	// cache are graded rather than all-or-nothing — matching the wide
	// violins of the paper's Fig. 6 and the moderate variance of Fig. 8
	// (right).
	tr := rng.New(gc.Seed + 77)
	w.templates = make([]template, gc.Templates)
	for t := 0; t < gc.Templates; t++ {
		c1 := t % gc.NCenters
		c2 := tr.Intn(gc.NCenters)
		a := float32(0.60 + 0.3*tr.Float64()) // majority weight on home
		vec := make([]float32, gc.Dim)
		for d := 0; d < gc.Dim; d++ {
			mix := a*centers[c1*gc.Dim+d] + (1-a)*centers[c2*gc.Dim+d]
			vec[d] = mix + float32(tr.NormFloat64()*spread*spec.QueryNoise)
		}
		w.templates[t] = template{vec: vec}
	}
	// Probe lists are pure functions of the template vectors, so they
	// compute concurrently after the sequential RNG draws above. Each
	// chunk reuses one search scratch across its templates; only the
	// retained per-template probe list is allocated.
	parallel.For(gc.Templates, gc.Workers, func(start, end int) {
		s := ix.NewSearchScratch()
		for t := start; t < end; t++ {
			probes := ix.ProbeInto(s, w.templates[t].vec, gc.PhysNProbe)
			own := make([]int, len(probes))
			copy(own, probes)
			w.templates[t].probes = own
		}
	})
	w.pop = rng.NewZipf(gc.Templates, spec.SkewS)

	// Logical storage bytes per physical cluster: proportional share of
	// the paper-scale index footprint.
	sizes := ix.ClusterSizes()
	w.clusterBytes = make([]int64, len(sizes))
	for c, sz := range sizes {
		w.clusterBytes[c] = int64(float64(sz) / float64(n) * float64(spec.IndexBytes()))
	}

	// kappa normalizes per-query scan work so that the popularity-weighted
	// average query scans IndexBytes*NProbe/NList logical bytes, matching
	// the paper-scale probe fraction despite the wider physical probes.
	w.popByTemplate = templateProbabilities(gc.Templates, spec.SkewS)
	var avgShare float64
	for t, tpl := range w.templates {
		share := 0.0
		for _, c := range tpl.probes {
			share += float64(sizes[c]) / float64(n)
		}
		avgShare += share * w.popByTemplate[t]
	}
	if avgShare <= 0 {
		return nil, fmt.Errorf("dataset: degenerate probe share")
	}
	w.kappa = spec.ScanShare() / avgShare

	// Each template's full-probe scan work is fixed at build time; the
	// engines read it per request per batch, so precompute it (same
	// accumulation order as ScanBytes, hence bit-identical).
	w.scanTotal = make([]int64, gc.Templates)
	for t, tpl := range w.templates {
		var b float64
		for _, c := range tpl.probes {
			b += float64(w.clusterBytes[c])
		}
		w.scanTotal[t] = int64(b * w.kappa)
	}
	return w, nil
}

func templateProbabilities(n int, s float64) []float64 {
	p := make([]float64, n)
	sum := 0.0
	for i := range p {
		p[i] = math.Pow(float64(i+1), -s)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// QueryID identifies a drawn query by its template.
type QueryID int

// Sample draws a query according to template popularity.
func (w *Workload) Sample(r *rng.Rand) QueryID {
	t := w.pop.Draw(r)
	if w.popRotation != 0 {
		t = (t + w.popRotation) % len(w.templates)
	}
	return QueryID(t)
}

// SetPopularityRotation rotates which templates are popular: after
// SetPopularityRotation(k), the template that used to be rank i draws
// with rank (i-k)'s probability. The distributional *shape* is
// unchanged, but the identity of the hot clusters shifts — the query
// drift of paper §IV-B3 that invalidates a previously built hot set.
func (w *Workload) SetPopularityRotation(k int) {
	n := len(w.templates)
	w.popRotation = ((k % n) + n) % n
}

// PopularityRotation reports the current drift offset.
func (w *Workload) PopularityRotation() int { return w.popRotation }

// Probes returns the physical cluster IDs probed by the query. The
// returned slice is shared; callers must not mutate it.
func (w *Workload) Probes(q QueryID) []int { return w.templates[q].probes }

// QueryVector materializes an embedding for the query (template plus
// fresh noise), for use in real-scan validation paths.
func (w *Workload) QueryVector(q QueryID, r *rng.Rand) []float32 {
	t := w.templates[q]
	out := make([]float32, len(t.vec))
	for d := range out {
		out[d] = t.vec[d] + float32(r.NormFloat64()*w.blobSpread*w.Spec.QueryNoise*0.25)
	}
	return out
}

// InsertVector materializes a fresh database vector for a streaming
// insert: a template is drawn from the current (possibly drift-rotated)
// query popularity distribution, and the vector lands at that template
// with the corpus-level Gaussian spread — live inserts concentrate in
// the regions queries currently hit, like new documents on a trending
// topic. The draw sequence (template, then Dim noise values) is a pure
// function of the supplied RNG.
func (w *Workload) InsertVector(r *rng.Rand) []float32 {
	tpl := w.templates[w.Sample(r)]
	out := make([]float32, len(tpl.vec))
	for d := range out {
		out[d] = tpl.vec[d] + float32(r.NormFloat64()*w.blobSpread)
	}
	return out
}

// Templates returns the number of query templates.
func (w *Workload) Templates() int { return len(w.templates) }

// TemplateProbability returns the draw probability of template t.
func (w *Workload) TemplateProbability(t int) float64 { return w.popByTemplate[t] }

// ClusterBytes returns the logical storage bytes of physical cluster c.
func (w *Workload) ClusterBytes(c int) int64 { return w.clusterBytes[c] }

// TotalIndexBytes returns the logical index footprint.
func (w *Workload) TotalIndexBytes() int64 { return w.Spec.IndexBytes() }

// ScanBytes returns the logical bytes of LUT-scan work the query incurs
// over the given subset of its probed clusters. An empty subset is zero
// work; use ScanBytesAll for the full probe set.
func (w *Workload) ScanBytes(q QueryID, clusters []int) int64 {
	var b float64
	for _, c := range clusters {
		b += float64(w.clusterBytes[c])
	}
	return int64(b * w.kappa)
}

// ScanBytesAll returns the logical bytes of LUT-scan work over the
// query's entire probe set (the uncached cost). Precomputed at build
// time — this sits on the per-request routing hot path.
func (w *Workload) ScanBytesAll(q QueryID) int64 {
	return w.scanTotal[q]
}

// Kappa exposes the probe-width normalizer (for tests and docs).
func (w *Workload) Kappa() float64 { return w.kappa }

// AccessCounts replays queries through coarse quantization and counts
// per-cluster accesses — the profiling measurement behind Fig. 5.
// Tallies are integers, so per-chunk partial counts sum exactly
// regardless of worker count.
func (w *Workload) AccessCounts(queries []QueryID) []int64 {
	nlist := w.Index.NList()
	counts := make([]int64, nlist)
	var mu sync.Mutex
	parallel.For(len(queries), w.Gen.Workers, func(start, end int) {
		part := make([]int64, nlist)
		for _, q := range queries[start:end] {
			for _, c := range w.templates[q].probes {
				part[c]++
			}
		}
		mu.Lock()
		for c, n := range part {
			counts[c] += n
		}
		mu.Unlock()
	})
	return counts
}

// SampleMany draws n queries.
func (w *Workload) SampleMany(r *rng.Rand, n int) []QueryID {
	out := make([]QueryID, n)
	for i := range out {
		out[i] = w.Sample(r)
	}
	return out
}

// HitRate returns the count-based hit rate of query q against a hot-set
// membership mask: the fraction of its probed clusters that are cached
// (paper Fig. 6 definition).
func (w *Workload) HitRate(q QueryID, hot []bool) float64 {
	probes := w.templates[q].probes
	if len(probes) == 0 {
		return 0
	}
	hit := 0
	for _, c := range probes {
		if hot[c] {
			hit++
		}
	}
	return float64(hit) / float64(len(probes))
}

// WorkHitRate returns the work-weighted hit rate: the fraction of the
// query's scan bytes that land in cached clusters. This is the quantity
// that actually reduces CPU LUT time in Eq. 1 and is what the runtime
// engines use.
func (w *Workload) WorkHitRate(q QueryID, hot []bool) float64 {
	probes := w.templates[q].probes
	var total, hit float64
	for _, c := range probes {
		b := float64(w.clusterBytes[c])
		total += b
		if hot[c] {
			hit += b
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}
