// Package des is a minimal deterministic discrete-event simulator. All
// serving experiments run in virtual time on it, so results are
// reproducible and independent of host speed.
//
// Time is int64 nanoseconds. Events scheduled for the same instant fire
// in scheduling order (FIFO), which makes multi-component pipelines
// deterministic without fragile epsilon offsets.
//
// The event queue is a hand-rolled 4-ary min-heap over concrete event
// structs: no container/heap interface boxing, no per-push allocation.
// Because every event's (at, seq) key is unique, the heap's pop order
// is a strict total order — identical for any correct heap arity —
// which is what keeps the golden serving artifacts bit-stable across
// queue implementations (heap_property_test.go pins this against a
// container/heap reference).
//
// Scheduling itself can also be allocation-free: the hot paths of the
// serving pipeline pre-bind one callback per component at construction
// and pass per-event state through AtArg's arg word (a pointer, which
// an interface holds without boxing), instead of capturing it in a new
// closure per event.
package des

import (
	"time"
)

// Time is virtual simulation time in nanoseconds since simulation start.
type Time = int64

// Sim is the event loop. The zero value is ready to use.
//
// The heap is stored as two parallel arrays: a dense key array (16
// bytes per event — what every sift comparison touches, so a node's
// four children span at most two cache lines) and a payload array with
// the callbacks. Sift swaps move both; comparisons touch only keys.
//
// In front of the heap sits a one-event min register: fKey/fPay hold
// the global minimum whenever fOK is set. The dominant scheduling
// pattern of the serving pipeline — an event handler scheduling its
// own successor as the next-soonest thing in the system (LLM decode
// iterations, dispatcher promotions) — then bypasses the heap
// entirely: the push lands in the register and the next Step fires it
// with zero sift work. Misses cost one extra key comparison. The
// register is an implementation detail of the priority queue: the
// (at, seq) pop order is identical with or without it.
type Sim struct {
	now  Time
	fKey evKey
	fPay evPay
	fOK  bool
	key  []evKey // 4-ary min-heap ordered by (at, seq)
	pay  []evPay // pay[i] belongs to key[i]
	seq  uint64
}

// evKey is an event's heap key: (at, seq) is unique, so the pop order
// is a strict total order.
type evKey struct {
	at  Time
	seq uint64
}

// evPay is one scheduled callback: either a plain thunk (fn) or a
// pre-bound callback plus its argument (argFn, arg). The two-form
// layout lets hot components schedule without allocating a closure —
// a long-lived argFn and a pointer-typed arg both fit in interface
// words without heap boxing.
type evPay struct {
	fn    func()
	argFn func(any)
	arg   any
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// fires at the current instant (never rewinds the clock).
func (s *Sim) At(t Time, fn func()) {
	s.push(t, evPay{fn: fn})
}

// AtArg schedules fn(arg) at absolute virtual time t. With a pre-bound
// fn and a pointer-typed arg this path allocates nothing, which is why
// the per-request hooks of the serving pipeline use it instead of At.
func (s *Sim) AtArg(t Time, fn func(any), arg any) {
	s.push(t, evPay{argFn: fn, arg: arg})
}

// After schedules fn d nanoseconds from now; negative d means now.
func (s *Sim) After(d time.Duration, fn func()) {
	s.push(s.now+int64(d), evPay{fn: fn})
}

// AfterArg schedules fn(arg) d nanoseconds from now; negative d means
// now. Allocation-free under the same conditions as AtArg.
func (s *Sim) AfterArg(d time.Duration, fn func(any), arg any) {
	s.push(s.now+int64(d), evPay{argFn: fn, arg: arg})
}

// push clamps past deadlines, stamps the FIFO tie-break, and places
// the event: into the min register when it is the new global minimum,
// into the heap otherwise (displacing a beaten register holder back
// into the heap).
func (s *Sim) push(at Time, p evPay) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	k := evKey{at: at, seq: s.seq}
	if s.fOK {
		if lessKey(k, s.fKey) {
			s.heapPush(s.fKey, s.fPay)
			s.fKey, s.fPay = k, p
			return
		}
	} else if len(s.key) == 0 || lessKey(k, s.key[0]) {
		s.fKey, s.fPay, s.fOK = k, p, true
		return
	}
	s.heapPush(k, p)
}

// heapPush appends and sifts into the 4-ary heap.
func (s *Sim) heapPush(k evKey, p evPay) {
	s.key = append(s.key, k)
	s.pay = append(s.pay, p)
	s.up(len(s.key) - 1)
}

// Step fires the next event. It reports false when no events remain.
func (s *Sim) Step() bool {
	var at Time
	var p evPay
	if s.fOK {
		at, p = s.fKey.at, s.fPay
		s.fOK = false
		s.fPay = evPay{}
	} else {
		if len(s.key) == 0 {
			return false
		}
		at = s.key[0].at
		p = s.pay[0]
		s.pop()
	}
	s.now = at
	if p.fn != nil {
		p.fn()
	} else {
		p.argFn(p.arg)
	}
	return true
}

// pop removes the root, restoring the heap. The vacated tail slot is
// zeroed so the backing array does not retain callback references.
func (s *Sim) pop() {
	n := len(s.key) - 1
	s.key[0] = s.key[n]
	s.pay[0] = s.pay[n]
	s.pay[n] = evPay{}
	s.key = s.key[:n]
	s.pay = s.pay[:n]
	if n > 0 {
		s.down(0)
	}
}

// lessKey orders events by (at, seq) — a strict total order, since seq
// is unique per event.
func lessKey(a, b evKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// up sifts element i toward the root of the 4-ary heap by hole
// percolation: beaten parents move down into the hole and the sifted
// element lands once, halving the writes of swap-based sifting while
// producing the identical final layout.
func (s *Sim) up(i int) {
	key, pay := s.key, s.pay
	k, p := key[i], pay[i]
	for i > 0 {
		par := (i - 1) / 4
		if !lessKey(k, key[par]) {
			break
		}
		key[i], pay[i] = key[par], pay[par]
		i = par
	}
	key[i], pay[i] = k, p
}

// down sifts element i toward the leaves of the 4-ary heap (hole
// percolation, see up).
func (s *Sim) down(i int) {
	key, pay := s.key, s.pay
	n := len(key)
	k, p := key[i], pay[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		bk := key[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if lessKey(key[c], bk) {
				best, bk = c, key[c]
			}
		}
		if !lessKey(bk, k) {
			break
		}
		key[i], pay[i] = bk, pay[best]
		i = best
	}
	key[i], pay[i] = k, p
}

// nextAt returns the earliest pending event time; ok is false when no
// events remain.
func (s *Sim) nextAt() (Time, bool) {
	if s.fOK {
		return s.fKey.at, true
	}
	if len(s.key) > 0 {
		return s.key[0].at, true
	}
	return 0, false
}

// RunUntil fires events until the queue is empty or the next event is
// later than deadline; the clock is left at the last fired event (or
// advanced to deadline if it never got there).
func (s *Sim) RunUntil(deadline Time) {
	for {
		at, ok := s.nextAt()
		if !ok || at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run drains every event. Use only with self-terminating workloads.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int {
	n := len(s.key)
	if s.fOK {
		n++
	}
	return n
}
