package rag

import (
	"testing"
)

// The pre-refactor rag.Run — the 200-line monolith that wired arrivals,
// engines, and the LLM cluster by hand — produced these values for each
// system on the shared test workload (Orcas1K spec, small physical
// realization, seed 1, 12 req/s, 60 s window). The stage-pipeline
// composition must reproduce them exactly: the refactor moved wiring,
// not semantics, and the DES is deterministic.
var goldenRuns = map[Kind]struct {
	attainment float64
	ttftP90    int64 // virtual ns
	e2eP90     int64 // virtual ns
	n          int
	unserved   int
	avgBatch   float64
	rho        float64
}{
	CPUOnly:  {0.64824120603015079, 599264561, 4605487168, 597, 0, 2.7265917602996255, 0},
	DedGPU:   {1, 176266050, 5005767054, 597, 0, 1.0833333333333333, 1},
	AllGPU:   {1, 204900366, 4947621399, 597, 0, 1.058139534883721, 1},
	VLiteRAG: {0.99664991624790622, 340412119, 4721119078, 597, 0, 1.3481481481481481, 0.171875},
	HedraRAG: {0.60636515912897826, 602031536, 4946895676, 597, 0, 2.7265917602996255, 0.0},
}

func TestPipelineMatchesPreRefactorGoldens(t *testing.T) {
	for kind, want := range goldenRuns {
		res, err := Run(baseOpts(t, kind, 12))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		s := res.Summary
		if s.Attainment != want.attainment {
			t.Errorf("%s: attainment %.17g, golden %.17g", kind, s.Attainment, want.attainment)
		}
		if int64(s.TTFT.P90) != want.ttftP90 {
			t.Errorf("%s: TTFT p90 %d, golden %d", kind, int64(s.TTFT.P90), want.ttftP90)
		}
		if int64(s.E2E.P90) != want.e2eP90 {
			t.Errorf("%s: E2E p90 %d, golden %d", kind, int64(s.E2E.P90), want.e2eP90)
		}
		if s.N != want.n || s.Unserved != want.unserved {
			t.Errorf("%s: N=%d unserved=%d, golden N=%d unserved=%d", kind, s.N, s.Unserved, want.n, want.unserved)
		}
		if res.AvgBatch != want.avgBatch {
			t.Errorf("%s: avg batch %.17g, golden %.17g", kind, res.AvgBatch, want.avgBatch)
		}
		if res.Rho != want.rho {
			t.Errorf("%s: rho %.17g, golden %.17g", kind, res.Rho, want.rho)
		}
	}
}

func TestAllKindsSupersetOfKinds(t *testing.T) {
	all := map[Kind]bool{}
	for _, k := range AllKinds() {
		all[k] = true
	}
	for _, k := range Kinds() {
		if !all[k] {
			t.Errorf("Kinds() entry %s missing from AllKinds()", k)
		}
	}
	if !all[HedraRAG] {
		t.Error("AllKinds() missing HedraRAG")
	}
	if len(AllKinds()) != len(Kinds())+1 {
		t.Errorf("AllKinds() has %d entries, want %d", len(AllKinds()), len(Kinds())+1)
	}
}

func TestRunClusterBalancesAndScales(t *testing.T) {
	single, err := Run(baseOpts(t, VLiteRAG, 12))
	if err != nil {
		t.Fatal(err)
	}
	// Two replicas at double the cluster-wide rate should hold roughly
	// the single-node operating point.
	opts := baseOpts(t, VLiteRAG, 24)
	cl, err := RunCluster(opts, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Policy == "" {
		t.Error("default policy not resolved")
	}
	if len(cl.PerReplica) != 2 {
		t.Fatalf("got %d replica reports", len(cl.PerReplica))
	}
	if cl.Summary.Attainment < single.Summary.Attainment-0.05 {
		t.Errorf("2-replica attainment %.3f well below single-node %.3f at matched per-node load",
			cl.Summary.Attainment, single.Summary.Attainment)
	}
	if cl.LLMGPUs != 2*single.LLMGPUs {
		t.Errorf("cluster LLM GPUs %d, want %d", cl.LLMGPUs, 2*single.LLMGPUs)
	}
	total := 0
	for i, rep := range cl.PerReplica {
		if rep.Submitted == 0 {
			t.Errorf("replica %d received no requests", i)
		}
		total += rep.Submitted
	}
	if total != cl.Generated {
		t.Errorf("replica submissions %d != %d generated", total, cl.Generated)
	}
	// Least-loaded keeps the split near even under Poisson arrivals.
	for i, rep := range cl.PerReplica {
		share := float64(rep.Submitted) / float64(total)
		if share < 0.35 || share > 0.65 {
			t.Errorf("replica %d share %.3f badly skewed", i, share)
		}
	}
}

func TestRunClusterValidation(t *testing.T) {
	if _, err := RunCluster(baseOpts(t, VLiteRAG, 10), 0, ""); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if _, err := RunCluster(baseOpts(t, VLiteRAG, 10), 2, "bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunClusterSingleReplicaMatchesRun(t *testing.T) {
	single, err := Run(baseOpts(t, AllGPU, 12))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := RunCluster(baseOpts(t, AllGPU, 12), 1, "round-robin")
	if err != nil {
		t.Fatal(err)
	}
	// One replica behind the router sees the identical arrival stream
	// and serves it with an identical pipeline.
	if cl.Summary.Attainment != single.Summary.Attainment ||
		cl.Summary.TTFT.P90 != single.Summary.TTFT.P90 ||
		cl.Generated != single.Generated {
		t.Errorf("1-replica cluster diverged from single run: %+v vs %+v", cl.Summary, single.Summary)
	}
}

func TestClusterDeterministic(t *testing.T) {
	a, err := RunCluster(baseOpts(t, VLiteRAG, 24), 2, "least-loaded")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(baseOpts(t, VLiteRAG, 24), 2, "least-loaded")
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Attainment != b.Summary.Attainment || a.Summary.E2E.P90 != b.Summary.E2E.P90 {
		t.Fatal("identical cluster runs differ")
	}
}
