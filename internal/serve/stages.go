package serve

import (
	"fmt"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/llm"
	"vectorliterag/internal/retrieval"
	"vectorliterag/internal/workload"
)

// Arrivals is the pipeline source: an open-loop Poisson stream drawn
// from a workload's query distribution.
type Arrivals struct {
	gen *workload.Generator
}

// NewArrivals wraps a Poisson generator as a pipeline source.
func NewArrivals(w *dataset.Workload, rate float64, shape workload.Shape, seed uint64) *Arrivals {
	return &Arrivals{gen: workload.NewGenerator(w, rate, shape, seed)}
}

// NewScheduledArrivals wraps an inhomogeneous Poisson generator driven
// by a rate schedule (ramps, bursts, diurnal cycles) as a pipeline
// source.
func NewScheduledArrivals(w *dataset.Workload, sched workload.Schedule, shape workload.Shape, seed uint64) *Arrivals {
	return &Arrivals{gen: workload.NewScheduledGenerator(w, sched, shape, seed)}
}

// Start schedules arrivals on the simulator until the given deadline,
// feeding each request into the pipeline head at its arrival instant.
func (a *Arrivals) Start(sim *des.Sim, until des.Time, into Sink) {
	a.gen.Start(sim, until, into)
}

// Count returns how many requests the source has emitted so far.
func (a *Arrivals) Count() int { return a.gen.Count() }

// SetTenant stamps every request this source emits with the tenant ID
// (multi-tenant runs start one source per tenant on a shared timeline).
func (a *Arrivals) SetTenant(id int) { a.gen.Tenant = id }

// SetPool installs the request pool the source draws from; the
// pipeline's terminal sink must release completed requests back into
// it (wire workload.Pool.Release last in the terminal Tee).
func (a *Arrivals) SetPool(p *workload.Pool) { a.gen.Pool = p }

// Admission is the front-door dispatch stage: it registers every
// arriving request with the collector and forwards it downstream. In a
// cluster composition its downstream neighbor is the Router, making it
// the single point where the request formally enters the system.
type Admission struct {
	coll *Collector
	next Sink
}

// Admit builds the admission stage bound to a collector.
func Admit(coll *Collector) Builder {
	return func(next Sink) (Stage, error) {
		if coll == nil {
			return nil, fmt.Errorf("serve: admission needs a collector")
		}
		return &Admission{coll: coll, next: next}, nil
	}
}

// Submit implements Stage.
func (a *Admission) Submit(req *workload.Request) {
	a.coll.Admit(req)
	a.next(req)
}

// Name implements Stage.
func (a *Admission) Name() string { return "admission" }

// Retrieval adapts a retrieval.Engine to the pipeline. The engine's
// Forward hook — fixed at engine construction — is the downstream sink,
// so the factory receives it from Compose.
type Retrieval struct {
	Engine retrieval.Engine
}

// RetrievalStage builds the retrieval stage from an engine factory; the
// factory receives the downstream sink to wire as the engine's Forward.
func RetrievalStage(makeEngine func(forward Sink) (retrieval.Engine, error)) Builder {
	return func(next Sink) (Stage, error) {
		eng, err := makeEngine(next)
		if err != nil {
			return nil, err
		}
		if eng == nil {
			return nil, fmt.Errorf("serve: retrieval factory returned nil engine")
		}
		return &Retrieval{Engine: eng}, nil
	}
}

// Submit implements Stage.
func (r *Retrieval) Submit(req *workload.Request) { r.Engine.Submit(req) }

// Name implements Stage.
func (r *Retrieval) Name() string { return "retrieval/" + r.Engine.Name() }

// AvgBatch reports the engine's mean dynamic batch size (Fig. 14).
func (r *Retrieval) AvgBatch() float64 { return r.Engine.AvgBatch() }

// Generation wraps an llm.Cluster as the generation stage; completed
// requests flow to the downstream sink via the cluster's done callback.
type Generation struct {
	Cluster *llm.Cluster
}

// GenerationStage builds the generation stage from a cluster factory.
func GenerationStage(makeCluster func() (*llm.Cluster, error)) Builder {
	return func(next Sink) (Stage, error) {
		cl, err := makeCluster()
		if err != nil {
			return nil, err
		}
		cl.SetCallbacks(nil, next)
		return &Generation{Cluster: cl}, nil
	}
}

// Submit implements Stage.
func (g *Generation) Submit(req *workload.Request) { g.Cluster.Submit(req) }

// Name implements Stage.
func (g *Generation) Name() string { return "generation" }

// GPUs returns the number of GPUs the stage's LLM instances occupy.
func (g *Generation) GPUs(tp int) int { return len(g.Cluster.Instances) * tp }
