package pq

import (
	"testing"

	"vectorliterag/internal/vecmath"
)

// fuzzLUT deterministically derives a LUT, a code block, and a top-k
// size from raw fuzz bytes. The table is built directly (not via
// BuildLUT) so the fuzzer controls every entry; entries are
// non-negative, which is the invariant the early-abandon path relies
// on (prefix sums are monotone).
func fuzzLUT(data []byte) (lut *LUT, codes []byte, k int, ok bool) {
	if len(data) < 3 {
		return nil, nil, 0, false
	}
	m := int(data[0])%12 + 1
	k = int(data[1])%9 + 1
	tab := make([]float32, m*lutStride)
	// Fill the addressable entries from the fuzz bytes, cycling; scale
	// some rows up so abandon bounds trip at different subspace depths.
	body := data[2:]
	for i := range tab {
		b := body[i%len(body)]
		tab[i] = float32(b) * float32(1+i%3)
	}
	lut = &LUT{M: m, K: lutStride, tab: tab}
	nCodes := len(body) / m
	if nCodes == 0 {
		return nil, nil, 0, false
	}
	if nCodes > 200 {
		nCodes = 200
	}
	codes = body[:nCodes*m]
	return lut, codes, k, true
}

// refScan is the naive reference: every candidate fully evaluated with
// Distance and pushed in index order — the semantics ScanCodes'
// unrolling and early abandonment must preserve bit for bit.
func refScan(lut *LUT, codes []byte, push func(i int, d float32)) {
	cs := lut.M
	for i := 0; i*cs < len(codes); i++ {
		push(i, lut.Distance(codes[i*cs:(i+1)*cs]))
	}
}

func neighborsEqual(t *testing.T, got, want []vecmath.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result sizes differ: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("neighbor %d differs: got %+v, want %+v\nall got:  %v\nall want: %v",
				i, got[i], want[i], got, want)
		}
	}
}

// FuzzScanCodes: the unrolled early-abandon block scan must fill the
// collector bit-identically to a full naive evaluation, for any table
// contents, code block, M, and k.
func FuzzScanCodes(f *testing.F) {
	f.Add([]byte("\x03\x02the quick brown fox jumps over the lazy dog"))
	f.Add([]byte("\x07\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("\x0b\x08\xff\xfe\xfd\xfc\xfb\xfa\xf9\xf8\xf7\xf6\xf5\xf4\xf3\xf2\xf1\xf0"))
	f.Fuzz(func(t *testing.T, data []byte) {
		lut, codes, k, ok := fuzzLUT(data)
		if !ok {
			t.Skip()
		}
		const base = 37
		want := vecmath.NewTopK(k)
		refScan(lut, codes, func(i int, d float32) { want.Push(base+i, d) })
		got := vecmath.NewTopK(k)
		lut.ScanCodes(codes, base, got)
		neighborsEqual(t, got.Sorted(), want.Sorted())
	})
}

// fuzzMask derives a positional tombstone bitmap over n candidates
// from the same fuzz bytes that built the table, so the fuzzer steers
// which positions die. The mask is sized exactly ceil(n/64) words —
// the contract the masked scans document.
func fuzzMask(data []byte, n int) []uint64 {
	dead := make([]uint64, (n+63)/64)
	if len(data) == 0 {
		return dead
	}
	for i := 0; i < n; i++ {
		// Kill roughly a third of positions, byte-steered.
		if data[i%len(data)]%3 == 0 {
			dead[uint(i)>>6] |= 1 << (uint(i) & 63)
		}
	}
	return dead
}

func isDead(dead []uint64, i int) bool {
	return dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// FuzzScanCodesMasked: the tombstone-masked block scan must fill the
// collector bit-identically to a naive masked full evaluation — every
// live candidate fully evaluated and pushed in index order, every dead
// one skipped — for any table contents, mask, M, and k.
func FuzzScanCodesMasked(f *testing.F) {
	f.Add([]byte("\x03\x02the quick brown fox jumps over the lazy dog"))
	f.Add([]byte("\x07\x03sixty zippers were quickly picked from the woven jute bag"))
	f.Add([]byte("\x0b\x08\xff\xfe\xfd\xfc\xfb\xfa\xf9\xf8\xf7\xf6\xf5\xf4\xf3\xf2\xf1\xf0"))
	f.Fuzz(func(t *testing.T, data []byte) {
		lut, codes, k, ok := fuzzLUT(data)
		if !ok {
			t.Skip()
		}
		n := len(codes) / lut.M
		dead := fuzzMask(data, n)
		const base = 37
		want := vecmath.NewTopK(k)
		refScan(lut, codes, func(i int, d float32) {
			if !isDead(dead, i) {
				want.Push(base+i, d)
			}
		})
		got := vecmath.NewTopK(k)
		lut.ScanCodesMasked(codes, base, dead, got)
		neighborsEqual(t, got.Sorted(), want.Sorted())
		// An all-zero mask must be indistinguishable from no mask.
		clear(dead)
		want.Reset(k)
		refScan(lut, codes, func(i int, d float32) { want.Push(base+i, d) })
		got.Reset(k)
		lut.ScanCodesMasked(codes, base, dead, got)
		neighborsEqual(t, got.Sorted(), want.Sorted())
	})
}

// FuzzScanCodesIDsMasked: the tombstone-masked inverted-list scan
// (including the M=8 specialized kernel) must match the naive masked
// reference bit for bit.
func FuzzScanCodesIDsMasked(f *testing.F) {
	// M=8 seeds exercise scanIDs8Masked, the specialized hot path.
	f.Add([]byte("\x07\x03pack my box with five dozen liquor jugs"))
	f.Add([]byte("\x07\x01\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f\x10"))
	f.Add([]byte("\x04\x05abcdefghijklmnopqrstuvwxyz0123456789"))
	f.Fuzz(func(t *testing.T, data []byte) {
		lut, codes, k, ok := fuzzLUT(data)
		if !ok {
			t.Skip()
		}
		n := len(codes) / lut.M
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32((i*2654435761 + 11) % 100003)
		}
		dead := fuzzMask(data, n)
		want := vecmath.NewTopK(k)
		refScan(lut, codes, func(i int, d float32) {
			if !isDead(dead, i) {
				want.Push(int(ids[i]), d)
			}
		})
		got := vecmath.NewTopK(k)
		lut.ScanCodesIDsMasked(codes, ids, dead, got)
		neighborsEqual(t, got.Sorted(), want.Sorted())
	})
}

// fuzzSQ deterministically derives a ScalarQuantizer, a query, a code
// block, and a top-k size from raw fuzz bytes. The quantizer is built
// directly (not via TrainSQ) so the fuzzer controls every per-dim
// range, including degenerate and inverted ones — Distance is
// well-defined for all of them, and the abandon path only relies on
// per-dim terms being squares (non-negative).
func fuzzSQ(data []byte) (q *ScalarQuantizer, query []float32, codes []byte, k int, ok bool) {
	if len(data) < 4 {
		return nil, nil, nil, 0, false
	}
	dim := int(data[0])%16 + 1
	k = int(data[1])%9 + 1
	body := data[2:]
	q = &ScalarQuantizer{Dim: dim, min: make([]float32, dim), max: make([]float32, dim)}
	query = make([]float32, dim)
	for d := 0; d < dim; d++ {
		lo := float32(int(body[d%len(body)]) - 128)
		span := float32(body[(d+7)%len(body)]) / 4
		q.min[d] = lo
		q.max[d] = lo + span // span 0 = degenerate dim, also legal
		query[d] = float32(int(body[(d+13)%len(body)])-128) / 8
	}
	nCodes := len(body) / dim
	if nCodes == 0 {
		return nil, nil, nil, 0, false
	}
	if nCodes > 200 {
		nCodes = 200
	}
	codes = body[:nCodes*dim]
	return q, query, codes, k, true
}

// refScanSQ is the naive float reference: every candidate fully
// evaluated with ScalarQuantizer.Distance and pushed in index order —
// the semantics ScanSQ's unrolling and early abandonment must preserve
// bit for bit.
func refScanSQ(q *ScalarQuantizer, query []float32, codes []byte, push func(i int, d float32)) {
	cs := q.Dim
	for i := 0; i*cs < len(codes); i++ {
		push(i, q.Distance(query, codes[i*cs:(i+1)*cs]))
	}
}

// FuzzScanSQ: the early-abandon SQ8 block scan must fill the collector
// bit-identically to a naive full evaluation, for any quantizer
// ranges, query, code block, dim, and k.
func FuzzScanSQ(f *testing.F) {
	f.Add([]byte("\x03\x02the quick brown fox jumps over the lazy dog"))
	f.Add([]byte("\x0f\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("\x0b\x08\xff\xfe\xfd\xfc\xfb\xfa\xf9\xf8\xf7\xf6\xf5\xf4\xf3\xf2\xf1\xf0"))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, query, codes, k, ok := fuzzSQ(data)
		if !ok {
			t.Skip()
		}
		const base = 37
		want := vecmath.NewTopK(k)
		refScanSQ(q, query, codes, func(i int, d float32) { want.Push(base+i, d) })
		got := vecmath.NewTopK(k)
		q.ScanSQ(query, codes, base, got)
		neighborsEqual(t, got.Sorted(), want.Sorted())
	})
}

// FuzzScanSQIDs: the inverted-list SQ8 scan must match the naive
// reference bit for bit.
func FuzzScanSQIDs(f *testing.F) {
	f.Add([]byte("\x07\x03pack my box with five dozen liquor jugs"))
	f.Add([]byte("\x04\x05abcdefghijklmnopqrstuvwxyz0123456789"))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, query, codes, k, ok := fuzzSQ(data)
		if !ok {
			t.Skip()
		}
		n := len(codes) / q.Dim
		ids := make([]int32, n)
		for i := range ids {
			// Non-monotone IDs so ordering bugs cannot hide.
			ids[i] = int32((i*2654435761 + 11) % 100003)
		}
		want := vecmath.NewTopK(k)
		refScanSQ(q, query, codes, func(i int, d float32) { want.Push(int(ids[i]), d) })
		got := vecmath.NewTopK(k)
		q.ScanSQIDs(query, codes, ids, got)
		neighborsEqual(t, got.Sorted(), want.Sorted())
	})
}

// FuzzScanSQMasked: the tombstone-masked SQ8 block scan must fill the
// collector bit-identically to a naive masked full evaluation — every
// live candidate fully evaluated and pushed in index order, every dead
// one skipped — and an all-zero mask must equal no mask.
func FuzzScanSQMasked(f *testing.F) {
	f.Add([]byte("\x03\x02the quick brown fox jumps over the lazy dog"))
	f.Add([]byte("\x07\x03sixty zippers were quickly picked from the woven jute bag"))
	f.Add([]byte("\x0b\x08\xff\xfe\xfd\xfc\xfb\xfa\xf9\xf8\xf7\xf6\xf5\xf4\xf3\xf2\xf1\xf0"))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, query, codes, k, ok := fuzzSQ(data)
		if !ok {
			t.Skip()
		}
		n := len(codes) / q.Dim
		dead := fuzzMask(data, n)
		const base = 37
		want := vecmath.NewTopK(k)
		refScanSQ(q, query, codes, func(i int, d float32) {
			if !isDead(dead, i) {
				want.Push(base+i, d)
			}
		})
		got := vecmath.NewTopK(k)
		q.ScanSQMasked(query, codes, base, dead, got)
		neighborsEqual(t, got.Sorted(), want.Sorted())
		// An all-zero mask must be indistinguishable from no mask.
		clear(dead)
		want.Reset(k)
		refScanSQ(q, query, codes, func(i int, d float32) { want.Push(base+i, d) })
		got.Reset(k)
		q.ScanSQMasked(query, codes, base, dead, got)
		neighborsEqual(t, got.Sorted(), want.Sorted())
	})
}

// FuzzScanSQIDsMasked: the tombstone-masked inverted-list SQ8 scan
// must match the naive masked reference bit for bit.
func FuzzScanSQIDsMasked(f *testing.F) {
	f.Add([]byte("\x07\x03pack my box with five dozen liquor jugs"))
	f.Add([]byte("\x04\x05abcdefghijklmnopqrstuvwxyz0123456789"))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, query, codes, k, ok := fuzzSQ(data)
		if !ok {
			t.Skip()
		}
		n := len(codes) / q.Dim
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32((i*2654435761 + 11) % 100003)
		}
		dead := fuzzMask(data, n)
		want := vecmath.NewTopK(k)
		refScanSQ(q, query, codes, func(i int, d float32) {
			if !isDead(dead, i) {
				want.Push(int(ids[i]), d)
			}
		})
		got := vecmath.NewTopK(k)
		q.ScanSQIDsMasked(query, codes, ids, dead, got)
		neighborsEqual(t, got.Sorted(), want.Sorted())
	})
}

// FuzzScanCodesIDs: the inverted-list scan (including the M=8
// specialized kernel) must match the naive reference bit for bit.
func FuzzScanCodesIDs(f *testing.F) {
	// M=8 seeds exercise scanIDs8, the specialized hot path.
	f.Add([]byte("\x07\x03pack my box with five dozen liquor jugs"))
	f.Add([]byte("\x07\x01\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f\x10"))
	f.Add([]byte("\x04\x05abcdefghijklmnopqrstuvwxyz0123456789"))
	f.Fuzz(func(t *testing.T, data []byte) {
		lut, codes, k, ok := fuzzLUT(data)
		if !ok {
			t.Skip()
		}
		n := len(codes) / lut.M
		ids := make([]int32, n)
		for i := range ids {
			// Non-monotone IDs so ordering bugs cannot hide.
			ids[i] = int32((i*2654435761 + 11) % 100003)
		}
		want := vecmath.NewTopK(k)
		refScan(lut, codes, func(i int, d float32) { want.Push(int(ids[i]), d) })
		got := vecmath.NewTopK(k)
		lut.ScanCodesIDs(codes, ids, got)
		neighborsEqual(t, got.Sorted(), want.Sorted())
	})
}
