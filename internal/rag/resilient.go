package rag

import (
	"fmt"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/des"
	"vectorliterag/internal/fault"
	"vectorliterag/internal/metrics"
	"vectorliterag/internal/retrieval"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/workload"
)

// ResilienceReport is the failure-handling addendum of a resilient
// cluster run: what the storm did, what the router did about it, and
// what it cost.
type ResilienceReport struct {
	// Faults echoes the injected schedule (useful when it was random).
	Faults fault.Schedule
	// Stats counts the router's failure-handling actions.
	Stats serve.ResilienceStats
	// Goodput is SLO-meeting completions per second of arrival window —
	// the headline number degradation arms trade recall to protect.
	Goodput float64
	// Recoveries is, per crash episode, crash instant → completion of
	// the last request failed over off the dead replica (negative when
	// no failover completed).
	Recoveries []time.Duration
}

// runClusterResilient is the failure-aware variant of RunCluster's
// single-timeline path: identical replica pipelines behind a
// ResilientRouter, with the fault schedule installed on the shared
// simulator. It is only entered when opts.resilient() — fault-free runs
// never touch this code, which is what keeps their goldens
// byte-identical.
//
// The run always uses the single shared timeline (never the sharded
// engine): crash failover, hedging, and retries are router↔replica
// conversations that need one event queue. opts.Workers is accepted but
// irrelevant to the schedule by construction.
func runClusterResilient(opts Options, replicas int, policy serve.Policy) (*ClusterResult, error) {
	policy, err := serve.ResolvePolicy(policy)
	if err != nil {
		return nil, err
	}
	if err := opts.Faults.Validate(replicas); err != nil {
		return nil, err
	}
	rcfg := serve.ResilienceConfig{}
	if opts.Resilience != nil {
		rcfg = *opts.Resilience
	}
	rcfg.Policy = policy
	sloTotal, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	prof, err := profileFor(opts)
	if err != nil {
		return nil, err
	}
	cpuModel := costmodel.NewSearchModel(opts.Node.CPU, opts.W.Spec)
	d, err := decide(opts, prof, cpuModel)
	if err != nil {
		return nil, err
	}

	var sim des.Sim
	pool := &workload.Pool{}
	coll := serve.NewCollector()
	// The router settles every completion (collector, release, pool),
	// but it can only be built after the replica pipelines exist — each
	// terminal sink late-binds through this variable.
	var router *serve.ResilientRouter
	reps := make([]*serve.Replica, replicas)
	for i := range reps {
		i := i
		rep := serve.NewReplica()
		retr, gen := stageBuilders(&sim, opts, d, cpuModel, nil)
		pipe, err := serve.Compose(&sim,
			func(req *workload.Request) { router.Complete(i, req) },
			retr, gen)
		if err != nil {
			return nil, err
		}
		rep.Bind(pipe)
		reps[i] = rep
	}
	router, err = serve.NewResilientRouter(&sim, rcfg, reps, coll, pool)
	if err != nil {
		return nil, err
	}
	front, err := serve.Compose(&sim, router.Submit, serve.Admit(coll))
	if err != nil {
		return nil, err
	}

	// Wire the storm: health events hit the router; slowdown episodes
	// hit the affected replica's engines directly.
	fault.Install(&sim, opts.Faults, fault.Hooks{
		Crash:   router.Crash,
		Recover: router.Recover,
		SlowLLM: func(r int, f float64, until des.Time) {
			reps[r].Pipeline().Generation().Cluster.SetSlowdown(f, until)
		},
		SlowRetrieval: func(r int, f float64, until des.Time) {
			if s, ok := reps[r].Pipeline().Retrieval().Engine.(retrieval.Slowdowner); ok {
				s.SetSlowdown(f, until)
			}
		},
	})

	defer installDrift(&sim, opts)()
	arr := arrivalsFor(opts)
	arr.SetPool(pool)
	sec := beginServeSection()
	front.Run(arr, opts.Duration, opts.Drain)
	wall, allocs, bytes := sec.end()

	res := &ClusterResult{
		Result: Result{
			Kind: opts.Kind, Rate: opts.Rate, SLOTotal: sloTotal,
			ServeWall: wall, ServeAllocs: allocs, ServeBytes: bytes,
			Rho: d.rho, PlanBytes: d.planBytes, Mu0: d.mu0, Partition: d.partition,
			Requests:  coll.Requests(),
			Generated: coll.Admitted(),
			Summary:   coll.Summarize(sloTotal, des.Time(opts.Warmup)),
		},
		Policy: policy,
		Resilience: &ResilienceReport{
			Faults:     opts.Faults,
			Stats:      router.Stats(),
			Goodput:    metrics.Goodput(coll.Requests(), sloTotal, des.Time(opts.Warmup), des.Time(opts.Duration)),
			Recoveries: router.Recoveries(),
		},
	}
	var batchSum float64
	routed := 0
	for _, rep := range reps {
		pipe := rep.Pipeline()
		// Per-replica collectors are deliberately absent on this path:
		// retries and hedges would register one logical request with
		// several replica collectors, and superseded (pool-recycled)
		// copies would leave dangling live pointers behind. Per-replica
		// reporting is therefore limited to routing counts.
		rr := ReplicaResult{
			Submitted: rep.Submitted(),
			AvgBatch:  pipe.Retrieval().AvgBatch(),
			LLMGPUs:   pipe.Generation().GPUs(opts.Model.TP),
		}
		res.PerReplica = append(res.PerReplica, rr)
		res.LLMGPUs += rr.LLMGPUs
		batchSum += rr.AvgBatch * float64(rr.Submitted)
		routed += rr.Submitted
	}
	if routed > 0 {
		res.AvgBatch = batchSum / float64(routed)
	}
	return res, nil
}

// String renders the report's counters compactly for logs and tables.
func (r *ResilienceReport) String() string {
	return fmt.Sprintf("goodput=%.2f/s retried=%d failedover=%d hedged=%d hedgewins=%d timedout=%d failed=%d ghosts=%d crashes=%d",
		r.Goodput, r.Stats.Retried, r.Stats.FailedOver, r.Stats.Hedged, r.Stats.HedgeWins, r.Stats.TimedOut, r.Stats.Failed, r.Stats.Ghosts, r.Stats.Crashes)
}
