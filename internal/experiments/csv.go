package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// CSVer is implemented by experiment results that can export their data
// rows as CSV — the output format of the paper's artifact ("latency
// logs are saved under results/<dataset>" as CSV).
type CSVer interface {
	CSV() string
}

func writeCSV(header []string, rows [][]string) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(header)
	_ = w.WriteAll(rows)
	w.Flush()
	return b.String()
}

// CSV exports the Fig. 11 sweep, one row per (dataset, model, system,
// rate) point.
func (r *Fig11Result) CSV() string {
	rows := [][]string{}
	for _, cell := range r.Cells {
		for _, p := range cell.Points {
			rows = append(rows, []string{
				cell.Dataset, cell.Model, string(p.Kind),
				fmt.Sprintf("%.1f", p.Rate),
				fmt.Sprintf("%.4f", p.Att),
				fmt.Sprintf("%.6f", p.TTFTP90.Seconds()),
				fmt.Sprintf("%.6f", p.E2EP90.Seconds()),
				fmt.Sprintf("%.6f", p.Search.Seconds()),
				fmt.Sprintf("%.4f", p.Rho),
			})
		}
	}
	return writeCSV([]string{"dataset", "model", "system", "rate_rps", "attainment",
		"ttft_p90_s", "e2e_p90_s", "search_mean_s", "rho"}, rows)
}

// CSV exports the Fig. 12 breakdown bars.
func (r *Fig12Result) CSV() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset, string(row.Kind),
			fmt.Sprintf("%.1f", row.Rate),
			fmt.Sprintf("%.6f", row.Queueing.Seconds()),
			fmt.Sprintf("%.6f", row.Search.Seconds()),
			fmt.Sprintf("%.6f", row.LLM.Seconds()),
		})
	}
	return writeCSV([]string{"dataset", "system", "rate_rps",
		"queueing_s", "search_s", "llm_s"}, rows)
}

// CSV exports the Fig. 5 access CDFs, one row per cluster rank.
func (r *Fig5Result) CSV() string {
	rows := [][]string{}
	for name, share := range r.Share {
		for i, s := range share {
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%.4f", float64(i+1)/float64(len(share))),
				fmt.Sprintf("%.6f", s),
			})
		}
	}
	return writeCSV([]string{"dataset", "cluster_percentile", "cumulative_share"}, rows)
}

// CSV exports the Fig. 16 sensitivity rows plus Table II.
func (r *Fig16Result) CSV() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", row.SLO.Seconds()*1000),
			string(row.Kind),
			fmt.Sprintf("%.1f", row.Rate),
			fmt.Sprintf("%.6f", row.TTFTP95.Seconds()),
			fmt.Sprintf("%.6f", row.TTFTP90.Seconds()),
		})
	}
	return writeCSV([]string{"slo_search_ms", "system", "rate_rps",
		"ttft_p95_s", "ttft_p90_s"}, rows)
}

// CSV exports the Fig. 17 robustness rows.
func (r *Fig17Result) CSV() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.GPUs), string(row.Kind),
			fmt.Sprintf("%.1f", row.Rate),
			fmt.Sprintf("%.4f", row.Att),
			fmt.Sprintf("%.6f", row.E2EMean.Seconds()),
			fmt.Sprintf("%.4f", row.Rho),
		})
	}
	return writeCSV([]string{"gpus", "system", "rate_rps", "attainment",
		"e2e_mean_s", "rho"}, rows)
}
