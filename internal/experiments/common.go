// Package experiments contains one runner per table and figure of the
// paper's evaluation (§VI). Each runner regenerates the corresponding
// artifact on the simulated substrate — same workloads, same parameter
// sweeps, same metrics — and renders a text table whose rows mirror
// what the paper plots. registry.go is the index of experiment IDs.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/llm"
	"vectorliterag/internal/rag"
	"vectorliterag/internal/workload"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks sweeps and durations for tests and benchmarks; the
	// full setting reproduces the paper's grids.
	Quick bool
	Seed  uint64
}

// DefaultConfig runs experiments at full scale.
func DefaultConfig() Config { return Config{Seed: 1} }

// workload cache: physical index construction dominates experiment
// setup, and every figure reuses the same three datasets.
var wlCache = struct {
	sync.Mutex
	m map[string]*dataset.Workload
}{m: map[string]*dataset.Workload{}}

// WorkloadFor builds (or recalls) the default physical realization of a
// spec.
func WorkloadFor(spec dataset.Spec) (*dataset.Workload, error) {
	key := fmt.Sprintf("%s|%.2f|%.2f|%d", spec.Name, spec.SkewS, spec.QueryNoise, spec.NProbe)
	wlCache.Lock()
	defer wlCache.Unlock()
	if w, ok := wlCache.m[key]; ok {
		return w, nil
	}
	w, err := dataset.Build(spec, dataset.DefaultGen())
	if err != nil {
		return nil, err
	}
	wlCache.m[key] = w
	return w, nil
}

// deployment pairs each model with its node, as in the paper (§V-A:
// Llama3-8B on the L40S node; Qwen3-32B and Llama3-70B on H100s).
type deployment struct {
	Model llm.ModelSpec
	Node  hw.Node
}

func deployments() []deployment {
	return []deployment{
		{llm.Llama3_8B, hw.L40SNode()},
		{llm.Qwen3_32B, hw.H100Node()},
		{llm.Llama3_70B, hw.H100Node()},
	}
}

// ratesFor returns the arrival-rate sweep for a deployment, scaled to
// its measured capacity like the paper's x-axes (which end just past
// the standalone-throughput line).
func ratesFor(node hw.Node, model llm.ModelSpec, quick bool) ([]float64, float64, error) {
	mu, err := rag.BareCapacity(node, model, workload.DefaultShape())
	if err != nil {
		return nil, 0, err
	}
	var fracs []float64
	if quick {
		fracs = []float64{0.5, 0.8, 1.0}
	} else {
		fracs = []float64{0.4, 0.55, 0.7, 0.8, 0.87, 0.93, 0.98, 1.05}
	}
	rates := make([]float64, len(fracs))
	for i, f := range fracs {
		rates[i] = round1(mu * f)
	}
	return rates, mu, nil
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }

// runDuration returns the virtual arrival window per point.
func runDuration(quick bool) time.Duration {
	if quick {
		return 40 * time.Second
	}
	return 120 * time.Second
}

// SweepPoint is one (system, rate) evaluation.
type SweepPoint struct {
	Kind      rag.Kind
	Rate      float64
	Att       float64
	TTFTP90   time.Duration
	TTFTP95   time.Duration
	E2EP90    time.Duration
	E2EMean   time.Duration
	Search    time.Duration // mean search latency
	SearchP90 time.Duration
	Queueing  time.Duration
	Prefill   time.Duration
	AvgBatch  float64
	Rho       float64
	Unserved  int
}

func point(res *rag.Result) SweepPoint {
	s := res.Summary
	return SweepPoint{
		Kind: res.Kind, Rate: res.Rate, Att: s.Attainment,
		TTFTP90: s.TTFT.P90, TTFTP95: s.TTFT.P95,
		E2EP90: s.E2E.P90, E2EMean: s.E2E.Mean,
		Search: s.Breakdown.Search, SearchP90: s.Search.P90,
		Queueing: s.Breakdown.Queueing, Prefill: s.Breakdown.Prefill,
		AvgBatch: res.AvgBatch, Rho: res.Rho, Unserved: s.Unserved,
	}
}

// sweep evaluates each (kind, rate) pair on one deployment/dataset.
func sweep(cfg Config, dep deployment, w *dataset.Workload, kinds []rag.Kind, rates []float64, mutate func(*rag.Options)) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, kind := range kinds {
		for _, rate := range rates {
			opts := rag.Options{
				Node: dep.Node, Model: dep.Model, W: w, Kind: kind,
				Rate: rate, Seed: cfg.Seed, Duration: runDuration(cfg.Quick),
			}
			if mutate != nil {
				mutate(&opts)
			}
			res, err := rag.Run(opts)
			if err != nil {
				return nil, fmt.Errorf("%s @%.1f rps: %w", kind, rate, err)
			}
			out = append(out, point(res))
		}
	}
	return out, nil
}

// table renders aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func ms(d time.Duration) string { return fmt.Sprintf("%.0fms", d.Seconds()*1000) }
func sec(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
