package workload

import (
	"math"
	"testing"
	"time"

	"vectorliterag/internal/des"
)

func countArrivals(t *testing.T, sched Schedule, horizon time.Duration) []des.Time {
	t.Helper()
	w := testWorkload(t)
	g := NewScheduledGenerator(w, sched, DefaultShape(), 42)
	var sim des.Sim
	var at []des.Time
	g.Start(&sim, des.Time(horizon), func(r *Request) { at = append(at, r.ArrivalAt) })
	sim.Run()
	if g.Count() != len(at) {
		t.Fatalf("Count %d != emitted %d", g.Count(), len(at))
	}
	return at
}

func TestScheduleShapes(t *testing.T) {
	ramp := Ramp(10, 30, 60*time.Second)
	if got := ramp.RateAt(0); got != 10 {
		t.Fatalf("ramp at 0 = %v", got)
	}
	if got := ramp.RateAt(30 * time.Second); math.Abs(got-20) > 1e-9 {
		t.Fatalf("ramp midpoint = %v", got)
	}
	if got := ramp.RateAt(2 * time.Minute); got != 30 {
		t.Fatalf("ramp holds at %v", got)
	}
	b := Bursts(5, 50, time.Minute, 10*time.Second)
	if b.RateAt(5*time.Second) != 50 || b.RateAt(30*time.Second) != 5 || b.RateAt(65*time.Second) != 50 {
		t.Fatal("burst phases wrong")
	}
	d := Diurnal(20, 10, 4*time.Minute)
	if got := d.RateAt(time.Minute); math.Abs(got-30) > 1e-9 {
		t.Fatalf("diurnal peak = %v", got)
	}
	if got := d.RateAt(3 * time.Minute); math.Abs(got-10) > 1e-9 {
		t.Fatalf("diurnal trough = %v", got)
	}
	if got := Diurnal(5, 10, time.Minute).RateAt(45 * time.Second); got != 0 {
		t.Fatalf("diurnal should clamp at zero, got %v", got)
	}
	if Constant(7).MaxRate() != 7 || ramp.MaxRate() != 30 || b.MaxRate() != 50 || d.MaxRate() != 30 {
		t.Fatal("max rates wrong")
	}
}

func TestValidateSchedule(t *testing.T) {
	if err := ValidateSchedule(nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
	if err := ValidateSchedule(Constant(0)); err == nil {
		t.Fatal("zero-rate schedule accepted")
	}
	if err := ValidateSchedule(Constant(math.Inf(1))); err == nil {
		t.Fatal("infinite rate accepted")
	}
	if err := ValidateSchedule(Ramp(5, 20, time.Minute)); err != nil {
		t.Fatal(err)
	}
}

// TestThinnedCountsMatchIntegral: over a long horizon, the realized
// arrival count of the thinned process must match the integral of the
// rate function (Poisson mean) within sampling error.
func TestThinnedCountsMatchIntegral(t *testing.T) {
	const horizon = 400 * time.Second
	cases := []struct {
		name  string
		sched Schedule
		mean  float64 // integral of rate over the horizon
	}{
		{"constant", Constant(20), 20 * 400},
		{"ramp", Ramp(10, 30, 400*time.Second), (10 + 30) / 2.0 * 400},
		{"burst", Bursts(10, 40, 100*time.Second, 25*time.Second), (40*25 + 10*75) * 4},
		{"diurnal", Diurnal(20, 10, 100*time.Second), 20 * 400}, // sine integrates to zero over full periods
	}
	for _, tc := range cases {
		got := float64(len(countArrivals(t, tc.sched, horizon)))
		// 5 sigma of a Poisson with this mean.
		tol := 5 * math.Sqrt(tc.mean)
		if math.Abs(got-tc.mean) > tol {
			t.Errorf("%s: %v arrivals, want %v ± %v", tc.name, got, tc.mean, tol)
		}
	}
}

// TestThinnedBurstConcentration: arrivals during burst windows must be
// denser than outside them, in the realized stream and not just the
// rate function.
func TestThinnedBurstConcentration(t *testing.T) {
	const period = 100 * time.Second
	const burstLen = 25 * time.Second
	at := countArrivals(t, Bursts(5, 40, period, burstLen), 400*time.Second)
	inBurst, outBurst := 0, 0
	for _, a := range at {
		if time.Duration(a)%period < burstLen {
			inBurst++
		} else {
			outBurst++
		}
	}
	// Rates 40 vs 5 over a 1:3 duration split → expected ~8:3 ratio.
	if inBurst <= outBurst {
		t.Fatalf("burst windows not denser: %d in vs %d out", inBurst, outBurst)
	}
}

func TestScheduledGeneratorDeterministic(t *testing.T) {
	a := countArrivals(t, Diurnal(15, 10, 90*time.Second), 200*time.Second)
	b := countArrivals(t, Diurnal(15, 10, 90*time.Second), 200*time.Second)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestConstantPathUnchanged: a Generator without a schedule must keep
// its original RNG draw sequence (the serving goldens depend on it).
func TestConstantPathUnchanged(t *testing.T) {
	w := testWorkload(t)
	g := NewGenerator(w, 20, DefaultShape(), 9)
	var sim des.Sim
	n := 0
	g.Start(&sim, des.Time(60*time.Second), func(*Request) { n++ })
	sim.Run()
	if g.Sched != nil {
		t.Fatal("plain generator has a schedule")
	}
	if n < 1000 || n > 1500 {
		t.Fatalf("constant 20 rps over 60s produced %d arrivals", n)
	}
}
