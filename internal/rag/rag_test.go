package rag

import (
	"testing"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/llm"
	"vectorliterag/internal/workload"
)

// sharedW caches the workload across tests in this package (building
// the physical index is the expensive part).
var sharedW *dataset.Workload

func testW(t *testing.T) *dataset.Workload {
	t.Helper()
	if sharedW == nil {
		gc := dataset.GenConfig{NCenters: 64, PerCenter: 64, Dim: 16, PhysNList: 64, PhysNProbe: 8, Templates: 256, Seed: 2}
		w, err := dataset.Build(dataset.Orcas1K, gc)
		if err != nil {
			t.Fatal(err)
		}
		sharedW = w
	}
	return sharedW
}

func baseOpts(t *testing.T, kind Kind, rate float64) Options {
	return Options{
		Node: hw.H100Node(), Model: llm.Qwen3_32B, W: testW(t),
		Kind: kind, Rate: rate, Seed: 1,
		Duration: 60 * time.Second, Warmup: 10 * time.Second, Drain: 90 * time.Second,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("nil workload accepted")
	}
	o := baseOpts(t, CPUOnly, 0)
	if _, err := Run(o); err == nil {
		t.Fatal("zero rate accepted")
	}
	o = baseOpts(t, Kind("bogus"), 10)
	if _, err := Run(o); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestAllSystemsServeTraffic(t *testing.T) {
	for _, kind := range []Kind{CPUOnly, DedGPU, AllGPU, VLiteRAG, HedraRAG} {
		res, err := Run(baseOpts(t, kind, 10))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Generated < 400 {
			t.Fatalf("%s: only %d arrivals in 60s at 10 rps", kind, res.Generated)
		}
		if res.Summary.Unserved > res.Generated/10 {
			t.Fatalf("%s: %d unserved at light load", kind, res.Summary.Unserved)
		}
		if res.Summary.TTFT.P50 <= 0 {
			t.Fatalf("%s: no TTFT measured", kind)
		}
	}
}

func TestTimestampOrderingInvariant(t *testing.T) {
	res, err := Run(baseOpts(t, VLiteRAG, 15))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Requests {
		if r.FirstToken == 0 {
			continue
		}
		if !(r.ArrivalAt <= r.SearchStart && r.SearchStart < r.SearchDone &&
			r.SearchDone <= r.LLMStart && r.LLMStart < r.FirstToken && r.FirstToken < r.Done) {
			t.Fatalf("timestamp ordering violated: %+v", r)
		}
	}
}

func TestVLiteRAGPicksInteriorRho(t *testing.T) {
	res, err := Run(baseOpts(t, VLiteRAG, 15))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho <= 0 || res.Rho >= 0.9 {
		t.Fatalf("vLiteRAG rho = %v, expected an interior partitioning point", res.Rho)
	}
	if res.Partition == nil || !res.Partition.Feasible {
		t.Fatalf("partition diagnostics missing or infeasible: %+v", res.Partition)
	}
	if res.PlanBytes <= 0 || res.PlanBytes >= testW(t).TotalIndexBytes() {
		t.Fatalf("plan bytes = %d", res.PlanBytes)
	}
}

func TestVLiteRAGBeatsCPUOnlyOnSearch(t *testing.T) {
	cpu, err := Run(baseOpts(t, CPUOnly, 15))
	if err != nil {
		t.Fatal(err)
	}
	vl, err := Run(baseOpts(t, VLiteRAG, 15))
	if err != nil {
		t.Fatal(err)
	}
	if vl.Summary.Breakdown.Search >= cpu.Summary.Breakdown.Search {
		t.Fatalf("hybrid search %v not faster than CPU-only %v",
			vl.Summary.Breakdown.Search, cpu.Summary.Breakdown.Search)
	}
	if vl.Summary.Attainment <= cpu.Summary.Attainment {
		t.Fatalf("vLiteRAG attainment %v <= CPU-only %v", vl.Summary.Attainment, cpu.Summary.Attainment)
	}
}

func TestDedGPUReducesLLMCapacity(t *testing.T) {
	res, err := Run(baseOpts(t, DedGPU, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.LLMGPUs >= hw.H100Node().NumGPUs {
		t.Fatalf("DED-GPU left %d GPUs to the LLM", res.LLMGPUs)
	}
}

func TestAttainmentFallsWithRate(t *testing.T) {
	low, err := Run(baseOpts(t, VLiteRAG, 10))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(baseOpts(t, VLiteRAG, 40)) // above capacity
	if err != nil {
		t.Fatal(err)
	}
	if high.Summary.Attainment >= low.Summary.Attainment {
		t.Fatalf("attainment did not fall above capacity: low=%v high=%v",
			low.Summary.Attainment, high.Summary.Attainment)
	}
	if high.Summary.Attainment > 0.3 {
		t.Fatalf("attainment %v too high above capacity", high.Summary.Attainment)
	}
}

func TestDispatcherAblationWiring(t *testing.T) {
	on, err := Run(baseOpts(t, VLiteRAG, 25))
	if err != nil {
		t.Fatal(err)
	}
	o := baseOpts(t, VLiteRAG, 25)
	o.DisableDispatcher = true
	off, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	// Dispatcher should not hurt mean search latency (Fig. 14).
	if on.Summary.Breakdown.Search > off.Summary.Breakdown.Search+time.Millisecond {
		t.Fatalf("dispatcher hurt search latency: on=%v off=%v",
			on.Summary.Breakdown.Search, off.Summary.Breakdown.Search)
	}
}

func TestSLOSearchOverrideChangesRho(t *testing.T) {
	tight := baseOpts(t, VLiteRAG, 15)
	tight.SLOSearch = 100 * time.Millisecond
	loose := baseOpts(t, VLiteRAG, 15)
	loose.SLOSearch = 400 * time.Millisecond
	rt, err := Run(tight)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(loose)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Rho <= rl.Rho {
		t.Fatalf("tighter SLO did not increase coverage: %v vs %v", rt.Rho, rl.Rho)
	}
}

func TestBareCapacityCached(t *testing.T) {
	shape := workload.DefaultShape()
	a, err := BareCapacity(hw.H100Node(), llm.Qwen3_32B, shape)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BareCapacity(hw.H100Node(), llm.Qwen3_32B, shape)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("capacity cache returned different values")
	}
	if a < 20 || a > 60 {
		t.Fatalf("Qwen3-32B capacity %v outside plausible band", a)
	}
}

func TestGenSLOMeasured(t *testing.T) {
	slo, err := GenSLO(hw.H100Node(), llm.Qwen3_32B, workload.DefaultShape())
	if err != nil {
		t.Fatal(err)
	}
	if slo < 50*time.Millisecond || slo > 2*time.Second {
		t.Fatalf("measured gen SLO %v implausible", slo)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(baseOpts(t, VLiteRAG, 20))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseOpts(t, VLiteRAG, 20))
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Attainment != b.Summary.Attainment || a.Summary.TTFT.P90 != b.Summary.TTFT.P90 {
		t.Fatal("identical runs differ")
	}
}
