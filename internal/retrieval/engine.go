// Package retrieval implements the runtime retrieval engines compared
// in the paper's evaluation (§V, §VI):
//
//	CPUOnly   — vanilla Faiss-CPU IVF fast scan; whole batch completes
//	            together.
//	AllGPU    — sharded Faiss-GPU IVF across every GPU
//	            (IndexIVFShards semantics: every shard launches thread
//	            blocks for the full nprobe, resident or not).
//	DedGPU    — Faiss-GPU IVF on dedicated retrieval GPUs; the LLM
//	            keeps the rest.
//	Hybrid    — VectorLiteRAG's distributed pipeline (§IV-B): CPU
//	            coarse quantization, mapping-table routing with probe
//	            pruning, GPU shards for hot clusters, CPU scan for cold
//	            misses, and a dynamic dispatcher that promotes
//	            early-finishing queries.
//	Hedra     — HedraRAG's runtime: hot-cluster caching chosen by
//	            throughput balancing, IndexIVFShards-style unpruned
//	            probing, no dispatcher.
//
// All engines use on-demand dynamic batching (§VI-B): a new batch is
// formed from everything queued the moment the previous search
// completes, so batch size adapts to the arrival rate.
package retrieval

import (
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/workload"
)

// mergeCost is the fixed result merge/re-rank cost added to every
// query's completion (top-k heap merge across CPU and GPU partials).
const mergeCost = 200 * time.Microsecond

// Engine is a retrieval stage: requests go in, and Forward fires for
// each request when its search results are merged. Engines record each
// request's served work-weighted hit rate on Request.HitRate at routing
// time (zero for the CPU-only engine), which is the observation stream
// the adaptive monitor consumes.
type Engine interface {
	Submit(req *workload.Request)
	Name() string
	// AvgBatch reports the mean batch size formed so far (Fig. 14).
	AvgBatch() float64
}

// HotSwapper is the hot-swap hook of the adaptive index update
// (§IV-B3): an engine whose split plan can be replaced while serving.
// While a shard is marked refreshing its clusters divert to the CPU
// path, and SetPlan atomically installs the freshly built plan once its
// shards have loaded. Of the five engines only the hybrid (vLiteRAG)
// runtime supports it.
type HotSwapper interface {
	Engine
	Plan() *splitter.Plan
	SetPlan(*splitter.Plan)
	SetShardRefreshing(shard int, on bool)
}

// LiveCost prices scan work against a live (mutating) corpus overlay:
// the frozen Workload tables plus per-cluster deltas for raw pending
// appends, encoded appends, and unpurged tombstones (see
// internal/ingest.Store). A nil LiveCost keeps engines on the frozen
// Workload path, bit-identical to a build without streaming ingest.
type LiveCost interface {
	ScanBytes(q dataset.QueryID, clusters []int) int64
	ScanBytesAll(q dataset.QueryID) int64
}

// Config carries what every engine needs.
type Config struct {
	Sim      *des.Sim
	W        *dataset.Workload
	CPUModel costmodel.SearchModel
	Forward  func(*workload.Request)
	// Live, when set, overlays streaming-ingest scan costs on W's frozen
	// tables; nil means the corpus is frozen.
	Live LiveCost
	// MaxBatch caps dynamic batch size (default 64, the bound the
	// paper's HedraRAG comparison also uses).
	MaxBatch int
	// NVMe is the node's SSD model, consulted only when a plan carries
	// a precision refinement with NVMe-demoted clusters; the zero value
	// is fine otherwise.
	NVMe hw.NVMe
}

// RecallReporter is implemented by engines that serve mixed-precision
// plans: RecallGain reports the mean modeled per-query recall gain
// (recall points) realized by SQ8-upgraded clusters over the requests
// served so far. Engines serving a plan without a precision refinement
// report 0.
type RecallReporter interface {
	RecallGain() float64
}

// scanBytes prices one query's scan over the given clusters through
// the live overlay when one is installed.
func (c *Config) scanBytes(q dataset.QueryID, clusters []int) int64 {
	if c.Live != nil {
		return c.Live.ScanBytes(q, clusters)
	}
	return c.W.ScanBytes(q, clusters)
}

// scanBytesFull is scanBytes over a query's full probe set.
func (c *Config) scanBytesFull(q dataset.QueryID) int64 {
	if c.Live != nil {
		return c.Live.ScanBytesAll(q)
	}
	return c.W.ScanBytesAll(q)
}

func (c *Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 64
	}
	return c.MaxBatch
}

// batcher implements the shared dynamic-batching queue: subclass
// engines provide run(batch) and call done() when the search pipeline
// can accept the next batch.
//
// Batch slices cycle through a small free list instead of being
// allocated per batch: runBatch implementations return each slice with
// releaseBatch once its requests have been forwarded (steady state
// holds at most two — one in service, one completing). Engines also
// pre-bind their completion callbacks (doneFn, and a forward-one hook
// where they promote queries individually) so the per-batch and
// per-request events schedule through des.Sim without closure
// allocations.
type batcher struct {
	cfg     Config
	queue   []*workload.Request
	busy    bool
	batches int
	total   int
	run     func([]*workload.Request)
	// doneFn / forwardOne / forwardGroup are pre-bound callbacks, for
	// allocation-free scheduling.
	doneFn       func()
	forwardOne   func(any)
	forwardGroup func(any)
	freeGroups   []*fwdGroup
	// scanBuf backs scanBytesAll; per-query scan work is consumed
	// synchronously inside run, so one buffer serves every batch.
	scanBuf []int64
	// freeBatches is the batch-slice free list.
	freeBatches [][]*workload.Request
	// Degraded-bandwidth episode (fault injection): while slowUntil is
	// ahead of the clock, every service interval stretches by
	// slowFactor. Inactive episodes skip the multiply entirely, so
	// fault-free runs stay bit-identical.
	slowFactor float64
	slowUntil  des.Time
}

// SetSlowdown installs a degraded PCIe/HBM bandwidth episode: service
// times stretch by factor until the given virtual instant. A factor
// <= 1 clears it.
func (b *batcher) SetSlowdown(factor float64, until des.Time) {
	b.slowFactor, b.slowUntil = factor, until
}

// slowAt stretches one service interval while a bandwidth episode is
// active; otherwise it returns d untouched.
func (b *batcher) slowAt(d des.Time) des.Time {
	if b.slowFactor > 1 && b.cfg.Sim.Now() < b.slowUntil {
		return des.Time(float64(d) * b.slowFactor)
	}
	return d
}

// slowDur is slowAt over time.Duration operands.
func (b *batcher) slowDur(d time.Duration) time.Duration {
	if b.slowFactor > 1 && b.cfg.Sim.Now() < b.slowUntil {
		return time.Duration(float64(d) * b.slowFactor)
	}
	return d
}

// Slowdowner is implemented by every engine built on the shared
// batcher; the fault layer uses it to deliver bandwidth episodes
// without knowing the concrete engine.
type Slowdowner interface {
	SetSlowdown(factor float64, until des.Time)
}

// degradeProbes sheds the trailing fraction of a query's probe list —
// the graceful-degradation knob the resilient router stamps on
// requests under capacity loss (reduced nprobe ⇒ less scan work, lower
// recall). At least one probe always survives; a zero fraction returns
// the slice untouched.
func degradeProbes(probes []int, degrade float64) []int {
	if degrade <= 0 || len(probes) == 0 {
		return probes
	}
	keep := int(float64(len(probes))*(1-degrade) + 0.5)
	if keep < 1 {
		keep = 1
	}
	if keep > len(probes) {
		keep = len(probes)
	}
	return probes[:keep]
}

// init finishes construction shared by every engine.
func (b *batcher) init(run func([]*workload.Request)) {
	b.run = run
	b.doneFn = b.done
	b.forwardOne = b.forwardOneReq
	b.forwardGroup = b.forwardGroupReqs
}

// forwardOneReq completes one promoted query (dispatcher path); bound
// once as forwardOne so per-request completion events schedule
// allocation-free.
func (b *batcher) forwardOneReq(a any) {
	req := a.(*workload.Request)
	req.SearchDone = b.cfg.Sim.Now()
	b.cfg.Forward(req)
}

// fwdGroup carries the requests of one coalesced completion event;
// the slices recycle through a free list.
type fwdGroup struct {
	reqs []*workload.Request
}

// forwardGroupReqs completes a run of queries whose promotion instants
// coincide (e.g. a GPU-bound batch where the shard kernels dominate
// every query's CPU prefix): one event forwards them in batch order.
// The members' per-query events would have carried consecutive
// sequence numbers — nothing else is scheduled between them — so
// folding them into one event provably preserves the global fire
// order.
func (b *batcher) forwardGroupReqs(a any) {
	g := a.(*fwdGroup)
	now := b.cfg.Sim.Now()
	for _, req := range g.reqs {
		req.SearchDone = now
		b.cfg.Forward(req)
	}
	clear(g.reqs)
	g.reqs = g.reqs[:0]
	b.freeGroups = append(b.freeGroups, g)
}

// dispatchCoalesced schedules the dispatcher-mode completion events
// for a batch: query i promotes at max(cpuDone[i], gpuReady)+mergeCost,
// and runs of *consecutive* queries promoting at the same instant share
// one coalesced event (order-preserving, see forwardGroupReqs). The
// batch slice is fully consumed — events hold only requests or group
// snapshots — so it is released before returning.
func (b *batcher) dispatchCoalesced(batch []*workload.Request, cpuDone []des.Time, gpuReady des.Time) {
	sim := b.cfg.Sim
	n := len(batch)
	for i := 0; i < n; {
		at := cpuDone[i]
		if gpuReady > at {
			at = gpuReady
		}
		at += des.Time(mergeCost)
		j := i + 1
		for j < n {
			aj := cpuDone[j]
			if gpuReady > aj {
				aj = gpuReady
			}
			if aj+des.Time(mergeCost) != at {
				break
			}
			j++
		}
		if j == i+1 {
			sim.AtArg(at, b.forwardOne, batch[i])
		} else {
			sim.AtArg(at, b.forwardGroup, b.takeGroup(batch[i:j]))
		}
		i = j
	}
	b.releaseBatch(batch)
}

// takeGroup snapshots a sub-batch into a recycled group descriptor.
func (b *batcher) takeGroup(reqs []*workload.Request) *fwdGroup {
	var g *fwdGroup
	if k := len(b.freeGroups); k > 0 {
		g = b.freeGroups[k-1]
		b.freeGroups[k-1] = nil
		b.freeGroups = b.freeGroups[:k-1]
	} else {
		g = &fwdGroup{}
	}
	g.reqs = append(g.reqs[:0], reqs...)
	return g
}

func (b *batcher) Submit(req *workload.Request) {
	b.queue = append(b.queue, req)
	b.kick()
}

// takeBatch returns a zero-length batch slice with capacity >= n from
// the free list.
func (b *batcher) takeBatch(n int) []*workload.Request {
	if k := len(b.freeBatches); k > 0 {
		s := b.freeBatches[k-1]
		b.freeBatches[k-1] = nil
		b.freeBatches = b.freeBatches[:k-1]
		if cap(s) >= n {
			return s[:0]
		}
	}
	return make([]*workload.Request, 0, n)
}

// releaseBatch returns a batch slice to the free list once every
// request in it has been forwarded. Entries are cleared so the free
// list does not retain (pooled, recyclable) requests.
func (b *batcher) releaseBatch(batch []*workload.Request) {
	batch = batch[:cap(batch)]
	for i := range batch {
		batch[i] = nil
	}
	b.freeBatches = append(b.freeBatches, batch[:0])
}

func (b *batcher) kick() {
	if b.busy || len(b.queue) == 0 {
		return
	}
	n := len(b.queue)
	if m := b.cfg.maxBatch(); n > m {
		n = m
	}
	batch := append(b.takeBatch(n), b.queue[:n]...)
	b.queue = append(b.queue[:0], b.queue[n:]...)
	b.busy = true
	b.batches++
	b.total += n
	now := b.cfg.Sim.Now()
	for _, req := range batch {
		req.SearchStart = now
	}
	b.run(batch)
}

// done releases the engine for the next batch.
func (b *batcher) done() {
	b.busy = false
	b.kick()
}

func (b *batcher) AvgBatch() float64 {
	if b.batches == 0 {
		return 0
	}
	return float64(b.total) / float64(b.batches)
}

// resize returns (*buf)[:n] zeroed, growing the backing array only when
// capacity is exceeded — the reuse primitive for per-batch work areas.
func resize[T ~int | ~int64](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	s := (*buf)[:n]
	clear(s)
	return s
}

// servedHitRate converts a query's total scan work and its CPU-path
// miss work into the served work-weighted hit rate, clamped to [0,1]
// against the independent truncation of the two byte sums.
func servedHitRate(total, miss int64) float64 {
	if total <= 0 {
		return 0
	}
	hr := 1 - float64(miss)/float64(total)
	if hr < 0 {
		return 0
	}
	if hr > 1 {
		return 1
	}
	return hr
}

// scanBytesAll returns each query's full scan work and the batch total.
// The per-query slice is reused across batches; callers must consume it
// before the next batch forms.
func (b *batcher) scanBytesAll(batch []*workload.Request) (per []int64, total int64) {
	if cap(b.scanBuf) < len(batch) {
		b.scanBuf = make([]int64, len(batch))
	}
	per = b.scanBuf[:len(batch)]
	for i, req := range batch {
		per[i] = b.cfg.scanBytesFull(req.Query)
		total += per[i]
	}
	return per, total
}

// CPUOnly is the Faiss-CPU fast-scan baseline.
type CPUOnly struct {
	batcher
}

// NewCPUOnly constructs the CPU-only engine.
func NewCPUOnly(cfg Config) *CPUOnly {
	e := &CPUOnly{batcher{cfg: cfg}}
	e.init(e.runBatch)
	return e
}

// Name implements Engine.
func (e *CPUOnly) Name() string { return "CPU-Only" }

func (e *CPUOnly) runBatch(batch []*workload.Request) {
	b := len(batch)
	for _, req := range batch {
		req.HitRate = 0 // nothing is GPU-resident
	}
	_, total := e.scanBytesAll(batch)
	t := e.slowDur(e.cfg.CPUModel.CQTime(b)+e.cfg.CPUModel.LUTTime(total, b)) + mergeCost
	e.cfg.Sim.After(t, func() {
		now := e.cfg.Sim.Now()
		for _, req := range batch {
			req.SearchDone = now
			e.cfg.Forward(req)
		}
		e.releaseBatch(batch)
		e.done()
	})
}
