package splitter

// Precision is the per-cluster (tier, codec) refinement layered on a
// Plan by the joint placement x precision optimization: the hottest
// GPU-resident clusters upgraded from PQ to SQ8 codes (more HBM, a
// faster gather-free scan kernel, and a recall gain), and the coldest
// CPU-resident clusters demoted to the modeled NVMe tier (PQ codes
// fetched at page-read latency before the CPU scan). A nil Precision
// on a Plan preserves the classic all-PQ, two-tier placement bit for
// bit everywhere it is consumed.
type Precision struct {
	// SQ marks clusters stored as SQ8 on their GPU shard; only hot
	// (GPU-resident) clusters are ever marked.
	SQ []bool
	// NVMe marks clusters whose PQ codes live on the SSD tier; only
	// cold (CPU-path) clusters are ever marked.
	NVMe []bool
	// Deltas is the per-cluster modeled recall gain (recall points)
	// realized when an SQ-marked cluster is scanned; the engines
	// aggregate it work-weighted into the served recall gain.
	Deltas []float64
	// SQRatio is SQ8 bytes per PQ byte for this corpus
	// (Spec.Dim / Spec.CodeBytes, ~4x).
	SQRatio float64

	SQClusters   int
	NVMeClusters int
	// SQExtraBytes is the additional HBM the SQ upgrades consume beyond
	// the clusters' PQ footprint (already folded into Plan.ShardBytes by
	// AttachPrecision).
	SQExtraBytes int64
	// NVMeBytes is the logical PQ bytes demoted to the SSD tier.
	NVMeBytes int64
	// RecallGain is the planning-time, work-share-weighted estimate of
	// the mean per-query recall gain.
	RecallGain float64
}

// IsSQ reports whether cluster c is stored as SQ8. Safe on nil.
func (p *Precision) IsSQ(c int) bool {
	return p != nil && c >= 0 && c < len(p.SQ) && p.SQ[c]
}

// IsNVMe reports whether cluster c's codes live on the NVMe tier.
// Safe on nil.
func (p *Precision) IsNVMe(c int) bool {
	return p != nil && c >= 0 && c < len(p.NVMe) && p.NVMe[c]
}

// Delta returns cluster c's modeled recall gain when scanned as SQ8.
func (p *Precision) Delta(c int) float64 {
	if p == nil || c < 0 || c >= len(p.Deltas) {
		return 0
	}
	return p.Deltas[c]
}

// AttachPrecision installs the refinement on the plan and folds the SQ
// upgrades' extra bytes into the hosting shards' resident-byte
// accounting — the same ShardBytes the GPU states (and therefore the
// LLM KV pool) see, so upgraded codes are paid for in memory, not just
// in speed. A nil prec detaches, restoring nothing (callers detaching
// must rebuild the plan).
func (pl *Plan) AttachPrecision(prec *Precision) {
	pl.Prec = prec
	if prec == nil {
		return
	}
	for _, c := range pl.HotClusters {
		if !prec.IsSQ(c) {
			continue
		}
		if loc, ok := pl.Mapping[c]; ok {
			pl.ShardBytes[loc.Shard] += int64(float64(pl.W.ClusterBytes(c)) * (prec.SQRatio - 1))
		}
	}
}
