// Package retrieval implements the runtime retrieval engines compared
// in the paper's evaluation (§V, §VI):
//
//	CPUOnly   — vanilla Faiss-CPU IVF fast scan; whole batch completes
//	            together.
//	AllGPU    — sharded Faiss-GPU IVF across every GPU
//	            (IndexIVFShards semantics: every shard launches thread
//	            blocks for the full nprobe, resident or not).
//	DedGPU    — Faiss-GPU IVF on dedicated retrieval GPUs; the LLM
//	            keeps the rest.
//	Hybrid    — VectorLiteRAG's distributed pipeline (§IV-B): CPU
//	            coarse quantization, mapping-table routing with probe
//	            pruning, GPU shards for hot clusters, CPU scan for cold
//	            misses, and a dynamic dispatcher that promotes
//	            early-finishing queries.
//	Hedra     — HedraRAG's runtime: hot-cluster caching chosen by
//	            throughput balancing, IndexIVFShards-style unpruned
//	            probing, no dispatcher.
//
// All engines use on-demand dynamic batching (§VI-B): a new batch is
// formed from everything queued the moment the previous search
// completes, so batch size adapts to the arrival rate.
package retrieval

import (
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/workload"
)

// mergeCost is the fixed result merge/re-rank cost added to every
// query's completion (top-k heap merge across CPU and GPU partials).
const mergeCost = 200 * time.Microsecond

// Engine is a retrieval stage: requests go in, and Forward fires for
// each request when its search results are merged. Engines record each
// request's served work-weighted hit rate on Request.HitRate at routing
// time (zero for the CPU-only engine), which is the observation stream
// the adaptive monitor consumes.
type Engine interface {
	Submit(req *workload.Request)
	Name() string
	// AvgBatch reports the mean batch size formed so far (Fig. 14).
	AvgBatch() float64
}

// HotSwapper is the hot-swap hook of the adaptive index update
// (§IV-B3): an engine whose split plan can be replaced while serving.
// While a shard is marked refreshing its clusters divert to the CPU
// path, and SetPlan atomically installs the freshly built plan once its
// shards have loaded. Of the five engines only the hybrid (vLiteRAG)
// runtime supports it.
type HotSwapper interface {
	Engine
	Plan() *splitter.Plan
	SetPlan(*splitter.Plan)
	SetShardRefreshing(shard int, on bool)
}

// Config carries what every engine needs.
type Config struct {
	Sim      *des.Sim
	W        *dataset.Workload
	CPUModel costmodel.SearchModel
	Forward  func(*workload.Request)
	// MaxBatch caps dynamic batch size (default 64, the bound the
	// paper's HedraRAG comparison also uses).
	MaxBatch int
}

func (c *Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 64
	}
	return c.MaxBatch
}

// batcher implements the shared dynamic-batching queue: subclass
// engines provide run(batch) and call done() when the search pipeline
// can accept the next batch.
type batcher struct {
	cfg     Config
	queue   []*workload.Request
	busy    bool
	batches int
	total   int
	run     func([]*workload.Request)
	// scanBuf backs scanBytesAll; per-query scan work is consumed
	// synchronously inside run, so one buffer serves every batch.
	scanBuf []int64
}

func (b *batcher) Submit(req *workload.Request) {
	b.queue = append(b.queue, req)
	b.kick()
}

func (b *batcher) kick() {
	if b.busy || len(b.queue) == 0 {
		return
	}
	n := len(b.queue)
	if m := b.cfg.maxBatch(); n > m {
		n = m
	}
	batch := make([]*workload.Request, n)
	copy(batch, b.queue[:n])
	b.queue = append(b.queue[:0], b.queue[n:]...)
	b.busy = true
	b.batches++
	b.total += n
	now := b.cfg.Sim.Now()
	for _, req := range batch {
		req.SearchStart = now
	}
	b.run(batch)
}

// done releases the engine for the next batch.
func (b *batcher) done() {
	b.busy = false
	b.kick()
}

func (b *batcher) AvgBatch() float64 {
	if b.batches == 0 {
		return 0
	}
	return float64(b.total) / float64(b.batches)
}

// resize returns (*buf)[:n] zeroed, growing the backing array only when
// capacity is exceeded — the reuse primitive for per-batch work areas.
func resize[T ~int | ~int64](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	s := (*buf)[:n]
	clear(s)
	return s
}

// servedHitRate converts a query's total scan work and its CPU-path
// miss work into the served work-weighted hit rate, clamped to [0,1]
// against the independent truncation of the two byte sums.
func servedHitRate(total, miss int64) float64 {
	if total <= 0 {
		return 0
	}
	hr := 1 - float64(miss)/float64(total)
	if hr < 0 {
		return 0
	}
	if hr > 1 {
		return 1
	}
	return hr
}

// scanBytesAll returns each query's full scan work and the batch total.
// The per-query slice is reused across batches; callers must consume it
// before the next batch forms.
func (b *batcher) scanBytesAll(batch []*workload.Request) (per []int64, total int64) {
	if cap(b.scanBuf) < len(batch) {
		b.scanBuf = make([]int64, len(batch))
	}
	per = b.scanBuf[:len(batch)]
	for i, req := range batch {
		per[i] = b.cfg.W.ScanBytesAll(req.Query)
		total += per[i]
	}
	return per, total
}

// CPUOnly is the Faiss-CPU fast-scan baseline.
type CPUOnly struct {
	batcher
}

// NewCPUOnly constructs the CPU-only engine.
func NewCPUOnly(cfg Config) *CPUOnly {
	e := &CPUOnly{batcher{cfg: cfg}}
	e.run = e.runBatch
	return e
}

// Name implements Engine.
func (e *CPUOnly) Name() string { return "CPU-Only" }

func (e *CPUOnly) runBatch(batch []*workload.Request) {
	b := len(batch)
	for _, req := range batch {
		req.HitRate = 0 // nothing is GPU-resident
	}
	_, total := e.scanBytesAll(batch)
	t := e.cfg.CPUModel.CQTime(b) + e.cfg.CPUModel.LUTTime(total, b) + mergeCost
	e.cfg.Sim.After(t, func() {
		now := e.cfg.Sim.Now()
		for _, req := range batch {
			req.SearchDone = now
			e.cfg.Forward(req)
		}
		e.done()
	})
}
