// Command vliterag regenerates the paper's evaluation artifacts and
// runs ad-hoc serving experiments.
//
// Usage:
//
//	vliterag list                      # registered experiments
//	vliterag run -exp fig11 [-quick]   # regenerate one figure/table
//	vliterag run -exp all  [-quick]    # regenerate everything
//	vliterag serve -system vLiteRAG -dataset orcas1k -rate 30
//	vliterag serve -replicas 2 -policy least-loaded -rate 60
//	vliterag serve -replicas 16 -workers 8 -netdelay 1ms -rate 480
//	    # parallel sharded cluster: N worker goroutines, bit-identical
//	    # schedule for any -workers value
//	vliterag serve -replicas 3 -rate 90 -faults crash@20s:r0:10s \
//	    -retry 2 -timeout-ms 8000 -hedge-ms -1 -degrade
//	    # failure storm with retries, auto-hedging, and graceful
//	    # degradation under the capacity loss
//	vliterag serve -adapt -dataset orcas2k -rate 20 -slo 150ms \
//	    -drift-at 45s -duration 6m     # online adaptation under drift
//	vliterag serve -tenants 3 -tiers gold,silver,bronze -rate 15 \
//	    -rate-pattern burst            # SLO-tiered multi-tenant serving
//	vliterag serve -tenants 3 -shared-queue -rate 15 -rate-pattern burst
//	vliterag serve -tenants 3 -rate 50 -brownout -queue-cap 32 \
//	    -stage-budgets 350ms:600ms     # overload control: bounded
//	    # admission plus the tier-biased quality-shedding ladder
//	vliterag serve -ingest -ingest-rate 4 -delete-rate 1 \
//	    -reencode-every 25s -rate 30  # live-corpus streaming ingest:
//	    # mutations, tombstones, and freshness SLOs on the timeline
//	vliterag build -dataset orcas2k    # offline partitioning only
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	vlr "vectorliterag"
)

// profiler wires the optional -cpuprofile/-memprofile flag pair into a
// subcommand's flag set, so perf work can attach pprof evidence to any
// run/serve/build invocation.
type profiler struct {
	cpu, mem *string
	cpuFile  *os.File
}

func profileFlags(fs *flag.FlagSet) *profiler {
	return &profiler{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// start begins CPU profiling if requested; call stop before exiting.
func (p *profiler) start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// stop flushes both profiles. It is safe to call when profiling was
// never started.
func (p *profiler) stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
		p.cpuFile = nil
	}
	if *p.mem == "" {
		return nil
	}
	f, err := os.Create(*p.mem)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // flush recently freed objects out of the heap profile
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		for _, id := range vlr.Experiments() {
			fmt.Println(id)
		}
	case "run":
		err = runCmd(os.Args[2:])
	case "serve":
		err = serveCmd(os.Args[2:])
	case "build":
		err = buildCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vliterag:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vliterag {list | run -exp <id>|all [-quick] | serve [flags] | build [flags]}")
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	exp := fs.String("exp", "", "experiment id (see `vliterag list`) or 'all'")
	quick := fs.Bool("quick", false, "shrink sweeps for a fast run")
	asCSV := fs.Bool("csv", false, "emit raw data rows as CSV where the experiment supports it")
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exp == "" {
		return fmt.Errorf("missing -exp")
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = vlr.Experiments()
	}
	if err := prof.start(); err != nil {
		return err
	}
	err := func() error {
		for _, id := range ids {
			start := time.Now()
			var out string
			var err error
			if *asCSV {
				out, err = vlr.RunExperimentCSV(id, *quick)
			} else {
				out, err = vlr.RunExperiment(id, *quick)
			}
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, time.Since(start).Seconds(), out)
		}
		return nil
	}()
	if stopErr := prof.stop(); err == nil {
		err = stopErr
	}
	return err
}

func datasetByName(name string) (vlr.Spec, error) {
	switch strings.ToLower(name) {
	case "wikiall", "wiki-all":
		return vlr.WikiAll, nil
	case "orcas1k", "orcas-1k":
		return vlr.Orcas1K, nil
	case "orcas2k", "orcas-2k":
		return vlr.Orcas2K, nil
	}
	return vlr.Spec{}, fmt.Errorf("unknown dataset %q (wikiall|orcas1k|orcas2k)", name)
}

func modelByName(name string) (vlr.ModelSpec, vlr.Node, error) {
	switch strings.ToLower(name) {
	case "llama3-8b", "8b":
		return vlr.Llama3_8B, vlr.L40SNode(), nil
	case "qwen3-32b", "32b":
		return vlr.Qwen3_32B, vlr.H100Node(), nil
	case "llama3-70b", "70b":
		return vlr.Llama3_70B, vlr.H100Node(), nil
	}
	return vlr.ModelSpec{}, vlr.Node{}, fmt.Errorf("unknown model %q (llama3-8b|qwen3-32b|llama3-70b)", name)
}

// ratePattern builds the non-stationary arrival schedule a -rate-pattern
// flag selects, anchored at the nominal -rate.
func ratePattern(pattern string, rate float64, dur time.Duration) (vlr.RateSchedule, error) {
	switch strings.ToLower(pattern) {
	case "", "constant":
		return nil, nil // plain constant-rate Poisson
	case "ramp":
		return vlr.RampRate(rate/2, rate*1.2, dur), nil
	case "burst":
		return vlr.BurstRate(rate, rate*1.5, 60*time.Second, 15*time.Second), nil
	case "diurnal":
		return vlr.DiurnalRate(rate, rate*0.4, dur), nil
	}
	return nil, fmt.Errorf("unknown rate pattern %q (constant|ramp|burst|diurnal)", pattern)
}

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	system := fs.String("system", "vLiteRAG", "CPU-Only|DED-GPU|ALL-GPU|vLiteRAG|HedraRAG")
	ds := fs.String("dataset", "orcas1k", "wikiall|orcas1k|orcas2k")
	model := fs.String("model", "qwen3-32b", "llama3-8b|qwen3-32b|llama3-70b")
	rate := fs.Float64("rate", 30, "arrival rate (req/s; cluster-wide when -replicas > 1)")
	dur := fs.Duration("duration", 120*time.Second, "virtual arrival window")
	seed := fs.Uint64("seed", 1, "random seed")
	replicas := fs.Int("replicas", 1, "independent node pipelines behind the front-end router")
	policy := fs.String("policy", "least-loaded", "cluster routing policy (round-robin|least-loaded)")
	workers := fs.Int("workers", runtime.NumCPU(), "worker goroutines for sharded cluster/tenant runs (wall-clock only; 1 = sequential)")
	netDelay := fs.Duration("netdelay", 0, "modeled front<->replica network transit; >0 selects the parallel sharded engine (default 1ms when -workers > 1)")
	adaptive := fs.Bool("adapt", false, "vLiteRAG with in-loop drift detection and background index rebuilds")
	tenants := fs.Int("tenants", 0, "serve N SLO-tiered tenants sharing the node (joint HBM allocation + fair scheduling)")
	tiers := fs.String("tiers", "gold,silver,bronze", "comma-separated tier per tenant, cycled to -tenants (gold|silver|bronze)")
	sharedQueue := fs.Bool("shared-queue", false, "multi-tenant baseline: one unmetered queue instead of the FairScheduler")
	driftAt := fs.Duration("drift-at", 0, "inject a popularity rotation at this virtual time (0 = no drift)")
	driftRotate := fs.Int("drift-rotate", 0, "rotation size in templates (0 = a third of the template pool)")
	pattern := fs.String("rate-pattern", "constant", "arrival process: constant|ramp|burst|diurnal")
	slo := fs.Duration("slo", 0, "search SLO override (default: dataset's Table-I value)")
	faults := fs.String("faults", "", "scripted failure storm, e.g. crash@20s:r0:10s,straggler@35s:r1:8s:x3 (needs -replicas > 1)")
	retry := fs.Int("retry", 0, "max re-dispatches per request after a timeout or crash (resilient cluster runs)")
	hedgeMS := fs.Int("hedge-ms", 0, "fire a backup copy this many ms after dispatch; -1 derives the delay from the running p95")
	timeoutMS := fs.Int("timeout-ms", 0, "per-attempt deadline in ms; expired attempts retry until -retry is exhausted")
	degrade := fs.Bool("degrade", false, "shed retrieval depth proportionally to lost capacity while replicas are down")
	ingest := fs.Bool("ingest", false, "stream live corpus mutations (inserts + deletes) onto the serving timeline")
	ingestRate := fs.Float64("ingest-rate", 4, "insert rate in vectors/s (with -ingest)")
	deleteRate := fs.Float64("delete-rate", 1, "delete rate in vectors/s (with -ingest)")
	reencodeEvery := fs.Duration("reencode-every", 25*time.Second, "background PQ re-encode cadence (with -ingest)")
	queueCap := fs.Int("queue-cap", 0, "bound each tenant's admission queue, rejecting arrivals past it (with -tenants; 0 = default 64 when -brownout is on)")
	brownout := fs.Bool("brownout", false, "closed-loop overload control: shed retrieval quality (nprobe, rerank depth, SQ8 precision) when a stage overruns its latency budget (with -tenants)")
	stageBudgets := fs.String("stage-budgets", "", "per-stage latency budgets as <retrieval>:<generation>, e.g. 350ms:600ms (with -brownout; default: each tenant's own SLOs)")
	precision := fs.Bool("precision", false, "vLiteRAG joint placement x precision: SQ8-upgrade hot clusters within leftover HBM, demote coldest clusters to the modeled NVMe tier")
	sqBudget := fs.Float64("sq-budget", 0, "SQ8 upgrade budget as a fraction of leftover HBM (with -precision; 0 = default 0.10)")
	nvmeShare := fs.Float64("nvme-share", 0, "coldest access share demoted to NVMe (with -precision; 0 = default 0.02)")
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	timeoutSet, ingestTuned, capSet := false, false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "timeout-ms":
			timeoutSet = true
		case "ingest-rate", "delete-rate", "reencode-every":
			ingestTuned = true
		case "queue-cap":
			capSet = true
		}
	})
	ing := ingestFlags{
		on:            *ingest,
		insertRate:    *ingestRate,
		deleteRate:    *deleteRate,
		reencodeEvery: *reencodeEvery,
		tuned:         ingestTuned,
	}
	bo := brownoutFlags{
		on:          *brownout,
		queueCap:    *queueCap,
		capSet:      capSet,
		budgets:     *stageBudgets,
		tenants:     *tenants,
		sharedQueue: *sharedQueue,
	}
	if err := validateServeFlags(*rate, *replicas, *workers, *timeoutMS, timeoutSet, ing, bo); err != nil {
		return err
	}
	resilience, err := resilienceFromFlags(*faults, *retry, *hedgeMS, *timeoutMS, *degrade, *replicas)
	if err != nil {
		return err
	}
	spec, err := datasetByName(*ds)
	if err != nil {
		return err
	}
	m, node, err := modelByName(*model)
	if err != nil {
		return err
	}
	sched, err := ratePattern(*pattern, *rate, *dur)
	if err != nil {
		return err
	}
	if *adaptive && *replicas > 1 {
		return fmt.Errorf("-adapt serves a single adaptive pipeline; drop -replicas")
	}
	if *adaptive && vlr.System(*system) != vlr.VLiteRAG {
		return fmt.Errorf("-adapt requires the hot-swappable vLiteRAG runtime, not %s", *system)
	}
	if *tenants > 0 && *adaptive {
		return fmt.Errorf("-tenants is its own serving mode; drop -adapt")
	}
	if *ingest && *replicas > 1 {
		return fmt.Errorf("-ingest streams mutations into a single live pipeline; drop -replicas")
	}
	if *ingest && *tenants > 0 {
		return fmt.Errorf("-tenants is its own serving mode; drop -ingest")
	}
	if *precision && vlr.System(*system) != vlr.VLiteRAG {
		return fmt.Errorf("-precision refines the vLiteRAG placement, not %s", *system)
	}
	if (*sqBudget != 0 || *nvmeShare != 0) && !*precision {
		return fmt.Errorf("-sq-budget/-nvme-share tune the -precision refinement; add -precision")
	}
	if *tenants > 0 {
		return serveTenants(*tenants, *tiers, *sharedQueue, spec, m, node, *rate, *dur, *seed, *pattern, *slo,
			*replicas, *workers, *netDelay, vlr.RoutePolicy(*policy), bo, prof)
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer func() {
		if err := prof.stop(); err != nil {
			fmt.Fprintln(os.Stderr, "vliterag:", err)
		}
	}()
	fmt.Printf("building %s workload (trains a real IVF-PQ index)...\n", spec.Name)
	w, err := vlr.NewWorkload(spec)
	if err != nil {
		return err
	}
	var drift []vlr.DriftEvent
	if *driftAt > 0 {
		rot := *driftRotate
		if rot == 0 {
			rot = w.DefaultDriftRotation()
		}
		drift = []vlr.DriftEvent{{At: *driftAt, Rotate: rot}}
		fmt.Printf("drift: popularity rotates by %d templates at t=%v\n", rot, *driftAt)
	}
	so := vlr.ServeOptions{
		Workload: w, System: vlr.System(*system), Rate: *rate,
		Node: node, Model: m, Duration: *dur, Seed: *seed,
		SLOSearch: *slo, Drift: drift, RateSchedule: sched,
		Workers: *workers, NetDelay: *netDelay,
	}
	if *precision {
		so.Precision = &vlr.PrecisionOptions{SQBudgetFrac: *sqBudget, NVMeColdShare: *nvmeShare}
	}
	var rep *vlr.Report
	var perReplica []vlr.ReplicaReport
	var adaptRep *vlr.AdaptiveReport
	var resRep *vlr.ResilienceReport
	var liveRep *vlr.LiveReport
	label := *system
	switch {
	case *ingest:
		// -adapt alongside -ingest selects the drift-compaction arm: the
		// adaptive controller answers drift with a cheap re-encode +
		// tombstone purge, escalating to the full re-partition only past
		// the skew thresholds.
		liveRep, err = vlr.ServeLive(vlr.LiveServeOptions{
			ServeOptions: so,
			Ingest: vlr.LiveIngestOptions{
				InsertRate:    *ingestRate,
				DeleteRate:    *deleteRate,
				ReencodeEvery: *reencodeEvery,
				Compaction:    *adaptive,
			},
		})
		if err != nil {
			return err
		}
		rep = &liveRep.Report
		label = fmt.Sprintf("%s (live ingest)", *system)
		if *adaptive {
			label = fmt.Sprintf("%s (live ingest + compaction)", *system)
		}
	case *adaptive:
		adaptRep, err = vlr.ServeAdaptive(vlr.AdaptiveServeOptions{ServeOptions: so})
		if err != nil {
			return err
		}
		rep = &adaptRep.Report
		label = "vLiteRAG (adaptive)"
	case *replicas > 1:
		cr, err := vlr.ServeCluster(vlr.ClusterOptions{
			ServeOptions: so, Replicas: *replicas, Policy: vlr.RoutePolicy(*policy),
			Faults: *faults, Resilience: resilience,
		})
		if err != nil {
			return err
		}
		rep, perReplica, resRep = &cr.Report, cr.PerReplica, cr.Resilience
		label = fmt.Sprintf("%s x%d (%s)", *system, *replicas, cr.Policy)
	default:
		rep, err = vlr.Serve(so)
		if err != nil {
			return err
		}
	}
	s := rep.Summary
	fmt.Printf("%s | %s | %s @ %.1f req/s (SLO %v)\n", label, spec.Name, m.Name, *rate, rep.SLOTotal)
	fmt.Printf("  SLO attainment  %.3f  (%d requests, %d unserved)\n", s.Attainment, s.N, s.Unserved)
	fmt.Printf("  TTFT            p50 %v  p90 %v  p95 %v\n", s.TTFT.P50, s.TTFT.P90, s.TTFT.P95)
	fmt.Printf("  E2E             mean %v  p90 %v\n", s.E2E.Mean, s.E2E.P90)
	fmt.Printf("  breakdown       queue %v  search %v  llm-wait %v  prefill %v\n",
		s.Breakdown.Queueing, s.Breakdown.Search, s.Breakdown.LLMWait, s.Breakdown.Prefill)
	fmt.Printf("  retrieval       rho %.3f  avg batch %.1f\n", rep.Rho, rep.AvgBatch)
	if *precision {
		fmt.Printf("  precision       %d SQ8 clusters  %d NVMe clusters  recall gain +%.3f pts\n",
			rep.SQClusters, rep.NVMeClusters, 100*rep.RecallGain)
	}
	for i, r := range perReplica {
		if resRep != nil {
			// Resilient runs report per-replica routing only: retries and
			// hedges make per-replica summaries ill-defined.
			fmt.Printf("  replica %d       %d copies routed  avg batch %.1f\n", i, r.Submitted, r.AvgBatch)
			continue
		}
		fmt.Printf("  replica %d       %d requests  attainment %.3f  avg batch %.1f\n",
			i, r.Submitted, r.Summary.Attainment, r.AvgBatch)
	}
	if resRep != nil {
		st := resRep.Stats
		fmt.Printf("  resilience      goodput %.2f req/s  retried %d (failover %d)  hedged %d (wins %d)  timed out %d  failed %d\n",
			resRep.Goodput, st.Retried, st.FailedOver, st.Hedged, st.HedgeWins, st.TimedOut, st.Failed)
		for i, d := range resRep.Recoveries {
			fmt.Printf("  crash %d         time to recover %v\n", i+1, d.Round(time.Millisecond))
		}
	}
	if adaptRep != nil {
		printAdaptive(adaptRep)
	}
	if liveRep != nil {
		printLive(liveRep)
	}
	return nil
}

// printLive renders the ingest-side record of a live-corpus run:
// mutation counts, time-to-searchable, and the freshness timeline.
func printLive(rep *vlr.LiveReport) {
	f := rep.Freshness
	fmt.Printf("  ingest          %d inserts  %d deletes  %d pending raw  %d re-encodes  %d compactions\n",
		f.Inserts, f.Deletes, f.Pending, rep.Reencodes, rep.Compactions)
	fmt.Printf("  freshness       TTS p50 %v  p99 %v  attainment %.3f (SLO %v)\n",
		f.TTS.P50.Round(time.Millisecond), f.TTS.P99.Round(time.Millisecond), f.Attainment, rep.FreshnessSLO)
	fmt.Printf("  drift           size skew %.2f  residual ratio %.2f\n", rep.SizeSkew, rep.ResidualRatio)
	for i, rb := range rep.Rebuilds {
		kind := "rebuild"
		if rb.Compaction {
			kind = "compaction"
		}
		fmt.Printf("  %s %d    triggered %v, done %v\n", kind, i+1,
			time.Duration(rb.TriggeredAt).Round(time.Millisecond),
			time.Duration(rb.SwappedAt).Round(time.Millisecond))
	}
	fmt.Println("  attainment over time (window: requests / freshness):")
	for _, w := range rep.Timeline {
		fmt.Printf("    %-8v att %.3f  fresh %.3f  (%d reqs, %d inserts)\n",
			w.Start, w.Attainment, w.FreshAttainment, w.N, w.Inserts)
	}
}

// serveTenants runs the multi-tenant serving mode: n tenants on one
// shared corpus, tiers cycled from the -tiers list, the total -rate
// split across tenants in proportion to tier weight. A non-constant
// -rate-pattern drives the last (lowest-listed) tenant's arrivals —
// the "bursty bronze neighbor" demo — while the others stay steady.
func serveTenants(n int, tiers string, sharedQueue bool, spec vlr.Spec, m vlr.ModelSpec, node vlr.Node,
	rate float64, dur time.Duration, seed uint64, pattern string, slo time.Duration,
	replicas, workers int, netDelay time.Duration, policy vlr.RoutePolicy, bo brownoutFlags, prof *profiler) error {
	if strings.TrimSpace(tiers) == "" {
		return fmt.Errorf("-tiers is empty")
	}
	names := strings.Split(tiers, ",")
	if err := prof.start(); err != nil {
		return err
	}
	defer func() {
		if err := prof.stop(); err != nil {
			fmt.Fprintln(os.Stderr, "vliterag:", err)
		}
	}()
	fmt.Printf("building %s workload (trains a real IVF-PQ index)...\n", spec.Name)
	w, err := vlr.NewWorkload(spec)
	if err != nil {
		return err
	}
	specs := make([]vlr.TenantSpec, n)
	totalWeight := 0
	parsed := make([]vlr.Tier, n)
	for i := 0; i < n; i++ {
		tier, err := vlr.ParseTier(strings.TrimSpace(names[i%len(names)]))
		if err != nil {
			return err
		}
		parsed[i] = tier
		totalWeight += tier.Weight()
	}
	for i := 0; i < n; i++ {
		share := rate * float64(parsed[i].Weight()) / float64(totalWeight)
		specs[i] = vlr.TenantSpec{
			Name:      fmt.Sprintf("%s-%d", parsed[i], i),
			Tier:      parsed[i],
			Workload:  w,
			Rate:      share,
			SLOSearch: slo,
		}
	}
	// The rate pattern drives only the last tenant, re-anchored at that
	// tenant's own share so its baseline matches what the joint
	// allocator provisioned it for. The burst shape is the exception:
	// its peak stays relative to the *total* rate, because the scenario
	// it exists for is a noisy neighbor bursting past the node's
	// provisioning, not a tenant fluctuating within its own share.
	share := specs[n-1].Rate
	var sched vlr.RateSchedule
	if strings.EqualFold(pattern, "burst") {
		sched = vlr.BurstRate(share, rate*1.5, 60*time.Second, 15*time.Second)
	} else {
		var err error
		sched, err = ratePattern(pattern, share, dur)
		if err != nil {
			return err
		}
	}
	if sched != nil {
		specs[n-1].RateSchedule = sched
	}
	mto := vlr.MultiTenantServeOptions{
		Tenants: specs, Node: node, Model: m,
		Duration: dur, Seed: seed, SharedQueue: sharedQueue,
	}
	if bo.on || bo.capSet {
		ov := &vlr.OverloadOptions{QueueCap: bo.queueCap, Brownout: bo.on}
		if bo.budgets != "" {
			// Validated in validateServeFlags; parse errors cannot reach here.
			ov.RetrievalBudget, ov.GenerationBudget, _ = parseStageBudgets(bo.budgets)
		}
		mto.Overload = ov
	}
	if replicas > 1 {
		mto.Replicas, mto.Policy = replicas, policy
		mto.Workers, mto.NetDelay = workers, netDelay
	}
	rep, err := vlr.ServeTenants(mto)
	if err != nil {
		return err
	}
	mode := "fair-scheduled"
	if rep.SharedQueue {
		mode = "shared-queue baseline"
	}
	if rep.Replicas > 1 {
		mode = fmt.Sprintf("%s, x%d replicas, %d workers", mode, rep.Replicas, rep.Workers)
	}
	fmt.Printf("%d tenants (%s) | %s | %s @ %.1f req/s total\n", n, mode, spec.Name, m.Name, rate)
	for _, tr := range rep.Tenants {
		met := "MISS"
		if tr.Met {
			met = "met "
		}
		fmt.Printf("  %-10s %-6s rate %5.1f  rho %.3f  attainment %.3f (target %.2f %s)  TTFT p90 %v  peak queue %d",
			tr.Name, tr.Tier, tr.Rate, tr.Alloc.Rho, tr.Summary.Attainment, tr.Target, met,
			tr.Summary.TTFT.P90, tr.PeakQueue)
		if rep.Overload != nil {
			fmt.Printf("  rejected %d", tr.Rejected)
		}
		fmt.Println()
	}
	if ov := rep.Overload; ov != nil {
		fmt.Printf("  overload: queue cap %d  rejected %d total", ov.QueueCap, ov.RejectedTotal)
		if ov.Brownout {
			fmt.Printf("  brownout max level %d  %.0f%% of run browned out  mean shed %.2f",
				ov.MaxLevel, 100*ov.BrownoutShare, ov.MeanShed)
		}
		fmt.Println()
	}
	fmt.Printf("  aggregate attainment %.3f  Jain fairness %.3f\n", rep.Attainment, rep.Fairness)
	fmt.Printf("  HBM: index budget %.1f GB, used %.1f GB; LLM throughput %.1f -> %.1f req/s\n",
		float64(rep.BudgetBytes)/1e9, float64(rep.UsedBytes)/1e9, rep.Mu0, rep.MuLLM)
	return nil
}

// printAdaptive renders the control-plane record of an adaptive run.
func printAdaptive(rep *vlr.AdaptiveReport) {
	fmt.Printf("  expected hit    %.3f\n", rep.ExpectedHitRate)
	if len(rep.Rebuilds) == 0 && rep.Pending == nil {
		fmt.Println("  rebuilds        none triggered")
	}
	if p := rep.Pending; p != nil {
		// Timing prices stages as they are reached, so Total() here is
		// only the elapsed stages — report it as a lower bound.
		fmt.Printf("  rebuild         triggered %v, still in flight at run end (>= %v of stages priced); lengthen -duration\n",
			time.Duration(p.TriggeredAt).Round(time.Millisecond), p.Timing.Total().Round(time.Millisecond))
	}
	for i, rb := range rep.Rebuilds {
		if rb.Aborted != "" {
			fmt.Printf("  rebuild %d       triggered %v, ABORTED (%s)\n",
				i+1, time.Duration(rb.TriggeredAt).Round(time.Millisecond), rb.Aborted)
			continue
		}
		fmt.Printf("  rebuild %d       triggered %v, swapped %v (profile %v + algo %v + split %v + load %v); rho %.3f -> %.3f\n",
			i+1, time.Duration(rb.TriggeredAt).Round(time.Millisecond),
			time.Duration(rb.SwappedAt).Round(time.Millisecond),
			rb.Timing.Profiling.Round(time.Millisecond), rb.Timing.Algorithm.Round(time.Millisecond),
			rb.Timing.Splitting.Round(time.Millisecond), rb.Timing.Loading.Round(time.Millisecond),
			rb.OldRho, rb.NewRho)
	}
	fmt.Println("  attainment over time (window: attainment / mean hit rate):")
	for _, w := range rep.Timeline {
		fmt.Printf("    %-8v att %.3f  hit %.3f  (%d reqs)\n", w.Start, w.Attainment, w.MeanHitRate, w.N)
	}
}

func buildCmd(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	ds := fs.String("dataset", "orcas1k", "wikiall|orcas1k|orcas2k")
	model := fs.String("model", "qwen3-32b", "llama3-8b|qwen3-32b|llama3-70b")
	slo := fs.Duration("slo", 0, "search SLO (default: dataset's Table-I value)")
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := datasetByName(*ds)
	if err != nil {
		return err
	}
	m, node, err := modelByName(*model)
	if err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer func() {
		if err := prof.stop(); err != nil {
			fmt.Fprintln(os.Stderr, "vliterag:", err)
		}
	}()
	w, err := vlr.NewWorkload(spec)
	if err != nil {
		return err
	}
	sys, err := vlr.BuildSystem(vlr.SystemOptions{
		Workload: w, Node: node, Model: m, SLOSearch: *slo, Seed: 1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("latency-bounded partitioning for %s + %s:\n", spec.Name, m.Name)
	fmt.Printf("  rho            %.3f of clusters (%.2f GB on GPUs)\n", sys.Rho, float64(sys.PlanBytes)/1e9)
	fmt.Printf("  planned batch  %d (mu0 %.1f req/s, tau_s %v)\n",
		sys.Partition.ExpectedBatch, sys.Mu0, sys.Partition.TauS)
	fmt.Printf("  hit rates      mean %.3f, batch-min %.3f\n", sys.MeanHitRate, sys.TailHitRate)
	fmt.Printf("  feasible       %v (converged in %d iterations)\n", sys.Partition.Feasible, sys.Partition.Iterations)
	fmt.Printf("  rebuild cycle  profiling %v + algorithm %v + splitting %v + loading %v = %v\n",
		sys.Rebuild.Profiling.Round(time.Millisecond), sys.Rebuild.Algorithm.Round(time.Millisecond),
		sys.Rebuild.Splitting.Round(time.Millisecond), sys.Rebuild.Loading.Round(time.Millisecond),
		sys.Rebuild.Total().Round(time.Millisecond))
	for g, bytes := range sys.Plan.ShardBytes {
		fmt.Printf("  shard %d        %d clusters, %.2f GB\n", g, len(sys.Plan.Shards[g]), float64(bytes)/1e9)
	}
	return nil
}
