// Drift adaptation: the paper's §IV-B3 story inside ONE serving run.
// A hybrid plan is built for the current query distribution; mid-run,
// the popular queries shift. The static plan keeps serving yesterday's
// hot set from the GPUs and pays for every miss on the CPU. The
// adaptive controller notices — windowed SLO attainment drops while
// observed hit rates diverge from the model — and rebuilds in the
// background: re-profile, re-partition (Algorithm 1), re-split, reload
// shards over PCIe (mid-reload queries divert to the CPU path), then
// swap atomically. Attainment recovers before the run ends.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	vlr "vectorliterag"
)

func main() {
	quick := flag.Bool("quick", false, "shorter run for smoke tests")
	flag.Parse()

	fmt.Println("building ORCAS-2K workload (trains a real IVF-PQ index)...")
	w, err := vlr.NewWorkload(vlr.Orcas2K)
	if err != nil {
		log.Fatal(err)
	}

	duration := 6 * time.Minute
	if *quick {
		duration = 4 * time.Minute
	}
	rot := w.DefaultDriftRotation()
	opts := vlr.ServeOptions{
		Workload: w, System: vlr.VLiteRAG, Rate: 20, Seed: 1,
		SLOSearch: 150 * time.Millisecond, Duration: duration,
		Drift: []vlr.DriftEvent{{At: 45 * time.Second, Rotate: rot}},
	}
	fmt.Printf("drift trace: popularity rotates by %d templates at t=45s\n\n", rot)

	// Arm 1: the static plan, decided once before the drift.
	static, err := vlr.Serve(opts)
	if err != nil {
		log.Fatal(err)
	}
	// Arm 2: the same trace with the online controller attached.
	adaptive, err := vlr.ServeAdaptive(vlr.AdaptiveServeOptions{ServeOptions: opts})
	if err != nil {
		log.Fatal(err)
	}

	// Annotation windows follow the report's own bucket width.
	bucket := 30 * time.Second
	if len(adaptive.Timeline) > 1 {
		bucket = adaptive.Timeline[1].Start - adaptive.Timeline[0].Start
	}
	fmt.Printf("%-8s  %-22s  %-22s\n", "", "static plan", "adaptive")
	fmt.Printf("%-8s  %-10s %-10s  %-10s %-10s\n", "window", "attainment", "hit rate", "attainment", "hit rate")
	for i, aw := range adaptive.Timeline {
		stAtt, stHit := 0.0, 0.0
		if i < len(static.Timeline) {
			stAtt, stHit = static.Timeline[i].Attainment, static.Timeline[i].MeanHitRate
		}
		note := ""
		for _, rb := range adaptive.Rebuilds {
			if in(rb.TriggeredAt, aw.Start, bucket) {
				note += "  <- drift detected, rebuild starts"
			}
			if rb.SwappedAt > 0 && in(rb.SwappedAt, aw.Start, bucket) {
				note += "  <- new plan swapped in"
			}
		}
		fmt.Printf("%-8v  %-10.3f %-10.3f  %-10.3f %-10.3f%s\n",
			aw.Start, stAtt, stHit, aw.Attainment, aw.MeanHitRate, note)
	}

	fmt.Println("\nbackground rebuild cycle (virtual time, served throughout):")
	for _, rb := range adaptive.Rebuilds {
		fmt.Printf("  profiling %v + algorithm %v + splitting %v + loading %v = %v\n",
			rb.Timing.Profiling.Round(time.Millisecond), rb.Timing.Algorithm.Round(time.Millisecond),
			rb.Timing.Splitting.Round(time.Millisecond), rb.Timing.Loading.Round(time.Millisecond),
			rb.Timing.Total().Round(time.Millisecond))
		fmt.Printf("  coverage rho %.3f -> %.3f; expected hit rate %.3f -> %.3f\n",
			rb.OldRho, rb.NewRho, rb.OldExpected, rb.NewExpected)
	}

	fmt.Printf("\noverall attainment: static %.3f, adaptive %.3f\n",
		static.Summary.Attainment, adaptive.Summary.Attainment)
	if len(adaptive.Rebuilds) > 0 && adaptive.Summary.Attainment > static.Summary.Attainment {
		fmt.Println("the controller detected the drift, rebuilt in the background, and recovered within the run. ✓")
	}
}

// in reports whether the instant t falls inside the window of the given
// width starting at start.
func in(t int64, start, width time.Duration) bool {
	return time.Duration(t) >= start && time.Duration(t) < start+width
}
