package stats

import (
	"fmt"
	"sort"
)

// PiecewiseLinear maps a scalar x to an interpolated y over a set of
// knots. The paper models CPU search latency as a piecewise-linear
// function of batch size (Fig. 8 left): steps appear where the runtime
// transitions from single-threaded to multi-threaded execution, so a
// single affine fit would misestimate small batches badly.
//
// Evaluation clamps below the first knot and extrapolates linearly past
// the last knot using the final segment's slope, which is the correct
// behaviour for latency curves that become bandwidth-bound (linear) at
// large batch sizes.
type PiecewiseLinear struct {
	xs, ys []float64
}

// NewPiecewiseLinear builds a model from knot coordinates. Knots are
// sorted by x; duplicate x values are rejected. At least two knots are
// required.
func NewPiecewiseLinear(xs, ys []float64) (*PiecewiseLinear, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: piecewise knots mismatched: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("stats: piecewise needs >=2 knots, got %d", len(xs))
	}
	type knot struct{ x, y float64 }
	ks := make([]knot, len(xs))
	for i := range xs {
		ks[i] = knot{xs[i], ys[i]}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].x < ks[j].x })
	p := &PiecewiseLinear{xs: make([]float64, len(ks)), ys: make([]float64, len(ks))}
	for i, k := range ks {
		if i > 0 && k.x == ks[i-1].x {
			return nil, fmt.Errorf("stats: duplicate piecewise knot x=%v", k.x)
		}
		p.xs[i], p.ys[i] = k.x, k.y
	}
	return p, nil
}

// Eval returns the interpolated value at x.
func (p *PiecewiseLinear) Eval(x float64) float64 {
	n := len(p.xs)
	if x <= p.xs[0] {
		return p.ys[0]
	}
	if x >= p.xs[n-1] {
		// Extrapolate with the last segment's slope.
		slope := (p.ys[n-1] - p.ys[n-2]) / (p.xs[n-1] - p.xs[n-2])
		return p.ys[n-1] + slope*(x-p.xs[n-1])
	}
	i := sort.SearchFloat64s(p.xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := p.xs[i-1], p.xs[i]
	y0, y1 := p.ys[i-1], p.ys[i]
	frac := (x - x0) / (x1 - x0)
	return y0 + frac*(y1-y0)
}

// Knots returns copies of the knot coordinates.
func (p *PiecewiseLinear) Knots() (xs, ys []float64) {
	return append([]float64(nil), p.xs...), append([]float64(nil), p.ys...)
}

// InverseMonotone solves Eval(x) = y for x assuming the model is
// non-decreasing, by bisection over [xs[0], hi]. Returns ok=false if y
// is below the model's minimum.
func (p *PiecewiseLinear) InverseMonotone(y, hi float64) (float64, bool) {
	if y < p.ys[0] {
		return 0, false
	}
	lo := p.xs[0]
	if p.Eval(hi) < y {
		return hi, false
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if p.Eval(mid) < y {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

// FitPiecewiseLinear builds a model directly from sample points (one
// knot per unique x, averaging duplicate x observations). It is how the
// profiler turns measured (batch size, latency) pairs into a model.
func FitPiecewiseLinear(xs, ys []float64) (*PiecewiseLinear, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, fmt.Errorf("stats: fit needs matching non-empty samples")
	}
	sum := map[float64]float64{}
	cnt := map[float64]int{}
	for i, x := range xs {
		sum[x] += ys[i]
		cnt[x]++
	}
	ux := make([]float64, 0, len(sum))
	for x := range sum {
		ux = append(ux, x)
	}
	sort.Float64s(ux)
	uy := make([]float64, len(ux))
	for i, x := range ux {
		uy[i] = sum[x] / float64(cnt[x])
	}
	if len(ux) == 1 {
		// Degenerate: flat model.
		ux = append(ux, ux[0]+1)
		uy = append(uy, uy[0])
	}
	return NewPiecewiseLinear(ux, uy)
}
