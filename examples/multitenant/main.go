// Multi-tenant SLO-tiered serving: three tenants — a steady gold
// tenant on ORCAS-1K, a steady silver tenant on Wiki-All, and a bronze
// tenant that bursts to well past node capacity — share one node's
// HBM, CPU, and LLM. The joint allocator (Algorithm 1 generalized to N
// tenants) splits the GPU index budget by marginal
// SLO-attainment-per-byte with tier weights and per-tenant floors; the
// FairScheduler meters admission with weighted round-robin, tier-aware
// preemption ordering, and per-tenant slot caps.
//
// The experiment here is the isolation A/B: the same tenants, the same
// allocation, and the same arrival traces served twice — once through
// the FairScheduler and once through a single shared queue. Under the
// shared queue the bronze burst floods the common path and gold's TTFT
// blows through its budget; under the FairScheduler the surplus waits
// in bronze's own queue and gold holds its tier target.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	vlr "vectorliterag"
)

func main() {
	quick := flag.Bool("quick", false, "shorter run for smoke tests")
	flag.Parse()

	fmt.Println("building ORCAS-1K and Wiki-All workloads (trains real IVF-PQ indexes)...")
	goldW, err := vlr.NewWorkload(vlr.Orcas1K)
	if err != nil {
		log.Fatal(err)
	}
	silverW, err := vlr.NewWorkload(vlr.WikiAll)
	if err != nil {
		log.Fatal(err)
	}

	duration := 4 * time.Minute
	if *quick {
		duration = 2 * time.Minute
	}
	tenants := []vlr.TenantSpec{
		{Name: "gold", Tier: vlr.GoldTier, Workload: goldW, Rate: 9,
			SLOSearch: 350 * time.Millisecond},
		{Name: "silver", Tier: vlr.SilverTier, Workload: silverW, Rate: 3,
			SLOSearch: 500 * time.Millisecond},
		// The noisy neighbor: 2.5 req/s baseline, bursting to 45 req/s
		// (~1.5x node capacity) for 15s of every minute.
		{Name: "bronze", Tier: vlr.BronzeTier, Workload: goldW, Rate: 2.5,
			SLOSearch:    300 * time.Millisecond,
			RateSchedule: vlr.BurstRate(2.5, 45, time.Minute, 15*time.Second)},
	}

	fmt.Printf("\nbronze bursts to 45 req/s for 15s of every minute; %v of traffic\n\n", duration)
	for _, sharedQueue := range []bool{false, true} {
		rep, err := vlr.ServeTenants(vlr.MultiTenantServeOptions{
			Tenants: tenants, Duration: duration, Seed: 1, SharedQueue: sharedQueue,
		})
		if err != nil {
			log.Fatal(err)
		}
		mode := "FairScheduler (weighted round-robin, tier preemption, per-tenant caps)"
		if sharedQueue {
			mode = "shared-queue baseline (no admission metering)"
		}
		fmt.Println(mode)
		for _, tr := range rep.Tenants {
			verdict := "MISSED"
			if tr.Met {
				verdict = "met"
			}
			fmt.Printf("  %-7s attainment %.3f vs target %.2f (%s)  TTFT p90 %-12v peak queue %d\n",
				tr.Name, tr.Summary.Attainment, tr.Target, verdict, tr.Summary.TTFT.P90, tr.PeakQueue)
		}
		fmt.Printf("  Jain fairness %.3f; index HBM %.1f GB of %.1f GB budget\n\n",
			rep.Fairness, float64(rep.UsedBytes)/1e9, float64(rep.BudgetBytes)/1e9)
	}
	fmt.Println("the allocation is identical in both runs — only the admission policy differs.")
}
