package update

import (
	"testing"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/splitter"
)

func TestMonitorNoDriftNoTrigger(t *testing.T) {
	m := NewMonitor(MonitorConfig{WindowRequests: 100, SLOThreshold: 0.9, HitRateDivergence: 0.1}, 0.8)
	for i := 0; i < 500; i++ {
		if m.Record(0.8, true) {
			t.Fatal("healthy traffic triggered an update")
		}
	}
	if m.Triggers() != 0 {
		t.Fatalf("triggers = %d", m.Triggers())
	}
}

func TestMonitorDriftTriggers(t *testing.T) {
	m := NewMonitor(MonitorConfig{WindowRequests: 100, SLOThreshold: 0.9, HitRateDivergence: 0.1}, 0.8)
	fired := false
	// Observed hit rate collapses to 0.4 and SLO attainment to ~0.5.
	for i := 0; i < 100; i++ {
		if m.Record(0.4, i%2 == 0) {
			fired = true
		}
	}
	if !fired {
		t.Fatal("drift did not trigger within one window")
	}
	if m.Triggers() != 1 {
		t.Fatalf("triggers = %d", m.Triggers())
	}
}

func TestMonitorSLOAloneInsufficient(t *testing.T) {
	// Both conditions must hold (paper: attainment below threshold AND
	// hit rates diverging): bad SLO with on-model hit rates means the
	// bottleneck is elsewhere, so no index rebuild.
	m := NewMonitor(MonitorConfig{WindowRequests: 100, SLOThreshold: 0.9, HitRateDivergence: 0.1}, 0.8)
	for i := 0; i < 300; i++ {
		if m.Record(0.8, false) {
			t.Fatal("SLO misses without hit-rate drift triggered a rebuild")
		}
	}
}

func TestMonitorDivergenceAloneInsufficient(t *testing.T) {
	// The mirror case: hit rates far off the model but every request
	// meeting its SLO means the plan is stale yet harmless — rebuilding
	// would spend a cycle for no attainment gain.
	m := NewMonitor(MonitorConfig{WindowRequests: 100, SLOThreshold: 0.9, HitRateDivergence: 0.1}, 0.8)
	for i := 0; i < 300; i++ {
		if m.Record(0.3, true) {
			t.Fatal("hit-rate divergence with healthy SLOs triggered a rebuild")
		}
	}
	if m.Triggers() != 0 {
		t.Fatalf("triggers = %d", m.Triggers())
	}
}

func TestMonitorWindowResetDiscardsPartial(t *testing.T) {
	m := NewMonitor(MonitorConfig{WindowRequests: 100, SLOThreshold: 0.9, HitRateDivergence: 0.1}, 0.8)
	// 99 drifting observations — one short of a window — then an
	// explicit reset: the poison must not carry into the next window.
	for i := 0; i < 99; i++ {
		if m.Record(0.3, false) {
			t.Fatal("triggered before the window closed")
		}
	}
	if m.Window() != 99 {
		t.Fatalf("window holds %d requests, want 99", m.Window())
	}
	m.ResetWindow()
	if m.Window() != 0 {
		t.Fatalf("window not cleared: %d", m.Window())
	}
	// A fresh window of healthy traffic closes clean.
	for i := 0; i < 100; i++ {
		if m.Record(0.8, true) {
			t.Fatal("healthy window after reset triggered")
		}
	}
	if m.WindowsClosed() != 1 {
		t.Fatalf("windows closed = %d, want 1 (the reset window must not count)", m.WindowsClosed())
	}
}

func TestMonitorSetExpectedSuppressesRetrigger(t *testing.T) {
	// After a plan swap the observed hit rate settles at a new level.
	// Re-anchoring the expectation must stop the monitor from treating
	// the new normal as divergence, even while attainment is still
	// recovering from the backlog.
	m := NewMonitor(MonitorConfig{WindowRequests: 100, SLOThreshold: 0.9, HitRateDivergence: 0.1}, 0.8)
	fired := false
	for i := 0; i < 100; i++ {
		if m.Record(0.4, i%2 == 0) {
			fired = true
		}
	}
	if !fired {
		t.Fatal("drift window did not trigger")
	}
	// The swap: new plan serves hit rates near 0.45; expectation follows.
	m.SetExpected(0.45)
	m.ResetWindow()
	for i := 0; i < 400; i++ {
		// Attainment still poor while the queue drains, but hit rates are
		// on-model for the new plan: no re-trigger.
		if m.Record(0.44, i%3 != 0) {
			t.Fatal("on-model window after SetExpected re-triggered")
		}
	}
	if m.Triggers() != 1 {
		t.Fatalf("triggers = %d, want 1", m.Triggers())
	}
	if m.Expected() != 0.45 {
		t.Fatalf("expected = %v", m.Expected())
	}
}

func TestMonitorWindowResets(t *testing.T) {
	m := NewMonitor(MonitorConfig{WindowRequests: 50, SLOThreshold: 0.9, HitRateDivergence: 0.1}, 0.8)
	// One drifting window, then healthy windows: only one trigger.
	for i := 0; i < 50; i++ {
		m.Record(0.3, false)
	}
	for i := 0; i < 200; i++ {
		if m.Record(0.8, true) {
			t.Fatal("healthy window after reset triggered")
		}
	}
	if m.Triggers() != 1 {
		t.Fatalf("triggers = %d", m.Triggers())
	}
}

func TestRebuildTimingWithinPaperEnvelope(t *testing.T) {
	// Fig. 9: all stages complete in under a minute; per-shard loading
	// under ten seconds.
	gc := dataset.GenConfig{NCenters: 64, PerCenter: 64, Dim: 16, PhysNList: 64, PhysNProbe: 8, Templates: 256, Seed: 9}
	for _, spec := range []dataset.Spec{dataset.WikiAll, dataset.Orcas1K, dataset.Orcas2K} {
		w, err := dataset.Build(spec, gc)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := profiler.CollectAccess(w, 2000, 3)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := splitter.Build(prof, 0.2, 8)
		if err != nil {
			t.Fatal(err)
		}
		tm := EstimateRebuild(hw.H100Node(), spec, plan, 50000, 12)
		if err := Validate(tm); err != nil {
			t.Errorf("%s: %v (timing %+v)", spec.Name, err, tm)
		}
		if tm.Profiling <= 0 || tm.Algorithm <= 0 || tm.Splitting <= 0 || tm.Loading <= 0 {
			t.Errorf("%s: degenerate stage in %+v", spec.Name, tm)
		}
		if tm.Total() < 5*time.Second {
			t.Errorf("%s: rebuild %v implausibly fast", spec.Name, tm.Total())
		}
	}
}

func TestRebuildScalesWithIndexSize(t *testing.T) {
	gc := dataset.GenConfig{NCenters: 64, PerCenter: 64, Dim: 16, PhysNList: 64, PhysNProbe: 8, Templates: 256, Seed: 9}
	w1, _ := dataset.Build(dataset.WikiAll, gc)
	w2, _ := dataset.Build(dataset.Orcas2K, gc)
	p1, _ := profiler.CollectAccess(w1, 2000, 3)
	p2, _ := profiler.CollectAccess(w2, 2000, 3)
	plan1, _ := splitter.Build(p1, 0.2, 8)
	plan2, _ := splitter.Build(p2, 0.2, 8)
	t1 := EstimateRebuild(hw.H100Node(), dataset.WikiAll, plan1, 50000, 12)
	t2 := EstimateRebuild(hw.H100Node(), dataset.Orcas2K, plan2, 50000, 12)
	if t2.Loading <= t1.Loading {
		t.Fatalf("bigger index should load slower: %v vs %v", t2.Loading, t1.Loading)
	}
	if t2.Splitting <= t1.Splitting {
		t.Fatalf("bigger index should split slower: %v vs %v", t2.Splitting, t1.Splitting)
	}
}

func TestValidateRejectsSlowRebuild(t *testing.T) {
	if err := Validate(RebuildTiming{Profiling: 3 * time.Minute}); err == nil {
		t.Fatal("3-minute rebuild accepted")
	}
	if err := Validate(RebuildTiming{Loading: 30 * time.Second}); err == nil {
		t.Fatal("30s shard load accepted")
	}
}
