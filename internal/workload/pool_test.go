package workload

import (
	"testing"

	"vectorliterag/internal/des"
)

// TestPoolRecyclesAndResets pins the pooled request lifecycle: a
// released request comes back zeroed, and the pool constructs no more
// objects than the peak number simultaneously outstanding.
func TestPoolRecyclesAndResets(t *testing.T) {
	var p Pool
	a := p.Get()
	a.ID = 7
	a.HitRate = 0.5
	a.FirstToken = 123
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatal("pool did not recycle the released request")
	}
	if *b != (Request{}) {
		t.Fatalf("recycled request not zeroed: %+v", *b)
	}
	p.Put(b)
	// Get/Put pairs reuse one object forever.
	for i := 0; i < 100; i++ {
		p.Put(p.Get())
	}
	if p.Allocated() != 1 {
		t.Fatalf("pool constructed %d requests for a 1-deep lifecycle", p.Allocated())
	}
	// Depth-k usage constructs exactly k.
	var live []*Request
	for i := 0; i < 5; i++ {
		live = append(live, p.Get())
	}
	for _, r := range live {
		p.Put(r)
	}
	if p.Allocated() != 5 {
		t.Fatalf("pool constructed %d requests, want peak in-flight 5", p.Allocated())
	}
	p.Put(nil) // nil release is a no-op
	if got := p.Get(); got == nil {
		t.Fatal("Get returned nil")
	}
}

// TestPooledLifecycleAllocFree is the tentpole regression guard for the
// request path: once the pool holds the working set, a full
// get→stamp→release cycle allocates nothing.
func TestPooledLifecycleAllocFree(t *testing.T) {
	var p Pool
	var live [64]*Request
	// Warm the pool and its free-list backing array.
	for i := range live {
		live[i] = p.Get()
	}
	for _, r := range live {
		p.Put(r)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := range live {
			r := p.Get()
			r.ID = i
			r.ArrivalAt = des.Time(i)
			live[i] = r
		}
		for _, r := range live {
			p.Put(r)
		}
	})
	if allocs != 0 {
		t.Fatalf("pooled request lifecycle allocated %.1f objects/op, want 0", allocs)
	}
	if p.Allocated() != len(live) {
		t.Fatalf("pool constructed %d requests, want %d", p.Allocated(), len(live))
	}
}

// TestGeneratorUsesPool runs a pooled generator whose submit hook
// releases immediately (the lifecycle of a run whose pipeline completes
// every request): the whole arrival stream reuses one request object,
// and IDs/arrival times still advance as without a pool.
func TestGeneratorUsesPool(t *testing.T) {
	w := testWorkload(t)
	var sim des.Sim
	g := NewGenerator(w, 100, DefaultShape(), 11)
	g.Pool = &Pool{}
	count := 0
	var lastAt des.Time = -1
	g.Start(&sim, des.Time(2*1e9), func(r *Request) {
		if r.ID != count {
			t.Fatalf("ID %d at position %d", r.ID, count)
		}
		if r.ArrivalAt < lastAt {
			t.Fatalf("arrivals out of order: %d after %d", r.ArrivalAt, lastAt)
		}
		lastAt = r.ArrivalAt
		count++
		g.Pool.Put(r)
	})
	sim.Run()
	if count == 0 {
		t.Fatal("no arrivals")
	}
	if g.Pool.Allocated() != 1 {
		t.Fatalf("pooled generator constructed %d requests for %d arrivals, want 1",
			g.Pool.Allocated(), count)
	}
}
