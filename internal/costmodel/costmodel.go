// Package costmodel converts logical search work (bytes of PQ codes
// scanned, clusters probed, batch sizes) into virtual time on the
// modeled hardware. It is the timing half of the two-scale design
// (see ARCHITECTURE.md): the physical index supplies *what* is scanned, this
// package decides *how long* it takes at paper scale.
//
// Structure of the CPU model (paper §IV-A1): IVF search latency is
// dominated by coarse quantization (CQ) and LUT operations. Both are
// piecewise-linear in batch size because a single query can only use a
// bounded number of threads (ThreadsPerQuery); batches first fill the
// machine (flat region), then queue on it (linear region). That is
// exactly the single-to-multi-threaded step behaviour in Fig. 8 (left).
//
// Calibration anchors (each cited at the constant definition):
//   - CPU fast-scan on a ~40 GB / 128M-vector index: ~0.1–0.2 s per
//     small batch (Fig. 4 left, Fig. 8 left).
//   - GPU IVF search ~10x faster than CPU fast scan (Fig. 4 left).
//   - Standard IVF (no fast scan) ~5x slower than fast scan (Fig. 3 left).
//   - LUT build + scan dominate search time (Fig. 3 right).
package costmodel

import (
	"math"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hw"
)

// FastScanSpeedup is how much faster SIMD fast-scan LUT operations are
// than the standard IVF scan loop (Fig. 3 left: IVF-FS completes in
// ~1/5 of standard IVF time at equal configuration).
const FastScanSpeedup = 5.0

// LUTBuildFraction is the share of LUT-stage time spent constructing
// tables (vs scanning them) for fast-scan indexes (Fig. 3 right shows
// the two at the same order of magnitude, build somewhat smaller).
const LUTBuildFraction = 0.35

// SQStreamEfficiency is the fraction of raw HBM bandwidth an SQ8
// streaming scan kernel sustains. Unlike the PQ kernel — whose
// LUT-gather inner loop is bound far below DRAM speed, hence the
// separate calibrated GPU.ScanBWBytes — the SQ8 distance kernel reads
// codes coalesced with no table gathers, the access pattern that
// approaches peak memory bandwidth on modern GPUs; 0.5 leaves room for
// the multiply-accumulate and top-k maintenance.
const SQStreamEfficiency = 0.5

// SQBlockCostFraction discounts the per-thread-block scheduling cost
// for SQ8 scans: the PQ BlockCost includes staging the per-query LUT
// into shared memory for every block, which the SQ8 kernel does not do
// (it only loads the per-dim min/max vectors once per query).
const SQBlockCostFraction = 0.25

// cqThreadsPerQuery bounds intra-query parallelism of coarse
// quantization (graph-traversal-style search parallelizes worse than
// LUT scans).
const cqThreadsPerQuery = 2

// cqUnitSeconds scales CQ work: per-query CQ time at full intra-query
// parallelism is cqUnitSeconds * sqrt(nlist) * dim / cqThreadsPerQuery.
// Anchored to ≈25 ms CQ at batch 1 for ORCAS-1K (nlist=131072,
// dim=1024) on the 64-core Xeon (Fig. 8 left breakdown):
// 1.35e-7 * sqrt(131072) * 1024 / 2 ≈ 25 ms.
const cqUnitSeconds = 1.35e-7

// SearchModel prices CPU-side IVF search for one dataset on one CPU.
type SearchModel struct {
	CPU      hw.CPU
	Spec     dataset.Spec
	FastScan bool // false models the standard IVF scan loop (Fig. 3)
}

// NewSearchModel returns the fast-scan CPU model the system uses by
// default (the paper adopts fast scan for its CPU tier, §II-B).
func NewSearchModel(cpu hw.CPU, spec dataset.Spec) SearchModel {
	return SearchModel{CPU: cpu, Spec: spec, FastScan: true}
}

// effectiveThreads returns the cores usable by a batch of b queries in
// a stage whose per-query parallelism is tpq.
func (m SearchModel) effectiveThreads(b, tpq int) int {
	if b < 1 {
		b = 1
	}
	p := b * tpq
	if p > m.CPU.Cores {
		p = m.CPU.Cores
	}
	return p
}

// CQTime returns coarse quantization latency for a batch of b queries.
func (m SearchModel) CQTime(b int) time.Duration {
	if b < 1 {
		b = 1
	}
	work := cqUnitSeconds * math.Sqrt(float64(m.Spec.NList)) * float64(m.Spec.Dim) // seconds at 1 thread
	p := m.effectiveThreads(b, cqThreadsPerQuery)
	sec := float64(b) * work / float64(p)
	return dur(sec)
}

// LUTTime returns the LUT stage latency (table construction + scan) for
// a batch of b queries that together scan totalBytes of PQ codes on the
// CPU tier.
func (m SearchModel) LUTTime(totalBytes int64, b int) time.Duration {
	if totalBytes <= 0 {
		return 0
	}
	p := m.effectiveThreads(b, m.CPU.ThreadsPerQuery)
	rate := float64(p) * m.CPU.ScanBWPerCore
	if rate > m.CPU.MemBWBytes {
		rate = m.CPU.MemBWBytes
	}
	sec := float64(totalBytes) / rate
	if !m.FastScan {
		sec *= FastScanSpeedup
	}
	return dur(sec)
}

// QueryScanBytes returns the average logical bytes one query scans when
// nothing is cached (IndexBytes * nprobe/nlist).
func (m SearchModel) QueryScanBytes() int64 {
	return int64(float64(m.Spec.IndexBytes()) * m.Spec.ScanShare())
}

// SearchTime returns full CPU-only search latency for a batch of b
// average queries: CQ plus the LUT stage over b average scan loads.
func (m SearchModel) SearchTime(b int) time.Duration {
	return m.CQTime(b) + m.LUTTime(int64(b)*m.QueryScanBytes(), b)
}

// Breakdown splits a batch's search time into the three stages of the
// paper's Fig. 2/3: coarse quantization, LUT construction, LUT scan.
type Breakdown struct {
	CQ, LUTBuild, LUTScan time.Duration
}

// Total returns the sum of the stages.
func (br Breakdown) Total() time.Duration { return br.CQ + br.LUTBuild + br.LUTScan }

// SearchBreakdown prices a batch of b average queries stage by stage.
func (m SearchModel) SearchBreakdown(b int) Breakdown {
	lut := m.LUTTime(int64(b)*m.QueryScanBytes(), b)
	build := time.Duration(float64(lut) * LUTBuildFraction)
	return Breakdown{CQ: m.CQTime(b), LUTBuild: build, LUTScan: lut - build}
}

// GPUScanModel prices IVF scan kernels on one GPU.
type GPUScanModel struct {
	GPU hw.GPU
}

// ShardScanTime returns the time for one shard kernel that scans
// totalBytes of resident PQ codes across `blocks` query-cluster thread
// blocks. Block count matters independently of bytes: each launched
// block costs scheduling bandwidth and shared memory even when its
// cluster is not resident (paper §IV-B1) — which is exactly why the
// router's probe pruning helps.
func (g GPUScanModel) ShardScanTime(totalBytes int64, blocks int) time.Duration {
	if totalBytes <= 0 && blocks <= 0 {
		return 0
	}
	sec := g.GPU.KernelLaunch +
		float64(blocks)*g.GPU.BlockCost +
		float64(totalBytes)/g.GPU.ScanBWBytes
	return dur(sec)
}

// ShardScanTimeSQ prices the SQ8 counterpart of ShardScanTime: the
// same launch and per-block scheduling structure, but blocks are
// cheaper (no LUT staging, see SQBlockCostFraction) and bytes stream
// at SQStreamEfficiency of raw HBM bandwidth instead of the
// gather-bound PQ scan rate. totalBytes is bytes of SQ8 codes, which
// run ~4x the PQ bytes for the same vectors.
func (g GPUScanModel) ShardScanTimeSQ(totalBytes int64, blocks int) time.Duration {
	if totalBytes <= 0 && blocks <= 0 {
		return 0
	}
	sec := g.GPU.KernelLaunch +
		float64(blocks)*g.GPU.BlockCost*SQBlockCostFraction +
		float64(totalBytes)/(SQStreamEfficiency*g.GPU.MemBWBytes)
	return dur(sec)
}

// NVMeScanTime prices fetching cold PQ clusters from the SSD tier so
// the CPU can scan them: each cluster is one sequential read paying
// the page-read latency once (subsequent pages of the same cluster
// stream behind it), and the total bytes — rounded up to page
// granularity per cluster — stream at the drive's sequential rate.
// This is *additive* to the CPU LUT time for those bytes: the codes
// must land in DRAM before the fast-scan kernel can touch them.
func NVMeScanTime(n hw.NVMe, totalBytes int64, clusters int) time.Duration {
	if totalBytes <= 0 || clusters <= 0 || n.ReadBWBytes <= 0 {
		return 0
	}
	pages := (totalBytes + n.PageBytes - 1) / n.PageBytes
	if pages < int64(clusters) {
		pages = int64(clusters) // at least one page read per cluster
	}
	sec := float64(clusters)*n.PageLatency + float64(pages*n.PageBytes)/n.ReadBWBytes
	return dur(sec)
}

// ShardLoadTime returns host-to-device transfer time for loading a
// shard of the given size (Fig. 9 "Loading" stage).
func ShardLoadTime(g hw.GPU, bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return dur(float64(bytes) / g.LoadBWBytes)
}

// SplitTime returns the CPU-side time to materialize shard layouts
// (grouping hot clusters, rewriting mapping tables): a memory-bound
// pass over the shard bytes (Fig. 9 "Splitting" stage).
func SplitTime(c hw.CPU, bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	// Read + write pass at half the machine bandwidth.
	return dur(float64(2*bytes) / (c.MemBWBytes / 2))
}

func dur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
