package main

import (
	"fmt"
	"strings"
	"time"

	vlr "vectorliterag"
)

// ingestFlags carries the streaming-ingest flag group into validation.
// tuned records whether any tuning flag (-ingest-rate, -delete-rate,
// -reencode-every) was explicitly given, so tuning without -ingest is
// rejected instead of silently ignored — the same explicit-vs-default
// distinction timeoutSet draws for -timeout-ms.
type ingestFlags struct {
	on            bool
	insertRate    float64
	deleteRate    float64
	reencodeEvery time.Duration
	tuned         bool
}

// brownoutFlags carries the overload-control flag group into
// validation. capSet records whether -queue-cap was explicitly given
// (an explicit 0 is rejected, the flag never being given means "use
// the default bound"), tenants/sharedQueue echo the serving mode so
// the group can insist on the FairScheduler's per-tenant queues.
type brownoutFlags struct {
	on          bool
	queueCap    int
	capSet      bool
	budgets     string // raw -stage-budgets value
	tenants     int
	sharedQueue bool
}

// parseStageBudgets splits a -stage-budgets value of the form
// "<retrieval>:<generation>" (e.g. "350ms:600ms") into the two
// per-stage latency budgets. Both must parse and be positive.
func parseStageBudgets(s string) (retr, gen time.Duration, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("serve: -stage-budgets wants <retrieval>:<generation> (e.g. 350ms:600ms), have %q", s)
	}
	if retr, err = time.ParseDuration(strings.TrimSpace(parts[0])); err != nil {
		return 0, 0, fmt.Errorf("serve: -stage-budgets retrieval budget %q: %v", parts[0], err)
	}
	if gen, err = time.ParseDuration(strings.TrimSpace(parts[1])); err != nil {
		return 0, 0, fmt.Errorf("serve: -stage-budgets generation budget %q: %v", parts[1], err)
	}
	if retr <= 0 || gen <= 0 {
		return 0, 0, fmt.Errorf("serve: -stage-budgets must both be positive (have %v:%v)", retr, gen)
	}
	return retr, gen, nil
}

// validateServeFlags rejects nonsensical serve parameters up front, in
// the style of serve.ResolvePolicy's error: name the knob, echo the bad
// value, state what is accepted. timeoutSet distinguishes an explicit
// -timeout-ms 0 (rejected — a zero deadline would fail everything) from
// the flag never being given (timeouts simply stay off).
func validateServeFlags(rate float64, replicas, workers, timeoutMS int, timeoutSet bool, ing ingestFlags, bo brownoutFlags) error {
	if rate <= 0 {
		return fmt.Errorf("serve: -rate must be positive (have %g)", rate)
	}
	if replicas <= 0 {
		return fmt.Errorf("serve: -replicas must be positive (have %d)", replicas)
	}
	if workers <= 0 {
		return fmt.Errorf("serve: -workers must be positive (have %d)", workers)
	}
	if timeoutSet && timeoutMS <= 0 {
		return fmt.Errorf("serve: -timeout-ms must be positive (have %d)", timeoutMS)
	}
	if ing.tuned && !ing.on {
		return fmt.Errorf("serve: -ingest-rate/-delete-rate/-reencode-every tune the mutation stream and need -ingest")
	}
	if ing.on {
		if ing.insertRate < 0 {
			return fmt.Errorf("serve: -ingest-rate must be non-negative (have %g)", ing.insertRate)
		}
		if ing.deleteRate < 0 {
			return fmt.Errorf("serve: -delete-rate must be non-negative (have %g)", ing.deleteRate)
		}
		if ing.reencodeEvery <= 0 {
			return fmt.Errorf("serve: -reencode-every must be positive (have %v)", ing.reencodeEvery)
		}
	}
	if bo.capSet && bo.queueCap <= 0 {
		return fmt.Errorf("serve: -queue-cap must be positive (have %d); omit the flag for the default bound", bo.queueCap)
	}
	if bo.budgets != "" && !bo.on {
		return fmt.Errorf("serve: -stage-budgets tunes the brownout controller's per-stage latency budgets; add -brownout")
	}
	if (bo.on || bo.capSet) && bo.tenants <= 0 {
		return fmt.Errorf("serve: -brownout/-queue-cap bound the per-tenant admission queues and need -tenants")
	}
	if (bo.on || bo.capSet) && bo.sharedQueue {
		return fmt.Errorf("serve: -shared-queue has no per-tenant queues to bound; drop -brownout/-queue-cap")
	}
	if bo.budgets != "" {
		if _, _, err := parseStageBudgets(bo.budgets); err != nil {
			return err
		}
	}
	return nil
}

// resilienceFromFlags translates the failure-handling flag group into a
// ResilienceConfig, or nil when none of its flags is set. The resilient
// path needs spare replicas to fail over to, so any flag in the group
// requires -replicas > 1.
func resilienceFromFlags(faults string, retry, hedgeMS, timeoutMS int, degrade bool, replicas int) (*vlr.ResilienceConfig, error) {
	if faults == "" && retry == 0 && hedgeMS == 0 && timeoutMS == 0 && !degrade {
		return nil, nil
	}
	if replicas < 2 {
		return nil, fmt.Errorf("serve: -faults/-retry/-hedge-ms/-timeout-ms/-degrade need replicas to fail over to (have -replicas %d, want > 1)", replicas)
	}
	if retry < 0 {
		return nil, fmt.Errorf("serve: -retry must be non-negative (have %d)", retry)
	}
	rc := &vlr.ResilienceConfig{
		MaxRetries: retry,
		Timeout:    time.Duration(timeoutMS) * time.Millisecond,
		Degrade:    degrade,
	}
	switch {
	case hedgeMS > 0:
		rc.HedgeDelay = time.Duration(hedgeMS) * time.Millisecond
	case hedgeMS < 0:
		rc.HedgeAuto = true
	}
	return rc, nil
}
