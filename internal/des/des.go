// Package des is a minimal deterministic discrete-event simulator. All
// serving experiments run in virtual time on it, so results are
// reproducible and independent of host speed.
//
// Time is int64 nanoseconds. Events scheduled for the same instant fire
// in scheduling order (FIFO), which makes multi-component pipelines
// deterministic without fragile epsilon offsets.
package des

import (
	"container/heap"
	"time"
)

// Time is virtual simulation time in nanoseconds since simulation start.
type Time = int64

// Sim is the event loop. The zero value is ready to use.
type Sim struct {
	now Time
	pq  eventHeap
	seq uint64
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// fires at the current instant (never rewinds the clock).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d nanoseconds from now; negative d means now.
func (s *Sim) After(d time.Duration, fn func()) {
	s.At(s.now+int64(d), fn)
}

// Step fires the next event. It reports false when no events remain.
func (s *Sim) Step() bool {
	if s.pq.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.pq).(event)
	s.now = ev.at
	ev.fn()
	return true
}

// RunUntil fires events until the queue is empty or the next event is
// later than deadline; the clock is left at the last fired event (or
// advanced to deadline if it never got there).
func (s *Sim) RunUntil(deadline Time) {
	for s.pq.Len() > 0 && s.pq[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run drains every event. Use only with self-terminating workloads.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.pq.Len() }

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
