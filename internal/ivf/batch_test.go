package ivf

import (
	"testing"

	"vectorliterag/internal/rng"
	"vectorliterag/internal/vecmath"
)

// buildBatchIndex builds one shared corpus and an index with the given
// worker-pool size. Indexes built with different worker counts are
// bit-identical (see parallel_test.go), so batched-vs-sequential
// comparisons across worker counts exercise only the query path.
func buildBatchIndex(t *testing.T, workers int) ([]float32, *Index) {
	t.Helper()
	r := rng.New(21)
	data, _ := clusteredData(r, 16, 80, 16, 0.8)
	ix, err := Build(data, BuildConfig{Dim: 16, NList: 16, PQM: 8, PQK: 64, TrainIters: 6, Seed: 5, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return data, ix
}

func sameNeighbors(t *testing.T, label string, got, want []vecmath.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d neighbors, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
			t.Fatalf("%s: rank %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// TestSearchBatchMatchesSequential is the batched-determinism contract:
// SearchBatch must be bit-identical (indices and distances) to calling
// Search per query in order, for any batch size and worker count.
func TestSearchBatchMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		data, ix := buildBatchIndex(t, workers)
		for _, nq := range []int{1, 2, 5, 17, 64} {
			queries := data[:nq*16]
			batch, err := ix.SearchBatch(queries, 4, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != nq {
				t.Fatalf("SearchBatch returned %d results for %d queries", len(batch), nq)
			}
			for qi := 0; qi < nq; qi++ {
				want := ix.Search(queries[qi*16:(qi+1)*16], 4, 10)
				sameNeighbors(t, "batch", batch[qi], want)
			}
		}
	}
}

func TestSearchBatchRejectsRaggedInput(t *testing.T) {
	_, ix := buildBatchIndex(t, 1)
	if _, err := ix.SearchBatch(make([]float32, 17), 4, 5); err == nil {
		t.Fatal("ragged batch accepted")
	}
}

// TestSearchIntoMatchesSearch pins the scratch path to the allocating
// wrapper across repeated reuse of a single scratch.
func TestSearchIntoMatchesSearch(t *testing.T) {
	data, ix := buildBatchIndex(t, 1)
	s := ix.NewSearchScratch()
	for qi := 0; qi < 30; qi++ {
		q := data[qi*16 : (qi+1)*16]
		got := ix.SearchInto(s, q, 4, 10)
		want := ix.Search(q, 4, 10)
		sameNeighbors(t, "scratch", got, want)
	}
}

func TestSearchClustersIntoMatchesSearchClusters(t *testing.T) {
	data, ix := buildBatchIndex(t, 1)
	s := ix.NewSearchScratch()
	q := data[:16]
	probes := ix.Probe(q, 6)
	got := ix.SearchClustersInto(s, q, probes, 12)
	want := ix.SearchClusters(q, probes, 12)
	sameNeighbors(t, "clusters", got, want)
}

func TestProbeIntoMatchesProbe(t *testing.T) {
	data, ix := buildBatchIndex(t, 1)
	s := ix.NewSearchScratch()
	for qi := 0; qi < 20; qi++ {
		q := data[qi*16 : (qi+1)*16]
		got := ix.ProbeInto(s, q, 5)
		want := ix.Probe(q, 5)
		if len(got) != len(want) {
			t.Fatalf("probe lengths differ: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("probe %d differs: %d vs %d", i, got[i], want[i])
			}
		}
	}
}

// TestSearchIntoZeroAllocs is the tentpole's allocation contract:
// steady-state scratch search allocates nothing.
func TestSearchIntoZeroAllocs(t *testing.T) {
	data, ix := buildBatchIndex(t, 1)
	s := ix.NewSearchScratch()
	q := data[:16]
	// Warm the scratch so every buffer reaches steady-state capacity.
	ix.SearchInto(s, q, 4, 10)
	if allocs := testing.AllocsPerRun(100, func() {
		ix.SearchInto(s, q, 4, 10)
	}); allocs != 0 {
		t.Fatalf("SearchInto allocates %.1f objects per call in steady state", allocs)
	}
}

// TestHotClustersTieBreakRegression pins the full hottest-first order on
// a count vector dense with ties: equal counts must order by ascending
// cluster ID, matching the previous sort.SliceStable behavior.
func TestHotClustersTieBreakRegression(t *testing.T) {
	counts := []int64{7, 3, 7, 0, 3, 7, 0, 12}
	want := []int{7, 0, 2, 5, 1, 4, 3, 6}
	got := HotClusters(counts)
	if len(got) != len(want) {
		t.Fatalf("HotClusters returned %d ids", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HotClusters order %v, want %v", got, want)
		}
	}
}

// TestRecallParallelMatchesSequential pins Recall under real
// parallelism: an index built with many workers must report the exact
// recall of a single-worker build (this also exercises the per-worker
// BruteForcer clones under -race).
func TestRecallParallelMatchesSequential(t *testing.T) {
	dataSeq, seq := buildBatchIndex(t, 1)
	_, par := buildBatchIndex(t, 8)
	queries := dataSeq[:16*40]
	a := seq.Recall(dataSeq, queries, 4, 10)
	b := par.Recall(dataSeq, queries, 4, 10)
	if a != b {
		t.Fatalf("recall differs across worker counts: %v vs %v", a, b)
	}
	if a <= 0 || a > 1 {
		t.Fatalf("recall %v out of range", a)
	}
}
