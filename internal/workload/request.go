// Package workload defines the request model and the open-loop Poisson
// arrival generator used throughout the evaluation (paper §V-A: Poisson
// arrivals; each request retrieves top-25 documents, builds a
// 1024-token input, and generates a 256-token output).
package workload

import (
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/rng"
)

// Shape is the token geometry of requests.
type Shape struct {
	InputTokens  int
	OutputTokens int
	TopK         int // documents retrieved per query
}

// DefaultShape matches the paper's main evaluation setting.
func DefaultShape() Shape { return Shape{InputTokens: 1024, OutputTokens: 256, TopK: 25} }

// Request is one end-to-end RAG request flowing through retrieval and
// generation. Timestamps are virtual; zero means "not reached yet".
type Request struct {
	ID    int
	Query dataset.QueryID
	Shape Shape
	// Tenant identifies which tenant's stream the request belongs to in
	// a multi-tenant run (0 in single-tenant runs, where it is unused).
	// It indexes the per-tenant queues of serve.FairScheduler and the
	// per-tenant corpora of the multi-tenant retrieval engine.
	Tenant int

	ArrivalAt   des.Time // enters the system
	SearchStart des.Time // its retrieval batch begins
	SearchDone  des.Time // retrieval results merged and forwarded
	LLMStart    des.Time // admitted into an LLM instance's prefill
	FirstToken  des.Time // first output token (TTFT endpoint)
	Done        des.Time // last output token

	// Degrade is the graceful-degradation shed fraction stamped by the
	// resilient router under capacity loss — and, under pure overload,
	// by the brownout controller's first ladder rung: retrieval engines
	// drop the trailing Degrade fraction of the query's probe list
	// (reduced nprobe), trading recall for service time. Zero — the
	// value on every non-resilient path — changes nothing.
	Degrade float64

	// KShed is the brownout ladder's second rung: the fraction by which
	// this request's rerank depth (Shape.TopK) and context-dependent
	// input tokens were reduced at dispatch. The Shape mutation is what
	// the LLM engine prices; KShed records the fraction for reporting.
	// Zero everywhere outside a brownout.
	KShed float64

	// ForcePQ is the brownout ladder's last rung: when set, clusters the
	// precision refinement upgraded to SQ8 are scanned through their
	// base PQ codec for this request — giving back the SQ recall gain in
	// exchange for the cheaper scan. False everywhere outside a deep
	// brownout; meaningless (and ignored) without a precision plan.
	ForcePQ bool

	// HitRate is the work-weighted fraction of this query's scan bytes
	// actually served from GPU-resident clusters, recorded by the
	// retrieval engine when the request's batch is routed. It is the
	// per-request observation the paper's runtime monitor accumulates
	// (§IV-B3); mid-reload CPU diverts therefore show up as misses.
	HitRate float64
}

// TTFT returns time-to-first-token; callers must only use it after
// FirstToken is set.
func (r *Request) TTFT() des.Time { return r.FirstToken - r.ArrivalAt }

// E2E returns total latency; valid once Done is set.
func (r *Request) E2E() des.Time { return r.Done - r.ArrivalAt }

// QueueingDelay is the time spent waiting before retrieval started.
func (r *Request) QueueingDelay() des.Time { return r.SearchStart - r.ArrivalAt }

// SearchLatency is the retrieval service time (batch start to forward).
func (r *Request) SearchLatency() des.Time { return r.SearchDone - r.SearchStart }

// Pool recycles Request objects across a serving run. Arrival
// generators draw from it and the pipeline's terminal sink returns
// completed requests, so after a short ramp (the peak in-flight
// population) the run allocates no further requests — the pooled
// request lifecycle of the allocation-free serving core.
//
// A Pool is single-goroutine, like the simulator it serves. In a
// parallel sharded run the pool belongs to the *front* shard's
// timeline: arrivals draw from it there, ownership of each request
// travels to a replica shard with its forward message, and the
// completion notice carries it home again, where the exchange returns
// it to the pool. At most one shard touches a request at any instant —
// the message links hand off ownership, never share it — so the pool
// needs no locking even with many worker goroutines executing shards.
type Pool struct {
	free []*Request
	news int
}

// Get returns a zeroed request, reusing a released one when available.
func (p *Pool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*r = Request{}
		return r
	}
	p.news++
	return &Request{}
}

// Put releases a request for reuse. The caller must drop every
// reference: the next Get hands the same object to a new arrival.
func (p *Pool) Put(r *Request) {
	if r != nil {
		p.free = append(p.free, r)
	}
}

// Release is Put shaped as a pipeline sink — wire it as the *last*
// element of the terminal serve.Tee, after every stage that still
// reads the completed request.
func (p *Pool) Release(r *Request) { p.Put(r) }

// Allocated returns how many requests the pool actually constructed —
// the run's peak in-flight population, not its request count.
func (p *Pool) Allocated() int { return p.news }

// Generator produces Poisson arrivals of requests drawn from a
// workload's query distribution. With a Sched installed the process is
// an *inhomogeneous* Poisson stream realized by thinning; otherwise it
// is the classic constant-rate stream (bit-identical to before Sched
// existed).
type Generator struct {
	RatePerSec float64
	Shape      Shape
	W          *dataset.Workload
	// Sched, when non-nil, overrides RatePerSec with a time-varying rate
	// (ramps, bursts, diurnal cycles — the non-stationary workloads of
	// drift studies).
	Sched Schedule
	// Tenant stamps every emitted request (multi-tenant runs multiplex
	// one generator per tenant onto a shared simulator timeline).
	Tenant int
	// Pool, when non-nil, supplies request objects instead of the heap;
	// a run's terminal sink releases completed requests back into it.
	Pool *Pool

	r      *rng.Rand
	nextID int

	// Start binds the remaining fields once so the self-rescheduling
	// arrival loop reuses a single callback (allocation-free scheduling
	// via des.Sim.At with a stored func value).
	sim    *des.Sim
	until  des.Time
	submit func(*Request)
	rmax   float64
	step   func()
}

// NewGenerator returns an open-loop generator. rate is requests per
// second of virtual time.
func NewGenerator(w *dataset.Workload, rate float64, shape Shape, seed uint64) *Generator {
	return &Generator{RatePerSec: rate, Shape: shape, W: w, r: rng.New(seed)}
}

// NewScheduledGenerator returns an open-loop generator driven by a rate
// schedule instead of a constant rate.
func NewScheduledGenerator(w *dataset.Workload, sched Schedule, shape Shape, seed uint64) *Generator {
	return &Generator{Sched: sched, Shape: shape, W: w, r: rng.New(seed)}
}

// Start schedules arrivals on the simulator until the given deadline,
// invoking submit for each new request at its arrival time. The loop
// pre-binds one step callback and reschedules it, so steady-state
// arrival scheduling performs no allocation beyond the requests
// themselves (none at all with a Pool installed).
func (g *Generator) Start(sim *des.Sim, until des.Time, submit func(*Request)) {
	g.sim, g.until, g.submit = sim, until, submit
	if g.Sched != nil {
		// Lewis' thinning: candidate arrivals are drawn at the schedule's
		// MaxRate and each is accepted with probability RateAt(t)/MaxRate
		// — exact for any bounded rate function, and deterministic under
		// a fixed seed.
		g.rmax = g.Sched.MaxRate()
		g.step = g.thinnedStep
		g.scheduleThinned(0)
		return
	}
	g.step = g.constStep
	first := des.Time(g.r.ExpFloat64() / g.RatePerSec * 1e9)
	g.schedule(first)
}

// schedule arms the next arrival candidate, stopping past the horizon.
func (g *Generator) schedule(at des.Time) {
	if at > g.until {
		return
	}
	g.sim.At(at, g.step)
}

// constStep is one constant-rate Poisson arrival.
func (g *Generator) constStep() {
	g.emit()
	gap := des.Time(g.r.ExpFloat64() / g.RatePerSec * 1e9)
	g.schedule(g.sim.Now() + gap)
}

// thinnedStep fires at an accepted arrival of the thinned stream and
// arms the next one.
func (g *Generator) thinnedStep() {
	g.emit()
	g.scheduleThinned(g.sim.Now())
}

// scheduleThinned walks rejected thinning candidates inline and
// schedules one event at the next *accepted* arrival. Rejected
// candidates have no observable effect — they only consume draws from
// the generator's private RNG — so collapsing their events into this
// loop leaves the accepted arrival times and the full draw sequence
// (gap, accept-test, gap, ... , accept-test, then the query sample at
// the arrival instant) exactly as the event-per-candidate version
// produced them, while scheduling ~MaxRate/mean-rate fewer events.
func (g *Generator) scheduleThinned(from des.Time) {
	t := from
	for {
		t += des.Time(g.r.ExpFloat64() / g.rmax * 1e9)
		if t > g.until {
			return
		}
		if g.r.Float64()*g.rmax <= g.Sched.RateAt(time.Duration(t)) {
			g.sim.At(t, g.step)
			return
		}
	}
}

// emit materializes one request at the current instant, from the pool
// when one is installed.
func (g *Generator) emit() {
	var req *Request
	if g.Pool != nil {
		req = g.Pool.Get()
	} else {
		req = &Request{}
	}
	req.ID = g.nextID
	req.Query = g.W.Sample(g.r)
	req.Shape = g.Shape
	req.Tenant = g.Tenant
	req.ArrivalAt = g.sim.Now()
	g.nextID++
	g.submit(req)
}

// Count returns how many requests have been generated so far.
func (g *Generator) Count() int { return g.nextID }
