package serve

import (
	"fmt"
	"testing"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/workload"
)

// delayStage forwards each request after a fixed virtual delay,
// recording the order it saw them in.
type delayStage struct {
	sim   *des.Sim
	name  string
	delay time.Duration
	seen  []int
	next  Sink
}

func delay(sim *des.Sim, name string, d time.Duration, log *[]string) Builder {
	return func(next Sink) (Stage, error) {
		*log = append(*log, "built:"+name)
		return &delayStage{sim: sim, name: name, delay: d, next: next}, nil
	}
}

func (s *delayStage) Name() string { return s.name }

func (s *delayStage) Submit(req *workload.Request) {
	s.seen = append(s.seen, req.ID)
	s.sim.After(s.delay, func() { s.next(req) })
}

func TestComposeBuildsBackToFront(t *testing.T) {
	var sim des.Sim
	var log []string
	_, err := Compose(&sim, nil,
		delay(&sim, "a", time.Millisecond, &log),
		delay(&sim, "b", time.Millisecond, &log),
		delay(&sim, "c", time.Millisecond, &log),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"built:c", "built:b", "built:a"}
	for i, w := range want {
		if log[i] != w {
			t.Fatalf("build order %v, want %v", log, want)
		}
	}
}

func TestComposeValidation(t *testing.T) {
	var sim des.Sim
	if _, err := Compose(nil, nil); err == nil {
		t.Fatal("nil sim accepted")
	}
	if _, err := Compose(&sim, nil); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	failing := func(next Sink) (Stage, error) { return nil, fmt.Errorf("boom") }
	if _, err := Compose(&sim, nil, failing); err == nil {
		t.Fatal("builder error swallowed")
	}
}

func TestPipelineFlowsThroughStagesInOrder(t *testing.T) {
	var sim des.Sim
	var log []string
	var done []int
	terminal := func(req *workload.Request) { done = append(done, req.ID) }
	pipe, err := Compose(&sim, terminal,
		delay(&sim, "a", 1*time.Millisecond, &log),
		delay(&sim, "b", 2*time.Millisecond, &log),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		req := &workload.Request{ID: i}
		sim.At(des.Time(i)*1e6, func() { pipe.Submit(req) })
	}
	sim.Run()
	if len(done) != 3 {
		t.Fatalf("terminal saw %d requests, want 3", len(done))
	}
	a := pipe.Stages()[0].(*delayStage)
	b := pipe.Stages()[1].(*delayStage)
	if len(a.seen) != 3 || len(b.seen) != 3 {
		t.Fatalf("stage traffic a=%v b=%v", a.seen, b.seen)
	}
	if sim.Now() != des.Time(2*1e6+3*1e6) {
		t.Fatalf("last completion at %d", sim.Now())
	}
}

func TestTee(t *testing.T) {
	var got []string
	s := Tee(
		func(*workload.Request) { got = append(got, "x") },
		func(*workload.Request) { got = append(got, "y") },
	)
	s(&workload.Request{})
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("tee order %v", got)
	}
}

func TestCollectorCounts(t *testing.T) {
	c := NewCollector()
	r := &workload.Request{ID: 1}
	c.Admit(r)
	c.Admit(&workload.Request{ID: 2})
	c.Done(r)
	if c.Admitted() != 2 || c.Completed() != 1 {
		t.Fatalf("admitted %d completed %d", c.Admitted(), c.Completed())
	}
	if len(c.Requests()) != 2 || c.Requests()[0].ID != 1 {
		t.Fatalf("request log %v", c.Requests())
	}
}

// sinkReplica builds a replica whose pipeline is a single pass-through
// stage feeding Release, so inflight returns to zero at completion.
func sinkReplica(t *testing.T, sim *des.Sim, seen *[]int, id int) *Replica {
	t.Helper()
	rep := NewReplica()
	pipe, err := Compose(sim, rep.Release, func(next Sink) (Stage, error) {
		return &delayStage{sim: sim, name: fmt.Sprintf("rep%d", id), next: func(req *workload.Request) {
			*seen = append(*seen, id)
			next(req)
		}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Bind(pipe)
	return rep
}

func TestRouterRoundRobin(t *testing.T) {
	var sim des.Sim
	var seen []int
	reps := []*Replica{
		sinkReplica(t, &sim, &seen, 0),
		sinkReplica(t, &sim, &seen, 1),
		sinkReplica(t, &sim, &seen, 2),
	}
	r, err := NewRouter(RoundRobin, reps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		r.Submit(&workload.Request{ID: i})
	}
	sim.Run()
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("round-robin order %v, want %v", seen, want)
		}
	}
}

func TestRouterLeastLoaded(t *testing.T) {
	var sim des.Sim
	var seen []int
	reps := []*Replica{
		sinkReplica(t, &sim, &seen, 0),
		sinkReplica(t, &sim, &seen, 1),
	}
	r, err := NewRouter(LeastLoaded, reps)
	if err != nil {
		t.Fatal(err)
	}
	// Pin three requests onto replica 0 by hand; the router must then
	// prefer replica 1 until loads equalize.
	reps[0].inflight = 3
	r.Submit(&workload.Request{ID: 0})
	r.Submit(&workload.Request{ID: 1})
	r.Submit(&workload.Request{ID: 2})
	sim.Run()
	for _, id := range seen {
		if id != 1 {
			t.Fatalf("least-loaded sent to busy replica: %v", seen)
		}
	}
	if reps[1].Submitted() != 3 {
		t.Fatalf("replica 1 submitted %d, want 3", reps[1].Submitted())
	}
}

func TestRouterValidation(t *testing.T) {
	var sim des.Sim
	var seen []int
	rep := sinkReplica(t, &sim, &seen, 0)
	if _, err := NewRouter("bogus", []*Replica{rep}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewRouter(RoundRobin, nil); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if _, err := NewRouter(RoundRobin, []*Replica{NewReplica()}); err == nil {
		t.Fatal("unbound replica accepted")
	}
	r, err := NewRouter("", []*Replica{rep})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() == "" || len(r.Replicas()) != 1 {
		t.Fatalf("router introspection broken: %q", r.Name())
	}
}

func TestReplicaInflightAccounting(t *testing.T) {
	var sim des.Sim
	var seen []int
	rep := sinkReplica(t, &sim, &seen, 0)
	r, err := NewRouter(LeastLoaded, []*Replica{rep})
	if err != nil {
		t.Fatal(err)
	}
	r.Submit(&workload.Request{ID: 0})
	if rep.Inflight() != 1 {
		t.Fatalf("inflight %d after submit", rep.Inflight())
	}
	sim.Run()
	if rep.Inflight() != 0 {
		t.Fatalf("inflight %d after drain", rep.Inflight())
	}
}
