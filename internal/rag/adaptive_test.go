package rag

import (
	"reflect"
	"testing"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/update"
	"vectorliterag/internal/workload"
)

// driftOpts is the shared §IV-B3 scenario: steady traffic with one
// mid-run popularity rotation large enough to strand the initial hot
// set, under a search SLO tight enough that the stale plan's CPU
// detours matter.
func driftOpts(t *testing.T, rate float64) AdaptiveOptions {
	t.Helper()
	w := testW(t)
	rot := w.DefaultDriftRotation()
	o := AdaptiveOptions{Options: baseOpts(t, VLiteRAG, rate)}
	o.Duration = 240 * time.Second
	o.Drain = 120 * time.Second
	o.SLOSearch = 100 * time.Millisecond
	o.Drift = []dataset.DriftEvent{{At: 45 * time.Second, Rotate: rot}}
	return o
}

// meanHitFrom averages the served hit rate over requests arriving at or
// after the cutoff.
func meanHitFrom(res *Result, from time.Duration) float64 {
	n, sum := 0, 0.0
	for _, r := range res.Requests {
		if time.Duration(r.ArrivalAt) < from || r.FirstToken == 0 {
			continue
		}
		n++
		sum += r.HitRate
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func postDriftAttainment(res *Result, from time.Duration, slo time.Duration) float64 {
	n, ok := 0, 0
	for _, r := range res.Requests {
		if time.Duration(r.ArrivalAt) < from {
			continue
		}
		n++
		if r.FirstToken > 0 && time.Duration(r.TTFT()) <= slo {
			ok++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(ok) / float64(n)
}

func TestAdaptiveRecoversFromDrift(t *testing.T) {
	opts := driftOpts(t, 28)

	adaptive, err := RunAdaptive(opts)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(opts.Options)
	if err != nil {
		t.Fatal(err)
	}

	if len(adaptive.Rebuilds) != 1 {
		t.Fatalf("want exactly one rebuild (echo triggers suppressed), got %d: %+v",
			len(adaptive.Rebuilds), adaptive.Rebuilds)
	}
	rb := adaptive.Rebuilds[0]
	if rb.Aborted != "" {
		t.Fatalf("rebuild aborted: %s", rb.Aborted)
	}
	if err := update.Validate(rb.Timing); err != nil {
		t.Fatalf("rebuild timing outside the paper's envelope: %v", err)
	}
	if rb.TriggeredAt < int64(45*time.Second) {
		t.Fatalf("rebuild triggered at %v, before the drift at 45s", time.Duration(rb.TriggeredAt))
	}
	if !(rb.TriggeredAt < rb.ProfileDoneAt && rb.ProfileDoneAt < rb.AlgoDoneAt &&
		rb.AlgoDoneAt < rb.SplitDoneAt && rb.SplitDoneAt < rb.SwappedAt) {
		t.Fatalf("rebuild phases out of order: %+v", rb)
	}
	if got := time.Duration(rb.SwappedAt - rb.TriggeredAt); got != rb.Timing.Total() {
		t.Fatalf("simulated cycle %v != priced total %v", got, rb.Timing.Total())
	}

	// The recovery signal: after the swap the adaptive run serves the
	// drifted queries from a matching hot set again, while the static
	// plan keeps missing. The stale plan's post-drift hit rate on this
	// workload is ~0.55; the fresh plan restores ~0.93.
	from := time.Duration(rb.SwappedAt)
	adHit := meanHitFrom(&adaptive.Result, from)
	stHit := meanHitFrom(static, from)
	if adHit < stHit+0.2 {
		t.Fatalf("post-swap hit rate %.3f not well above static %.3f", adHit, stHit)
	}
	if adHit < adaptive.ExpectedHitRate-0.1 {
		t.Fatalf("post-swap hit rate %.3f never returned to expectation %.3f",
			adHit, adaptive.ExpectedHitRate)
	}
	// And attainment must not be worse than the static arm's over the
	// post-drift interval.
	adAtt := postDriftAttainment(&adaptive.Result, 45*time.Second, adaptive.SLOTotal)
	stAtt := postDriftAttainment(static, 45*time.Second, static.SLOTotal)
	if adAtt < stAtt {
		t.Fatalf("adaptive post-drift attainment %.3f below static %.3f", adAtt, stAtt)
	}
	t.Logf("post-drift attainment: static %.3f, adaptive %.3f; post-swap hit: static %.3f, adaptive %.3f; rebuild %v (trigger %v, swap %v)",
		stAtt, adAtt, stHit, adHit, rb.Timing.Total().Round(time.Millisecond),
		time.Duration(rb.TriggeredAt).Round(time.Millisecond),
		time.Duration(rb.SwappedAt).Round(time.Millisecond))
}

func TestAdaptiveNoDriftNoRebuild(t *testing.T) {
	o := AdaptiveOptions{Options: baseOpts(t, VLiteRAG, 12)}
	res, err := RunAdaptive(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rebuilds) != 0 {
		t.Fatalf("stationary workload triggered %d rebuilds: %+v", len(res.Rebuilds), res.Rebuilds)
	}
	if res.Observed == 0 {
		t.Fatal("monitor observed no requests")
	}
}

// TestAdaptiveDeterministic extends the repo's determinism contract to
// the control plane: same seed ⇒ bit-identical trigger timestamps,
// rebuild timings, and final summary — even with an inhomogeneous
// arrival process layered on top of the drift trace.
func TestAdaptiveDeterministic(t *testing.T) {
	mk := func() AdaptiveOptions {
		o := driftOpts(t, 12)
		o.RateSchedule = workload.Bursts(12, 16, 60*time.Second, 10*time.Second)
		return o
	}
	a, err := RunAdaptive(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAdaptive(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rebuilds, b.Rebuilds) {
		t.Fatalf("rebuild records differ:\n%+v\nvs\n%+v", a.Rebuilds, b.Rebuilds)
	}
	if a.Summary != b.Summary {
		t.Fatalf("summaries differ:\n%+v\nvs\n%+v", a.Summary, b.Summary)
	}
	if a.Generated != b.Generated || a.Observed != b.Observed {
		t.Fatalf("counters differ: %d/%d vs %d/%d", a.Generated, a.Observed, b.Generated, b.Observed)
	}
}

// TestAdaptivePartialMonitorConfigGetsDefaults: pinning only the window
// must not zero out the thresholds (which would silently disable
// detection).
func TestAdaptivePartialMonitorConfigGetsDefaults(t *testing.T) {
	opts := driftOpts(t, 28)
	opts.Monitor = update.MonitorConfig{WindowRequests: 280}
	res, err := RunAdaptive(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rebuilds) == 0 {
		t.Fatal("window-only monitor config disabled drift detection")
	}
}

// TestAdaptiveReportsPendingRebuild: a trigger whose cycle cannot finish
// before the clock stops must surface as Pending, not vanish.
func TestAdaptiveReportsPendingRebuild(t *testing.T) {
	opts := driftOpts(t, 28)
	opts.Duration = 70 * time.Second // trigger ~58s; the ~42s cycle cannot finish
	opts.Drain = 10 * time.Second
	res, err := RunAdaptive(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rebuilds) != 0 {
		t.Fatalf("cycle implausibly completed: %+v", res.Rebuilds)
	}
	if res.Pending == nil {
		t.Fatal("in-flight rebuild dropped from the report")
	}
	if res.Pending.TriggeredAt < int64(45*time.Second) {
		t.Fatalf("pending trigger at %v, before the drift", time.Duration(res.Pending.TriggeredAt))
	}
}

func TestAdaptiveRejectsNonHybrid(t *testing.T) {
	o := AdaptiveOptions{Options: baseOpts(t, CPUOnly, 10)}
	if _, err := RunAdaptive(o); err == nil {
		t.Fatal("non-hybrid system accepted for adaptive serving")
	}
}

// TestDriftRestoresRotation: a drifted run must leave the shared
// workload exactly as it found it.
func TestDriftRestoresRotation(t *testing.T) {
	w := testW(t)
	before := w.PopularityRotation()
	o := baseOpts(t, CPUOnly, 10)
	o.Drift = []dataset.DriftEvent{{At: 10 * time.Second, Rotate: 17}}
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	if got := w.PopularityRotation(); got != before {
		t.Fatalf("rotation leaked: %d -> %d", before, got)
	}
}

func TestRunValidatesDriftAndSchedule(t *testing.T) {
	o := baseOpts(t, CPUOnly, 10)
	o.Drift = []dataset.DriftEvent{{At: 10 * time.Second, Rotate: 0}}
	if _, err := Run(o); err == nil {
		t.Fatal("no-op drift trace accepted")
	}
	o = baseOpts(t, CPUOnly, 10)
	o.Rate = 0
	o.RateSchedule = workload.Constant(0)
	if _, err := Run(o); err == nil {
		t.Fatal("zero-rate schedule accepted")
	}
	// A schedule alone (zero Rate) is valid.
	o = baseOpts(t, CPUOnly, 0)
	o.RateSchedule = workload.Ramp(5, 15, 30*time.Second)
	o.Duration = 40 * time.Second
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated < 100 {
		t.Fatalf("ramp schedule produced only %d arrivals", res.Generated)
	}
}
