package pq

import "vectorliterag/internal/vecmath"

// Optimized SQ8 scan kernels — the scalar-quantized counterparts of
// LUT.ScanCodes and friends. They exist for the mixed-precision hot
// tier: clusters stored as SQ8 are scanned straight from their byte
// codes (no per-query LUT build), which on a real GPU is a gather-free
// streaming kernel running near DRAM bandwidth. Here the kernels carry
// the same contract as the PQ family: candidate distances accumulate
// in dimension order exactly as ScalarQuantizer.Distance does, pushes
// happen in the same index order as the naive ScanCodes, and early
// abandonment only skips candidates a full evaluation would have
// rejected — so the collector's final contents are bit-identical to a
// naive full scan (the fuzz targets pin this).

// distanceSQAbandon accumulates the asymmetric SQ distance for one
// code but gives up as soon as the partial sum reaches bound: per-dim
// terms are squares, so partial sums are monotone and a prefix ≥ bound
// proves a collector whose k-th best is bound would reject the
// candidate. Checks happen every eight dimensions to keep branches off
// the accumulate path. Accumulation order matches Distance exactly.
func (q *ScalarQuantizer) distanceSQAbandon(query []float32, code []byte, bound float32) (float32, bool) {
	var sum float32
	n := q.Dim
	d := 0
	for ; d+8 <= n; d += 8 {
		for k := d; k < d+8; k++ {
			t := float32(code[k]) / 255
			rec := q.min[k] + t*(q.max[k]-q.min[k])
			diff := query[k] - rec
			sum += diff * diff
		}
		if sum >= bound {
			return sum, false
		}
	}
	for ; d < n; d++ {
		t := float32(code[d]) / 255
		rec := q.min[d] + t*(q.max[d]-q.min[d])
		diff := query[d] - rec
		sum += diff * diff
	}
	return sum, sum < bound
}

// ScanSQ scans a contiguous SQ8 code block, pushing candidates with
// indices base+i — the optimized replacement for the naive ScanCodes:
// a fill phase while the collector is short, then early abandonment
// against the collector's k-th best. The abandon bound is read once
// per group of four candidates; it only shrinks as pushes land, so
// abandoning against the slightly stale bound is conservative and the
// collector's contents stay bit-identical to a full evaluation.
func (q *ScalarQuantizer) ScanSQ(query []float32, codes []byte, base int, top *vecmath.TopK) {
	cs := q.Dim
	n := len(codes) / cs
	i := 0
	// Fill phase: no k-th best exists yet, so every candidate is pushed.
	for ; i < n; i++ {
		if _, full := top.Worst(); full {
			break
		}
		top.Push(base+i, q.Distance(query, codes[i*cs:(i+1)*cs]))
	}
	for ; i+4 <= n; i += 4 {
		bound, _ := top.Worst()
		if d, ok := q.distanceSQAbandon(query, codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(base+i, d)
		}
		if d, ok := q.distanceSQAbandon(query, codes[(i+1)*cs:(i+2)*cs], bound); ok {
			top.Push(base+i+1, d)
		}
		if d, ok := q.distanceSQAbandon(query, codes[(i+2)*cs:(i+3)*cs], bound); ok {
			top.Push(base+i+2, d)
		}
		if d, ok := q.distanceSQAbandon(query, codes[(i+3)*cs:(i+4)*cs], bound); ok {
			top.Push(base+i+3, d)
		}
	}
	for ; i < n; i++ {
		bound, _ := top.Worst()
		if d, ok := q.distanceSQAbandon(query, codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(base+i, d)
		}
	}
}

// ScanSQIDs is ScanSQ for an inverted list: candidate i is pushed
// under ids[i] instead of base+i. Kept as a specialized copy rather
// than an index-mapping closure, matching ScanCodesIDs.
func (q *ScalarQuantizer) ScanSQIDs(query []float32, codes []byte, ids []int32, top *vecmath.TopK) {
	cs := q.Dim
	n := len(codes) / cs
	i := 0
	for ; i < n; i++ {
		if _, full := top.Worst(); full {
			break
		}
		top.Push(int(ids[i]), q.Distance(query, codes[i*cs:(i+1)*cs]))
	}
	for ; i+4 <= n; i += 4 {
		bound, _ := top.Worst()
		if d, ok := q.distanceSQAbandon(query, codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(int(ids[i]), d)
		}
		if d, ok := q.distanceSQAbandon(query, codes[(i+1)*cs:(i+2)*cs], bound); ok {
			top.Push(int(ids[i+1]), d)
		}
		if d, ok := q.distanceSQAbandon(query, codes[(i+2)*cs:(i+3)*cs], bound); ok {
			top.Push(int(ids[i+2]), d)
		}
		if d, ok := q.distanceSQAbandon(query, codes[(i+3)*cs:(i+4)*cs], bound); ok {
			top.Push(int(ids[i+3]), d)
		}
	}
	for ; i < n; i++ {
		bound, _ := top.Worst()
		if d, ok := q.distanceSQAbandon(query, codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(int(ids[i]), d)
		}
	}
}

// ScanSQMasked is ScanSQ with a positional tombstone bitmap: bit i of
// dead (dead[i/64]>>(i%64)&1) marks candidate position i as deleted,
// and masked positions are skipped without evaluation — the contract
// streaming-ingest tombstones rely on, identical to ScanCodesMasked's.
// A nil or empty bitmap falls through to the unmasked scan. Live
// candidates see the identical accumulate/abandon/push sequence as a
// naive masked full evaluation. The mask test already breaks the
// straight-line accumulate path, so the steady phase skips the 4-way
// unroll, exactly as the PQ masked scans do.
func (q *ScalarQuantizer) ScanSQMasked(query []float32, codes []byte, base int, dead []uint64, top *vecmath.TopK) {
	if len(dead) == 0 {
		q.ScanSQ(query, codes, base, top)
		return
	}
	cs := q.Dim
	n := len(codes) / cs
	i := 0
	for ; i < n; i++ {
		if dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		if _, full := top.Worst(); full {
			break
		}
		top.Push(base+i, q.Distance(query, codes[i*cs:(i+1)*cs]))
	}
	for ; i < n; i++ {
		if dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		bound, _ := top.Worst()
		if d, ok := q.distanceSQAbandon(query, codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(base+i, d)
		}
	}
}

// ScanSQIDsMasked is ScanSQIDs with a positional tombstone bitmap (see
// ScanSQMasked for the mask contract): masked list positions are
// skipped, live ones push under ids[i].
func (q *ScalarQuantizer) ScanSQIDsMasked(query []float32, codes []byte, ids []int32, dead []uint64, top *vecmath.TopK) {
	if len(dead) == 0 {
		q.ScanSQIDs(query, codes, ids, top)
		return
	}
	cs := q.Dim
	n := len(codes) / cs
	i := 0
	for ; i < n; i++ {
		if dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		if _, full := top.Worst(); full {
			break
		}
		top.Push(int(ids[i]), q.Distance(query, codes[i*cs:(i+1)*cs]))
	}
	for ; i < n; i++ {
		if dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		bound, _ := top.Worst()
		if d, ok := q.distanceSQAbandon(query, codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(int(ids[i]), d)
		}
	}
}
