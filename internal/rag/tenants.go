package rag

import (
	"fmt"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/hitrate"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/llm"
	"vectorliterag/internal/metrics"
	"vectorliterag/internal/partition"
	"vectorliterag/internal/perfmodel"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/retrieval"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/tenant"
	"vectorliterag/internal/workload"
)

// TenantConfig describes one tenant of a multi-tenant run: its own
// corpus, traffic, and SLO tier.
type TenantConfig struct {
	Name string
	Tier tenant.Tier
	// W is the tenant's corpus (its own index, probe lists, and skew).
	W *dataset.Workload
	// Rate is the tenant's nominal arrival rate in requests/second. It
	// sizes the tenant's slice in the joint allocation even when a
	// RateSchedule drives the actual arrivals (a bursty tenant is
	// provisioned for its base rate, not its peak — the burst is what
	// the FairScheduler absorbs).
	Rate float64
	// RateSchedule, when non-nil, drives this tenant's arrivals as an
	// inhomogeneous Poisson stream.
	RateSchedule workload.Schedule
	// SLOSearch defaults to the tenant dataset's Table-I value.
	SLOSearch time.Duration
}

// MultiTenantOptions configures one multi-tenant serving run.
type MultiTenantOptions struct {
	Node    hw.Node
	Model   llm.ModelSpec
	Tenants []TenantConfig

	Duration time.Duration // arrival window (default 120s)
	Warmup   time.Duration // excluded prefix (default 20s)
	Drain    time.Duration // settling window (default 120s)
	Shape    workload.Shape
	Seed     uint64

	// MaxBatch caps retrieval batches (default 64).
	MaxBatch int
	// SchedulerInflight bounds requests concurrently inside the metered
	// section (admission to first token). The default of 32
	// approximates the Little's-law occupancy that sustains node
	// throughput at SLO-scale TTFT; anything beyond it would sit in
	// downstream FIFO queues where tier priority cannot act.
	SchedulerInflight int
	// SharedQueue disables the FairScheduler — the baseline where every
	// tenant's arrivals share one unmetered queue into the retrieval
	// engine. The joint allocation is unchanged, isolating what
	// scheduling alone buys.
	SharedQueue bool
	// Epsilon is the queuing factor of the joint allocator (default 1).
	Epsilon float64
	// FloorFrac is the guaranteed fraction of each tenant's minimum
	// feasible slice (default 0.25, see tenant.Inputs).
	FloorFrac float64
	// ProfileQueries sizes each tenant's calibration sample (default
	// 4000).
	ProfileQueries int
	// SLOGen overrides the measured generation-stage SLO.
	SLOGen time.Duration
	// Precision, when non-nil, extends the joint allocator with the
	// (tier, codec) refinement: leftover HBM budget upgrades each
	// tenant's hottest placed clusters from PQ to SQ8 (tier-weighted
	// marginal recall per byte), and each tenant's coldest CPU-resident
	// clusters demote to the modeled NVMe tier. Nil keeps the classic
	// placement-only allocation bit for bit.
	Precision *PrecisionOptions
	// Overload, when non-nil, bounds each tenant's admission queue and
	// optionally runs the brownout controller: per-tenant stage budgets
	// from each tenant's own SLOs, shed fractions biased by tier so
	// bronze sheds first and gold last. Requires the FairScheduler —
	// rejected with SharedQueue. Nil keeps every path byte-identical.
	Overload *OverloadOptions

	// Replicas > 1 serves the tenants on R identical multi-tenant nodes
	// behind a front-end router, on the parallel sharded engine. Each
	// node gets the full tenant lineup with its joint HBM allocation
	// sized for a 1/R traffic share.
	Replicas int
	// Policy picks the router policy for replicated runs (default
	// least-loaded).
	Policy serve.Policy
	// Workers and NetDelay mirror Options: worker goroutines for the
	// sharded engine (wall-clock only; 0 = all cores) and the modeled
	// front↔replica transit that doubles as the conservative lookahead.
	// Setting either (or Replicas > 1) selects the sharded engine;
	// NetDelay defaults to DefaultNetDelay there.
	Workers  int
	NetDelay time.Duration
}

// TenantResult is one tenant's share of a multi-tenant run.
type TenantResult struct {
	Name     string
	Tier     tenant.Tier
	Rate     float64
	SLOTotal time.Duration
	// Alloc is the tenant's slice of the joint HBM decision.
	Alloc tenant.Allocation
	// Summary aggregates the tenant's own requests against its own SLO.
	Summary metrics.Summary
	// PeakQueue is the high-water mark of the tenant's admission queue
	// (zero in the shared-queue baseline, which has no per-tenant
	// queues).
	PeakQueue int
	// Rejected counts the tenant's arrivals refused at admission (zero
	// without Overload; summed across replicas in a sharded run).
	Rejected int
}

// MultiTenantResult is one multi-tenant evaluation point.
type MultiTenantResult struct {
	Tenants []TenantResult
	// Fairness is Jain's index over per-tenant SLO attainment.
	Fairness float64
	// Attainment is the request-weighted aggregate attainment.
	Attainment float64
	// RecallGain is the served mean per-query recall gain from SQ8
	// upgrades across all tenants (zero without Precision).
	RecallGain float64
	Mu0        float64
	MuLLM      float64
	// BudgetBytes / UsedBytes are the joint allocator's index budget
	// and spend.
	BudgetBytes int64
	UsedBytes   int64
	AvgBatch    float64
	LLMGPUs     int
	SharedQueue bool
	Generated   int
	// Requests holds per-request records in arrival order (value
	// snapshots from the streaming collector).
	Requests []workload.Request
	// ServeWall / ServeAllocs / ServeBytes measure the simulation
	// section, as on Result (see beginServeSection).
	ServeWall   time.Duration
	ServeAllocs uint64
	ServeBytes  uint64

	// Replicas, Workers, NetDelay, and PerReplicaSubmitted echo the
	// sharded execution configuration (zero/nil on the single-node
	// path); Workers changes wall-clock only, never the schedule.
	Replicas            int
	Workers             int
	NetDelay            time.Duration
	PerReplicaSubmitted []int

	// Overload reports the admission-control and brownout outcome (nil
	// without MultiTenantOptions.Overload).
	Overload *OverloadReport
}

// normalizeMT fills defaults and validates the option set, returning
// the per-tenant combined SLO budgets.
func (opts *MultiTenantOptions) normalizeMT() ([]time.Duration, error) {
	if len(opts.Tenants) == 0 {
		return nil, fmt.Errorf("rag: no tenants")
	}
	if opts.Node.NumGPUs == 0 {
		return nil, fmt.Errorf("rag: node has no GPUs")
	}
	for i := range opts.Tenants {
		tc := &opts.Tenants[i]
		if tc.W == nil {
			return nil, fmt.Errorf("rag: tenant %d (%s) has no workload", i, tc.Name)
		}
		if tc.Rate <= 0 {
			return nil, fmt.Errorf("rag: tenant %d (%s) non-positive rate %v", i, tc.Name, tc.Rate)
		}
		if tc.RateSchedule != nil {
			if err := workload.ValidateSchedule(tc.RateSchedule); err != nil {
				return nil, fmt.Errorf("rag: tenant %d (%s): %w", i, tc.Name, err)
			}
		}
		if _, err := tenant.ParseTier(string(tc.Tier)); err != nil {
			return nil, fmt.Errorf("rag: tenant %d (%s): %w", i, tc.Name, err)
		}
		if tc.Name == "" {
			tc.Name = fmt.Sprintf("tenant-%d", i)
		}
		if tc.SLOSearch == 0 {
			tc.SLOSearch = tc.W.Spec.SLOSearch
		}
	}
	if opts.Duration == 0 {
		opts.Duration = 120 * time.Second
	}
	if opts.Warmup == 0 {
		opts.Warmup = 20 * time.Second
	}
	if opts.Drain == 0 {
		opts.Drain = 120 * time.Second
	}
	if opts.Shape == (workload.Shape{}) {
		opts.Shape = workload.DefaultShape()
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if opts.SchedulerInflight <= 0 {
		opts.SchedulerInflight = 32
	}
	if opts.SLOGen == 0 {
		slo, err := GenSLO(opts.Node, opts.Model, opts.Shape)
		if err != nil {
			return nil, err
		}
		opts.SLOGen = slo
	}
	if opts.Precision != nil {
		if err := opts.Precision.normalize(); err != nil {
			return nil, err
		}
	}
	if opts.Overload != nil {
		if opts.SharedQueue {
			return nil, fmt.Errorf("rag: overload control needs the fair scheduler's per-tenant queues; it cannot bound the shared-queue baseline")
		}
		if err := opts.Overload.normalize(); err != nil {
			return nil, err
		}
	}
	slos := make([]time.Duration, len(opts.Tenants))
	for i := range opts.Tenants {
		slos[i] = opts.Tenants[i].SLOSearch + opts.SLOGen
	}
	return slos, nil
}

// tenantDecision is the offline half of a multi-tenant run: per-tenant
// models, the joint allocation, and the materialized split plans.
type tenantDecision struct {
	alloc     tenant.Result
	plans     []*splitter.Plan
	cpuModels []costmodel.SearchModel
	mu0       float64
}

// decideTenants profiles every tenant, runs the joint allocator, and
// builds each tenant's split plan at its granted coverage.
func decideTenants(opts *MultiTenantOptions) (*tenantDecision, error) {
	n := opts.ProfileQueries
	if n <= 0 {
		n = 4000
	}
	mu0, err := bareCapacity(opts.Node, opts.Model, opts.Node.NumGPUs, opts.Shape)
	if err != nil {
		return nil, err
	}
	d := &tenantDecision{mu0: mu0}
	inputs := make([]tenant.Input, len(opts.Tenants))
	profs := make([]*profiler.AccessProfile, len(opts.Tenants))
	for i, tc := range opts.Tenants {
		prof, err := profiler.CollectAccess(tc.W, n, opts.Seed+1+101*uint64(i))
		if err != nil {
			return nil, fmt.Errorf("rag: tenant %s: %w", tc.Name, err)
		}
		est, err := hitrate.NewEstimator(prof)
		if err != nil {
			return nil, fmt.Errorf("rag: tenant %s: %w", tc.Name, err)
		}
		cm := costmodel.NewSearchModel(opts.Node.CPU, tc.W.Spec)
		perf, err := perfmodel.Fit(profiler.ProfileLatency(cm, profiler.DefaultBatches()))
		if err != nil {
			return nil, fmt.Errorf("rag: tenant %s: %w", tc.Name, err)
		}
		prefix := make([]int64, len(prof.Counts)+1)
		for k, c := range prof.HotOrder {
			prefix[k+1] = prefix[k] + tc.W.ClusterBytes(c)
		}
		inputs[i] = tenant.Input{
			Name: tc.Name, Tier: tc.Tier, Rate: tc.Rate,
			SLOSearch: tc.SLOSearch, Epsilon: opts.Epsilon,
			Perf: perf, Est: est, PrefixBytes: prefix,
		}
		profs[i] = prof
		d.cpuModels = append(d.cpuModels, cm)
	}
	ti := tenant.Inputs{
		Tenants: inputs,
		MemKV:   nodeKVBytes(opts.Node, opts.Model),
		Mu0:     mu0,
	}
	// This layer keeps zero-means-default semantics; the tenant package
	// itself honors explicit zeros through its pointer fields.
	if opts.FloorFrac != 0 {
		ti.FloorFrac = tenant.Float(opts.FloorFrac)
	}
	// Precision refinement: per-tenant recall deltas by hot rank feed the
	// allocator's upgrade pass. The allocator prices every upgrade at the
	// largest tenant ratio, so mixed-geometry lineups are billed
	// conservatively.
	var deltas [][]float64
	if opts.Precision != nil {
		deltas = make([][]float64, len(opts.Tenants))
		byRank := make([][]float64, len(opts.Tenants))
		var maxRatio float64
		for i, tc := range opts.Tenants {
			dl, err := profiler.SQRecallDeltas(profs[i])
			if err != nil {
				return nil, fmt.Errorf("rag: tenant %s: %w", tc.Name, err)
			}
			deltas[i] = dl
			byRank[i] = profs[i].RecallDeltasByRank(dl)
			if r := float64(tc.W.Spec.Dim) / float64(tc.W.Spec.CodeBytes); r > maxRatio {
				maxRatio = r
			}
		}
		ti.Precision = &tenant.PrecisionOptions{
			SQBytesRatio: maxRatio,
			RecallDelta:  byRank,
		}
	}
	alloc, err := tenant.JointAllocate(ti)
	if err != nil {
		return nil, err
	}
	d.alloc = alloc
	for i := range opts.Tenants {
		plan, err := splitter.Build(profs[i], alloc.Allocations[i].Rho, opts.Node.NumGPUs)
		if err != nil {
			return nil, fmt.Errorf("rag: tenant %s: %w", opts.Tenants[i].Name, err)
		}
		if opts.Precision != nil {
			if err := attachTenantPrecision(opts, profs[i], plan, deltas[i], alloc.Allocations[i], i); err != nil {
				return nil, fmt.Errorf("rag: tenant %s: %w", opts.Tenants[i].Name, err)
			}
		}
		d.plans = append(d.plans, plan)
	}
	return d, nil
}

// attachTenantPrecision materializes the joint allocator's codec
// decision on one tenant's plan: the NVMe demotion runs the shared
// coldest-suffix rule (partition.AssignPrecision with a zero SQ
// budget), then the allocator's chosen SQ set overlays it. The
// upgrade pass advances through each tenant's hot ranks in order,
// skipping zero-delta clusters without upgrading them, so the chosen
// set is exactly the first SQClusters positive-delta hot ranks.
func attachTenantPrecision(opts *MultiTenantOptions, prof *profiler.AccessProfile, plan *splitter.Plan, deltas []float64, al tenant.Allocation, idx int) error {
	ratio := float64(opts.Tenants[idx].W.Spec.Dim) / float64(opts.Tenants[idx].W.Spec.CodeBytes)
	prec, err := partition.AssignPrecision(partition.PrecisionInputs{
		Prof:          prof,
		Plan:          plan,
		RecallDeltas:  deltas,
		SQRatio:       ratio,
		SQBudgetBytes: 0,
		NVMeColdShare: opts.Precision.NVMeColdShare,
	})
	if err != nil {
		return err
	}
	left := al.SQClusters
	for _, c := range prof.HotOrder {
		if left == 0 {
			break
		}
		if !plan.IsHot(c) {
			break
		}
		if c >= len(deltas) || deltas[c] <= 0 {
			continue
		}
		prec.SQ[c] = true
		prec.SQClusters++
		prec.SQExtraBytes += int64(float64(prof.W.ClusterBytes(c)) * (ratio - 1))
		left--
	}
	// Planning-time gain estimate over the final SQ set (AssignPrecision
	// computed it before the overlay).
	var gain, work float64
	for c := range prec.SQ {
		w := float64(prof.Counts[c]) * float64(prof.W.ClusterBytes(c))
		work += w
		if prec.SQ[c] {
			gain += w * deltas[c]
		}
	}
	if work > 0 {
		prec.RecallGain = gain / work
	}
	plan.AttachPrecision(prec)
	return nil
}

// RunMultiTenant executes one multi-tenant evaluation point: N tenants
// with their own corpora, rates, and SLO tiers share one node. The
// joint allocator splits HBM across the tenants' GPU index caches
// (reserving KV for the aggregate generation rate), every tenant's
// arrivals multiplex onto one virtual timeline, and the FairScheduler
// meters admission into the shared retrieval engine — unless
// SharedQueue selects the unmetered baseline.
func RunMultiTenant(opts MultiTenantOptions) (*MultiTenantResult, error) {
	if opts.NetDelay < 0 {
		return nil, fmt.Errorf("rag: negative NetDelay %v", opts.NetDelay)
	}
	if opts.Replicas > 1 || opts.NetDelay > 0 || opts.Workers > 1 {
		return runMultiTenantSharded(opts)
	}
	slos, err := opts.normalizeMT()
	if err != nil {
		return nil, err
	}
	d, err := decideTenants(&opts)
	if err != nil {
		return nil, err
	}

	// One shared set of GPU states: every tenant's shard bytes stack up
	// on the same devices, shrinking the KV pool the LLM instances see.
	states := gpu.NewStates(opts.Node)
	for _, plan := range d.plans {
		for g := range plan.ShardBytes {
			if g < len(states) {
				states[g].ShardBytes += plan.ShardBytes[g]
			}
		}
	}
	gm := costmodel.GPUScanModel{GPU: opts.Node.GPU}
	slots := make([]retrieval.TenantSlot, len(opts.Tenants))
	for i, tc := range opts.Tenants {
		slots[i] = retrieval.TenantSlot{W: tc.W, Plan: d.plans[i], CPUModel: d.cpuModels[i], Priority: tc.Tier.Priority()}
	}

	var sched *serve.FairScheduler
	if !opts.SharedQueue {
		classes := make([]serve.TenantClass, len(opts.Tenants))
		for i, tc := range opts.Tenants {
			classes[i] = serve.TenantClass{Weight: tc.Tier.Weight(), Priority: tc.Tier.Priority()}
		}
		sched, err = serve.NewFairScheduler(classes, opts.SchedulerInflight)
		if err != nil {
			return nil, err
		}
	}

	var sim des.Sim
	pool := &workload.Pool{}
	coll := serve.NewCollector()
	retr := serve.RetrievalStage(func(forward serve.Sink) (retrieval.Engine, error) {
		// The shared config carries no Workload or CPUModel: the engine
		// prices every stage per tenant slot.
		return retrieval.NewMultiTenant(retrieval.Config{
			Sim:      &sim,
			Forward:  forward,
			MaxBatch: opts.MaxBatch,
			NVMe:     opts.Node.NVMe,
		}, slots, states, gm)
	})
	gen := serve.GenerationStage(func() (*llm.Cluster, error) {
		return llm.NewCluster(&sim, opts.Node, opts.Model, states, llm.DefaultEngineConfig())
	})
	var rig *overloadRig
	if opts.Overload != nil {
		budgets, bias := opts.overloadBudgets()
		rig, err = rigOverload(&sim, opts.Overload, sched, budgets, bias,
			rejectSink(coll.Abandon, pool.Release))
		if err != nil {
			return nil, err
		}
	}
	builders := []serve.Builder{serve.Admit(coll)}
	if sched != nil {
		builders = append(builders, serve.Scheduled(sched))
	}
	builders = append(builders, retr, gen)
	terminal := teeObserve(rig, coll.Done, pool.Release)
	pipe, err := serve.Compose(&sim, terminal, builders...)
	if err != nil {
		return nil, err
	}
	if sched != nil {
		// The scheduler meters the TTFT-relevant section — retrieval
		// queue, search, LLM wait, prefill — releasing the slot at first
		// token rather than at completion: decode proceeds concurrently
		// for many requests inside the LLM and must not hold admission
		// slots, while anything queued beyond the bound would sit in
		// downstream FIFO queues where tier priority cannot act. The
		// completion sink installed by Compose is re-installed unchanged.
		pipe.Generation().Cluster.SetCallbacks(sched.Release, terminal)
	}

	sec := beginServeSection()
	for i, tc := range opts.Tenants {
		seed := opts.Seed + 7 + 13*uint64(i)
		var arr *serve.Arrivals
		if tc.RateSchedule != nil {
			arr = serve.NewScheduledArrivals(tc.W, tc.RateSchedule, opts.Shape, seed)
		} else {
			arr = serve.NewArrivals(tc.W, tc.Rate, opts.Shape, seed)
		}
		arr.SetTenant(i)
		arr.SetPool(pool)
		arr.Start(&sim, des.Time(opts.Duration), pipe.Submit)
	}
	sim.RunUntil(des.Time(opts.Duration + opts.Drain))
	wall, allocs, bytes := sec.end()

	// Per-tenant summaries against each tenant's own combined SLO.
	// Records partition by tenant in arrival order, preserving the
	// aggregation order of the pre-record implementation bit for bit.
	all := coll.Requests()
	byTenant := make([][]workload.Request, len(opts.Tenants))
	for _, req := range all {
		t := req.Tenant
		if t < 0 || t >= len(byTenant) {
			t = 0
		}
		byTenant[t] = append(byTenant[t], req)
	}
	res := &MultiTenantResult{
		ServeWall: wall, ServeAllocs: allocs, ServeBytes: bytes,
		Mu0:         d.mu0,
		MuLLM:       d.alloc.MuLLM,
		BudgetBytes: d.alloc.BudgetBytes,
		UsedBytes:   d.alloc.UsedBytes,
		SharedQueue: opts.SharedQueue,
		Generated:   coll.Admitted(),
		Requests:    all,
		AvgBatch:    pipe.Retrieval().AvgBatch(),
		LLMGPUs:     pipe.Generation().GPUs(opts.Model.TP),
	}
	if g, ok := pipe.Retrieval().Engine.(retrieval.RecallReporter); ok {
		res.RecallGain = g.RecallGain()
	}
	atts := make([]float64, len(opts.Tenants))
	var okWeighted float64
	var total int
	for i, tc := range opts.Tenants {
		sum := metrics.Summarize(byTenant[i], slos[i], des.Time(opts.Warmup))
		tr := TenantResult{
			Name: tc.Name, Tier: tc.Tier, Rate: tc.Rate,
			SLOTotal: slos[i], Alloc: d.alloc.Allocations[i], Summary: sum,
		}
		if sched != nil {
			tr.PeakQueue = sched.PeakQueue(i)
			if rig != nil {
				tr.Rejected = sched.Rejected(i)
			}
		}
		res.Tenants = append(res.Tenants, tr)
		atts[i] = sum.Attainment
		okWeighted += sum.Attainment * float64(sum.N)
		total += sum.N
	}
	res.Fairness = metrics.JainIndex(atts)
	if total > 0 {
		res.Attainment = okWeighted / float64(total)
	}
	if rig != nil {
		res.Overload = rig.report(opts.Overload, len(opts.Tenants),
			des.Time(opts.Duration+opts.Drain), opts.Duration+opts.Drain)
	}
	return res, nil
}
