// SLO explorer: sweep the search-stage SLO and watch the
// latency-bounded partitioner trade GPU memory between the vector
// index and the KV cache — the paper's Table II and Fig. 16 knob,
// exposed as an operator tool.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	vlr "vectorliterag"
)

func main() {
	quick := flag.Bool("quick", false, "fewer SLO points and shorter runs for smoke tests")
	flag.Parse()
	slos := []time.Duration{
		100 * time.Millisecond, 150 * time.Millisecond,
		200 * time.Millisecond, 250 * time.Millisecond,
	}
	var duration time.Duration // zero = library default (120s)
	if *quick {
		slos = []time.Duration{100 * time.Millisecond, 250 * time.Millisecond}
		duration = 40 * time.Second
	}

	fmt.Println("building ORCAS-1K workload...")
	w, err := vlr.NewWorkload(vlr.Orcas1K)
	if err != nil {
		log.Fatal(err)
	}
	node := vlr.H100Node()
	model := vlr.Qwen3_32B

	fmt.Printf("\n%-10s %-8s %-12s %-12s %-12s %-14s\n",
		"SLO", "rho", "index GB", "KV GB/GPU", "batch-min η", "attain @30rps")
	for _, slo := range slos {
		sys, err := vlr.BuildSystem(vlr.SystemOptions{
			Workload: w, Node: node, Model: model, SLOSearch: slo, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Memory the partitioning leaves for KV on each GPU.
		perGPUShard := float64(sys.PlanBytes) / float64(node.NumGPUs)
		kvGB := (float64(node.GPU.UsableMem()) - float64(model.WeightBytesPerGPU()) - perGPUShard) / 1e9

		rep, err := vlr.Serve(vlr.ServeOptions{
			Workload: w, System: vlr.VLiteRAG, Rate: 30,
			Node: node, Model: model, SLOSearch: slo, Seed: 1, Duration: duration,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %-8.3f %-12.2f %-12.2f %-12.3f %-14.3f\n",
			slo, sys.Rho, float64(sys.PlanBytes)/1e9, kvGB, sys.TailHitRate,
			rep.Summary.Attainment)
	}
	fmt.Println("\nTighter SLOs cache more clusters (less KV); looser SLOs lean on the CPU.")
}
