package vectorliterag_test

import (
	"strings"
	"testing"
	"time"

	vlr "vectorliterag"
)

// smallWorkload keeps API tests fast by shrinking the physical
// realization.
func smallWorkload(t *testing.T, spec vlr.Spec) *vlr.Workload {
	t.Helper()
	w, err := vlr.NewWorkloadWithGen(spec, vlr.GenConfig{
		NCenters: 64, PerCenter: 64, Dim: 16,
		PhysNList: 64, PhysNProbe: 8, Templates: 256, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPublicSpecs(t *testing.T) {
	if vlr.WikiAll.Name != "Wiki-All" || vlr.Orcas1K.IndexBytes() < 39e9 {
		t.Fatal("dataset specs not exported correctly")
	}
	if vlr.Qwen3_32B.TP != 2 || vlr.Llama3_70B.TP != 4 {
		t.Fatal("model specs not exported correctly")
	}
	if vlr.H100Node().NumGPUs != 8 || vlr.L40SNode().NumGPUs != 8 {
		t.Fatal("nodes not exported correctly")
	}
	if s := vlr.DefaultShape(); s.InputTokens != 1024 || s.OutputTokens != 256 || s.TopK != 25 {
		t.Fatalf("default shape %+v", s)
	}
}

func TestBuildSystemDefaults(t *testing.T) {
	w := smallWorkload(t, vlr.Orcas1K)
	sys, err := vlr.BuildSystem(vlr.SystemOptions{Workload: w, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Rho <= 0 || sys.Rho >= 1 {
		t.Fatalf("rho = %v", sys.Rho)
	}
	if sys.PlanBytes <= 0 || sys.Plan == nil {
		t.Fatal("plan missing")
	}
	if sys.MeanHitRate < sys.TailHitRate {
		t.Fatalf("mean hit rate %v below tail %v", sys.MeanHitRate, sys.TailHitRate)
	}
	if sys.Rebuild.Total() <= 0 {
		t.Fatal("rebuild timing missing")
	}
	if _, err := vlr.BuildSystem(vlr.SystemOptions{}); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestServeAndPrebuilt(t *testing.T) {
	w := smallWorkload(t, vlr.Orcas1K)
	rep, err := vlr.Serve(vlr.ServeOptions{
		Workload: w, System: vlr.VLiteRAG, Rate: 15, Seed: 1,
		Duration: 40 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.N == 0 || rep.Summary.Attainment <= 0 {
		t.Fatalf("empty report %+v", rep.Summary)
	}
	// Prebuilt plan round trip: serving a built system must reuse its
	// coverage.
	sys, err := vlr.BuildSystem(vlr.SystemOptions{Workload: w, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := vlr.Serve(vlr.ServeOptions{
		Workload: w, System: vlr.VLiteRAG, Rate: 15, Seed: 1,
		Duration: 40 * time.Second, Prebuilt: sys,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Rho != sys.Rho {
		t.Fatalf("prebuilt rho %v not used (got %v)", sys.Rho, rep2.Rho)
	}
}

func TestServeCluster(t *testing.T) {
	w := smallWorkload(t, vlr.Orcas1K)
	rep, err := vlr.ServeCluster(vlr.ClusterOptions{
		ServeOptions: vlr.ServeOptions{
			Workload: w, System: vlr.VLiteRAG, Rate: 30, Seed: 1,
			Duration: 40 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != vlr.LeastLoaded {
		t.Fatalf("default policy %q", rep.Policy)
	}
	if len(rep.PerReplica) != 2 {
		t.Fatalf("default replica count: got %d reports", len(rep.PerReplica))
	}
	if rep.Summary.N == 0 || rep.Summary.Attainment <= 0 {
		t.Fatalf("empty cluster report %+v", rep.Summary)
	}
	for i, r := range rep.PerReplica {
		if r.Submitted == 0 {
			t.Fatalf("replica %d idle", i)
		}
	}
	if _, err := vlr.ServeCluster(vlr.ClusterOptions{
		ServeOptions: vlr.ServeOptions{Workload: w, Rate: 10},
		Policy:       "bogus",
	}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestServeDefaultsToVLiteRAG(t *testing.T) {
	w := smallWorkload(t, vlr.WikiAll)
	rep, err := vlr.Serve(vlr.ServeOptions{Workload: w, Rate: 10, Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rho <= 0 {
		t.Fatal("default system did not partition")
	}
}

func TestCapacity(t *testing.T) {
	mu, err := vlr.Capacity(vlr.H100Node(), vlr.Qwen3_32B)
	if err != nil {
		t.Fatal(err)
	}
	if mu < 20 || mu > 60 {
		t.Fatalf("capacity %v outside plausible band", mu)
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := vlr.Experiments()
	if len(names) != 25 {
		t.Fatalf("got %d experiments, want 25: %v", len(names), names)
	}
	_, err := vlr.RunExperiment("nope", true)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "adapt") || !strings.Contains(err.Error(), "fig11") {
		t.Fatalf("unknown-experiment error does not list valid ids: %v", err)
	}
	out, err := vlr.RunExperiment("fig3", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig 3") {
		t.Fatalf("unexpected output: %q", out)
	}
}

func TestServeAdaptiveAPI(t *testing.T) {
	w := smallWorkload(t, vlr.Orcas1K)
	rep, err := vlr.ServeAdaptive(vlr.AdaptiveServeOptions{
		ServeOptions: vlr.ServeOptions{
			Workload: w, Rate: 28, Seed: 1,
			Duration: 240 * time.Second, SLOSearch: 100 * time.Millisecond,
			Drift: []vlr.DriftEvent{{At: 45 * time.Second, Rotate: w.DefaultDriftRotation()}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExpectedHitRate <= 0 || rep.ExpectedHitRate > 1 {
		t.Fatalf("expected hit rate %v", rep.ExpectedHitRate)
	}
	if len(rep.Rebuilds) == 0 {
		t.Fatal("drift did not trigger a rebuild through the public API")
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("report has no attainment timeline")
	}
	last := rep.Timeline[len(rep.Timeline)-1]
	if last.MeanHitRate < rep.ExpectedHitRate-0.1 {
		t.Fatalf("final window hit %.3f never recovered toward %.3f", last.MeanHitRate, rep.ExpectedHitRate)
	}
	// Non-hybrid systems are rejected.
	if _, err := vlr.ServeAdaptive(vlr.AdaptiveServeOptions{
		ServeOptions: vlr.ServeOptions{Workload: w, System: vlr.CPUOnly, Rate: 10},
	}); err == nil {
		t.Fatal("adaptive CPU-only accepted")
	}
}

func TestRateScheduleAPI(t *testing.T) {
	w := smallWorkload(t, vlr.Orcas1K)
	rep, err := vlr.Serve(vlr.ServeOptions{
		Workload: w, Rate: 12, Seed: 1, Duration: 60 * time.Second,
		RateSchedule: vlr.BurstRate(10, 25, 30*time.Second, 8*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.N == 0 {
		t.Fatal("scheduled arrivals produced no requests")
	}
}

func TestDriftRotationAPI(t *testing.T) {
	w := smallWorkload(t, vlr.Orcas1K)
	w.SetPopularityRotation(100)
	if w.PopularityRotation() != 100 {
		t.Fatal("rotation not recorded")
	}
	w.SetPopularityRotation(-1)
	if w.PopularityRotation() != w.Templates()-1 {
		t.Fatalf("negative rotation not normalized: %d", w.PopularityRotation())
	}
}

func TestServeTenantsAPI(t *testing.T) {
	gold := smallWorkload(t, vlr.Orcas1K)
	bronze := smallWorkload(t, vlr.WikiAll)
	opts := vlr.MultiTenantServeOptions{
		Tenants: []vlr.TenantSpec{
			{Name: "gold", Tier: vlr.GoldTier, Workload: gold, Rate: 8},
			{Name: "bronze", Tier: vlr.BronzeTier, Workload: bronze, Rate: 4,
				RateSchedule: vlr.BurstRate(4, 25, 30*time.Second, 10*time.Second)},
		},
		Duration: 40 * time.Second, Seed: 1,
	}
	rep, err := vlr.ServeTenants(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("got %d tenant reports", len(rep.Tenants))
	}
	for _, tr := range rep.Tenants {
		if tr.Summary.N == 0 {
			t.Errorf("tenant %s saw no traffic", tr.Name)
		}
		if tr.Target <= 0 || tr.SLOTotal <= 0 {
			t.Errorf("tenant %s report incomplete: %+v", tr.Name, tr)
		}
	}
	if rep.Fairness <= 0 || rep.Fairness > 1 {
		t.Fatalf("fairness %v outside (0,1]", rep.Fairness)
	}
	if rep.UsedBytes > rep.BudgetBytes {
		t.Fatalf("allocation overran budget")
	}

	// The tier helpers round-trip.
	if len(vlr.Tiers()) != 3 {
		t.Fatalf("tiers: %v", vlr.Tiers())
	}
	if tier, err := vlr.ParseTier("silver"); err != nil || tier != vlr.SilverTier {
		t.Fatalf("ParseTier: %v %v", tier, err)
	}
	if _, err := vlr.ParseTier("platinum"); err == nil {
		t.Fatal("unknown tier accepted")
	}

	// Validation propagates.
	if _, err := vlr.ServeTenants(vlr.MultiTenantServeOptions{}); err == nil {
		t.Fatal("empty tenant set accepted")
	}
}

func TestServeLiveAPI(t *testing.T) {
	w := smallWorkload(t, vlr.Orcas1K)
	opts := vlr.ServeOptions{
		Workload: w, System: vlr.VLiteRAG, Rate: 15, Seed: 1,
		Duration: 40 * time.Second, Drain: 20 * time.Second,
	}
	rep, err := vlr.ServeLive(vlr.LiveServeOptions{
		ServeOptions: opts,
		Ingest: vlr.LiveIngestOptions{
			InsertRate: 3, DeleteRate: 1,
			ReencodeEvery: 10 * time.Second, FreshnessSLO: 500 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.N == 0 || rep.Summary.Attainment <= 0 {
		t.Fatalf("empty report %+v", rep.Summary)
	}
	if rep.Freshness.Inserts == 0 || rep.Freshness.Deletes == 0 {
		t.Fatalf("no mutations recorded: %+v", rep.Freshness)
	}
	if rep.Freshness.TTS.P50 <= 0 || rep.FreshnessSLO != 500*time.Millisecond {
		t.Fatalf("freshness summary wrong: %+v (SLO %v)", rep.Freshness, rep.FreshnessSLO)
	}
	// Freshness excludes warmup arrivals; the raw count covers them all.
	if rep.Mutations < rep.Freshness.Inserts+rep.Freshness.Deletes {
		t.Fatalf("mutation count %d below freshness window's %d+%d",
			rep.Mutations, rep.Freshness.Inserts, rep.Freshness.Deletes)
	}
	if rep.Reencodes == 0 || rep.SizeSkew <= 0 || rep.ResidualRatio <= 0 {
		t.Fatalf("live trackers empty: reencodes %d, skew %v, residual %v",
			rep.Reencodes, rep.SizeSkew, rep.ResidualRatio)
	}
	inserts := 0
	for _, win := range rep.Timeline {
		inserts += win.Inserts
	}
	if inserts == 0 {
		t.Fatal("timeline windows carry no insert annotations")
	}
	// No ingest configured ⇒ exactly Serve.
	frozen, err := vlr.ServeLive(vlr.LiveServeOptions{ServeOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := vlr.Serve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Summary != plain.Summary || frozen.Mutations != 0 {
		t.Fatalf("frozen live run differs from Serve: %+v vs %+v", frozen.Summary, plain.Summary)
	}
}

func TestPublicHelpers(t *testing.T) {
	if got := vlr.Systems(); len(got) != 4 {
		t.Fatalf("Systems() = %v", got)
	}
	if got := vlr.AllSystems(); len(got) != 5 {
		t.Fatalf("AllSystems() = %v", got)
	}
	fs, err := vlr.ParseFaults("crash@20s:r0:10s")
	if err != nil || len(fs) != 1 || fs[0].Kind != vlr.CrashFault {
		t.Fatalf("ParseFaults: %v, %v", fs, err)
	}
	if _, err := vlr.ParseFaults("nonsense"); err == nil {
		t.Fatal("bad fault grammar accepted")
	}
	rf := vlr.RandomFaults(7, 3, time.Minute, 4)
	if len(rf) != 4 {
		t.Fatalf("RandomFaults produced %d events", len(rf))
	}
	rf2 := vlr.RandomFaults(7, 3, time.Minute, 4)
	for i := range rf {
		if rf[i] != rf2[i] {
			t.Fatal("RandomFaults not deterministic per seed")
		}
	}
}

func TestRunExperimentCSV(t *testing.T) {
	out, err := vlr.RunExperimentCSV("ingest", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "arm,attainment") || !strings.Contains(out, "streaming+compaction") {
		t.Fatalf("CSV output malformed: %q", out)
	}
	if _, err := vlr.RunExperimentCSV("nope", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := vlr.RunExperimentCSV("tab1", true); err == nil {
		t.Fatal("experiment without CSV exporter accepted")
	}
}
