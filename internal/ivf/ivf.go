// Package ivf implements an Inverted File (IVF) index with product
// quantization — the index family VectorLiteRAG targets (paper §II).
//
// Construction: a coarse quantizer (k-means centroids) partitions the
// database into nlist clusters; each database vector is assigned to its
// nearest centroid and stored in that cluster's inverted list as a PQ
// code. Search proceeds in the three stages of the paper's Figure 2:
//
//  1. coarse quantization (CQ): rank clusters by centroid distance and
//     keep the top nprobe;
//  2. LUT construction: precompute query-to-codeword partial distances;
//  3. LUT scan: accumulate approximate distances over the candidate
//     clusters' codes and keep the top-k.
//
// The stages are exposed separately (Probe / BuildLUT / ScanCluster) so
// the hybrid CPU–GPU engine can route stage 3 per cluster, which is
// exactly the granularity VectorLiteRAG partitions at.
package ivf

import (
	"fmt"
	"sort"

	"vectorliterag/internal/kmeans"
	"vectorliterag/internal/parallel"
	"vectorliterag/internal/pq"
	"vectorliterag/internal/vecmath"
)

// BuildConfig controls index construction.
type BuildConfig struct {
	Dim        int
	NList      int // number of IVF clusters
	PQM        int // PQ subspaces (code bytes per vector)
	PQK        int // codewords per subspace (<= 256)
	TrainIters int
	Seed       uint64
	// Workers sizes the training/encoding worker pool; non-positive
	// means one per CPU core. The built index is bit-identical for any
	// value (deterministic chunking; see internal/parallel).
	Workers int
}

// Index is a trained IVF-PQ index.
type Index struct {
	dim       int
	nlist     int
	centroids []float32 // nlist x dim
	quant     *pq.Quantizer
	lists     []list
	nvecs     int
	workers   int // build-time worker-pool size, reused by Recall
}

type list struct {
	ids   []int32
	codes []byte
}

// Build trains the coarse quantizer and PQ codebooks on the data and
// populates the inverted lists. data is row-major with cfg.Dim columns.
func Build(data []float32, cfg BuildConfig) (*Index, error) {
	if cfg.Dim <= 0 || len(data) == 0 || len(data)%cfg.Dim != 0 {
		return nil, fmt.Errorf("ivf: bad data length %d for dim %d", len(data), cfg.Dim)
	}
	n := len(data) / cfg.Dim
	if cfg.NList <= 0 || cfg.NList > n {
		return nil, fmt.Errorf("ivf: nlist %d invalid for %d vectors", cfg.NList, n)
	}
	coarse, err := kmeans.Train(data, kmeans.Config{K: cfg.NList, Dim: cfg.Dim, MaxIters: cfg.TrainIters, Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("ivf: coarse quantizer: %w", err)
	}
	// PQ is trained on residuals-free raw vectors (IVFPQ "by_residual=false"
	// mode), which keeps LUT semantics simple: one LUT per query serves
	// every cluster.
	quant, err := pq.Train(data, pq.Config{Dim: cfg.Dim, M: cfg.PQM, K: cfg.PQK, Iters: cfg.TrainIters, Seed: cfg.Seed + 1, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("ivf: pq: %w", err)
	}
	ix := &Index{
		dim:       cfg.Dim,
		nlist:     cfg.NList,
		centroids: coarse.Centroids,
		quant:     quant,
		lists:     make([]list, cfg.NList),
		nvecs:     n,
		workers:   cfg.Workers,
	}
	// Encode every vector concurrently into a flat code matrix, then fill
	// the inverted lists in index order — the same list layout the
	// sequential append loop produced.
	cs := quant.CodeSize()
	codes := make([]byte, n*cs)
	parallel.For(n, cfg.Workers, func(start, end int) {
		for i := start; i < end; i++ {
			ix.quant.Encode(data[i*cfg.Dim:(i+1)*cfg.Dim], codes[i*cs:(i+1)*cs])
		}
	})
	for i := 0; i < n; i++ {
		c := coarse.Assignments[i]
		ix.lists[c].ids = append(ix.lists[c].ids, int32(i))
		ix.lists[c].codes = append(ix.lists[c].codes, codes[i*cs:(i+1)*cs]...)
	}
	return ix, nil
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// NList returns the number of clusters.
func (ix *Index) NList() int { return ix.nlist }

// NVectors returns the number of indexed vectors.
func (ix *Index) NVectors() int { return ix.nvecs }

// CodeSize returns bytes per stored PQ code.
func (ix *Index) CodeSize() int { return ix.quant.CodeSize() }

// ClusterSize returns the number of vectors in cluster c.
func (ix *Index) ClusterSize(c int) int { return len(ix.lists[c].ids) }

// ClusterSizes returns a copy of all cluster sizes.
func (ix *Index) ClusterSizes() []int {
	out := make([]int, ix.nlist)
	for i := range ix.lists {
		out[i] = len(ix.lists[i].ids)
	}
	return out
}

// Probe runs coarse quantization: it returns the nprobe cluster IDs
// nearest to the query, most similar first.
func (ix *Index) Probe(query []float32, nprobe int) []int {
	if len(query) != ix.dim {
		panic(fmt.Sprintf("ivf: query dim %d != index dim %d", len(query), ix.dim))
	}
	if nprobe <= 0 {
		return nil
	}
	if nprobe > ix.nlist {
		nprobe = ix.nlist
	}
	top := vecmath.NewTopK(nprobe)
	for c := 0; c < ix.nlist; c++ {
		top.Push(c, vecmath.SquaredL2(query, ix.centroids[c*ix.dim:(c+1)*ix.dim]))
	}
	nbrs := top.Sorted()
	out := make([]int, len(nbrs))
	for i, nb := range nbrs {
		out[i] = nb.Index
	}
	return out
}

// BuildLUT precomputes the query's distance lookup table (stage 2).
func (ix *Index) BuildLUT(query []float32) *pq.LUT {
	return ix.quant.BuildLUT(query)
}

// ScanCluster scans one inverted list with the given LUT, pushing
// candidates into top (stage 3 for a single cluster).
func (ix *Index) ScanCluster(lut *pq.LUT, cluster int, top *vecmath.TopK) {
	l := &ix.lists[cluster]
	cs := ix.quant.CodeSize()
	for i, id := range l.ids {
		top.Push(int(id), lut.Distance(l.codes[i*cs:(i+1)*cs]))
	}
}

// Search runs the full three-stage pipeline and returns the top-k
// neighbors in ascending distance order.
func (ix *Index) Search(query []float32, nprobe, k int) []vecmath.Neighbor {
	probes := ix.Probe(query, nprobe)
	lut := ix.BuildLUT(query)
	top := vecmath.NewTopK(k)
	for _, c := range probes {
		ix.ScanCluster(lut, c, top)
	}
	return top.Sorted()
}

// SearchClusters scans only the listed clusters (after an external
// Probe), which is how the hybrid engine computes the CPU-resident part
// of a query.
func (ix *Index) SearchClusters(query []float32, clusters []int, k int) []vecmath.Neighbor {
	lut := ix.BuildLUT(query)
	top := vecmath.NewTopK(k)
	for _, c := range clusters {
		ix.ScanCluster(lut, c, top)
	}
	return top.Sorted()
}

// Recall computes the fraction of brute-force top-k ground truth
// recovered by the index at the given nprobe, averaged over the queries
// (row-major). It is the quality metric used in place of the paper's
// NDCG@50 (see DESIGN.md §6).
func (ix *Index) Recall(data, queries []float32, nprobe, k int) float64 {
	nq := len(queries) / ix.dim
	if nq == 0 {
		return 0
	}
	// Per-query recalls compute concurrently; the mean folds in query
	// order so the result matches a sequential run exactly.
	perQuery := make([]float64, nq)
	parallel.For(nq, ix.workers, func(start, end int) {
		for qi := start; qi < end; qi++ {
			q := queries[qi*ix.dim : (qi+1)*ix.dim]
			truth := vecmath.BruteForceTopK(q, data, ix.dim, k)
			got := ix.Search(q, nprobe, k)
			gotSet := make(map[int]bool, len(got))
			for _, nb := range got {
				gotSet[nb.Index] = true
			}
			hit := 0
			for _, nb := range truth {
				if gotSet[nb.Index] {
					hit++
				}
			}
			perQuery[qi] = float64(hit) / float64(k)
		}
	})
	sum := 0.0
	for _, v := range perQuery {
		sum += v
	}
	return sum / float64(nq)
}

// HotClusters returns cluster IDs sorted by the supplied access counts,
// hottest first; ties break toward lower IDs for determinism.
func HotClusters(accessCounts []int64) []int {
	ids := make([]int, len(accessCounts))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		return accessCounts[ids[a]] > accessCounts[ids[b]]
	})
	return ids
}
