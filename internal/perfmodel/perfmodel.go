// Package perfmodel turns latency profiles into the piecewise-linear
// batch-size models of paper §IV-A1: T_CQ(b) and T_LUT(b) are fitted
// independently from profiled samples and evaluated by interpolation,
// exactly as the original system fits its profiled Faiss runs. The
// hybrid search latency of Eq. 1,
//
//	tau_s(b) = T_CQ(b) + (1 - eta) * T_LUT(b),
//
// and its inversions (solve for eta, solve for b) live here because the
// partitioning algorithm consumes them.
package perfmodel

import (
	"fmt"
	"time"

	"vectorliterag/internal/profiler"
	"vectorliterag/internal/stats"
)

// Model is the fitted pair of stage curves.
type Model struct {
	cq  *stats.PiecewiseLinear // seconds vs batch size
	lut *stats.PiecewiseLinear
}

// Fit builds the model from profiled samples (at least two distinct
// batch sizes).
func Fit(samples []profiler.LatencySample) (*Model, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("perfmodel: need >=2 samples, got %d", len(samples))
	}
	xs := make([]float64, len(samples))
	cqY := make([]float64, len(samples))
	lutY := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = float64(s.Batch)
		cqY[i] = s.CQ.Seconds()
		lutY[i] = s.LUT.Seconds()
	}
	cq, err := stats.FitPiecewiseLinear(xs, cqY)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: cq fit: %w", err)
	}
	lut, err := stats.FitPiecewiseLinear(xs, lutY)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: lut fit: %w", err)
	}
	return &Model{cq: cq, lut: lut}, nil
}

// CQTime returns the modeled coarse quantization latency at batch b.
func (m *Model) CQTime(b int) time.Duration {
	return secs(m.cq.Eval(float64(max(1, b))))
}

// LUTTime returns the modeled full (uncached) LUT-stage latency at
// batch b.
func (m *Model) LUTTime(b int) time.Duration {
	return secs(m.lut.Eval(float64(max(1, b))))
}

// SearchTime returns the modeled CPU-only search latency at batch b.
func (m *Model) SearchTime(b int) time.Duration {
	return m.CQTime(b) + m.LUTTime(b)
}

// HybridTime evaluates Eq. 1 at batch b with (batch-minimum) hit rate
// eta.
func (m *Model) HybridTime(b int, eta float64) time.Duration {
	if eta < 0 {
		eta = 0
	}
	if eta > 1 {
		eta = 1
	}
	return m.CQTime(b) + time.Duration((1-eta)*float64(m.LUTTime(b)))
}

// HybridTimeTiered evaluates Eq. 1 with the miss path split across
// storage tiers: coldPenalty is the extra fetch latency of the
// NVMe-resident share of a fully uncached batch (see
// costmodel.NVMeScanTime), and like T_LUT it shrinks with the hit
// rate — cached clusters are never fetched from the SSD. With a zero
// penalty this is exactly HybridTime, so tier-unaware callers are
// unchanged.
func (m *Model) HybridTimeTiered(b int, eta float64, coldPenalty time.Duration) time.Duration {
	if eta < 0 {
		eta = 0
	}
	if eta > 1 {
		eta = 1
	}
	return m.HybridTime(b, eta) + time.Duration((1-eta)*float64(coldPenalty))
}

// EtaForBudget solves Eq. 1 for the hit rate needed to bring batch-b
// search latency within budget:
//
//	eta = (T_search(b) - budget) / T_LUT(b)
//
// A result <= 0 means the CPU alone meets the budget; > 1 means no hit
// rate can (CQ alone exceeds the budget).
func (m *Model) EtaForBudget(b int, budget time.Duration) float64 {
	lut := float64(m.LUTTime(b))
	if lut <= 0 {
		return 0
	}
	return (float64(m.SearchTime(b)) - float64(budget)) / lut
}

func secs(s float64) time.Duration {
	if s < 0 {
		s = 0
	}
	return time.Duration(s * float64(time.Second))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
