// Parallel sharded simulation: a conservative (CMB-style) coordinator
// that runs several Sims — shards — on separate goroutines and lets
// them exchange timestamped messages over Links with a declared
// minimum delay (the lookahead).
//
// # Safety rule
//
// Each shard owner publishes a horizon: a promise that no message it
// has not yet sent will carry a timestamp earlier than horizon +
// link delay. A shard may execute its next event at time t only while
// t < bound, where bound is the minimum over its inbound links of the
// source's horizon plus that link's delay — the classic conservative
// condition, so no shard ever executes past a message it has not seen.
//
// # Determinism rule
//
// The merged schedule must be a pure function of the event graph, not
// of goroutine interleaving, so the same Group produces bit-identical
// results for any worker count. Two rules make that hold:
//
//   - Delivery instant: an inbound message is moved into the shard's
//     event queue only when its timestamp is ≤ the shard's next local
//     event time (and < bound). Delivering any earlier would give the
//     message a smaller FIFO sequence number than local events that a
//     not-yet-executed earlier event is still going to schedule — an
//     ordering that would depend on how far the sender had raced
//     ahead. Gating on the local clock makes the delivery instant
//     logical, so same-instant ties always resolve the same way:
//     already-scheduled local events first, then messages.
//   - Link order: messages are drained from inbound links in link
//     creation order. Because a message is delivered only when its
//     timestamp is < bound, every same-instant message on every other
//     link is already visible (an unseen one would have to carry a
//     timestamp ≥ bound), so the iteration order is complete and the
//     cross-link tie-break deterministic.
//
// With those rules, running the shards on one goroutine or sixteen
// changes only which shard *stalls* waiting for a horizon, never the
// order in which events fire. workers=1 is therefore not a separate
// code path but the same algorithm on one goroutine — the reference
// schedule is the parallel schedule.
//
// # Termination
//
// A Group is done when no shard holds an executable event at or before
// the deadline and no relevant message is in flight. That is detected
// with a double-scan: read the global activity counter, check every
// shard's idle flag and every link's sent==delivered balance, read the
// counter again; an unchanged counter proves no send or delivery raced
// the scan. This avoids the horizon-climbing pathology of pure
// null-message termination, where draining an idle tail of the run
// takes (deadline − last event)/lookahead rounds.
package des

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxTime is the "no event / no constraint" sentinel.
const maxTime = Time(math.MaxInt64)

// horizonEvery bounds how many events a shard executes between horizon
// publications mid-burst, so peers waiting on this shard's promise are
// never starved by a long local stretch. Publishing is one atomic
// store; 32 keeps it well under 1% of event cost.
const horizonEvery = 32

// Msg is one cross-shard message: the link's deliver callback runs
// with arg on the destination shard at virtual time at.
type Msg struct {
	at  Time
	arg any
}

// Shard is one Sim inside a Group, owned by exactly one worker
// goroutine at a time. All scheduling on Sim must happen from the
// shard's own event handlers (or before Run starts).
type Shard struct {
	Sim Sim

	id    int
	group *Group
	in    []*Link
	out   []*Link

	// horizon is the published promise (see package comment). Only the
	// owning worker writes it; any shard reads it.
	horizon atomic.Int64
	// idle is true while the shard is blocked with no local event at or
	// before the deadline; the quiescence scan reads it.
	idle atomic.Bool

	// Owner-local state (never touched across goroutines).
	sincePub int
	wasIdle  bool
}

// ID returns the shard's index in its group (creation order).
func (s *Shard) ID() int { return s.id }

// Link is a one-way FIFO message channel between two shards with a
// minimum delay: every Send must be timestamped at least delay past
// the sender's current virtual time. That delay is the lookahead the
// conservative synchronization runs on.
type Link struct {
	src, dst *Shard
	delay    Time
	deliver  func(any)

	// stamp is bumped once per producer append; the consumer caches the
	// last value it drained and skips the lock while it is unchanged.
	stamp atomic.Uint64
	// sent counts messages timestamped at or before the group deadline;
	// delivered counts consumer pops. The quiescence scan compares them.
	sent      atomic.Int64
	delivered atomic.Int64

	mu  sync.Mutex
	buf []Msg // producer side, appended under mu

	// Consumer side: only the destination shard's owner touches these.
	// pending/buf double-buffer, so steady state allocates nothing.
	pending []Msg
	head    int
	seen    uint64
}

// Delay returns the link's minimum delay (its lookahead).
func (l *Link) Delay() Time { return l.delay }

// Send queues a message for delivery on the destination shard at
// virtual time at. It must be called from the source shard's event
// context, and at must honor the link's lookahead (now + delay);
// violating that would let the receiver execute past an unseen
// message, so it panics.
func (l *Link) Send(at Time, arg any) {
	if at < l.src.Sim.Now()+l.delay {
		panic(fmt.Sprintf("des: link %d->%d send at t=%d violates lookahead (now=%d, delay=%d)",
			l.src.id, l.dst.id, at, l.src.Sim.Now(), l.delay))
	}
	l.mu.Lock()
	l.buf = append(l.buf, Msg{at: at, arg: arg})
	l.mu.Unlock()
	l.stamp.Add(1)
	if at <= l.src.group.deadline {
		l.sent.Add(1)
	}
	l.src.group.activity.Add(1)
}

// peek returns the next undelivered message without consuming it,
// refilling the consumer buffer from the producer side when needed.
func (l *Link) peek() (Msg, bool) {
	if l.head < len(l.pending) {
		return l.pending[l.head], true
	}
	if l.stamp.Load() == l.seen {
		return Msg{}, false
	}
	l.mu.Lock()
	l.seen = l.stamp.Load()
	spare := l.pending[:0]
	l.pending = l.buf
	l.buf = spare
	l.mu.Unlock()
	l.head = 0
	if len(l.pending) == 0 {
		return Msg{}, false
	}
	return l.pending[0], true
}

// pop consumes the message peek returned.
func (l *Link) pop() {
	l.head++
	l.delivered.Add(1)
	l.dst.group.activity.Add(1)
}

// Drain consumes every message still undelivered after Run — messages
// timestamped past the deadline, "in the network" when the clock
// stopped — in send order. Call only after Run has returned.
func (l *Link) Drain(fn func(at Time, arg any)) {
	for _, m := range l.pending[l.head:] {
		fn(m.at, m.arg)
	}
	l.pending = l.pending[:0]
	l.head = 0
	l.mu.Lock()
	buf := l.buf
	l.buf = l.buf[:0]
	l.mu.Unlock()
	for _, m := range buf {
		fn(m.at, m.arg)
	}
}

// Group is a set of shards wired by links, run to a common deadline.
type Group struct {
	shards []*Shard
	links  []*Link

	deadline Time
	// activity counts every send and every delivery; the quiescence
	// double-scan uses it to prove nothing raced the scan.
	activity atomic.Int64
	quiesced atomic.Bool
	qmu      sync.Mutex
}

// NewGroup returns an empty shard group.
func NewGroup() *Group { return &Group{} }

// AddShard appends a fresh shard to the group.
func (g *Group) AddShard() *Shard {
	s := &Shard{id: len(g.shards), group: g}
	g.shards = append(g.shards, s)
	return s
}

// Shards returns the group's shards in creation order.
func (g *Group) Shards() []*Shard { return g.shards }

// Connect wires a one-way link from src to dst with the given minimum
// delay (must be positive — zero lookahead cannot make conservative
// progress through a cycle). deliver runs on dst's timeline, at each
// message's timestamp, with the message's arg.
func Connect(src, dst *Shard, delay Time, deliver func(any)) (*Link, error) {
	if src == nil || dst == nil {
		return nil, fmt.Errorf("des: nil shard")
	}
	if src.group != dst.group {
		return nil, fmt.Errorf("des: shards belong to different groups")
	}
	if delay <= 0 {
		return nil, fmt.Errorf("des: link needs positive delay (lookahead), got %d", delay)
	}
	if deliver == nil {
		return nil, fmt.Errorf("des: link needs a deliver callback")
	}
	l := &Link{src: src, dst: dst, delay: delay, deliver: deliver}
	src.out = append(src.out, l)
	dst.in = append(dst.in, l)
	src.group.links = append(src.group.links, l)
	return l, nil
}

// Run executes the group until no event at or before deadline remains
// anywhere, spreading shards round-robin over the given number of
// worker goroutines. workers ≤ 1 runs everything on the calling
// goroutine — the identical algorithm, so results match any worker
// count bit for bit.
func (g *Group) Run(deadline Time, workers int) {
	g.deadline = deadline
	g.quiesced.Store(false)
	if workers > len(g.shards) {
		workers = len(g.shards)
	}
	if workers <= 1 {
		g.runWorker(g.shards)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		var own []*Shard
		for i := w; i < len(g.shards); i += workers {
			own = append(own, g.shards[i])
		}
		wg.Add(1)
		go func(own []*Shard) {
			defer wg.Done()
			g.runWorker(own)
		}(own)
	}
	wg.Wait()
}

// runWorker sweeps its owned shards, advancing each as far as the
// conservative bound allows, until the group quiesces.
func (g *Group) runWorker(own []*Shard) {
	for {
		progressed := false
		for _, s := range own {
			if g.advance(s) {
				progressed = true
			}
		}
		if g.quiesced.Load() {
			return
		}
		if progressed {
			continue
		}
		if g.checkQuiescent() {
			return
		}
		runtime.Gosched()
	}
}

// advance runs one shard until it blocks on a peer's horizon (or runs
// out of work), applying the delivery and link-order rules from the
// package comment. It reports whether any event executed.
func (g *Group) advance(s *Shard) bool {
	progressed := false
	bound := s.computeBound()
	for {
		next, ok := s.Sim.nextAt()
		nt := maxTime
		if ok {
			nt = next
		}
		// Deliver safe inbound messages, in link order. Each delivery
		// becomes the new next local event, so later links' same-instant
		// messages chain in behind it deterministically.
		for _, l := range s.in {
			for {
				m, okm := l.peek()
				if !okm || m.at >= bound || m.at > nt || m.at > g.deadline {
					break
				}
				s.wake()
				s.Sim.AtArg(m.at, l.deliver, m.arg)
				l.pop()
				nt = m.at
			}
		}
		if nt < bound && nt <= g.deadline {
			s.wake()
			s.Sim.Step()
			progressed = true
			s.sincePub++
			if s.sincePub >= horizonEvery {
				// Mid-burst promise: future sends fire at ≥ now + delay.
				s.publish(s.Sim.Now())
			}
			continue
		}
		// Blocked. Peers may have published since the bound was cached;
		// retry once with a fresh bound before stalling.
		if nb := s.computeBound(); nb > bound {
			bound = nb
			continue
		}
		break
	}
	s.block(bound)
	return progressed
}

// computeBound returns the earliest instant at which an unseen inbound
// message could still arrive: min over inbound links of the source's
// horizon plus the link delay.
func (s *Shard) computeBound() Time {
	bound := maxTime
	for _, l := range s.in {
		h := Time(l.src.horizon.Load())
		b := maxTime
		if h < maxTime-l.delay {
			b = h + l.delay
		}
		if b < bound {
			bound = b
		}
	}
	return bound
}

// wake clears the idle flag before the shard delivers or executes.
// The store is sequenced before the delivery's activity bump, which is
// what lets the quiescence double-scan trust a true idle flag.
func (s *Shard) wake() {
	if s.wasIdle {
		s.idle.Store(false)
		s.wasIdle = false
	}
}

// block publishes the shard's stall-time horizon — the earliest
// instant anything could still execute here: its next local event, its
// earliest undelivered message, or the bound itself — and refreshes
// the idle flag for the quiescence scan.
func (s *Shard) block(bound Time) {
	h := bound
	nt, ok := s.Sim.nextAt()
	if ok && nt < h {
		h = nt
	}
	for _, l := range s.in {
		if m, okm := l.peek(); okm && m.at < h {
			h = m.at
		}
	}
	s.publish(h)
	idle := !ok || nt > s.group.deadline
	if idle != s.wasIdle {
		s.idle.Store(idle)
		s.wasIdle = idle
	}
}

// publish raises the shard's horizon (it never moves backward — the
// promise only strengthens).
func (s *Shard) publish(h Time) {
	s.sincePub = 0
	if h > Time(s.horizon.Load()) {
		s.horizon.Store(int64(h))
	}
}

// checkQuiescent runs the double-scan termination check: with the
// activity counter unchanged around a scan that saw every shard idle
// and every link balanced, no event at or before the deadline can ever
// execute again, anywhere.
func (g *Group) checkQuiescent() bool {
	if g.quiesced.Load() {
		return true
	}
	g.qmu.Lock()
	defer g.qmu.Unlock()
	if g.quiesced.Load() {
		return true
	}
	c1 := g.activity.Load()
	for _, s := range g.shards {
		if !s.idle.Load() {
			return false
		}
	}
	for _, l := range g.links {
		if l.sent.Load() != l.delivered.Load() {
			return false
		}
	}
	if g.activity.Load() != c1 {
		return false
	}
	g.quiesced.Store(true)
	return true
}
