// Package brownout implements closed-loop overload control for the
// serving pipeline: per-stage latency budgets, a windowed monitor on
// the collector path, and a fixed knob-shedding ladder that trades
// retrieval quality for availability when a stage overruns its budget.
//
// The control loop runs entirely on the DES timeline. Completed
// requests are observed where the collector records them (wired via
// serve.Tee, the same pattern adapt.Controller uses); each closes out
// a ratio of measured stage latency to that tenant's stage budget.
// Every Window observations the controller reads the p90 of those
// ratios: a stage past its budget raises the ladder level, both stages
// comfortably under it for RestoreWindows consecutive windows lowers
// it. The asymmetry — raise on one bad window, restore only after
// several good ones — is the hysteresis that keeps the loop from
// flapping at the budget boundary.
//
// Shedding is stamped per request at scheduler dispatch time (the
// FairScheduler's OnDispatch hook), biased per tenant so bronze sheds
// before silver before gold. The rungs reuse existing downstream
// machinery: Probe rides workload.Request.Degrade (the resilient
// router's nprobe-shed path), K rides Request.KShed plus a Shape
// mutation the LLM engine prices, and DropSQ rides Request.ForcePQ
// (the PR 9 per-cluster codec dispatch, run through the base PQ codec).
package brownout

import (
	"fmt"
	"sort"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/stats"
	"vectorliterag/internal/workload"
)

// Rung is one level of the knob-shedding ladder: the shed fractions
// applied (before tier bias) to every request dispatched while the
// controller holds this level.
type Rung struct {
	// Probe is the nprobe shed fraction, stamped onto Request.Degrade —
	// the cheapest quality knob, shed first.
	Probe float64
	// K is the rerank-depth shed fraction: Shape.TopK and the
	// context-dependent input tokens shrink by this fraction, cutting
	// both retrieval rerank work and LLM prefill cost.
	K float64
	// DropSQ, the last resort, scans SQ8-upgraded clusters through
	// their base PQ codec (ForcePQ), giving back the precision
	// refinement's recall gain for its scan-byte cost.
	DropSQ bool
}

// Ladder is the fixed shedding order: nprobe first, then rerank depth,
// precision last — quality knobs in increasing order of recall cost,
// the quality-before-availability trade RAG-Stack argues for.
func Ladder() []Rung {
	return []Rung{
		{},                                 // level 0: fair weather, nothing shed
		{Probe: 0.2},                       // shave the probe tail
		{Probe: 0.4},                       // deeper nprobe shed
		{Probe: 0.4, K: 0.3},               // start cutting rerank depth / context
		{Probe: 0.6, K: 0.5},               // deep shed on both
		{Probe: 0.6, K: 0.5, DropSQ: true}, // give back SQ8 recall
	}
}

// StageBudget is one tenant's latency budget split across the two
// pipeline stages. Retrieval is measured arrival→SearchDone (queueing
// included — queueing is precisely the symptom overload control must
// see), generation SearchDone→FirstToken.
type StageBudget struct {
	Retrieval  time.Duration
	Generation time.Duration
}

// Config tunes the controller. The zero value of every field selects a
// sensible default, so Config{} is a working configuration.
type Config struct {
	// Window is the number of completed requests per monitoring window
	// (default 64).
	Window int
	// Restore is the ratio both stage p90s must stay under for a window
	// to count toward restoration (default 0.7 — comfortably inside the
	// budget, not just barely under it).
	Restore float64
	// RestoreWindows is how many consecutive good windows lower the
	// level by one (default 2).
	RestoreWindows int
	// MaxShed caps every stamped shed fraction after tier bias
	// (default 0.6), so even the deepest brownout leaves a floor of
	// retrieval quality.
	MaxShed float64
}

func (c Config) window() int {
	if c.Window <= 0 {
		return 64
	}
	return c.Window
}

func (c Config) restore() float64 {
	if c.Restore <= 0 {
		return 0.7
	}
	return c.Restore
}

func (c Config) restoreWindows() int {
	if c.RestoreWindows <= 0 {
		return 2
	}
	return c.RestoreWindows
}

func (c Config) maxShed() float64 {
	if c.MaxShed <= 0 {
		return 0.6
	}
	return c.MaxShed
}

// Controller is the closed-loop brownout state machine. It is
// single-goroutine like the simulator timeline it runs on; in a
// sharded run each replica owns its own controller, so decisions
// depend only on that replica's schedule and the bit-identical
// schedule contract is preserved for any worker count.
type Controller struct {
	sim     *des.Sim
	cfg     Config
	ladder  []Rung
	budgets []StageBudget // per tenant
	bias    []float64     // per tenant, from Tier.BrownoutBias

	level    int
	maxLevel int
	okStreak int

	retrRatios []float64
	genRatios  []float64
	scratch    []float64

	stamped   int
	shedSum   float64
	enteredAt des.Time // level left 0 at this instant (valid when level > 0)
	inBrown   time.Duration
}

// NewController builds a controller over the given per-tenant stage
// budgets and tier biases (parallel slices; one entry each in a
// single-tenant run). Every budget must be positive — a zero budget
// would make every request an overrun and pin the ladder at max.
func NewController(sim *des.Sim, cfg Config, budgets []StageBudget, bias []float64) (*Controller, error) {
	if sim == nil {
		return nil, fmt.Errorf("brownout: nil simulator")
	}
	if len(budgets) == 0 || len(budgets) != len(bias) {
		return nil, fmt.Errorf("brownout: need matching budgets and biases, got %d and %d",
			len(budgets), len(bias))
	}
	for i, b := range budgets {
		if b.Retrieval <= 0 || b.Generation <= 0 {
			return nil, fmt.Errorf("brownout: tenant %d non-positive stage budget %v/%v",
				i, b.Retrieval, b.Generation)
		}
	}
	for i, v := range bias {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("brownout: tenant %d bias %v outside [0,1]", i, v)
		}
	}
	w := cfg.window()
	return &Controller{
		sim:        sim,
		cfg:        cfg,
		ladder:     Ladder(),
		budgets:    append([]StageBudget(nil), budgets...),
		bias:       append([]float64(nil), bias...),
		retrRatios: make([]float64, 0, w),
		genRatios:  make([]float64, 0, w),
		scratch:    make([]float64, 0, w),
	}, nil
}

// Observe feeds one completed request into the monitor — wire it into
// the collector-path Tee. Requests that never produced a first token
// (rejected, failed) carry no stage latencies and are skipped; their
// damage shows up through the latencies of the requests that did
// complete around them.
func (c *Controller) Observe(req *workload.Request) {
	if req.FirstToken == 0 || req.SearchDone == 0 {
		return
	}
	t := c.clamp(req.Tenant)
	b := c.budgets[t]
	c.retrRatios = append(c.retrRatios, float64(req.SearchDone-req.ArrivalAt)/float64(b.Retrieval))
	c.genRatios = append(c.genRatios, float64(req.FirstToken-req.SearchDone)/float64(b.Generation))
	if len(c.retrRatios) >= c.cfg.window() {
		c.decide()
	}
}

// decide closes the window: p90 of the budget ratios per stage, then
// raise / hold / restore.
func (c *Controller) decide() {
	retr := c.p90(c.retrRatios)
	gen := c.p90(c.genRatios)
	c.retrRatios = c.retrRatios[:0]
	c.genRatios = c.genRatios[:0]
	switch {
	case retr > 1 || gen > 1:
		c.okStreak = 0
		if c.level < len(c.ladder)-1 {
			c.setLevel(c.level + 1)
		}
	case retr < c.cfg.restore() && gen < c.cfg.restore():
		c.okStreak++
		if c.okStreak >= c.cfg.restoreWindows() && c.level > 0 {
			c.setLevel(c.level - 1)
			c.okStreak = 0
		}
	default:
		// In the dead band between Restore and 1: hold the level and
		// restart the good-window count.
		c.okStreak = 0
	}
}

func (c *Controller) p90(sample []float64) float64 {
	c.scratch = append(c.scratch[:0], sample...)
	sort.Float64s(c.scratch)
	return stats.PercentileSorted(c.scratch, 0.90)
}

// setLevel moves the ladder level and keeps the time-in-brownout
// accounting straight across 0 ↔ >0 transitions.
func (c *Controller) setLevel(l int) {
	if c.level == 0 && l > 0 {
		c.enteredAt = c.sim.Now()
	}
	if c.level > 0 && l == 0 {
		c.inBrown += time.Duration(c.sim.Now() - c.enteredAt)
	}
	c.level = l
	if l > c.maxLevel {
		c.maxLevel = l
	}
}

// Stamp applies the current rung to a request about to be dispatched —
// wire it as the FairScheduler's OnDispatch hook. Stamping at dispatch
// rather than arrival means a request that queued through a level
// change gets the level in force when it actually enters service.
func (c *Controller) Stamp(req *workload.Request) {
	if c.level == 0 {
		return
	}
	probe, k, dropSQ := c.Sheds(req.Tenant, c.level)
	if probe > req.Degrade {
		req.Degrade = probe
	}
	if k > 0 {
		req.KShed = k
		req.Shape = shedShape(req.Shape, k)
	}
	if dropSQ {
		req.ForcePQ = true
	}
	c.stamped++
	c.shedSum += probe
}

// Sheds returns the effective shed triple for a tenant at a ladder
// level: the rung's fractions scaled by the tenant's tier bias and
// clamped to MaxShed. Pure — the property tests sweep it directly.
func (c *Controller) Sheds(tenant, level int) (probe, k float64, dropSQ bool) {
	if level <= 0 || level >= len(c.ladder) {
		if level >= len(c.ladder) {
			level = len(c.ladder) - 1
		} else {
			return 0, 0, false
		}
	}
	rung := c.ladder[level]
	bias := c.bias[c.clamp(tenant)]
	probe = clampShed(rung.Probe*bias, c.cfg.maxShed())
	k = clampShed(rung.K*bias, c.cfg.maxShed())
	dropSQ = rung.DropSQ && bias > 0
	return probe, k, dropSQ
}

func clampShed(v, max float64) float64 {
	if v > max {
		return max
	}
	return v
}

// shedShape shrinks the request's rerank depth and the context-
// dependent share of its input tokens by fraction k. The first
// qBaseTokens input tokens model the question itself and survive any
// shed; what shrinks is the retrieved context, in proportion to the
// documents no longer reranked into it.
func shedShape(s workload.Shape, k float64) workload.Shape {
	const qBaseTokens = 64
	if s.TopK > 0 {
		if s.TopK = int(float64(s.TopK) * (1 - k)); s.TopK < 1 {
			s.TopK = 1
		}
	}
	if s.InputTokens > qBaseTokens {
		s.InputTokens = qBaseTokens + int(float64(s.InputTokens-qBaseTokens)*(1-k))
	}
	return s
}

func (c *Controller) clamp(t int) int {
	if t < 0 || t >= len(c.bias) {
		return 0
	}
	return t
}

// Level returns the current ladder level.
func (c *Controller) Level() int { return c.level }

// MaxLevel returns the deepest level the run reached.
func (c *Controller) MaxLevel() int { return c.maxLevel }

// StampedRequests returns how many dispatches carried a non-zero rung.
func (c *Controller) StampedRequests() int { return c.stamped }

// MeanShed returns the mean probe-shed fraction over stamped requests
// (0 when nothing was stamped) — the experiment's recall give-up proxy.
func (c *Controller) MeanShed() float64 {
	if c.stamped == 0 {
		return 0
	}
	return c.shedSum / float64(c.stamped)
}

// TimeInBrownout returns total virtual time spent above level 0, the
// open interval up to now included.
func (c *Controller) TimeInBrownout(now des.Time) time.Duration {
	d := c.inBrown
	if c.level > 0 {
		d += time.Duration(now - c.enteredAt)
	}
	return d
}

// NumLevels returns the ladder depth (level 0 included).
func (c *Controller) NumLevels() int { return len(c.ladder) }

// MaxShed returns the effective shed cap.
func (c *Controller) MaxShed() float64 { return c.cfg.maxShed() }
