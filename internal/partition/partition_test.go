package partition

import (
	"testing"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hitrate"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/perfmodel"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/splitter"
)

type fixture struct {
	perf *perfmodel.Model
	est  *hitrate.Estimator
	prof *profiler.AccessProfile
	spec dataset.Spec
}

func setup(t *testing.T, spec dataset.Spec) fixture {
	t.Helper()
	gc := dataset.GenConfig{NCenters: 64, PerCenter: 64, Dim: 16, PhysNList: 64, PhysNProbe: 8, Templates: 256, Seed: 5}
	w, err := dataset.Build(spec, gc)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profiler.CollectAccess(w, 4000, 31)
	if err != nil {
		t.Fatal(err)
	}
	est, err := hitrate.NewEstimator(prof)
	if err != nil {
		t.Fatal(err)
	}
	sm := costmodel.NewSearchModel(hw.Xeon8462Y(), spec)
	perf, err := perfmodel.Fit(profiler.ProfileLatency(sm, profiler.DefaultBatches()))
	if err != nil {
		t.Fatal(err)
	}
	return fixture{perf: perf, est: est, prof: prof, spec: spec}
}

func (f fixture) inputs() Inputs {
	return Inputs{
		SLOSearch:    f.spec.SLOSearch,
		Perf:         f.perf,
		Est:          f.est,
		MemKV:        300 << 30, // ~node-wide KV pool for Qwen3-32B-class deployments
		Mu0:          34,
		IndexBytesAt: splitter.IndexBytesAt(f.prof),
	}
}

func TestLatencyBoundedBasic(t *testing.T) {
	f := setup(t, dataset.Orcas1K)
	res, err := LatencyBounded(f.inputs())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("ORCAS-1K at its own SLO should be feasible: %+v", res)
	}
	if res.Rho <= 0 || res.Rho >= 1 {
		t.Fatalf("rho = %v, want interior point (CPU alone misses the budget, full GPU is wasteful)", res.Rho)
	}
	if res.ExpectedBatch < 1 {
		t.Fatalf("expected batch %d", res.ExpectedBatch)
	}
	if res.TauS != f.spec.SLOSearch/2 {
		t.Fatalf("tauS = %v, want SLO/2 with eps=1", res.TauS)
	}
	// The chosen point must satisfy Eq. 1 within the budget.
	lat := f.perf.HybridTime(res.ExpectedBatch, res.EtaMin)
	if lat > res.TauS+res.TauS/10 {
		t.Fatalf("chosen rho misses budget: hybrid %v vs tau %v", lat, res.TauS)
	}
}

func TestTighterSLONeedsMoreCoverage(t *testing.T) {
	// Table II: stricter SLOs allocate more index to GPU.
	f := setup(t, dataset.Orcas1K)
	var prev float64 = -1
	for _, slo := range []time.Duration{250 * time.Millisecond, 200 * time.Millisecond, 150 * time.Millisecond, 100 * time.Millisecond} {
		in := f.inputs()
		in.SLOSearch = slo
		res, err := LatencyBounded(in)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Rho < prev-0.02 {
			t.Fatalf("coverage fell from %v to %v when SLO tightened to %v", prev, res.Rho, slo)
		}
		prev = res.Rho
	}
}

func TestVeryLooseSLONeedsNoGPU(t *testing.T) {
	f := setup(t, dataset.Orcas1K)
	in := f.inputs()
	in.SLOSearch = 10 * time.Second
	res, err := LatencyBounded(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho > 0.05 {
		t.Fatalf("10s SLO still caches %v of clusters", res.Rho)
	}
}

func TestImpossibleSLOReportsInfeasible(t *testing.T) {
	f := setup(t, dataset.Orcas1K)
	in := f.inputs()
	in.SLOSearch = time.Millisecond // below CQ time: no cache can fix it
	res, err := LatencyBounded(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatalf("1ms SLO reported feasible: %+v", res)
	}
}

func TestConvergesQuickly(t *testing.T) {
	// Paper: convergence in under a minute of wall time; here the loop
	// itself must converge in a handful of bisection steps.
	f := setup(t, dataset.Orcas1K)
	res, err := LatencyBounded(f.inputs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 64 {
		t.Fatalf("did not converge: %d iterations", res.Iterations)
	}
}

func TestInputValidation(t *testing.T) {
	f := setup(t, dataset.WikiAll)
	in := f.inputs()
	in.Perf = nil
	if _, err := LatencyBounded(in); err == nil {
		t.Fatal("nil perf accepted")
	}
	in = f.inputs()
	in.Mu0 = 0
	if _, err := LatencyBounded(in); err == nil {
		t.Fatal("zero Mu0 accepted")
	}
}

func TestLowerThroughputNeedsLessCoverage(t *testing.T) {
	// A slower LLM implies smaller batches, higher tail hit rates, and
	// therefore less required coverage (the feedback loop of §IV-A3).
	f := setup(t, dataset.Orcas1K)
	fast := f.inputs()
	slow := f.inputs()
	slow.Mu0 = 8
	rFast, err := LatencyBounded(fast)
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := LatencyBounded(slow)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.ExpectedBatch > rFast.ExpectedBatch {
		t.Fatalf("slower LLM planned a bigger batch: %d vs %d", rSlow.ExpectedBatch, rFast.ExpectedBatch)
	}
	if rSlow.Rho > rFast.Rho+0.02 {
		t.Fatalf("slower LLM needs more coverage: %v vs %v", rSlow.Rho, rFast.Rho)
	}
}

func TestHedraRetrievalBoundCachesAggressively(t *testing.T) {
	f := setup(t, dataset.Orcas1K)
	in := HedraInputs{
		Perf: f.perf, Est: f.est,
		MemKV: 300 << 30, Mu0: 200, // retrieval-bound regime
		IndexBytesAt: splitter.IndexBytesAt(f.prof),
		BatchCap:     64,
	}
	res, err := Hedra(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho <= 0 {
		t.Fatal("retrieval-bound regime should cache something")
	}
	// The spare-memory rule: cached bytes never exceed the KV the LLM
	// does not need for the bottleneck throughput.
	eta0 := f.est.MeanHitRate(0)
	muBot := 64.0 / f.perf.HybridTime(64, eta0).Seconds()
	spare := int64(float64(in.MemKV) * (1 - muBot/in.Mu0))
	if res.IndexBytes > spare {
		t.Fatalf("hedra cached %d bytes, above the %d spare-KV bound", res.IndexBytes, spare)
	}
	// And it over-caches relative to any latency need: the remaining LLM
	// throughput is still above the bottleneck.
	if res.MuLLM < muBot*0.95 {
		t.Fatalf("hedra starved the LLM below the bottleneck: %.1f < %.1f", res.MuLLM, muBot)
	}
}

func TestHedraIgnoresLatencyObjective(t *testing.T) {
	// HedraRAG's defining limitation (paper §VI-D): its partitioning
	// point has no latency input at all — it depends only on throughput
	// curves, so it cannot adapt to SLO changes like Algorithm 1 does.
	f := setup(t, dataset.Orcas1K)
	in := HedraInputs{
		Perf: f.perf, Est: f.est,
		MemKV: 300 << 30, Mu0: 200,
		IndexBytesAt: splitter.IndexBytesAt(f.prof),
		BatchCap:     64,
	}
	a, err := Hedra(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hedra(in) // identical inputs — deterministic
	if err != nil {
		t.Fatal(err)
	}
	if a.Rho != b.Rho {
		t.Fatal("hedra not deterministic")
	}
	// Meanwhile the latency-bounded point moves with the SLO.
	tight := f.inputs()
	tight.SLOSearch = 100 * time.Millisecond
	loose := f.inputs()
	loose.SLOSearch = 400 * time.Millisecond
	rTight, err := LatencyBounded(tight)
	if err != nil {
		t.Fatal(err)
	}
	rLoose, err := LatencyBounded(loose)
	if err != nil {
		t.Fatal(err)
	}
	if rTight.Rho <= rLoose.Rho {
		t.Fatalf("latency-bounded rho did not respond to SLO: tight %v loose %v", rTight.Rho, rLoose.Rho)
	}
}

func TestHedraLLMBoundKeepsIndexOnCPU(t *testing.T) {
	// Paper §VI-D: when the LLM is the slower stage, HedraRAG allocates
	// all GPU memory to the LLM.
	f := setup(t, dataset.Orcas1K)
	in := HedraInputs{
		Perf: f.perf, Est: f.est,
		MemKV: 300 << 30, Mu0: 5, // LLM-bound
		IndexBytesAt: splitter.IndexBytesAt(f.prof),
		BatchCap:     64,
	}
	res, err := Hedra(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 0 {
		t.Fatalf("LLM-bound hedra cached %v", res.Rho)
	}
}
