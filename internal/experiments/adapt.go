package experiments

import (
	"fmt"
	"strings"
	"time"

	"vectorliterag/internal/adapt"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/metrics"
	"vectorliterag/internal/rag"
	"vectorliterag/internal/update"
	"vectorliterag/internal/workload"
)

// AdaptResult is the online-adaptation study (paper §IV-B3, beyond the
// paper's offline Fig. 9 costing): one non-stationary run — a mid-run
// popularity rotation — served by the static vLiteRAG plan and by the
// adaptive controller, under identical arrivals and drift. The artifact
// is attainment-over-time for both arms plus the controller's trigger
// timeline, showing detection, the background rebuild, the mid-reload
// CPU divert, and recovery inside a single run.
type AdaptResult struct {
	Dataset   string
	Model     string
	Rate      float64
	SLOSearch time.Duration
	DriftAt   time.Duration
	Rotate    int

	ExpectedHit  float64 // model expectation the monitor starts from
	Windows      []AdaptWindow
	Rebuilds     []adapt.RebuildRecord
	StaticPost   float64 // post-drift attainment, static plan
	AdaptivePost float64 // post-drift attainment, adaptive
	ValidateErr  string  // non-empty when a rebuild broke the paper's envelope
}

// AdaptWindow is one bucket of the paired attainment series.
type AdaptWindow struct {
	Start                  time.Duration
	StaticAtt, AdaptiveAtt float64
	StaticHit, AdaptiveHit float64
}

// adaptBucket is the timeline resolution.
const adaptBucket = 30 * time.Second

// Adapt runs the drift study on ORCAS-2K + Qwen3-32B: the dataset whose
// CPU scan is heavy enough that a stranded hot set actually costs SLO
// attainment, at a rate the fresh plan sustains comfortably.
func Adapt(cfg Config) (*AdaptResult, error) {
	w, err := WorkloadFor(dataset.Orcas2K)
	if err != nil {
		return nil, err
	}
	dep := deployments()[1] // Qwen3-32B on the H100 node
	duration := 360 * time.Second
	if cfg.Quick {
		duration = 240 * time.Second
	}
	res := &AdaptResult{
		Dataset:   dataset.Orcas2K.Name,
		Model:     dep.Model.Name,
		Rate:      20,
		SLOSearch: 150 * time.Millisecond,
		DriftAt:   45 * time.Second,
		Rotate:    w.DefaultDriftRotation(),
	}
	opts := rag.AdaptiveOptions{Options: rag.Options{
		Node: dep.Node, Model: dep.Model, W: w, Kind: rag.VLiteRAG,
		Rate: res.Rate, Seed: cfg.Seed,
		Duration: duration, Drain: 120 * time.Second,
		SLOSearch: res.SLOSearch,
		Drift:     []dataset.DriftEvent{{At: res.DriftAt, Rotate: res.Rotate}},
	}}

	adaptive, err := rag.RunAdaptive(opts)
	if err != nil {
		return nil, fmt.Errorf("adaptive arm: %w", err)
	}
	static, err := rag.Run(opts.Options)
	if err != nil {
		return nil, fmt.Errorf("static arm: %w", err)
	}

	res.ExpectedHit = adaptive.ExpectedHitRate
	res.Rebuilds = adaptive.Rebuilds
	for _, rb := range adaptive.Rebuilds {
		if rb.Aborted != "" {
			res.ValidateErr = "aborted: " + rb.Aborted
		} else if err := update.Validate(rb.Timing); err != nil && res.ValidateErr == "" {
			res.ValidateErr = err.Error()
		}
	}
	res.StaticPost = attainmentFrom(static.Requests, res.DriftAt, static.SLOTotal)
	res.AdaptivePost = attainmentFrom(adaptive.Requests, res.DriftAt, adaptive.SLOTotal)

	st := metrics.Timeline(static.Requests, static.SLOTotal, adaptBucket)
	ad := metrics.Timeline(adaptive.Requests, adaptive.SLOTotal, adaptBucket)
	n := len(st)
	if len(ad) < n {
		n = len(ad)
	}
	for i := 0; i < n; i++ {
		res.Windows = append(res.Windows, AdaptWindow{
			Start:     st[i].Start,
			StaticAtt: st[i].Attainment, AdaptiveAtt: ad[i].Attainment,
			StaticHit: st[i].MeanHitRate, AdaptiveHit: ad[i].MeanHitRate,
		})
	}
	return res, nil
}

// attainmentFrom computes SLO attainment over requests arriving at or
// after the cutoff (unserved count as violations, as in Summarize).
func attainmentFrom(reqs []workload.Request, from time.Duration, slo time.Duration) float64 {
	n, ok := 0, 0
	for i := range reqs {
		r := &reqs[i]
		if time.Duration(r.ArrivalAt) < from {
			continue
		}
		n++
		if r.FirstToken > 0 && time.Duration(r.TTFT()) <= slo {
			ok++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(ok) / float64(n)
}

// Render formats the attainment-over-time table and the trigger
// timeline.
func (r *AdaptResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online adaptation: %s + %s @ %.0f req/s, SLO_search %v\n",
		r.Dataset, r.Model, r.Rate, r.SLOSearch)
	fmt.Fprintf(&b, "popularity rotates by %d templates at t=%v; expected hit rate %.3f\n\n",
		r.Rotate, r.DriftAt, r.ExpectedHit)

	t := &table{header: []string{"window", "static att", "adaptive att", "static hit", "adaptive hit", "events"}}
	for _, win := range r.Windows {
		events := []string{}
		if r.DriftAt >= win.Start && r.DriftAt < win.Start+adaptBucket {
			events = append(events, "drift")
		}
		for i, rb := range r.Rebuilds {
			if trig := time.Duration(rb.TriggeredAt); trig >= win.Start && trig < win.Start+adaptBucket {
				events = append(events, fmt.Sprintf("trigger#%d", i+1))
			}
			if rb.SwappedAt > 0 {
				if swap := time.Duration(rb.SwappedAt); swap >= win.Start && swap < win.Start+adaptBucket {
					events = append(events, fmt.Sprintf("swap#%d", i+1))
				}
			}
		}
		t.add(win.Start.String(), f3(win.StaticAtt), f3(win.AdaptiveAtt),
			f3(win.StaticHit), f3(win.AdaptiveHit), strings.Join(events, " "))
	}
	b.WriteString(t.String())

	b.WriteString("\nrebuild timeline:\n")
	if len(r.Rebuilds) == 0 {
		b.WriteString("  (none triggered)\n")
	}
	for i, rb := range r.Rebuilds {
		if rb.Aborted != "" {
			fmt.Fprintf(&b, "  #%d triggered %v, ABORTED (%s)\n",
				i+1, time.Duration(rb.TriggeredAt).Round(time.Millisecond), rb.Aborted)
			continue
		}
		fmt.Fprintf(&b, "  #%d triggered %v: profile %v + algorithm %v + split %v + load %v = %v; swap at %v; rho %.3f -> %.3f\n",
			i+1, time.Duration(rb.TriggeredAt).Round(time.Millisecond),
			rb.Timing.Profiling.Round(time.Millisecond), rb.Timing.Algorithm.Round(time.Millisecond),
			rb.Timing.Splitting.Round(time.Millisecond), rb.Timing.Loading.Round(time.Millisecond),
			rb.Timing.Total().Round(time.Millisecond),
			time.Duration(rb.SwappedAt).Round(time.Millisecond), rb.OldRho, rb.NewRho)
	}
	if r.ValidateErr != "" {
		fmt.Fprintf(&b, "  WARNING: %s\n", r.ValidateErr)
	}
	fmt.Fprintf(&b, "\npost-drift attainment: static %.3f, adaptive %.3f", r.StaticPost, r.AdaptivePost)
	if r.AdaptivePost > r.StaticPost && len(r.Rebuilds) > 0 && r.ValidateErr == "" {
		b.WriteString("  (recovered within the run ✓)\n")
	} else {
		b.WriteString("\n")
	}
	return b.String()
}

// CSV exports the paired attainment series, one row per window.
func (r *AdaptResult) CSV() string {
	rows := [][]string{}
	for _, win := range r.Windows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", win.Start.Seconds()),
			fmt.Sprintf("%.4f", win.StaticAtt),
			fmt.Sprintf("%.4f", win.AdaptiveAtt),
			fmt.Sprintf("%.4f", win.StaticHit),
			fmt.Sprintf("%.4f", win.AdaptiveHit),
		})
	}
	return writeCSV([]string{"window_start_s", "static_attainment", "adaptive_attainment",
		"static_hit_rate", "adaptive_hit_rate"}, rows)
}
