package metrics

import (
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/workload"
)

// Window is one bucket of an attainment-over-time series: the requests
// that *arrived* inside [Start, Start+width), their SLO attainment, and
// the mean served hit rate the retrieval tier recorded for them. It is
// the unit of the drift-study artifact — attainment dips when the plan
// goes stale and recovers after the adaptive swap.
type Window struct {
	Start       time.Duration
	N           int
	Unserved    int
	Attainment  float64
	MeanHitRate float64 // over served requests; 0 when none served
}

// Timeline buckets requests by arrival time into fixed windows and
// computes per-window SLO attainment. Requests still stuck in the
// system count as violations, exactly as in Summarize. Windows run from
// time zero through the last arrival; empty windows are kept so the
// series has no gaps.
func Timeline(reqs []*workload.Request, slo time.Duration, width time.Duration) []Window {
	if width <= 0 || len(reqs) == 0 {
		return nil
	}
	var last des.Time
	for _, r := range reqs {
		if r.ArrivalAt > last {
			last = r.ArrivalAt
		}
	}
	n := int(last/des.Time(width)) + 1
	wins := make([]Window, n)
	ok := make([]int, n)
	served := make([]int, n)
	hit := make([]float64, n)
	for i := range wins {
		wins[i].Start = time.Duration(i) * width
	}
	for _, r := range reqs {
		b := int(r.ArrivalAt / des.Time(width))
		wins[b].N++
		if r.FirstToken == 0 {
			wins[b].Unserved++
			continue
		}
		served[b]++
		hit[b] += r.HitRate
		if time.Duration(r.TTFT()) <= slo {
			ok[b]++
		}
	}
	for i := range wins {
		if wins[i].N > 0 {
			wins[i].Attainment = float64(ok[i]) / float64(wins[i].N)
		}
		if served[i] > 0 {
			wins[i].MeanHitRate = hit[i] / float64(served[i])
		}
	}
	return wins
}
