// Fleet-scale parallel simulation: a replica fleet behind a
// least-loaded front end, simulated on the parallel sharded engine.
// Each replica's pipeline (admission → retrieval → generation) runs on
// its own shard timeline; the front end owns arrivals and routing; and
// the only coupling is request/completion-notice messages carrying a
// 1 ms modeled network transit — which doubles as the lookahead window
// conservative synchronization runs on.
//
// The demonstration is the engine's core guarantee: the run executes
// twice, once sequentially (-workers 1) and once spread over worker
// goroutines, and the merged schedules are bit-identical — same
// per-request timestamps, same per-replica routing split, same
// aggregate summary. Worker count is a wall-clock knob, never a
// semantics knob, so parallel runs need no tolerance bands: any
// difference is a bug, and on a multi-core host the second run is
// simply faster.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	vlr "vectorliterag"
)

func main() {
	quick := flag.Bool("quick", false, "shorter run for smoke tests")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines for the parallel run")
	replicas := flag.Int("replicas", 16, "replica pipelines behind the front end")
	flag.Parse()

	fmt.Println("building ORCAS-1K workload (trains a real IVF-PQ index)...")
	w, err := vlr.NewWorkload(vlr.Orcas1K)
	if err != nil {
		log.Fatal(err)
	}

	duration := 4 * time.Minute
	rate := 30.0 * float64(*replicas) // ~30 req/s per replica
	if *quick {
		duration = time.Minute
		*replicas = 8
		rate = 30 * float64(*replicas)
	}
	opts := func(workers int) vlr.ClusterOptions {
		return vlr.ClusterOptions{
			ServeOptions: vlr.ServeOptions{
				Workload: w, System: vlr.VLiteRAG, Rate: rate,
				Duration: duration, Seed: 1,
				Workers: workers, NetDelay: time.Millisecond,
			},
			Replicas: *replicas,
			Policy:   vlr.LeastLoaded,
		}
	}

	fmt.Printf("\nfleet: %d replicas @ %.0f req/s cluster-wide, %v of traffic, 1ms network\n",
		*replicas, rate, duration)

	start := time.Now()
	seq, err := vlr.ServeCluster(opts(1))
	if err != nil {
		log.Fatal(err)
	}
	seqWall := time.Since(start)

	start = time.Now()
	par, err := vlr.ServeCluster(opts(*workers))
	if err != nil {
		log.Fatal(err)
	}
	parWall := time.Since(start)

	fmt.Printf("\n%-22s %12s %12s\n", "", "sequential", fmt.Sprintf("%d workers", par.Workers))
	fmt.Printf("%-22s %12s %12s\n", "wall clock", seqWall.Round(time.Millisecond), parWall.Round(time.Millisecond))
	fmt.Printf("%-22s %12d %12d\n", "requests", seq.Summary.N, par.Summary.N)
	fmt.Printf("%-22s %12.3f %12.3f\n", "SLO attainment", seq.Summary.Attainment, par.Summary.Attainment)
	fmt.Printf("%-22s %12v %12v\n", "TTFT p90", seq.Summary.TTFT.P90, par.Summary.TTFT.P90)

	same := seq.Summary == par.Summary && len(seq.PerReplica) == len(par.PerReplica)
	for i := 0; same && i < len(seq.PerReplica); i++ {
		same = seq.PerReplica[i] == par.PerReplica[i]
	}
	if !same {
		log.Fatal("schedules diverged across worker counts — the determinism guarantee is broken")
	}
	fmt.Printf("\nschedules bit-identical across worker counts (%d replica breakdowns compared)\n",
		len(seq.PerReplica))
	if runtime.NumCPU() == 1 {
		fmt.Println("(single-core host: the parallel run measures coordination overhead, not speedup)")
	} else if parWall < seqWall {
		fmt.Printf("speedup: %.2fx on %d cores\n", float64(seqWall)/float64(parWall), runtime.NumCPU())
	}

	busiest, laziest := 0, 0
	for i, r := range seq.PerReplica {
		if r.Submitted > seq.PerReplica[busiest].Submitted {
			busiest = i
		}
		if r.Submitted < seq.PerReplica[laziest].Submitted {
			laziest = i
		}
	}
	fmt.Printf("routing spread (least-loaded, 1ms-stale gauges): replica %d served %d, replica %d served %d\n",
		busiest, seq.PerReplica[busiest].Submitted, laziest, seq.PerReplica[laziest].Submitted)
}
