package ingest

import (
	"testing"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/rng"
	"vectorliterag/internal/vecmath"
	"vectorliterag/internal/workload"
)

var testW *dataset.Workload

func testWorkload(t *testing.T) *dataset.Workload {
	t.Helper()
	if testW == nil {
		gc := dataset.GenConfig{NCenters: 48, PerCenter: 48, Dim: 16, PhysNList: 48, PhysNProbe: 8, Templates: 192, Seed: 4}
		w, err := dataset.Build(dataset.Orcas2K, gc)
		if err != nil {
			t.Fatal(err)
		}
		testW = w
	}
	return testW
}

func contains(res []vecmath.Neighbor, id int) bool {
	for _, nb := range res {
		if nb.Index == id {
			return true
		}
	}
	return false
}

// TestFrozenStoreMatchesIndex: with no mutations applied, the store's
// masked search path returns exactly what the plain index search does.
func TestFrozenStoreMatchesIndex(t *testing.T) {
	w := testWorkload(t)
	s := NewStore(w)
	r := rng.New(7)
	for i := 0; i < 20; i++ {
		q := w.QueryVector(w.Sample(r), r)
		got := s.Search(q, 8, 10)
		want := w.Index.Search(q, 8, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: result sizes differ: %d vs %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d neighbor %d: got %+v want %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestInsertLifecycle: an inserted vector is found by the live search
// while raw-pending, survives the re-encode fold (now scanned from
// store-owned PQ codes), and the pending scan cost collapses to
// encoded cost at the fold.
func TestInsertLifecycle(t *testing.T) {
	w := testWorkload(t)
	s := NewStore(w)
	r := rng.New(11)
	vec := w.InsertVector(r)
	m := &workload.Mutation{Kind: workload.MutInsert, Vec: vec}
	c := s.Insert(m)
	if m.ID != int32(w.Index.NVectors()) {
		t.Fatalf("first insert got ID %d, want %d", m.ID, w.Index.NVectors())
	}
	if s.PendingRaw() != 1 {
		t.Fatalf("pending %d after one insert", s.PendingRaw())
	}
	// The exact inserted vector probed at its own cluster must be the
	// nearest neighbor: distance 0 beats every PQ approximation.
	res := s.Search(vec, w.Gen.PhysNProbe, 5)
	if len(res) == 0 || res[0].Index != int(m.ID) {
		t.Fatalf("inserted vector not top result while pending: %+v", res)
	}
	rawCost := s.ScanBytes(0, []int{c})
	if enc := s.Reencode(); enc != 1 {
		t.Fatalf("reencode folded %d vectors, want 1", enc)
	}
	if s.PendingRaw() != 0 {
		t.Fatalf("pending %d after fold", s.PendingRaw())
	}
	res = s.Search(vec, w.Gen.PhysNProbe, 5)
	if !contains(res, int(m.ID)) {
		t.Fatalf("inserted vector lost after re-encode: %+v", res)
	}
	encCost := s.ScanBytes(0, []int{c})
	frozen := w.ScanBytes(0, []int{c})
	if !(encCost < rawCost && encCost > frozen) {
		t.Fatalf("scan cost did not step down at fold: frozen %d, raw %d, encoded %d", frozen, rawCost, encCost)
	}
}

// TestDeleteLifecycle: tombstoned vectors vanish from results in all
// three locations (base list, pending buffer, encoded appends), keep
// costing scan bytes until compaction, and stop costing after it.
func TestDeleteLifecycle(t *testing.T) {
	w := testWorkload(t)
	s := NewStore(w)
	r := rng.New(13)
	q := w.QueryVector(w.Sample(r), r)
	base := s.Search(q, 8, 10)
	if len(base) == 0 {
		t.Fatal("no baseline results")
	}
	victim := base[0].Index
	// Aim the delete exactly at the victim: Pick resolves by linear
	// probe from Pick % space, and the victim is live.
	m := &workload.Mutation{Kind: workload.MutDelete, Pick: uint64(victim)}
	if !s.Delete(m) || int(m.ID) != victim {
		t.Fatalf("delete resolved to %d, want %d", m.ID, victim)
	}
	if s.Alive(victim) {
		t.Fatal("victim still alive")
	}
	if res := s.Search(q, 8, 10); contains(res, victim) {
		t.Fatalf("tombstoned base vector still returned: %+v", res)
	}
	// Tombstones are not free until purged.
	clusters := []int{m.Cluster}
	if got, want := s.ScanBytes(0, clusters), w.ScanBytes(0, clusters); got != want {
		t.Fatalf("unpurged tombstone changed scan cost: %d vs %d", got, want)
	}
	_, purged := s.Compact()
	if purged != 1 {
		t.Fatalf("compaction purged %d, want 1", purged)
	}
	if got, want := s.ScanBytes(0, clusters), w.ScanBytes(0, clusters); got >= want {
		t.Fatalf("purge did not reduce scan cost: %d vs frozen %d", got, want)
	}

	// Delete a pending insert: the append-buffer scan must honor it.
	ins := &workload.Mutation{Kind: workload.MutInsert, Vec: w.InsertVector(r)}
	s.Insert(ins)
	del := &workload.Mutation{Kind: workload.MutDelete, Pick: uint64(ins.ID)}
	if !s.Delete(del) || del.ID != ins.ID {
		t.Fatalf("pending delete resolved to %d, want %d", del.ID, ins.ID)
	}
	if res := s.Search(ins.Vec, w.Gen.PhysNProbe, 5); contains(res, int(ins.ID)) {
		t.Fatalf("tombstoned pending vector still returned: %+v", res)
	}
	// Dead pending vectors are dropped (not encoded) by the fold.
	if enc := s.Reencode(); enc != 0 {
		t.Fatalf("fold encoded %d dead pending vectors", enc)
	}

	// Delete an encoded append: insert, fold, then kill.
	ins2 := &workload.Mutation{Kind: workload.MutInsert, Vec: w.InsertVector(r)}
	s.Insert(ins2)
	s.Reencode()
	del2 := &workload.Mutation{Kind: workload.MutDelete, Pick: uint64(ins2.ID)}
	if !s.Delete(del2) || del2.ID != ins2.ID {
		t.Fatalf("encoded delete resolved to %d, want %d", del2.ID, ins2.ID)
	}
	if res := s.Search(ins2.Vec, w.Gen.PhysNProbe, 5); contains(res, int(ins2.ID)) {
		t.Fatalf("tombstoned encoded vector still returned: %+v", res)
	}
}

// TestDeleteProbesPastDead: Pick landing on a dead ID resolves to the
// next live one, deterministically.
func TestDeleteProbesPastDead(t *testing.T) {
	w := testWorkload(t)
	s := NewStore(w)
	m1 := &workload.Mutation{Kind: workload.MutDelete, Pick: 5}
	m2 := &workload.Mutation{Kind: workload.MutDelete, Pick: 5}
	if !s.Delete(m1) || !s.Delete(m2) {
		t.Fatal("deletes failed")
	}
	if m1.ID != 5 || m2.ID != 6 {
		t.Fatalf("probe sequence got %d then %d, want 5 then 6", m1.ID, m2.ID)
	}
}

// TestTrackers: inserts drawn from the query distribution keep the
// residual ratio near the corpus baseline, and piling inserts into
// clusters raises the size skew monotonically.
func TestTrackers(t *testing.T) {
	w := testWorkload(t)
	s := NewStore(w)
	if rr := s.ResidualRatio(); rr != 1 {
		t.Fatalf("residual ratio %v before any insert", rr)
	}
	skew0 := s.SizeSkew()
	r := rng.New(17)
	for i := 0; i < 200; i++ {
		s.Insert(&workload.Mutation{Kind: workload.MutInsert, Vec: w.InsertVector(r)})
	}
	rr := s.ResidualRatio()
	if rr <= 0 || rr > 3 {
		t.Fatalf("residual ratio %v implausible for in-distribution inserts", rr)
	}
	if s.SizeSkew() <= skew0 {
		t.Fatalf("skew did not grow under popularity-skewed inserts: %v -> %v", skew0, s.SizeSkew())
	}
}

// TestIngesterStation: mutations apply serially with modeled cost,
// AppliedAt stamps service completion, and the periodic re-encode
// occupies the station (a mutation arriving mid-fold waits).
func TestIngesterStation(t *testing.T) {
	w := testWorkload(t)
	var sim des.Sim
	store := NewStore(w)
	horizon := des.Time(60 * time.Second)
	ing := New(Config{Sim: &sim, Store: store, Node: hw.H100Node(), ReencodeEvery: 10 * time.Second, Horizon: horizon})
	gen := workload.NewMutationGen(w, workload.MutInsert, 2.0, nil, 0, rng.Stream(1, 100))
	gen.Start(&sim, horizon, ing.Submit)
	sim.RunUntil(horizon + des.Time(30*time.Second))
	log := ing.Log()
	if len(log) == 0 {
		t.Fatal("no mutations processed")
	}
	if ing.Reencodes() < 5 {
		t.Fatalf("only %d re-encodes in 60s at 10s cadence", ing.Reencodes())
	}
	for i := range log {
		m := &log[i]
		if m.AppliedAt == 0 {
			t.Fatalf("mutation %d never applied", m.Seq)
		}
		if m.TimeToSearchable() <= 0 {
			t.Fatalf("mutation %d has non-positive time-to-searchable %d", m.Seq, m.TimeToSearchable())
		}
	}
	if store.PendingRaw() != 0 {
		// The last fold at t=60s should have drained anything applied
		// before it; stragglers applied after are allowed.
		t.Logf("pending after horizon: %d", store.PendingRaw())
	}
	if got := store.Inserts(); got != len(log) {
		t.Fatalf("store applied %d inserts, log has %d", got, len(log))
	}
}

// TestIngestDeterminism: identical seeds produce byte-identical
// mutation logs and store state; different seeds do not.
func TestIngestDeterminism(t *testing.T) {
	w := testWorkload(t)
	run := func(seed uint64) ([]workload.Mutation, int64) {
		var sim des.Sim
		store := NewStore(w)
		horizon := des.Time(30 * time.Second)
		ing := New(Config{Sim: &sim, Store: store, Node: hw.H100Node(), ReencodeEvery: 7 * time.Second, Horizon: horizon})
		ins := workload.NewMutationGen(w, workload.MutInsert, 3.0, nil, 0, rng.Stream(seed, 100))
		del := workload.NewMutationGen(w, workload.MutDelete, 1.0, nil, 0, rng.Stream(seed, 101))
		ins.Start(&sim, horizon, ing.Submit)
		del.Start(&sim, horizon, ing.Submit)
		sim.RunUntil(horizon + des.Time(10*time.Second))
		cost := store.ScanBytesAll(0)
		return ing.Log(), cost
	}
	logA, costA := run(1)
	logB, costB := run(1)
	if len(logA) != len(logB) || costA != costB {
		t.Fatalf("same seed diverged: %d/%d muts, %d/%d bytes", len(logA), len(logB), costA, costB)
	}
	for i := range logA {
		// Vec slices differ by pointer; compare the applied identity.
		a, b := logA[i], logB[i]
		if a.Seq != b.Seq || a.Kind != b.Kind || a.ID != b.ID || a.Cluster != b.Cluster ||
			a.ArrivalAt != b.ArrivalAt || a.AppliedAt != b.AppliedAt {
			t.Fatalf("mutation %d diverged: %+v vs %+v", i, a, b)
		}
	}
	logC, _ := run(2)
	if len(logC) == len(logA) && len(logA) > 0 && logC[0].ArrivalAt == logA[0].ArrivalAt {
		t.Fatal("different seeds produced identical arrival sequence")
	}
}

// TestIngesterCompactorSurface: the adapt.Compactor view of the station
// — drift trackers delegate to the store, CompactionCost prices the
// current pending + purgeable volumes, and Compact folds, purges, and
// counts the cycle.
func TestIngesterCompactorSurface(t *testing.T) {
	w := testWorkload(t)
	var sim des.Sim
	store := NewStore(w)
	horizon := des.Time(20 * time.Second)
	ing := New(Config{Sim: &sim, Store: store, Node: hw.H100Node(), ReencodeEvery: time.Hour, Horizon: horizon})
	ins := workload.NewMutationGen(w, workload.MutInsert, 4.0, nil, 0, rng.Stream(3, 100))
	del := workload.NewMutationGen(w, workload.MutDelete, 1.0, nil, 0, rng.Stream(3, 101))
	ins.Start(&sim, horizon, ing.Submit)
	del.Start(&sim, horizon, ing.Submit)
	sim.RunUntil(horizon + des.Time(10*time.Second))
	if ing.Queued() != 0 {
		t.Fatalf("station still has %d queued after drain", ing.Queued())
	}
	if ing.SizeSkew() != store.SizeSkew() || ing.ResidualRatio() != store.ResidualRatio() {
		t.Fatal("compactor trackers do not delegate to the store")
	}
	if store.PendingRaw() == 0 || store.Deletes() == 0 {
		t.Fatalf("run produced no work to compact: %d pending, %d deletes", store.PendingRaw(), store.Deletes())
	}
	if store.PurgeableLogical() <= 0 {
		t.Fatalf("purgeable logical %d with %d applied deletes", store.PurgeableLogical(), store.Deletes())
	}
	cost := ing.CompactionCost()
	if cost <= 0 {
		t.Fatalf("compaction cost %v with pending work", cost)
	}
	ing.Compact()
	if ing.Compactions() != 1 {
		t.Fatalf("compactions = %d after one Compact", ing.Compactions())
	}
	if store.PendingRaw() != 0 || store.PurgeableLogical() != 0 {
		t.Fatalf("compact left %d pending raw, %d purgeable", store.PendingRaw(), store.PurgeableLogical())
	}
	// An emptied store prices (almost) nothing: only the already-encoded
	// appends remain.
	if c2 := ing.CompactionCost(); c2 >= cost {
		t.Fatalf("post-compaction cost %v did not drop from %v", c2, cost)
	}
}

// TestCompactPurgesEncodedAppends: a tombstoned encoded append is
// rewritten out by Compact — its bytes stop billing and the survivors'
// positions stay searchable.
func TestCompactPurgesEncodedAppends(t *testing.T) {
	w := testWorkload(t)
	s := NewStore(w)
	r := rng.New(23)
	var ids []int32
	for i := 0; i < 8; i++ {
		m := &workload.Mutation{Kind: workload.MutInsert, Vec: w.InsertVector(r)}
		s.Insert(m)
		ids = append(ids, m.ID)
	}
	s.Reencode() // all eight become encoded appends
	del := &workload.Mutation{Kind: workload.MutDelete, Pick: uint64(ids[0])}
	if !s.Delete(del) || del.ID != ids[0] {
		t.Fatalf("delete resolved to %d, want %d", del.ID, ids[0])
	}
	before := s.ScanBytesAll(0)
	_, purged := s.Compact()
	if purged != 1 {
		t.Fatalf("purged %d, want the one dead append", purged)
	}
	if after := s.ScanBytesAll(0); after >= before {
		t.Fatalf("purging an encoded append did not shed cost: %d -> %d", before, after)
	}
	if s.Alive(int(ids[0])) {
		t.Fatal("purged append still alive")
	}
	// Survivors must stay alive and searchable after the rewrite moved
	// their positions.
	for _, id := range ids[1:] {
		if !s.Alive(int(id)) {
			t.Fatalf("survivor %d lost by the rewrite", id)
		}
	}
	if s.Alive(-1) || s.Alive(1<<30) {
		t.Fatal("out-of-range IDs report alive")
	}
}
