package rag

import (
	"strings"
	"testing"
	"time"
)

func TestOverloadOptionsNormalize(t *testing.T) {
	cases := []struct {
		name    string
		o       OverloadOptions
		wantErr string // substring; "" means valid
	}{
		{name: "zero value", o: OverloadOptions{}},
		{name: "full set", o: OverloadOptions{QueueCap: 16, Brownout: true,
			RetrievalBudget: 300 * time.Millisecond, GenerationBudget: 500 * time.Millisecond,
			Window: 32, MaxShed: 0.5}},
		{name: "negative queue cap", o: OverloadOptions{QueueCap: -1}, wantErr: "QueueCap"},
		{name: "negative retrieval budget", o: OverloadOptions{RetrievalBudget: -time.Second}, wantErr: "budget"},
		{name: "negative generation budget", o: OverloadOptions{GenerationBudget: -time.Second}, wantErr: "budget"},
		{name: "negative window", o: OverloadOptions{Window: -5}, wantErr: "Window"},
		{name: "shed of one", o: OverloadOptions{MaxShed: 1}, wantErr: "MaxShed"},
		{name: "negative shed", o: OverloadOptions{MaxShed: -0.2}, wantErr: "MaxShed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.o
			err := o.normalize()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if o.QueueCap == 0 {
					t.Fatal("normalize left the default queue cap at 0")
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not name %s", err, tc.wantErr)
			}
		})
	}
}

// TestOverloadIncompatibleModes: every serving mode that cannot honor
// overload control must say so up front instead of silently ignoring
// the option.
func TestOverloadIncompatibleModes(t *testing.T) {
	ov := &OverloadOptions{QueueCap: 16}

	mt := mtOpts(t)
	mt.Overload = ov
	mt.SharedQueue = true
	if _, err := RunMultiTenant(mt); err == nil || !strings.Contains(err.Error(), "shared-queue") {
		t.Fatalf("SharedQueue+Overload: %v", err)
	}

	ao := AdaptiveOptions{Options: baseOpts(t, VLiteRAG, 10)}
	ao.Overload = ov
	if _, err := RunAdaptive(ao); err == nil || !strings.Contains(err.Error(), "overload") {
		t.Fatalf("adaptive+Overload: %v", err)
	}

	co := baseOpts(t, VLiteRAG, 10)
	co.Overload = ov
	if _, err := RunCluster(co, 2, ""); err == nil || !strings.Contains(err.Error(), "overload") {
		t.Fatalf("cluster+Overload: %v", err)
	}

	lo := LiveOptions{Options: baseOpts(t, VLiteRAG, 10)}
	lo.Overload = ov
	lo.Ingest.InsertRate = 4
	if _, err := RunLive(lo); err == nil || !strings.Contains(err.Error(), "overload") {
		t.Fatalf("live-ingest+Overload: %v", err)
	}
}

// TestRunOverloadSingleNode: the single-node path constructs the rig,
// reports the admission outcome, and keeps the queue bound honest.
func TestRunOverloadSingleNode(t *testing.T) {
	o := baseOpts(t, VLiteRAG, 10)
	o.Overload = &OverloadOptions{QueueCap: 16, Brownout: true}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overload == nil {
		t.Fatal("overload run returned no report")
	}
	if res.Overload.QueueCap != 16 {
		t.Fatalf("report echoes cap %d, want 16", res.Overload.QueueCap)
	}
	if got := len(res.Overload.Rejected); got != 1 {
		t.Fatalf("single-tenant report has %d rejection counters", got)
	}
	if !res.Overload.Brownout {
		t.Fatal("report dropped the Brownout flag")
	}
	if res.Generated == 0 {
		t.Fatal("overload run served nothing")
	}
}

// TestRunMultiTenantOverload: the bursty bronze tenant drives the
// bounded multi-tenant path — queues never exceed the cap, per-tenant
// rejections sum to the total, and the brownout controller reports a
// coherent trajectory.
func TestRunMultiTenantOverload(t *testing.T) {
	mt := mtOpts(t)
	mt.Overload = &OverloadOptions{QueueCap: 8, Brownout: true}
	res, err := RunMultiTenant(mt)
	if err != nil {
		t.Fatal(err)
	}
	ov := res.Overload
	if ov == nil {
		t.Fatal("no overload report")
	}
	total := 0
	for _, tr := range res.Tenants {
		if tr.PeakQueue > 8 {
			t.Errorf("tenant %s queue %d exceeds cap 8", tr.Name, tr.PeakQueue)
		}
		if tr.Rejected < 0 {
			t.Errorf("tenant %s negative rejections", tr.Name)
		}
		total += tr.Rejected
	}
	if ov.RejectedTotal != total {
		t.Fatalf("report total %d, per-tenant sum %d", ov.RejectedTotal, total)
	}
	if ov.MaxLevel < 0 || ov.MaxLevel > 5 {
		t.Fatalf("max level %d outside the ladder", ov.MaxLevel)
	}
	if ov.BrownoutShare < 0 || ov.BrownoutShare > 1 {
		t.Fatalf("brownout share %v outside [0,1]", ov.BrownoutShare)
	}
	if ov.MaxLevel > 0 && ov.TimeInBrownout == 0 {
		t.Fatal("ladder moved but no time in brownout recorded")
	}
}

// TestRunMultiTenantOverloadSharded: the same option set on the
// sharded engine — per-replica rigs keep the bound per replica, and
// the merged report sums rejections across replicas.
func TestRunMultiTenantOverloadSharded(t *testing.T) {
	mt := mtOpts(t)
	mt.Overload = &OverloadOptions{QueueCap: 8, Brownout: true}
	mt.Replicas, mt.Workers = 2, 2
	res, err := RunMultiTenant(mt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overload == nil {
		t.Fatal("sharded run dropped the overload report")
	}
	total := 0
	for _, tr := range res.Tenants {
		total += tr.Rejected
	}
	if res.Overload.RejectedTotal != total {
		t.Fatalf("merged total %d, per-tenant sum %d", res.Overload.RejectedTotal, total)
	}
	for _, tr := range res.Tenants {
		if tr.Summary.N == 0 {
			t.Errorf("tenant %s saw no requests on the sharded path", tr.Name)
		}
	}
}
