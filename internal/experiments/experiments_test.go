package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/rag"
)

func quick() Config { return Config{Quick: true, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must be registered, plus
	// the beyond-the-paper studies.
	want := []string{"fig3", "fig4", "fig5", "fig6", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "tab1", "ablations",
		"cluster", "bench", "bench-serve", "adapt", "tenants", "overload", "faults",
		"ingest", "precision"}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Names()), len(want))
	}
}

func TestLookupListsValidIDs(t *testing.T) {
	if _, err := Lookup("fig11"); err != nil {
		t.Fatalf("known id rejected: %v", err)
	}
	_, err := Lookup("fig99")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	for _, id := range []string{"fig11", "adapt", "bench"} {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("lookup error does not list %q: %v", id, err)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	for b, norm := range r.Normalized {
		// Fast scan must be ~5x faster (Fig. 3 left shows ~0.2 normalized)
		// though CQ dilutes the ratio slightly.
		if norm < 0.15 || norm > 0.4 {
			t.Errorf("batch %d: normalized fast-scan latency %.2f outside [0.15,0.4]", b, norm)
		}
	}
	for b, br := range r.Breakdown {
		if br.LUTBuild+br.LUTScan <= br.CQ {
			t.Errorf("batch %d: LUT stage does not dominate (Fig. 3 right)", b)
		}
	}
	if !strings.Contains(r.Render(), "Fig 3") {
		t.Error("render missing title")
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r.CPUSearch) / float64(r.GPUSearch)
	if speedup < 4 || speedup > 40 {
		t.Errorf("GPU speedup %.1fx outside the paper's ~10x order", speedup)
	}
	// Throughput must grow with KV space and normalize to 1.
	last := r.Throughput[len(r.Throughput)-1]
	if last != 1.0 {
		t.Errorf("throughput not normalized: %v", last)
	}
	if r.Throughput[0] >= last {
		t.Errorf("tiny KV not slower: %v", r.Throughput)
	}
	if !strings.Contains(r.Render(), "Fig 4") {
		t.Error("render missing title")
	}
}

func TestFig5SkewTargets(t *testing.T) {
	r, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	wiki := r.Top20[dataset.WikiAll.Name]
	orcas := r.Top20[dataset.Orcas1K.Name]
	if wiki < 0.5 || wiki > 0.72 {
		t.Errorf("Wiki-All top-20%% share %.3f vs paper ~0.59", wiki)
	}
	if orcas < 0.85 {
		t.Errorf("ORCAS top-20%% share %.3f vs paper ~0.93", orcas)
	}
	if orcas <= wiki {
		t.Error("ORCAS must be more skewed than Wiki-All")
	}
	if !strings.Contains(r.Render(), "Fig 5") {
		t.Error("render missing title")
	}
}

func TestFig6CoverageImprovesHitRate(t *testing.T) {
	r, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	for name, byCov := range r.Dist {
		if !(byCov[0.05].Mean < byCov[0.10].Mean && byCov[0.10].Mean < byCov[0.20].Mean) {
			t.Errorf("%s: mean hit rate not increasing with coverage: %v %v %v",
				name, byCov[0.05].Mean, byCov[0.10].Mean, byCov[0.20].Mean)
		}
		// Tail queries persist (the violin's lower tail, Takeaway 3).
		if byCov[0.20].Min > 0.6 {
			t.Errorf("%s: no long-tail queries at 20%% coverage (min=%.2f)", name, byCov[0.20].Min)
		}
	}
	if !strings.Contains(r.Render(), "Fig 6") {
		t.Error("render missing title")
	}
}

func TestFig8Curves(t *testing.T) {
	r, err := Fig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Search); i++ {
		if r.Search[i] < r.Search[i-1] {
			t.Error("search latency not monotone in batch")
		}
	}
	// Variance model tracks empirical within 3x wherever both defined.
	for i := range r.Means {
		if r.EmpVar[i] <= 0 {
			continue
		}
		ratio := r.ModelVar[i] / r.EmpVar[i]
		if ratio > 4 || ratio < 0.25 {
			t.Errorf("variance model off at mean %.2f: model %.4f vs empirical %.4f",
				r.Means[i], r.ModelVar[i], r.EmpVar[i])
		}
	}
	if !strings.Contains(r.Render(), "Fig 8") {
		t.Error("render missing title")
	}
}

func TestFig9WithinEnvelope(t *testing.T) {
	r, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("expected 6 bars, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Timing.Total() <= 0 || row.Timing.Total().Seconds() > 120 {
			t.Errorf("%s @%v: rebuild %v outside the paper's <1min envelope",
				row.Dataset, row.SLO, row.Timing.Total())
		}
	}
	if !strings.Contains(r.Render(), "Fig 9") {
		t.Error("render missing title")
	}
}

func TestFig10ModelTracksMeasurement(t *testing.T) {
	r, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	prevPred := map[string]float64{}
	for _, row := range r.Rows {
		// Tail hit rate: the Beta estimator tracks the replayed truth in
		// level and trend. Our synthetic per-query hit-rate distribution
		// has a heavier low tail than a Beta with the parabolic variance,
		// so the prediction sits above the measurement at large batches —
		// the paper's Fig. 10 shows the same direction of offset. Bound
		// the absolute gap and require the predicted curve to decline
		// with batch size like the measured one.
		if diff := row.PredTailHit - row.MeasTailHit; diff > 0.35 || diff < -0.15 {
			t.Errorf("%s b=%d: tail hit pred %.3f vs meas %.3f",
				row.Dataset, row.Batch, row.PredTailHit, row.MeasTailHit)
		}
		if prev, ok := prevPred[row.Dataset]; ok && row.PredTailHit > prev+1e-9 {
			t.Errorf("%s b=%d: predicted tail hit rose with batch", row.Dataset, row.Batch)
		}
		prevPred[row.Dataset] = row.PredTailHit
		// Latency: within 2.5x (the paper also reports a visible offset,
		// Fig. 10 left).
		ratio := float64(row.PredLatency) / float64(row.MeasLatency)
		if ratio > 2.5 || ratio < 0.4 {
			t.Errorf("%s b=%d: latency pred %v vs meas %v",
				row.Dataset, row.Batch, row.PredLatency, row.MeasLatency)
		}
	}
}

func TestFig11QuickHeadline(t *testing.T) {
	r, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) == 0 {
		t.Fatal("no cells")
	}
	cell := r.Cells[0]
	vl := cell.MaxAttainedRate(rag.VLiteRAG, 0.5)
	cpu := cell.MaxAttainedRate(rag.CPUOnly, 0.5)
	if vl <= cpu {
		t.Errorf("vLiteRAG SLO-bound rate %.1f not above CPU-only %.1f", vl, cpu)
	}
	if !strings.Contains(r.Render(), "vLiteRAG") {
		t.Error("render missing system rows")
	}
}

func TestFig12BreakdownSane(t *testing.T) {
	r, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Search <= 0 || row.LLM <= 0 {
			t.Errorf("%s %s: degenerate breakdown %+v", row.Dataset, row.Kind, row)
		}
	}
	// CPU-only search segment must dominate vLiteRAG's at equal rate.
	var cpuSearch, vlSearch float64
	for _, row := range r.Rows {
		if row.Dataset == dataset.Orcas1K.Name && row.Rate == 32 {
			switch row.Kind {
			case rag.CPUOnly:
				cpuSearch = row.Search.Seconds()
			case rag.VLiteRAG:
				vlSearch = row.Search.Seconds()
			}
		}
	}
	if cpuSearch <= vlSearch {
		t.Errorf("CPU-only search %.3fs not above vLiteRAG %.3fs", cpuSearch, vlSearch)
	}
	if !strings.Contains(r.Render(), "Fig 12") {
		t.Error("render missing title")
	}
	if !strings.HasPrefix(r.CSV(), "dataset,system,rate_rps") {
		t.Error("fig12 CSV header wrong")
	}
}

func TestFig13HedraCachesMore(t *testing.T) {
	r, err := Fig13(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The §VI-D contrast: HedraRAG over-caches relative to the
	// latency-bounded point (paper: 0.73 vs 0.315).
	if r.HedraRho <= r.VLiteRho {
		t.Errorf("hedra rho %.3f not above vLiteRAG rho %.3f", r.HedraRho, r.VLiteRho)
	}
	if !strings.Contains(r.Render(), "Fig 13") {
		t.Error("render missing title")
	}
}

func TestFig14DispatcherHelps(t *testing.T) {
	r, err := Fig14(quick())
	if err != nil {
		t.Fatal(err)
	}
	on := map[float64]Fig14Row{}
	off := map[float64]Fig14Row{}
	for _, row := range r.Rows {
		if row.Dispatcher {
			on[row.Rate] = row
		} else {
			off[row.Rate] = row
		}
	}
	for rate, o := range on {
		f := off[rate]
		if o.AvgSearch > f.AvgSearch {
			t.Errorf("rate %.0f: dispatcher hurt avg search (%v vs %v)", rate, o.AvgSearch, f.AvgSearch)
		}
	}
	if !strings.Contains(r.Render(), "Fig 14") {
		t.Error("render missing title")
	}
}

func TestFig16TableIIMonotone(t *testing.T) {
	r, err := Fig16(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table) < 2 {
		t.Fatal("Table II empty")
	}
	// Stricter SLO (earlier row) allocates at least as much index memory
	// and leaves less KV (paper Table II).
	for i := 1; i < len(r.Table); i++ {
		if r.Table[i-1].IndexGB < r.Table[i].IndexGB-0.01 {
			t.Errorf("index memory not decreasing with relaxed SLO: %+v", r.Table)
		}
		if r.Table[i-1].KVCacheGB > r.Table[i].KVCacheGB+0.01 {
			t.Errorf("KV cache not increasing with relaxed SLO: %+v", r.Table)
		}
	}
	if !strings.Contains(r.Render(), "Fig 16") {
		t.Error("render missing title")
	}
	if !strings.HasPrefix(r.CSV(), "slo_search_ms") {
		t.Error("fig16 CSV header wrong")
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SearchSLOs) != 3 || len(r.GenSLOs) != 3 {
		t.Fatalf("incomplete Table I: %+v", r)
	}
	out := r.Render()
	if !strings.Contains(out, "Wiki-All") || !strings.Contains(out, "Qwen3-32B") {
		t.Error("render incomplete")
	}
}

func TestCluster(t *testing.T) {
	r, err := Cluster(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 { // x1 least-loaded, x2 both policies
		t.Fatalf("got %d rows: %+v", len(r.Rows), r.Rows)
	}
	base := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.Att < base.Att-0.10 {
			t.Errorf("x%d %s attainment %.3f collapsed vs single-node %.3f",
				row.Replicas, row.Policy, row.Att, base.Att)
		}
		if row.MaxSkew > 0.25 {
			t.Errorf("x%d %s skew %.3f too large", row.Replicas, row.Policy, row.MaxSkew)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "least-loaded") || !strings.Contains(out, "round-robin") {
		t.Error("render missing policies")
	}
}

func TestAblations(t *testing.T) {
	r, err := Ablations(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Larger eps -> tighter budget -> more coverage -> faster search.
	first, last := r.Eps[0], r.Eps[len(r.Eps)-1]
	if last.Rho < first.Rho {
		t.Errorf("coverage fell as eps grew: %v -> %v", first.Rho, last.Rho)
	}
	// The enumeration study covers every implemented system.
	if len(r.Systems) != 5 {
		t.Errorf("system enumeration has %d rows, want 5: %+v", len(r.Systems), r.Systems)
	}
	if last.Search > first.Search {
		t.Errorf("search slower at higher coverage: %v -> %v", first.Search, last.Search)
	}
	// The full runtime must not lose to its ablated variants on search.
	full := r.Runtime[0]
	for _, row := range r.Runtime[1:] {
		if full.Search > row.Search {
			t.Errorf("full pipeline slower than %q: %v vs %v", row.Pipeline, full.Search, row.Search)
		}
	}
	if !strings.Contains(r.Render(), "Ablation") {
		t.Error("render missing title")
	}
}

func TestCSVExports(t *testing.T) {
	f11, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	out := f11.CSV()
	if !strings.HasPrefix(out, "dataset,model,system,rate_rps") {
		t.Fatalf("fig11 CSV header wrong: %q", strings.SplitN(out, "\n", 2)[0])
	}
	lines := strings.Count(out, "\n")
	if want := len(f11.Cells[0].Points)*len(f11.Cells) + 1; lines != want {
		t.Fatalf("fig11 CSV has %d lines, want %d", lines, want)
	}
	f5, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f5.CSV(), "cluster_percentile") {
		t.Fatal("fig5 CSV header missing")
	}
	// Every CSVer must parse back as CSV (no unescaped commas).
	for _, c := range []CSVer{f11, f5} {
		for i, line := range strings.Split(strings.TrimSpace(c.CSV()), "\n") {
			if line == "" {
				t.Fatalf("empty CSV line %d", i)
			}
		}
	}
}

// TestAdaptRecovery pins the online-adaptation acceptance criteria:
// under a mid-run popularity rotation, the adaptive arm recovers SLO
// attainment above the static plan's post-drift attainment, with at
// least one rebuild whose timing respects the paper's envelope.
func TestAdaptRecovery(t *testing.T) {
	r, err := Adapt(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rebuilds) == 0 {
		t.Fatal("drift never triggered a rebuild")
	}
	if r.ValidateErr != "" {
		t.Fatalf("rebuild violated the update envelope: %s", r.ValidateErr)
	}
	if r.AdaptivePost <= r.StaticPost {
		t.Fatalf("adaptive post-drift attainment %.3f not above static %.3f",
			r.AdaptivePost, r.StaticPost)
	}
	// The final window must show the recovered hot set: adaptive hit
	// rate back near the expectation while the static plan keeps
	// missing.
	last := r.Windows[len(r.Windows)-1]
	if last.AdaptiveHit < r.ExpectedHit-0.1 {
		t.Fatalf("final-window adaptive hit %.3f never recovered toward %.3f",
			last.AdaptiveHit, r.ExpectedHit)
	}
	if last.AdaptiveHit < last.StaticHit+0.2 {
		t.Fatalf("final-window hit rates barely differ: adaptive %.3f vs static %.3f",
			last.AdaptiveHit, last.StaticHit)
	}
	out := r.Render()
	for _, want := range []string{"rebuild timeline", "drift", "swap#1", "post-drift attainment"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.HasPrefix(r.CSV(), "window_start_s,static_attainment") {
		t.Errorf("CSV header wrong: %q", strings.SplitN(r.CSV(), "\n", 2)[0])
	}
}

func TestBenchShape(t *testing.T) {
	r, err := Bench(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.Path != "" {
		t.Errorf("quick-mode bench wrote %s", r.Path)
	}
	want := map[string]bool{
		"ivf_search": false, "ivf_search_scratch": false,
		"ivf_search_batch64_per_query": false, "ivf_probe": false,
		"lut_build": false, "lut_scan_cluster": false, "brute_force_topk": false,
	}
	for _, row := range r.Rows {
		if _, ok := want[row.Name]; !ok {
			t.Errorf("unexpected kernel %q", row.Name)
			continue
		}
		want[row.Name] = true
		if row.NsPerOp <= 0 || row.OpsPerSec <= 0 || row.Iters <= 0 {
			t.Errorf("%s: degenerate measurement %+v", row.Name, row)
		}
		// The scratch path is the allocation-free contract; leave slack
		// for runtime background allocations in the counter window.
		if row.Name == "ivf_search_scratch" && row.AllocsPerOp > 1 {
			t.Errorf("scratch search allocates %.2f objects/op", row.AllocsPerOp)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("kernel %q missing from bench rows", name)
		}
	}
	if out := r.Render(); !strings.Contains(out, "ivf_search") {
		t.Errorf("render missing kernels:\n%s", out)
	}
}

// TestBenchServeShape runs the end-to-end serving benchmark in quick
// mode and pins its contract: every scenario measured, sane rates, and
// the steady-state allocation budget of the allocation-free serving
// core (≤1 alloc per request, the PR-5 acceptance bound; the residual
// is amortized buffer growth during ramp-up, not per-event garbage).
func TestBenchServeShape(t *testing.T) {
	r, err := BenchServe(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.Path != "" {
		t.Errorf("quick-mode bench-serve wrote %s", r.Path)
	}
	want := map[string]bool{
		"single_vliterag_30rps": false, "cluster_x2_least_loaded_60rps": false,
		"cluster_x2_precision_60rps": false,
		"adaptive_drift_20rps":       false, "tenants_quick_fair": false,
		// Quick mode's sharded fleet: the same schedule executed
		// sequentially and on 2 workers, so CI exercises the parallel
		// engine end to end on every commit.
		"fleet_x8_240rps_w1": false, "fleet_x8_240rps_w2": false,
	}
	var fleetReqs []int
	for _, row := range r.Rows {
		if _, ok := want[row.Config]; !ok {
			t.Errorf("unexpected config %q", row.Config)
			continue
		}
		want[row.Config] = true
		if row.Requests <= 0 || row.SimReqPerSec <= 0 || row.WallSeconds <= 0 {
			t.Errorf("%s: degenerate measurement %+v", row.Config, row)
		}
		if row.AllocsPerReq > 1 {
			t.Errorf("%s: %.2f allocs/request, steady-state budget is <=1", row.Config, row.AllocsPerReq)
		}
		if row.Workers < 1 || row.GoMaxProcs < 1 {
			t.Errorf("%s: workers/gomaxprocs not recorded: %+v", row.Config, row)
		}
		if strings.HasPrefix(row.Config, "fleet_") {
			fleetReqs = append(fleetReqs, row.Requests)
		}
		if row.Attainment < 0 || row.Attainment > 1 {
			t.Errorf("%s: attainment %.4f out of range", row.Config, row.Attainment)
		}
		// Only the precision-refined row carries a recall gain; it pairs
		// the gain with its attainment so the JSON records the quality
		// trade, not throughput alone.
		if row.Config == "cluster_x2_precision_60rps" {
			if row.RecallGainPts <= 0 || row.Attainment <= 0 {
				t.Errorf("precision row missing quality fields: %+v", row)
			}
		} else if row.RecallGainPts != 0 {
			t.Errorf("%s: unexpected recall gain %.4f on an unrefined run", row.Config, row.RecallGainPts)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("config %q missing from bench-serve rows", name)
		}
	}
	// Worker count is a wall-clock knob: both fleet rows must have
	// simulated the identical request population.
	if len(fleetReqs) == 2 && fleetReqs[0] != fleetReqs[1] {
		t.Errorf("fleet request counts diverged across worker counts: %v", fleetReqs)
	}
	out := r.Render()
	for _, wantStr := range []string{"tenants_quick_fair", "fleet_x8_240rps_w2", "vs baseline", "sim-req/s", "workers"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("render missing %q:\n%s", wantStr, out)
		}
	}
	if !strings.HasPrefix(r.CSV(), "phase,config,workers,gomaxprocs,requests") {
		t.Errorf("CSV header wrong: %q", strings.SplitN(r.CSV(), "\n", 2)[0])
	}
}

// tenantsQuick caches the quick-mode Tenants run: it is the most
// expensive experiment in this suite (two full multi-tenant
// simulations) and deterministic, so both tests below share one run.
var tenantsQuick *TenantsResult

func tenantsQuickResult(t *testing.T) *TenantsResult {
	t.Helper()
	if tenantsQuick == nil {
		r, err := Tenants(quick())
		if err != nil {
			t.Fatal(err)
		}
		tenantsQuick = r
	}
	return tenantsQuick
}

// TestTenantsIsolation: the headline multi-tenant artifact — with a
// bursty bronze tenant, gold holds its tier target only under the
// joint allocator + FairScheduler, not under the shared queue.
func TestTenantsIsolation(t *testing.T) {
	r := tenantsQuickResult(t)
	fair, shared := r.Arm("fair"), r.Arm("shared-queue")
	if fair == nil || shared == nil {
		t.Fatalf("arms missing: %+v", r.Arms)
	}
	g := fair.Row("gold")
	if g == nil || !g.Met {
		t.Fatalf("fair arm gold misses its tier target: %+v", g)
	}
	if s := fair.Row("silver"); s == nil || !s.Met {
		t.Errorf("fair arm silver misses its tier target: %+v", s)
	}
	if g2 := shared.Row("gold"); g2 == nil || g2.Met {
		t.Fatalf("shared-queue baseline unexpectedly holds gold's target: %+v", g2)
	}
	// The bronze surplus must visibly wait in its own queue under fair
	// scheduling and nowhere under the shared queue.
	if b := fair.Row("bronze"); b == nil || b.PeakQueue == 0 {
		t.Errorf("fair arm bronze queue never grew: %+v", b)
	}
	if b := shared.Row("bronze"); b == nil || b.PeakQueue != 0 {
		t.Errorf("shared-queue arm reports a per-tenant queue: %+v", b)
	}
	out := r.Render()
	for _, want := range []string{"gold", "silver", "bronze", "fair", "shared-queue", "Jain"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestTenantsGoldenPinned: the quick-mode artifact is bit-identical
// across runs with the same seed; the golden file pins it.
func TestTenantsGoldenPinned(t *testing.T) {
	got := tenantsQuickResult(t).CSV()
	want, err := os.ReadFile(filepath.Join("testdata", "tenants_quick.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("tenants quick-mode CSV drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// faultsQuick caches the quick-mode Faults run (four full cluster
// simulations under the storm) for the assertions below.
var faultsQuick *FaultsResult

func faultsQuickResult(t *testing.T) *FaultsResult {
	t.Helper()
	if faultsQuick == nil {
		r, err := Faults(quick())
		if err != nil {
			t.Fatal(err)
		}
		faultsQuick = r
	}
	return faultsQuick
}

// TestFaultsResilience: the headline failure-handling artifact — the
// baseline drops the crashed replica's in-flight work, every resilient
// arm serves the full population, hedges win a visible share of their
// races, and degradation recovers goodput relative to plain
// retry+hedge.
func TestFaultsResilience(t *testing.T) {
	r := faultsQuickResult(t)
	base, retry := r.Arm("baseline"), r.Arm("retry")
	hedgeArm, full := r.Arm("retry+hedge"), r.Arm("retry+hedge+degrade")
	if base == nil || retry == nil || hedgeArm == nil || full == nil {
		t.Fatalf("arms missing: %+v", r.Arms)
	}
	if base.Stats.Failed == 0 {
		t.Fatal("baseline failed nothing; the crash hit no in-flight work")
	}
	if base.Recover > 0 {
		t.Errorf("baseline reports a recovery (%v) with no retries configured", base.Recover)
	}
	for _, a := range []*FaultsArm{retry, hedgeArm, full} {
		if a.Stats.Failed != 0 || a.Unserved != 0 {
			t.Errorf("%s arm dropped requests: failed %d, unserved %d", a.Name, a.Stats.Failed, a.Unserved)
		}
		if a.Stats.FailedOver != base.Stats.Failed {
			t.Errorf("%s arm failed over %d, want the baseline's %d crash victims",
				a.Name, a.Stats.FailedOver, base.Stats.Failed)
		}
		if a.Recover <= 0 {
			t.Errorf("%s arm never recovered the crash: %v", a.Name, a.Recover)
		}
		// Resilience costs goodput (re-served work competes with fresh
		// arrivals) but must not collapse the run.
		if a.Goodput < 0.9*base.Goodput {
			t.Errorf("%s arm goodput %.2f collapsed vs baseline %.2f", a.Name, a.Goodput, base.Goodput)
		}
	}
	if hedgeArm.Stats.Hedged == 0 || hedgeArm.Stats.HedgeWins == 0 {
		t.Errorf("hedge arm fired %d backups with %d wins; the straggler tail went unhedged",
			hedgeArm.Stats.Hedged, hedgeArm.Stats.HedgeWins)
	}
	// Hedging must stay rare — a hedge storm doubles load and collapses
	// the cluster (the tuning this experiment documents).
	if hedgeArm.Stats.Hedged > hedgeArm.N/10 {
		t.Errorf("hedge storm: %d backups for %d requests", hedgeArm.Stats.Hedged, hedgeArm.N)
	}
	if full.Goodput < hedgeArm.Goodput {
		t.Errorf("degradation lost goodput: %.2f vs retry+hedge %.2f", full.Goodput, hedgeArm.Goodput)
	}
	out := r.Render()
	for _, want := range []string{"baseline", "retry+hedge+degrade", "crash@30s:r0:20s", "recover"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestFaultsGoldenPinned: the quick-mode faults artifact is
// bit-identical across runs with the same seed; the golden pins it.
func TestFaultsGoldenPinned(t *testing.T) {
	got := faultsQuickResult(t).CSV()
	want, err := os.ReadFile(filepath.Join("testdata", "faults_quick.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("faults quick-mode CSV drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFaultsDeterministicAcrossWorkers: resilient runs always execute
// on the single shared timeline, so the artifact must be bit-identical
// for every Workers value.
func TestFaultsDeterministicAcrossWorkers(t *testing.T) {
	ref := faultsQuickResult(t).CSV()
	for _, workers := range []int{2, 4} {
		r, err := faultsWithWorkers(quick(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.CSV(); got != ref {
			t.Errorf("workers=%d: faults CSV diverged:\ngot:\n%s\nwant:\n%s", workers, got, ref)
		}
	}
}

// ingestQuick caches the quick-mode Ingest run (three full live
// simulations under the shared diurnal load) for the assertions below.
var ingestQuick *IngestResult

func ingestQuickResult(t *testing.T) *IngestResult {
	t.Helper()
	if ingestQuick == nil {
		r, err := Ingest(quick())
		if err != nil {
			t.Fatal(err)
		}
		ingestQuick = r
	}
	return ingestQuick
}

// TestIngestFreshness: the headline live-corpus artifact — the frozen
// arm stays mutation-free, the streaming arms absorb the full mutation
// stream within the freshness SLO while holding at least 95% of the
// frozen arm's request attainment, and the compaction arm walks the
// escalation ladder: cheap compaction on the first drift trigger, full
// re-partition when the trigger recurs.
func TestIngestFreshness(t *testing.T) {
	r := ingestQuickResult(t)
	frozen, live, comp := r.Arm("frozen"), r.Arm("streaming"), r.Arm("streaming+compaction")
	if frozen == nil || live == nil || comp == nil {
		t.Fatalf("arms missing: %+v", r.Arms)
	}
	if frozen.Inserts != 0 || frozen.Deletes != 0 || frozen.Reencode != 0 {
		t.Errorf("frozen arm mutated: %+v", *frozen)
	}
	for _, a := range []*IngestArm{live, comp} {
		if a.Inserts == 0 || a.Deletes == 0 {
			t.Errorf("%s arm saw no mutations: inserts %d, deletes %d", a.Name, a.Inserts, a.Deletes)
		}
		if a.Pending != 0 {
			t.Errorf("%s arm left %d raw appends unfolded at run end", a.Name, a.Pending)
		}
		if a.Reencode == 0 {
			t.Errorf("%s arm never re-encoded", a.Name)
		}
		if a.TTSP50 <= 0 || a.TTSP99 < a.TTSP50 {
			t.Errorf("%s arm TTS percentiles inverted: p50 %v, p99 %v", a.Name, a.TTSP50, a.TTSP99)
		}
		if a.FreshAtt < 0.9 {
			t.Errorf("%s arm freshness attainment %.3f; mutations queued past the SLO", a.Name, a.FreshAtt)
		}
		// The live corpus may cost a sliver of serving headroom, no more.
		if a.Att < 0.95*frozen.Att {
			t.Errorf("%s arm attainment %.3f fell past 95%% of frozen %.3f", a.Name, a.Att, frozen.Att)
		}
	}
	// Identical mutation streams: the controller changes the index, not
	// the corpus.
	if live.Inserts != comp.Inserts || live.Deletes != comp.Deletes {
		t.Errorf("mutation streams diverged: streaming %d/%d vs compaction %d/%d",
			live.Inserts, live.Deletes, comp.Inserts, comp.Deletes)
	}
	if live.Compact != 0 || live.Rebuilds != 0 {
		t.Errorf("streaming arm ran the controller: %d compactions, %d rebuilds", live.Compact, live.Rebuilds)
	}
	if comp.Compact == 0 {
		t.Errorf("compaction arm never compacted; the drift trigger escalated straight to a rebuild")
	}
	if comp.Rebuilds == 0 {
		t.Errorf("compaction arm never escalated; the repeat trigger should force the full re-partition")
	}
	out := r.Render()
	for _, want := range []string{"frozen", "streaming+compaction", "tts p99", "freshness SLO", "escalat"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestIngestGoldenPinned: the quick-mode ingest artifact is
// bit-identical across runs with the same seed; the golden pins it.
func TestIngestGoldenPinned(t *testing.T) {
	got := ingestQuickResult(t).CSV()
	want, err := os.ReadFile(filepath.Join("testdata", "ingest_quick.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("ingest quick-mode CSV drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestIngestDeterministicAcrossWorkers: mutations, re-encodes, and
// compactions all schedule on the single shared timeline, so the
// artifact must be bit-identical for every Workers value.
func TestIngestDeterministicAcrossWorkers(t *testing.T) {
	ref := ingestQuickResult(t).CSV()
	for _, workers := range []int{2, 4} {
		r, err := ingestWithWorkers(quick(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.CSV(); got != ref {
			t.Errorf("workers=%d: ingest CSV diverged:\ngot:\n%s\nwant:\n%s", workers, got, ref)
		}
	}
}

// precisionQuick caches the quick-mode run for all precision tests.
var precisionQuick *PrecisionResult

func precisionQuickResult(t *testing.T) *PrecisionResult {
	t.Helper()
	if precisionQuick == nil {
		r, err := Precision(quick())
		if err != nil {
			t.Fatal(err)
		}
		precisionQuick = r
	}
	return precisionQuick
}

// TestPrecisionHeadline: the tentpole claim. At the same HBM budget the
// (tier, codec) refinement must hold placement-only attainment — the
// SQ8 streaming kernel shortens retrieval busy windows, so it in fact
// gains — while buying recall points; the recall delta must never fall
// more than 2 points. The HBM-only baseline keeps the whole index
// resident and is untouched by the refinement.
func TestPrecisionHeadline(t *testing.T) {
	r := precisionQuickResult(t)
	for _, rate := range r.Rates() {
		hbm, place, prec := r.Arm("hbm-only", rate), r.Arm("placement", rate), r.Arm("placement+precision", rate)
		if hbm == nil || place == nil || prec == nil {
			t.Fatalf("arms missing at rate %.1f: %+v", rate, r.Arms)
		}
		if hbm.Rho != 1 || hbm.SQ != 0 || hbm.NVMe != 0 || hbm.Gain != 0 {
			t.Errorf("hbm-only arm is not the untouched baseline: %+v", *hbm)
		}
		if place.SQ != 0 || place.NVMe != 0 || place.Gain != 0 {
			t.Errorf("placement-only arm carries precision state: %+v", *place)
		}
		if prec.SQ == 0 {
			t.Errorf("@%.1f: refinement upgraded no clusters to SQ8", rate)
		}
		if prec.NVMe == 0 {
			t.Errorf("@%.1f: refinement demoted no clusters to NVMe", rate)
		}
		if prec.Att < place.Att {
			t.Errorf("@%.1f: precision attainment %.4f below placement-only %.4f at equal budget",
				rate, prec.Att, place.Att)
		}
		if prec.Gain < -2 {
			t.Errorf("@%.1f: recall loss %.2f pts exceeds the 2-point bound", rate, prec.Gain)
		}
		if prec.Gain <= 0 {
			t.Errorf("@%.1f: SQ8 upgrades bought no recall: %.4f pts", rate, prec.Gain)
		}
		if prec.Rho != place.Rho {
			t.Errorf("@%.1f: refinement moved the placement split: rho %.4f vs %.4f",
				rate, prec.Rho, place.Rho)
		}
		// Honest accounting: the SQ8 bytes live in GPU memory, so the
		// refined plan must report more resident bytes, never fewer.
		if prec.PlanGB <= place.PlanGB {
			t.Errorf("@%.1f: refined plan %.2f GB not above placement-only %.2f GB",
				rate, prec.PlanGB, place.PlanGB)
		}
	}
	out := r.Render()
	for _, want := range []string{"hbm-only", "placement+precision", "recall +pts", "same HBM budget"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestPrecisionGoldenPinned: the quick-mode artifact is bit-identical
// across runs with the same seed; the golden pins it.
func TestPrecisionGoldenPinned(t *testing.T) {
	got := precisionQuickResult(t).CSV()
	want, err := os.ReadFile(filepath.Join("testdata", "precision_quick.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("precision quick-mode CSV drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPrecisionDeterministicAcrossWorkers: every arm runs on the
// sharded cluster engine (NetDelay is set explicitly, so workers=1
// takes the same conservative-lookahead schedule), and the merged
// timeline is a pure function of the options — the artifact must be
// bit-identical for every Workers value.
func TestPrecisionDeterministicAcrossWorkers(t *testing.T) {
	ref := precisionQuickResult(t).CSV()
	for _, workers := range []int{1, 2, 4} {
		r, err := precisionWithWorkers(quick(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.CSV(); got != ref {
			t.Errorf("workers=%d: precision CSV diverged:\ngot:\n%s\nwant:\n%s", workers, got, ref)
		}
	}
}

// overloadQuick caches the quick-mode Overload run (three full sharded
// multi-tenant simulations under the ramp) for the assertions below.
var overloadQuick *OverloadResult

func overloadQuickResult(t *testing.T) *OverloadResult {
	t.Helper()
	if overloadQuick == nil {
		r, err := Overload(quick())
		if err != nil {
			t.Fatal(err)
		}
		overloadQuick = r
	}
	return overloadQuick
}

// TestOverloadResilience: the headline overload artifact — at a
// sustained ≈1.5× capacity ramp, the naive unbounded queue collapses
// (bronze backlog grows without bound, aggregate attainment craters),
// bounded admission contains the backlog by rejecting, and the
// brownout ladder on top of it holds gold at ≥0.90 attainment while
// buying goodput with recall instead of with dropped requests.
func TestOverloadResilience(t *testing.T) {
	r := overloadQuickResult(t)
	naive, reject, brown := r.Arm("naive-queue"), r.Arm("reject-only"), r.Arm("brownout")
	if naive == nil || reject == nil || brown == nil {
		t.Fatalf("arms missing: %+v", r.Arms)
	}
	if !naive.Collapsed(r.QueueCap) {
		t.Fatalf("naive queue did not collapse: attainment %.3f, rows %+v", naive.Attainment, naive.Rows)
	}
	if naive.Rejected != 0 {
		t.Errorf("naive arm rejected %d requests with no admission bound", naive.Rejected)
	}
	g := brown.Row("gold")
	if g == nil || g.Att < 0.90 {
		t.Fatalf("brownout arm gold attainment below 0.90: %+v", g)
	}
	// Bounded admission must actually bound: no per-tenant queue past
	// the cap, and the bronze surplus visibly refused.
	for _, a := range []*OverloadArm{reject, brown} {
		for _, row := range a.Rows {
			if row.PeakQueue > r.QueueCap {
				t.Errorf("%s arm %s queue %d exceeds cap %d", a.Name, row.Name, row.PeakQueue, r.QueueCap)
			}
		}
		if a.Rejected == 0 {
			t.Errorf("%s arm rejected nothing under 1.5x overload", a.Name)
		}
	}
	// The controller must have engaged and stayed engaged through the
	// sustained overload, shedding real work.
	if brown.MaxLevel == 0 || brown.TimeInBrownout == 0 || brown.MeanShed == 0 {
		t.Errorf("brownout controller never engaged: level %d, time %v, shed %.2f",
			brown.MaxLevel, brown.TimeInBrownout, brown.MeanShed)
	}
	// Degrading beats dropping: brownout serves more within-SLO work
	// than reject-only, and pays for it in recall (the SQ8→PQ rung
	// hands back some of the precision upgrade's gain).
	if brown.Goodput <= reject.Goodput {
		t.Errorf("brownout goodput %.2f did not beat reject-only %.2f", brown.Goodput, reject.Goodput)
	}
	if brown.RecallGain >= naive.RecallGain {
		t.Errorf("brownout recall gain %.4f did not drop below naive %.4f; the precision-fallback rung never fired",
			brown.RecallGain, naive.RecallGain)
	}
	out := r.Render()
	for _, want := range []string{"naive-queue", "reject-only", "brownout", "overload contained"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestOverloadGoldenPinned: the quick-mode artifact is bit-identical
// across runs with the same seed; the golden pins it.
func TestOverloadGoldenPinned(t *testing.T) {
	got := overloadQuickResult(t).CSV()
	want, err := os.ReadFile(filepath.Join("testdata", "overload_quick.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("overload quick-mode CSV drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestOverloadDeterministicAcrossWorkers: every arm runs on the
// sharded cluster engine (NetDelay is set explicitly), per-replica
// brownout controllers see only replica-local completions, and the
// merged timeline is a pure function of the options — the artifact
// must be bit-identical for every Workers value.
func TestOverloadDeterministicAcrossWorkers(t *testing.T) {
	ref := overloadQuickResult(t).CSV()
	for _, workers := range []int{1, 2, 4} {
		r, err := overloadWithWorkers(quick(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.CSV(); got != ref {
			t.Errorf("workers=%d: overload CSV diverged:\ngot:\n%s\nwant:\n%s", workers, got, ref)
		}
	}
}
