// Package workload defines the request model and the open-loop Poisson
// arrival generator used throughout the evaluation (paper §V-A: Poisson
// arrivals; each request retrieves top-25 documents, builds a
// 1024-token input, and generates a 256-token output).
package workload

import (
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/rng"
)

// Shape is the token geometry of requests.
type Shape struct {
	InputTokens  int
	OutputTokens int
	TopK         int // documents retrieved per query
}

// DefaultShape matches the paper's main evaluation setting.
func DefaultShape() Shape { return Shape{InputTokens: 1024, OutputTokens: 256, TopK: 25} }

// Request is one end-to-end RAG request flowing through retrieval and
// generation. Timestamps are virtual; zero means "not reached yet".
type Request struct {
	ID    int
	Query dataset.QueryID
	Shape Shape
	// Tenant identifies which tenant's stream the request belongs to in
	// a multi-tenant run (0 in single-tenant runs, where it is unused).
	// It indexes the per-tenant queues of serve.FairScheduler and the
	// per-tenant corpora of the multi-tenant retrieval engine.
	Tenant int

	ArrivalAt   des.Time // enters the system
	SearchStart des.Time // its retrieval batch begins
	SearchDone  des.Time // retrieval results merged and forwarded
	LLMStart    des.Time // admitted into an LLM instance's prefill
	FirstToken  des.Time // first output token (TTFT endpoint)
	Done        des.Time // last output token

	// HitRate is the work-weighted fraction of this query's scan bytes
	// actually served from GPU-resident clusters, recorded by the
	// retrieval engine when the request's batch is routed. It is the
	// per-request observation the paper's runtime monitor accumulates
	// (§IV-B3); mid-reload CPU diverts therefore show up as misses.
	HitRate float64
}

// TTFT returns time-to-first-token; callers must only use it after
// FirstToken is set.
func (r *Request) TTFT() des.Time { return r.FirstToken - r.ArrivalAt }

// E2E returns total latency; valid once Done is set.
func (r *Request) E2E() des.Time { return r.Done - r.ArrivalAt }

// QueueingDelay is the time spent waiting before retrieval started.
func (r *Request) QueueingDelay() des.Time { return r.SearchStart - r.ArrivalAt }

// SearchLatency is the retrieval service time (batch start to forward).
func (r *Request) SearchLatency() des.Time { return r.SearchDone - r.SearchStart }

// Generator produces Poisson arrivals of requests drawn from a
// workload's query distribution. With a Sched installed the process is
// an *inhomogeneous* Poisson stream realized by thinning; otherwise it
// is the classic constant-rate stream (bit-identical to before Sched
// existed).
type Generator struct {
	RatePerSec float64
	Shape      Shape
	W          *dataset.Workload
	// Sched, when non-nil, overrides RatePerSec with a time-varying rate
	// (ramps, bursts, diurnal cycles — the non-stationary workloads of
	// drift studies).
	Sched Schedule
	// Tenant stamps every emitted request (multi-tenant runs multiplex
	// one generator per tenant onto a shared simulator timeline).
	Tenant int

	r      *rng.Rand
	nextID int
}

// NewGenerator returns an open-loop generator. rate is requests per
// second of virtual time.
func NewGenerator(w *dataset.Workload, rate float64, shape Shape, seed uint64) *Generator {
	return &Generator{RatePerSec: rate, Shape: shape, W: w, r: rng.New(seed)}
}

// NewScheduledGenerator returns an open-loop generator driven by a rate
// schedule instead of a constant rate.
func NewScheduledGenerator(w *dataset.Workload, sched Schedule, shape Shape, seed uint64) *Generator {
	return &Generator{Sched: sched, Shape: shape, W: w, r: rng.New(seed)}
}

// Start schedules arrivals on the simulator until the given deadline,
// invoking submit for each new request at its arrival time.
func (g *Generator) Start(sim *des.Sim, until des.Time, submit func(*Request)) {
	if g.Sched != nil {
		g.startThinned(sim, until, submit)
		return
	}
	var schedule func(at des.Time)
	schedule = func(at des.Time) {
		if at > until {
			return
		}
		sim.At(at, func() {
			g.emit(sim, submit)
			gap := des.Time(g.r.ExpFloat64() / g.RatePerSec * 1e9)
			schedule(sim.Now() + gap)
		})
	}
	first := des.Time(g.r.ExpFloat64() / g.RatePerSec * 1e9)
	schedule(first)
}

// startThinned realizes the inhomogeneous Poisson process by Lewis'
// thinning: candidate arrivals are drawn at the schedule's MaxRate and
// each is accepted with probability RateAt(t)/MaxRate — exact for any
// bounded rate function, and deterministic under a fixed seed.
func (g *Generator) startThinned(sim *des.Sim, until des.Time, submit func(*Request)) {
	rmax := g.Sched.MaxRate()
	var schedule func(at des.Time)
	schedule = func(at des.Time) {
		if at > until {
			return
		}
		sim.At(at, func() {
			now := sim.Now()
			if g.r.Float64()*rmax <= g.Sched.RateAt(time.Duration(now)) {
				g.emit(sim, submit)
			}
			gap := des.Time(g.r.ExpFloat64() / rmax * 1e9)
			schedule(now + gap)
		})
	}
	first := des.Time(g.r.ExpFloat64() / rmax * 1e9)
	schedule(first)
}

// emit materializes one request at the current instant.
func (g *Generator) emit(sim *des.Sim, submit func(*Request)) {
	req := &Request{
		ID:        g.nextID,
		Query:     g.W.Sample(g.r),
		Shape:     g.Shape,
		Tenant:    g.Tenant,
		ArrivalAt: sim.Now(),
	}
	g.nextID++
	submit(req)
}

// Count returns how many requests have been generated so far.
func (g *Generator) Count() int { return g.nextID }
