package dataset

import (
	"testing"
	"time"
)

func TestValidateDrift(t *testing.T) {
	if err := ValidateDrift(nil); err != nil {
		t.Fatalf("empty trace rejected: %v", err)
	}
	ok := []DriftEvent{{At: 10 * time.Second, Rotate: 5}, {At: 20 * time.Second, Rotate: -3}}
	if err := ValidateDrift(ok); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if err := ValidateDrift([]DriftEvent{{At: 20 * time.Second, Rotate: 1}, {At: 10 * time.Second, Rotate: 1}}); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	if err := ValidateDrift([]DriftEvent{{At: -time.Second, Rotate: 1}}); err == nil {
		t.Fatal("negative time accepted")
	}
	if err := ValidateDrift([]DriftEvent{{At: time.Second, Rotate: 0}}); err == nil {
		t.Fatal("no-op trace accepted")
	}
}

func TestApplyDriftComposes(t *testing.T) {
	gc := GenConfig{NCenters: 8, PerCenter: 16, Dim: 8, PhysNList: 8, PhysNProbe: 2, Templates: 32, Seed: 3}
	w, err := Build(WikiAll, gc)
	if err != nil {
		t.Fatal(err)
	}
	w.ApplyDrift(DriftEvent{Rotate: 10})
	if got := w.PopularityRotation(); got != 10 {
		t.Fatalf("rotation = %d", got)
	}
	w.ApplyDrift(DriftEvent{Rotate: 30}) // 40 mod 32 = 8
	if got := w.PopularityRotation(); got != 8 {
		t.Fatalf("composed rotation = %d, want 8", got)
	}
	w.ApplyDrift(DriftEvent{Rotate: -9}) // -1 mod 32 = 31
	if got := w.PopularityRotation(); got != 31 {
		t.Fatalf("negative composition = %d, want 31", got)
	}
}
