package rng

import "testing"

func TestStreamPinned(t *testing.T) {
	// The derivation is part of the reproducibility contract: changing
	// it would silently shift every sharded run's arrival streams.
	if got := Stream(0, 0); got != 0xe220a8397b1dcdaf {
		t.Fatalf("Stream(0,0) = %#x; derivation changed", got)
	}
	if Stream(1, 0) == Stream(0, 0) || Stream(0, 1) == Stream(0, 0) {
		t.Fatal("root/id not mixed in")
	}
}

func TestStreamDecorrelated(t *testing.T) {
	// Adjacent streams from one root must not produce correlated draws.
	seen := map[uint64]bool{}
	for id := uint64(0); id < 100; id++ {
		s := Stream(42, id)
		if seen[s] {
			t.Fatalf("stream collision at id=%d", id)
		}
		seen[s] = true
	}
	a, b := New(Stream(42, 0)), New(Stream(42, 1))
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Intn(100) == b.Intn(100) {
			same++
		}
	}
	if same > 40 { // expect ~10 of 1000 matches by chance
		t.Fatalf("adjacent streams agree on %d/1000 draws", same)
	}
}
