package profiler

import (
	"math"
	"testing"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hw"
)

func smallWorkload(t *testing.T, spec dataset.Spec) *dataset.Workload {
	t.Helper()
	gc := dataset.GenConfig{NCenters: 32, PerCenter: 64, Dim: 16, PhysNList: 32, PhysNProbe: 4, Templates: 128, Seed: 1}
	w, err := dataset.Build(spec, gc)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCollectAccessCountsTotal(t *testing.T) {
	w := smallWorkload(t, dataset.Orcas1K)
	p, err := CollectAccess(w, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range p.Counts {
		total += c
	}
	if want := int64(1000 * w.Gen.PhysNProbe); total != want {
		t.Fatalf("total accesses %d, want %d", total, want)
	}
}

func TestCollectAccessRejectsZero(t *testing.T) {
	w := smallWorkload(t, dataset.WikiAll)
	if _, err := CollectAccess(w, 0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestHotOrderSortedByCount(t *testing.T) {
	w := smallWorkload(t, dataset.Orcas1K)
	p, _ := CollectAccess(w, 2000, 3)
	for i := 1; i < len(p.HotOrder); i++ {
		if p.Counts[p.HotOrder[i]] > p.Counts[p.HotOrder[i-1]] {
			t.Fatal("HotOrder not descending by count")
		}
	}
}

func TestHotMask(t *testing.T) {
	w := smallWorkload(t, dataset.WikiAll)
	p, _ := CollectAccess(w, 500, 5)
	mask := p.HotMask(3)
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("mask has %d hot clusters, want 3", n)
	}
	for _, c := range p.HotOrder[:3] {
		if !mask[c] {
			t.Fatalf("hottest cluster %d not in mask", c)
		}
	}
	if got := p.HotMask(-1); countTrue(got) != 0 {
		t.Fatal("negative k should give empty mask")
	}
	if got := p.HotMask(10000); countTrue(got) != len(p.Counts) {
		t.Fatal("oversized k should give full mask")
	}
}

func countTrue(m []bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

func TestAccessCDFMonotoneEndsAtOne(t *testing.T) {
	w := smallWorkload(t, dataset.Orcas1K)
	p, _ := CollectAccess(w, 2000, 9)
	cdf := p.AccessCDF()
	prev := 0.0
	for i, v := range cdf {
		if v < prev-1e-12 {
			t.Fatalf("CDF decreased at %d", i)
		}
		prev = v
	}
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
		t.Fatalf("CDF ends at %v", cdf[len(cdf)-1])
	}
}

func TestSmallSampleMatchesLargeSample(t *testing.T) {
	// The paper's §IV-B3 claim: a ~0.5% sample captures the access
	// distribution. Compare hot-set overlap between a small and a large
	// profile.
	w := smallWorkload(t, dataset.Orcas1K)
	small, _ := CollectAccess(w, 300, 11)
	large, _ := CollectAccess(w, 30000, 13)
	k := len(small.HotOrder) / 5 // top 20%
	smallSet := map[int]bool{}
	for _, c := range small.HotOrder[:k] {
		smallSet[c] = true
	}
	overlap := 0
	for _, c := range large.HotOrder[:k] {
		if smallSet[c] {
			overlap++
		}
	}
	if float64(overlap)/float64(k) < 0.7 {
		t.Fatalf("small-sample hot set overlaps only %d/%d with large sample", overlap, k)
	}
}

func TestProfileLatencyMonotone(t *testing.T) {
	m := costmodel.NewSearchModel(hw.Xeon8462Y(), dataset.Orcas1K)
	samples := ProfileLatency(m, DefaultBatches())
	if len(samples) != len(DefaultBatches()) {
		t.Fatalf("sample count %d", len(samples))
	}
	for i, s := range samples {
		if s.Search != s.CQ+s.LUT {
			t.Fatalf("sample %d: Search != CQ+LUT", i)
		}
		if i > 0 && s.Search < samples[i-1].Search {
			t.Fatal("profiled latency not monotone in batch")
		}
	}
}
