package serve

import (
	"testing"

	"vectorliterag/internal/workload"
)

// TestRouterLeastLoadedTieBreaking pins the tie-break rule: the
// least-loaded scan starts at the rotation cursor and takes the first
// strictly-smaller load, so equal replicas share round-robin and a
// uniquely lighter replica wins regardless of cursor position. Each
// submit holds its request in flight (the sim never runs), so the
// sequence of picks is fully determined by the preset loads.
func TestRouterLeastLoadedTieBreaking(t *testing.T) {
	cases := []struct {
		name      string
		inflights []int
		want      []int // picked replica per successive submit
	}{
		{
			name:      "all equal rotates round-robin",
			inflights: []int{0, 0, 0},
			want:      []int{0, 1, 2, 0, 1, 2},
		},
		{
			name:      "uniquely lighter replica wins until loads equalize",
			inflights: []int{2, 0, 2},
			want:      []int{1, 1, 2},
		},
		{
			name:      "tie among lighter pair breaks toward rotation start",
			inflights: []int{3, 1, 1},
			want:      []int{1, 2, 2, 1},
		},
		{
			// The lighter tail replica absorbs submits until loads level
			// out; once equal, the tie goes to the rotation cursor (which
			// the five picks have advanced to it).
			name:      "heavy head never starves the tail",
			inflights: []int{5, 5, 0},
			want:      []int{2, 2, 2, 2, 2, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var seen []int
			reps := make([]*Replica, len(tc.inflights))
			for i := range reps {
				reps[i] = heldReplica(t, &seen, i)
				reps[i].inflight = tc.inflights[i]
			}
			r, err := NewRouter(LeastLoaded, reps)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tc.want {
				r.Submit(&workload.Request{ID: i})
			}
			if len(seen) != len(tc.want) {
				t.Fatalf("routed %d of %d", len(seen), len(tc.want))
			}
			for i := range tc.want {
				if seen[i] != tc.want[i] {
					t.Fatalf("pick sequence %v, want %v", seen, tc.want)
				}
			}
		})
	}
}

// heldReplica is a replica whose pipeline records the routed replica
// ID and never completes, freezing each submit's in-flight increment.
func heldReplica(t *testing.T, seen *[]int, id int) *Replica {
	t.Helper()
	rep := NewReplica()
	pipe := &Pipeline{head: func(req *workload.Request) { *seen = append(*seen, id) }}
	rep.Bind(pipe)
	return rep
}
