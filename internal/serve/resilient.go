package serve

import (
	"fmt"
	"sort"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/stats"
	"vectorliterag/internal/workload"
)

// ResilienceConfig selects the failure-handling behaviors of a
// ResilientRouter. The zero value of each knob disables that behavior,
// so the router degenerates gracefully toward the plain Router.
type ResilienceConfig struct {
	// Policy is the routing policy over *healthy* replicas.
	Policy Policy

	// Timeout is the per-attempt deadline: an attempt that has not
	// completed Timeout after dispatch is retried (if budget remains)
	// or failed. Zero disables timeouts — and with them retries.
	Timeout time.Duration

	// MaxRetries bounds how many times a request may be re-dispatched
	// after its first attempt (timeouts and crash failovers both consume
	// the budget). Zero means a timed-out or crashed-away request fails
	// immediately.
	MaxRetries int

	// Backoff is the delay before the first re-dispatch; successive
	// retries double it (exponential backoff). Crash failovers skip the
	// backoff — the replica is known dead, not suspected slow.
	Backoff time.Duration

	// HedgeDelay fires a backup copy of a still-running request on a
	// different healthy replica this long after dispatch; the first
	// completion wins and the loser is discarded. Zero (with HedgeAuto
	// unset) disables hedging.
	HedgeDelay time.Duration

	// HedgeAuto derives the hedge delay from the running p95 of
	// completed first-attempt latencies instead of a fixed HedgeDelay,
	// once enough samples accumulate (HedgeDelay serves as the floor and
	// the pre-warmup value).
	HedgeAuto bool

	// Degrade enables the graceful-degradation controller: while some
	// replicas are down, dispatched requests carry a Degrade fraction
	// proportional to the lost capacity, and retrieval sheds that
	// fraction of nprobe depth.
	Degrade bool

	// DegradeMax caps the shed fraction (default 0.5 when Degrade is
	// set): even with most replicas down, at least 1-DegradeMax of the
	// probe depth survives.
	DegradeMax float64

	// DegradeBias scales the shed fraction per tenant, indexed by
	// workload.Request.Tenant — give bronze tenants a bias > 1 and gold
	// < 1 so bronze sheds depth before gold does. Missing entries mean
	// bias 1.
	DegradeBias []float64
}

// normalized fills defaults and validates the config.
func (c ResilienceConfig) normalized() (ResilienceConfig, error) {
	var err error
	if c.Policy, err = ResolvePolicy(c.Policy); err != nil {
		return c, err
	}
	if c.MaxRetries < 0 {
		return c, fmt.Errorf("serve: negative MaxRetries %d", c.MaxRetries)
	}
	if c.Timeout < 0 || c.Backoff < 0 || c.HedgeDelay < 0 {
		return c, fmt.Errorf("serve: negative resilience durations (timeout %v, backoff %v, hedge %v)", c.Timeout, c.Backoff, c.HedgeDelay)
	}
	if c.Backoff == 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.Degrade && c.DegradeMax == 0 {
		c.DegradeMax = 0.5
	}
	if c.DegradeMax < 0 || c.DegradeMax > 1 {
		return c, fmt.Errorf("serve: DegradeMax %.2f out of [0,1]", c.DegradeMax)
	}
	return c, nil
}

// hedging reports whether any hedge trigger is configured.
func (c *ResilienceConfig) hedging() bool { return c.HedgeDelay > 0 || c.HedgeAuto }

// ResilienceStats counts the failure-handling actions of one run.
type ResilienceStats struct {
	Retried    int // re-dispatches after timeout or crash failover
	FailedOver int // subset of Retried caused by a replica crash
	Hedged     int // backup copies fired
	HedgeWins  int // completions where the backup finished first
	TimedOut   int // per-attempt deadline expiries
	Failed     int // requests abandoned with the retry budget exhausted
	Ghosts     int // superseded copies that drained from their pipeline
	Crashes    int // crash episodes observed
}

// attempt is the router's per-request control block: the currently
// authoritative copy (primary), an optional racing backup (hedge), and
// the fencing state that lets timers fire harmlessly after the world
// has moved on (DES events cannot be cancelled, so every timer captures
// the seq it was armed under and no-ops on mismatch).
type attempt struct {
	primary    *workload.Request
	hedge      *workload.Request
	primaryRep int
	hedgeRep   int
	tries      int    // dispatches consumed (first attempt = 1)
	seq        uint64 // bumped on retry/completion/failure; fences timers
	crashID    int    // index of the crash that failed this attempt over, or -1
	// pending marks a primary copy created for a retry whose backoff
	// delay has not expired yet: it is on no replica, so superseding it
	// releases it directly instead of letting it drain as a ghost.
	pending bool
}

// ResilientRouter is the failure-aware cluster front end: a Router that
// additionally tracks replica health (crashed replicas leave the
// candidate set and their in-flight requests fail over), enforces
// per-attempt timeouts with bounded exponential-backoff retries, races
// hedged backups, and stamps graceful-degradation fractions while
// capacity is down.
//
// Superseded copies are never yanked out of their pipelines — the
// simulator cannot cancel events — they finish as *ghosts*: their
// terminal completion finds no attempt entry and quietly returns the
// object to the pool. All bookkeeping that must not see ghosts (the
// collector, latency samples, recovery tracking) is therefore keyed by
// the attempts map, and per-replica in-flight lists are ordered slices,
// never map iterations, keeping every run bit-reproducible.
type ResilientRouter struct {
	sim  *des.Sim
	cfg  ResilienceConfig
	reps []*Replica
	pool *workload.Pool
	coll *Collector

	up   []bool
	nUp  int
	next int // round-robin cursor

	attempts map[*workload.Request]*attempt
	liveOn   [][]*workload.Request // per-replica dispatch-ordered copies

	samples  []float64  // clean first-attempt latencies (seconds) for HedgeAuto
	scratch  []float64  // reusable quantile scratch
	crashAt  []des.Time // per-crash onset
	healedBy []des.Time // per-crash last failed-over completion

	stats ResilienceStats
}

// NewResilientRouter builds the failure-aware front end over bound
// replicas. coll must be the front collector that admitted the
// requests; pool receives every finished or superseded copy.
func NewResilientRouter(sim *des.Sim, cfg ResilienceConfig, replicas []*Replica, coll *Collector, pool *workload.Pool) (*ResilientRouter, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one replica")
	}
	for i, r := range replicas {
		if r == nil || r.pipe == nil {
			return nil, fmt.Errorf("serve: replica %d has no pipeline bound", i)
		}
	}
	if coll == nil || pool == nil {
		return nil, fmt.Errorf("serve: resilient router needs a collector and a pool")
	}
	up := make([]bool, len(replicas))
	for i := range up {
		up[i] = true
	}
	return &ResilientRouter{
		sim:      sim,
		cfg:      cfg,
		reps:     replicas,
		pool:     pool,
		coll:     coll,
		up:       up,
		nUp:      len(replicas),
		attempts: make(map[*workload.Request]*attempt),
		liveOn:   make([][]*workload.Request, len(replicas)),
	}, nil
}

// Name implements Stage.
func (r *ResilientRouter) Name() string {
	return fmt.Sprintf("resilient-router(%s,%d)", r.cfg.Policy, len(r.reps))
}

// Replicas returns the routed replicas.
func (r *ResilientRouter) Replicas() []*Replica { return r.reps }

// Stats returns the run's resilience counters.
func (r *ResilientRouter) Stats() ResilienceStats { return r.stats }

// Recoveries returns, per crash episode, the virtual time from the
// crash instant to the completion of the last request failed over off
// the crashed replica — the router's time-to-recover. Crashes whose
// failovers never completed report a negative duration.
func (r *ResilientRouter) Recoveries() []time.Duration {
	out := make([]time.Duration, len(r.crashAt))
	for i := range r.crashAt {
		out[i] = time.Duration(r.healedBy[i] - r.crashAt[i])
	}
	return out
}

// Submit implements Stage: the entry point for fresh arrivals.
func (r *ResilientRouter) Submit(req *workload.Request) {
	att := &attempt{primary: req, tries: 1, crashID: -1, pending: true}
	r.attempts[req] = att
	r.dispatch(att)
}

// pick selects a healthy replica per the policy, skipping exclude
// (pass -1 to allow all). Returns -1 when no healthy candidate exists.
func (r *ResilientRouter) pick(exclude int) int {
	n := len(r.reps)
	pick := -1
	for k := 0; k < n; k++ {
		i := (r.next + k) % n
		if !r.up[i] || i == exclude {
			continue
		}
		if pick < 0 {
			pick = i
			if r.cfg.Policy == RoundRobin {
				break
			}
			continue
		}
		if r.reps[i].inflight < r.reps[pick].inflight {
			pick = i
		}
	}
	if pick >= 0 {
		r.next++
	}
	return pick
}

// dispatch places the attempt's primary copy on a healthy replica,
// arming its timeout and (first dispatch only) hedge timers. With no
// healthy replica it burns a retry slot waiting out a backoff.
func (r *ResilientRouter) dispatch(att *attempt) {
	i := r.pick(-1)
	if i < 0 {
		r.retry(att, false)
		return
	}
	req := att.primary
	att.pending = false
	att.primaryRep = i
	r.stampDegrade(req)
	rep := r.reps[i]
	rep.inflight++
	rep.submitted++
	r.liveOn[i] = append(r.liveOn[i], req)
	seq := att.seq
	if r.cfg.Timeout > 0 {
		r.sim.After(r.cfg.Timeout, func() { r.onTimeout(att, seq) })
	}
	if r.cfg.hedging() && att.hedge == nil && att.tries == 1 {
		r.sim.After(r.hedgeDelay(), func() { r.onHedge(att, seq) })
	}
	rep.pipe.Submit(req)
}

// stampDegrade writes the graceful-degradation fraction for the
// current capacity level onto a copy about to be dispatched.
func (r *ResilientRouter) stampDegrade(req *workload.Request) {
	if !r.cfg.Degrade {
		return
	}
	down := float64(len(r.reps)-r.nUp) / float64(len(r.reps))
	bias := 1.0
	if t := req.Tenant; t >= 0 && t < len(r.cfg.DegradeBias) {
		bias = r.cfg.DegradeBias[t]
	}
	d := down * bias
	if d > r.cfg.DegradeMax {
		d = r.cfg.DegradeMax
	}
	if d < 0 {
		d = 0
	}
	req.Degrade = d
}

// hedgeDelay returns the current backup-fire delay: the fixed
// HedgeDelay, or under HedgeAuto the p95 of clean first-attempt
// latencies once 20 samples exist (never below the fixed floor).
func (r *ResilientRouter) hedgeDelay() time.Duration {
	d := r.cfg.HedgeDelay
	if !r.cfg.HedgeAuto || len(r.samples) < 20 {
		if d == 0 {
			d = time.Second // pre-warmup fallback for pure HedgeAuto
		}
		return d
	}
	r.scratch = append(r.scratch[:0], r.samples...)
	sort.Float64s(r.scratch)
	// Interpolated quantile, not scratch[(len*95)/100]: that index is
	// the sample *maximum* at the 20-sample warmup boundary, which made
	// the auto delay track the slowest clean attempt instead of the p95.
	p95 := stats.PercentileSorted(r.scratch, 0.95)
	if auto := time.Duration(p95 * float64(time.Second)); auto > d {
		return auto
	}
	return d
}

// onTimeout fires when an attempt's per-dispatch deadline expires.
func (r *ResilientRouter) onTimeout(att *attempt, seq uint64) {
	if att.seq != seq {
		return // completed, retried, or failed in the meantime
	}
	r.stats.TimedOut++
	r.retry(att, false)
}

// retry supersedes the attempt's current primary with a fresh copy and
// re-dispatches — immediately for crash failovers, after exponential
// backoff otherwise. An exhausted budget fails the request.
func (r *ResilientRouter) retry(att *attempt, immediate bool) {
	if att.tries > r.cfg.MaxRetries {
		r.fail(att)
		return
	}
	old := att.primary
	cp := r.clone(old)
	if att.pending {
		// The superseded copy never reached a replica; reclaim it here
		// rather than waiting for a ghost drain that will never come.
		delete(r.attempts, old)
		r.pool.Put(old)
	} else {
		delete(r.attempts, old) // in-flight somewhere: drains as a ghost
	}
	r.coll.Replace(old, cp)
	att.primary = cp
	att.pending = true
	r.attempts[cp] = att
	att.tries++
	att.seq++
	r.stats.Retried++
	seq := att.seq
	if immediate {
		r.dispatch(att)
		return
	}
	backoff := r.cfg.Backoff << uint(att.tries-2)
	r.sim.After(backoff, func() {
		if att.seq == seq {
			r.dispatch(att)
		}
	})
}

// clone draws a pooled copy carrying the request's identity; the
// timeline fields restart so the copy flows through its pipeline like a
// fresh submission (ArrivalAt is preserved — latency is end-to-end from
// the user's perspective, retries included).
func (r *ResilientRouter) clone(old *workload.Request) *workload.Request {
	cp := r.pool.Get()
	cp.ID = old.ID
	cp.Query = old.Query
	cp.Shape = old.Shape
	cp.Tenant = old.Tenant
	cp.ArrivalAt = old.ArrivalAt
	return cp
}

// fail abandons a request whose retry budget is exhausted: its record
// freezes unserved, and any copies still draining become ghosts.
func (r *ResilientRouter) fail(att *attempt) {
	r.stats.Failed++
	att.seq++
	r.coll.Abandon(att.primary)
	if att.pending {
		delete(r.attempts, att.primary)
		r.pool.Put(att.primary)
	} else {
		delete(r.attempts, att.primary)
	}
	if att.hedge != nil {
		delete(r.attempts, att.hedge)
		att.hedge = nil
	}
}

// onHedge fires the backup copy on a healthy replica other than the
// primary's. Skipped when the attempt has moved on, a hedge already
// exists, or no second replica is available.
func (r *ResilientRouter) onHedge(att *attempt, seq uint64) {
	if att.seq != seq || att.hedge != nil || att.pending {
		return
	}
	i := r.pick(att.primaryRep)
	if i < 0 {
		return
	}
	cp := r.clone(att.primary)
	att.hedge = cp
	att.hedgeRep = i
	r.attempts[cp] = att
	r.stampDegrade(cp)
	rep := r.reps[i]
	rep.inflight++
	rep.submitted++
	r.liveOn[i] = append(r.liveOn[i], cp)
	r.stats.Hedged++
	rep.pipe.Submit(cp)
}

// ReplicaSink returns the terminal sink for replica i's pipeline. It
// replaces the plain cluster terminal (collector Done + Release + pool
// release): completions are first checked against the attempts map so
// ghosts drain silently, then the winning copy settles the request.
func (r *ResilientRouter) ReplicaSink(i int) Sink {
	return func(req *workload.Request) { r.Complete(i, req) }
}

// Complete settles one copy finishing on replica i. It is exported so
// callers that must build replica pipelines *before* the router exists
// can wire a late-bound closure as each terminal sink.
func (r *ResilientRouter) Complete(i int, req *workload.Request) {
	r.removeLive(i, req)
	r.reps[i].Release(req)
	att, ok := r.attempts[req]
	if !ok {
		r.stats.Ghosts++
		r.pool.Put(req)
		return
	}
	att.seq++ // fence outstanding timeout/hedge/backoff timers
	delete(r.attempts, req)
	isHedge := req == att.hedge
	if isHedge {
		r.stats.HedgeWins++
		// The collector tracks the primary; hand its record the winner.
		r.coll.Replace(att.primary, req)
		delete(r.attempts, att.primary)
		if att.pending {
			r.pool.Put(att.primary) // retry copy awaiting backoff, on no replica
		}
		// else: in flight on some replica, drains as a ghost
	} else if att.hedge != nil {
		delete(r.attempts, att.hedge) // drains as a ghost
	}
	r.coll.Done(req)
	if att.crashID >= 0 && r.healedBy[att.crashID] < r.sim.Now() {
		r.healedBy[att.crashID] = r.sim.Now()
	}
	if att.tries == 1 && !isHedge {
		r.samples = append(r.samples, float64(req.Done-req.ArrivalAt)/float64(time.Second))
	}
	r.pool.Put(req)
}

// removeLive drops req from replica i's dispatch-order list.
func (r *ResilientRouter) removeLive(i int, req *workload.Request) {
	list := r.liveOn[i]
	for k, q := range list {
		if q == req {
			copy(list[k:], list[k+1:])
			list[len(list)-1] = nil
			r.liveOn[i] = list[:len(list)-1]
			return
		}
	}
}

// Crash takes replica i out of the candidate set and fails over its
// in-flight primaries (in dispatch order, so the failover sequence is
// deterministic). Hedge copies on the crashed replica are dropped;
// their primaries race on alone. The replica's pipeline keeps draining
// in virtual time — its completions arrive as ghosts, modeling
// responses lost with the node.
func (r *ResilientRouter) Crash(i int) {
	if !r.up[i] {
		return
	}
	r.up[i] = false
	r.nUp--
	r.stats.Crashes++
	crashID := len(r.crashAt)
	r.crashAt = append(r.crashAt, r.sim.Now())
	r.healedBy = append(r.healedBy, r.sim.Now()-1)
	list := r.liveOn[i]
	r.liveOn[i] = nil
	for _, req := range list {
		att, ok := r.attempts[req]
		if !ok {
			continue // already a ghost; it drains regardless
		}
		if req == att.hedge {
			att.hedge = nil
			delete(r.attempts, req)
			continue
		}
		att.crashID = crashID
		r.stats.FailedOver++
		r.retry(att, true)
	}
	if cap(list) > 0 {
		r.liveOn[i] = list[:0]
	}
}

// Recover returns replica i to the candidate set.
func (r *ResilientRouter) Recover(i int) {
	if r.up[i] {
		return
	}
	r.up[i] = true
	r.nUp++
}

// Up reports whether replica i is currently in the candidate set.
func (r *ResilientRouter) Up(i int) bool { return r.up[i] }
