package rng

// Stream derives the seed of an independent substream from a root
// seed and a stream index — pinned stream splitting for runs that
// fan one logical seed out to several generators (per-tenant arrival
// streams, per-shard scratch RNGs). The derivation is a SplitMix64
// finalizer over root advanced by the golden-gamma multiple of
// (id+1), so streams are decorrelated, stable across versions, and a
// pure function of (root, id) — nothing about worker count or
// scheduling can perturb them.
func Stream(root, id uint64) uint64 {
	z := root + 0x9e3779b97f4a7c15*(id+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
