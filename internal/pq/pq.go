// Package pq implements product quantization (Jégou et al., TPAMI 2010),
// the compression scheme the paper layers on IVF (§II-A/B): each vector
// is split into M sub-vectors, each sub-vector is quantized to one of
// 2^nbits codewords trained by k-means, and search-time distances are
// computed by asymmetric distance computation (ADC) — a lookup table of
// query-to-codeword partial distances built once per query, then scanned
// per candidate code.
//
// The LUT build + scan stages are exactly what the paper's Figure 3
// identifies as the dominant cost of IVF search and what VectorLiteRAG
// offloads to GPUs.
package pq

import (
	"fmt"

	"vectorliterag/internal/kmeans"
	"vectorliterag/internal/parallel"
	"vectorliterag/internal/vecmath"
)

// Quantizer is a trained product quantizer.
type Quantizer struct {
	Dim    int // full vector dimensionality
	M      int // number of subspaces
	K      int // codewords per subspace (typically 256 for 8-bit codes)
	subDim int
	// codebooks[m] is a K x subDim row-major matrix.
	codebooks [][]float32
	// cbNorms[m][j] = ||codebooks[m][j]||^2, precomputed at training time
	// so Encode and BuildLUT run the norm-decomposed kernels
	// (d = |x|^2 - 2<x,c> + |c|^2) without re-deriving codeword norms.
	cbNorms [][]float32
}

// Config controls training.
type Config struct {
	Dim   int
	M     int // must divide Dim
	K     int // codewords per subspace; default 256
	Iters int
	Seed  uint64
	// Workers sizes the training worker pool (subspaces train
	// concurrently); non-positive means one per CPU core. Each subspace
	// trains from its own seed, so results are identical for any value.
	Workers int
}

// Train learns the per-subspace codebooks from the row-major training
// matrix.
func Train(data []float32, cfg Config) (*Quantizer, error) {
	if cfg.K == 0 {
		cfg.K = 256
	}
	if cfg.Dim <= 0 || cfg.M <= 0 {
		return nil, fmt.Errorf("pq: non-positive dim %d or M %d", cfg.Dim, cfg.M)
	}
	if cfg.Dim%cfg.M != 0 {
		return nil, fmt.Errorf("pq: M=%d does not divide dim=%d", cfg.M, cfg.Dim)
	}
	if len(data) == 0 || len(data)%cfg.Dim != 0 {
		return nil, fmt.Errorf("pq: bad training matrix length %d for dim %d", len(data), cfg.Dim)
	}
	n := len(data) / cfg.Dim
	if n < cfg.K {
		return nil, fmt.Errorf("pq: %d training vectors < K=%d codewords", n, cfg.K)
	}
	subDim := cfg.Dim / cfg.M
	q := &Quantizer{Dim: cfg.Dim, M: cfg.M, K: cfg.K, subDim: subDim, codebooks: make([][]float32, cfg.M)}
	// Subspaces are independent trainings with their own seeds, so they
	// run concurrently; each goroutine extracts its own sub-matrix. The
	// outer fan-out already saturates the pool, so the inner trainings
	// stay single-threaded (worker count never changes results).
	innerWorkers := cfg.Workers
	if cfg.M > 1 {
		innerWorkers = 1
	}
	errs := make([]error, cfg.M)
	parallel.ForEach(cfg.M, cfg.Workers, func(m int) {
		sub := make([]float32, n*subDim)
		for i := 0; i < n; i++ {
			copy(sub[i*subDim:(i+1)*subDim], data[i*cfg.Dim+m*subDim:i*cfg.Dim+(m+1)*subDim])
		}
		res, err := kmeans.Train(sub, kmeans.Config{K: cfg.K, Dim: subDim, MaxIters: cfg.Iters, Seed: cfg.Seed + uint64(m), Workers: innerWorkers})
		if err != nil {
			errs[m] = fmt.Errorf("pq: subspace %d: %w", m, err)
			return
		}
		q.codebooks[m] = res.Centroids
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	q.cbNorms = make([][]float32, cfg.M)
	for m := range q.codebooks {
		q.cbNorms[m] = vecmath.RowNorms(q.codebooks[m], subDim, nil)
	}
	return q, nil
}

// CodeSize returns the number of bytes in one encoded vector (one byte
// per subspace; K <= 256 is required for this layout).
func (q *Quantizer) CodeSize() int { return q.M }

// Encode quantizes vector v (length Dim) into dst (length M). It
// returns dst for convenience; if dst is nil a new slice is allocated.
func (q *Quantizer) Encode(v []float32, dst []byte) []byte {
	if len(v) != q.Dim {
		panic(fmt.Sprintf("pq: encode vector of dim %d with quantizer dim %d", len(v), q.Dim))
	}
	if dst == nil {
		dst = make([]byte, q.M)
	}
	for m := 0; m < q.M; m++ {
		idx, _ := vecmath.ArgminNormScore(v[m*q.subDim:(m+1)*q.subDim], q.codebooks[m], q.cbNorms[m], q.subDim)
		dst[m] = byte(idx)
	}
	return dst
}

// Decode reconstructs the approximate vector for a code.
func (q *Quantizer) Decode(code []byte) []float32 {
	out := make([]float32, q.Dim)
	for m := 0; m < q.M; m++ {
		cw := q.codebooks[m][int(code[m])*q.subDim : (int(code[m])+1)*q.subDim]
		copy(out[m*q.subDim:(m+1)*q.subDim], cw)
	}
	return out
}

// LUT is a per-query lookup table of partial squared distances:
// entry (m, j) = ||q_m - codebook[m][j]||^2 at tab[m*lutStride + j].
// Scanning a code then costs M lookups and adds — the ADC inner loop.
//
// Rows are padded to a fixed 256-entry stride (the largest possible K
// for byte codes): a row sliced with constant bounds has a length the
// compiler knows exactly, so indexing it with a code byte needs no
// bounds check in the scan loops. Entries past K-1 are never addressed
// by valid codes and hold whatever the reused buffer held.
type LUT struct {
	M, K int
	tab  []float32
}

// lutStride is the padded row length (max codewords addressable by a
// byte code).
const lutStride = 256

// BuildLUT computes the lookup table for query v.
func (q *Quantizer) BuildLUT(v []float32) *LUT {
	t := &LUT{}
	q.BuildLUTInto(v, t)
	return t
}

// BuildLUTInto fills t with the lookup table for query v, reusing t's
// backing buffer when it is large enough — the steady-state path of the
// search scratch. Entries are computed with the norm decomposition
// (|q_m|^2 - 2<q_m,c> + |c|^2 with precomputed codeword norms), which
// replaces the subtract-square inner loop by a dot product.
func (q *Quantizer) BuildLUTInto(v []float32, t *LUT) {
	if len(v) != q.Dim {
		panic(fmt.Sprintf("pq: LUT for vector of dim %d with quantizer dim %d", len(v), q.Dim))
	}
	t.M, t.K = q.M, q.K
	if cap(t.tab) < q.M*lutStride {
		t.tab = make([]float32, q.M*lutStride)
	} else {
		t.tab = t.tab[:q.M*lutStride]
	}
	sd := q.subDim
	for m := 0; m < q.M; m++ {
		qSub := v[m*sd : (m+1)*sd]
		qn := vecmath.Norm2(qSub)
		cb := q.codebooks[m]
		// Slicing norms and row to exactly K entries lets the compiler
		// drop the bounds checks inside the j < K fill loops.
		norms := q.cbNorms[m][:q.K]
		row := t.tab[m*lutStride : m*lutStride+q.K]
		switch sd {
		case 4:
			// The dominant configuration (e.g. dim 32, M 8): the dot
			// product is written out so the per-entry loop carries no
			// inner-loop control flow, and the codebook is walked with a
			// running offset against a length-pinned slice so the prove
			// pass can drop the element bounds checks. Accumulation
			// order matches the generic path exactly.
			cb4 := cb[: q.K*4 : q.K*4]
			q0, q1, q2, q3 := qSub[0], qSub[1], qSub[2], qSub[3]
			jj := 0
			for j := range row {
				dot := q0 * cb4[jj]
				dot += q1 * cb4[jj+1]
				dot += q2 * cb4[jj+2]
				dot += q3 * cb4[jj+3]
				jj += 4
				e := qn - 2*dot + norms[j]
				if e < 0 {
					e = 0
				}
				row[j] = e
			}
		default:
			for j := 0; j < q.K; j++ {
				e := qn - 2*vecmath.Dot(qSub, cb[j*sd:(j+1)*sd]) + norms[j]
				if e < 0 {
					e = 0
				}
				row[j] = e
			}
		}
	}
}

// Distance accumulates the approximate squared distance for one code.
func (t *LUT) Distance(code []byte) float32 {
	var sum float32
	for m := 0; m < t.M; m++ {
		sum += t.tab[m*lutStride+int(code[m])]
	}
	return sum
}

// distanceAbandon accumulates the distance for one code but gives up as
// soon as the partial sum reaches bound: LUT entries are non-negative,
// so the partial sums are monotone and a prefix ≥ bound proves the full
// distance would be rejected by a collector whose k-th best is bound.
// It reports the (possibly partial) sum and whether the scan survived.
// Checks happen every four subspaces to keep branches off the critical
// accumulate path.
func (t *LUT) distanceAbandon(code []byte, bound float32) (float32, bool) {
	var sum float32
	m := 0
	for ; m+4 <= t.M; m += 4 {
		sum += t.tab[m*lutStride+int(code[m])]
		sum += t.tab[(m+1)*lutStride+int(code[m+1])]
		sum += t.tab[(m+2)*lutStride+int(code[m+2])]
		sum += t.tab[(m+3)*lutStride+int(code[m+3])]
		if sum >= bound {
			return sum, false
		}
	}
	for ; m < t.M; m++ {
		sum += t.tab[m*lutStride+int(code[m])]
	}
	return sum, sum < bound
}

// ScanCodes computes distances for a contiguous block of codes (each
// CodeSize bytes) and pushes them into the collector with indices
// base+0, base+1, ...  This is the hot loop that fast-scan
// implementations vectorize with SIMD shuffles; here it is a 4-way
// unrolled scalar loop with early abandonment against the collector's
// current k-th best. Both transforms preserve the collector's contents
// bit-exactly: distances accumulate in the same subspace order, pushes
// happen in the same index order, and abandoned candidates are exactly
// those a full evaluation would have rejected.
func (t *LUT) ScanCodes(codes []byte, base int, top *vecmath.TopK) {
	cs := t.M
	n := len(codes) / cs
	i := 0
	// Fill phase: no k-th best exists yet, so every candidate is pushed.
	for ; i < n; i++ {
		if _, full := top.Worst(); full {
			break
		}
		top.Push(base+i, t.Distance(codes[i*cs:(i+1)*cs]))
	}
	// Steady phase, 4-way unrolled. The abandon bound is the k-th best
	// before each group of four; it only shrinks as pushes land, so
	// abandoning against the slightly stale bound is conservative and
	// the heap contents stay bit-identical to a full evaluation.
	for ; i+4 <= n; i += 4 {
		bound, _ := top.Worst()
		if d, ok := t.distanceAbandon(codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(base+i, d)
		}
		if d, ok := t.distanceAbandon(codes[(i+1)*cs:(i+2)*cs], bound); ok {
			top.Push(base+i+1, d)
		}
		if d, ok := t.distanceAbandon(codes[(i+2)*cs:(i+3)*cs], bound); ok {
			top.Push(base+i+2, d)
		}
		if d, ok := t.distanceAbandon(codes[(i+3)*cs:(i+4)*cs], bound); ok {
			top.Push(base+i+3, d)
		}
	}
	for ; i < n; i++ {
		bound, _ := top.Worst()
		if d, ok := t.distanceAbandon(codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(base+i, d)
		}
	}
}

// ScanCodesIDs is ScanCodes for an inverted list: candidate i is pushed
// under ids[i] instead of base+i. The loop is kept as a specialized
// copy (rather than sharing an index-mapping closure with ScanCodes)
// because an indirect call per candidate is measurable at this loop's
// grain.
func (t *LUT) ScanCodesIDs(codes []byte, ids []int32, top *vecmath.TopK) {
	if t.M == 8 {
		t.scanIDs8(codes, ids, top)
		return
	}
	cs := t.M
	n := len(codes) / cs
	i := 0
	for ; i < n; i++ {
		if _, full := top.Worst(); full {
			break
		}
		top.Push(int(ids[i]), t.Distance(codes[i*cs:(i+1)*cs]))
	}
	for ; i+4 <= n; i += 4 {
		bound, _ := top.Worst()
		if d, ok := t.distanceAbandon(codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(int(ids[i]), d)
		}
		if d, ok := t.distanceAbandon(codes[(i+1)*cs:(i+2)*cs], bound); ok {
			top.Push(int(ids[i+1]), d)
		}
		if d, ok := t.distanceAbandon(codes[(i+2)*cs:(i+3)*cs], bound); ok {
			top.Push(int(ids[i+2]), d)
		}
		if d, ok := t.distanceAbandon(codes[(i+3)*cs:(i+4)*cs], bound); ok {
			top.Push(int(ids[i+3]), d)
		}
	}
	for ; i < n; i++ {
		bound, _ := top.Worst()
		if d, ok := t.distanceAbandon(codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(int(ids[i]), d)
		}
	}
}

// ScanCodesMasked is ScanCodes with a positional tombstone bitmap: bit
// i of dead (dead[i/64]>>(i%64)&1) marks candidate position i as
// deleted, and masked positions are skipped without evaluation. A nil
// or empty bitmap falls through to the unmasked scan. Live candidates
// see the identical accumulate/abandon/push sequence as a naive masked
// full evaluation, so the collector's contents match bit for bit. The
// scan allocates nothing; dead must cover at least ceil(n/64) words
// when non-empty.
func (t *LUT) ScanCodesMasked(codes []byte, base int, dead []uint64, top *vecmath.TopK) {
	if len(dead) == 0 {
		t.ScanCodes(codes, base, top)
		return
	}
	cs := t.M
	n := len(codes) / cs
	i := 0
	// Fill phase: every live candidate is pushed until the heap fills.
	for ; i < n; i++ {
		if dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		if _, full := top.Worst(); full {
			break
		}
		top.Push(base+i, t.Distance(codes[i*cs:(i+1)*cs]))
	}
	// Steady phase: abandon against the current k-th best, exactly as
	// the unmasked scan does for the remainder loop. The 4-way unroll is
	// not worth carrying here — the mask test already breaks the
	// straight-line accumulate path — and per-candidate bound reads only
	// tighten the abandon bound, which never changes the heap contents.
	for ; i < n; i++ {
		if dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		bound, _ := top.Worst()
		if d, ok := t.distanceAbandon(codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(base+i, d)
		}
	}
}

// ScanCodesIDsMasked is ScanCodesIDs with a positional tombstone
// bitmap (see ScanCodesMasked for the mask contract): masked list
// positions are skipped, live ones push under ids[i]. The M=8 fast
// path keeps its hoisted LUT rows and midpoint abandon.
func (t *LUT) ScanCodesIDsMasked(codes []byte, ids []int32, dead []uint64, top *vecmath.TopK) {
	if len(dead) == 0 {
		t.ScanCodesIDs(codes, ids, top)
		return
	}
	if t.M == 8 {
		t.scanIDs8Masked(codes, ids, dead, top)
		return
	}
	cs := t.M
	n := len(codes) / cs
	i := 0
	for ; i < n; i++ {
		if dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		if _, full := top.Worst(); full {
			break
		}
		top.Push(int(ids[i]), t.Distance(codes[i*cs:(i+1)*cs]))
	}
	for ; i < n; i++ {
		if dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		bound, _ := top.Worst()
		if d, ok := t.distanceAbandon(codes[i*cs:(i+1)*cs], bound); ok {
			top.Push(int(ids[i]), d)
		}
	}
}

// scanIDs8Masked is scanIDs8 with the positional tombstone test folded
// into both phases. Accumulation order and abandon decisions over the
// surviving candidates are identical to the unmasked fast path, so a
// masked scan matches a naive masked full evaluation bit for bit.
func (t *LUT) scanIDs8Masked(codes []byte, ids []int32, dead []uint64, top *vecmath.TopK) {
	tab := t.tab[:8*lutStride]
	t0, t1, t2, t3 := tab[0:256], tab[256:512], tab[512:768], tab[768:1024]
	t4, t5, t6, t7 := tab[1024:1280], tab[1280:1536], tab[1536:1792], tab[1792:2048]
	n := len(codes) / 8
	i := 0
	for ; i < n; i++ {
		if dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		if _, full := top.Worst(); full {
			break
		}
		c := codes[i*8 : i*8+8 : i*8+8]
		d := t0[c[0]] + t1[c[1]] + t2[c[2]] + t3[c[3]]
		d = d + t4[c[4]] + t5[c[5]] + t6[c[6]] + t7[c[7]]
		top.Push(int(ids[i]), d)
	}
	if i >= n {
		return
	}
	bound, _ := top.Worst()
	for ; i < n; i++ {
		if dead[uint(i)>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		c := codes[i*8 : i*8+8 : i*8+8]
		d := t0[c[0]] + t1[c[1]] + t2[c[2]] + t3[c[3]]
		if d >= bound {
			continue
		}
		d = d + t4[c[4]] + t5[c[5]] + t6[c[6]] + t7[c[7]]
		if d < bound {
			top.Push(int(ids[i]), d)
			bound, _ = top.Worst()
		}
	}
}

// scanIDs8 is ScanCodesIDs specialized to the dominant M=8 code size:
// the eight LUT rows are hoisted into locals (no m*K multiply, no inner
// loop) and the early-abandon check sits inline at the subspace
// midpoint. Accumulation order and abandon decisions are identical to
// the generic path, so the collector's contents match bit for bit.
func (t *LUT) scanIDs8(codes []byte, ids []int32, top *vecmath.TopK) {
	// Constant slice bounds give each row a compiler-known length of
	// 256, so indexing with a code byte is provably in bounds.
	tab := t.tab[:8*lutStride]
	t0, t1, t2, t3 := tab[0:256], tab[256:512], tab[512:768], tab[768:1024]
	t4, t5, t6, t7 := tab[1024:1280], tab[1280:1536], tab[1536:1792], tab[1792:2048]
	n := len(codes) / 8
	i := 0
	for ; i < n; i++ {
		if _, full := top.Worst(); full {
			break
		}
		c := codes[i*8 : i*8+8 : i*8+8]
		d := t0[c[0]] + t1[c[1]] + t2[c[2]] + t3[c[3]]
		d = d + t4[c[4]] + t5[c[5]] + t6[c[6]] + t7[c[7]]
		top.Push(int(ids[i]), d)
	}
	if i >= n {
		return
	}
	// The bound is the current k-th best; a candidate below it always
	// displaces the root, so re-reading after each push keeps it exact
	// without a load per candidate.
	bound, _ := top.Worst()
	for ; i < n; i++ {
		c := codes[i*8 : i*8+8 : i*8+8]
		d := t0[c[0]] + t1[c[1]] + t2[c[2]] + t3[c[3]]
		if d >= bound {
			continue
		}
		d = d + t4[c[4]] + t5[c[5]] + t6[c[6]] + t7[c[7]]
		if d < bound {
			top.Push(int(ids[i]), d)
			bound, _ = top.Worst()
		}
	}
}
