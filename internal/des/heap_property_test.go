package des

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap is a container/heap reference implementation with
// the exact (at, seq) ordering the simulator used before the hand-
// rolled 4-ary heap replaced it. The property test drains randomized
// schedules through both and requires bit-identical order — including
// same-timestamp ties, whose FIFO resolution the golden serving
// artifacts depend on.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestHeapDrainsIdenticalToContainerHeap schedules random interleaved
// batches — heavy on duplicate timestamps — into the simulator and the
// reference heap, interleaving partial drains with further scheduling,
// and checks the fire order matches event for event.
func TestHeapDrainsIdenticalToContainerHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		var s Sim
		ref := &refHeap{}
		var refSeq uint64
		var got, want []int
		id := 0
		schedule := func(n int) {
			for i := 0; i < n; i++ {
				// Small timestamp range forces plenty of exact ties.
				at := s.Now() + Time(r.Intn(16))
				ev := id
				id++
				s.At(at, func() { got = append(got, ev) })
				refSeq++
				heap.Push(ref, refEvent{at: at, seq: refSeq, id: ev})
			}
		}
		drainRef := func(upto Time) {
			for ref.Len() > 0 && (*ref)[0].at <= upto {
				ev := heap.Pop(ref).(refEvent)
				want = append(want, ev.id)
			}
		}
		schedule(1 + r.Intn(64))
		for s.Pending() > 0 {
			// Partial drain to a random horizon, then schedule more — the
			// pattern real pipelines produce (events scheduling events).
			horizon := s.Now() + Time(r.Intn(8))
			s.RunUntil(horizon)
			drainRef(horizon)
			if r.Intn(3) == 0 && id < 4096 {
				schedule(r.Intn(32))
			}
		}
		s.Run()
		drainRef(1 << 62)
		if len(got) != len(want) || len(got) != id {
			t.Fatalf("trial %d: drained %d events, reference %d, scheduled %d",
				trial, len(got), len(want), id)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: fire order diverges at %d: sim=%d ref=%d",
					trial, i, got[i], want[i])
			}
		}
	}
}
