package vectorliterag_test

// One benchmark per table and figure of the paper's evaluation
// (the registry in internal/experiments): each bench regenerates the
// corresponding artifact on
// the simulated substrate in quick mode. Run the full-scale versions
// with `go run ./cmd/vliterag run -exp <id>`.
//
// Micro-benchmarks for the hot algorithmic paths (IVF search, LUT scan,
// first-order-statistic integral, discrete-event throughput) follow at
// the bottom.

import (
	"fmt"
	"runtime"
	"testing"

	vlr "vectorliterag"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/ivf"
	"vectorliterag/internal/rng"
	"vectorliterag/internal/stats"
	"vectorliterag/internal/vecmath"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := vlr.RunExperiment(id, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3 (IVF vs fast scan; stage breakdown).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Fig. 4 (CPU vs GPU search; KV vs throughput).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Fig. 5 (cluster access CDF).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Fig. 6 (hit-rate distribution vs coverage).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig8 regenerates Fig. 8 (latency vs batch; variance parabola).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig. 9 (index rebuild timing).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10 (model validation).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11 (SLO attainment + E2E latency grid).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12 (TTFT breakdown).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13 (HedraRAG comparison).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Fig. 14 (dispatcher ablation).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Fig. 15 (input/output length ablation).
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16 regenerates Fig. 16 + Table II (SLO sensitivity).
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17 regenerates Fig. 17 (hardware-capacity robustness).
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkTable1 regenerates Table I (SLO targets).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkTable2 regenerates Table II through the Fig. 16 runner (the
// table is derived from the same SLO sweep).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "fig16") }

// --- Offline build ----------------------------------------------------

// BenchmarkBuildSystemOffline times the whole offline build path —
// synthetic corpus, k-means coarse quantizer, per-subspace PQ
// codebooks, encode, template probing — sequentially (workers=1) vs on
// the full worker pool (workers=NumCPU). The parallel run is
// bit-identical to the sequential one (see the parallel_test.go files);
// on a ≥4-core machine it completes the build ≥2× faster, since the
// distance-dominated loops carry almost all of the work.
func BenchmarkBuildSystemOffline(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gc := dataset.DefaultGen()
				gc.Workers = workers
				if _, err := dataset.Build(dataset.Orcas1K, gc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildSystemPlan times the public BuildSystem pipeline
// (profile → estimate → model → partition → split) on a prebuilt
// workload — the "algorithm" half of an online index rebuild.
func BenchmarkBuildSystemPlan(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vlr.BuildSystem(vlr.SystemOptions{Workload: w, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks -------------------------------------------------

var benchW *dataset.Workload

func benchWorkload(b *testing.B) *dataset.Workload {
	b.Helper()
	if benchW == nil {
		w, err := dataset.Build(dataset.Orcas1K, dataset.GenConfig{
			NCenters: 64, PerCenter: 128, Dim: 32,
			PhysNList: 64, PhysNProbe: 8, Templates: 256, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchW = w
	}
	return benchW
}

// BenchmarkIVFSearch measures a full three-stage IVF-PQ search.
func BenchmarkIVFSearch(b *testing.B) {
	w := benchWorkload(b)
	r := rng.New(1)
	q := w.QueryVector(0, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Index.Search(q, 8, 25)
	}
}

// BenchmarkIVFSearchScratch measures the allocation-free scratch path:
// the same three-stage search with all buffers reused across calls.
func BenchmarkIVFSearchScratch(b *testing.B) {
	w := benchWorkload(b)
	r := rng.New(1)
	q := w.QueryVector(0, r)
	s := w.Index.NewSearchScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Index.SearchInto(s, q, 8, 25)
	}
}

// BenchmarkIVFSearchBatch measures batched search throughput per query
// (64-query batches over the worker pool).
func BenchmarkIVFSearchBatch(b *testing.B) {
	w := benchWorkload(b)
	r := rng.New(1)
	const batch = 64
	queries := make([]float32, 0, batch*w.Gen.Dim)
	for i := 0; i < batch; i++ {
		queries = append(queries, w.QueryVector(dataset.QueryID(i%w.Templates()), r)...)
	}
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		if _, err := w.Index.SearchBatch(queries, 8, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIVFProbe measures coarse quantization alone.
func BenchmarkIVFProbe(b *testing.B) {
	w := benchWorkload(b)
	r := rng.New(2)
	q := w.QueryVector(1, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Index.Probe(q, 8)
	}
}

// BenchmarkLUTScan measures the ADC scan of one cluster.
func BenchmarkLUTScan(b *testing.B) {
	w := benchWorkload(b)
	r := rng.New(3)
	q := w.QueryVector(2, r)
	lut := w.Index.BuildLUT(q)
	probes := w.Probes(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top := vecmath.NewTopK(25)
		w.Index.ScanCluster(lut, probes[0], top)
	}
}

// BenchmarkExpectedMin measures the Eq. 2 first-order-statistic
// integral that the partitioning algorithm evaluates repeatedly.
func BenchmarkExpectedMin(b *testing.B) {
	beta := stats.Beta{Alpha: 4.2, Beta: 1.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = beta.ExpectedMin(8)
	}
}

// BenchmarkBruteForceTopK measures the exact-search ground truth used
// for recall validation.
func BenchmarkBruteForceTopK(b *testing.B) {
	w := benchWorkload(b)
	r := rng.New(4)
	q := w.QueryVector(3, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vecmath.BruteForceTopK(q, w.Data, w.Gen.Dim, 25)
	}
}

// BenchmarkDESEventLoop measures raw simulator event throughput.
func BenchmarkDESEventLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sim des.Sim
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 1000 {
				sim.After(1000, tick)
			}
		}
		sim.At(0, tick)
		sim.Run()
	}
}

// BenchmarkHotClusters measures the profiler's hot-order sort.
func BenchmarkHotClusters(b *testing.B) {
	w := benchWorkload(b)
	r := rng.New(5)
	counts := w.AccessCounts(w.SampleMany(r, 5000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ivf.HotClusters(counts)
	}
}

// BenchmarkWorkloadSample measures query sampling (the serving loop's
// per-request cost).
func BenchmarkWorkloadSample(b *testing.B) {
	w := benchWorkload(b)
	r := rng.New(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Sample(r)
	}
}

// BenchmarkAblations regenerates the design-choice ablations (queuing
// factor and runtime pipeline).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }
