// Package rag composes the paper's serving systems: for each baseline
// it makes the system-level resource decision the paper's §V baseline
// configurations differ in — GPU memory layout, which GPUs serve the
// LLM, and which retrieval engine runs — and instantiates that decision
// as a stage pipeline on internal/serve (arrivals → admission →
// retrieval → generation → collector, all in virtual time). It also
// owns the memoized capacity measurements every experiment shares.
package rag

import (
	"fmt"
	"sync"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/fault"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/llm"
	"vectorliterag/internal/metrics"
	"vectorliterag/internal/partition"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/workload"
)

// Kind selects the serving system under test.
type Kind string

// The evaluated systems (paper §V, baseline configurations).
const (
	CPUOnly  Kind = "CPU-Only"
	DedGPU   Kind = "DED-GPU"
	AllGPU   Kind = "ALL-GPU"
	VLiteRAG Kind = "vLiteRAG"
	HedraRAG Kind = "HedraRAG"
)

// Kinds lists the four main-evaluation systems in the paper's order
// (the Fig. 11/12 lineup; HedraRAG appears only in the dedicated
// comparison figures).
func Kinds() []Kind { return []Kind{CPUOnly, DedGPU, AllGPU, VLiteRAG} }

// AllKinds lists every implemented system, including HedraRAG — the
// enumeration ablation and coverage studies iterate over.
func AllKinds() []Kind { return []Kind{CPUOnly, DedGPU, AllGPU, VLiteRAG, HedraRAG} }

// Options configures one run.
type Options struct {
	Node  hw.Node
	Model llm.ModelSpec
	W     *dataset.Workload
	Kind  Kind

	Rate     float64       // arrival rate, requests/second
	Duration time.Duration // arrival window in virtual time (default 120s)
	Warmup   time.Duration // excluded prefix (default 20s)
	Drain    time.Duration // post-arrival settling window (default 120s)
	Shape    workload.Shape
	Seed     uint64

	// RateSchedule, when non-nil, drives arrivals as an inhomogeneous
	// Poisson stream (ramps, bursts, diurnal cycles) instead of the
	// constant Rate; Rate then only labels the result.
	RateSchedule workload.Schedule
	// Drift schedules popularity rotations on the virtual timeline — the
	// non-stationary workload of §IV-B3 drift studies. The workload's
	// initial rotation is restored when the run returns, so back-to-back
	// runs (static vs adaptive under the same trace) stay reproducible.
	Drift []dataset.DriftEvent

	// SLOSearch overrides the dataset's search SLO (sensitivity studies).
	SLOSearch time.Duration
	// SLOGen overrides the generation-stage SLO. When zero, it is derived
	// the way the paper derives Table I: the deployment's own TTFT
	// measured at the model's throughput limit (P90 at 2/3 capacity).
	SLOGen time.Duration
	// Epsilon is the queuing factor of Algorithm 1 (default 1).
	Epsilon float64
	// DisableDispatcher turns off early query promotion (Fig. 14).
	DisableDispatcher bool
	// MaxBatch caps retrieval batches (default 64).
	MaxBatch int
	// ProfileQueries sizes the calibration sample (default 4000).
	ProfileQueries int
	// HedraCoverageOverride, when positive, pins HedraRAG's coverage
	// instead of running its balancing rule (for §VI-D replication).
	HedraCoverageOverride float64
	// Plan, when set for VLiteRAG, serves an existing split plan as-is
	// instead of re-profiling and re-partitioning — "build once, serve
	// many", and the way a stale plan is represented in drift studies.
	// A prebuilt plan carries (or omits) its own precision refinement;
	// Precision is not re-applied to it.
	Plan *splitter.Plan
	// Precision, when non-nil for VLiteRAG, extends Algorithm 1's
	// placement decision with the joint (tier, codec) refinement: hot
	// clusters upgraded from PQ to SQ8 within a bounded HBM budget, and
	// the coldest CPU-resident clusters demoted to the modeled NVMe
	// tier. Nil preserves the classic all-PQ, two-tier placement bit for
	// bit. Rejected for every other Kind — the baselines have no
	// placement decision to refine.
	Precision *PrecisionOptions
	// Overload, when non-nil, puts a bounded admission queue (and
	// optionally the brownout controller) in front of the pipeline: the
	// single-tenant form of the multi-tenant overload control, with one
	// queue, full tier bias, and the run's own stage SLOs as budgets.
	// Nil keeps the unmetered pipeline byte for byte. Supported on
	// single-node Run only — cluster runs route through the resilient
	// front end, whose degradation machinery overload control would
	// fight.
	Overload *OverloadOptions

	// Workers selects how many worker goroutines a *sharded* cluster run
	// spreads its shards over (0 = all cores). It changes wall-clock
	// only: the merged schedule is bit-identical for any value. Workers
	// is meaningful only where there are shards to spread — RunCluster
	// with NetDelay > 0 (Workers > 1 turns sharding on by defaulting
	// NetDelay); single-node Run ignores it entirely.
	Workers int
	// NetDelay is the modeled front-end↔replica network transit of a
	// cluster run. Zero keeps today's single-timeline cluster semantics
	// (router and replicas share one instantaneous simulator). A
	// positive value switches RunCluster to the parallel sharded engine:
	// requests reach replicas one NetDelay after routing, completion
	// notices return one NetDelay later, and that delay is the lookahead
	// window conservative synchronization runs on.
	NetDelay time.Duration

	// Faults is the failure storm injected into a cluster run: replica
	// crashes, straggler episodes, degraded-bandwidth episodes — all
	// deterministic virtual-time events. A non-empty schedule (or a
	// non-nil Resilience) switches RunCluster to the resilient serving
	// path; empty and nil leave every existing path untouched,
	// byte-for-byte. Single-node Run rejects fault schedules — failures
	// need replicas to fail over to.
	Faults fault.Schedule
	// Resilience configures the failure-aware front end (health-tracked
	// failover, timeouts with bounded retry, hedged requests, graceful
	// degradation). Nil with an empty Faults schedule means the plain
	// router; nil with faults means a resilient router with everything
	// but health tracking disabled — crashes still fail over in-flight
	// work, but nothing retries on slowness.
	Resilience *serve.ResilienceConfig
}

// PrecisionOptions configures the placement x precision refinement.
// Zero values take the documented defaults; negatives are rejected.
type PrecisionOptions struct {
	// SQBudgetFrac bounds the HBM the SQ8 upgrades may consume, as a
	// fraction of the memory the placement loop left between the plan
	// and the KV bound (default 0.10). The upgrades spend only this
	// leftover, so the placement decision itself is never displaced.
	SQBudgetFrac float64
	// NVMeColdShare demotes the coldest CPU-resident clusters carrying
	// at most this share of profiled accesses to the NVMe tier
	// (default 0.02).
	NVMeColdShare float64
}

// normalize fills defaults and validates.
func (p *PrecisionOptions) normalize() error {
	if p.SQBudgetFrac < 0 {
		return fmt.Errorf("rag: negative precision SQBudgetFrac %v", p.SQBudgetFrac)
	}
	if p.SQBudgetFrac > 1 {
		return fmt.Errorf("rag: precision SQBudgetFrac %v exceeds 1", p.SQBudgetFrac)
	}
	if p.NVMeColdShare < 0 || p.NVMeColdShare >= 1 {
		return fmt.Errorf("rag: precision NVMeColdShare %v outside [0,1)", p.NVMeColdShare)
	}
	if p.SQBudgetFrac == 0 {
		p.SQBudgetFrac = 0.10
	}
	if p.NVMeColdShare == 0 {
		p.NVMeColdShare = 0.02
	}
	return nil
}

// resilient reports whether this run takes the failure-aware path.
func (opts *Options) resilient() bool {
	return len(opts.Faults) > 0 || opts.Resilience != nil
}

// normalize fills defaults and derives the total SLO; it leaves opts
// ready for composition.
func (opts *Options) normalize() (sloTotal time.Duration, err error) {
	if opts.W == nil {
		return 0, fmt.Errorf("rag: nil workload")
	}
	if opts.RateSchedule != nil {
		if err := workload.ValidateSchedule(opts.RateSchedule); err != nil {
			return 0, fmt.Errorf("rag: %w", err)
		}
	} else if opts.Rate <= 0 {
		return 0, fmt.Errorf("rag: non-positive rate %v", opts.Rate)
	}
	if err := dataset.ValidateDrift(opts.Drift); err != nil {
		return 0, fmt.Errorf("rag: %w", err)
	}
	if opts.Precision != nil {
		if opts.Kind != VLiteRAG {
			return 0, fmt.Errorf("rag: precision refinement applies to %s only, not %s", VLiteRAG, opts.Kind)
		}
		if err := opts.Precision.normalize(); err != nil {
			return 0, err
		}
	}
	if opts.Overload != nil {
		if err := opts.Overload.normalize(); err != nil {
			return 0, err
		}
	}
	if opts.Duration == 0 {
		opts.Duration = 120 * time.Second
	}
	if opts.Warmup == 0 {
		opts.Warmup = 20 * time.Second
	}
	if opts.Drain == 0 {
		opts.Drain = 120 * time.Second
	}
	if opts.Shape == (workload.Shape{}) {
		opts.Shape = workload.DefaultShape()
	}
	if opts.SLOSearch == 0 {
		opts.SLOSearch = opts.W.Spec.SLOSearch
	}
	if opts.SLOGen == 0 {
		slo, err := GenSLO(opts.Node, opts.Model, opts.Shape)
		if err != nil {
			return 0, err
		}
		opts.SLOGen = slo
	}
	return opts.SLOSearch + opts.SLOGen, nil
}

// Result is one evaluation point.
type Result struct {
	Kind     Kind
	Rate     float64
	SLOTotal time.Duration
	Summary  metrics.Summary
	// Requests holds the per-request records in arrival order — value
	// snapshots from the streaming collector, not the pooled (recycled)
	// live objects.
	Requests []workload.Request

	// ServeWall is host wall-clock spent inside the run's simulation
	// section (arrival scheduling plus the event loop), excluding the
	// offline decision work; ServeAllocs and ServeBytes are the heap
	// allocation deltas over the same section. They exist so bench-serve
	// can track the simulation core's performance across PRs.
	ServeWall   time.Duration
	ServeAllocs uint64
	ServeBytes  uint64

	// Rho is the GPU cache coverage the system chose (1 for ALL/DED-GPU,
	// 0 for CPU-only).
	Rho       float64
	PlanBytes int64 // GPU-resident index bytes
	Mu0       float64
	AvgBatch  float64
	LLMGPUs   int
	Partition *partition.Result // nil for non-partitioned systems
	Generated int

	// Precision-refinement outcome (zero on runs without Precision set):
	// the served mean per-query recall gain from SQ8 upgrades, and the
	// cluster counts the refinement chose per tier/codec.
	RecallGain   float64
	SQClusters   int
	NVMeClusters int

	// Overload reports the admission-control and brownout outcome (nil
	// on runs without Options.Overload).
	Overload *OverloadReport
}

// capCache memoizes bare LLM capacity per deployment, since every rate
// point of a sweep shares it.
var capCache = struct {
	sync.Mutex
	m map[string]float64
}{m: map[string]float64{}}

// bareCapacity measures (or recalls) the standalone LLM throughput for
// a node/model/shape deployment over nGPUs.
func bareCapacity(node hw.Node, model llm.ModelSpec, nGPUs int, shape workload.Shape) (float64, error) {
	key := fmt.Sprintf("%s|%s|%d|%d/%d", node.Name, model.Name, nGPUs, shape.InputTokens, shape.OutputTokens)
	capCache.Lock()
	v, ok := capCache.m[key]
	capCache.Unlock()
	if ok {
		return v, nil
	}
	states := gpu.NewStates(node)
	mu, err := llm.MeasureCapacity(node, model, states[:nGPUs], shape, llm.DefaultEngineConfig())
	if err != nil {
		return 0, err
	}
	capCache.Lock()
	capCache.m[key] = mu
	capCache.Unlock()
	return mu, nil
}

// BareCapacity exposes the memoized standalone LLM throughput (the
// vertical dashed lines of Fig. 11).
func BareCapacity(node hw.Node, model llm.ModelSpec, shape workload.Shape) (float64, error) {
	return bareCapacity(node, model, node.NumGPUs, shape)
}

// genSLOCache memoizes the measured generation-stage SLO.
var genSLOCache = struct {
	sync.Mutex
	m map[string]time.Duration
}{m: map[string]time.Duration{}}

// GenSLO returns the measured generation-stage TTFT SLO for a
// deployment (Table I methodology on this substrate).
func GenSLO(node hw.Node, model llm.ModelSpec, shape workload.Shape) (time.Duration, error) {
	key := fmt.Sprintf("%s|%s|%d/%d", node.Name, model.Name, shape.InputTokens, shape.OutputTokens)
	genSLOCache.Lock()
	v, ok := genSLOCache.m[key]
	genSLOCache.Unlock()
	if ok {
		return v, nil
	}
	states := gpu.NewStates(node)
	slo, err := llm.MeasureGenSLO(node, model, states, shape, llm.DefaultEngineConfig(), 2.0/3.0)
	if err != nil {
		return 0, err
	}
	genSLOCache.Lock()
	genSLOCache.m[key] = slo
	genSLOCache.Unlock()
	return slo, nil
}

// applyShards records per-GPU resident shard bytes (shrinking KV).
func applyShards(states []*gpu.State, plan *splitter.Plan) {
	for g := range plan.ShardBytes {
		if g < len(states) {
			states[g].ShardBytes = plan.ShardBytes[g]
		}
	}
}

// nodeKVBytes returns the node-wide baseline KV capacity with no index
// loaded — the MemKV input of Algorithm 1.
func nodeKVBytes(node hw.Node, model llm.ModelSpec) int64 {
	perGPU := node.GPU.UsableMem() - model.WeightBytesPerGPU()
	if perGPU < 0 {
		perGPU = 0
	}
	used := (node.NumGPUs / model.TP) * model.TP
	return perGPU * int64(used)
}
