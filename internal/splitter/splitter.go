// Package splitter implements the index splitter of paper §IV-A4: once
// the partitioning point rho is chosen, it selects the hot clusters
// from the access profile, distributes them across GPU shards in a
// round-robin over the size-sorted list (balancing memory), and emits
// the mapping tables (original cluster ID → shard + local ID) that the
// runtime router uses to prune probes.
package splitter

import (
	"fmt"
	"sort"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/profiler"
)

// Loc locates a hot cluster inside a GPU shard.
type Loc struct {
	Shard   int
	LocalID int
}

// Plan is the materialized split: which clusters live on which GPU.
type Plan struct {
	Coverage    float64
	NumShards   int
	HotClusters []int       // cluster IDs cached on GPUs
	Shards      [][]int     // Shards[g] lists cluster IDs on GPU g
	ShardBytes  []int64     // logical bytes resident per shard
	Mapping     map[int]Loc // cluster ID → shard location
	// Prec, when non-nil, refines the plan with per-cluster (tier,
	// codec) assignments (SQ8 on HBM, PQ on NVMe); nil preserves the
	// classic all-PQ placement bit for bit. Installed via
	// AttachPrecision so shard byte accounting stays consistent.
	Prec    *Precision
	hotMask []bool // fast membership test
	// shardOf is the dense routing table: shardOf[c] is the hosting
	// shard + 1, or 0 for CPU-resident clusters. RouteInto consults it
	// instead of Mapping — cluster IDs are small and dense, and the
	// routing loop runs for every probe of every query of every batch.
	shardOf []int32
	W       *dataset.Workload
}

// Build selects the hottest clusters at the given coverage and packs
// them into numShards balanced shards.
func Build(p *profiler.AccessProfile, coverage float64, numShards int) (*Plan, error) {
	if numShards <= 0 {
		return nil, fmt.Errorf("splitter: need at least one shard, got %d", numShards)
	}
	if coverage < 0 || coverage > 1 {
		return nil, fmt.Errorf("splitter: coverage %v outside [0,1]", coverage)
	}
	nlist := len(p.Counts)
	k := int(float64(nlist)*coverage + 0.5)
	if k > nlist {
		k = nlist
	}
	hot := append([]int(nil), p.HotOrder[:k]...)

	// Sort hot clusters by size (descending) and deal them round-robin —
	// the paper's balancing strategy.
	sort.SliceStable(hot, func(a, b int) bool {
		return p.W.ClusterBytes(hot[a]) > p.W.ClusterBytes(hot[b])
	})
	plan := &Plan{
		Coverage:    coverage,
		NumShards:   numShards,
		HotClusters: hot,
		Shards:      make([][]int, numShards),
		ShardBytes:  make([]int64, numShards),
		Mapping:     make(map[int]Loc, len(hot)),
		hotMask:     make([]bool, nlist),
		shardOf:     make([]int32, nlist),
		W:           p.W,
	}
	for i, c := range hot {
		g := i % numShards
		plan.Mapping[c] = Loc{Shard: g, LocalID: len(plan.Shards[g])}
		plan.shardOf[c] = int32(g) + 1
		plan.Shards[g] = append(plan.Shards[g], c)
		plan.ShardBytes[g] += p.W.ClusterBytes(c)
		plan.hotMask[c] = true
	}
	return plan, nil
}

// IsHot reports whether cluster c is GPU-resident.
func (p *Plan) IsHot(c int) bool { return p.hotMask[c] }

// HotMask returns the shared membership mask (read-only).
func (p *Plan) HotMask() []bool { return p.hotMask }

// TotalBytes returns the GPU memory the plan occupies across shards.
func (p *Plan) TotalBytes() int64 {
	var sum int64
	for _, b := range p.ShardBytes {
		sum += b
	}
	return sum
}

// MaxShardBytes returns the largest shard (the per-GPU memory cost).
func (p *Plan) MaxShardBytes() int64 {
	var m int64
	for _, b := range p.ShardBytes {
		if b > m {
			m = b
		}
	}
	return m
}

// Route splits a query's probe list into per-shard resident clusters
// and the CPU-resident remainder — the router's mapping-table lookup
// (paper §IV-B1). The returned shard lists index into plan.Shards.
func (p *Plan) Route(probes []int) (perShard [][]int, cpu []int) {
	var s RouteScratch
	return p.RouteInto(&s, probes)
}

// RouteScratch holds RouteInto's reusable work areas. Engines route
// every query of every batch, so the per-call slice allocations of
// Route dominated the serving loop's allocation profile; a per-engine
// scratch reduces routing to zero steady-state allocations. The
// returned slices are valid until the next RouteInto call on the same
// scratch.
type RouteScratch struct {
	perShard [][]int
	cpu      []int
}

// RouteInto is Route writing into reusable scratch buffers.
func (p *Plan) RouteInto(s *RouteScratch, probes []int) (perShard [][]int, cpu []int) {
	if cap(s.perShard) < p.NumShards {
		grown := make([][]int, p.NumShards)
		copy(grown, s.perShard)
		s.perShard = grown
	}
	perShard = s.perShard[:p.NumShards]
	for i := range perShard {
		perShard[i] = perShard[i][:0]
	}
	s.cpu = s.cpu[:0]
	for _, c := range probes {
		if uint(c) < uint(len(p.shardOf)) {
			if g := p.shardOf[c]; g > 0 {
				perShard[g-1] = append(perShard[g-1], c)
				continue
			}
		} else if loc, ok := p.Mapping[c]; ok {
			// Out-of-range IDs (hand-built plans in tests) fall back to
			// the map.
			perShard[loc.Shard] = append(perShard[loc.Shard], c)
			continue
		}
		s.cpu = append(s.cpu, c)
	}
	return perShard, s.cpu
}

// IndexBytesAt returns a closure mapping coverage to resident bytes for
// this profile — the MemIndex(rho) term of Algorithm 1. Hot clusters
// are larger than average, so the curve is super-linear at small rho.
func IndexBytesAt(p *profiler.AccessProfile) func(rho float64) int64 {
	nlist := len(p.Counts)
	prefix := make([]int64, nlist+1)
	for i, c := range p.HotOrder {
		prefix[i+1] = prefix[i] + p.W.ClusterBytes(c)
	}
	return func(rho float64) int64 {
		if rho <= 0 {
			return 0
		}
		if rho >= 1 {
			return prefix[nlist]
		}
		k := int(float64(nlist)*rho + 0.5)
		if k > nlist {
			k = nlist
		}
		return prefix[k]
	}
}
