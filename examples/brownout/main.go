// Overload-resilient serving: three SLO-tiered tenants ramp their
// aggregate arrival rate to ~1.5x the node's capacity and hold it
// there, and the same traces are served under three overload policies:
//
//   - naive queue: unbounded per-tenant queues. The backlog grows
//     without bound — the metastable failure mode where queued work
//     keeps the node saturated long after the surge.
//   - reject only: bounded admission (queue cap per tenant) with early
//     rejection. The backlog is contained but every rejected request
//     is lost outright.
//   - brownout: bounded admission plus the closed-loop controller.
//     When a pipeline stage overruns its latency budget, dispatched
//     requests are stamped down a shedding ladder — fewer IVF probes,
//     shallower rerank/context, and finally SQ8->PQ precision
//     fallback — biased by tier so bronze sheds before gold.
//
// The point of the comparison: brownout converts overload into a
// controlled quality reduction instead of unbounded queueing or pure
// loss, holding gold at its tier target while serving more total
// within-SLO work than rejection alone.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	vlr "vectorliterag"
)

func main() {
	quick := flag.Bool("quick", false, "shorter run for smoke tests")
	flag.Parse()

	fmt.Println("building ORCAS-1K and Wiki-All workloads (trains real IVF-PQ indexes)...")
	goldW, err := vlr.NewWorkload(vlr.Orcas1K)
	if err != nil {
		log.Fatal(err)
	}
	silverW, err := vlr.NewWorkload(vlr.WikiAll)
	if err != nil {
		log.Fatal(err)
	}

	duration := 4 * time.Minute
	if *quick {
		duration = 90 * time.Second
	}
	// All three tenants ramp over 30s and hold: 14.5 -> 57 req/s
	// aggregate against ~38 req/s of capacity. Bronze supplies most of
	// the surge — the flash-crowd tenant.
	ramp := 30 * time.Second
	tenants := []vlr.TenantSpec{
		{Name: "gold", Tier: vlr.GoldTier, Workload: goldW, Rate: 9,
			SLOSearch:    350 * time.Millisecond,
			RateSchedule: vlr.RampRate(9, 12, ramp)},
		{Name: "silver", Tier: vlr.SilverTier, Workload: silverW, Rate: 3,
			SLOSearch:    500 * time.Millisecond,
			RateSchedule: vlr.RampRate(3, 6, ramp)},
		{Name: "bronze", Tier: vlr.BronzeTier, Workload: goldW, Rate: 2.5,
			SLOSearch:    300 * time.Millisecond,
			RateSchedule: vlr.RampRate(2.5, 39, ramp)},
	}

	fmt.Printf("\naggregate ramps 14.5 -> 57 req/s over %v and holds; %v of traffic\n\n", ramp, duration)
	arms := []struct {
		name     string
		overload *vlr.OverloadOptions
	}{
		{"naive queue (unbounded)", nil},
		{"reject only (queue cap 32)", &vlr.OverloadOptions{QueueCap: 32}},
		{"brownout (cap 32 + shed ladder)", &vlr.OverloadOptions{QueueCap: 32, Brownout: true}},
	}
	for _, arm := range arms {
		rep, err := vlr.ServeTenants(vlr.MultiTenantServeOptions{
			Tenants: tenants, Duration: duration, Seed: 1,
			Precision: &vlr.PrecisionOptions{}, // give the ladder SQ8 recall to hand back
			Overload:  arm.overload,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(arm.name)
		for _, tr := range rep.Tenants {
			verdict := "MISSED"
			if tr.Met {
				verdict = "met"
			}
			fmt.Printf("  %-7s attainment %.3f vs target %.2f (%s)  TTFT p90 %-12v peak queue %-5d rejected %d\n",
				tr.Name, tr.Summary.Attainment, tr.Target, verdict,
				tr.Summary.TTFT.P90, tr.PeakQueue, tr.Rejected)
		}
		fmt.Printf("  aggregate attainment %.3f  recall gain +%.2f pts\n",
			rep.Attainment, 100*rep.RecallGain)
		if ov := rep.Overload; ov != nil && ov.Brownout {
			fmt.Printf("  controller: max ladder level %d, %.0f%% of the run browned out, mean probe shed %.2f\n",
				ov.MaxLevel, 100*ov.BrownoutShare, ov.MeanShed)
		}
		fmt.Println()
	}
	fmt.Println("same tenants, same allocation, same arrivals — only the overload policy differs.")
}
