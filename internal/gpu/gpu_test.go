package gpu

import (
	"testing"

	"vectorliterag/internal/des"
	"vectorliterag/internal/hw"
)

func TestNewStates(t *testing.T) {
	states := NewStates(hw.H100Node())
	if len(states) != 8 {
		t.Fatalf("states = %d", len(states))
	}
	for i, s := range states {
		if s.ID != i || s.ShardBytes != 0 || s.RetrievalBusyUntil() != 0 {
			t.Fatalf("state %d misinitialized: %+v", i, s)
		}
	}
}

func TestMarkRetrievalBusyExtends(t *testing.T) {
	s := &State{Spec: hw.H100()}
	s.MarkRetrievalBusy(100)
	s.MarkRetrievalBusy(50) // earlier end must not shrink the window
	if s.RetrievalBusyUntil() != 100 {
		t.Fatalf("busyUntil = %d", s.RetrievalBusyUntil())
	}
	s.MarkRetrievalBusy(200)
	if s.RetrievalBusyUntil() != 200 {
		t.Fatalf("busyUntil = %d", s.RetrievalBusyUntil())
	}
}

func TestStretchForContention(t *testing.T) {
	const f = 1.0 // 2x slowdown inside the window
	// No contention: unchanged.
	if got := StretchForContention(0, 100, 0, f); got != 100 {
		t.Fatalf("idle stretch = %d", got)
	}
	// Fully inside the window: doubled.
	if got := StretchForContention(0, 100, 1000, f); got != 200 {
		t.Fatalf("full-window stretch = %d", got)
	}
	// Window covers half the work: 50 units of work take 100; the
	// remaining 50 run free => 150 total.
	if got := StretchForContention(0, 100, 100, f); got != 150 {
		t.Fatalf("half-window stretch = %d", got)
	}
	// Zero factor: unchanged.
	if got := StretchForContention(0, 100, 1000, 0); got != 100 {
		t.Fatalf("zero-factor stretch = %d", got)
	}
	// Monotone in window length.
	prev := des.Time(0)
	for _, until := range []des.Time{0, 25, 50, 100, 400} {
		got := StretchForContention(0, 100, until, f)
		if got < prev {
			t.Fatalf("stretch not monotone in window: %d after %d", got, prev)
		}
		prev = got
	}
}

func TestMemoryFree(t *testing.T) {
	s := &State{Spec: hw.H100()}
	free := s.MemoryFree(0)
	if free != hw.H100().UsableMem() {
		t.Fatalf("free = %d", free)
	}
	s.ShardBytes = 10 << 30
	if got := s.MemoryFree(0); got != free-(10<<30) {
		t.Fatalf("shard not deducted: %d", got)
	}
	if got := s.MemoryFree(free * 2); got != 0 {
		t.Fatalf("negative free not clamped: %d", got)
	}
}
