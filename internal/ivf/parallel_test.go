package ivf

import (
	"reflect"
	"testing"

	"vectorliterag/internal/rng"
)

// TestParallelBuildBitIdentical asserts the full IVF-PQ construction —
// coarse k-means, per-subspace PQ codebooks, and the encode loop — is
// bit-identical across worker counts for a fixed seed.
func TestParallelBuildBitIdentical(t *testing.T) {
	r := rng.New(4)
	const n, dim = 2000, 16
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = float32(r.NormFloat64())
	}
	cfg := BuildConfig{Dim: dim, NList: 32, PQM: 8, PQK: 64, TrainIters: 6, Seed: 7}

	cfg.Workers = 1
	seq, err := Build(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		cfg.Workers = workers
		par, err := Build(data, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par.centroids, seq.centroids) {
			t.Fatalf("workers=%d: coarse centroids differ", workers)
		}
		if !reflect.DeepEqual(par.lists, seq.lists) {
			t.Fatalf("workers=%d: inverted lists differ", workers)
		}
		// Same codebooks → same LUTs → same search results.
		q := data[:dim]
		a := seq.Search(q, 8, 10)
		b := par.Search(q, 8, 10)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("workers=%d: search results differ", workers)
		}
	}
}
