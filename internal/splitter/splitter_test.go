package splitter

import (
	"testing"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/profiler"
)

func profile(t *testing.T) *profiler.AccessProfile {
	t.Helper()
	gc := dataset.GenConfig{NCenters: 64, PerCenter: 64, Dim: 16, PhysNList: 64, PhysNProbe: 8, Templates: 256, Seed: 3}
	w, err := dataset.Build(dataset.Orcas1K, gc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profiler.CollectAccess(w, 3000, 21)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildValidation(t *testing.T) {
	p := profile(t)
	if _, err := Build(p, 0.5, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := Build(p, -0.1, 4); err == nil {
		t.Fatal("negative coverage accepted")
	}
	if _, err := Build(p, 1.5, 4); err == nil {
		t.Fatal("coverage > 1 accepted")
	}
}

func TestPlanSelectsHottest(t *testing.T) {
	p := profile(t)
	plan, err := Build(p, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := len(plan.HotClusters)
	if k != 16 { // 25% of 64
		t.Fatalf("hot cluster count = %d, want 16", k)
	}
	want := map[int]bool{}
	for _, c := range p.HotOrder[:k] {
		want[c] = true
	}
	for _, c := range plan.HotClusters {
		if !want[c] {
			t.Fatalf("cluster %d in plan but not among top-%d hottest", c, k)
		}
	}
}

func TestEveryHotClusterMappedOnce(t *testing.T) {
	p := profile(t)
	plan, _ := Build(p, 0.5, 4)
	seen := map[int]bool{}
	for g, shard := range plan.Shards {
		for local, c := range shard {
			loc := plan.Mapping[c]
			if loc.Shard != g || loc.LocalID != local {
				t.Fatalf("mapping mismatch for cluster %d: %+v vs shard %d local %d", c, loc, g, local)
			}
			if seen[c] {
				t.Fatalf("cluster %d appears in two shards", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != len(plan.HotClusters) {
		t.Fatalf("mapped %d clusters, plan has %d", len(seen), len(plan.HotClusters))
	}
}

func TestShardsBalanced(t *testing.T) {
	p := profile(t)
	plan, _ := Build(p, 0.5, 4)
	var minB, maxB int64 = 1 << 62, 0
	for _, b := range plan.ShardBytes {
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	if minB == 0 {
		t.Fatal("empty shard at 50% coverage")
	}
	// Size-sorted round-robin keeps shards within ~2x of each other.
	if float64(maxB)/float64(minB) > 2 {
		t.Fatalf("shards unbalanced: min=%d max=%d", minB, maxB)
	}
}

func TestHotMaskConsistent(t *testing.T) {
	p := profile(t)
	plan, _ := Build(p, 0.3, 2)
	mask := plan.HotMask()
	for c := range mask {
		if mask[c] != plan.IsHot(c) {
			t.Fatalf("mask and IsHot disagree on %d", c)
		}
	}
	hotCount := 0
	for _, h := range mask {
		if h {
			hotCount++
		}
	}
	if hotCount != len(plan.HotClusters) {
		t.Fatalf("mask count %d vs plan %d", hotCount, len(plan.HotClusters))
	}
}

func TestRouteSplitsProbes(t *testing.T) {
	p := profile(t)
	plan, _ := Build(p, 0.3, 4)
	probes := p.W.Probes(0)
	perShard, cpu := plan.Route(probes)
	total := len(cpu)
	for g, list := range perShard {
		for _, c := range list {
			if plan.Mapping[c].Shard != g {
				t.Fatalf("cluster %d routed to wrong shard %d", c, g)
			}
		}
		total += len(list)
	}
	if total != len(probes) {
		t.Fatalf("routing lost probes: %d vs %d", total, len(probes))
	}
	for _, c := range cpu {
		if plan.IsHot(c) {
			t.Fatalf("hot cluster %d routed to CPU", c)
		}
	}
}

func TestZeroCoveragePlan(t *testing.T) {
	p := profile(t)
	plan, err := Build(p, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.HotClusters) != 0 || plan.TotalBytes() != 0 {
		t.Fatal("zero coverage plan not empty")
	}
	perShard, cpu := plan.Route(p.W.Probes(1))
	for _, s := range perShard {
		if len(s) != 0 {
			t.Fatal("zero coverage routed work to GPU")
		}
	}
	if len(cpu) != len(p.W.Probes(1)) {
		t.Fatal("zero coverage lost CPU probes")
	}
}

func TestIndexBytesAtMonotone(t *testing.T) {
	p := profile(t)
	f := IndexBytesAt(p)
	if f(0) != 0 {
		t.Fatal("bytes at rho=0 not zero")
	}
	if f(1) != p.W.TotalIndexBytes() && abs64(f(1)-p.W.TotalIndexBytes()) > p.W.TotalIndexBytes()/500 {
		t.Fatalf("bytes at rho=1 = %d, want ~%d", f(1), p.W.TotalIndexBytes())
	}
	prev := int64(-1)
	for rho := 0.0; rho <= 1.0; rho += 0.1 {
		b := f(rho)
		if b < prev {
			t.Fatalf("IndexBytesAt not monotone at %v", rho)
		}
		prev = b
	}
	// Hot clusters are bigger than average under skewed access: the
	// first 20% of clusters should hold more than 20% of bytes.
	if got := float64(f(0.2)) / float64(f(1)); got <= 0.2 {
		t.Fatalf("hot 20%% of clusters hold only %.2f of bytes", got)
	}
}

func TestPlanMatchesIndexBytesAt(t *testing.T) {
	p := profile(t)
	f := IndexBytesAt(p)
	plan, _ := Build(p, 0.4, 8)
	if got, want := plan.TotalBytes(), f(0.4); got != want {
		t.Fatalf("plan bytes %d != IndexBytesAt %d", got, want)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
