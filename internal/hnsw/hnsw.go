// Package hnsw implements Hierarchical Navigable Small World graphs
// (Malkov & Yashunin, TPAMI 2018) — the graph-based ANN index the paper
// contrasts with IVF (§II-A) and the structure production systems use
// for the IVF coarse quantizer (§IV-A1: "CQ is a similarity search over
// the quantizer vectors, often implemented using memory-intensive
// graph-based structures such as HNSW").
//
// The implementation is complete: multi-layer graph with exponentially
// decaying layer assignment, greedy descent through upper layers, beam
// search (efSearch) at layer 0, and bidirectional link insertion with
// degree-bounded pruning. It exists for two reasons: (1) as the
// coarse-quantizer option justifying the cost model's sub-linear CQ
// scaling, and (2) to measure the memory-overhead trade-off vs IVF that
// the paper cites as the reason to prefer IVF at scale.
package hnsw

import (
	"fmt"
	"math"

	"vectorliterag/internal/rng"
	"vectorliterag/internal/vecmath"
)

// Config controls graph construction.
type Config struct {
	Dim            int
	M              int // max links per node per layer (layer 0 gets 2M)
	EfConstruction int // beam width during insertion
	Seed           uint64
}

// DefaultConfig returns the common M=16, ef=100 setting.
func DefaultConfig(dim int) Config {
	return Config{Dim: dim, M: 16, EfConstruction: 100, Seed: 1}
}

// Index is a built HNSW graph over an external vector store.
type Index struct {
	cfg    Config
	data   []float32 // row-major, owned by caller
	levels []int     // per-node top layer
	// links[l][id] lists the neighbors of id at layer l; nodes absent
	// from a layer have nil entries.
	links      [][][]int32
	entryPoint int
	maxLevel   int
	r          *rng.Rand
	levelMult  float64
}

// Build inserts every row of data (row-major with cfg.Dim columns).
func Build(data []float32, cfg Config) (*Index, error) {
	if cfg.Dim <= 0 || len(data) == 0 || len(data)%cfg.Dim != 0 {
		return nil, fmt.Errorf("hnsw: bad data length %d for dim %d", len(data), cfg.Dim)
	}
	if cfg.M < 2 {
		return nil, fmt.Errorf("hnsw: M=%d too small", cfg.M)
	}
	if cfg.EfConstruction < cfg.M {
		cfg.EfConstruction = cfg.M
	}
	ix := &Index{
		cfg:        cfg,
		data:       data,
		entryPoint: -1,
		r:          rng.New(cfg.Seed),
		levelMult:  1 / math.Log(float64(cfg.M)),
	}
	n := len(data) / cfg.Dim
	ix.levels = make([]int, n)
	for i := 0; i < n; i++ {
		ix.insert(i)
	}
	return ix, nil
}

// N returns the number of indexed vectors.
func (ix *Index) N() int { return len(ix.levels) }

// MaxLevel returns the top layer of the graph.
func (ix *Index) MaxLevel() int { return ix.maxLevel }

// MemoryOverheadBytes estimates the link-storage overhead — the
// "additional edge information" that makes HNSW memory-hungry at scale
// (paper §II-A). 4 bytes per stored link.
func (ix *Index) MemoryOverheadBytes() int64 {
	var links int64
	for _, layer := range ix.links {
		for _, nbrs := range layer {
			links += int64(len(nbrs))
		}
	}
	return links * 4
}

func (ix *Index) vec(id int) []float32 {
	return ix.data[id*ix.cfg.Dim : (id+1)*ix.cfg.Dim]
}

func (ix *Index) dist(a []float32, id int) float32 {
	return vecmath.SquaredL2(a, ix.vec(id))
}

// randomLevel draws the node's top layer with the standard exponential
// decay.
func (ix *Index) randomLevel() int {
	u := ix.r.Float64()
	if u <= 0 {
		u = 1e-18
	}
	return int(-math.Log(u) * ix.levelMult)
}

func (ix *Index) ensureLayer(l int) {
	for len(ix.links) <= l {
		ix.links = append(ix.links, make([][]int32, len(ix.levels)))
	}
}

func (ix *Index) insert(id int) {
	level := ix.randomLevel()
	ix.levels[id] = level
	ix.ensureLayer(level)

	if ix.entryPoint < 0 {
		ix.entryPoint = id
		ix.maxLevel = level
		return
	}
	q := ix.vec(id)
	ep := ix.entryPoint
	// Greedy descent through layers above the node's level.
	for l := ix.maxLevel; l > level; l-- {
		ep = ix.greedyClosest(q, ep, l)
	}
	// Insert with beam search from min(level, maxLevel) down to 0.
	top := level
	if top > ix.maxLevel {
		top = ix.maxLevel
	}
	for l := top; l >= 0; l-- {
		cands := ix.searchLayer(q, ep, ix.cfg.EfConstruction, l)
		m := ix.cfg.M
		if l == 0 {
			m = 2 * ix.cfg.M
		}
		nbrs := cands
		if len(nbrs) > m {
			nbrs = nbrs[:m]
		}
		for _, nb := range nbrs {
			ix.link(id, nb.Index, l, m)
			ix.link(nb.Index, id, l, m)
		}
		if len(cands) > 0 {
			ep = cands[0].Index
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entryPoint = id
	}
}

// link adds dst to src's neighbor list at layer l, pruning to the m
// closest when the list overflows.
func (ix *Index) link(src, dst int, l, m int) {
	if src == dst {
		return
	}
	lst := ix.links[l][src]
	for _, v := range lst {
		if int(v) == dst {
			return
		}
	}
	lst = append(lst, int32(dst))
	if len(lst) > m {
		// Keep the m closest to src.
		v := ix.vec(src)
		top := vecmath.NewTopK(m)
		for _, nb := range lst {
			top.Push(int(nb), ix.dist(v, int(nb)))
		}
		kept := top.Sorted()
		lst = lst[:0]
		for _, nb := range kept {
			lst = append(lst, int32(nb.Index))
		}
	}
	ix.links[l][src] = lst
}

// greedyClosest walks layer l greedily from ep toward q.
func (ix *Index) greedyClosest(q []float32, ep, l int) int {
	cur := ep
	curD := ix.dist(q, cur)
	for {
		improved := false
		for _, nb := range ix.links[l][cur] {
			if d := ix.dist(q, int(nb)); d < curD {
				cur, curD = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer runs beam search of width ef at layer l, returning
// candidates in ascending distance order.
func (ix *Index) searchLayer(q []float32, ep, ef, l int) []vecmath.Neighbor {
	visited := map[int]bool{ep: true}
	results := vecmath.NewTopK(ef)
	epD := ix.dist(q, ep)
	results.Push(ep, epD)
	// Candidate frontier as a simple sorted expansion; for the scales
	// this package serves (coarse quantizers, tests) the O(ef * M)
	// scan per step is fine.
	frontier := []vecmath.Neighbor{{Index: ep, Dist: epD}}
	for len(frontier) > 0 {
		// Pop the closest frontier element.
		best := 0
		for i := 1; i < len(frontier); i++ {
			if frontier[i].Dist < frontier[best].Dist {
				best = i
			}
		}
		cur := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		if worst, ok := results.Worst(); ok && cur.Dist > worst {
			break
		}
		for _, nb := range ix.links[l][cur.Index] {
			id := int(nb)
			if visited[id] {
				continue
			}
			visited[id] = true
			d := ix.dist(q, id)
			if worst, ok := results.Worst(); !ok || d < worst {
				results.Push(id, d)
				frontier = append(frontier, vecmath.Neighbor{Index: id, Dist: d})
			}
		}
	}
	return results.Sorted()
}

// Search returns the k approximate nearest neighbors of q, using beam
// width ef (clamped up to k).
func (ix *Index) Search(q []float32, k, ef int) []vecmath.Neighbor {
	if ix.entryPoint < 0 {
		return nil
	}
	if len(q) != ix.cfg.Dim {
		panic(fmt.Sprintf("hnsw: query dim %d != index dim %d", len(q), ix.cfg.Dim))
	}
	if ef < k {
		ef = k
	}
	ep := ix.entryPoint
	for l := ix.maxLevel; l > 0; l-- {
		ep = ix.greedyClosest(q, ep, l)
	}
	res := ix.searchLayer(q, ep, ef, 0)
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// Recall measures top-k recall against brute force over the indexed
// data for the given queries (row-major).
func (ix *Index) Recall(queries []float32, k, ef int) float64 {
	nq := len(queries) / ix.cfg.Dim
	if nq == 0 {
		return 0
	}
	sum := 0.0
	for qi := 0; qi < nq; qi++ {
		q := queries[qi*ix.cfg.Dim : (qi+1)*ix.cfg.Dim]
		truth := vecmath.BruteForceTopK(q, ix.data, ix.cfg.Dim, k)
		got := ix.Search(q, k, ef)
		set := make(map[int]bool, len(got))
		for _, nb := range got {
			set[nb.Index] = true
		}
		hit := 0
		for _, nb := range truth {
			if set[nb.Index] {
				hit++
			}
		}
		sum += float64(hit) / float64(k)
	}
	return sum / float64(nq)
}
