package tenant

import (
	"strings"
	"testing"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hitrate"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/perfmodel"
	"vectorliterag/internal/profiler"
)

func TestTierProperties(t *testing.T) {
	if Gold.Weight() <= Silver.Weight() || Silver.Weight() <= Bronze.Weight() {
		t.Errorf("weights not strictly ordered: %d %d %d", Gold.Weight(), Silver.Weight(), Bronze.Weight())
	}
	if Gold.Priority() >= Silver.Priority() || Silver.Priority() >= Bronze.Priority() {
		t.Errorf("priorities not strictly ordered")
	}
	if Gold.Target() <= Silver.Target() || Silver.Target() <= Bronze.Target() {
		t.Errorf("targets not strictly ordered")
	}
	for _, tier := range Tiers() {
		if got, err := ParseTier(string(tier)); err != nil || got != tier {
			t.Errorf("ParseTier(%s) = %v, %v", tier, got, err)
		}
	}
	if _, err := ParseTier("platinum"); err == nil {
		t.Error("unknown tier accepted")
	}
}

// sharedInput caches one tenant input; building the physical index is
// the expensive part of the fixture.
var sharedInput *Input

// testInput builds a small tenant over the Orcas1K spec.
func testInput(t *testing.T) Input {
	t.Helper()
	if sharedInput == nil {
		gc := dataset.GenConfig{NCenters: 48, PerCenter: 48, Dim: 16, PhysNList: 48, PhysNProbe: 6, Templates: 192, Seed: 3}
		w, err := dataset.Build(dataset.Orcas1K, gc)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := profiler.CollectAccess(w, 1200, 5)
		if err != nil {
			t.Fatal(err)
		}
		est, err := hitrate.NewEstimator(prof)
		if err != nil {
			t.Fatal(err)
		}
		cm := costmodel.NewSearchModel(hw.H100Node().CPU, w.Spec)
		perf, err := perfmodel.Fit(profiler.ProfileLatency(cm, profiler.DefaultBatches()))
		if err != nil {
			t.Fatal(err)
		}
		prefix := make([]int64, len(prof.Counts)+1)
		for i, c := range prof.HotOrder {
			prefix[i+1] = prefix[i] + w.ClusterBytes(c)
		}
		sharedInput = &Input{
			Name: "t", Tier: Silver, Rate: 10,
			SLOSearch: 200 * time.Millisecond,
			Perf:      perf, Est: est, PrefixBytes: prefix,
		}
	}
	return *sharedInput
}

func threeTenants(t *testing.T) []Input {
	base := testInput(t)
	gold, silver, bronze := base, base, base
	gold.Name, gold.Tier = "gold", Gold
	silver.Name, silver.Tier = "silver", Silver
	bronze.Name, bronze.Tier = "bronze", Bronze
	return []Input{gold, silver, bronze}
}

func TestJointAllocateRespectsBudget(t *testing.T) {
	in := Inputs{Tenants: threeTenants(t), MemKV: 8 << 30, Mu0: 60}
	res, err := JointAllocate(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedBytes > res.BudgetBytes {
		t.Fatalf("used %d exceeds budget %d", res.UsedBytes, res.BudgetBytes)
	}
	var sum int64
	for i, a := range res.Allocations {
		if a.Bytes != in.Tenants[i].PrefixBytes[a.Clusters] {
			t.Errorf("%s: bytes %d != prefix[%d]=%d", a.Name, a.Bytes, a.Clusters, in.Tenants[i].PrefixBytes[a.Clusters])
		}
		if a.Rho < 0 || a.Rho > 1 {
			t.Errorf("%s: rho %v outside [0,1]", a.Name, a.Rho)
		}
		sum += a.Bytes
	}
	if sum != res.UsedBytes {
		t.Fatalf("allocation bytes sum %d != used %d", sum, res.UsedBytes)
	}
	if res.MuLLM <= 0 || res.MuLLM > in.Mu0 {
		t.Fatalf("MuLLM %v outside (0, Mu0]", res.MuLLM)
	}
}

func TestJointAllocatePlentyMakesAllFeasible(t *testing.T) {
	// A huge KV pool leaves a budget far beyond every tenant's need.
	in := Inputs{Tenants: threeTenants(t), MemKV: 1 << 45, Mu0: 500}
	res, err := JointAllocate(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Allocations {
		if !a.Feasible || a.Score < 1 {
			t.Errorf("%s infeasible (score %.3f) despite ample budget", a.Name, a.Score)
		}
	}
	if res.UsedBytes >= res.BudgetBytes {
		t.Fatal("greedy should stop at feasibility, not exhaust an ample budget")
	}
}

func TestJointAllocateTierOrderUnderScarcity(t *testing.T) {
	tenants := threeTenants(t)
	// Budget only fits a fraction of the combined feasible sets.
	full := tenants[0].PrefixBytes[len(tenants[0].PrefixBytes)-1]
	memKV := full // budget = a slice of one tenant's full index
	res, err := JointAllocate(Inputs{Tenants: tenants, MemKV: memKV, Mu0: 1000, FloorFrac: Float(0.1)})
	if err != nil {
		t.Fatal(err)
	}
	gold, bronze := res.Allocations[0], res.Allocations[2]
	if gold.Score < bronze.Score {
		t.Errorf("scarce budget favored bronze: gold score %.3f < bronze %.3f", gold.Score, bronze.Score)
	}
	if gold.Bytes < bronze.Bytes {
		t.Errorf("scarce budget gave gold %d bytes < bronze %d", gold.Bytes, bronze.Bytes)
	}
}

func TestJointAllocateFloors(t *testing.T) {
	tenants := threeTenants(t)
	res, err := JointAllocate(Inputs{Tenants: tenants, MemKV: 256 << 30, Mu0: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Allocations {
		if a.Bytes < a.FloorBytes {
			t.Errorf("%s: granted %d below floor %d", a.Name, a.Bytes, a.FloorBytes)
		}
	}
	// With a budget that covers the floors, the bronze tenant's floor
	// must be non-trivial (the guarantee is the point of the floor).
	if res.Allocations[2].FloorBytes == 0 && res.BudgetBytes > 0 {
		t.Error("bronze floor is zero despite available budget")
	}
}

func TestJointAllocateDeterministic(t *testing.T) {
	in := Inputs{Tenants: threeTenants(t), MemKV: 8 << 30, Mu0: 60}
	a, err := JointAllocate(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JointAllocate(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.UsedBytes != b.UsedBytes || a.BudgetBytes != b.BudgetBytes || a.MuLLM != b.MuLLM {
		t.Fatalf("top-level results differ: %+v vs %+v", a, b)
	}
	for i := range a.Allocations {
		if a.Allocations[i] != b.Allocations[i] {
			t.Fatalf("allocation %d differs: %+v vs %+v", i, a.Allocations[i], b.Allocations[i])
		}
	}
}

func TestJointAllocateOverloadIsAnError(t *testing.T) {
	tenants := threeTenants(t)
	// Aggregate rate 30 against Mu0 20: generation cannot keep up. The
	// old behavior silently granted every tenant a zero-byte budget;
	// overload must be an explicit infeasibility error instead.
	_, err := JointAllocate(Inputs{Tenants: tenants, MemKV: 8 << 30, Mu0: 20})
	if err == nil {
		t.Fatal("overloaded node (kvNeeded >= 1) did not error")
	}
	if !strings.Contains(err.Error(), "infeasible") {
		t.Errorf("overload error does not say infeasible: %v", err)
	}
}

func TestJointAllocateExplicitZeroOptions(t *testing.T) {
	tenants := threeTenants(t)
	// An explicit FloorFrac of zero disables floors — it must not be
	// silently replaced by the 0.25 default.
	res, err := JointAllocate(Inputs{Tenants: tenants, MemKV: 8 << 30, Mu0: 60, FloorFrac: Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Allocations {
		if a.FloorBytes != 0 {
			t.Errorf("%s: explicit FloorFrac 0 still granted floor %d", a.Name, a.FloorBytes)
		}
	}
	// An explicit KVHeadroom of zero reserves for the bare rate: the
	// budget must be strictly larger than under the 1.05 default.
	def, err := JointAllocate(Inputs{Tenants: tenants, MemKV: 8 << 30, Mu0: 60})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := JointAllocate(Inputs{Tenants: tenants, MemKV: 8 << 30, Mu0: 60, KVHeadroom: Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	if bare.BudgetBytes <= def.BudgetBytes {
		t.Errorf("explicit KVHeadroom 0 budget %d not above default-headroom budget %d",
			bare.BudgetBytes, def.BudgetBytes)
	}
	// kvNeeded = 0·ΣRate/Mu0 = 0: an explicit zero headroom reserves no
	// KV at all, so the budget is the whole pool.
	if want := int64(8 << 30); bare.BudgetBytes != want {
		t.Errorf("zero-headroom budget %d, want %d", bare.BudgetBytes, want)
	}
	// Negative option values are errors, not defaults.
	if _, err := JointAllocate(Inputs{Tenants: tenants, MemKV: 8 << 30, Mu0: 60, FloorFrac: Float(-0.1)}); err == nil {
		t.Error("negative FloorFrac accepted")
	}
	if _, err := JointAllocate(Inputs{Tenants: tenants, MemKV: 8 << 30, Mu0: 60, KVHeadroom: Float(-1)}); err == nil {
		t.Error("negative KVHeadroom accepted")
	}
}

func TestJointAllocateValidation(t *testing.T) {
	good := threeTenants(t)
	cases := []struct {
		name string
		in   Inputs
	}{
		{"no tenants", Inputs{MemKV: 1 << 30, Mu0: 10}},
		{"zero memkv", Inputs{Tenants: good, Mu0: 10}},
		{"zero mu0", Inputs{Tenants: good, MemKV: 1 << 30}},
	}
	for _, tc := range cases {
		if _, err := JointAllocate(tc.in); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	bad := good[0]
	bad.Rate = 0
	if _, err := JointAllocate(Inputs{Tenants: []Input{bad}, MemKV: 1 << 30, Mu0: 10}); err == nil {
		t.Error("zero-rate tenant accepted")
	}
	bad = good[0]
	bad.Tier = "platinum"
	if _, err := JointAllocate(Inputs{Tenants: []Input{bad}, MemKV: 1 << 30, Mu0: 10}); err == nil {
		t.Error("unknown tier accepted")
	}
	bad = good[0]
	bad.Est = nil
	if _, err := JointAllocate(Inputs{Tenants: []Input{bad}, MemKV: 1 << 30, Mu0: 10}); err == nil {
		t.Error("nil estimator accepted")
	}
}

// TestJointAllocatePrecisionNeverLowersAttainment: the tentpole
// property. The codec-upgrade pass runs strictly after the placement
// rounds converge and spends only leftover budget, so at equal budget
// the placement×precision allocation must grant every tenant the same
// clusters and the same modeled attainment (Score) as placement-only —
// never less — while staying inside the budget and buying nonnegative
// recall. Swept over budgets from scarce to plentiful.
func TestJointAllocatePrecisionNeverLowersAttainment(t *testing.T) {
	tenants := threeTenants(t)
	// Synthetic profiler deltas: recall gain decays with hotness rank and
	// hits zero past rank 24, exercising the zero-delta skip.
	deltas := make([][]float64, len(tenants))
	for i := range deltas {
		d := make([]float64, len(tenants[i].PrefixBytes)-1)
		for r := range d {
			d[r] = 0.048 - 0.002*float64(r)
			if d[r] < 0 {
				d[r] = 0
			}
		}
		deltas[i] = d
	}
	for _, memKV := range []int64{2 << 30, 8 << 30, 32 << 30, 1 << 42} {
		base := Inputs{Tenants: tenants, MemKV: memKV, Mu0: 60}
		plain, err := JointAllocate(base)
		if err != nil {
			t.Fatal(err)
		}
		refined := base
		refined.Precision = &PrecisionOptions{SQBytesRatio: 4, RecallDelta: deltas}
		prec, err := JointAllocate(refined)
		if err != nil {
			t.Fatal(err)
		}
		if prec.BudgetBytes != plain.BudgetBytes {
			t.Fatalf("memKV=%d: budgets diverged: %d vs %d", memKV, prec.BudgetBytes, plain.BudgetBytes)
		}
		if prec.UsedBytes > prec.BudgetBytes {
			t.Errorf("memKV=%d: refined spend %d exceeds budget %d", memKV, prec.UsedBytes, prec.BudgetBytes)
		}
		if prec.RecallGain < 0 {
			t.Errorf("memKV=%d: negative aggregate recall gain %v", memKV, prec.RecallGain)
		}
		for i := range plain.Allocations {
			p, q := plain.Allocations[i], prec.Allocations[i]
			if q.Clusters != p.Clusters {
				t.Errorf("memKV=%d %s: refinement moved placement: %d vs %d clusters",
					memKV, q.Name, q.Clusters, p.Clusters)
			}
			if q.Score < p.Score {
				t.Errorf("memKV=%d %s: modeled attainment fell %.4f -> %.4f at equal budget",
					memKV, q.Name, p.Score, q.Score)
			}
			if q.Bytes != p.Bytes+q.SQBytes {
				t.Errorf("memKV=%d %s: byte accounting broken: %d != %d placement + %d SQ",
					memKV, q.Name, q.Bytes, p.Bytes, q.SQBytes)
			}
			if q.RecallGain < 0 || (q.SQClusters == 0) != (q.SQBytes == 0) {
				t.Errorf("memKV=%d %s: inconsistent precision fields: %+v", memKV, q.Name, q)
			}
		}
	}
	// With a plentiful budget the upgrade pass must actually fire.
	refined := Inputs{Tenants: tenants, MemKV: 1 << 42, Mu0: 60,
		Precision: &PrecisionOptions{SQBytesRatio: 4, RecallDelta: deltas}}
	res, err := JointAllocate(refined)
	if err != nil {
		t.Fatal(err)
	}
	var sq int
	for _, a := range res.Allocations {
		sq += a.SQClusters
	}
	if sq == 0 || res.RecallGain <= 0 {
		t.Errorf("plentiful budget bought no upgrades: %d SQ clusters, gain %v", sq, res.RecallGain)
	}
}
