package hw

import (
	"strings"
	"testing"
)

func TestNodeDefaults(t *testing.T) {
	h := H100Node()
	if h.NumGPUs != 8 || h.CPU.Cores != 64 {
		t.Fatalf("H100 node misconfigured: %+v", h)
	}
	l := L40SNode()
	if l.NumGPUs != 8 || l.CPU.Cores != 32 {
		t.Fatalf("L40S node misconfigured: %+v", l)
	}
	if h.GPU.MemBytes <= l.GPU.MemBytes {
		t.Fatal("H100 should have more memory than L40S")
	}
}

func TestUsableMem(t *testing.T) {
	g := H100()
	if g.UsableMem() != g.MemBytes-g.Reserve {
		t.Fatal("UsableMem arithmetic wrong")
	}
	if g.UsableMem() <= 0 {
		t.Fatal("no usable memory")
	}
}

func TestWithGPUsScalesCPU(t *testing.T) {
	n := H100Node()
	half, err := n.WithGPUs(4)
	if err != nil {
		t.Fatal(err)
	}
	if half.NumGPUs != 4 {
		t.Fatalf("NumGPUs = %d", half.NumGPUs)
	}
	// The paper's provisioning policy: 4 GPUs come with 32 cores.
	if half.CPU.Cores != 32 {
		t.Fatalf("cores = %d, want 32", half.CPU.Cores)
	}
	if !strings.Contains(half.Name, "4 GPUs") {
		t.Fatalf("name = %q", half.Name)
	}
}

func TestWithGPUsRejectsBadCounts(t *testing.T) {
	n := H100Node()
	if _, err := n.WithGPUs(0); err == nil {
		t.Fatal("0 GPUs accepted")
	}
	if _, err := n.WithGPUs(9); err == nil {
		t.Fatal("9 GPUs accepted on an 8-GPU node")
	}
}
