package des

import (
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var s Sim
	var order []int
	s.At(300, func() { order = append(order, 3) })
	s.At(100, func() { order = append(order, 1) })
	s.At(200, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 300 {
		t.Fatalf("clock = %d", s.Now())
	}
}

func TestTiesFireFIFO(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(50, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var s Sim
	var fired Time = -1
	s.At(100, func() {
		s.After(50*time.Nanosecond, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 150 {
		t.Fatalf("After fired at %d, want 150", fired)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var s Sim
	var fired Time = -1
	s.At(100, func() {
		s.At(10, func() { fired = s.Now() }) // in the past
	})
	s.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamp to 100", fired)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	var s Sim
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*100, func() { count++ })
	}
	s.RunUntil(450)
	if count != 4 {
		t.Fatalf("fired %d events before deadline, want 4", count)
	}
	if s.Now() != 450 {
		t.Fatalf("clock = %d, want 450", s.Now())
	}
	if s.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", s.Pending())
	}
}

func TestCascadedEvents(t *testing.T) {
	// A self-rescheduling process: models a server loop.
	var s Sim
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks < 100 {
			s.After(10*time.Nanosecond, tick)
		}
	}
	s.At(0, tick)
	s.Run()
	if ticks != 100 {
		t.Fatalf("ticks = %d", ticks)
	}
	if s.Now() != 990 {
		t.Fatalf("clock = %d, want 990", s.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var s Sim
	if s.Step() {
		t.Fatal("Step on empty sim returned true")
	}
}
