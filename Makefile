# Developer entry points. CI runs `make verify` and `make bench-smoke`.

GO ?= go

.PHONY: verify build test vet race bench bench-search bench-smoke fmt

verify: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full micro-benchmark sweep (one iteration each; sanity, not timing).
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Timed search-kernel benchmarks — the numbers tracked in
# BENCH_search.json (see also `vliterag run -exp bench`).
bench-search:
	$(GO) test -run=NONE -bench=Search -benchmem -benchtime=2s ./...

# One-iteration compile-and-run of the search kernel benchmarks; CI runs
# this so the benchmarks cannot rot.
bench-smoke:
	$(GO) test -run=NONE -bench=Search -benchtime=1x ./...

fmt:
	gofmt -l -w .
