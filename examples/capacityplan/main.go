// Capacity planning: size a deployment before buying hardware. For 4,
// 6, and 8 GPUs (with the cloud-style proportional CPU provisioning of
// paper §VI-E4 / Fig. 17), report the bare LLM capacity, the
// partitioning point VectorLiteRAG would choose, and the SLO attainment
// at a target arrival rate.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	vlr "vectorliterag"
)

func main() {
	quick := flag.Bool("quick", false, "fewer node sizes and shorter runs for smoke tests")
	flag.Parse()
	sizes := []int{4, 6, 8}
	var duration time.Duration // zero = library default (120s)
	if *quick {
		sizes = []int{4, 8}
		duration = 40 * time.Second
	}

	fmt.Println("building ORCAS-2K workload...")
	w, err := vlr.NewWorkload(vlr.Orcas2K)
	if err != nil {
		log.Fatal(err)
	}
	model := vlr.Qwen3_32B
	const targetRate = 16 // req/s the service must absorb

	fmt.Printf("\ntarget: %d req/s of 1024/256-token RAG traffic, %s\n\n", targetRate, model.Name)
	fmt.Printf("%-8s %-12s %-8s %-12s %-12s %-10s\n",
		"GPUs", "capacity", "rho", "index GB", "attainment", "TTFT p90")
	for _, gpus := range sizes {
		node, err := vlr.H100Node().WithGPUs(gpus)
		if err != nil {
			log.Fatal(err)
		}
		mu, err := vlr.Capacity(node, model)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := vlr.BuildSystem(vlr.SystemOptions{
			Workload: w, Node: node, Model: model, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := vlr.Serve(vlr.ServeOptions{
			Workload: w, System: vlr.VLiteRAG, Rate: targetRate,
			Node: node, Model: model, Seed: 1, Duration: duration,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-12.1f %-8.3f %-12.1f %-12.3f %-10v\n",
			gpus, mu, sys.Rho, float64(sys.PlanBytes)/1e9,
			rep.Summary.Attainment, rep.Summary.TTFT.P90.Round(1e6))
	}
	fmt.Println("\nPick the smallest node whose attainment meets your availability target.")
}
