package profiler

import (
	"fmt"

	"vectorliterag/internal/pq"
)

// MaxSQRecallGain caps the modeled per-cluster recall gain (in recall
// points) of storing a cluster as SQ8 instead of PQ. SQ8 keeps one
// byte per dimension where the PQ configuration spends one byte per
// Dim/M dimensions, so its reconstruction error is a fraction of PQ's;
// published IVF comparisons put the recall gap between SQ8 and
// byte-per-4-dims PQ at mid-single-digit recall points on recall@10,
// which is where this cap sits.
const MaxSQRecallGain = 0.05

// sqDeltaSampleVecs bounds the per-cluster member sample the
// distortion comparison reads.
const sqDeltaSampleVecs = 32

// SQRecallDeltas estimates, per physical cluster, the recall gain (in
// recall points, 0..MaxSQRecallGain) from storing that cluster's
// vectors as SQ8 codes instead of PQ codes.
//
// The estimate is a distortion comparison on the physical corpus: for
// a deterministic stride-sample of each cluster's members, the squared
// reconstruction error under the index's trained PQ codebooks and
// under an SQ8 quantizer trained on the same corpus. A cluster's delta
// scales with how much of the PQ distortion SQ8 removes, relative to
// the corpus-mean PQ distortion — clusters the PQ codebooks already
// represent well have little recall to win back, while clusters far
// from the codebook centers (where PQ's subspace centroids are
// stretched) gain the most. The asymmetric LUT distance of a vector to
// its own code is exactly its squared reconstruction error, so both
// codecs are measured by the same kernels the scans use.
//
// The result is deterministic: sampling is by fixed stride in
// inverted-list order and every accumulation runs in cluster order.
func SQRecallDeltas(p *AccessProfile) ([]float64, error) {
	w := p.W
	dim := w.Index.Dim()
	sq, err := pq.TrainSQ(w.Data, dim)
	if err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	quant := w.Index.Quantizer()
	nlist := w.Index.NList()

	var lut pq.LUT
	pqCode := make([]byte, quant.CodeSize())
	sqCode := make([]byte, sq.CodeSize())
	msePQ := make([]float64, nlist)
	mseSQ := make([]float64, nlist)
	var meanPQ float64
	var sampled int
	for c := 0; c < nlist; c++ {
		ids := w.Index.ClusterIDs(c)
		if len(ids) == 0 {
			continue
		}
		stride := len(ids)/sqDeltaSampleVecs + 1
		var ePQ, eSQ float64
		n := 0
		for j := 0; j < len(ids); j += stride {
			v := w.Data[int(ids[j])*dim : (int(ids[j])+1)*dim]
			quant.Encode(v, pqCode)
			quant.BuildLUTInto(v, &lut)
			ePQ += float64(lut.Distance(pqCode))
			sq.Encode(v, sqCode)
			eSQ += float64(sq.Distance(v, sqCode))
			n++
		}
		msePQ[c] = ePQ / float64(n)
		mseSQ[c] = eSQ / float64(n)
		meanPQ += ePQ
		sampled += n
	}
	if sampled == 0 {
		return nil, fmt.Errorf("profiler: empty index")
	}
	meanPQ /= float64(sampled)

	deltas := make([]float64, nlist)
	for c := range deltas {
		if msePQ[c] <= 0 {
			continue
		}
		rel := (msePQ[c] - mseSQ[c]) / meanPQ
		if rel < 0 {
			rel = 0
		}
		if rel > 1 {
			rel = 1
		}
		deltas[c] = MaxSQRecallGain * rel
	}
	return deltas, nil
}

// RecallDeltasByRank reorders per-cluster deltas into the profile's
// hot order — deltas[r] is then the recall gain of upgrading the r-th
// hottest cluster, the layout the multi-tenant allocator's precision
// pass consumes (tenant.PrecisionOptions.RecallDelta).
func (p *AccessProfile) RecallDeltasByRank(deltas []float64) []float64 {
	out := make([]float64, len(p.HotOrder))
	for r, c := range p.HotOrder {
		if c < len(deltas) {
			out[r] = deltas[c]
		}
	}
	return out
}
