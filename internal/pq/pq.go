// Package pq implements product quantization (Jégou et al., TPAMI 2010),
// the compression scheme the paper layers on IVF (§II-A/B): each vector
// is split into M sub-vectors, each sub-vector is quantized to one of
// 2^nbits codewords trained by k-means, and search-time distances are
// computed by asymmetric distance computation (ADC) — a lookup table of
// query-to-codeword partial distances built once per query, then scanned
// per candidate code.
//
// The LUT build + scan stages are exactly what the paper's Figure 3
// identifies as the dominant cost of IVF search and what VectorLiteRAG
// offloads to GPUs.
package pq

import (
	"fmt"

	"vectorliterag/internal/kmeans"
	"vectorliterag/internal/parallel"
	"vectorliterag/internal/vecmath"
)

// Quantizer is a trained product quantizer.
type Quantizer struct {
	Dim    int // full vector dimensionality
	M      int // number of subspaces
	K      int // codewords per subspace (typically 256 for 8-bit codes)
	subDim int
	// codebooks[m] is a K x subDim row-major matrix.
	codebooks [][]float32
}

// Config controls training.
type Config struct {
	Dim   int
	M     int // must divide Dim
	K     int // codewords per subspace; default 256
	Iters int
	Seed  uint64
	// Workers sizes the training worker pool (subspaces train
	// concurrently); non-positive means one per CPU core. Each subspace
	// trains from its own seed, so results are identical for any value.
	Workers int
}

// Train learns the per-subspace codebooks from the row-major training
// matrix.
func Train(data []float32, cfg Config) (*Quantizer, error) {
	if cfg.K == 0 {
		cfg.K = 256
	}
	if cfg.Dim <= 0 || cfg.M <= 0 {
		return nil, fmt.Errorf("pq: non-positive dim %d or M %d", cfg.Dim, cfg.M)
	}
	if cfg.Dim%cfg.M != 0 {
		return nil, fmt.Errorf("pq: M=%d does not divide dim=%d", cfg.M, cfg.Dim)
	}
	if len(data) == 0 || len(data)%cfg.Dim != 0 {
		return nil, fmt.Errorf("pq: bad training matrix length %d for dim %d", len(data), cfg.Dim)
	}
	n := len(data) / cfg.Dim
	if n < cfg.K {
		return nil, fmt.Errorf("pq: %d training vectors < K=%d codewords", n, cfg.K)
	}
	subDim := cfg.Dim / cfg.M
	q := &Quantizer{Dim: cfg.Dim, M: cfg.M, K: cfg.K, subDim: subDim, codebooks: make([][]float32, cfg.M)}
	// Subspaces are independent trainings with their own seeds, so they
	// run concurrently; each goroutine extracts its own sub-matrix. The
	// outer fan-out already saturates the pool, so the inner trainings
	// stay single-threaded (worker count never changes results).
	innerWorkers := cfg.Workers
	if cfg.M > 1 {
		innerWorkers = 1
	}
	errs := make([]error, cfg.M)
	parallel.ForEach(cfg.M, cfg.Workers, func(m int) {
		sub := make([]float32, n*subDim)
		for i := 0; i < n; i++ {
			copy(sub[i*subDim:(i+1)*subDim], data[i*cfg.Dim+m*subDim:i*cfg.Dim+(m+1)*subDim])
		}
		res, err := kmeans.Train(sub, kmeans.Config{K: cfg.K, Dim: subDim, MaxIters: cfg.Iters, Seed: cfg.Seed + uint64(m), Workers: innerWorkers})
		if err != nil {
			errs[m] = fmt.Errorf("pq: subspace %d: %w", m, err)
			return
		}
		q.codebooks[m] = res.Centroids
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return q, nil
}

// CodeSize returns the number of bytes in one encoded vector (one byte
// per subspace; K <= 256 is required for this layout).
func (q *Quantizer) CodeSize() int { return q.M }

// Encode quantizes vector v (length Dim) into dst (length M). It
// returns dst for convenience; if dst is nil a new slice is allocated.
func (q *Quantizer) Encode(v []float32, dst []byte) []byte {
	if len(v) != q.Dim {
		panic(fmt.Sprintf("pq: encode vector of dim %d with quantizer dim %d", len(v), q.Dim))
	}
	if dst == nil {
		dst = make([]byte, q.M)
	}
	for m := 0; m < q.M; m++ {
		idx, _ := vecmath.ArgminL2(v[m*q.subDim:(m+1)*q.subDim], q.codebooks[m], q.subDim)
		dst[m] = byte(idx)
	}
	return dst
}

// Decode reconstructs the approximate vector for a code.
func (q *Quantizer) Decode(code []byte) []float32 {
	out := make([]float32, q.Dim)
	for m := 0; m < q.M; m++ {
		cw := q.codebooks[m][int(code[m])*q.subDim : (int(code[m])+1)*q.subDim]
		copy(out[m*q.subDim:(m+1)*q.subDim], cw)
	}
	return out
}

// LUT is a per-query lookup table of partial squared distances:
// LUT[m*K + j] = ||q_m - codebook[m][j]||^2. Scanning a code then costs
// M lookups and adds — the ADC inner loop.
type LUT struct {
	M, K int
	tab  []float32
}

// BuildLUT computes the lookup table for query v.
func (q *Quantizer) BuildLUT(v []float32) *LUT {
	if len(v) != q.Dim {
		panic(fmt.Sprintf("pq: LUT for vector of dim %d with quantizer dim %d", len(v), q.Dim))
	}
	t := &LUT{M: q.M, K: q.K, tab: make([]float32, q.M*q.K)}
	for m := 0; m < q.M; m++ {
		qSub := v[m*q.subDim : (m+1)*q.subDim]
		cb := q.codebooks[m]
		for j := 0; j < q.K; j++ {
			t.tab[m*q.K+j] = vecmath.SquaredL2(qSub, cb[j*q.subDim:(j+1)*q.subDim])
		}
	}
	return t
}

// Distance accumulates the approximate squared distance for one code.
func (t *LUT) Distance(code []byte) float32 {
	var sum float32
	for m := 0; m < t.M; m++ {
		sum += t.tab[m*t.K+int(code[m])]
	}
	return sum
}

// ScanCodes computes distances for a contiguous block of codes (each
// CodeSize bytes) and pushes them into the collector with indices
// base+0, base+1, ...  This is the hot loop that fast-scan implementations
// vectorize with SIMD shuffles; here it is scalar but semantically
// identical.
func (t *LUT) ScanCodes(codes []byte, base int, top *vecmath.TopK) {
	cs := t.M
	for i := 0; i*cs < len(codes); i++ {
		top.Push(base+i, t.Distance(codes[i*cs:(i+1)*cs]))
	}
}
