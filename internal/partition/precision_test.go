package partition

import (
	"testing"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/splitter"
)

// precFixture builds a plan plus synthetic recall deltas: gain decays
// with hotness rank, with a zero stretch so the greedy must skip.
func precFixture(t *testing.T) (fixture, *splitter.Plan, []float64) {
	t.Helper()
	f := setup(t, dataset.Orcas1K)
	plan, err := splitter.Build(f.prof, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([]float64, len(f.prof.Counts))
	for r, c := range f.prof.HotOrder {
		d := profiler.MaxSQRecallGain - 0.002*float64(r)
		if d < 0 {
			d = 0
		}
		deltas[c] = d
	}
	return f, plan, deltas
}

func TestAssignPrecisionValidation(t *testing.T) {
	f, plan, deltas := precFixture(t)
	good := PrecisionInputs{Prof: f.prof, Plan: plan, RecallDeltas: deltas, SQRatio: 4}
	bad := good
	bad.Prof = nil
	if _, err := AssignPrecision(bad); err == nil {
		t.Error("nil profile accepted")
	}
	bad = good
	bad.Plan = nil
	if _, err := AssignPrecision(bad); err == nil {
		t.Error("nil plan accepted")
	}
	bad = good
	bad.SQRatio = 1
	if _, err := AssignPrecision(bad); err == nil {
		t.Error("SQRatio <= 1 accepted")
	}
	bad = good
	bad.NVMeColdShare = 1
	if _, err := AssignPrecision(bad); err == nil {
		t.Error("NVMeColdShare >= 1 accepted")
	}
	bad = good
	bad.NVMeColdShare = -0.1
	if _, err := AssignPrecision(bad); err == nil {
		t.Error("negative NVMeColdShare accepted")
	}
}

func TestAssignPrecisionDomains(t *testing.T) {
	f, plan, deltas := precFixture(t)
	prec, err := AssignPrecision(PrecisionInputs{
		Prof: f.prof, Plan: plan, RecallDeltas: deltas,
		SQRatio: 4, SQBudgetBytes: 1 << 40, NVMeColdShare: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sq, nv int
	var extra int64
	for c := range f.prof.Counts {
		if prec.IsSQ(c) {
			sq++
			if !plan.IsHot(c) {
				t.Errorf("cold cluster %d upgraded to SQ8", c)
			}
			extra += int64(float64(f.prof.W.ClusterBytes(c)) * 3)
		}
		if prec.IsNVMe(c) {
			nv++
			if plan.IsHot(c) {
				t.Errorf("hot cluster %d demoted to NVMe", c)
			}
		}
		if prec.IsSQ(c) && prec.IsNVMe(c) {
			t.Errorf("cluster %d both SQ and NVMe", c)
		}
	}
	if sq != prec.SQClusters || nv != prec.NVMeClusters {
		t.Fatalf("counts drifted: %d/%d marks vs %d/%d recorded", sq, nv, prec.SQClusters, prec.NVMeClusters)
	}
	if sq == 0 {
		t.Fatal("unbounded budget upgraded nothing")
	}
	if nv == 0 {
		t.Fatal("10%% cold share demoted nothing")
	}
	if extra != prec.SQExtraBytes {
		t.Fatalf("extra bytes %d, recorded %d", extra, prec.SQExtraBytes)
	}
	if prec.RecallGain <= 0 || prec.RecallGain > profiler.MaxSQRecallGain {
		t.Fatalf("planning recall gain %v outside (0, %v]", prec.RecallGain, profiler.MaxSQRecallGain)
	}
}

func TestAssignPrecisionRespectsBudget(t *testing.T) {
	f, plan, deltas := precFixture(t)
	// A budget big enough for some but not all upgrades.
	var smallest int64 = 1 << 62
	for _, c := range plan.HotClusters {
		if b := f.prof.W.ClusterBytes(c) * 3; b < smallest {
			smallest = b
		}
	}
	budget := smallest * 2
	prec, err := AssignPrecision(PrecisionInputs{
		Prof: f.prof, Plan: plan, RecallDeltas: deltas,
		SQRatio: 4, SQBudgetBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prec.SQExtraBytes > budget {
		t.Fatalf("spent %d over budget %d", prec.SQExtraBytes, budget)
	}
	if prec.SQClusters == 0 {
		t.Fatal("budget covering the smallest upgrade bought nothing")
	}
	// Zero budget and zero cold share: the refinement is empty.
	empty, err := AssignPrecision(PrecisionInputs{
		Prof: f.prof, Plan: plan, RecallDeltas: deltas, SQRatio: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if empty.SQClusters != 0 || empty.NVMeClusters != 0 || empty.RecallGain != 0 {
		t.Fatalf("zero-budget refinement not empty: %+v", empty)
	}
}

func TestAssignPrecisionDeterministic(t *testing.T) {
	f, plan, deltas := precFixture(t)
	in := PrecisionInputs{
		Prof: f.prof, Plan: plan, RecallDeltas: deltas,
		SQRatio: 4, SQBudgetBytes: 1 << 30, NVMeColdShare: 0.05,
	}
	a, err := AssignPrecision(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssignPrecision(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.SQClusters != b.SQClusters || a.NVMeClusters != b.NVMeClusters ||
		a.SQExtraBytes != b.SQExtraBytes || a.RecallGain != b.RecallGain {
		t.Fatalf("assignment not deterministic: %+v vs %+v", a, b)
	}
	for c := range a.SQ {
		if a.SQ[c] != b.SQ[c] || a.NVMe[c] != b.NVMe[c] {
			t.Fatalf("cluster %d marks differ across runs", c)
		}
	}
}
