package brownout

import (
	"testing"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/tenant"
	"vectorliterag/internal/workload"
)

func mustController(t *testing.T, cfg Config, budgets []StageBudget, bias []float64) (*des.Sim, *Controller) {
	t.Helper()
	sim := &des.Sim{}
	c, err := NewController(sim, cfg, budgets, bias)
	if err != nil {
		t.Fatal(err)
	}
	return sim, c
}

// threeTier returns budgets/biases for a gold/silver/bronze tenant set,
// biases taken from the real tier mapping so the property test covers
// the values production runs use.
func threeTier() ([]StageBudget, []float64) {
	b := StageBudget{Retrieval: 350 * time.Millisecond, Generation: 600 * time.Millisecond}
	return []StageBudget{b, b, b}, []float64{
		tenant.Gold.BrownoutBias(), tenant.Silver.BrownoutBias(), tenant.Bronze.BrownoutBias(),
	}
}

// TestShedsMonotone is the ladder property test: for every tenant the
// shed fractions are non-decreasing in ladder level, for every level
// they are non-decreasing in tier bias (gold ≤ silver ≤ bronze), no
// effective shed ever exceeds MaxShed, and the DropSQ rung — once
// reached — stays engaged at every deeper level. Swept across MaxShed
// settings including the default.
func TestShedsMonotone(t *testing.T) {
	budgets, bias := threeTier()
	for _, maxShed := range []float64{0, 0.3, 0.5, 0.9} {
		_, c := mustController(t, Config{MaxShed: maxShed}, budgets, bias)
		for tn := 0; tn < len(bias); tn++ {
			prevProbe, prevK, prevDrop := 0.0, 0.0, false
			for lvl := 0; lvl < c.NumLevels(); lvl++ {
				probe, k, drop := c.Sheds(tn, lvl)
				if probe > c.MaxShed() || k > c.MaxShed() {
					t.Fatalf("maxShed=%v tenant=%d level=%d: shed %v/%v exceeds cap %v",
						maxShed, tn, lvl, probe, k, c.MaxShed())
				}
				if probe < prevProbe || k < prevK {
					t.Fatalf("maxShed=%v tenant=%d level=%d: shed decreased (%v<%v or %v<%v)",
						maxShed, tn, lvl, probe, prevProbe, k, prevK)
				}
				if prevDrop && !drop {
					t.Fatalf("maxShed=%v tenant=%d level=%d: DropSQ disengaged after engaging", maxShed, tn, lvl)
				}
				prevProbe, prevK, prevDrop = probe, k, drop
			}
		}
		// Tier ordering: a higher bias never sheds less at any level.
		for lvl := 0; lvl < c.NumLevels(); lvl++ {
			gp, gk, _ := c.Sheds(0, lvl)
			sp, sk, _ := c.Sheds(1, lvl)
			bp, bk, _ := c.Sheds(2, lvl)
			if gp > sp || sp > bp || gk > sk || sk > bk {
				t.Fatalf("maxShed=%v level=%d: tier ordering violated: gold(%v,%v) silver(%v,%v) bronze(%v,%v)",
					maxShed, lvl, gp, gk, sp, sk, bp, bk)
			}
		}
		// Past-end levels clamp to the deepest rung rather than wrapping.
		deepP, deepK, deepDrop := c.Sheds(0, c.NumLevels()-1)
		overP, overK, overDrop := c.Sheds(0, c.NumLevels()+3)
		if overP != deepP || overK != deepK || overDrop != deepDrop {
			t.Fatalf("maxShed=%v: past-end level diverged from deepest rung", maxShed)
		}
	}
}

// feedWindow pushes one full monitoring window of completed requests
// whose retrieval-stage budget ratio is exactly ratio (generation held
// comfortably inside budget).
func feedWindow(c *Controller, cfg Config, b StageBudget, ratio float64) {
	retr := des.Time(float64(b.Retrieval) * ratio)
	for i := 0; i < cfg.window(); i++ {
		req := &workload.Request{
			SearchDone: retr,
			FirstToken: retr + des.Time(b.Generation/10),
		}
		c.Observe(req)
	}
}

// TestControllerHysteresis drives the raise/restore loop directly: one
// over-budget window raises the level, a single good window does not
// restore it, RestoreWindows consecutive good ones lower it by exactly
// one, and a dead-band window (between Restore and 1) both holds the
// level and resets the good-window streak.
func TestControllerHysteresis(t *testing.T) {
	b := StageBudget{Retrieval: 100 * time.Millisecond, Generation: 100 * time.Millisecond}
	cfg := Config{Window: 8, Restore: 0.7, RestoreWindows: 2}
	_, c := mustController(t, cfg, []StageBudget{b}, []float64{1})

	feedWindow(c, cfg, b, 2.0)
	if c.Level() != 1 {
		t.Fatalf("one bad window: level %d, want 1", c.Level())
	}
	feedWindow(c, cfg, b, 1.5)
	if c.Level() != 2 {
		t.Fatalf("second bad window: level %d, want 2", c.Level())
	}
	feedWindow(c, cfg, b, 0.1)
	if c.Level() != 2 {
		t.Fatalf("single good window restored early: level %d, want 2", c.Level())
	}
	feedWindow(c, cfg, b, 0.1)
	if c.Level() != 1 {
		t.Fatalf("two good windows: level %d, want 1", c.Level())
	}
	// Dead band: under the raise threshold but over Restore — the level
	// holds and the streak restarts, so restoration needs two more
	// clean windows, not one.
	feedWindow(c, cfg, b, 0.85)
	feedWindow(c, cfg, b, 0.1)
	if c.Level() != 1 {
		t.Fatalf("dead band failed to reset streak: level %d, want 1", c.Level())
	}
	feedWindow(c, cfg, b, 0.1)
	if c.Level() != 0 {
		t.Fatalf("full restore: level %d, want 0", c.Level())
	}
	if c.MaxLevel() != 2 {
		t.Fatalf("max level %d, want 2", c.MaxLevel())
	}
	// The ladder never raises past its deepest rung.
	for i := 0; i < 2*c.NumLevels(); i++ {
		feedWindow(c, cfg, b, 3.0)
	}
	if c.Level() != c.NumLevels()-1 {
		t.Fatalf("level %d past ladder depth %d", c.Level(), c.NumLevels())
	}
}

// TestStampAppliesRung: stamping at a deep level degrades the probe
// count, shrinks the shape, and (at the deepest rung) forces the PQ
// codec — while level 0 leaves the request untouched.
func TestStampAppliesRung(t *testing.T) {
	b := StageBudget{Retrieval: 100 * time.Millisecond, Generation: 100 * time.Millisecond}
	cfg := Config{Window: 4}
	_, c := mustController(t, cfg, []StageBudget{b}, []float64{1})

	clean := &workload.Request{Shape: workload.DefaultShape()}
	c.Stamp(clean)
	if clean.Degrade != 0 || clean.KShed != 0 || clean.ForcePQ || c.StampedRequests() != 0 {
		t.Fatalf("level 0 stamped the request: %+v", clean)
	}

	for i := 0; i < c.NumLevels(); i++ { // drive to the deepest rung
		feedWindow(c, cfg, b, 2.0)
	}
	req := &workload.Request{Shape: workload.DefaultShape()}
	c.Stamp(req)
	if req.Degrade == 0 || req.KShed == 0 || !req.ForcePQ {
		t.Fatalf("deepest rung left knobs unstamped: %+v", req)
	}
	def := workload.DefaultShape()
	if req.Shape.TopK >= def.TopK || req.Shape.InputTokens >= def.InputTokens {
		t.Fatalf("shape did not shrink: %+v vs %+v", req.Shape, def)
	}
	if req.Shape.OutputTokens != def.OutputTokens {
		t.Fatalf("output tokens moved: %d", req.Shape.OutputTokens)
	}
	if c.StampedRequests() != 1 || c.MeanShed() == 0 {
		t.Fatalf("stamp accounting: %d stamped, mean shed %v", c.StampedRequests(), c.MeanShed())
	}
	// Degrade merges by max with an upstream (resilient-router) shed.
	preShed := &workload.Request{Shape: workload.DefaultShape(), Degrade: 0.9}
	c.Stamp(preShed)
	if preShed.Degrade != 0.9 {
		t.Fatalf("stamp lowered a deeper upstream shed to %v", preShed.Degrade)
	}
}

// TestObserveSkipsUnserved: rejected or failed requests (no first
// token) must not feed the monitor — their damage is visible through
// the requests that did complete.
func TestObserveSkipsUnserved(t *testing.T) {
	b := StageBudget{Retrieval: 100 * time.Millisecond, Generation: 100 * time.Millisecond}
	cfg := Config{Window: 2}
	_, c := mustController(t, cfg, []StageBudget{b}, []float64{1})
	for i := 0; i < 10*cfg.window(); i++ {
		c.Observe(&workload.Request{}) // never served
	}
	if c.Level() != 0 {
		t.Fatalf("unserved requests moved the level to %d", c.Level())
	}
}

// TestTimeInBrownout: virtual time above level 0 accumulates across
// enter/exit transitions and includes the open interval.
func TestTimeInBrownout(t *testing.T) {
	b := StageBudget{Retrieval: 100 * time.Millisecond, Generation: 100 * time.Millisecond}
	cfg := Config{Window: 2, RestoreWindows: 1}
	sim, c := mustController(t, cfg, []StageBudget{b}, []float64{1})

	feedWindow(c, cfg, b, 2.0) // enter brownout at t=0
	if got := c.TimeInBrownout(des.Time(5 * time.Second)); got != 5*time.Second {
		t.Fatalf("open interval: %v, want 5s", got)
	}
	// Exit at t=3s: the closed interval is banked and the clock stops.
	sim.At(des.Time(3*time.Second), func() { feedWindow(c, cfg, b, 0.1) })
	for sim.Step() {
	}
	if c.Level() != 0 {
		t.Fatalf("level %d after restore", c.Level())
	}
	if got := c.TimeInBrownout(des.Time(10 * time.Second)); got != 3*time.Second {
		t.Fatalf("banked interval: %v, want 3s", got)
	}
}

// TestNewControllerValidation rejects the configurations that would
// silently pin the ladder or index out of range.
func TestNewControllerValidation(t *testing.T) {
	ok := StageBudget{Retrieval: time.Second, Generation: time.Second}
	cases := []struct {
		name    string
		sim     *des.Sim
		budgets []StageBudget
		bias    []float64
	}{
		{"nil sim", nil, []StageBudget{ok}, []float64{1}},
		{"no budgets", &des.Sim{}, nil, nil},
		{"length mismatch", &des.Sim{}, []StageBudget{ok, ok}, []float64{1}},
		{"zero retrieval budget", &des.Sim{}, []StageBudget{{Generation: time.Second}}, []float64{1}},
		{"zero generation budget", &des.Sim{}, []StageBudget{{Retrieval: time.Second}}, []float64{1}},
		{"negative bias", &des.Sim{}, []StageBudget{ok}, []float64{-0.1}},
		{"bias above one", &des.Sim{}, []StageBudget{ok}, []float64{1.1}},
	}
	for _, tc := range cases {
		if _, err := NewController(tc.sim, Config{}, tc.budgets, tc.bias); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewController(&des.Sim{}, Config{}, []StageBudget{ok}, []float64{0}); err != nil {
		t.Errorf("zero bias (never shed) rejected: %v", err)
	}
}
