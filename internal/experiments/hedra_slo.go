package experiments

import (
	"fmt"
	"strings"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/rag"
)

// The §VI-D replication uses two different index builds, as the paper
// does: HedraRAG runs on its own sqrt(N)-cluster index (nlist≈12k,
// nprobe=256 — the setting where the paper measures 35 RPS CPU-only
// retrieval), whose coarse clusters flatten per-cluster access skew to
// Wiki-All-like levels; VectorLiteRAG keeps its fine 131k-cluster index
// and raises nprobe to 6144 to match retrieval accuracy.

// hedraIndexSpec is HedraRAG's sqrt(N)-cluster build.
func hedraIndexSpec() dataset.Spec {
	s := dataset.Orcas1K
	s.Name = "ORCAS 1K (sqrtN clusters)"
	s.NList = 12288
	s.NProbe = 256
	s.SLOSearch = 400 * time.Millisecond
	s.SkewS = dataset.WikiAll.SkewS
	s.QueryNoise = dataset.WikiAll.QueryNoise
	return s
}

// vliteHeavySpec is VectorLiteRAG's accuracy-matched configuration.
func vliteHeavySpec() dataset.Spec {
	s := dataset.Orcas1K
	s.Name = "ORCAS 1K (nprobe 6144)"
	s.NProbe = 6144
	s.SLOSearch = 400 * time.Millisecond
	return s
}

// Fig13Result reproduces the HedraRAG comparison (Fig. 13): TTFT and
// E2E latency across arrival rates, plus the two partitioning points.
type Fig13Result struct {
	HedraRho, VLiteRho float64
	Points             []SweepPoint
}

// Fig13 runs both systems, each on its own index build.
func Fig13(cfg Config) (*Fig13Result, error) {
	dep := deployments()[1] // Qwen3-32B + H100 node
	rates, _, err := ratesFor(dep.Node, dep.Model, cfg.Quick)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{}
	for _, sys := range []struct {
		kind rag.Kind
		spec dataset.Spec
	}{
		{rag.HedraRAG, hedraIndexSpec()},
		{rag.VLiteRAG, vliteHeavySpec()},
	} {
		w, err := WorkloadFor(sys.spec)
		if err != nil {
			return nil, err
		}
		points, err := sweep(cfg, dep, w, []rag.Kind{sys.kind}, rates, func(o *rag.Options) {
			o.SLOSearch = 400 * time.Millisecond
		})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, points...)
		for _, p := range points {
			switch p.Kind {
			case rag.HedraRAG:
				res.HedraRho = p.Rho
			case rag.VLiteRAG:
				res.VLiteRho = p.Rho
			}
		}
	}
	return res, nil
}

// Render formats the comparison.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 13: comparison with HedraRAG (sqrt(N)-cluster setting, SLO_search=400ms)\n")
	fmt.Fprintf(&b, "partitioning points: HedraRAG rho=%.3f (paper 0.73), vLiteRAG rho=%.3f (paper 0.315)\n",
		r.HedraRho, r.VLiteRho)
	t := &table{header: []string{"system", "rate", "TTFT p90", "E2E mean", "attainment"}}
	for _, p := range r.Points {
		t.add(string(p.Kind), fmt.Sprintf("%.1f", p.Rate), ms(p.TTFTP90), sec(p.E2EMean), f2(p.Att))
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig16Result reproduces the SLO_search sensitivity study (Fig. 16) and
// Table II (memory split per SLO).
type Fig16Result struct {
	Rows  []Fig16Row
	Table []Table2Row
}

// Fig16Row is one (SLO, system, rate) sample.
type Fig16Row struct {
	SLO     time.Duration
	Kind    rag.Kind
	Rate    float64
	TTFTP95 time.Duration
	TTFTP90 time.Duration
}

// Table2Row is one row of Table II.
type Table2Row struct {
	SLO       time.Duration
	IndexGB   float64
	ParamGB   float64
	KVCacheGB float64
	Rho       float64
}

// Fig16 sweeps SLO_search in {100,150,200,250} ms on Qwen3-32B +
// ORCAS-1K.
func Fig16(cfg Config) (*Fig16Result, error) {
	w, err := WorkloadFor(dataset.Orcas1K)
	if err != nil {
		return nil, err
	}
	dep := deployments()[1]
	slos := []time.Duration{100 * time.Millisecond, 150 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond}
	if cfg.Quick {
		slos = []time.Duration{100 * time.Millisecond, 250 * time.Millisecond}
	}
	kinds := []rag.Kind{rag.CPUOnly, rag.AllGPU, rag.VLiteRAG}
	rates, _, err := ratesFor(dep.Node, dep.Model, cfg.Quick)
	if err != nil {
		return nil, err
	}
	res := &Fig16Result{}
	node := hw.H100Node()
	for _, slo := range slos {
		points, err := sweep(cfg, dep, w, kinds, rates, func(o *rag.Options) {
			o.SLOSearch = slo
		})
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			res.Rows = append(res.Rows, Fig16Row{
				SLO: slo, Kind: p.Kind, Rate: p.Rate, TTFTP95: p.TTFTP95, TTFTP90: p.TTFTP90,
			})
		}
		// Compute the Table-II memory split from a single partitioned run.
		r, err := rag.Run(rag.Options{
			Node: dep.Node, Model: dep.Model, W: w, Kind: rag.VLiteRAG,
			Rate: rates[0], Seed: cfg.Seed, Duration: runDuration(true),
			SLOSearch: slo,
		})
		if err != nil {
			return nil, err
		}
		perGPUShard := float64(r.PlanBytes) / float64(node.NumGPUs)
		paramGB := float64(dep.Model.WeightBytesPerGPU()) / 1e9
		kvGB := (float64(node.GPU.UsableMem()) - float64(dep.Model.WeightBytesPerGPU()) - perGPUShard) / 1e9
		res.Table = append(res.Table, Table2Row{
			SLO: slo, IndexGB: perGPUShard / 1e9, ParamGB: paramGB, KVCacheGB: kvGB, Rho: r.Rho,
		})
	}
	return res, nil
}

// Render formats the sensitivity curves and Table II.
func (r *Fig16Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 16: P95 (and P90) TTFT under different SLO_search targets (Qwen3-32B + ORCAS-1K)\n")
	t := &table{header: []string{"SLO_search", "system", "rate", "TTFT p95", "TTFT p90"}}
	for _, row := range r.Rows {
		t.add(ms(row.SLO), string(row.Kind), fmt.Sprintf("%.1f", row.Rate), ms(row.TTFTP95), ms(row.TTFTP90))
	}
	b.WriteString(t.String())
	b.WriteString("\nTable II: SLO targets and per-GPU memory split (vLiteRAG)\n")
	t2 := &table{header: []string{"SLO (ms)", "Index (GB)", "Param (GB)", "KV Cache (GB)", "rho"}}
	for _, row := range r.Table {
		t2.add(fmt.Sprintf("%.0f", row.SLO.Seconds()*1000), f2(row.IndexGB), f2(row.ParamGB), f2(row.KVCacheGB), f3(row.Rho))
	}
	b.WriteString(t2.String())
	return b.String()
}
