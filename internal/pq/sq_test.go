package pq

import (
	"math"
	"testing"

	"vectorliterag/internal/rng"
	"vectorliterag/internal/vecmath"
)

func TestTrainSQValidation(t *testing.T) {
	if _, err := TrainSQ(nil, 4); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := TrainSQ([]float32{1, 2, 3}, 2); err == nil {
		t.Fatal("ragged data accepted")
	}
	if _, err := TrainSQ([]float32{1, 2}, 0); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestSQRoundTripAccuracy(t *testing.T) {
	r := rng.New(1)
	data := randomMatrix(r, 500, 8)
	q, err := TrainSQ(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.CodeSize() != 8 {
		t.Fatalf("code size %d", q.CodeSize())
	}
	// 8-bit linear quantization: reconstruction error per dim is bounded
	// by half a step of the trained range.
	var errSum, sigSum float64
	for i := 0; i < 200; i++ {
		v := data[i*8 : (i+1)*8]
		rec := q.Decode(q.Encode(v, nil))
		errSum += float64(vecmath.SquaredL2(v, rec))
		sigSum += float64(vecmath.Norm2(v))
	}
	if ratio := errSum / sigSum; ratio > 0.001 {
		t.Fatalf("SQ reconstruction error ratio %v too high for 8-bit codes", ratio)
	}
}

func TestSQMuchMoreAccurateThanPQ(t *testing.T) {
	// The paper's trade-off: SQ gives limited compression (4x) but high
	// fidelity; PQ compresses 16-64x with more distortion.
	r := rng.New(2)
	data := randomMatrix(r, 600, 8)
	sq, err := TrainSQ(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Train(data, Config{Dim: 8, M: 4, K: 32, Iters: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sqErr, pqErr float64
	for i := 0; i < 100; i++ {
		v := data[i*8 : (i+1)*8]
		sqErr += float64(vecmath.SquaredL2(v, sq.Decode(sq.Encode(v, nil))))
		pqErr += float64(vecmath.SquaredL2(v, p.Decode(p.Encode(v, nil))))
	}
	if sqErr >= pqErr {
		t.Fatalf("SQ error %v not below PQ error %v", sqErr, pqErr)
	}
	if sq.CodeSize() <= p.CodeSize() {
		t.Fatalf("SQ code %dB should cost more than PQ code %dB", sq.CodeSize(), p.CodeSize())
	}
}

func TestSQDistanceMatchesDecode(t *testing.T) {
	r := rng.New(3)
	data := randomMatrix(r, 300, 8)
	q, _ := TrainSQ(data, 8)
	query := randomMatrix(r, 1, 8)
	for i := 0; i < 50; i++ {
		code := q.Encode(data[i*8:(i+1)*8], nil)
		direct := float64(q.Distance(query, code))
		viaDecode := float64(vecmath.SquaredL2(query, q.Decode(code)))
		if math.Abs(direct-viaDecode) > 1e-3 {
			t.Fatalf("Distance %v != decode distance %v", direct, viaDecode)
		}
	}
}

func TestSQScanFindsNearest(t *testing.T) {
	r := rng.New(4)
	data := randomMatrix(r, 400, 8)
	q, _ := TrainSQ(data, 8)
	codes := make([]byte, 0, 400*8)
	for i := 0; i < 400; i++ {
		codes = append(codes, q.Encode(data[i*8:(i+1)*8], nil)...)
	}
	query := data[33*8 : 34*8]
	top := vecmath.NewTopK(5)
	q.ScanCodes(query, codes, 0, top)
	res := top.Sorted()
	if res[0].Index != 33 {
		t.Fatalf("self not ranked first: %+v", res)
	}
}

func TestSQClampsOutOfRange(t *testing.T) {
	q, _ := TrainSQ([]float32{0, 0, 1, 1}, 2)
	code := q.Encode([]float32{-5, 10}, nil)
	if code[0] != 0 || code[1] != 255 {
		t.Fatalf("out-of-range values not clamped: %v", code)
	}
}
