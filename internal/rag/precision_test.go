package rag

import "testing"

func TestRunPrecisionEndToEnd(t *testing.T) {
	plain, err := Run(baseOpts(t, VLiteRAG, 12))
	if err != nil {
		t.Fatal(err)
	}
	if plain.SQClusters != 0 || plain.NVMeClusters != 0 || plain.RecallGain != 0 {
		t.Fatalf("run without Precision carries precision state: %+v", plain)
	}
	opts := baseOpts(t, VLiteRAG, 12)
	opts.Precision = &PrecisionOptions{}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.SQClusters == 0 {
		t.Fatal("default budget upgraded no clusters")
	}
	if res.RecallGain <= 0 {
		t.Fatalf("served recall gain %v not positive with %d SQ clusters", res.RecallGain, res.SQClusters)
	}
	if res.PlanBytes <= plain.PlanBytes {
		t.Fatalf("refined plan bytes %d not above placement-only %d: SQ upgrades must be paid for",
			res.PlanBytes, plain.PlanBytes)
	}
	// Same placement decision underneath: the refinement spends leftover
	// budget, it does not move the coverage point.
	if res.Rho != plain.Rho {
		t.Fatalf("refinement moved the placement: rho %v vs %v", res.Rho, plain.Rho)
	}
	// At this toy scale the contention-relief channel that makes SQ8 win
	// attainment is absent, and the extra SQ kernel launch plus NVMe
	// fetches can nudge a request across the SLO line — allow a sliver.
	// The precision experiment pins the >= claim at realistic load.
	if res.Summary.Attainment < 0.99*plain.Summary.Attainment {
		t.Fatalf("precision attainment %v fell past 99%% of placement-only %v",
			res.Summary.Attainment, plain.Summary.Attainment)
	}
}

func TestRunPrecisionDeterministic(t *testing.T) {
	opts := baseOpts(t, VLiteRAG, 12)
	opts.Precision = &PrecisionOptions{}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecallGain != b.RecallGain || a.SQClusters != b.SQClusters ||
		a.NVMeClusters != b.NVMeClusters || a.Summary.Attainment != b.Summary.Attainment {
		t.Fatalf("precision run not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunPrecisionValidation(t *testing.T) {
	for _, kind := range []Kind{AllGPU, CPUOnly, DedGPU, HedraRAG} {
		opts := baseOpts(t, kind, 12)
		opts.Precision = &PrecisionOptions{}
		if _, err := Run(opts); err == nil {
			t.Errorf("%s accepted Precision; only %s plans carry a placement to refine", kind, VLiteRAG)
		}
	}
	bad := []PrecisionOptions{
		{SQBudgetFrac: -0.1},
		{SQBudgetFrac: 1.5},
		{NVMeColdShare: -0.1},
		{NVMeColdShare: 1},
	}
	for _, po := range bad {
		opts := baseOpts(t, VLiteRAG, 12)
		p := po
		opts.Precision = &p
		if _, err := Run(opts); err == nil {
			t.Errorf("invalid options accepted: %+v", po)
		}
	}
}

func TestRunClusterPrecisionAggregates(t *testing.T) {
	opts := baseOpts(t, VLiteRAG, 20)
	opts.Precision = &PrecisionOptions{}
	res, err := RunCluster(opts, 2, "round-robin")
	if err != nil {
		t.Fatal(err)
	}
	if res.SQClusters == 0 || res.RecallGain <= 0 {
		t.Fatalf("cluster run lost the precision outcome: sq=%d gain=%v", res.SQClusters, res.RecallGain)
	}
	// The sharded engine must agree bit for bit (identical schedule
	// contract), including the aggregated recall gain.
	sharded := opts
	sharded.NetDelay = DefaultNetDelay
	sharded.Workers = 2
	sr, err := RunCluster(sharded, 2, "round-robin")
	if err != nil {
		t.Fatal(err)
	}
	if sr.SQClusters != res.SQClusters || sr.NVMeClusters != res.NVMeClusters {
		t.Fatalf("sharded precision counts diverged: %d/%d vs %d/%d",
			sr.SQClusters, sr.NVMeClusters, res.SQClusters, res.NVMeClusters)
	}
	if sr.RecallGain <= 0 {
		t.Fatalf("sharded run lost the recall gain: %v", sr.RecallGain)
	}
}

func TestRunMultiTenantPrecision(t *testing.T) {
	plain, err := RunMultiTenant(mtOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if plain.RecallGain != 0 {
		t.Fatalf("plain multi-tenant run carries recall gain %v", plain.RecallGain)
	}
	opts := mtOpts(t)
	opts.Precision = &PrecisionOptions{}
	res, err := RunMultiTenant(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecallGain < 0 {
		t.Fatalf("negative served recall gain %v", res.RecallGain)
	}
	if len(res.Tenants) != len(plain.Tenants) {
		t.Fatalf("tenant count changed: %d vs %d", len(res.Tenants), len(plain.Tenants))
	}
	for i := range res.Tenants {
		if res.Tenants[i].Summary.N != plain.Tenants[i].Summary.N {
			t.Errorf("tenant %s request count moved: %d vs %d",
				res.Tenants[i].Name, res.Tenants[i].Summary.N, plain.Tenants[i].Summary.N)
		}
	}
	// Invalid precision options are rejected up front.
	bad := mtOpts(t)
	bad.Precision = &PrecisionOptions{SQBudgetFrac: -1}
	if _, err := RunMultiTenant(bad); err == nil {
		t.Error("negative SQBudgetFrac accepted")
	}
}
