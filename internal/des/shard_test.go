package des

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// starFixture builds the topology the serving layer uses — a front
// shard fanning out to R replica shards over forward links, with
// notice links back — and drives it with a tie-heavy synthetic
// schedule: arrival gaps drawn from {0,0,1,2} ns so same-instant
// router forwards and same-instant completion notices are the common
// case, not the corner case.
type starFixture struct {
	group    *Group
	front    *Shard
	reps     []*Shard
	fwd      []*Link
	back     []*Link
	inflight []int

	// logs capture the executed schedule: one append-only log per
	// shard, owner-written only.
	frontLog []int64
	repLogs  [][]int64

	arrivals int
	total    int
	next     int
	lcg      uint64
	ll       bool // least-loaded routing (reads inflight feedback)
}

type starMsg struct {
	id  int
	rep int
}

func newStar(replicas, total int, ll bool, fwdDelay, backDelay Time) *starFixture {
	f := &starFixture{
		group:    NewGroup(),
		total:    total,
		lcg:      0x9e3779b97f4a7c15,
		ll:       ll,
		inflight: make([]int, replicas),
		repLogs:  make([][]int64, replicas),
	}
	f.front = f.group.AddShard()
	for i := 0; i < replicas; i++ {
		i := i
		rep := f.group.AddShard()
		f.reps = append(f.reps, rep)
		fwd, err := Connect(f.front, rep, fwdDelay, func(arg any) {
			m := arg.(*starMsg)
			f.repLogs[i] = append(f.repLogs[i], rep.Sim.Now(), int64(m.id))
			// One hop of local "service", then the completion notice.
			rep.Sim.AfterArg(1, func(a any) {
				mm := a.(*starMsg)
				f.back[i].Send(rep.Sim.Now()+backDelay, mm)
			}, m)
		})
		if err != nil {
			panic(err)
		}
		back, err := Connect(rep, f.front, backDelay, func(arg any) {
			m := arg.(*starMsg)
			f.inflight[m.rep]--
			f.frontLog = append(f.frontLog, f.front.Sim.Now(), int64(m.id), int64(m.rep))
		})
		if err != nil {
			panic(err)
		}
		f.fwd = append(f.fwd, fwd)
		f.back = append(f.back, back)
	}
	f.front.Sim.At(0, f.arrive)
	return f
}

// gap returns the next tie-heavy inter-arrival gap: 0, 0, 1, or 2 ns.
func (f *starFixture) gap() Time {
	f.lcg = f.lcg*6364136223846793005 + 1442695040888963407
	return Time((f.lcg >> 33) % 4 % 3) // {0,1,2} with 0 twice as likely
}

func (f *starFixture) arrive() {
	now := f.front.Sim.Now()
	pick := f.next % len(f.reps)
	if f.ll {
		for k := 1; k < len(f.reps); k++ {
			c := (f.next + k) % len(f.reps)
			if f.inflight[c] < f.inflight[pick] {
				pick = c
			}
		}
	}
	f.next++
	f.inflight[pick]++
	f.frontLog = append(f.frontLog, now, int64(f.arrivals), int64(pick))
	f.fwd[pick].Send(now+f.fwd[pick].Delay(), &starMsg{id: f.arrivals, rep: pick})
	f.arrivals++
	if f.arrivals < f.total {
		f.front.Sim.At(now+f.gap(), f.arrive)
	}
}

// fingerprint hashes every shard's executed schedule.
func (f *starFixture) fingerprint() uint64 {
	h := fnv.New64a()
	put := func(vs []int64) {
		var b [8]byte
		for _, v := range vs {
			for i := range b {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	put(f.frontLog)
	for _, l := range f.repLogs {
		put(l)
	}
	return h.Sum64()
}

// TestShardDeterminismAcrossWorkers pins the tentpole property at the
// DES level: the merged schedule is bit-identical for any worker
// count, for both routing feedback modes, under heavy same-instant
// ties.
func TestShardDeterminismAcrossWorkers(t *testing.T) {
	for _, ll := range []bool{false, true} {
		var ref uint64
		var refN int
		for _, workers := range []int{1, 2, 3, 8} {
			f := newStar(8, 5000, ll, 1, 1)
			f.group.Run(1<<40, workers)
			if f.arrivals != 5000 {
				t.Fatalf("ll=%v workers=%d: %d arrivals, want 5000", ll, workers, f.arrivals)
			}
			if got := len(f.frontLog); got != 5000*3*2 {
				t.Fatalf("ll=%v workers=%d: front log %d entries, want %d (every arrival routed and every notice returned)",
					ll, workers, got, 5000*3*2)
			}
			fp := f.fingerprint()
			if workers == 1 {
				ref, refN = fp, len(f.frontLog)
				continue
			}
			if fp != ref || len(f.frontLog) != refN {
				t.Fatalf("ll=%v workers=%d: schedule fingerprint %x != sequential %x", ll, workers, fp, ref)
			}
		}
	}
}

// TestShardExchangeRaceStress is the targeted stress test for the
// cross-shard exchange: many shards, minimum (1 ns) lookahead, and a
// tie-heavy arrival schedule, run with more workers than cores. Under
// `go test -race` this is the test that exercises the coordinator's
// synchronization — horizon publication, link hand-off, idle flags,
// and the quiescence double-scan — with maximal overlap.
func TestShardExchangeRaceStress(t *testing.T) {
	f := newStar(15, 20000, true, 1, 1)
	f.group.Run(1<<40, 8)
	if f.arrivals != 20000 {
		t.Fatalf("%d arrivals, want 20000", f.arrivals)
	}
	want := 20000 * 3 * 2
	if len(f.frontLog) != want {
		t.Fatalf("front log %d entries, want %d", len(f.frontLog), want)
	}
	// The stress run must also match the sequential schedule exactly.
	seq := newStar(15, 20000, true, 1, 1)
	seq.group.Run(1<<40, 1)
	if f.fingerprint() != seq.fingerprint() {
		t.Fatal("8-worker stress schedule diverged from sequential")
	}
}

// TestShardDeadlineAndDrain checks that messages timestamped past the
// deadline are never delivered during the run and come back via Drain
// in send order.
func TestShardDeadlineAndDrain(t *testing.T) {
	g := NewGroup()
	a := g.AddShard()
	b := g.AddShard()
	var got []Time
	l, err := Connect(a, b, 10, func(arg any) { got = append(got, b.Sim.Now()) })
	if err != nil {
		t.Fatal(err)
	}
	// Three sends: two deliverable, one past the deadline.
	a.Sim.At(0, func() {
		l.Send(10, nil)
		l.Send(50, nil)
		l.Send(200, nil)
	})
	g.Run(100, 2)
	if len(got) != 2 || got[0] != 10 || got[1] != 50 {
		t.Fatalf("delivered %v, want [10 50]", got)
	}
	var leftover []Time
	l.Drain(func(at Time, _ any) { leftover = append(leftover, at) })
	if len(leftover) != 1 || leftover[0] != 200 {
		t.Fatalf("drained %v, want [200]", leftover)
	}
	// Drain is consuming: a second pass sees nothing.
	leftover = leftover[:0]
	l.Drain(func(at Time, _ any) { leftover = append(leftover, at) })
	if len(leftover) != 0 {
		t.Fatalf("second drain returned %v", leftover)
	}
}

// TestShardQuiescenceTerminatesFastDeadline checks that a deadline far
// past the last event does not cost horizon-climbing rounds: the run
// must quiesce as soon as the event graph empties, even with a
// deadline ~2^50 ns (two weeks of virtual time) and 1 ns lookahead.
func TestShardQuiescenceTerminatesFastDeadline(t *testing.T) {
	f := newStar(4, 200, false, 1, 1)
	f.group.Run(1<<50, 2) // would be ~2^50 null-message rounds without quiescence detection
	if f.arrivals != 200 {
		t.Fatalf("%d arrivals, want 200", f.arrivals)
	}
}

func TestShardLookaheadViolationPanics(t *testing.T) {
	g := NewGroup()
	a := g.AddShard()
	b := g.AddShard()
	l, err := Connect(a, b, 5, func(any) {})
	if err != nil {
		t.Fatal(err)
	}
	a.Sim.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("send inside lookahead window did not panic")
			}
		}()
		l.Send(104, nil) // now+4 < now+5
	})
	g.Run(1000, 1)
}

func TestConnectValidation(t *testing.T) {
	g := NewGroup()
	a := g.AddShard()
	b := g.AddShard()
	if _, err := Connect(a, b, 0, func(any) {}); err == nil {
		t.Error("zero delay accepted")
	}
	if _, err := Connect(a, b, 1, nil); err == nil {
		t.Error("nil deliver accepted")
	}
	if _, err := Connect(nil, b, 1, func(any) {}); err == nil {
		t.Error("nil shard accepted")
	}
	other := NewGroup().AddShard()
	if _, err := Connect(a, other, 1, func(any) {}); err == nil {
		t.Error("cross-group link accepted")
	}
	if fmt.Sprintf("%d%d", a.ID(), b.ID()) != "01" {
		t.Error("shard IDs not in creation order")
	}
}
