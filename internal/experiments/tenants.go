package experiments

import (
	"fmt"
	"strings"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/rag"
	"vectorliterag/internal/tenant"
	"vectorliterag/internal/workload"
)

// TenantsResult is the multi-tenant isolation study (beyond the paper,
// extending Algorithm 1 to shared-GPU tenancy): three tenants — gold
// and silver with steady traffic, bronze with a flash-crowd burst
// schedule — share one node under the joint HBM allocator. The fair
// arm meters admission through the FairScheduler (weighted round-robin
// with tier-aware preemption ordering); the baseline shares one
// unmetered queue. The artifact: gold's SLO attainment stays at or
// above its tier target under the FairScheduler while the shared-queue
// baseline lets the bronze burst drag it below.
type TenantsResult struct {
	Dataset  map[string]string // tenant name → dataset name
	Arms     []TenantsArm
	BurstLen time.Duration
	Period   time.Duration
}

// TenantsArm is one scheduling policy's outcome.
type TenantsArm struct {
	Name        string // "fair" or "shared-queue"
	SharedQueue bool
	Fairness    float64
	Rows        []TenantsRow
}

// TenantsRow is one tenant's outcome under one arm.
type TenantsRow struct {
	Name      string
	Tier      tenant.Tier
	Rate      float64
	Rho       float64
	Att       float64
	Target    float64
	Met       bool
	TTFTP90   time.Duration
	PeakQueue int
	N         int
}

// tenantsOpts assembles the three-tenant scenario. Rates are absolute
// for a node whose Qwen3-32B capacity measures ≈38 req/s: gold and
// silver run steady well inside capacity, bronze idles at 2.5 req/s
// but bursts to 45 req/s — transiently ~1.5× node capacity — for 15 s
// of every minute. Per-tenant search SLOs are the tenants' contracts
// (gold pays for 350 ms at 95 %, silver 500 ms at 85 %, bronze 300 ms
// at best effort).
func tenantsOpts(cfg Config, quick bool) (rag.MultiTenantOptions, time.Duration, time.Duration, error) {
	dep := deployments()[1] // Qwen3-32B on the H100 node
	goldW, err := WorkloadFor(dataset.Orcas1K)
	if err != nil {
		return rag.MultiTenantOptions{}, 0, 0, err
	}
	silverW, err := WorkloadFor(dataset.WikiAll)
	if err != nil {
		return rag.MultiTenantOptions{}, 0, 0, err
	}
	period := 60 * time.Second
	burstLen := 15 * time.Second
	duration := 240 * time.Second
	if quick {
		duration = 120 * time.Second
	}
	opts := rag.MultiTenantOptions{
		Node: dep.Node, Model: dep.Model,
		Tenants: []rag.TenantConfig{
			{Name: "gold", Tier: tenant.Gold, W: goldW, Rate: 9,
				SLOSearch: 350 * time.Millisecond},
			{Name: "silver", Tier: tenant.Silver, W: silverW, Rate: 3,
				SLOSearch: 500 * time.Millisecond},
			{Name: "bronze", Tier: tenant.Bronze, W: goldW, Rate: 2.5,
				SLOSearch:    300 * time.Millisecond,
				RateSchedule: workload.Bursts(2.5, 45, period, burstLen)},
		},
		Duration: duration, Seed: cfg.Seed,
	}
	return opts, period, burstLen, nil
}

// Tenants runs the isolation study: identical tenants, allocation, and
// arrival traces under both scheduling arms.
func Tenants(cfg Config) (*TenantsResult, error) {
	opts, period, burstLen, err := tenantsOpts(cfg, cfg.Quick)
	if err != nil {
		return nil, err
	}
	res := &TenantsResult{
		Dataset: map[string]string{
			"gold":   dataset.Orcas1K.Name,
			"silver": dataset.WikiAll.Name,
			"bronze": dataset.Orcas1K.Name,
		},
		Period:   period,
		BurstLen: burstLen,
	}
	for _, arm := range []struct {
		name   string
		shared bool
	}{{"fair", false}, {"shared-queue", true}} {
		o := opts
		o.SharedQueue = arm.shared
		r, err := rag.RunMultiTenant(o)
		if err != nil {
			return nil, fmt.Errorf("tenants %s arm: %w", arm.name, err)
		}
		a := TenantsArm{Name: arm.name, SharedQueue: arm.shared, Fairness: r.Fairness}
		for _, tr := range r.Tenants {
			a.Rows = append(a.Rows, TenantsRow{
				Name: tr.Name, Tier: tr.Tier, Rate: tr.Rate,
				Rho: tr.Alloc.Rho, Att: tr.Summary.Attainment,
				Target: tr.Tier.Target(), Met: tr.Summary.Attainment >= tr.Tier.Target(),
				TTFTP90: tr.Summary.TTFT.P90, PeakQueue: tr.PeakQueue,
				N: tr.Summary.N,
			})
		}
		res.Arms = append(res.Arms, a)
	}
	return res, nil
}

// Arm returns the named arm ("fair" or "shared-queue").
func (r *TenantsResult) Arm(name string) *TenantsArm {
	for i := range r.Arms {
		if r.Arms[i].Name == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// Row returns the named tenant's row within an arm.
func (a *TenantsArm) Row(name string) *TenantsRow {
	for i := range a.Rows {
		if a.Rows[i].Name == name {
			return &a.Rows[i]
		}
	}
	return nil
}

// Render formats the isolation table.
func (r *TenantsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-tenant isolation: gold/silver steady, bronze bursts (%v of every %v)\n",
		r.BurstLen, r.Period)
	b.WriteString("joint HBM allocation identical across arms; only the admission policy differs\n\n")
	t := &table{header: []string{"arm", "tenant", "tier", "rate", "rho", "attainment", "target", "met", "TTFT p90", "peak queue"}}
	for _, arm := range r.Arms {
		for _, row := range arm.Rows {
			met := "no"
			if row.Met {
				met = "yes"
			}
			t.add(arm.Name, row.Name, string(row.Tier), fmt.Sprintf("%.1f", row.Rate),
				f3(row.Rho), f3(row.Att), f2(row.Target), met, ms(row.TTFTP90),
				fmt.Sprintf("%d", row.PeakQueue))
		}
	}
	b.WriteString(t.String())
	for _, arm := range r.Arms {
		fmt.Fprintf(&b, "\n%s: Jain fairness %.3f", arm.Name, arm.Fairness)
	}
	fair, shared := r.Arm("fair"), r.Arm("shared-queue")
	if fair != nil && shared != nil {
		g1, g2 := fair.Row("gold"), shared.Row("gold")
		if g1 != nil && g2 != nil {
			if g1.Met && !g2.Met {
				b.WriteString("\nbronze burst contained: gold holds its tier target only under the FairScheduler ✓\n")
			} else {
				fmt.Fprintf(&b, "\ngold attainment: fair %.3f vs shared-queue %.3f (target %.2f)\n",
					g1.Att, g2.Att, g1.Target)
			}
		}
	}
	return b.String()
}

// CSV exports one row per (arm, tenant).
func (r *TenantsResult) CSV() string {
	rows := [][]string{}
	for _, arm := range r.Arms {
		for _, row := range arm.Rows {
			rows = append(rows, []string{
				arm.Name, row.Name, string(row.Tier),
				fmt.Sprintf("%.1f", row.Rate),
				fmt.Sprintf("%.4f", row.Rho),
				fmt.Sprintf("%.4f", row.Att),
				fmt.Sprintf("%.2f", row.Target),
				fmt.Sprintf("%t", row.Met),
				fmt.Sprintf("%.6f", row.TTFTP90.Seconds()),
				fmt.Sprintf("%d", row.PeakQueue),
				fmt.Sprintf("%.4f", arm.Fairness),
			})
		}
	}
	return writeCSV([]string{"arm", "tenant", "tier", "rate", "rho", "attainment",
		"target", "met", "ttft_p90_s", "peak_queue", "jain_fairness"}, rows)
}
