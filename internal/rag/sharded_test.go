package rag

import (
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"testing"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/workload"
)

// recordsDigest hashes the schedule-determined content of a run — every
// per-request record's identity and virtual timestamps — so two runs
// compare bit-for-bit while ignoring the wall-clock fields.
func recordsDigest(reqs []workload.Request) uint64 {
	h := fnv.New64a()
	var buf []byte
	for _, r := range reqs {
		buf = fmt.Appendf(buf[:0], "%d|%d|%d|%d|%d|%d|%d|%d|%d|%x\n",
			r.ID, r.Query, r.Tenant, r.ArrivalAt, r.SearchStart,
			r.SearchDone, r.LLMStart, r.FirstToken, r.Done, r.HitRate)
		h.Write(buf)
	}
	return h.Sum64()
}

func shardedClusterOpts(t *testing.T, seed uint64, workers int) Options {
	o := baseOpts(t, VLiteRAG, 24)
	o.Seed = seed
	o.Duration = 20 * time.Second
	o.Warmup = 5 * time.Second
	o.Drain = 40 * time.Second
	o.Workers = workers
	o.NetDelay = time.Millisecond
	o.ProfileQueries = 1000
	return o
}

// TestShardedClusterDeterministicAcrossWorkers is the tentpole's
// property test: for every seed and routing policy, the sharded
// cluster's merged schedule — every request record, the aggregate
// summary, and the per-replica breakdown — is bit-identical whether
// the shards execute on 1, 2, 3, or 8 worker goroutines.
func TestShardedClusterDeterministicAcrossWorkers(t *testing.T) {
	for _, policy := range serve.Policies() {
		for seed := uint64(1); seed <= 5; seed++ {
			ref, err := RunCluster(shardedClusterOpts(t, seed, 1), 3, policy)
			if err != nil {
				t.Fatal(err)
			}
			refDigest := recordsDigest(ref.Requests)
			for _, workers := range []int{2, 3, 8} {
				res, err := RunCluster(shardedClusterOpts(t, seed, workers), 3, policy)
				if err != nil {
					t.Fatal(err)
				}
				if got := recordsDigest(res.Requests); got != refDigest {
					t.Fatalf("%s seed=%d workers=%d: record digest %x != sequential %x",
						policy, seed, workers, got, refDigest)
				}
				if res.Summary != ref.Summary {
					t.Fatalf("%s seed=%d workers=%d: summary diverged from sequential", policy, seed, workers)
				}
				for i := range ref.PerReplica {
					if res.PerReplica[i].Submitted != ref.PerReplica[i].Submitted ||
						res.PerReplica[i].Summary != ref.PerReplica[i].Summary ||
						res.PerReplica[i].AvgBatch != ref.PerReplica[i].AvgBatch {
						t.Fatalf("%s seed=%d workers=%d: replica %d diverged from sequential",
							policy, seed, workers, i)
					}
				}
			}
		}
	}
}

// TestShardedClusterMergesAllArrivals pins the record merge: the
// restamped IDs are the dense front arrival order, every routed
// request — including any still in network transit at the deadline —
// lands in exactly one slot.
func TestShardedClusterMergesAllArrivals(t *testing.T) {
	res, err := RunCluster(shardedClusterOpts(t, 1, 2), 3, serve.LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != len(res.Requests) || res.Generated < 300 {
		t.Fatalf("generated %d, records %d", res.Generated, len(res.Requests))
	}
	sub := 0
	for _, rr := range res.PerReplica {
		sub += rr.Submitted
	}
	if sub != res.Generated {
		t.Fatalf("replica submissions %d != arrivals %d", sub, res.Generated)
	}
	for i, r := range res.Requests {
		if r.ID != i {
			t.Fatalf("record %d has ID %d; merge left a hole or duplicate", i, r.ID)
		}
		if r.ArrivalAt < 0 || (i > 0 && r.ArrivalAt < res.Requests[i-1].ArrivalAt) {
			t.Fatalf("record %d out of arrival order", i)
		}
	}
	if res.Workers != 2 || res.NetDelay != time.Millisecond {
		t.Fatalf("execution config not echoed: workers=%d netdelay=%v", res.Workers, res.NetDelay)
	}
}

// TestShardedClusterDriftSafe checks a drift trace runs on the sharded
// engine (rotation lives on the front timeline) and restores the
// workload's rotation afterwards.
func TestShardedClusterDriftSafe(t *testing.T) {
	o := shardedClusterOpts(t, 3, 4)
	before := o.W.PopularityRotation()
	o.Drift = []dataset.DriftEvent{{At: 8 * time.Second, Rotate: o.W.DefaultDriftRotation()}}
	ref, err := RunCluster(o, 2, serve.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.W.PopularityRotation(); got != before {
		t.Fatalf("rotation %d leaked out of the run (was %d)", got, before)
	}
	res, err := RunCluster(o, 2, serve.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if recordsDigest(res.Requests) != recordsDigest(ref.Requests) {
		t.Fatal("drifted sharded run not reproducible")
	}
}

// TestRunIgnoresWorkers pins that single-node Run is untouched by the
// parallelism knobs: its schedule never shards.
func TestRunIgnoresWorkers(t *testing.T) {
	a, err := Run(baseOpts(t, CPUOnly, 10))
	if err != nil {
		t.Fatal(err)
	}
	o := baseOpts(t, CPUOnly, 10)
	o.Workers = 8
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if recordsDigest(a.Requests) != recordsDigest(b.Requests) {
		t.Fatal("Run's schedule changed with Workers set")
	}
}

func TestShardedClusterValidation(t *testing.T) {
	o := baseOpts(t, CPUOnly, 10)
	o.NetDelay = -time.Millisecond
	if _, err := RunCluster(o, 2, serve.RoundRobin); err == nil {
		t.Error("negative NetDelay accepted")
	}
	mo := mtOpts(t)
	mo.NetDelay = -time.Millisecond
	if _, err := RunMultiTenant(mo); err == nil {
		t.Error("negative tenant NetDelay accepted")
	}
	mo = mtOpts(t)
	mo.Replicas = 2
	mo.Policy = "bogus"
	if _, err := RunMultiTenant(mo); err == nil {
		t.Error("unknown policy accepted on sharded tenants path")
	}
}

func shardedMTOpts(t *testing.T, seed uint64, workers int) MultiTenantOptions {
	o := mtOpts(t)
	o.Seed = seed
	o.Duration = 20 * time.Second
	o.Warmup = 5 * time.Second
	o.Drain = 40 * time.Second
	o.Replicas = 2
	o.Workers = workers
	o.ProfileQueries = 1000
	return o
}

// TestShardedTenantsDeterministicAcrossWorkers extends the property
// test to the replicated multi-tenant engine: per-tenant summaries,
// fairness, and the per-replica split are worker-count invariant.
func TestShardedTenantsDeterministicAcrossWorkers(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ref, err := RunMultiTenant(shardedMTOpts(t, seed, 1))
		if err != nil {
			t.Fatal(err)
		}
		if ref.Replicas != 2 || len(ref.PerReplicaSubmitted) != 2 {
			t.Fatalf("sharded tenants run not replicated: %+v", ref.PerReplicaSubmitted)
		}
		refDigest := recordsDigest(ref.Requests)
		for _, workers := range []int{2, 8} {
			res, err := RunMultiTenant(shardedMTOpts(t, seed, workers))
			if err != nil {
				t.Fatal(err)
			}
			if recordsDigest(res.Requests) != refDigest {
				t.Fatalf("seed=%d workers=%d: tenant records diverged from sequential", seed, workers)
			}
			if res.Fairness != ref.Fairness || res.Attainment != ref.Attainment {
				t.Fatalf("seed=%d workers=%d: fairness aggregates diverged", seed, workers)
			}
			for i := range ref.Tenants {
				if res.Tenants[i].Summary != ref.Tenants[i].Summary ||
					res.Tenants[i].PeakQueue != ref.Tenants[i].PeakQueue {
					t.Fatalf("seed=%d workers=%d: tenant %s diverged", seed, workers, ref.Tenants[i].Name)
				}
			}
			for r := range ref.PerReplicaSubmitted {
				if res.PerReplicaSubmitted[r] != ref.PerReplicaSubmitted[r] {
					t.Fatalf("seed=%d workers=%d: replica %d split diverged", seed, workers, r)
				}
			}
		}
	}
}

// TestShardedTenantsServeEveryTenant checks the replicated engine still
// serves every tenant within its tier expectations at light load.
func TestShardedTenantsServeEveryTenant(t *testing.T) {
	res, err := RunMultiTenant(shardedMTOpts(t, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 3 {
		t.Fatalf("%d tenant results", len(res.Tenants))
	}
	for _, tr := range res.Tenants {
		if tr.Summary.N == 0 {
			t.Fatalf("tenant %s served no requests", tr.Name)
		}
		if tr.Rate != mtOpts(t).Tenants[tenantIndex(t, tr.Name)].Rate {
			t.Fatalf("tenant %s reports scaled rate %v; want the nominal cluster-wide rate", tr.Name, tr.Rate)
		}
	}
}

// tenantIndex maps a tenant name back to its index in mtOpts.
func tenantIndex(t *testing.T, name string) int {
	for i, tc := range mtOpts(t).Tenants {
		if tc.Name == name {
			return i
		}
	}
	t.Fatalf("unknown tenant %s", name)
	return -1
}

// TestWorkerScalingSmoke asserts the tentpole's reason to exist: on a
// multi-core host, 4 workers finish a replicated run materially faster
// than 1. It needs real parallel hardware and quiet neighbors, so it
// runs only when SCALING_SMOKE=1 is exported (the dedicated CI step)
// and the host has at least 4 cores — never as part of plain `go test`.
func TestWorkerScalingSmoke(t *testing.T) {
	if os.Getenv("SCALING_SMOKE") != "1" {
		t.Skip("set SCALING_SMOKE=1 to run the wall-clock scaling smoke")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; scaling smoke needs >= 4", runtime.NumCPU())
	}
	opts := func(workers int) Options {
		o := baseOpts(t, CPUOnly, 400)
		o.Duration = 600 * time.Second
		o.Warmup = 60 * time.Second
		o.Drain = 60 * time.Second
		o.Workers = workers
		o.NetDelay = time.Millisecond
		return o
	}
	wall := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			res, err := RunCluster(opts(workers), 16, serve.RoundRobin)
			if err != nil {
				t.Fatal(err)
			}
			if res.ServeWall < best {
				best = res.ServeWall
			}
		}
		return best
	}
	w1, w4 := wall(1), wall(4)
	speedup := float64(w1) / float64(w4)
	t.Logf("scaling smoke: 1 worker %v, 4 workers %v, speedup %.2fx", w1, w4, speedup)
	if speedup < 1.5 {
		t.Fatalf("4-worker speedup %.2fx < 1.5x (1w=%v 4w=%v)", speedup, w1, w4)
	}
}
