package stats

import (
	"math"
	"testing"
	"testing/quick"

	"vectorliterag/internal/rng"
)

func TestBetaMeanVariance(t *testing.T) {
	b := Beta{Alpha: 2, Beta: 5}
	if got, want := b.Mean(), 2.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	wantVar := 2.0 * 5.0 / (49.0 * 8.0)
	if got := b.Variance(); math.Abs(got-wantVar) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, wantVar)
	}
}

func TestNewBetaFromMomentsRoundTrip(t *testing.T) {
	for _, tc := range []struct{ mean, variance float64 }{
		{0.5, 0.02}, {0.2, 0.01}, {0.9, 0.005}, {0.05, 0.001},
	} {
		b, err := NewBetaFromMoments(tc.mean, tc.variance)
		if err != nil {
			t.Fatalf("NewBetaFromMoments(%v,%v): %v", tc.mean, tc.variance, err)
		}
		if math.Abs(b.Mean()-tc.mean) > 1e-9 {
			t.Errorf("mean round trip: got %v want %v", b.Mean(), tc.mean)
		}
		if math.Abs(b.Variance()-tc.variance) > 1e-9 {
			t.Errorf("variance round trip: got %v want %v", b.Variance(), tc.variance)
		}
	}
}

func TestNewBetaFromMomentsRejectsInfeasible(t *testing.T) {
	if _, err := NewBetaFromMoments(0.5, 0.3); err == nil {
		t.Fatal("variance >= mean(1-mean) accepted")
	}
	if _, err := NewBetaFromMoments(1.2, 0.01); err == nil {
		t.Fatal("mean outside (0,1) accepted")
	}
	if _, err := NewBetaFromMoments(0.5, 0); err == nil {
		t.Fatal("zero variance accepted")
	}
}

func TestBetaCDFUniform(t *testing.T) {
	// Beta(1,1) is uniform: CDF(x) = x.
	b := Beta{Alpha: 1, Beta: 1}
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if got := b.CDF(x); math.Abs(got-x) > 1e-9 {
			t.Fatalf("uniform CDF(%v) = %v", x, got)
		}
	}
}

func TestBetaCDFSymmetry(t *testing.T) {
	// For Beta(a,a), CDF(0.5) = 0.5.
	for _, a := range []float64{0.5, 1, 2, 7} {
		b := Beta{Alpha: a, Beta: a}
		if got := b.CDF(0.5); math.Abs(got-0.5) > 1e-9 {
			t.Fatalf("Beta(%v,%v).CDF(0.5) = %v", a, a, got)
		}
	}
}

func TestBetaCDFMonotone(t *testing.T) {
	b := Beta{Alpha: 2.3, Beta: 4.1}
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		c := b.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF decreased at %v", x)
		}
		prev = c
	}
	if math.Abs(b.CDF(1)-1) > 1e-9 {
		t.Fatal("CDF(1) != 1")
	}
}

func TestBetaCDFAgainstSampling(t *testing.T) {
	b := Beta{Alpha: 3, Beta: 2}
	r := rng.New(9)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if r.Beta(3, 2) <= 0.6 {
			count++
		}
	}
	empirical := float64(count) / n
	if got := b.CDF(0.6); math.Abs(got-empirical) > 0.01 {
		t.Fatalf("CDF(0.6) analytic %v vs sampled %v", got, empirical)
	}
}

func TestBetaQuantileInvertsCDF(t *testing.T) {
	b := Beta{Alpha: 2, Beta: 8}
	for _, p := range []float64{0.05, 0.25, 0.5, 0.9, 0.99} {
		x := b.Quantile(p)
		if got := b.CDF(x); math.Abs(got-p) > 1e-6 {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestExpectedMinDecreasesWithBatch(t *testing.T) {
	// The first-order statistic must fall monotonically with batch size —
	// the core behaviour behind paper Fig. 10 (right).
	b := Beta{Alpha: 4, Beta: 2}
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		m := b.ExpectedMin(n)
		if m >= prev {
			t.Fatalf("ExpectedMin(%d) = %v did not decrease (prev %v)", n, m, prev)
		}
		if m < 0 || m > 1 {
			t.Fatalf("ExpectedMin(%d) = %v out of [0,1]", n, m)
		}
		prev = m
	}
}

func TestExpectedMinN1IsMean(t *testing.T) {
	b := Beta{Alpha: 3, Beta: 4}
	if got := b.ExpectedMin(1); math.Abs(got-b.Mean()) > 1e-9 {
		t.Fatalf("ExpectedMin(1) = %v, want mean %v", got, b.Mean())
	}
}

func TestExpectedMinUniformClosedForm(t *testing.T) {
	// For Uniform(0,1), E[min of n] = 1/(n+1) exactly.
	b := Beta{Alpha: 1, Beta: 1}
	for _, n := range []int{2, 3, 5, 10} {
		want := 1.0 / float64(n+1)
		if got := b.ExpectedMin(n); math.Abs(got-want) > 1e-4 {
			t.Fatalf("uniform ExpectedMin(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestExpectedMinAgainstMonteCarlo(t *testing.T) {
	b := Beta{Alpha: 5, Beta: 3}
	r := rng.New(21)
	const trials = 20000
	const batch = 8
	sum := 0.0
	for i := 0; i < trials; i++ {
		minV := 1.0
		for j := 0; j < batch; j++ {
			v := r.Beta(5, 3)
			if v < minV {
				minV = v
			}
		}
		sum += minV
	}
	mc := sum / trials
	if got := b.ExpectedMin(batch); math.Abs(got-mc) > 0.01 {
		t.Fatalf("ExpectedMin analytic %v vs Monte Carlo %v", got, mc)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if got := Percentile(s, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(s, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(s, 1); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(s, 0.25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
}

// TestPercentileRejectsNaN: one NaN sample sorts to an arbitrary
// position (NaN compares false against everything) and silently
// corrupts every quantile, so Percentile and PercentileSorted must
// panic instead of returning poisoned numbers.
func TestPercentileRejectsNaN(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on NaN input", name)
			}
		}()
		f()
	}
	nan := math.NaN()
	mustPanic("Percentile(mid NaN)", func() { Percentile([]float64{1, nan, 3}, 0.5) })
	mustPanic("Percentile(all NaN)", func() { Percentile([]float64{nan, nan}, 0.9) })
	// PercentileSorted must catch a NaN wherever the sort left it.
	mustPanic("PercentileSorted(leading NaN)", func() { PercentileSorted([]float64{nan, 1, 2}, 0.5) })
	mustPanic("PercentileSorted(trailing NaN)", func() { PercentileSorted([]float64{1, 2, nan}, 0) })
	// Infinities are ordered values, not poison: they must pass.
	if got := Percentile([]float64{1, 2, math.Inf(1)}, 0); got != 1 {
		t.Errorf("p0 with +Inf sample = %v, want 1", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	s := []float64{5, 1, 3}
	Percentile(s, 0.5)
	if s[0] != 5 || s[1] != 1 || s[2] != 3 {
		t.Fatalf("input mutated: %v", s)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Median != 3 || s.Max != 100 {
		t.Fatalf("bad summary %+v", s)
	}
	if s.Mean != 22 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestCDFPointsAndTopShare(t *testing.T) {
	// One item carries 90 of 100 total: top-25% share must be >= 0.9.
	w := []float64{90, 5, 3, 2}
	cdf := CDFPoints(w)
	if math.Abs(cdf[0]-0.9) > 1e-12 {
		t.Fatalf("cdf[0] = %v", cdf[0])
	}
	if math.Abs(cdf[3]-1.0) > 1e-12 {
		t.Fatalf("cdf[last] = %v", cdf[3])
	}
	if got := ShareOfTopFraction(w, 0.25); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("top-25%% share = %v", got)
	}
}

func TestShareOfTopFractionUniform(t *testing.T) {
	w := make([]float64, 100)
	for i := range w {
		w[i] = 1
	}
	if got := ShareOfTopFraction(w, 0.2); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("uniform top-20%% share = %v, want 0.2", got)
	}
}

func TestPiecewiseLinearInterpolation(t *testing.T) {
	p, err := NewPiecewiseLinear([]float64{1, 2, 4}, []float64{10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(1.5); got != 15 {
		t.Fatalf("Eval(1.5) = %v", got)
	}
	if got := p.Eval(3); got != 30 {
		t.Fatalf("Eval(3) = %v", got)
	}
}

func TestPiecewiseLinearClampAndExtrapolate(t *testing.T) {
	p, _ := NewPiecewiseLinear([]float64{1, 2}, []float64{10, 20})
	if got := p.Eval(0); got != 10 {
		t.Fatalf("clamp below = %v", got)
	}
	if got := p.Eval(4); got != 40 {
		t.Fatalf("extrapolate = %v", got)
	}
}

func TestPiecewiseLinearRejectsBadInput(t *testing.T) {
	if _, err := NewPiecewiseLinear([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single knot accepted")
	}
	if _, err := NewPiecewiseLinear([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("duplicate knots accepted")
	}
	if _, err := NewPiecewiseLinear([]float64{1, 2}, []float64{2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestPiecewiseSortsKnots(t *testing.T) {
	p, err := NewPiecewiseLinear([]float64{4, 1, 2}, []float64{40, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(1.5); got != 15 {
		t.Fatalf("Eval(1.5) after unsorted input = %v", got)
	}
}

func TestInverseMonotone(t *testing.T) {
	p, _ := NewPiecewiseLinear([]float64{1, 2, 4}, []float64{10, 20, 40})
	x, ok := p.InverseMonotone(25, 10)
	if !ok || math.Abs(x-2.5) > 1e-6 {
		t.Fatalf("InverseMonotone(25) = %v, %v", x, ok)
	}
	if _, ok := p.InverseMonotone(5, 10); ok {
		t.Fatal("value below minimum reported as found")
	}
}

func TestFitPiecewiseAveragesDuplicates(t *testing.T) {
	p, err := FitPiecewiseLinear([]float64{1, 1, 2}, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(1); got != 15 {
		t.Fatalf("Eval(1) = %v, want averaged 15", got)
	}
}

func TestPiecewiseEvalWithinHullProperty(t *testing.T) {
	// Property: interpolation between knots never exceeds the knot
	// y-range of its segment.
	p, _ := NewPiecewiseLinear([]float64{0, 1, 2, 3}, []float64{0, 5, 2, 9})
	if err := quick.Check(func(u uint16) bool {
		x := float64(u%3000) / 1000
		y := p.Eval(x)
		return y >= -1e-9 && y <= 9+1e-9
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Fatalf("I_0 = %v", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Fatalf("I_1 = %v", got)
	}
	// Known value: I_0.5(2,2) = 0.5.
	if got := RegIncBeta(2, 2, 0.5); math.Abs(got-0.5) > 1e-10 {
		t.Fatalf("I_0.5(2,2) = %v", got)
	}
}
