package retrieval

import (
	"testing"

	"vectorliterag/internal/des"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/workload"
)

// TestMultiTenantSingleTenantMatchesHybrid: with one tenant the shared
// engine must be the hybrid engine — same batching, same routing, same
// stage pricing — so per-request SearchDone and HitRate are
// bit-identical.
func TestMultiTenantSingleTenantMatchesHybrid(t *testing.T) {
	f := setup(t)
	plan := f.plan(t, 0.3, f.node.NumGPUs)

	run := func(mk func(cfg Config, gpus []*gpu.State) Engine) []*workload.Request {
		var sim des.Sim
		var done []*workload.Request
		cfg := f.cfg
		cfg.Sim = &sim
		cfg.Forward = func(r *workload.Request) { done = append(done, r) }
		e := mk(cfg, gpu.NewStates(f.node))
		reqs := f.requests(40)
		// Two waves so dynamic batching forms multi-request batches.
		sim.At(0, func() {
			for _, r := range reqs[:25] {
				e.Submit(r)
			}
		})
		sim.At(des.Time(1e6), func() {
			for _, r := range reqs[25:] {
				e.Submit(r)
			}
		})
		sim.Run()
		return done
	}

	hybrid := run(func(cfg Config, gpus []*gpu.State) Engine {
		return NewHybrid(cfg, plan, gpus, f.gm)
	})
	multi := run(func(cfg Config, gpus []*gpu.State) Engine {
		e, err := NewMultiTenant(cfg, []TenantSlot{{W: f.w, Plan: plan, CPUModel: cfg.CPUModel}}, gpus, f.gm)
		if err != nil {
			t.Fatal(err)
		}
		return e
	})

	if len(hybrid) != len(multi) || len(hybrid) != 40 {
		t.Fatalf("completion counts differ: hybrid %d, multi %d", len(hybrid), len(multi))
	}
	for i := range hybrid {
		h, m := hybrid[i], multi[i]
		if h.ID != m.ID {
			t.Fatalf("completion order diverges at %d: %d vs %d", i, h.ID, m.ID)
		}
		if h.SearchDone != m.SearchDone || h.SearchStart != m.SearchStart {
			t.Fatalf("req %d timing differs: hybrid [%d,%d], multi [%d,%d]",
				h.ID, h.SearchStart, h.SearchDone, m.SearchStart, m.SearchDone)
		}
		if h.HitRate != m.HitRate {
			t.Fatalf("req %d hit rate differs: %v vs %v", h.ID, h.HitRate, m.HitRate)
		}
	}
}

// TestMultiTenantMixedBatchRoutesPerTenant: two tenants with disjoint
// coverage (one fully resident, one CPU-only) inside one batch must
// record tenant-appropriate hit rates and all complete.
func TestMultiTenantMixedBatchRoutesPerTenant(t *testing.T) {
	f := setup(t)
	full := f.plan(t, 1.0, f.node.NumGPUs)
	none := f.plan(t, 0.0, f.node.NumGPUs)

	var done []*workload.Request
	cfg := f.cfg
	cfg.Forward = func(r *workload.Request) { done = append(done, r) }
	e, err := NewMultiTenant(cfg, []TenantSlot{
		{W: f.w, Plan: full, CPUModel: cfg.CPUModel},
		{W: f.w, Plan: none, CPUModel: cfg.CPUModel},
	}, f.gpus, f.gm)
	if err != nil {
		t.Fatal(err)
	}
	reqs := f.requests(20)
	for i, r := range reqs {
		r.Tenant = i % 2
	}
	f.sim.At(0, func() {
		for _, r := range reqs {
			e.Submit(r)
		}
	})
	f.sim.Run()
	if len(done) != 20 {
		t.Fatalf("forwarded %d of 20", len(done))
	}
	for _, r := range done {
		switch r.Tenant {
		case 0:
			if r.HitRate != 1 {
				t.Errorf("fully resident tenant recorded hit rate %v", r.HitRate)
			}
		case 1:
			if r.HitRate != 0 {
				t.Errorf("CPU-only tenant recorded hit rate %v", r.HitRate)
			}
		}
	}
	if e.AvgBatch() <= 1 {
		t.Errorf("no dynamic batching happened: avg batch %v", e.AvgBatch())
	}
}

// TestMultiTenantStrayTenantClamps: out-of-range tenant IDs ride slot 0
// rather than panicking.
func TestMultiTenantStrayTenantClamps(t *testing.T) {
	f := setup(t)
	plan := f.plan(t, 0.5, f.node.NumGPUs)
	e, err := NewMultiTenant(f.cfg, []TenantSlot{{W: f.w, Plan: plan, CPUModel: f.cfg.CPUModel}}, f.gpus, f.gm)
	if err != nil {
		t.Fatal(err)
	}
	req := f.requests(1)[0]
	req.Tenant = 7
	f.sim.At(0, func() { e.Submit(req) })
	f.sim.Run()
	if len(f.done) != 1 {
		t.Fatal("stray-tenant request never completed")
	}
}

func TestMultiTenantValidation(t *testing.T) {
	f := setup(t)
	if _, err := NewMultiTenant(f.cfg, nil, f.gpus, f.gm); err == nil {
		t.Error("empty slot set accepted")
	}
	if _, err := NewMultiTenant(f.cfg, []TenantSlot{{W: f.w}}, f.gpus, f.gm); err == nil {
		t.Error("nil plan accepted")
	}
	badShards := f.plan(t, 0.5, 2)
	if f.node.NumGPUs == 2 {
		t.Skip("fixture node has 2 GPUs; shard-mismatch case vacuous")
	}
	if _, err := NewMultiTenant(f.cfg, []TenantSlot{{W: f.w, Plan: badShards, CPUModel: f.cfg.CPUModel}}, f.gpus, f.gm); err == nil {
		t.Error("shard/GPU mismatch accepted")
	}
}
