package serve

import (
	"fmt"

	"vectorliterag/internal/workload"
)

// Policy selects how the front-end router spreads requests across
// replica pipelines.
type Policy string

// The supported routing policies.
const (
	// RoundRobin cycles through replicas in order.
	RoundRobin Policy = "round-robin"
	// LeastLoaded picks the replica with the fewest in-flight requests,
	// breaking ties round-robin so equal replicas share evenly.
	LeastLoaded Policy = "least-loaded"
)

// Policies lists the supported routing policies.
func Policies() []Policy { return []Policy{RoundRobin, LeastLoaded} }

// ResolvePolicy validates a policy string, mapping the empty string to
// the default (LeastLoaded). Callers that do expensive setup before
// routing should resolve up front.
func ResolvePolicy(p Policy) (Policy, error) {
	switch p {
	case RoundRobin, LeastLoaded:
		return p, nil
	case "":
		return LeastLoaded, nil
	default:
		return "", fmt.Errorf("serve: unknown routing policy %q (have %v)", p, Policies())
	}
}

// Replica is one node-local pipeline behind the router, with the
// in-flight accounting the least-loaded policy reads.
type Replica struct {
	pipe      *Pipeline
	inflight  int
	submitted int
}

// NewReplica wraps a pipeline for placement behind a router. Wire
// Release as (part of) the pipeline's terminal sink so completions
// decrement the in-flight gauge.
func NewReplica() *Replica { return &Replica{} }

// Bind attaches the replica's pipeline (built after the replica so the
// pipeline's terminal sink can reference Release).
func (r *Replica) Bind(pipe *Pipeline) { r.pipe = pipe }

// Pipeline returns the replica's pipeline.
func (r *Replica) Pipeline() *Pipeline { return r.pipe }

// Release records one request leaving the replica (generation done).
// The gauge is guarded against underflow: resilience paths can route a
// completion to Release after the request was already failed over away
// from this replica (or after a crash reset the gauge), and a
// double-release must not drive the load signal negative — a negative
// gauge would make the least-loaded policy prefer this replica forever.
func (r *Replica) Release(*workload.Request) {
	if r.inflight > 0 {
		r.inflight--
	}
}

// Inflight returns the number of requests admitted but not completed.
func (r *Replica) Inflight() int { return r.inflight }

// Submitted returns the number of requests routed to this replica.
func (r *Replica) Submitted() int { return r.submitted }

// Router is the cluster front end: a Stage that fans requests out to N
// replica pipelines. With one replica it degenerates to a pass-through.
type Router struct {
	policy   Policy
	replicas []*Replica
	next     int
}

// NewRouter builds a router over the given replicas.
func NewRouter(policy Policy, replicas []*Replica) (*Router, error) {
	policy, err := ResolvePolicy(policy)
	if err != nil {
		return nil, err
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one replica")
	}
	for i, r := range replicas {
		if r == nil || r.pipe == nil {
			return nil, fmt.Errorf("serve: replica %d has no pipeline bound", i)
		}
	}
	return &Router{policy: policy, replicas: replicas}, nil
}

// Submit implements Stage: it picks a replica per the policy and hands
// the request to that replica's pipeline.
func (r *Router) Submit(req *workload.Request) {
	n := len(r.replicas)
	pick := r.next % n
	if r.policy == LeastLoaded {
		best := r.replicas[pick]
		for i := 1; i < n; i++ {
			cand := r.replicas[(r.next+i)%n]
			if cand.inflight < best.inflight {
				best = cand
				pick = (r.next + i) % n
			}
		}
	}
	r.next++
	rep := r.replicas[pick]
	rep.inflight++
	rep.submitted++
	rep.pipe.Submit(req)
}

// Name implements Stage.
func (r *Router) Name() string {
	return fmt.Sprintf("router(%s,%d)", r.policy, len(r.replicas))
}

// Replicas returns the routed replicas.
func (r *Router) Replicas() []*Replica { return r.replicas }
