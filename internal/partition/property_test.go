package partition

import (
	"testing"
	"testing/quick"
	"time"

	"vectorliterag/internal/dataset"
)

// Property-based coverage of Algorithm 1's output domain: for any
// plausible (SLO, mu0, MemKV), the result must be a valid configuration
// — rho in [0,1], a positive planned batch, tail hit rate within the
// mean curve's range, and index bytes consistent with rho.
func TestLatencyBoundedOutputDomain(t *testing.T) {
	f := setup(t, dataset.Orcas1K)
	bytesAt := f.inputs().IndexBytesAt
	check := func(sloMSRaw uint16, mu0Raw uint8, memGBRaw uint8) bool {
		sloMS := 20 + int(sloMSRaw%981)  // 20..1000 ms
		mu0 := 2 + float64(mu0Raw%99)    // 2..100 rps
		memGB := 50 + int64(memGBRaw%51) // 50..100 GB per... node-wide
		in := f.inputs()
		in.SLOSearch = time.Duration(sloMS) * time.Millisecond
		in.Mu0 = mu0
		in.MemKV = memGB << 30 * 4
		res, err := LatencyBounded(in)
		if err != nil {
			return false
		}
		if res.Rho < 0 || res.Rho > 1 {
			return false
		}
		if res.ExpectedBatch < 1 {
			return false
		}
		if res.EtaMin < 0 || res.EtaMin > 1 {
			return false
		}
		if res.IndexBytes != bytesAt(res.Rho) {
			return false
		}
		if res.TauS != in.SLOSearch/2 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Bigger KV pools make the index memory relatively cheaper, so coverage
// should never *decrease* when MemKV grows (all else equal).
func TestCoverageMonotoneInMemKV(t *testing.T) {
	f := setup(t, dataset.Orcas1K)
	var prev float64 = -1
	for _, memGB := range []int64{100, 200, 400, 800} {
		in := f.inputs()
		in.MemKV = memGB << 30
		res, err := LatencyBounded(in)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Rho < prev-0.03 {
			t.Fatalf("coverage fell from %v to %v when MemKV grew to %dGB", prev, res.Rho, memGB)
		}
		prev = res.Rho
	}
}

// Epsilon ablation: a larger queuing factor shrinks the search budget
// (tau_s = SLO/(1+eps)), so coverage must not decrease with eps.
func TestCoverageMonotoneInEpsilon(t *testing.T) {
	f := setup(t, dataset.Orcas1K)
	var prev float64 = -1
	for _, eps := range []float64{0.5, 1.0, 1.5, 2.0} {
		in := f.inputs()
		in.Epsilon = eps
		res, err := LatencyBounded(in)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Rho < prev-0.03 {
			t.Fatalf("coverage fell from %v to %v at eps=%v", prev, res.Rho, eps)
		}
		prev = res.Rho
		wantTau := time.Duration(float64(in.SLOSearch) / (1 + eps))
		if diff := res.TauS - wantTau; diff > time.Millisecond || diff < -time.Millisecond {
			t.Fatalf("tauS = %v, want %v at eps=%v", res.TauS, wantTau, eps)
		}
	}
}

// Hedra's output domain under the same fuzzing.
func TestHedraOutputDomain(t *testing.T) {
	f := setup(t, dataset.Orcas1K)
	check := func(mu0Raw uint8) bool {
		mu0 := 2 + float64(mu0Raw) // 2..257 rps
		in := HedraInputs{
			Perf: f.perf, Est: f.est,
			MemKV: 300 << 30, Mu0: mu0,
			IndexBytesAt: f.inputs().IndexBytesAt,
			BatchCap:     64,
		}
		res, err := Hedra(in)
		if err != nil {
			return false
		}
		return res.Rho >= 0 && res.Rho <= 1 && res.MuLLM >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
