package metrics

import (
	"slices"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/stats"
	"vectorliterag/internal/workload"
)

// Freshness aggregates a live-ingest run's time-to-searchable — the
// freshness twin of the TTFT summary: how long each mutation waited
// between arriving and becoming visible to queries, and what fraction
// of inserts met the freshness SLO. Mutations never applied by
// measurement time count as violations (a stuck write is a failure,
// not missing data) but are excluded from the percentiles, exactly
// like unserved requests in Summarize.
type Freshness struct {
	Inserts    int       // counted insert mutations
	Deletes    int       // counted delete mutations
	Pending    int       // inserts not yet searchable at measurement time
	Attainment float64   // fraction of inserts searchable within the SLO
	TTS        Quantiles // time-to-searchable over applied inserts
}

// SummarizeFreshness aggregates the mutation log of a live run.
// slo is the freshness budget; mutations arriving before cutoff
// (warmup) are excluded. Attainment covers inserts only — a delete has
// no searchability event — but Deletes are counted for reporting.
func SummarizeFreshness(muts []workload.Mutation, slo time.Duration, cutoff des.Time) Freshness {
	var f Freshness
	var tts []float64
	ok := 0
	for i := range muts {
		m := &muts[i]
		if m.ArrivalAt < cutoff {
			continue
		}
		if m.Kind == workload.MutDelete {
			f.Deletes++
			continue
		}
		f.Inserts++
		if m.AppliedAt == 0 {
			f.Pending++
			continue
		}
		t := m.TimeToSearchable()
		tts = append(tts, float64(t))
		if time.Duration(t) <= slo {
			ok++
		}
	}
	if f.Inserts > 0 {
		f.Attainment = float64(ok) / float64(f.Inserts)
	}
	if len(tts) == 0 {
		return f
	}
	mean := stats.Mean(tts)
	slices.Sort(tts)
	f.TTS = Quantiles{
		Mean: time.Duration(mean),
		P50:  time.Duration(stats.PercentileSorted(tts, 0.50)),
		P90:  time.Duration(stats.PercentileSorted(tts, 0.90)),
		P95:  time.Duration(stats.PercentileSorted(tts, 0.95)),
		P99:  time.Duration(stats.PercentileSorted(tts, 0.99)),
	}
	return f
}

// AnnotateFreshness folds a mutation log into an attainment timeline:
// each window gains the inserts that arrived inside it and their
// freshness-SLO attainment, so a live run's series shows TTFT and
// time-to-searchable side by side (re-encode stalls appear as
// freshness dips in the window they hit). Mutations past the last
// window are dropped — the timeline's extent is set by request
// arrivals.
func AnnotateFreshness(wins []Window, muts []workload.Mutation, slo time.Duration, width time.Duration) {
	if width <= 0 || len(wins) == 0 {
		return
	}
	for i := range muts {
		m := &muts[i]
		if m.Kind != workload.MutInsert {
			continue
		}
		b := int(m.ArrivalAt / des.Time(width))
		if b < 0 || b >= len(wins) {
			continue
		}
		wins[b].Inserts++
		if m.AppliedAt != 0 && time.Duration(m.TimeToSearchable()) <= slo {
			wins[b].freshOK++
		}
	}
	for i := range wins {
		if wins[i].Inserts > 0 {
			wins[i].FreshAttainment = float64(wins[i].freshOK) / float64(wins[i].Inserts)
		}
	}
}
