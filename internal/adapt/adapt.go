// Package adapt is the online control plane of the adaptive runtime
// index update (paper §IV-B3), run *inside* a serving pipeline on the
// simulator's timeline. A Controller observes every completed request
// on the collector path and feeds an update.Monitor; when a window
// closes with SLO attainment below threshold AND the observed hit rates
// diverging from the model's expectation, it schedules a background
// rebuild as a chain of simulated events — re-profiling the live query
// stream, re-running Algorithm 1, re-splitting, and reloading each GPU
// shard over PCIe, each stage priced by the update package's cost
// model. While a shard reloads, the hybrid engine diverts its clusters
// to the CPU path (service never pauses); once every shard has loaded,
// the controller atomically swaps the new plan in and re-anchors the
// monitor's expectation, closing the loop.
//
// The whole cycle runs in virtual time on the same deterministic event
// loop as the data plane, so adaptive runs are reproducible bit for bit
// under a fixed seed — the repo's determinism contract extended to the
// control plane.
package adapt

import (
	"fmt"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/hitrate"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/partition"
	"vectorliterag/internal/perfmodel"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/retrieval"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/update"
	"vectorliterag/internal/workload"
)

// Config tunes the controller.
type Config struct {
	// Monitor holds the drift-detection thresholds; a zero value falls
	// back to update.DefaultMonitorConfig.
	Monitor update.MonitorConfig
	// ProfileQueries is the calibration sample the in-loop re-profiling
	// replays from the (drifted) live distribution (default 4000, the
	// offline build's size).
	ProfileQueries int
	// CalibrationReplay is the query count the *timing* of the profiling
	// stage is priced at (default 50000 — the paper replays ~0.5 % of a
	// 10M-query stream). It is deliberately larger than ProfileQueries:
	// the simulated system replays the paper-scale sample, while the
	// laptop-scale substrate needs fewer draws for the same distribution.
	CalibrationReplay int
	// Epsilon is Algorithm 1's queuing factor for re-partitioning.
	Epsilon float64
	// CooldownWindows suppresses triggers for this many monitor windows
	// after a swap (default 1, negative disables). Requests routed during
	// the reload carry the CPU divert's low hit rates but only complete
	// after the swap; without a settle window those stragglers would
	// immediately re-trigger an identical rebuild.
	CooldownWindows int
	// EscalateSkew and EscalateResidual gate the cheap-compaction
	// shortcut when a Compactor is bound: a trigger whose live
	// cluster-size skew and insert residual-norm ratio are both below
	// these thresholds runs a compaction cycle (re-encode + tombstone
	// purge) instead of the full Algorithm-1 re-partition — the drift is
	// in the overlay volume, not the partition geometry. Past either
	// threshold the trigger escalates to the full rebuild, as does a
	// trigger recurring right after a compaction (the cheap cycle
	// demonstrably didn't clear the drift — without that rule the
	// controller would compact forever against partition-geometry
	// drift). Defaults 2.0 and 2.5; the residual default sits above the
	// ~1.7x floor in-distribution inserts carry (fresh vectors always
	// land farther from their centroids than the corpus the quantizer
	// was trained on), so residual escalation indicates genuinely
	// out-of-distribution inserts. Negative disables the shortcut
	// entirely.
	EscalateSkew     float64
	EscalateResidual float64
}

func (c Config) profileQueries() int {
	if c.ProfileQueries <= 0 {
		return 4000
	}
	return c.ProfileQueries
}

func (c Config) calibrationReplay() int {
	if c.CalibrationReplay <= 0 {
		return 50000
	}
	return c.CalibrationReplay
}

func (c Config) escalateSkew() float64 {
	if c.EscalateSkew == 0 {
		return 2.0
	}
	return c.EscalateSkew
}

func (c Config) escalateResidual() float64 {
	if c.EscalateResidual == 0 {
		return 2.5
	}
	return c.EscalateResidual
}

func (c Config) cooldownWindows() int {
	if c.CooldownWindows < 0 {
		return 0
	}
	if c.CooldownWindows == 0 {
		return 1
	}
	return c.CooldownWindows
}

// Inputs wires the controller to a live pipeline: the shared simulator,
// the workload being served, the hot-swappable engine, and the fitted
// models Algorithm 1 re-uses across cycles (the CPU latency model and
// the bare LLM throughput are hardware properties — drift does not move
// them, so only the access profile is re-measured per cycle).
type Inputs struct {
	Sim       *des.Sim
	W         *dataset.Workload
	Engine    retrieval.HotSwapper
	Node      hw.Node
	SLOTotal  time.Duration // combined TTFT budget the monitor checks
	SLOSearch time.Duration
	Perf      *perfmodel.Model
	Mu0       float64
	MemKV     int64
	// Expected is the model-expected mean hit rate of the currently
	// installed plan (the monitor's initial anchor).
	Expected float64
	// Seed derives the per-cycle re-profiling sample.
	Seed uint64
}

// RebuildRecord is one completed (or aborted) update cycle — the
// trigger-timeline artifact of a drift study.
type RebuildRecord struct {
	TriggeredAt   des.Time
	ProfileDoneAt des.Time
	AlgoDoneAt    des.Time
	SplitDoneAt   des.Time
	SwappedAt     des.Time // zero when the cycle aborted
	Timing        update.RebuildTiming
	OldRho        float64
	NewRho        float64
	OldExpected   float64
	NewExpected   float64
	Iterations    int
	// Aborted names the stage that failed (empty on success); the old
	// plan stays installed.
	Aborted string
	// Compaction marks a cheap-compaction cycle (re-encode + tombstone
	// purge, plan untouched) that ran in place of a full rebuild;
	// CompactionTime is its modeled duration.
	Compaction     bool
	CompactionTime time.Duration
}

// Compactor is the streaming-ingest surface the controller can drive
// instead of a full rebuild: drift trackers (live cluster-size skew,
// insert residual-norm ratio) plus the cheap compaction action.
// internal/ingest.Ingester implements it.
type Compactor interface {
	SizeSkew() float64
	ResidualRatio() float64
	CompactionCost() time.Duration
	Compact()
}

// Controller runs the monitor→rebuild→swap loop on the DES timeline.
type Controller struct {
	cfg Config
	in  Inputs
	mon *update.Monitor

	rebuilding bool
	cycles     int
	rebuilds   []RebuildRecord
	compactor  Compactor
	// compactedLast is set while the most recent completed cycle was a
	// compaction: a trigger recurring in that state escalates to the
	// full rebuild (the cheap cycle didn't clear the drift). A completed
	// full rebuild re-arms the shortcut.
	compactedLast bool
	// pending is the cycle currently in flight (nil otherwise), kept so
	// a run whose clock stops mid-rebuild can still report the trigger.
	pending  *RebuildRecord
	observed int
	// windowsAtSwap is the monitor's window count at the last plan swap
	// (-1 before any swap); triggers within cooldownWindows of it are
	// straggler echoes and are ignored.
	windowsAtSwap int
}

// NewController builds a controller. Bind must be called with the live
// engine before the first observation (the engine exists only after the
// pipeline is composed).
func NewController(cfg Config, in Inputs) (*Controller, error) {
	if in.Sim == nil || in.W == nil {
		return nil, fmt.Errorf("adapt: controller needs a simulator and workload")
	}
	if in.SLOTotal <= 0 || in.SLOSearch <= 0 {
		return nil, fmt.Errorf("adapt: non-positive SLO (total %v, search %v)", in.SLOTotal, in.SLOSearch)
	}
	if in.Perf == nil {
		return nil, fmt.Errorf("adapt: nil performance model")
	}
	c := &Controller{cfg: cfg, in: in, windowsAtSwap: -1}
	c.mon = update.NewMonitor(cfg.Monitor, in.Expected)
	return c, nil
}

// Bind attaches the hot-swappable engine (post-compose).
func (c *Controller) Bind(eng retrieval.HotSwapper) { c.in.Engine = eng }

// BindCompactor attaches a streaming-ingest compactor; once bound,
// triggers whose drift trackers sit below the escalation thresholds
// run a cheap compaction instead of a full rebuild.
func (c *Controller) BindCompactor(comp Compactor) { c.compactor = comp }

// Monitor exposes the drift monitor (tests and diagnostics).
func (c *Controller) Monitor() *update.Monitor { return c.mon }

// Rebuilds returns every update cycle the controller ran, in trigger
// order.
func (c *Controller) Rebuilds() []RebuildRecord { return c.rebuilds }

// Pending returns a snapshot of the cycle still in flight, or nil. A
// rebuild whose remaining stage events lie past the simulation's
// deadline never completes; callers reporting a finished run surface it
// from here instead of silently dropping the trigger.
func (c *Controller) Pending() *RebuildRecord {
	if !c.rebuilding || c.pending == nil {
		return nil
	}
	snap := *c.pending
	return &snap
}

// Observed returns how many completed requests fed the monitor.
func (c *Controller) Observed() int { return c.observed }

// Observe is the collector-path hook: wire it (via serve.Tee) into the
// pipeline's terminal sink so every completed request reports its
// served hit rate and SLO outcome. A request that never produced a
// first token cannot reach this sink; its violation is still charged to
// the run's Summary, just not to the in-loop monitor — mirroring a real
// router, which can only count responses it has seen.
func (c *Controller) Observe(req *workload.Request) {
	c.observed++
	met := req.FirstToken > 0 && time.Duration(req.TTFT()) <= c.in.SLOTotal
	if c.mon.Record(req.HitRate, met) && !c.rebuilding && !c.inCooldown() {
		c.startRebuild()
	}
}

// inCooldown reports whether the current trigger falls inside the
// post-swap settle period.
func (c *Controller) inCooldown() bool {
	if c.windowsAtSwap < 0 {
		return false
	}
	return c.mon.WindowsClosed()-c.windowsAtSwap <= c.cfg.cooldownWindows()
}

// startRebuild kicks off one background update cycle at the current
// virtual instant. Stage effects land at their simulated completion
// times; the host-side computation (profiling, partitioning, splitting)
// executes inside those events, so a stage always consumes the workload
// state current at its own virtual time — drift that lands mid-cycle is
// seen by the stages after it.
func (c *Controller) startRebuild() {
	if c.in.Engine == nil {
		return // never bound: observe-only mode
	}
	if c.compactor != nil && !c.compactedLast &&
		c.cfg.escalateSkew() > 0 && c.cfg.escalateResidual() > 0 &&
		c.compactor.SizeSkew() < c.cfg.escalateSkew() &&
		c.compactor.ResidualRatio() < c.cfg.escalateResidual() {
		c.startCompaction()
		return
	}
	c.rebuilding = true
	c.cycles++
	rec := RebuildRecord{
		TriggeredAt: c.in.Sim.Now(),
		OldRho:      c.in.Engine.Plan().Coverage,
		OldExpected: c.mon.Expected(),
	}
	rec.Timing.Profiling = update.ProfilingTime(c.in.Node, c.in.W.Spec, c.cfg.calibrationReplay())
	c.track(rec)
	c.in.Sim.After(rec.Timing.Profiling, func() { c.profileDone(rec) })
}

// startCompaction runs the cheap update cycle: the overlay is folded
// and purged for its modeled cost, the plan stays installed, and the
// monitor window resets exactly as after a swap — the drift the
// trigger saw was overlay volume, which the fold removes.
func (c *Controller) startCompaction() {
	c.rebuilding = true
	c.cycles++
	rec := RebuildRecord{
		TriggeredAt:    c.in.Sim.Now(),
		OldRho:         c.in.Engine.Plan().Coverage,
		OldExpected:    c.mon.Expected(),
		Compaction:     true,
		CompactionTime: c.compactor.CompactionCost(),
	}
	rec.NewRho = rec.OldRho
	rec.NewExpected = rec.OldExpected
	c.track(rec)
	c.in.Sim.After(rec.CompactionTime, func() { c.compactDone(rec) })
}

// compactDone applies the compaction at its modeled completion instant
// and closes the cycle.
func (c *Controller) compactDone(rec RebuildRecord) {
	rec.SwappedAt = c.in.Sim.Now()
	c.compactor.Compact()
	c.compactedLast = true
	c.mon.ResetWindow()
	c.windowsAtSwap = c.mon.WindowsClosed()
	c.rebuilds = append(c.rebuilds, rec)
	c.pending = nil
	c.rebuilding = false
}

// track snapshots the in-flight cycle's latest state.
func (c *Controller) track(rec RebuildRecord) {
	snap := rec
	c.pending = &snap
}

// profileDone ends the profiling stage: sample the *current* (possibly
// drifted) query distribution and run Algorithm 1 against it.
func (c *Controller) profileDone(rec RebuildRecord) {
	rec.ProfileDoneAt = c.in.Sim.Now()
	seed := c.in.Seed + 7919*uint64(c.cycles) // fresh, reproducible sample per cycle
	prof, err := profiler.CollectAccess(c.in.W, c.cfg.profileQueries(), seed)
	if err != nil {
		c.abort(rec, "profile", err)
		return
	}
	est, err := hitrate.NewEstimator(prof)
	if err != nil {
		c.abort(rec, "profile", err)
		return
	}
	part, err := partition.LatencyBounded(partition.Inputs{
		SLOSearch:    c.in.SLOSearch,
		Epsilon:      c.cfg.Epsilon,
		Perf:         c.in.Perf,
		Est:          est,
		MemKV:        c.in.MemKV,
		Mu0:          c.in.Mu0,
		IndexBytesAt: splitter.IndexBytesAt(prof),
	})
	if err != nil {
		c.abort(rec, "algorithm", err)
		return
	}
	rec.Iterations = part.Iterations
	rec.NewRho = part.Rho
	rec.NewExpected = est.MeanHitRate(part.Rho)
	rec.Timing.Algorithm = update.AlgorithmTime(part.Iterations)
	c.track(rec)
	c.in.Sim.After(rec.Timing.Algorithm, func() { c.algoDone(rec, prof) })
}

// algoDone ends the partitioning stage: materialize the split.
func (c *Controller) algoDone(rec RebuildRecord, prof *profiler.AccessProfile) {
	rec.AlgoDoneAt = c.in.Sim.Now()
	plan, err := splitter.Build(prof, rec.NewRho, c.in.Node.NumGPUs)
	if err != nil {
		c.abort(rec, "split", err)
		return
	}
	rec.Timing.Splitting = update.SplittingTime(c.in.Node, plan)
	c.track(rec)
	c.in.Sim.After(rec.Timing.Splitting, func() { c.splitDone(rec, plan) })
}

// splitDone ends the splitting stage and starts the concurrent per-
// shard PCIe loads. A shard being overwritten cannot serve, so each
// shard g is diverted to the CPU path from load start until the atomic
// swap; loads run concurrently and the slowest gates the swap.
func (c *Controller) splitDone(rec RebuildRecord, plan *splitter.Plan) {
	rec.SplitDoneAt = c.in.Sim.Now()
	loads := update.LoadingTimes(c.in.Node, plan)
	for g := range loads {
		c.in.Engine.SetShardRefreshing(g, true)
		if loads[g] > rec.Timing.Loading {
			rec.Timing.Loading = loads[g]
		}
	}
	c.track(rec)
	c.in.Sim.After(rec.Timing.Loading, func() { c.swap(rec, plan) })
}

// swap atomically installs the new plan, re-anchors the monitor, and
// closes the cycle. SetPlan resets the engine's refresh flags, so the
// CPU divert ends at the same instant the new routing takes effect.
func (c *Controller) swap(rec RebuildRecord, plan *splitter.Plan) {
	rec.SwappedAt = c.in.Sim.Now()
	c.in.Engine.SetPlan(plan)
	c.compactedLast = false
	c.mon.SetExpected(rec.NewExpected)
	// Drop the partial window: it mixes old-plan observations (including
	// the reload's CPU diverts) that would otherwise re-trigger against
	// the new expectation.
	c.mon.ResetWindow()
	c.windowsAtSwap = c.mon.WindowsClosed()
	c.rebuilds = append(c.rebuilds, rec)
	c.pending = nil
	c.rebuilding = false
}

// abort abandons the cycle at the named stage; the old plan keeps
// serving and any refresh flags are cleared.
func (c *Controller) abort(rec RebuildRecord, stage string, err error) {
	rec.Aborted = fmt.Sprintf("%s: %v", stage, err)
	if plan := c.in.Engine.Plan(); plan != nil {
		for g := 0; g < plan.NumShards; g++ {
			c.in.Engine.SetShardRefreshing(g, false)
		}
	}
	c.rebuilds = append(c.rebuilds, rec)
	c.pending = nil
	c.rebuilding = false
}
