package experiments

import (
	"fmt"
	"strings"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/rag"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/workload"
)

// PrecisionResult is the joint placement x precision study (beyond the
// paper's all-PQ evaluation): the same cluster, load, and arrival
// stream served three ways — the HBM-only baseline with the full index
// in GPU memory, vLiteRAG's placement-only split, and the split
// refined with per-cluster (tier, codec) choices: the hottest placed
// clusters upgraded from PQ to SQ8 codes inside the HBM the placement
// loop left to the KV pool, and the coldest CPU-resident clusters
// demoted to the modeled NVMe tier. The artifact is a recall-vs-
// attainment table: the refinement buys recall points AND attainment
// at the same memory budget, because SQ8 scans stream gather-free at
// near raw HBM bandwidth while PQ scans are LUT-gather bound.
type PrecisionResult struct {
	Dataset  string
	Model    string
	Replicas int
	Mu       float64 // cluster-wide bare LLM capacity, req/s
	Arms     []PrecisionArm
}

// PrecisionArm is one (system, rate) outcome.
type PrecisionArm struct {
	Name      string
	Rate      float64
	Att       float64
	N         int
	TTFTP90   time.Duration
	SearchP90 time.Duration
	Rho       float64
	PlanGB    float64 // GPU-resident index bytes, cluster-wide per node
	SQ        int     // clusters upgraded to SQ8
	NVMe      int     // clusters demoted to the NVMe tier
	Gain      float64 // served mean per-query recall gain, recall points
}

// Precision runs the three-way comparison on ORCAS-1K + Qwen3-32B — the
// dataset whose 52 GB logical index forces a real placement decision on
// the H100 node, so the precision refinement has a leftover budget to
// spend and a CPU cold path to demote from.
func Precision(cfg Config) (*PrecisionResult, error) {
	return precisionWithWorkers(cfg, 0)
}

// precisionWithWorkers exists for the determinism test: the runs execute
// on the parallel sharded cluster engine, whose merged schedule is a
// pure function of the options — the artifact must be bit-identical for
// every Workers value.
func precisionWithWorkers(cfg Config, workers int) (*PrecisionResult, error) {
	w, err := WorkloadFor(dataset.Orcas1K)
	if err != nil {
		return nil, err
	}
	dep := deployments()[1] // Qwen3-32B on the H100 node
	const replicas = 2
	mu, err := rag.BareCapacity(dep.Node, dep.Model, workload.DefaultShape())
	if err != nil {
		return nil, err
	}
	muCluster := mu * float64(replicas)
	fracs := []float64{0.6, 0.75, 0.9}
	if cfg.Quick {
		fracs = []float64{0.75}
	}
	res := &PrecisionResult{
		Dataset: dataset.Orcas1K.Name, Model: dep.Model.Name,
		Replicas: replicas, Mu: muCluster,
	}
	arms := []struct {
		name string
		kind rag.Kind
		prec *rag.PrecisionOptions
	}{
		{"hbm-only", rag.AllGPU, nil},
		{"placement", rag.VLiteRAG, nil},
		{"placement+precision", rag.VLiteRAG, &rag.PrecisionOptions{}},
	}
	for _, frac := range fracs {
		rate := round1(muCluster * frac)
		for _, arm := range arms {
			r, err := rag.RunCluster(rag.Options{
				Node: dep.Node, Model: dep.Model, W: w, Kind: arm.kind,
				Rate: rate, Seed: cfg.Seed, Duration: runDuration(cfg.Quick),
				Precision: arm.prec,
				Workers:   workers,
				NetDelay:  rag.DefaultNetDelay,
			}, replicas, serve.RoundRobin)
			if err != nil {
				return nil, fmt.Errorf("precision %s @%.1f rps: %w", arm.name, rate, err)
			}
			res.Arms = append(res.Arms, PrecisionArm{
				Name: arm.name, Rate: rate,
				Att: r.Summary.Attainment, N: r.Summary.N,
				TTFTP90:   r.Summary.TTFT.P90,
				SearchP90: r.Summary.Search.P90,
				Rho:       r.Rho,
				PlanGB:    float64(r.PlanBytes) / 1e9,
				SQ:        r.SQClusters,
				NVMe:      r.NVMeClusters,
				Gain:      100 * r.RecallGain,
			})
		}
	}
	return res, nil
}

// Arm returns the named arm at the given rate, or nil.
func (r *PrecisionResult) Arm(name string, rate float64) *PrecisionArm {
	for i := range r.Arms {
		if r.Arms[i].Name == name && r.Arms[i].Rate == rate {
			return &r.Arms[i]
		}
	}
	return nil
}

// Rates returns the distinct rate points in run order.
func (r *PrecisionResult) Rates() []float64 {
	var out []float64
	for _, a := range r.Arms {
		if len(out) == 0 || out[len(out)-1] != a.Rate {
			out = append(out, a.Rate)
		}
	}
	return out
}

// Render formats the recall-vs-attainment table.
func (r *PrecisionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Joint placement x precision: %s + %s, %d replicas (cluster capacity %.1f req/s)\n",
		r.Dataset, r.Model, r.Replicas, r.Mu)
	b.WriteString("same HBM budget per arm: the refinement spends only bytes the placement loop left to the KV pool\n\n")
	t := &table{header: []string{"arm", "rate", "attainment", "ttft p90", "search p90",
		"rho", "plan GB", "sq8", "nvme", "recall +pts"}}
	for _, a := range r.Arms {
		t.add(a.Name, fmt.Sprintf("%.1f", a.Rate), f3(a.Att), ms(a.TTFTP90), ms(a.SearchP90),
			f3(a.Rho), fmt.Sprintf("%.1f", a.PlanGB),
			fmt.Sprintf("%d", a.SQ), fmt.Sprintf("%d", a.NVMe), f2(a.Gain))
	}
	b.WriteString(t.String())
	for _, rate := range r.Rates() {
		place, prec := r.Arm("placement", rate), r.Arm("placement+precision", rate)
		if place == nil || prec == nil || place.Att <= 0 {
			continue
		}
		fmt.Fprintf(&b, "\n@%.1f req/s: precision holds %.1f%% of placement-only attainment and buys +%.2f recall pts",
			rate, 100*prec.Att/place.Att, prec.Gain)
		if prec.Att >= place.Att {
			b.WriteString(" ✓")
		}
	}
	b.WriteString("\n")
	return b.String()
}

// CSV exports one row per (arm, rate).
func (r *PrecisionResult) CSV() string {
	rows := [][]string{}
	for _, a := range r.Arms {
		rows = append(rows, []string{
			a.Name,
			fmt.Sprintf("%.1f", a.Rate),
			fmt.Sprintf("%.4f", a.Att),
			fmt.Sprintf("%d", a.N),
			fmt.Sprintf("%.6f", a.TTFTP90.Seconds()),
			fmt.Sprintf("%.6f", a.SearchP90.Seconds()),
			fmt.Sprintf("%.4f", a.Rho),
			fmt.Sprintf("%.4f", a.PlanGB),
			fmt.Sprintf("%d", a.SQ),
			fmt.Sprintf("%d", a.NVMe),
			fmt.Sprintf("%.4f", a.Gain),
		})
	}
	return writeCSV([]string{"arm", "rate", "attainment", "requests", "ttft_p90_s",
		"search_p90_s", "rho", "plan_gb", "sq8_clusters", "nvme_clusters", "recall_gain_pts"}, rows)
}
