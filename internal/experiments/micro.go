package experiments

import (
	"fmt"
	"strings"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/hitrate"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/llm"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/rng"
	"vectorliterag/internal/stats"
	"vectorliterag/internal/workload"
)

// fig3Spec is the 128M-vector index of the paper's motivation
// microbenchmarks (§II-B, Fig. 3/4): ORCAS-class geometry at 128M
// vectors.
func fig3Spec() dataset.Spec {
	s := dataset.Orcas1K
	s.Name = "128M microbench"
	s.NVectors = 128_000_000
	return s
}

// Fig3Result reproduces Fig. 3: standard IVF vs fast-scan latency
// (left) and the stage breakdown of IVF fast scan (right).
type Fig3Result struct {
	// Normalized latency of IVF-FS relative to standard IVF at each
	// batch size (left panel; paper: ~0.2).
	Normalized map[int]float64
	// Breakdown at each batch size (right panel).
	Breakdown map[int]costmodel.Breakdown
}

// Fig3 runs the microbenchmark.
func Fig3(cfg Config) (*Fig3Result, error) {
	spec := fig3Spec()
	fs := costmodel.NewSearchModel(hw.Xeon8462Y(), spec)
	std := fs
	std.FastScan = false
	res := &Fig3Result{Normalized: map[int]float64{}, Breakdown: map[int]costmodel.Breakdown{}}
	for _, b := range []int{4, 16} {
		res.Normalized[b] = float64(fs.SearchTime(b)) / float64(std.SearchTime(b))
	}
	for _, b := range []int{2, 8} {
		res.Breakdown[b] = fs.SearchBreakdown(b)
	}
	return res, nil
}

// Render formats the result.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 3 (left): IVF-FS latency normalized to standard IVF\n")
	t := &table{header: []string{"batch", "IVF", "IVF-FS"}}
	for _, batch := range []int{4, 16} {
		t.add(fmt.Sprint(batch), "1.00", f2(r.Normalized[batch]))
	}
	b.WriteString(t.String())
	b.WriteString("\nFig 3 (right): IVF-FS breakdown on 128M index\n")
	t2 := &table{header: []string{"batch", "CQ", "LUT-build", "LUT-scan", "total"}}
	for _, batch := range []int{2, 8} {
		br := r.Breakdown[batch]
		t2.add(fmt.Sprint(batch), ms(br.CQ), ms(br.LUTBuild), ms(br.LUTScan), ms(br.Total()))
	}
	b.WriteString(t2.String())
	return b.String()
}

// Fig4Result reproduces Fig. 4: CPU fast-scan vs GPU IVF search (left)
// and LLM throughput vs relative KV space (right).
type Fig4Result struct {
	CPUSearch time.Duration
	GPUSearch time.Duration
	// KVFraction[i] of baseline KV space gives Throughput[i] (normalized
	// to the full-KV throughput).
	KVFraction []float64
	Throughput []float64
}

// Fig4 runs both panels. The right panel serves Qwen3-30B-class work on
// two H100s as in the paper's figure caption.
func Fig4(cfg Config) (*Fig4Result, error) {
	spec := fig3Spec()
	cpu := costmodel.NewSearchModel(hw.Xeon8462Y(), spec)
	g := costmodel.GPUScanModel{GPU: hw.H100()}
	// The GPU bar is a standalone Faiss-GPU IVF search: coarse
	// quantization also runs on-device at HBM rates, so its cost is
	// folded into the kernel term rather than the CPU CQ curve.
	res := &Fig4Result{
		CPUSearch: cpu.SearchTime(4),
		GPUSearch: g.ShardScanTime(4*cpu.QueryScanBytes(), 4*spec.NProbe),
	}

	node := hw.H100Node()
	node.NumGPUs = 2
	model := llm.Qwen3_32B
	shape := workload.DefaultShape()
	fracs := []float64{0.05, 0.1, 0.2, 0.4, 0.7, 1.0}
	if cfg.Quick {
		fracs = []float64{0.1, 0.4, 1.0}
	}
	baselineFree := node.GPU.UsableMem() - model.WeightBytesPerGPU()
	var base float64
	for _, f := range fracs {
		states := gpu.NewStates(node)
		shard := int64(float64(baselineFree) * (1 - f))
		for _, s := range states {
			s.ShardBytes = shard
		}
		mu, err := llm.MeasureCapacity(node, model, states, shape, llm.DefaultEngineConfig())
		if err != nil {
			return nil, err
		}
		if f == fracs[len(fracs)-1] {
			base = mu
		}
		res.KVFraction = append(res.KVFraction, f)
		res.Throughput = append(res.Throughput, mu)
	}
	if base > 0 {
		for i := range res.Throughput {
			res.Throughput[i] /= base
		}
	}
	return res, nil
}

// Render formats the result.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4 (left): search time on 128M index — CPU fast scan %s vs GPU %s (%.1fx)\n",
		ms(r.CPUSearch), ms(r.GPUSearch), float64(r.CPUSearch)/float64(r.GPUSearch))
	b.WriteString("\nFig 4 (right): normalized LLM throughput vs relative KV space\n")
	t := &table{header: []string{"rel KV", "norm throughput"}}
	for i := range r.KVFraction {
		t.add(f2(r.KVFraction[i]), f2(r.Throughput[i]))
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig5Result reproduces Fig. 5: the cluster access-frequency CDF.
type Fig5Result struct {
	// Share[name][i] is the cumulative access share of the top
	// (i+1)/len fraction of clusters.
	Share map[string][]float64
	// Top20 is the headline number: share carried by the top 20%.
	Top20 map[string]float64
}

// Fig5 measures access CDFs for both workloads.
func Fig5(cfg Config) (*Fig5Result, error) {
	res := &Fig5Result{Share: map[string][]float64{}, Top20: map[string]float64{}}
	n := 20000
	if cfg.Quick {
		n = 4000
	}
	r := rng.New(cfg.Seed + 5)
	for _, spec := range []dataset.Spec{dataset.WikiAll, dataset.Orcas1K} {
		w, err := WorkloadFor(spec)
		if err != nil {
			return nil, err
		}
		queries := w.SampleMany(r, n)
		counts := w.AccessCounts(queries)
		weights := make([]float64, len(counts))
		for c, cnt := range counts {
			weights[c] = float64(cnt) * float64(w.Index.ClusterSize(c))
		}
		res.Share[spec.Name] = stats.CDFPoints(weights)
		res.Top20[spec.Name] = stats.ShareOfTopFraction(weights, 0.20)
	}
	return res, nil
}

// Render formats the CDF at decile points.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 5: CDF of cluster access frequency (share of distance computations)\n")
	t := &table{header: []string{"cluster percentile", dataset.WikiAll.Name, dataset.Orcas1K.Name}}
	wiki := r.Share[dataset.WikiAll.Name]
	orcas := r.Share[dataset.Orcas1K.Name]
	for _, pct := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0} {
		iw := int(pct*float64(len(wiki))) - 1
		io := int(pct*float64(len(orcas))) - 1
		if iw < 0 {
			iw = 0
		}
		if io < 0 {
			io = 0
		}
		t.add(fmt.Sprintf("%.0f%%", pct*100), f3(wiki[iw]), f3(orcas[io]))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "top-20%% share: %s=%.3f (paper ~0.59), %s=%.3f (paper ~0.93)\n",
		dataset.WikiAll.Name, r.Top20[dataset.WikiAll.Name],
		dataset.Orcas1K.Name, r.Top20[dataset.Orcas1K.Name])
	return b.String()
}

// Fig6Result reproduces Fig. 6: hit-rate distribution vs cache coverage.
type Fig6Result struct {
	// Dist[name][coverage] summarizes the per-query hit-rate sample.
	Dist map[string]map[float64]stats.Summary
}

// Fig6 measures hit-rate distributions at 5/10/20 % coverage.
func Fig6(cfg Config) (*Fig6Result, error) {
	res := &Fig6Result{Dist: map[string]map[float64]stats.Summary{}}
	n := 8000
	if cfg.Quick {
		n = 2000
	}
	r := rng.New(cfg.Seed + 6)
	for _, spec := range []dataset.Spec{dataset.WikiAll, dataset.Orcas1K} {
		w, err := WorkloadFor(spec)
		if err != nil {
			return nil, err
		}
		prof, err := profiler.CollectAccess(w, n, cfg.Seed+61)
		if err != nil {
			return nil, err
		}
		res.Dist[spec.Name] = map[float64]stats.Summary{}
		test := w.SampleMany(r, n)
		for _, cov := range []float64{0.05, 0.10, 0.20} {
			k := int(cov*float64(w.Index.NList()) + 0.5)
			mask := prof.HotMask(k)
			rates := make([]float64, len(test))
			for i, q := range test {
				rates[i] = w.HitRate(q, mask) // count-based, as in Fig. 6
			}
			res.Dist[spec.Name][cov] = stats.Summarize(rates)
		}
	}
	return res, nil
}

// Render formats the violin summaries.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 6: per-query hit-rate distribution vs cache coverage\n")
	t := &table{header: []string{"dataset", "coverage", "median", "IQR", "min", "max", "mean"}}
	for _, name := range []string{dataset.WikiAll.Name, dataset.Orcas1K.Name} {
		for _, cov := range []float64{0.05, 0.10, 0.20} {
			s := r.Dist[name][cov]
			t.add(name, fmt.Sprintf("%.0f%%", cov*100), f2(s.Median),
				fmt.Sprintf("[%.2f,%.2f]", s.P25, s.P75), f2(s.Min), f2(s.Max), f2(s.Mean))
		}
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig8Result reproduces Fig. 8: search latency vs batch size (left) and
// hit-rate variance vs mean (right).
type Fig8Result struct {
	Batches []int
	CQ      []time.Duration
	LUT     []time.Duration
	Search  []time.Duration
	// Variance curve: empirical variance and the 4*sigmaMax2*m(1-m)
	// model at each measured mean.
	Means, EmpVar, ModelVar []float64
}

// Fig8 profiles the ORCAS-class CPU latency curve and validates the
// variance approximation.
func Fig8(cfg Config) (*Fig8Result, error) {
	spec := dataset.Orcas1K
	sm := costmodel.NewSearchModel(hw.Xeon8462Y(), spec)
	res := &Fig8Result{}
	for b := 1; b <= 32; b += 3 {
		res.Batches = append(res.Batches, b)
		res.CQ = append(res.CQ, sm.CQTime(b))
		res.LUT = append(res.LUT, sm.LUTTime(int64(b)*sm.QueryScanBytes(), b))
		res.Search = append(res.Search, sm.SearchTime(b))
	}
	// Variance parabola on Wiki-All (the paper's right panel dataset).
	w, err := WorkloadFor(dataset.WikiAll)
	if err != nil {
		return nil, err
	}
	n := 6000
	if cfg.Quick {
		n = 1500
	}
	prof, err := profiler.CollectAccess(w, n, cfg.Seed+8)
	if err != nil {
		return nil, err
	}
	est, err := hitrate.NewEstimator(prof)
	if err != nil {
		return nil, err
	}
	nlist := w.Index.NList()
	for k := 2; k < nlist; k += nlist / 12 {
		mean := est.MeanHitRate(float64(k) / float64(nlist))
		if mean < 0.02 || mean > 0.98 {
			continue
		}
		res.Means = append(res.Means, mean)
		res.EmpVar = append(res.EmpVar, est.EmpiricalVariance(prof, k))
		res.ModelVar = append(res.ModelVar, est.Variance(mean))
	}
	return res, nil
}

// Render formats both panels.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 8 (left): CPU search latency vs batch size (ORCAS-1K class)\n")
	t := &table{header: []string{"batch", "CQ", "LUT", "search"}}
	for i, batch := range r.Batches {
		t.add(fmt.Sprint(batch), ms(r.CQ[i]), ms(r.LUT[i]), ms(r.Search[i]))
	}
	b.WriteString(t.String())
	b.WriteString("\nFig 8 (right): hit-rate variance vs mean (Wiki-All)\n")
	t2 := &table{header: []string{"mean", "empirical var", "4*s2max*m(1-m)"}}
	for i := range r.Means {
		t2.add(f3(r.Means[i]), fmt.Sprintf("%.4f", r.EmpVar[i]), fmt.Sprintf("%.4f", r.ModelVar[i]))
	}
	b.WriteString(t2.String())
	return b.String()
}
