package workload

import (
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/rng"
)

// MutationKind distinguishes corpus mutations.
type MutationKind uint8

const (
	// MutInsert adds a fresh vector to the live corpus.
	MutInsert MutationKind = iota
	// MutDelete tombstones an existing vector.
	MutDelete
)

func (k MutationKind) String() string {
	if k == MutInsert {
		return "insert"
	}
	return "delete"
}

// Mutation is one live-corpus write flowing through the ingest
// pipeline. Timestamps are virtual; zero means "not reached yet".
type Mutation struct {
	Seq    int
	Kind   MutationKind
	Tenant int

	// Vec is the insert payload (nil for deletes), drawn from the
	// workload's drift-rotated insert distribution at arrival time.
	Vec []float32

	// Pick seeds the delete's deterministic victim selection: the ingest
	// store resolves it against the live ID population at apply time, so
	// the victim choice depends only on the mutation stream's RNG and
	// the applied-mutation order.
	Pick uint64

	ArrivalAt des.Time // enqueued at the ingest station
	AppliedAt des.Time // applied: insert searchable / delete masked

	// Set by the ingest store at apply time.
	Cluster int   // cluster the vector was routed to (insert) or lived in (delete)
	ID      int32 // assigned vector ID (insert) or victim ID (delete)
}

// TimeToSearchable returns how long the mutation waited between
// arriving and becoming visible to queries; valid once AppliedAt is
// set.
func (m *Mutation) TimeToSearchable() des.Time { return m.AppliedAt - m.ArrivalAt }

// MutationGen produces a Poisson stream of one mutation kind, mirroring
// Generator: a constant rate, or an inhomogeneous stream realized by
// Lewis thinning when a Schedule is installed. Insert payloads are
// drawn from the workload's insert distribution with the generator's
// private RNG, so the stream is a pure function of its seed.
type MutationGen struct {
	Kind       MutationKind
	RatePerSec float64
	W          *dataset.Workload
	// Sched, when non-nil, overrides RatePerSec with a time-varying
	// rate.
	Sched Schedule
	// Tenant stamps every emitted mutation.
	Tenant int

	r    *rng.Rand
	next int

	sim    *des.Sim
	until  des.Time
	submit func(*Mutation)
	rmax   float64
	step   func()
}

// NewMutationGen returns an open-loop mutation source. rate is
// mutations per second of virtual time; a non-nil sched overrides it.
func NewMutationGen(w *dataset.Workload, kind MutationKind, rate float64, sched Schedule, tenant int, seed uint64) *MutationGen {
	return &MutationGen{Kind: kind, RatePerSec: rate, W: w, Sched: sched, Tenant: tenant, r: rng.New(seed)}
}

// Start schedules mutations on the simulator until the given deadline,
// invoking submit for each at its arrival time. Like Generator.Start,
// one pre-bound step callback self-reschedules; with a Schedule the
// rejected thinning candidates are walked inline, so the accepted
// arrival times and the RNG draw sequence match an event-per-candidate
// realization exactly.
func (g *MutationGen) Start(sim *des.Sim, until des.Time, submit func(*Mutation)) {
	g.sim, g.until, g.submit = sim, until, submit
	if g.Sched != nil {
		g.rmax = g.Sched.MaxRate()
		g.step = g.thinnedStep
		g.scheduleThinned(0)
		return
	}
	if g.RatePerSec <= 0 {
		return
	}
	g.step = g.constStep
	first := des.Time(g.r.ExpFloat64() / g.RatePerSec * 1e9)
	if first <= g.until {
		g.sim.At(first, g.step)
	}
}

func (g *MutationGen) constStep() {
	g.emit()
	next := g.sim.Now() + des.Time(g.r.ExpFloat64()/g.RatePerSec*1e9)
	if next <= g.until {
		g.sim.At(next, g.step)
	}
}

func (g *MutationGen) thinnedStep() {
	g.emit()
	g.scheduleThinned(g.sim.Now())
}

func (g *MutationGen) scheduleThinned(from des.Time) {
	t := from
	for {
		t += des.Time(g.r.ExpFloat64() / g.rmax * 1e9)
		if t > g.until {
			return
		}
		if g.r.Float64()*g.rmax <= g.Sched.RateAt(time.Duration(t)) {
			g.sim.At(t, g.step)
			return
		}
	}
}

// emit materializes one mutation at the current instant.
func (g *MutationGen) emit() {
	m := &Mutation{Seq: g.next, Kind: g.Kind, Tenant: g.Tenant, ArrivalAt: g.sim.Now()}
	g.next++
	if g.Kind == MutInsert {
		m.Vec = g.W.InsertVector(g.r)
	} else {
		m.Pick = g.r.Uint64()
	}
	g.submit(m)
}

// Count returns how many mutations have been generated so far.
func (g *MutationGen) Count() int { return g.next }
