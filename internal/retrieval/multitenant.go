package retrieval

import (
	"fmt"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/workload"
)

// TenantSlot is one tenant's runtime state inside the shared
// multi-tenant engine: its corpus, its split plan (the slice of GPU
// memory the joint allocator granted it), and the CPU cost model fitted
// to its corpus geometry.
type TenantSlot struct {
	W        *dataset.Workload
	Plan     *splitter.Plan
	CPUModel costmodel.SearchModel
	// Live, when set, overlays this tenant's streaming-ingest scan costs
	// on W's frozen tables; nil means the tenant's corpus is frozen.
	// Per-slot because each tenant mutates (or doesn't) independently.
	Live LiveCost
	// Priority orders the shared CPU cold scan within a batch (lower
	// scans first): the CPU serializes miss work, and the §IV-B2
	// callback mechanism completes each query at its prefix, so putting
	// a gold query's misses ahead of a bronze burst's is the engine-
	// level half of tier-aware preemption ordering. Ties keep batch
	// (arrival) order.
	Priority int
	// blockScale converts one physical probed cluster into its logical
	// thread-block count (NProbe/PhysNProbe), per tenant because the
	// probe geometry is a corpus property.
	blockScale int
}

// scanBytes prices a scan over clusters through the tenant's live
// overlay when one is installed.
func (s *TenantSlot) scanBytes(q dataset.QueryID, clusters []int) int64 {
	if s.Live != nil {
		return s.Live.ScanBytes(q, clusters)
	}
	return s.W.ScanBytes(q, clusters)
}

// scanBytesFull is scanBytes over the query's full probe set.
func (s *TenantSlot) scanBytesFull(q dataset.QueryID) int64 {
	if s.Live != nil {
		return s.Live.ScanBytesAll(q)
	}
	return s.W.ScanBytesAll(q)
}

// MultiTenant is the hybrid engine generalized to N tenants sharing
// one node: a single CPU forms dynamic batches from the (scheduler-
// metered) shared queue, so a batch may mix tenants; each query routes
// through its own tenant's mapping tables, its GPU-resident clusters
// scan on the shard kernels of the GPU hosting them (one kernel per
// GPU, over the combined per-tenant work), and the cold remainder joins
// the shared CPU scan. Because the CPU and GPUs are one physical
// resource, one tenant's burst inflates every tenant's batch — exactly
// the interference the FairScheduler's admission metering bounds.
//
// Per-tenant service times price each stage with the owning tenant's
// cost model: coarse quantization and the cold scan serialize on the
// CPU, so the batch pays the sum of per-tenant sub-batch costs.
type MultiTenant struct {
	batcher
	slots    []TenantSlot
	gpus     []*gpu.State
	gpuModel costmodel.GPUScanModel
	// Dispatcher toggles early query promotion, as on the single-tenant
	// hybrid engine.
	Dispatcher bool

	// Per-batch work areas, reused across batches (see Hybrid).
	shardBytes   []int64
	shardBlocks  []int
	cpuWork      []int64
	cpuDone      []des.Time
	perTenant    []int   // batch members per tenant
	missByTenant []int64 // CPU miss bytes per tenant
	scanOrder    []int   // batch indices in CPU scan order
	route        splitter.RouteScratch
	// sqBytes/sqBlocks are the per-GPU SQ8 kernel work areas, used only
	// when at least one tenant's plan carries a precision refinement.
	sqBytes  []int64
	sqBlocks []int
	// recallSum/recallN accumulate the served recall gain of SQ-upgraded
	// clusters across all tenants (see Hybrid.RecallGain).
	recallSum float64
	recallN   int
}

// NewMultiTenant wires the shared engine. Every slot's plan must have
// one shard per GPU in gpus; slot order defines tenant IDs (a request's
// Tenant field indexes slots).
func NewMultiTenant(cfg Config, slots []TenantSlot, gpus []*gpu.State, gm costmodel.GPUScanModel) (*MultiTenant, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("retrieval: multi-tenant engine needs at least one tenant slot")
	}
	for i := range slots {
		if slots[i].W == nil || slots[i].Plan == nil {
			return nil, fmt.Errorf("retrieval: tenant slot %d missing workload or plan", i)
		}
		if slots[i].Plan.NumShards != len(gpus) {
			return nil, fmt.Errorf("retrieval: tenant slot %d has %d shards for %d GPUs",
				i, slots[i].Plan.NumShards, len(gpus))
		}
		slots[i].blockScale = slots[i].W.Spec.NProbe / slots[i].W.Gen.PhysNProbe
	}
	e := &MultiTenant{
		batcher:    batcher{cfg: cfg},
		slots:      append([]TenantSlot(nil), slots...),
		gpus:       gpus,
		gpuModel:   gm,
		Dispatcher: true,
	}
	e.init(e.runBatch)
	return e, nil
}

// Name implements Engine.
func (e *MultiTenant) Name() string {
	return fmt.Sprintf("multi-tenant(%d)", len(e.slots))
}

// Slots returns the tenant runtime slots (diagnostics and tests).
func (e *MultiTenant) Slots() []TenantSlot { return e.slots }

// RecallGain implements RecallReporter: the mean per-query modeled
// recall gain from SQ8-upgraded clusters across all tenants, zero when
// no tenant's plan carries a precision refinement.
func (e *MultiTenant) RecallGain() float64 {
	if e.recallN == 0 {
		return 0
	}
	return e.recallSum / float64(e.recallN)
}

// hasPrecision reports whether any tenant's plan carries a precision
// refinement (decides whether runBatch walks the per-cluster path).
func (e *MultiTenant) hasPrecision() bool {
	for i := range e.slots {
		if e.slots[i].Plan.Prec != nil {
			return true
		}
	}
	return false
}

// slot resolves a request's tenant, clamping strays to tenant 0 the
// same way the FairScheduler does.
func (e *MultiTenant) slot(req *workload.Request) int {
	if req.Tenant < 0 || req.Tenant >= len(e.slots) {
		return 0
	}
	return req.Tenant
}

func (e *MultiTenant) runBatch(batch []*workload.Request) {
	sim := e.cfg.Sim
	b := len(batch)

	// Coarse quantization serializes on the shared CPU: each tenant's
	// sub-batch is priced with its own model and the batch pays the sum.
	perTenant := resize(&e.perTenant, len(e.slots))
	for _, req := range batch {
		perTenant[e.slot(req)]++
	}
	var cq des.Time
	for t, n := range perTenant {
		if n > 0 {
			cq += des.Time(e.slots[t].CPUModel.CQTime(n))
		}
	}
	tCQ := sim.Now() + e.slowAt(cq)

	// Route every query through its tenant's mapping tables. Shard g of
	// every tenant's plan lives on GPU g, so per-GPU work accumulates
	// across tenants. When a tenant's plan carries a precision
	// refinement its clusters split by codec (PQ vs SQ8 kernels) exactly
	// as on the single-tenant hybrid engine, and its NVMe-demoted cold
	// clusters bill the shared page-read fetch; tenants without a
	// refinement keep the classic path.
	anyPrec := e.hasPrecision()
	shardBytes := resize(&e.shardBytes, len(e.gpus))
	shardBlocks := resize(&e.shardBlocks, len(e.gpus))
	cpuWork := resize(&e.cpuWork, b)
	missByTenant := resize(&e.missByTenant, len(e.slots))
	var sqBytes []int64
	var sqBlocks []int
	var nvmeBytes int64
	var nvmeClusters int
	if anyPrec {
		sqBytes = resize(&e.sqBytes, len(e.gpus))
		sqBlocks = resize(&e.sqBlocks, len(e.gpus))
	}
	for i, req := range batch {
		s := &e.slots[e.slot(req)]
		prec := s.Plan.Prec
		perShard, cpuClusters := s.Plan.RouteInto(&e.route, degradeProbes(s.W.Probes(req.Query), req.Degrade))
		var gain float64
		for g, resident := range perShard {
			if len(resident) == 0 {
				continue
			}
			if prec == nil {
				shardBytes[g] += s.scanBytes(req.Query, resident)
				shardBlocks[g] += len(resident) * s.blockScale
				continue
			}
			for j, c := range resident {
				bb := s.scanBytes(req.Query, resident[j:j+1])
				// A brownout-stamped ForcePQ request scans SQ8-upgraded
				// clusters through their base PQ codec: cheaper bytes, no
				// recall gain — the ladder's precision-fallback rung.
				if prec.IsSQ(c) && !req.ForcePQ {
					sqBytes[g] += int64(float64(bb) * prec.SQRatio)
					sqBlocks[g] += s.blockScale
					gain += float64(bb) * prec.Delta(c)
				} else {
					shardBytes[g] += bb
					shardBlocks[g] += s.blockScale
				}
			}
		}
		if prec != nil {
			for j, c := range cpuClusters {
				if prec.IsNVMe(c) {
					nvmeBytes += s.scanBytes(req.Query, cpuClusters[j:j+1])
					nvmeClusters++
				}
			}
		}
		cpuWork[i] = s.scanBytes(req.Query, cpuClusters)
		missByTenant[e.slot(req)] += cpuWork[i]
		full := s.scanBytesFull(req.Query)
		req.HitRate = servedHitRate(full, cpuWork[i])
		if prec != nil {
			if full > 0 {
				e.recallSum += gain / float64(full)
			}
			e.recallN++
		}
	}

	// GPU shard kernels start once CQ delivers the cluster lists; one
	// kernel per GPU covers every tenant's resident clusters there, with
	// a second SQ8 streaming kernel when upgraded clusters landed on it.
	gpuReady := tCQ
	for g := range shardBytes {
		var t des.Time
		if shardBytes[g] != 0 || shardBlocks[g] != 0 {
			t += des.Time(e.gpuModel.ShardScanTime(shardBytes[g], shardBlocks[g]))
		}
		if anyPrec && (sqBytes[g] != 0 || sqBlocks[g] != 0) {
			t += des.Time(e.gpuModel.ShardScanTimeSQ(sqBytes[g], sqBlocks[g]))
		}
		if t == 0 {
			continue
		}
		end := tCQ + e.slowAt(t)
		e.gpus[g].MarkRetrievalBusy(end)
		if end > gpuReady {
			gpuReady = end
		}
	}

	// CPU cold scan: per-tenant miss work priced with the owning
	// tenant's model, summed (the CPU serializes); query completion
	// follows the byte-proportional prefix in batch order, as on the
	// single-tenant engine.
	var missTotal int64
	var cpuTotal des.Time
	for t, miss := range missByTenant {
		if miss > 0 {
			cpuTotal += des.Time(e.slots[t].CPUModel.LUTTime(miss, perTenant[t]))
			missTotal += miss
		}
	}
	cpuTotal = e.slowAt(cpuTotal)
	if anyPrec && nvmeClusters > 0 {
		// NVMe-demoted cold clusters are fetched into DRAM ahead of the
		// shared fast-scan; the fetch extends the batch total and is
		// attributed byte-proportionally like the scan itself.
		cpuTotal += e.slowAt(des.Time(costmodel.NVMeScanTime(e.cfg.NVMe, nvmeBytes, nvmeClusters)))
	}
	cpuDone := resize(&e.cpuDone, b)
	scanOrder := resize(&e.scanOrder, b)
	for i := range scanOrder {
		scanOrder[i] = i
	}
	// Scan in tenant-priority order, stable within a tier, so a high-
	// tier query's prefix excludes lower-tier miss work queued behind
	// it. Insertion sort: stable (same output as any stable sort),
	// allocation-free, and batches are at most MaxBatch long.
	for i := 1; i < len(scanOrder); i++ {
		v := scanOrder[i]
		p := e.slots[e.slot(batch[v])].Priority
		j := i - 1
		for j >= 0 && e.slots[e.slot(batch[scanOrder[j]])].Priority > p {
			scanOrder[j+1] = scanOrder[j]
			j--
		}
		scanOrder[j+1] = v
	}
	var prefix int64
	for _, i := range scanOrder {
		prefix += cpuWork[i]
		if missTotal > 0 {
			cpuDone[i] = tCQ + des.Time(float64(cpuTotal)*float64(prefix)/float64(missTotal))
		} else {
			cpuDone[i] = tCQ
		}
	}
	batchEnd := tCQ + cpuTotal
	if gpuReady > batchEnd {
		batchEnd = gpuReady
	}

	if e.Dispatcher {
		// Promote each query when its own search completes: GPU flags
		// must all be set (shard kernels are batch-granular) and its CPU
		// clusters scanned.
		e.dispatchCoalesced(batch, cpuDone, gpuReady)
	} else {
		at := batchEnd + des.Time(mergeCost)
		sim.At(at, func() {
			now := sim.Now()
			for _, req := range batch {
				req.SearchDone = now
				e.cfg.Forward(req)
			}
			e.releaseBatch(batch)
		})
	}
	sim.At(batchEnd, e.doneFn)
}
