// Package rag assembles the end-to-end serving pipeline and runs one
// evaluation point: Poisson arrivals → retrieval engine → LLM cluster,
// all in virtual time. It owns the system-level wiring the paper's
// baselines differ in — GPU memory layout, which GPUs serve the LLM,
// and which retrieval engine runs (§V baseline configurations).
package rag

import (
	"fmt"
	"sync"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/hitrate"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/llm"
	"vectorliterag/internal/metrics"
	"vectorliterag/internal/partition"
	"vectorliterag/internal/perfmodel"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/retrieval"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/workload"
)

// Kind selects the serving system under test.
type Kind string

// The evaluated systems (paper §V, baseline configurations).
const (
	CPUOnly  Kind = "CPU-Only"
	DedGPU   Kind = "DED-GPU"
	AllGPU   Kind = "ALL-GPU"
	VLiteRAG Kind = "vLiteRAG"
	HedraRAG Kind = "HedraRAG"
)

// Kinds lists the four main-evaluation systems in the paper's order.
func Kinds() []Kind { return []Kind{CPUOnly, DedGPU, AllGPU, VLiteRAG} }

// Options configures one run.
type Options struct {
	Node  hw.Node
	Model llm.ModelSpec
	W     *dataset.Workload
	Kind  Kind

	Rate     float64       // arrival rate, requests/second
	Duration time.Duration // arrival window in virtual time (default 120s)
	Warmup   time.Duration // excluded prefix (default 20s)
	Drain    time.Duration // post-arrival settling window (default 120s)
	Shape    workload.Shape
	Seed     uint64

	// SLOSearch overrides the dataset's search SLO (sensitivity studies).
	SLOSearch time.Duration
	// SLOGen overrides the generation-stage SLO. When zero, it is derived
	// the way the paper derives Table I: the deployment's own TTFT
	// measured at the model's throughput limit (P90 at 2/3 capacity).
	SLOGen time.Duration
	// Epsilon is the queuing factor of Algorithm 1 (default 1).
	Epsilon float64
	// DisableDispatcher turns off early query promotion (Fig. 14).
	DisableDispatcher bool
	// MaxBatch caps retrieval batches (default 64).
	MaxBatch int
	// ProfileQueries sizes the calibration sample (default 4000).
	ProfileQueries int
	// HedraCoverageOverride, when positive, pins HedraRAG's coverage
	// instead of running its balancing rule (for §VI-D replication).
	HedraCoverageOverride float64
	// Plan, when set for VLiteRAG, serves an existing split plan as-is
	// instead of re-profiling and re-partitioning — "build once, serve
	// many", and the way a stale plan is represented in drift studies.
	Plan *splitter.Plan
}

// Result is one evaluation point.
type Result struct {
	Kind     Kind
	Rate     float64
	SLOTotal time.Duration
	Summary  metrics.Summary
	Requests []*workload.Request

	// Rho is the GPU cache coverage the system chose (1 for ALL/DED-GPU,
	// 0 for CPU-only).
	Rho       float64
	PlanBytes int64 // GPU-resident index bytes
	Mu0       float64
	AvgBatch  float64
	LLMGPUs   int
	Partition *partition.Result // nil for non-partitioned systems
	Generated int
}

// capCache memoizes bare LLM capacity per deployment, since every rate
// point of a sweep shares it.
var capCache = struct {
	sync.Mutex
	m map[string]float64
}{m: map[string]float64{}}

// bareCapacity measures (or recalls) the standalone LLM throughput for
// a node/model/shape deployment over nGPUs.
func bareCapacity(node hw.Node, model llm.ModelSpec, nGPUs int, shape workload.Shape) (float64, error) {
	key := fmt.Sprintf("%s|%s|%d|%d/%d", node.Name, model.Name, nGPUs, shape.InputTokens, shape.OutputTokens)
	capCache.Lock()
	v, ok := capCache.m[key]
	capCache.Unlock()
	if ok {
		return v, nil
	}
	states := gpu.NewStates(node)
	mu, err := llm.MeasureCapacity(node, model, states[:nGPUs], shape, llm.DefaultEngineConfig())
	if err != nil {
		return 0, err
	}
	capCache.Lock()
	capCache.m[key] = mu
	capCache.Unlock()
	return mu, nil
}

// BareCapacity exposes the memoized standalone LLM throughput (the
// vertical dashed lines of Fig. 11).
func BareCapacity(node hw.Node, model llm.ModelSpec, shape workload.Shape) (float64, error) {
	return bareCapacity(node, model, node.NumGPUs, shape)
}

// genSLOCache memoizes the measured generation-stage SLO.
var genSLOCache = struct {
	sync.Mutex
	m map[string]time.Duration
}{m: map[string]time.Duration{}}

// GenSLO returns the measured generation-stage TTFT SLO for a
// deployment (Table I methodology on this substrate).
func GenSLO(node hw.Node, model llm.ModelSpec, shape workload.Shape) (time.Duration, error) {
	key := fmt.Sprintf("%s|%s|%d/%d", node.Name, model.Name, shape.InputTokens, shape.OutputTokens)
	genSLOCache.Lock()
	v, ok := genSLOCache.m[key]
	genSLOCache.Unlock()
	if ok {
		return v, nil
	}
	states := gpu.NewStates(node)
	slo, err := llm.MeasureGenSLO(node, model, states, shape, llm.DefaultEngineConfig(), 2.0/3.0)
	if err != nil {
		return 0, err
	}
	genSLOCache.Lock()
	genSLOCache.m[key] = slo
	genSLOCache.Unlock()
	return slo, nil
}

// Run executes one evaluation point.
func Run(opts Options) (*Result, error) {
	if opts.W == nil {
		return nil, fmt.Errorf("rag: nil workload")
	}
	if opts.Rate <= 0 {
		return nil, fmt.Errorf("rag: non-positive rate %v", opts.Rate)
	}
	if opts.Duration == 0 {
		opts.Duration = 120 * time.Second
	}
	if opts.Warmup == 0 {
		opts.Warmup = 20 * time.Second
	}
	if opts.Drain == 0 {
		opts.Drain = 120 * time.Second
	}
	if opts.Shape == (workload.Shape{}) {
		opts.Shape = workload.DefaultShape()
	}
	if opts.SLOSearch == 0 {
		opts.SLOSearch = opts.W.Spec.SLOSearch
	}
	if opts.SLOGen == 0 {
		slo, err := GenSLO(opts.Node, opts.Model, opts.Shape)
		if err != nil {
			return nil, err
		}
		opts.SLOGen = slo
	}
	sloTotal := opts.SLOSearch + opts.SLOGen

	var sim des.Sim
	states := gpu.NewStates(opts.Node)
	gm := costmodel.GPUScanModel{GPU: opts.Node.GPU}
	cpuModel := costmodel.NewSearchModel(opts.Node.CPU, opts.W.Spec)

	nProf := opts.ProfileQueries
	if nProf <= 0 {
		nProf = 4000
	}
	prof, err := profiler.CollectAccess(opts.W, nProf, opts.Seed+1)
	if err != nil {
		return nil, err
	}

	res := &Result{Kind: opts.Kind, Rate: opts.Rate, SLOTotal: sloTotal}

	// Engine construction is deferred until the LLM cluster exists (the
	// Forward hook needs it), so the layout step returns a factory.
	var makeEngine func(cfg retrieval.Config) retrieval.Engine
	llmStates := states

	switch opts.Kind {
	case CPUOnly:
		res.Rho = 0
		makeEngine = func(cfg retrieval.Config) retrieval.Engine { return retrieval.NewCPUOnly(cfg) }

	case AllGPU:
		plan, err := splitter.Build(prof, 1.0, opts.Node.NumGPUs)
		if err != nil {
			return nil, err
		}
		applyShards(states, plan)
		res.Rho, res.PlanBytes = 1, plan.TotalBytes()
		makeEngine = func(cfg retrieval.Config) retrieval.Engine {
			return retrieval.NewAllGPU(cfg, plan, states, gm)
		}

	case DedGPU:
		perGPU := opts.Node.GPU.UsableMem()
		nDed := int((opts.W.TotalIndexBytes() + perGPU - 1) / perGPU)
		if nDed < 1 {
			nDed = 1
		}
		if nDed >= opts.Node.NumGPUs {
			return nil, fmt.Errorf("rag: index needs %d dedicated GPUs, node has %d", nDed, opts.Node.NumGPUs)
		}
		dedStates := states[opts.Node.NumGPUs-nDed:]
		llmStates = states[:opts.Node.NumGPUs-nDed]
		if len(llmStates) < opts.Model.TP {
			return nil, fmt.Errorf("rag: DED-GPU leaves %d GPUs, %s needs TP=%d", len(llmStates), opts.Model, opts.Model.TP)
		}
		plan, err := splitter.Build(prof, 1.0, nDed)
		if err != nil {
			return nil, err
		}
		applyShards(dedStates, plan)
		res.Rho, res.PlanBytes = 1, plan.TotalBytes()
		makeEngine = func(cfg retrieval.Config) retrieval.Engine {
			return retrieval.NewDedGPU(cfg, plan, dedStates, gm)
		}

	case VLiteRAG, HedraRAG:
		if opts.Plan != nil && opts.Kind == VLiteRAG {
			plan := opts.Plan
			applyShards(states, plan)
			res.Rho = plan.Coverage
			res.PlanBytes = plan.TotalBytes()
			makeEngine = func(cfg retrieval.Config) retrieval.Engine {
				h := retrieval.NewHybrid(cfg, plan, states, gm)
				h.Dispatcher = !opts.DisableDispatcher
				return h
			}
			break
		}
		est, err := hitrate.NewEstimator(prof)
		if err != nil {
			return nil, err
		}
		perf, err := perfmodel.Fit(profiler.ProfileLatency(cpuModel, profiler.DefaultBatches()))
		if err != nil {
			return nil, err
		}
		mu0, err := bareCapacity(opts.Node, opts.Model, opts.Node.NumGPUs, opts.Shape)
		if err != nil {
			return nil, err
		}
		res.Mu0 = mu0
		memKV := nodeKVBytes(opts.Node, opts.Model)
		var rho float64
		if opts.Kind == VLiteRAG {
			part, err := partition.LatencyBounded(partition.Inputs{
				SLOSearch:    opts.SLOSearch,
				Epsilon:      opts.Epsilon,
				Perf:         perf,
				Est:          est,
				MemKV:        memKV,
				Mu0:          mu0,
				IndexBytesAt: splitter.IndexBytesAt(prof),
			})
			if err != nil {
				return nil, err
			}
			res.Partition = &part
			rho = part.Rho
		} else if opts.HedraCoverageOverride > 0 {
			rho = opts.HedraCoverageOverride
		} else {
			part, err := partition.Hedra(partition.HedraInputs{
				Perf: perf, Est: est,
				MemKV: memKV, Mu0: mu0,
				IndexBytesAt: splitter.IndexBytesAt(prof),
				BatchCap:     opts.MaxBatch,
			})
			if err != nil {
				return nil, err
			}
			res.Partition = &part
			rho = part.Rho
		}
		plan, err := splitter.Build(prof, rho, opts.Node.NumGPUs)
		if err != nil {
			return nil, err
		}
		applyShards(states, plan)
		res.Rho, res.PlanBytes = rho, plan.TotalBytes()
		if opts.Kind == VLiteRAG {
			makeEngine = func(cfg retrieval.Config) retrieval.Engine {
				h := retrieval.NewHybrid(cfg, plan, states, gm)
				h.Dispatcher = !opts.DisableDispatcher
				return h
			}
		} else {
			makeEngine = func(cfg retrieval.Config) retrieval.Engine {
				return retrieval.NewHedra(cfg, plan, states, gm)
			}
		}

	default:
		return nil, fmt.Errorf("rag: unknown kind %q", opts.Kind)
	}

	cluster, err := llm.NewCluster(&sim, opts.Node, opts.Model, llmStates, llm.DefaultEngineConfig())
	if err != nil {
		return nil, err
	}
	res.LLMGPUs = len(cluster.Instances) * opts.Model.TP

	engine := makeEngine(retrieval.Config{
		Sim:      &sim,
		W:        opts.W,
		CPUModel: cpuModel,
		Forward:  cluster.Submit,
		MaxBatch: opts.MaxBatch,
	})

	var all []*workload.Request
	gen := workload.NewGenerator(opts.W, opts.Rate, opts.Shape, opts.Seed+7)
	gen.Start(&sim, des.Time(opts.Duration), func(req *workload.Request) {
		all = append(all, req)
		engine.Submit(req)
	})
	sim.RunUntil(des.Time(opts.Duration + opts.Drain))

	res.Requests = all
	res.Generated = len(all)
	res.AvgBatch = engine.AvgBatch()
	res.Summary = metrics.Summarize(all, sloTotal, des.Time(opts.Warmup))
	return res, nil
}

// applyShards records per-GPU resident shard bytes (shrinking KV).
func applyShards(states []*gpu.State, plan *splitter.Plan) {
	for g := range plan.ShardBytes {
		if g < len(states) {
			states[g].ShardBytes = plan.ShardBytes[g]
		}
	}
}

// nodeKVBytes returns the node-wide baseline KV capacity with no index
// loaded — the MemKV input of Algorithm 1.
func nodeKVBytes(node hw.Node, model llm.ModelSpec) int64 {
	perGPU := node.GPU.UsableMem() - model.WeightBytesPerGPU()
	if perGPU < 0 {
		perGPU = 0
	}
	used := (node.NumGPUs / model.TP) * model.TP
	return perGPU * int64(used)
}
