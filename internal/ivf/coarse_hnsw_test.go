package ivf

import (
	"testing"

	"vectorliterag/internal/hnsw"
	"vectorliterag/internal/rng"
)

func TestCoarseHNSWAgreesWithExactProbe(t *testing.T) {
	r := rng.New(31)
	data, _ := clusteredData(r, 32, 60, 16, 0.8)
	ix, err := Build(data, BuildConfig{Dim: 16, NList: 32, PQM: 8, PQK: 64, TrainIters: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := ix.BuildCoarseHNSW(hnsw.Config{})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	const queries, nprobe = 40, 4
	for qi := 0; qi < queries; qi++ {
		q := data[qi*16 : (qi+1)*16]
		exact := ix.Probe(q, nprobe)
		approx := coarse.Probe(q, nprobe, 32)
		if len(approx) != nprobe {
			t.Fatalf("approx probe returned %d clusters", len(approx))
		}
		set := map[int]bool{}
		for _, c := range exact {
			set[c] = true
		}
		for _, c := range approx {
			if set[c] {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(queries*nprobe); frac < 0.85 {
		t.Fatalf("HNSW probe agrees with exact on only %.2f of probes", frac)
	}
}

func TestCoarseHNSWMemoryOverhead(t *testing.T) {
	r := rng.New(32)
	data, _ := clusteredData(r, 16, 60, 8, 0.8)
	ix, err := Build(data, BuildConfig{Dim: 8, NList: 16, PQM: 4, PQK: 32, TrainIters: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := ix.BuildCoarseHNSW(hnsw.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.MemoryOverheadBytes() <= 0 {
		t.Fatal("no graph memory accounted")
	}
}

func TestCoarseHNSWRejectsWrongDim(t *testing.T) {
	r := rng.New(33)
	data, _ := clusteredData(r, 16, 60, 8, 0.8)
	ix, _ := Build(data, BuildConfig{Dim: 8, NList: 16, PQM: 4, PQK: 32, TrainIters: 5, Seed: 2})
	if _, err := ix.BuildCoarseHNSW(hnsw.Config{Dim: 4, M: 8}); err == nil {
		t.Fatal("mismatched dim accepted")
	}
}
