// Package kmeans implements Lloyd's algorithm with k-means++ seeding.
// It trains both the IVF coarse quantizer (cluster centroids) and the
// per-subspace product-quantization codebooks, mirroring the role
// k-means plays in Faiss index construction (paper §II-A).
//
// The distance-dominated loops (assignment, seeding distance tables)
// run on a worker pool sized by Config.Workers; results are
// bit-identical for any worker count because every parallel section
// writes per-vector outputs and the order-sensitive floating-point
// reductions (centroid accumulation, inertia) are folded sequentially
// in index order (see internal/parallel).
package kmeans

import (
	"fmt"

	"vectorliterag/internal/parallel"
	"vectorliterag/internal/rng"
	"vectorliterag/internal/vecmath"
)

// Config controls training.
type Config struct {
	K        int // number of centroids
	Dim      int // vector dimensionality
	MaxIters int // Lloyd iterations; default 15
	Seed     uint64
	// Workers sizes the assignment/seeding worker pool; non-positive
	// means one per CPU core. Results are identical for any value.
	Workers int
}

// Result holds trained centroids and final assignments.
type Result struct {
	Centroids   []float32 // K x Dim row-major
	Assignments []int     // len == number of training vectors
	Inertia     float64   // sum of squared distances to assigned centroid
}

// Train clusters the row-major training matrix into cfg.K centroids.
// It returns an error when the input is malformed or has fewer vectors
// than centroids.
func Train(data []float32, cfg Config) (*Result, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("kmeans: non-positive dim %d", cfg.Dim)
	}
	if len(data)%cfg.Dim != 0 {
		return nil, fmt.Errorf("kmeans: data length %d not a multiple of dim %d", len(data), cfg.Dim)
	}
	n := len(data) / cfg.Dim
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: non-positive k %d", cfg.K)
	}
	if n < cfg.K {
		return nil, fmt.Errorf("kmeans: %d vectors < %d centroids", n, cfg.K)
	}
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 15
	}
	r := rng.New(cfg.Seed)

	centroids := seedPlusPlus(data, n, cfg.Dim, cfg.K, cfg.Workers, r)
	assign := make([]int, n)
	dists := make([]float32, n)
	counts := make([]int, cfg.K)
	inertia := 0.0

	// The assignment step is distance-dominated, so it runs the
	// norm-decomposed argmin: data-vector norms are computed once for the
	// whole training run, centroid norms once per iteration, and the
	// inner loop reduces to a dot product per (vector, centroid) pair.
	dataNorms := vecmath.RowNorms(data, cfg.Dim, nil)
	centNorms := make([]float32, cfg.K)

	// assignAll computes each vector's nearest centroid (and distance) on
	// the worker pool; per-vector writes keep it exact under parallelism.
	assignAll := func() {
		vecmath.RowNorms(centroids, cfg.Dim, centNorms)
		parallel.For(n, cfg.Workers, func(start, end int) {
			for i := start; i < end; i++ {
				v := data[i*cfg.Dim : (i+1)*cfg.Dim]
				j, score := vecmath.ArgminNormScore(v, centroids, centNorms, cfg.Dim)
				assign[i] = j
				d := dataNorms[i] + score
				if d < 0 {
					d = 0
				}
				dists[i] = d
			}
		})
	}

	for iter := 0; iter < iters; iter++ {
		// Assignment step (parallel).
		assignAll()
		// Update step: accumulate in index order so the float32 sums match
		// the single-threaded fold bit for bit.
		inertia = 0
		next := make([]float32, len(centroids))
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			inertia += float64(dists[i])
			vecmath.Add(next[c*cfg.Dim:(c+1)*cfg.Dim], data[i*cfg.Dim:(i+1)*cfg.Dim])
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster with a random training vector —
				// the standard fix that keeps all K centroids meaningful.
				i := r.Intn(n)
				copy(next[c*cfg.Dim:(c+1)*cfg.Dim], data[i*cfg.Dim:(i+1)*cfg.Dim])
				continue
			}
			vecmath.Scale(next[c*cfg.Dim:(c+1)*cfg.Dim], 1/float32(counts[c]))
		}
		centroids = next
	}
	// Final assignment against the last centroid update.
	assignAll()
	inertia = 0
	for i := 0; i < n; i++ {
		inertia += float64(dists[i])
	}
	return &Result{Centroids: centroids, Assignments: assign, Inertia: inertia}, nil
}

// seedPlusPlus picks K initial centroids with D^2 weighting
// (k-means++), which gives provably bounded inertia and — more
// importantly here — deterministic, well-spread clusters. The
// min-distance table updates run on the worker pool; the weighted draw
// scans the table sequentially, so the picks are worker-count
// independent.
func seedPlusPlus(data []float32, n, dim, k, workers int, r *rng.Rand) []float32 {
	centroids := make([]float32, k*dim)
	first := r.Intn(n)
	copy(centroids[:dim], data[first*dim:(first+1)*dim])

	d2 := make([]float64, n)
	parallel.For(n, workers, func(start, end int) {
		for i := start; i < end; i++ {
			d2[i] = float64(vecmath.SquaredL2(data[i*dim:(i+1)*dim], centroids[:dim]))
		}
	})
	for c := 1; c < k; c++ {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = r.Intn(n)
		} else {
			target := r.Float64() * total
			cum := 0.0
			pick = n - 1
			for i, d := range d2 {
				cum += d
				if cum >= target {
					pick = i
					break
				}
			}
		}
		copy(centroids[c*dim:(c+1)*dim], data[pick*dim:(pick+1)*dim])
		// Update min-distance table (parallel; per-element writes).
		parallel.For(n, workers, func(start, end int) {
			for i := start; i < end; i++ {
				d := float64(vecmath.SquaredL2(data[i*dim:(i+1)*dim], centroids[c*dim:(c+1)*dim]))
				if d < d2[i] {
					d2[i] = d
				}
			}
		})
	}
	return centroids
}
