// Package ivf implements an Inverted File (IVF) index with product
// quantization — the index family VectorLiteRAG targets (paper §II).
//
// Construction: a coarse quantizer (k-means centroids) partitions the
// database into nlist clusters; each database vector is assigned to its
// nearest centroid and stored in that cluster's inverted list as a PQ
// code. Search proceeds in the three stages of the paper's Figure 2:
//
//  1. coarse quantization (CQ): rank clusters by centroid distance and
//     keep the top nprobe;
//  2. LUT construction: precompute query-to-codeword partial distances;
//  3. LUT scan: accumulate approximate distances over the candidate
//     clusters' codes and keep the top-k.
//
// The stages are exposed separately (Probe / BuildLUT / ScanCluster) so
// the hybrid CPU–GPU engine can route stage 3 per cluster, which is
// exactly the granularity VectorLiteRAG partitions at.
//
// Query-time execution is allocation-free in steady state: a
// SearchScratch owns the LUT buffer, top-k heap storage, probe list,
// and result slice, and is threaded through SearchInto /
// SearchClustersInto (Search and SearchClusters wrap them over an
// internal scratch pool). SearchBatch amortizes scratch reuse across a
// batch and fans out over the internal/parallel pool with the
// repository's bit-identical determinism contract: results match a
// sequential per-query loop exactly for any worker count.
package ivf

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"vectorliterag/internal/kmeans"
	"vectorliterag/internal/parallel"
	"vectorliterag/internal/pq"
	"vectorliterag/internal/vecmath"
)

// BuildConfig controls index construction.
type BuildConfig struct {
	Dim        int
	NList      int // number of IVF clusters
	PQM        int // PQ subspaces (code bytes per vector)
	PQK        int // codewords per subspace (<= 256)
	TrainIters int
	Seed       uint64
	// Workers sizes the training/encoding worker pool; non-positive
	// means one per CPU core. The built index is bit-identical for any
	// value (deterministic chunking; see internal/parallel).
	Workers int
}

// Index is a trained IVF-PQ index.
type Index struct {
	dim       int
	nlist     int
	centroids []float32 // nlist x dim
	centNorms []float32 // per-centroid squared norms for decomposed CQ
	quant     *pq.Quantizer
	lists     []list
	nvecs     int
	workers   int // build-time worker-pool size, reused by Recall/SearchBatch
	scratch   sync.Pool
}

type list struct {
	ids   []int32
	codes []byte
}

// Build trains the coarse quantizer and PQ codebooks on the data and
// populates the inverted lists. data is row-major with cfg.Dim columns.
func Build(data []float32, cfg BuildConfig) (*Index, error) {
	if cfg.Dim <= 0 || len(data) == 0 || len(data)%cfg.Dim != 0 {
		return nil, fmt.Errorf("ivf: bad data length %d for dim %d", len(data), cfg.Dim)
	}
	n := len(data) / cfg.Dim
	if cfg.NList <= 0 || cfg.NList > n {
		return nil, fmt.Errorf("ivf: nlist %d invalid for %d vectors", cfg.NList, n)
	}
	coarse, err := kmeans.Train(data, kmeans.Config{K: cfg.NList, Dim: cfg.Dim, MaxIters: cfg.TrainIters, Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("ivf: coarse quantizer: %w", err)
	}
	// PQ is trained on residuals-free raw vectors (IVFPQ "by_residual=false"
	// mode), which keeps LUT semantics simple: one LUT per query serves
	// every cluster.
	quant, err := pq.Train(data, pq.Config{Dim: cfg.Dim, M: cfg.PQM, K: cfg.PQK, Iters: cfg.TrainIters, Seed: cfg.Seed + 1, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("ivf: pq: %w", err)
	}
	ix := &Index{
		dim:       cfg.Dim,
		nlist:     cfg.NList,
		centroids: coarse.Centroids,
		centNorms: vecmath.RowNorms(coarse.Centroids, cfg.Dim, nil),
		quant:     quant,
		lists:     make([]list, cfg.NList),
		nvecs:     n,
		workers:   cfg.Workers,
	}
	// Encode every vector concurrently into a flat code matrix, then fill
	// the inverted lists in index order — the same list layout the
	// sequential append loop produced.
	cs := quant.CodeSize()
	codes := make([]byte, n*cs)
	parallel.For(n, cfg.Workers, func(start, end int) {
		for i := start; i < end; i++ {
			ix.quant.Encode(data[i*cfg.Dim:(i+1)*cfg.Dim], codes[i*cs:(i+1)*cs])
		}
	})
	for i := 0; i < n; i++ {
		c := coarse.Assignments[i]
		ix.lists[c].ids = append(ix.lists[c].ids, int32(i))
		ix.lists[c].codes = append(ix.lists[c].codes, codes[i*cs:(i+1)*cs]...)
	}
	return ix, nil
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// NList returns the number of clusters.
func (ix *Index) NList() int { return ix.nlist }

// NVectors returns the number of indexed vectors.
func (ix *Index) NVectors() int { return ix.nvecs }

// CodeSize returns bytes per stored PQ code.
func (ix *Index) CodeSize() int { return ix.quant.CodeSize() }

// ClusterSize returns the number of vectors in cluster c.
func (ix *Index) ClusterSize(c int) int { return len(ix.lists[c].ids) }

// ClusterSizes returns a copy of all cluster sizes.
func (ix *Index) ClusterSizes() []int {
	out := make([]int, ix.nlist)
	for i := range ix.lists {
		out[i] = len(ix.lists[i].ids)
	}
	return out
}

// Quantizer exposes the trained product quantizer so a live-corpus
// layer can encode freshly inserted vectors into the same code space
// as the built lists.
func (ix *Index) Quantizer() *pq.Quantizer { return ix.quant }

// ClusterIDs returns cluster c's inverted-list vector IDs. The slice
// is the index's own storage — callers must treat it as read-only.
func (ix *Index) ClusterIDs(c int) []int32 { return ix.lists[c].ids }

// ClusterCodes returns cluster c's PQ codes (ClusterSize(c) ×
// CodeSize() bytes). The slice is the index's own storage — callers
// must treat it as read-only.
func (ix *Index) ClusterCodes(c int) []byte { return ix.lists[c].codes }

// NearestCentroid returns the cluster whose centroid is closest to v —
// the routing step for a live insert. It uses the same norm-decomposed
// scan as ProbeInto, so routing is consistent with query-time coarse
// quantization.
func (ix *Index) NearestCentroid(v []float32) int {
	if len(v) != ix.dim {
		panic(fmt.Sprintf("ivf: route vector dim %d != index dim %d", len(v), ix.dim))
	}
	c, _ := vecmath.ArgminNormScore(v, ix.centroids, ix.centNorms, ix.dim)
	return c
}

// CentroidResidual2 returns the squared L2 distance between v and
// cluster c's centroid — the residual norm the drift trackers watch.
func (ix *Index) CentroidResidual2(v []float32, c int) float32 {
	return vecmath.SquaredL2(v, ix.centroids[c*ix.dim:(c+1)*ix.dim])
}

// ScanClusterMasked is ScanCluster with a positional tombstone bitmap
// over the inverted list: candidates whose bit is set in dead are
// skipped (an empty bitmap scans everything).
func (ix *Index) ScanClusterMasked(lut *pq.LUT, cluster int, dead []uint64, top *vecmath.TopK) {
	l := &ix.lists[cluster]
	lut.ScanCodesIDsMasked(l.codes, l.ids, dead, top)
}

// SearchScratch owns every buffer the three-stage search pipeline
// touches — the probe heap and probe list, the per-query LUT, the
// top-k heap, and the result slice — so steady-state search performs
// zero allocations. A scratch is not safe for concurrent use; create
// one per worker (or let Search/SearchBatch draw from the index's
// internal pool). Result slices returned by the *Into methods alias the
// scratch and are valid until its next use.
type SearchScratch struct {
	lut      pq.LUT
	top      vecmath.TopK
	probeTop vecmath.TopK
	probes   []int
	out      []vecmath.Neighbor
}

// NewSearchScratch returns a reusable scratch for searches against this
// index.
func (ix *Index) NewSearchScratch() *SearchScratch {
	return &SearchScratch{probes: make([]int, 0, ix.nlist)}
}

func (ix *Index) getScratch() *SearchScratch {
	if s, ok := ix.scratch.Get().(*SearchScratch); ok {
		return s
	}
	return ix.NewSearchScratch()
}

func (ix *Index) putScratch(s *SearchScratch) { ix.scratch.Put(s) }

// ProbeInto runs coarse quantization into the scratch's probe list and
// returns it: the nprobe cluster IDs nearest to the query, most similar
// first. The returned slice aliases the scratch. Centroid distances use
// the norm decomposition with the index's precomputed centroid norms
// (the query norm is a shared constant and drops out of the ranking).
func (ix *Index) ProbeInto(s *SearchScratch, query []float32, nprobe int) []int {
	if len(query) != ix.dim {
		panic(fmt.Sprintf("ivf: query dim %d != index dim %d", len(query), ix.dim))
	}
	if nprobe <= 0 {
		return nil
	}
	if nprobe > ix.nlist {
		nprobe = ix.nlist
	}
	s.probeTop.Reset(nprobe)
	dim := ix.dim
	for c := 0; c < ix.nlist; c++ {
		s.probeTop.Push(c, ix.centNorms[c]-2*vecmath.Dot(query, ix.centroids[c*dim:(c+1)*dim]))
	}
	s.out = s.probeTop.AppendSorted(s.out[:0])
	s.probes = s.probes[:0]
	for _, nb := range s.out {
		s.probes = append(s.probes, nb.Index)
	}
	return s.probes
}

// Probe runs coarse quantization: it returns the nprobe cluster IDs
// nearest to the query, most similar first.
func (ix *Index) Probe(query []float32, nprobe int) []int {
	s := ix.getScratch()
	defer ix.putScratch(s)
	probes := ix.ProbeInto(s, query, nprobe)
	if probes == nil {
		return nil
	}
	out := make([]int, len(probes))
	copy(out, probes)
	return out
}

// BuildLUT precomputes the query's distance lookup table (stage 2).
func (ix *Index) BuildLUT(query []float32) *pq.LUT {
	return ix.quant.BuildLUT(query)
}

// ScanCluster scans one inverted list with the given LUT, pushing
// candidates into top (stage 3 for a single cluster).
func (ix *Index) ScanCluster(lut *pq.LUT, cluster int, top *vecmath.TopK) {
	l := &ix.lists[cluster]
	lut.ScanCodesIDs(l.codes, l.ids, top)
}

// SearchInto runs the full three-stage pipeline on the scratch and
// returns the top-k neighbors in ascending distance order. The returned
// slice aliases the scratch and is valid until its next use; steady
// state performs zero allocations.
func (ix *Index) SearchInto(s *SearchScratch, query []float32, nprobe, k int) []vecmath.Neighbor {
	probes := ix.ProbeInto(s, query, nprobe)
	return ix.searchProbed(s, query, probes, k)
}

// SearchClustersInto scans only the listed clusters (after an external
// Probe) on the scratch. The returned slice aliases the scratch.
func (ix *Index) SearchClustersInto(s *SearchScratch, query []float32, clusters []int, k int) []vecmath.Neighbor {
	return ix.searchProbed(s, query, clusters, k)
}

func (ix *Index) searchProbed(s *SearchScratch, query []float32, clusters []int, k int) []vecmath.Neighbor {
	ix.quant.BuildLUTInto(query, &s.lut)
	s.top.Reset(k)
	for _, c := range clusters {
		ix.ScanCluster(&s.lut, c, &s.top)
	}
	s.out = s.top.AppendSorted(s.out[:0])
	return s.out
}

// Search runs the full three-stage pipeline and returns the top-k
// neighbors in ascending distance order. The result is freshly
// allocated and owned by the caller; the transient buffers come from
// the index's scratch pool, so the steady-state cost is one result
// allocation per call. Allocation-sensitive callers use SearchInto.
func (ix *Index) Search(query []float32, nprobe, k int) []vecmath.Neighbor {
	s := ix.getScratch()
	res := ix.SearchInto(s, query, nprobe, k)
	out := make([]vecmath.Neighbor, len(res))
	copy(out, res)
	ix.putScratch(s)
	return out
}

// SearchClusters scans only the listed clusters (after an external
// Probe), which is how the hybrid engine computes the CPU-resident part
// of a query. The result is freshly allocated and owned by the caller.
func (ix *Index) SearchClusters(query []float32, clusters []int, k int) []vecmath.Neighbor {
	s := ix.getScratch()
	res := ix.SearchClustersInto(s, query, clusters, k)
	out := make([]vecmath.Neighbor, len(res))
	copy(out, res)
	ix.putScratch(s)
	return out
}

// SearchBatch searches every query of the row-major batch (ix.Dim()
// columns) and returns one ascending-distance top-k result per query.
// The batch fans out over the internal/parallel worker pool sized by
// the build-time Workers knob; per-worker scratches amortize probe, LUT
// and heap storage across the batch. Results are bit-identical to
// calling Search per query in order, for any worker count: each query
// is an independent computation writing only its own output slot.
func (ix *Index) SearchBatch(queries []float32, nprobe, k int) ([][]vecmath.Neighbor, error) {
	if len(queries)%ix.dim != 0 {
		return nil, fmt.Errorf("ivf: batch length %d not a multiple of dim %d", len(queries), ix.dim)
	}
	nq := len(queries) / ix.dim
	out := make([][]vecmath.Neighbor, nq)
	parallel.For(nq, ix.workers, func(start, end int) {
		s := ix.getScratch()
		for qi := start; qi < end; qi++ {
			res := ix.SearchInto(s, queries[qi*ix.dim:(qi+1)*ix.dim], nprobe, k)
			own := make([]vecmath.Neighbor, len(res))
			copy(own, res)
			out[qi] = own
		}
		ix.putScratch(s)
	})
	return out, nil
}

// Recall computes the fraction of brute-force top-k ground truth
// recovered by the index at the given nprobe, averaged over the queries
// (row-major). It is the quality metric used in place of the paper's
// NDCG@50.
func (ix *Index) Recall(data, queries []float32, nprobe, k int) float64 {
	nq := len(queries) / ix.dim
	if nq == 0 {
		return 0
	}
	// Row norms of the corpus are computed once and shared read-only
	// across workers, so the brute-force pass costs one dot product per
	// row; each worker chunk clones the forcer for its own query scratch.
	bfShared := vecmath.NewBruteForcer(data, ix.dim)
	// Per-query recalls compute concurrently; the mean folds in query
	// order so the result matches a sequential run exactly.
	perQuery := make([]float64, nq)
	parallel.For(nq, ix.workers, func(start, end int) {
		bf := bfShared.Clone()
		s := ix.getScratch()
		truth := make([]vecmath.Neighbor, 0, k)
		truthIDs := make([]int, 0, k)
		for qi := start; qi < end; qi++ {
			q := queries[qi*ix.dim : (qi+1)*ix.dim]
			truth = bf.AppendTopK(truth[:0], q, k)
			got := ix.SearchInto(s, q, nprobe, k)
			// Membership via a reusable sorted-ID slice instead of a
			// per-query map allocation.
			truthIDs = truthIDs[:0]
			for _, nb := range truth {
				truthIDs = append(truthIDs, nb.Index)
			}
			sort.Ints(truthIDs)
			hit := 0
			for _, nb := range got {
				j := sort.SearchInts(truthIDs, nb.Index)
				if j < len(truthIDs) && truthIDs[j] == nb.Index {
					hit++
				}
			}
			perQuery[qi] = float64(hit) / float64(k)
		}
		ix.putScratch(s)
	})
	sum := 0.0
	for _, v := range perQuery {
		sum += v
	}
	return sum / float64(nq)
}

// HotClusters returns cluster IDs sorted by the supplied access counts,
// hottest first; ties break toward lower IDs for determinism. The sort
// runs over explicit (count, id) pairs — no indirect comparator through
// a shared counts slice — with the tie-break encoded in the comparison.
func HotClusters(accessCounts []int64) []int {
	type pair struct {
		count int64
		id    int32
	}
	pairs := make([]pair, len(accessCounts))
	for i, c := range accessCounts {
		pairs[i] = pair{count: c, id: int32(i)}
	}
	// The comparator is a total order (count desc, id asc), so the
	// unstable generic sort is deterministic — and reflection-free,
	// unlike sort.Slice.
	slices.SortFunc(pairs, func(a, b pair) int {
		if a.count != b.count {
			if a.count > b.count {
				return -1
			}
			return 1
		}
		return int(a.id) - int(b.id)
	})
	out := make([]int, len(pairs))
	for i, p := range pairs {
		out[i] = int(p.id)
	}
	return out
}
