package rag

import (
	"fmt"
	"runtime"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/des"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/hitrate"
	"vectorliterag/internal/llm"
	"vectorliterag/internal/metrics"
	"vectorliterag/internal/partition"
	"vectorliterag/internal/perfmodel"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/retrieval"
	"vectorliterag/internal/serve"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/workload"
)

// decision is a system's resource choice — coverage, split plan, LLM
// placement — computed once per run and shared by every replica that
// instantiates it. It is the output of the offline half of each
// baseline (for vLiteRAG, Algorithm 1).
type decision struct {
	rho       float64
	plan      *splitter.Plan // nil for CPU-only
	planBytes int64
	partition *partition.Result
	mu0       float64
	nDed      int // DED-GPU: GPUs dedicated to retrieval
}

// decide makes the per-kind resource decision from the access profile.
func decide(opts Options, prof *profiler.AccessProfile, cpuModel costmodel.SearchModel) (*decision, error) {
	switch opts.Kind {
	case CPUOnly:
		return &decision{}, nil

	case AllGPU:
		plan, err := splitter.Build(prof, 1.0, opts.Node.NumGPUs)
		if err != nil {
			return nil, err
		}
		return &decision{rho: 1, plan: plan, planBytes: plan.TotalBytes()}, nil

	case DedGPU:
		perGPU := opts.Node.GPU.UsableMem()
		nDed := int((opts.W.TotalIndexBytes() + perGPU - 1) / perGPU)
		if nDed < 1 {
			nDed = 1
		}
		if nDed >= opts.Node.NumGPUs {
			return nil, fmt.Errorf("rag: index needs %d dedicated GPUs, node has %d", nDed, opts.Node.NumGPUs)
		}
		if opts.Node.NumGPUs-nDed < opts.Model.TP {
			return nil, fmt.Errorf("rag: DED-GPU leaves %d GPUs, %s needs TP=%d", opts.Node.NumGPUs-nDed, opts.Model, opts.Model.TP)
		}
		plan, err := splitter.Build(prof, 1.0, nDed)
		if err != nil {
			return nil, err
		}
		return &decision{rho: 1, plan: plan, planBytes: plan.TotalBytes(), nDed: nDed}, nil

	case VLiteRAG, HedraRAG:
		if opts.Plan != nil && opts.Kind == VLiteRAG {
			// Serve an existing plan as-is ("build once, serve many").
			return &decision{rho: opts.Plan.Coverage, plan: opts.Plan, planBytes: opts.Plan.TotalBytes()}, nil
		}
		est, err := hitrate.NewEstimator(prof)
		if err != nil {
			return nil, err
		}
		perf, err := perfmodel.Fit(profiler.ProfileLatency(cpuModel, profiler.DefaultBatches()))
		if err != nil {
			return nil, err
		}
		mu0, err := bareCapacity(opts.Node, opts.Model, opts.Node.NumGPUs, opts.Shape)
		if err != nil {
			return nil, err
		}
		memKV := nodeKVBytes(opts.Node, opts.Model)
		d := &decision{mu0: mu0}
		if opts.Kind == VLiteRAG {
			part, err := partition.LatencyBounded(partition.Inputs{
				SLOSearch:    opts.SLOSearch,
				Epsilon:      opts.Epsilon,
				Perf:         perf,
				Est:          est,
				MemKV:        memKV,
				Mu0:          mu0,
				IndexBytesAt: splitter.IndexBytesAt(prof),
			})
			if err != nil {
				return nil, err
			}
			d.partition = &part
			d.rho = part.Rho
		} else if opts.HedraCoverageOverride > 0 {
			d.rho = opts.HedraCoverageOverride
		} else {
			part, err := partition.Hedra(partition.HedraInputs{
				Perf: perf, Est: est,
				MemKV: memKV, Mu0: mu0,
				IndexBytesAt: splitter.IndexBytesAt(prof),
				BatchCap:     opts.MaxBatch,
			})
			if err != nil {
				return nil, err
			}
			d.partition = &part
			d.rho = part.Rho
		}
		plan, err := splitter.Build(prof, d.rho, opts.Node.NumGPUs)
		if err != nil {
			return nil, err
		}
		if opts.Kind == VLiteRAG && opts.Precision != nil {
			if err := attachPrecision(opts, prof, plan, memKV); err != nil {
				return nil, err
			}
		}
		d.plan = plan
		d.planBytes = plan.TotalBytes()
		return d, nil

	default:
		return nil, fmt.Errorf("rag: unknown kind %q", opts.Kind)
	}
}

// attachPrecision runs the (tier, codec) refinement on a freshly built
// vLiteRAG plan: per-cluster SQ8 recall deltas from the profile, the
// upgrade budget as a fraction of the HBM the placement loop left to
// the KV pool, and the greedy assignment of partition.AssignPrecision.
// The refinement's extra bytes fold into the plan's shard accounting,
// so the KV pool downstream pays for them.
func attachPrecision(opts Options, prof *profiler.AccessProfile, plan *splitter.Plan, memKV int64) error {
	deltas, err := profiler.SQRecallDeltas(prof)
	if err != nil {
		return err
	}
	leftover := memKV - plan.TotalBytes()
	if leftover < 0 {
		leftover = 0
	}
	prec, err := partition.AssignPrecision(partition.PrecisionInputs{
		Prof:          prof,
		Plan:          plan,
		RecallDeltas:  deltas,
		SQRatio:       float64(opts.W.Spec.Dim) / float64(opts.W.Spec.CodeBytes),
		SQBudgetBytes: int64(opts.Precision.SQBudgetFrac * float64(leftover)),
		NVMeColdShare: opts.Precision.NVMeColdShare,
	})
	if err != nil {
		return err
	}
	plan.AttachPrecision(prec)
	return nil
}

// stageBuilders instantiates one replica of the decision: fresh GPU
// states with the shared plan applied, the retrieval-engine stage, and
// the LLM generation stage. Compose builds generation first, so the
// engine's Forward hook points at a live cluster — the same
// construction order the pre-pipeline monolith used. live, when
// non-nil, overlays streaming-ingest scan costs on the engine's cost
// tables (nil on every frozen-corpus path).
func stageBuilders(sim *des.Sim, opts Options, d *decision, cpuModel costmodel.SearchModel, live retrieval.LiveCost) (retr, gen serve.Builder) {
	states := gpu.NewStates(opts.Node)
	gm := costmodel.GPUScanModel{GPU: opts.Node.GPU}
	llmStates := states

	var makeEngine func(cfg retrieval.Config) retrieval.Engine
	switch opts.Kind {
	case CPUOnly:
		makeEngine = func(cfg retrieval.Config) retrieval.Engine { return retrieval.NewCPUOnly(cfg) }
	case AllGPU:
		applyShards(states, d.plan)
		makeEngine = func(cfg retrieval.Config) retrieval.Engine {
			return retrieval.NewAllGPU(cfg, d.plan, states, gm)
		}
	case DedGPU:
		dedStates := states[opts.Node.NumGPUs-d.nDed:]
		llmStates = states[:opts.Node.NumGPUs-d.nDed]
		applyShards(dedStates, d.plan)
		makeEngine = func(cfg retrieval.Config) retrieval.Engine {
			return retrieval.NewDedGPU(cfg, d.plan, dedStates, gm)
		}
	case VLiteRAG:
		applyShards(states, d.plan)
		makeEngine = func(cfg retrieval.Config) retrieval.Engine {
			h := retrieval.NewHybrid(cfg, d.plan, states, gm)
			h.Dispatcher = !opts.DisableDispatcher
			return h
		}
	case HedraRAG:
		applyShards(states, d.plan)
		makeEngine = func(cfg retrieval.Config) retrieval.Engine {
			return retrieval.NewHedra(cfg, d.plan, states, gm)
		}
	}

	retr = serve.RetrievalStage(func(forward serve.Sink) (retrieval.Engine, error) {
		return makeEngine(retrieval.Config{
			Sim:      sim,
			W:        opts.W,
			CPUModel: cpuModel,
			Forward:  forward,
			Live:     live,
			MaxBatch: opts.MaxBatch,
			NVMe:     opts.Node.NVMe,
		}), nil
	})
	gen = serve.GenerationStage(func() (*llm.Cluster, error) {
		return llm.NewCluster(sim, opts.Node, opts.Model, llmStates, llm.DefaultEngineConfig())
	})
	return retr, gen
}

// profileFor runs the offline access profiling a run's decision needs.
func profileFor(opts Options) (*profiler.AccessProfile, error) {
	n := opts.ProfileQueries
	if n <= 0 {
		n = 4000
	}
	return profiler.CollectAccess(opts.W, n, opts.Seed+1)
}

// arrivalsFor returns the run's pipeline source: the constant-rate
// Poisson stream, or the inhomogeneous (thinned) stream when a rate
// schedule is set.
func arrivalsFor(opts Options) *serve.Arrivals {
	if opts.RateSchedule != nil {
		return serve.NewScheduledArrivals(opts.W, opts.RateSchedule, opts.Shape, opts.Seed+7)
	}
	return serve.NewArrivals(opts.W, opts.Rate, opts.Shape, opts.Seed+7)
}

// serveSection measures the simulation section of a run — wall clock
// and heap-allocation deltas around arrival scheduling plus the event
// loop, excluding the offline decision work. It feeds the Serve*
// fields of Result, the data the bench-serve experiment tracks across
// PRs.
type serveSection struct {
	t0 time.Time
	m0 runtime.MemStats
}

func beginServeSection() *serveSection {
	s := &serveSection{}
	// Collect the offline phase's garbage first: with the serving loop
	// itself allocation-free, no GC cycle then lands inside the section,
	// so the measurement is of the simulation, not of collecting the
	// profiler's leftovers.
	runtime.GC()
	runtime.ReadMemStats(&s.m0)
	s.t0 = time.Now()
	return s
}

func (s *serveSection) end() (wall time.Duration, allocs, bytes uint64) {
	wall = time.Since(s.t0)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	return wall, m1.Mallocs - s.m0.Mallocs, m1.TotalAlloc - s.m0.TotalAlloc
}

// installDrift schedules the drift trace's popularity rotations on the
// virtual timeline and returns a restore hook that resets the workload
// to its pre-run rotation, so one run's drift cannot leak into the
// next (static and adaptive arms replay the identical trace).
func installDrift(sim *des.Sim, opts Options) (restore func()) {
	initial := opts.W.PopularityRotation()
	for _, ev := range opts.Drift {
		ev := ev
		sim.At(des.Time(ev.At), func() { opts.W.ApplyDrift(ev) })
	}
	return func() { opts.W.SetPopularityRotation(initial) }
}

// Run executes one evaluation point: it makes the system's resource
// decision, composes the serving pipeline (admission → retrieval →
// generation → collector), and drives Poisson arrivals through it in
// virtual time.
func Run(opts Options) (*Result, error) {
	if opts.resilient() {
		return nil, fmt.Errorf("rag: fault injection and resilience need replicas to fail over to — use RunCluster")
	}
	sloTotal, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	prof, err := profileFor(opts)
	if err != nil {
		return nil, err
	}
	cpuModel := costmodel.NewSearchModel(opts.Node.CPU, opts.W.Spec)
	d, err := decide(opts, prof, cpuModel)
	if err != nil {
		return nil, err
	}

	var sim des.Sim
	pool := &workload.Pool{}
	coll := serve.NewCollector()
	retr, gen := stageBuilders(&sim, opts, d, cpuModel, nil)

	// Overload control, when configured, meters the pipeline through a
	// single-class FairScheduler: bounded admission ahead of retrieval,
	// the brownout controller stamping dispatches and observing
	// completions. Nil leaves the classic scheduler-free composition.
	var rig *overloadRig
	var sched *serve.FairScheduler
	if opts.Overload != nil {
		sched, err = serve.NewFairScheduler([]serve.TenantClass{{Weight: 1, Priority: 0}}, 32)
		if err != nil {
			return nil, err
		}
		budgets, bias := opts.overloadBudget()
		rig, err = rigOverload(&sim, opts.Overload, sched, budgets, bias,
			rejectSink(coll.Abandon, pool.Release))
		if err != nil {
			return nil, err
		}
	}
	// Terminal sink: finalize the collector record (and feed the
	// brownout monitor), then recycle the request — the pool release
	// must come last.
	terminal := teeObserve(rig, coll.Done, pool.Release)
	builders := []serve.Builder{serve.Admit(coll)}
	if sched != nil {
		builders = append(builders, serve.Scheduled(sched))
	}
	builders = append(builders, retr, gen)
	pipe, err := serve.Compose(&sim, terminal, builders...)
	if err != nil {
		return nil, err
	}
	if sched != nil {
		// Meter the TTFT section as the multi-tenant path does: the slot
		// frees at first token, completion re-installs the terminal sink.
		pipe.Generation().Cluster.SetCallbacks(sched.Release, terminal)
	}
	defer installDrift(&sim, opts)()
	arr := arrivalsFor(opts)
	arr.SetPool(pool)
	sec := beginServeSection()
	pipe.Run(arr, opts.Duration, opts.Drain)
	wall, allocs, bytes := sec.end()

	res := &Result{
		Kind: opts.Kind, Rate: opts.Rate, SLOTotal: sloTotal,
		ServeWall: wall, ServeAllocs: allocs, ServeBytes: bytes,
		Rho: d.rho, PlanBytes: d.planBytes, Mu0: d.mu0, Partition: d.partition,
		Requests:  coll.Requests(),
		Generated: coll.Admitted(),
		AvgBatch:  pipe.Retrieval().AvgBatch(),
		LLMGPUs:   pipe.Generation().GPUs(opts.Model.TP),
		Summary:   coll.Summarize(sloTotal, des.Time(opts.Warmup)),
	}
	if d.plan != nil && d.plan.Prec != nil {
		res.SQClusters = d.plan.Prec.SQClusters
		res.NVMeClusters = d.plan.Prec.NVMeClusters
		if rr, ok := pipe.Retrieval().Engine.(retrieval.RecallReporter); ok {
			res.RecallGain = rr.RecallGain()
		}
	}
	if rig != nil {
		res.Overload = rig.report(opts.Overload, 1,
			des.Time(opts.Duration+opts.Drain), opts.Duration+opts.Drain)
	}
	return res, nil
}

// ReplicaResult reports one replica's share of a cluster run.
type ReplicaResult struct {
	Submitted int
	Summary   metrics.Summary
	AvgBatch  float64
	LLMGPUs   int
}

// ClusterResult is one multi-replica evaluation point: the aggregate
// metrics over every request plus the per-replica breakdown.
type ClusterResult struct {
	Result
	Policy     serve.Policy
	PerReplica []ReplicaResult
	// Workers and NetDelay echo the execution configuration of a sharded
	// run (zero on the single-timeline path): how many worker goroutines
	// executed the shards — a wall-clock knob only, never visible in the
	// schedule — and the modeled network transit that doubled as the
	// conservative lookahead.
	Workers  int
	NetDelay time.Duration
	// Resilience reports the failure-handling addendum of a resilient
	// run (nil on fault-free runs, which never build the resilient
	// router).
	Resilience *ResilienceReport
}

// RunCluster executes one evaluation point on N independent node
// pipelines behind a front-end router. The resource decision is made
// once (the replicas are identical nodes) and instantiated per replica
// with its own GPU states, retrieval engine, and LLM cluster; a single
// Poisson stream feeds the router, so rate is the cluster-wide arrival
// rate.
func RunCluster(opts Options, replicas int, policy serve.Policy) (*ClusterResult, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("rag: need at least one replica, got %d", replicas)
	}
	if opts.NetDelay < 0 {
		return nil, fmt.Errorf("rag: negative NetDelay %v", opts.NetDelay)
	}
	if opts.Overload != nil {
		return nil, fmt.Errorf("rag: overload control runs on single-node Run and multi-tenant serving; cluster runs degrade through the resilient front end instead")
	}
	if opts.resilient() {
		// Failure injection runs on the single shared timeline: crash
		// failover and hedging need the router and every replica on one
		// event queue, and the schedule is then trivially identical for
		// any Workers value.
		return runClusterResilient(opts, replicas, policy)
	}
	// Workers > 1 needs shards to spread over; sharding needs a positive
	// network delay for lookahead, so asking for parallelism opts into
	// the modeled network.
	if opts.NetDelay == 0 && opts.Workers > 1 {
		opts.NetDelay = DefaultNetDelay
	}
	if opts.NetDelay > 0 {
		return runClusterSharded(opts, replicas, policy)
	}
	// Resolve the policy before the expensive profiling/decision work so
	// a typo fails fast.
	policy, err := serve.ResolvePolicy(policy)
	if err != nil {
		return nil, err
	}
	sloTotal, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	prof, err := profileFor(opts)
	if err != nil {
		return nil, err
	}
	cpuModel := costmodel.NewSearchModel(opts.Node.CPU, opts.W.Spec)
	d, err := decide(opts, prof, cpuModel)
	if err != nil {
		return nil, err
	}

	var sim des.Sim
	pool := &workload.Pool{}
	coll := serve.NewCollector()
	reps := make([]*serve.Replica, replicas)
	repColls := make([]*serve.Collector, replicas)
	for i := range reps {
		rep := serve.NewReplica()
		repColl := serve.NewCollector()
		retr, gen := stageBuilders(&sim, opts, d, cpuModel, nil)
		pipe, err := serve.Compose(&sim,
			serve.Tee(coll.Done, repColl.Done, rep.Release, pool.Release),
			serve.Admit(repColl), retr, gen)
		if err != nil {
			return nil, err
		}
		rep.Bind(pipe)
		reps[i] = rep
		repColls[i] = repColl
	}
	router, err := serve.NewRouter(policy, reps)
	if err != nil {
		return nil, err
	}
	front, err := serve.Compose(&sim, router.Submit, serve.Admit(coll))
	if err != nil {
		return nil, err
	}
	defer installDrift(&sim, opts)()
	arr := arrivalsFor(opts)
	arr.SetPool(pool)
	sec := beginServeSection()
	front.Run(arr, opts.Duration, opts.Drain)
	wall, allocs, bytes := sec.end()

	res := &ClusterResult{
		Result: Result{
			Kind: opts.Kind, Rate: opts.Rate, SLOTotal: sloTotal,
			ServeWall: wall, ServeAllocs: allocs, ServeBytes: bytes,
			Rho: d.rho, PlanBytes: d.planBytes, Mu0: d.mu0, Partition: d.partition,
			Requests:  coll.Requests(),
			Generated: coll.Admitted(),
			Summary:   coll.Summarize(sloTotal, des.Time(opts.Warmup)),
		},
		Policy: policy,
	}
	var batchSum, gainSum float64
	for i, rep := range reps {
		pipe := rep.Pipeline()
		rr := ReplicaResult{
			Submitted: rep.Submitted(),
			Summary:   repColls[i].Summarize(sloTotal, des.Time(opts.Warmup)),
			AvgBatch:  pipe.Retrieval().AvgBatch(),
			LLMGPUs:   pipe.Generation().GPUs(opts.Model.TP),
		}
		res.PerReplica = append(res.PerReplica, rr)
		res.LLMGPUs += rr.LLMGPUs
		batchSum += rr.AvgBatch * float64(rr.Submitted)
		if g, ok := pipe.Retrieval().Engine.(retrieval.RecallReporter); ok {
			gainSum += g.RecallGain() * float64(rr.Submitted)
		}
	}
	if res.Generated > 0 {
		res.AvgBatch = batchSum / float64(res.Generated)
		res.RecallGain = gainSum / float64(res.Generated)
	}
	if d.plan != nil && d.plan.Prec != nil {
		res.SQClusters = d.plan.Prec.SQClusters
		res.NVMeClusters = d.plan.Prec.NVMeClusters
	}
	return res, nil
}
