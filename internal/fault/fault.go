// Package fault is the deterministic failure-injection subsystem: a
// schedule of replica crash/recovery events, straggler episodes
// (scaled LLM service rates for a window), and degraded PCIe/HBM
// bandwidth episodes (scaled retrieval service rates), delivered onto
// the DES timeline through hooks the serving layer installs.
//
// Everything is virtual-time events: a schedule is data, an Injector
// turns it into simulator events, and the same seed or script always
// produces the same storm — fault runs are as bit-reproducible as
// fault-free ones. An empty schedule installs nothing.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/rng"
)

// Kind is a failure mode.
type Kind string

// The injectable failure modes.
const (
	// Crash takes a replica out entirely at At; it recovers (rejoins the
	// candidate set) Duration later. In-flight requests on the replica
	// are lost — the resilience layer decides whether they fail or fail
	// over.
	Crash Kind = "crash"
	// Straggler scales a replica's LLM iteration time by Factor for
	// Duration — the slow-GPU / noisy-neighbor episode.
	Straggler Kind = "straggler"
	// Bandwidth scales a replica's retrieval service time by Factor for
	// Duration — degraded PCIe/HBM bandwidth on the search path.
	Bandwidth Kind = "bandwidth"
)

// Kinds lists the supported failure modes.
func Kinds() []Kind { return []Kind{Crash, Straggler, Bandwidth} }

// Event is one scheduled failure episode on a replica.
type Event struct {
	Kind    Kind
	Replica int
	// At is the virtual onset instant.
	At time.Duration
	// Duration is how long the episode lasts; the replica recovers (or
	// the slowdown lifts) at At+Duration.
	Duration time.Duration
	// Factor is the service-time multiplier of Straggler/Bandwidth
	// episodes (2 = half speed). Ignored for Crash.
	Factor float64
}

// Schedule is a fault storm: the episodes injected into one run. Order
// does not matter; the Injector sorts deterministically.
type Schedule []Event

// Validate checks every event against the run's replica count.
func (s Schedule) Validate(replicas int) error {
	for i, ev := range s {
		switch ev.Kind {
		case Crash, Straggler, Bandwidth:
		default:
			return fmt.Errorf("fault: event %d: unknown kind %q (have %v)", i, ev.Kind, Kinds())
		}
		if ev.Replica < 0 || ev.Replica >= replicas {
			return fmt.Errorf("fault: event %d: replica %d out of range [0,%d)", i, ev.Replica, replicas)
		}
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d: negative onset %v", i, ev.At)
		}
		if ev.Duration <= 0 {
			return fmt.Errorf("fault: event %d: non-positive duration %v", i, ev.Duration)
		}
		if ev.Kind != Crash && ev.Factor < 1 {
			return fmt.Errorf("fault: event %d: %s factor %.2f must be >= 1 (a service-time multiplier)", i, ev.Kind, ev.Factor)
		}
	}
	return nil
}

// String renders the schedule in the Parse grammar.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, ev := range s {
		p := fmt.Sprintf("%s@%v:r%d:%v", ev.Kind, ev.At, ev.Replica, ev.Duration)
		if ev.Kind != Crash {
			p += fmt.Sprintf(":x%g", ev.Factor)
		}
		parts[i] = p
	}
	return strings.Join(parts, ",")
}

// Parse reads the scripted CLI form: comma-separated events, each
//
//	kind@onset:rN:duration[:xFactor]
//
// e.g. "crash@20s:r0:10s,straggler@35s:r1:8s:x2.5,bandwidth@50s:r2:10s:x3".
// The factor is required for straggler/bandwidth and rejected for
// crash. Use Random for seeded storms.
func Parse(s string) (Schedule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out Schedule
	for _, part := range strings.Split(s, ",") {
		ev, err := parseEvent(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

func parseEvent(part string) (Event, error) {
	bad := func(why string) (Event, error) {
		return Event{}, fmt.Errorf("fault: bad event %q: %s (want kind@onset:rN:duration[:xFactor], e.g. crash@20s:r0:10s or straggler@35s:r1:8s:x2.5)", part, why)
	}
	kindAt, rest, ok := strings.Cut(part, "@")
	if !ok {
		return bad("missing '@'")
	}
	ev := Event{Kind: Kind(kindAt)}
	switch ev.Kind {
	case Crash, Straggler, Bandwidth:
	default:
		return bad(fmt.Sprintf("unknown kind %q (have %v)", kindAt, Kinds()))
	}
	fields := strings.Split(rest, ":")
	if len(fields) < 3 {
		return bad("missing fields")
	}
	at, err := time.ParseDuration(fields[0])
	if err != nil {
		return bad("bad onset: " + err.Error())
	}
	ev.At = at
	if !strings.HasPrefix(fields[1], "r") {
		return bad("replica must be rN")
	}
	rep, err := strconv.Atoi(fields[1][1:])
	if err != nil {
		return bad("bad replica: " + err.Error())
	}
	ev.Replica = rep
	dur, err := time.ParseDuration(fields[2])
	if err != nil {
		return bad("bad duration: " + err.Error())
	}
	ev.Duration = dur
	switch {
	case len(fields) == 3:
		if ev.Kind != Crash {
			return bad(string(ev.Kind) + " needs an xFactor field")
		}
	case len(fields) == 4:
		if ev.Kind == Crash {
			return bad("crash takes no factor")
		}
		if !strings.HasPrefix(fields[3], "x") {
			return bad("factor must be xN")
		}
		f, err := strconv.ParseFloat(fields[3][1:], 64)
		if err != nil {
			return bad("bad factor: " + err.Error())
		}
		ev.Factor = f
	default:
		return bad("too many fields")
	}
	return ev, nil
}

// Random generates a seeded failure storm: n episodes with kinds drawn
// uniformly, replicas drawn uniformly, onsets uniform over the middle
// [10%, 80%] of the horizon, durations uniform in [5%, 15%] of the
// horizon, and slowdown factors uniform in [1.5, 4). The same
// (seed, replicas, horizon, n) always produces the same storm.
func Random(seed uint64, replicas int, horizon time.Duration, n int) Schedule {
	r := rng.New(rng.Stream(seed, 0xFA17))
	h := float64(horizon)
	out := make(Schedule, 0, n)
	for i := 0; i < n; i++ {
		ev := Event{
			Kind:     Kinds()[r.Intn(3)],
			Replica:  r.Intn(replicas),
			At:       time.Duration(h * (0.10 + 0.70*r.Float64())),
			Duration: time.Duration(h * (0.05 + 0.10*r.Float64())),
		}
		if ev.Kind != Crash {
			ev.Factor = 1.5 + 2.5*r.Float64()
		}
		out = append(out, ev)
	}
	return out
}

// Hooks are the serving-layer entry points the Injector drives. Any
// nil hook is skipped (a run without a resilient router can still take
// slowdown episodes, and vice versa).
type Hooks struct {
	// Crash / Recover toggle a replica's membership in the router's
	// candidate set; Crash also fails over its in-flight requests.
	Crash   func(replica int)
	Recover func(replica int)
	// SlowLLM scales replica's LLM iteration time by factor until the
	// given virtual instant.
	SlowLLM func(replica int, factor float64, until des.Time)
	// SlowRetrieval scales replica's retrieval service time by factor
	// until the given virtual instant.
	SlowRetrieval func(replica int, factor float64, until des.Time)
}

// Install schedules the whole storm on the simulator. Events are
// sorted by (At, Replica, Kind) first, so installation order — and
// therefore event sequence numbers and same-instant tie-breaks — is a
// pure function of the schedule, never of its construction order.
func Install(sim *des.Sim, s Schedule, hooks Hooks) {
	sorted := append(Schedule(nil), s...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].At != sorted[j].At {
			return sorted[i].At < sorted[j].At
		}
		if sorted[i].Replica != sorted[j].Replica {
			return sorted[i].Replica < sorted[j].Replica
		}
		return sorted[i].Kind < sorted[j].Kind
	})
	for _, ev := range sorted {
		ev := ev
		until := des.Time(ev.At + ev.Duration)
		switch ev.Kind {
		case Crash:
			if hooks.Crash != nil {
				sim.At(des.Time(ev.At), func() { hooks.Crash(ev.Replica) })
			}
			if hooks.Recover != nil {
				sim.At(until, func() { hooks.Recover(ev.Replica) })
			}
		case Straggler:
			if hooks.SlowLLM != nil {
				sim.At(des.Time(ev.At), func() { hooks.SlowLLM(ev.Replica, ev.Factor, until) })
			}
		case Bandwidth:
			if hooks.SlowRetrieval != nil {
				sim.At(des.Time(ev.At), func() { hooks.SlowRetrieval(ev.Replica, ev.Factor, until) })
			}
		}
	}
}
