// Package serve is the composable serving-pipeline layer: it models a
// RAG deployment as an explicit chain of stages over the discrete-event
// simulator — an Arrivals source, an Admission stage, a retrieval
// stage, a Generation stage wrapping the LLM cluster, and a Collector
// sink — the stage-graph framing RAG-Stack and HedraRAG use for RAG
// serving, applied to this reproduction's simulator substrate.
//
// Each baseline system (CPU-Only, DED-GPU, ALL-GPU, vLiteRAG, HedraRAG)
// is a declarative composition of these stages; internal/rag supplies
// the per-system resource layout (GPU memory split, engine choice, LLM
// placement) and delegates execution here. Multi-node scenarios reuse
// the same pieces: a Router stage fans requests out to N independent
// replica pipelines under a round-robin or least-loaded policy.
//
// Construction runs back-to-front: Compose builds the last stage first
// and hands each stage its downstream neighbor's Submit as the forward
// hook, which is exactly the wiring the retrieval engines need (their
// Forward callback is fixed at construction).
package serve

import (
	"fmt"
	"time"

	"vectorliterag/internal/des"
	"vectorliterag/internal/metrics"
	"vectorliterag/internal/workload"
)

// Sink consumes a request at the current virtual instant. Stage outputs
// and terminal collectors are both Sinks.
type Sink func(*workload.Request)

// Tee fans one request out to several sinks in order.
func Tee(sinks ...Sink) Sink {
	return func(req *workload.Request) {
		for _, s := range sinks {
			s(req)
		}
	}
}

// Stage is one station of the serving pipeline: requests enter through
// Submit and leave through the downstream sink the stage was built
// with. Stages schedule their service time on the shared simulator.
type Stage interface {
	Submit(req *workload.Request)
	Name() string
}

// Builder constructs a stage bound to its downstream sink.
type Builder func(next Sink) (Stage, error)

// Pipeline is a linear chain of stages ending in a terminal sink.
type Pipeline struct {
	Sim    *des.Sim
	stages []Stage // upstream first
	head   Sink
}

// Compose builds a pipeline from stage builders, back to front, so each
// stage receives its downstream neighbor's Submit as the forward hook.
// A nil terminal sink discards completed requests.
func Compose(sim *des.Sim, terminal Sink, builders ...Builder) (*Pipeline, error) {
	if sim == nil {
		return nil, fmt.Errorf("serve: nil simulator")
	}
	if len(builders) == 0 {
		return nil, fmt.Errorf("serve: empty pipeline")
	}
	next := terminal
	if next == nil {
		next = func(*workload.Request) {}
	}
	stages := make([]Stage, len(builders))
	for i := len(builders) - 1; i >= 0; i-- {
		st, err := builders[i](next)
		if err != nil {
			return nil, fmt.Errorf("serve: stage %d: %w", i, err)
		}
		stages[i] = st
		next = st.Submit
	}
	return &Pipeline{Sim: sim, stages: stages, head: next}, nil
}

// Submit feeds a request into the pipeline's first stage.
func (p *Pipeline) Submit(req *workload.Request) { p.head(req) }

// Stages returns the pipeline's stages, upstream first.
func (p *Pipeline) Stages() []Stage { return p.stages }

// Retrieval returns the pipeline's retrieval stage, or nil.
func (p *Pipeline) Retrieval() *Retrieval {
	for _, st := range p.stages {
		if r, ok := st.(*Retrieval); ok {
			return r
		}
	}
	return nil
}

// Generation returns the pipeline's generation stage, or nil.
func (p *Pipeline) Generation() *Generation {
	for _, st := range p.stages {
		if g, ok := st.(*Generation); ok {
			return g
		}
	}
	return nil
}

// Run drives the arrival source into the pipeline for the given virtual
// window and then lets the simulation drain.
func (p *Pipeline) Run(arr *Arrivals, duration, drain time.Duration) {
	p.RunAux(arr, duration, drain)
}

// Aux is an auxiliary event source started alongside the request
// arrivals — e.g. a streaming-ingest mutation generator. Start must
// schedule the source's events on sim, bounded by the until horizon.
type Aux interface {
	Start(sim *des.Sim, until des.Time)
}

// AuxFunc adapts a function to the Aux interface.
type AuxFunc func(sim *des.Sim, until des.Time)

// Start implements Aux.
func (f AuxFunc) Start(sim *des.Sim, until des.Time) { f(sim, until) }

// RunAux is Run with auxiliary sources sharing the pipeline's timeline:
// each aux source starts before the first arrival fires, bounded by the
// same generation horizon, and the drain window lets both request and
// aux events settle. With no aux sources it is exactly Run — same event
// sequence, bit-identical results.
func (p *Pipeline) RunAux(arr *Arrivals, duration, drain time.Duration, aux ...Aux) {
	for _, a := range aux {
		a.Start(p.Sim, des.Time(duration))
	}
	arr.Start(p.Sim, des.Time(duration), p.Submit)
	p.Sim.RunUntil(des.Time(duration + drain))
}

// Collector is the pipeline's terminal sink: it streams every admitted
// request into a compact per-request record (arrival order) and
// summarizes the run's metrics once the simulation drains.
//
// Records are *values*: Done copies the request's final timestamps into
// its record, after which the pooled request object is free to be
// recycled by a later arrival. Requests still in flight stay live (the
// pool never sees them), and their current state is re-read at
// aggregation time — so a request stuck mid-generation when the clock
// stops reports exactly the fields it had then, as it did before
// pooling existed.
type Collector struct {
	records   []workload.Request  // per-request snapshots, arrival order
	live      []*workload.Request // non-nil until the request finalizes
	idx       map[*workload.Request]int32
	completed int
	agg       metrics.Summarizer
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{idx: make(map[*workload.Request]int32)}
}

// Admit records a request entering the system (wired into the Admission
// stage, so the record order equals the arrival order).
func (c *Collector) Admit(req *workload.Request) {
	i := int32(len(c.records))
	c.records = append(c.records, *req)
	c.live = append(c.live, req)
	c.idx[req] = i
}

// Done finalizes a completed request's record (wired into the terminal
// sink, upstream of the pool release). The map delete/re-insert cycle
// reuses bucket memory, so steady state allocates nothing.
func (c *Collector) Done(req *workload.Request) {
	c.completed++
	if i, ok := c.idx[req]; ok {
		c.records[i] = *req
		c.live[i] = nil
		delete(c.idx, req)
	}
}

// Replace redirects a record's live tracking from old to new: the
// record that admission registered under old now follows new, and old
// is forgotten (its pooled object may be recycled safely). The
// resilience layer uses this when a retry, failover, or hedge copy
// supersedes the original in-flight request — the admitted record then
// reports the attempt that actually (eventually) serves the user.
func (c *Collector) Replace(old, new *workload.Request) {
	if i, ok := c.idx[old]; ok {
		delete(c.idx, old)
		c.idx[new] = i
		c.live[i] = new
		c.records[i] = *new
	}
}

// Abandon finalizes a record *now* with whatever state its request has
// and stops tracking the live pointer — the terminal bookkeeping for a
// request the resilience layer gives up on (retries exhausted). The
// frozen record keeps FirstToken==0, so the request counts as unserved.
// Unlike Done it does not count a completion.
func (c *Collector) Abandon(req *workload.Request) {
	if i, ok := c.idx[req]; ok {
		c.records[i] = *req
		c.live[i] = nil
		delete(c.idx, req)
	}
}

// refresh re-snapshots every still-live request so aggregate views see
// in-flight state (e.g. a first token emitted but decode unfinished).
func (c *Collector) refresh() {
	for i, r := range c.live {
		if r != nil {
			c.records[i] = *r
		}
	}
}

// Requests returns every admitted request's record in arrival order.
func (c *Collector) Requests() []workload.Request {
	c.refresh()
	return c.records
}

// Admitted returns the number of requests that entered the system.
func (c *Collector) Admitted() int { return len(c.records) }

// Completed returns the number of requests that finished generation.
func (c *Collector) Completed() int { return c.completed }

// Summarize aggregates the paper's serving metrics over the admitted
// requests, reusing the collector's aggregation scratch.
func (c *Collector) Summarize(sloTotal time.Duration, warmup des.Time) metrics.Summary {
	c.refresh()
	return c.agg.Summarize(c.records, sloTotal, warmup)
}
