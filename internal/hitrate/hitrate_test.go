package hitrate

import (
	"math"
	"testing"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/rng"
)

func buildEstimator(t *testing.T, spec dataset.Spec) (*Estimator, *profiler.AccessProfile) {
	t.Helper()
	gc := dataset.GenConfig{NCenters: 64, PerCenter: 64, Dim: 16, PhysNList: 64, PhysNProbe: 8, Templates: 256, Seed: 2}
	w, err := dataset.Build(spec, gc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profiler.CollectAccess(w, 4000, 17)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	return e, p
}

func TestMeanCurveMonotone(t *testing.T) {
	e, _ := buildEstimator(t, dataset.Orcas1K)
	prev := -1.0
	for cov := 0.0; cov <= 1.0001; cov += 0.05 {
		m := e.MeanHitRate(cov)
		if m < prev-1e-12 {
			t.Fatalf("mean hit rate fell at coverage %v", cov)
		}
		prev = m
	}
	if got := e.MeanHitRate(0); got != 0 {
		t.Fatalf("mean at 0 coverage = %v", got)
	}
	if got := e.MeanHitRate(1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("mean at full coverage = %v", got)
	}
}

func TestMeanMatchesEmpirical(t *testing.T) {
	// The incremental mean curve must agree with directly measured
	// work-weighted hit rates on fresh queries.
	e, p := buildEstimator(t, dataset.Orcas1K)
	r := rng.New(99)
	fresh := p.W.SampleMany(r, 3000)
	for _, cov := range []float64{0.1, 0.2, 0.4} {
		k := e.Clusters(cov)
		mask := p.HotMask(k)
		var mean float64
		for _, q := range fresh {
			mean += p.W.WorkHitRate(q, mask)
		}
		mean /= float64(len(fresh))
		if got := e.MeanHitRate(cov); math.Abs(got-mean) > 0.05 {
			t.Fatalf("coverage %v: modeled mean %v vs empirical %v", cov, got, mean)
		}
	}
}

func TestSkewMeansHighHitRateAtLowCoverage(t *testing.T) {
	// ORCAS-like skew: 20% coverage should cover most work (Fig. 6).
	e, _ := buildEstimator(t, dataset.Orcas1K)
	if got := e.MeanHitRate(0.2); got < 0.7 {
		t.Fatalf("ORCAS mean hit rate at 20%% coverage = %v, want > 0.7", got)
	}
	// Wiki-All should be noticeably lower at the same coverage.
	ew, _ := buildEstimator(t, dataset.WikiAll)
	if gw := ew.MeanHitRate(0.2); gw >= e.MeanHitRate(0.2) {
		t.Fatalf("Wiki-All hit rate %v >= ORCAS %v at 20%%", gw, e.MeanHitRate(0.2))
	}
}

func TestVarianceParabola(t *testing.T) {
	e, _ := buildEstimator(t, dataset.WikiAll)
	if e.Variance(0) != 0 || e.Variance(1) != 0 {
		t.Fatal("variance at eta=0/1 must vanish")
	}
	peak := e.Variance(0.5)
	if peak <= 0 {
		t.Fatal("variance peak not positive")
	}
	if e.Variance(0.25) >= peak || e.Variance(0.75) >= peak {
		t.Fatal("variance not peaked at 0.5")
	}
	if math.Abs(peak-4*e.SigmaMax2()*0.25) > 1e-12 {
		t.Fatal("peak must equal sigmaMax2")
	}
}

func TestVarianceModelTracksEmpirical(t *testing.T) {
	// Fig. 8 right: the parabolic approximation should track the
	// empirical variance within a factor ~2 across the mean range.
	e, p := buildEstimator(t, dataset.WikiAll)
	nlist := len(p.Counts)
	for _, frac := range []float64{0.15, 0.3, 0.5, 0.7} {
		k := int(frac * float64(nlist))
		if k == 0 {
			continue
		}
		mean := e.MeanHitRate(float64(k) / float64(nlist))
		if mean < 0.05 || mean > 0.95 {
			continue
		}
		emp := e.EmpiricalVariance(p, k)
		mod := e.Variance(mean)
		if emp <= 0 {
			continue
		}
		if mod/emp > 3.0 || emp/mod > 3.0 {
			t.Fatalf("coverage %v (mean %.2f): model var %.4g vs empirical %.4g", frac, mean, mod, emp)
		}
	}
}

func TestMinHitRateDecreasesWithBatch(t *testing.T) {
	e, _ := buildEstimator(t, dataset.Orcas1K)
	const cov = 0.2
	prev := math.Inf(1)
	for _, b := range []int{1, 2, 4, 8, 16} {
		m := e.MinHitRate(cov, b)
		if m > prev+1e-9 {
			t.Fatalf("min hit rate rose with batch %d", b)
		}
		if m < 0 || m > 1 {
			t.Fatalf("min hit rate %v out of range", m)
		}
		prev = m
	}
}

func TestMinHitRateBelowMean(t *testing.T) {
	e, _ := buildEstimator(t, dataset.Orcas1K)
	cov := 0.2
	if e.MinHitRate(cov, 8) >= e.MeanHitRate(cov) {
		t.Fatal("batch-minimum not below mean")
	}
}

func TestMinHitRateMatchesMonteCarlo(t *testing.T) {
	// Validate Eq. 2 end to end: expected min of batch-8 Beta draws.
	e, _ := buildEstimator(t, dataset.WikiAll)
	cov := 0.3
	b, ok := e.BetaAt(cov)
	if !ok {
		t.Fatal("no Beta at coverage 0.3")
	}
	r := rng.New(5)
	const trials = 20000
	sum := 0.0
	for i := 0; i < trials; i++ {
		minV := 1.0
		for j := 0; j < 8; j++ {
			v := r.Beta(b.Alpha, b.Beta)
			if v < minV {
				minV = v
			}
		}
		sum += minV
	}
	mc := sum / trials
	if got := e.MinHitRate(cov, 8); math.Abs(got-mc) > 0.02 {
		t.Fatalf("MinHitRate %v vs Monte Carlo %v", got, mc)
	}
}

func TestCoverageForMinHitRateInverts(t *testing.T) {
	e, _ := buildEstimator(t, dataset.Orcas1K)
	for _, target := range []float64{0.3, 0.5, 0.7} {
		cov, ok := e.CoverageForMinHitRate(target, 6)
		if !ok {
			t.Fatalf("target %v reported infeasible", target)
		}
		if got := e.MinHitRate(cov, 6); got < target-0.02 {
			t.Fatalf("coverage %v gives min hit rate %v < target %v", cov, got, target)
		}
		// Minimality: slightly less coverage must miss the target.
		step := 2.0 / float64(e.nlist)
		if cov > step {
			if again := e.MinHitRate(cov-step, 6); again >= target+0.02 {
				t.Fatalf("coverage not minimal: %v-%v still gives %v", cov, step, again)
			}
		}
	}
}

func TestCoverageForMinHitRateEdges(t *testing.T) {
	e, _ := buildEstimator(t, dataset.WikiAll)
	if cov, ok := e.CoverageForMinHitRate(0, 4); !ok || cov != 0 {
		t.Fatalf("eta=0 => coverage 0, got %v,%v", cov, ok)
	}
	if _, ok := e.CoverageForMinHitRate(1.5, 4); ok {
		t.Fatal("eta>1 reported feasible")
	}
}

func TestBetaAtDegenerateCoverage(t *testing.T) {
	e, _ := buildEstimator(t, dataset.WikiAll)
	if _, ok := e.BetaAt(0); ok {
		t.Fatal("Beta at zero coverage should be degenerate")
	}
	if _, ok := e.BetaAt(1); ok {
		t.Fatal("Beta at full coverage should be degenerate")
	}
}

func TestBetaMomentsMatchEstimator(t *testing.T) {
	e, _ := buildEstimator(t, dataset.Orcas1K)
	cov := 0.25
	b, ok := e.BetaAt(cov)
	if !ok {
		t.Fatal("no beta")
	}
	if math.Abs(b.Mean()-e.MeanHitRate(cov)) > 1e-9 {
		t.Fatal("Beta mean mismatch")
	}
	wantVar := e.Variance(e.MeanHitRate(cov))
	if limit := b.Mean() * (1 - b.Mean()); wantVar >= limit {
		wantVar = limit * 0.999
	}
	if math.Abs(b.Variance()-wantVar)/wantVar > 1e-6 {
		t.Fatalf("Beta variance %v vs want %v", b.Variance(), wantVar)
	}
}

func TestHotSetSize(t *testing.T) {
	e, _ := buildEstimator(t, dataset.WikiAll)
	hs := e.HotSet(0.25)
	if len(hs) != e.Clusters(0.25) {
		t.Fatalf("hot set size %d", len(hs))
	}
}
