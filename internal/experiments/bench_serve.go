package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"vectorliterag/internal/dataset"
	"vectorliterag/internal/rag"
)

// BenchServeFile is where bench-serve records the end-to-end serving
// benchmarks, so the simulation core's performance trajectory is
// tracked across PRs the way BenchFile tracks the retrieval kernels.
const BenchServeFile = "BENCH_serve.json"

// ServeBenchRow is one serving configuration's measurement. Wall time
// covers the run's simulation section only (arrival scheduling plus
// the event loop — see rag.Result.ServeWall), not the offline
// profiling/partitioning work, which is what the retrieval-kernel
// bench already covers.
type ServeBenchRow struct {
	Config        string  `json:"config"`
	Requests      int     `json:"requests"`
	SimSeconds    float64 `json:"sim_seconds"`
	WallSeconds   float64 `json:"wall_seconds"` // best of the repetitions
	SimReqPerSec  float64 `json:"sim_req_per_sec"`
	WallPerSimSec float64 `json:"wall_per_sim_sec"`
	AllocsPerReq  float64 `json:"allocs_per_req"`
	BytesPerReq   float64 `json:"bytes_per_req"`
	// Workers is how many worker goroutines executed the run's shards
	// (1 for the sequential single-timeline engine); GoMaxProcs is the
	// Go scheduler's processor limit when the row was measured. Together
	// they make every wall-clock number interpretable: a workers=8 row
	// measured at gomaxprocs=1 is a concurrency-overhead data point, not
	// a parallel speedup.
	Workers    int `json:"workers"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Attainment and RecallGainPts record the serving-quality side of
	// the row, so BENCH_serve.json carries recall-vs-attainment points
	// alongside throughput. Both are omitted for rows that predate the
	// fields; RecallGainPts is nonzero only for precision-refined runs.
	Attainment    float64 `json:"attainment,omitempty"`
	RecallGainPts float64 `json:"recall_gain_pts,omitempty"`
}

// serveRunStats is one serving run's measurement, as reported by a
// serveBenchCase closure.
type serveRunStats struct {
	n      int
	wall   time.Duration
	allocs uint64
	bytes  uint64
	att    float64
	gain   float64 // recall points
}

// ServeBenchResult is the bench-serve sweep: one row per serving
// scenario (single replica, cluster, adaptive, multi-tenant). Baseline
// holds the rows recorded before the allocation-free serving-core
// rewrite (PR 5); it is carried forward verbatim from the existing
// BENCH_serve.json so every later run reports its speedup against the
// same "before" point.
type ServeBenchResult struct {
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Baseline   []ServeBenchRow `json:"baseline"`
	Rows       []ServeBenchRow `json:"rows"`
	// Path is the file written ("" in quick mode, which skips the write
	// so tests never litter the tree).
	Path string `json:"-"`
}

// serveBenchCase is one benchmark scenario: run executes a full
// serving run and reports (requests, serve wall, allocs, bytes).
type serveBenchCase struct {
	name    string
	simSec  float64
	workers int // worker goroutines executing the run (1 = sequential)
	reps    int // 0 = the sweep default
	run     func() (serveRunStats, error)
}

// serveBenchCases assembles the four serving scenarios. The tenants
// case is exactly the tenants experiment's quick-mode fair arm — the
// headline configuration whose throughput trajectory the acceptance
// criteria pin.
func serveBenchCases(cfg Config) ([]serveBenchCase, error) {
	w, err := WorkloadFor(dataset.Orcas1K)
	if err != nil {
		return nil, err
	}
	dep := deployments()[1] // Qwen3-32B on the H100 node
	const simSec = 240      // 120 s arrivals + 120 s drain, the run defaults
	single := rag.Options{
		Node: dep.Node, Model: dep.Model, W: w, Kind: rag.VLiteRAG,
		Rate: 30, Seed: cfg.Seed, Duration: 120 * time.Second,
	}
	cluster := single
	cluster.Rate = 60
	precision := cluster
	precision.Precision = &rag.PrecisionOptions{}
	adaptive := rag.AdaptiveOptions{Options: single}
	adaptive.Rate = 20
	adaptive.Drift = []dataset.DriftEvent{{At: 40 * time.Second, Rotate: w.DefaultDriftRotation()}}
	tenants, _, _, err := tenantsOpts(cfg, true)
	if err != nil {
		return nil, err
	}
	cases := []serveBenchCase{
		{name: "single_vliterag_30rps", simSec: simSec, workers: 1, run: func() (serveRunStats, error) {
			r, err := rag.Run(single)
			if err != nil {
				return serveRunStats{}, err
			}
			return serveRunStats{n: r.Generated, wall: r.ServeWall, allocs: r.ServeAllocs,
				bytes: r.ServeBytes, att: r.Summary.Attainment}, nil
		}},
		{name: "cluster_x2_least_loaded_60rps", simSec: simSec, workers: 1, run: func() (serveRunStats, error) {
			r, err := rag.RunCluster(cluster, 2, "least-loaded")
			if err != nil {
				return serveRunStats{}, err
			}
			return serveRunStats{n: r.Generated, wall: r.ServeWall, allocs: r.ServeAllocs,
				bytes: r.ServeBytes, att: r.Summary.Attainment}, nil
		}},
		// The same cluster with the (tier, codec) refinement: the row pairs
		// its recall gain with attainment, so BENCH_serve.json tracks the
		// quality trade alongside the throughput trajectory.
		{name: "cluster_x2_precision_60rps", simSec: simSec, workers: 1, run: func() (serveRunStats, error) {
			r, err := rag.RunCluster(precision, 2, "least-loaded")
			if err != nil {
				return serveRunStats{}, err
			}
			return serveRunStats{n: r.Generated, wall: r.ServeWall, allocs: r.ServeAllocs,
				bytes: r.ServeBytes, att: r.Summary.Attainment, gain: 100 * r.RecallGain}, nil
		}},
		{name: "adaptive_drift_20rps", simSec: simSec, workers: 1, run: func() (serveRunStats, error) {
			r, err := rag.RunAdaptive(adaptive)
			if err != nil {
				return serveRunStats{}, err
			}
			return serveRunStats{n: r.Generated, wall: r.ServeWall, allocs: r.ServeAllocs,
				bytes: r.ServeBytes, att: r.Summary.Attainment}, nil
		}},
		{name: "tenants_quick_fair", simSec: simSec, workers: 1, run: func() (serveRunStats, error) {
			r, err := rag.RunMultiTenant(tenants)
			if err != nil {
				return serveRunStats{}, err
			}
			return serveRunStats{n: r.Generated, wall: r.ServeWall, allocs: r.ServeAllocs,
				bytes: r.ServeBytes, att: r.Attainment}, nil
		}},
	}
	return append(cases, fleetBenchCases(cfg, single)...), nil
}

// fleetBenchCases builds the parallel sharded scaling curve: one fleet
// configuration run at each worker count, so the recorded rows trace
// wall-clock against workers while every row's schedule is identical.
// Full mode is the headline artifact — 100 replicas serving ~10 million
// requests — at workers 1/2/4/8 plus the host's core count; quick mode
// shrinks to an 8-replica fleet at workers 1 and 2 so CI's bench-smoke
// exercises the sharded engine end to end on every commit.
func fleetBenchCases(cfg Config, single rag.Options) []serveBenchCase {
	fleet := single
	fleet.Kind = rag.CPUOnly // per-event retrieval work without per-run repartitioning cost
	fleet.NetDelay = time.Millisecond
	replicas := 100
	fleet.Rate = 3000
	fleet.Duration = 3334 * time.Second // ~10M Poisson arrivals at 3000 req/s
	fleet.Warmup = 60 * time.Second
	fleet.Drain = 60 * time.Second
	workerCounts := []int{1, 2, 4, 8}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 && n != 8 {
		workerCounts = append(workerCounts, n)
	}
	if cfg.Quick {
		replicas = 8
		fleet.Rate = 240
		fleet.Duration = 60 * time.Second
		fleet.Warmup = 10 * time.Second
		fleet.Drain = 30 * time.Second
		workerCounts = []int{1, 2}
	}
	simSec := (fleet.Duration + fleet.Drain).Seconds()
	var cases []serveBenchCase
	for _, w := range workerCounts {
		opts := fleet
		opts.Workers = w
		cases = append(cases, serveBenchCase{
			name:    fmt.Sprintf("fleet_x%d_%.0frps_w%d", replicas, fleet.Rate, w),
			simSec:  simSec,
			workers: w,
			reps:    1, // fleet rows are long; schedule is deterministic, wall noise amortizes
			run: func() (serveRunStats, error) {
				r, err := rag.RunCluster(opts, replicas, "least-loaded")
				if err != nil {
					return serveRunStats{}, err
				}
				return serveRunStats{n: r.Generated, wall: r.ServeWall, allocs: r.ServeAllocs,
					bytes: r.ServeBytes, att: r.Summary.Attainment}, nil
			},
		})
	}
	return cases
}

// BenchServe measures end-to-end serving throughput of the simulation
// core: simulated requests per wall-clock second, wall-clock per
// simulated second, and allocations per request, for each serving
// scenario. Runs are deterministic, so repetitions differ only in wall
// time; each row keeps the best (least-noise) repetition.
func BenchServe(cfg Config) (*ServeBenchResult, error) {
	cases, err := serveBenchCases(cfg)
	if err != nil {
		return nil, err
	}
	reps := 3
	if cfg.Quick {
		reps = 1
	}
	res := &ServeBenchResult{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, c := range cases {
		crep := reps
		if c.reps > 0 {
			crep = c.reps
		}
		var best ServeBenchRow
		for i := 0; i < crep; i++ {
			s, err := c.run()
			if err != nil {
				return nil, fmt.Errorf("bench-serve %s: %w", c.name, err)
			}
			row := ServeBenchRow{
				Config:        c.name,
				Requests:      s.n,
				SimSeconds:    c.simSec,
				WallSeconds:   s.wall.Seconds(),
				SimReqPerSec:  float64(s.n) / s.wall.Seconds(),
				WallPerSimSec: s.wall.Seconds() / c.simSec,
				AllocsPerReq:  float64(s.allocs) / float64(s.n),
				BytesPerReq:   float64(s.bytes) / float64(s.n),
				Workers:       c.workers,
				GoMaxProcs:    runtime.GOMAXPROCS(0),
				Attainment:    s.att,
				RecallGainPts: s.gain,
			}
			if i == 0 || row.WallSeconds < best.WallSeconds {
				best = row
			}
		}
		res.Rows = append(res.Rows, best)
	}

	// Carry the recorded pre-rewrite baseline forward; a first run with
	// no prior file anchors the trajectory at itself.
	res.Baseline = res.Rows
	if blob, err := os.ReadFile(BenchServeFile); err == nil {
		var prev ServeBenchResult
		if json.Unmarshal(blob, &prev) == nil && len(prev.Baseline) > 0 {
			res.Baseline = prev.Baseline
		}
	}

	if !cfg.Quick {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(BenchServeFile, append(blob, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("bench-serve: writing %s: %w", BenchServeFile, err)
		}
		res.Path = BenchServeFile
	}
	return res, nil
}

// baselineFor resolves a config's baseline row, or nil.
func (r *ServeBenchResult) baselineFor(config string) *ServeBenchRow {
	for i := range r.Baseline {
		if r.Baseline[i].Config == config {
			return &r.Baseline[i]
		}
	}
	return nil
}

// Render formats the serving-benchmark table with per-config speedups
// against the recorded baseline.
func (r *ServeBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "End-to-end serving benchmarks (%s/%s, GOMAXPROCS=%d)\n", r.GOOS, r.GOARCH, r.GoMaxProcs)
	b.WriteString("wall time covers the simulation section (arrivals + event loop), best repetition\n")
	t := &table{header: []string{"config", "workers", "requests", "sim-req/s", "wall/sim-s", "allocs/req", "B/req", "attain", "recall +pts", "vs baseline"}}
	for _, row := range r.Rows {
		speed := "n/a"
		if base := r.baselineFor(row.Config); base != nil && base.SimReqPerSec > 0 {
			speed = fmt.Sprintf("%.2fx", row.SimReqPerSec/base.SimReqPerSec)
		}
		t.add(row.Config,
			fmt.Sprintf("%d", row.Workers),
			fmt.Sprintf("%d", row.Requests),
			fmt.Sprintf("%.0f", row.SimReqPerSec),
			fmt.Sprintf("%.6f", row.WallPerSimSec),
			fmt.Sprintf("%.2f", row.AllocsPerReq),
			fmt.Sprintf("%.1f", row.BytesPerReq),
			f3(row.Attainment),
			f2(row.RecallGainPts),
			speed)
	}
	b.WriteString(t.String())
	if r.Path != "" {
		fmt.Fprintf(&b, "rows written to %s\n", r.Path)
	} else {
		b.WriteString("(quick mode: " + BenchServeFile + " not written)\n")
	}
	return b.String()
}

// CSV exports one row per (phase, config).
func (r *ServeBenchResult) CSV() string {
	rows := [][]string{}
	emit := func(phase string, rs []ServeBenchRow) {
		for _, row := range rs {
			rows = append(rows, []string{
				phase, row.Config,
				fmt.Sprintf("%d", row.Workers),
				fmt.Sprintf("%d", row.GoMaxProcs),
				fmt.Sprintf("%d", row.Requests),
				fmt.Sprintf("%.0f", row.SimSeconds),
				fmt.Sprintf("%.6f", row.WallSeconds),
				fmt.Sprintf("%.1f", row.SimReqPerSec),
				fmt.Sprintf("%.8f", row.WallPerSimSec),
				fmt.Sprintf("%.2f", row.AllocsPerReq),
				fmt.Sprintf("%.1f", row.BytesPerReq),
				fmt.Sprintf("%.4f", row.Attainment),
				fmt.Sprintf("%.4f", row.RecallGainPts),
			})
		}
	}
	emit("baseline", r.Baseline)
	emit("current", r.Rows)
	return writeCSV([]string{"phase", "config", "workers", "gomaxprocs", "requests", "sim_seconds", "wall_seconds",
		"sim_req_per_sec", "wall_per_sim_sec", "allocs_per_req", "bytes_per_req", "attainment", "recall_gain_pts"}, rows)
}
