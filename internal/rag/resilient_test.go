package rag

import (
	"testing"
	"time"

	"vectorliterag/internal/fault"
	"vectorliterag/internal/serve"
)

// stormOpts is a short resilient cluster run under a scripted storm
// touching all three failure modes.
func stormOpts(t *testing.T) Options {
	t.Helper()
	o := baseOpts(t, VLiteRAG, 30)
	o.Duration = 60 * time.Second
	o.Warmup = 10 * time.Second
	o.Drain = 60 * time.Second
	sched, err := fault.Parse("crash@20s:r0:10s,straggler@35s:r1:8s:x3,bandwidth@45s:r2:8s:x3")
	if err != nil {
		t.Fatal(err)
	}
	o.Faults = sched
	// End-to-end completion (decode included) runs ~4s at this rate, so
	// the timeout must clear that comfortably or the run collapses into
	// a retry storm.
	o.Resilience = &serve.ResilienceConfig{
		Timeout:    8 * time.Second,
		MaxRetries: 2,
		Backoff:    50 * time.Millisecond,
		HedgeDelay: 6 * time.Second,
		Degrade:    true,
	}
	return o
}

func TestResilientClusterStorm(t *testing.T) {
	res, err := RunCluster(stormOpts(t), 3, serve.LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Resilience
	if rep == nil {
		t.Fatal("resilient run returned no resilience report")
	}
	if rep.Stats.Crashes != 1 {
		t.Fatalf("crashes %d, want 1", rep.Stats.Crashes)
	}
	if rep.Stats.FailedOver == 0 {
		t.Fatal("crash with traffic in flight failed nothing over")
	}
	if rep.Stats.Ghosts == 0 {
		t.Fatal("failovers without ghosts: superseded copies vanished instead of draining")
	}
	if rep.Goodput <= 0 {
		t.Fatalf("goodput %v, want > 0", rep.Goodput)
	}
	if len(rep.Recoveries) != 1 || rep.Recoveries[0] <= 0 {
		t.Fatalf("recoveries %v, want one positive time-to-recover", rep.Recoveries)
	}
	if rep.Recoveries[0] > 30*time.Second {
		t.Fatalf("time-to-recover %v implausibly long for a 2s-timeout run", rep.Recoveries[0])
	}
	// The cluster kept serving: most requests completed despite losing a
	// third of capacity for 10s of a 60s window.
	if res.Summary.N == 0 || res.Summary.Unserved > res.Summary.N/4 {
		t.Fatalf("%d of %d unserved under the storm with retries on", res.Summary.Unserved, res.Summary.N)
	}
	// The crashed replica took no traffic while down: its share is well
	// under a fair third.
	total := 0
	for _, rr := range res.PerReplica {
		total += rr.Submitted
	}
	if res.PerReplica[0].Submitted >= total/3 {
		t.Fatalf("crashed replica took %d of %d routed copies — health tracking is not steering", res.PerReplica[0].Submitted, total)
	}
}

// TestResilientDeterministicAcrossWorkers pins the acceptance bar:
// identical storms produce bit-identical artifacts for any Workers
// value (the resilient path always runs the single shared timeline).
func TestResilientDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *ClusterResult {
		o := stormOpts(t)
		o.Workers = workers
		res, err := RunCluster(o, 3, serve.LeastLoaded)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 4} {
		res := run(workers)
		if res.Resilience.Stats != ref.Resilience.Stats {
			t.Fatalf("workers=%d: stats %+v diverged from %+v", workers, res.Resilience.Stats, ref.Resilience.Stats)
		}
		if res.Resilience.Goodput != ref.Resilience.Goodput {
			t.Fatalf("workers=%d: goodput %v != %v", workers, res.Resilience.Goodput, ref.Resilience.Goodput)
		}
		if len(res.Requests) != len(ref.Requests) {
			t.Fatalf("workers=%d: %d records != %d", workers, len(res.Requests), len(ref.Requests))
		}
		for i := range ref.Requests {
			if res.Requests[i] != ref.Requests[i] {
				t.Fatalf("workers=%d: record %d differs: %+v vs %+v", workers, i, res.Requests[i], ref.Requests[i])
			}
		}
	}
}

// TestFaultFreeResilientMatchesRouterLessTimeouts sanity-checks the
// gating: a run with a Resilience config but no faults and generous
// timeouts completes everything, with zero failure-handling actions
// beyond possible hedges.
func TestFaultFreeResilientCompletes(t *testing.T) {
	o := baseOpts(t, VLiteRAG, 20)
	o.Resilience = &serve.ResilienceConfig{Timeout: time.Minute, MaxRetries: 1}
	res, err := RunCluster(o, 2, serve.LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Resilience.Stats
	if st.Crashes != 0 || st.FailedOver != 0 || st.TimedOut != 0 || st.Failed != 0 || st.Ghosts != 0 {
		t.Fatalf("fault-free run took failure actions: %+v", st)
	}
	if res.Summary.Unserved > res.Summary.N/20 {
		t.Fatalf("%d of %d unserved without faults", res.Summary.Unserved, res.Summary.N)
	}
}

func TestResilientValidation(t *testing.T) {
	// Single-node Run rejects fault schedules.
	o := baseOpts(t, VLiteRAG, 10)
	o.Faults = fault.Schedule{{Kind: fault.Crash, Replica: 0, At: time.Second, Duration: time.Second}}
	if _, err := Run(o); err == nil {
		t.Fatal("Run accepted a fault schedule")
	}
	// RunCluster rejects schedules naming replicas the run doesn't have.
	o2 := baseOpts(t, VLiteRAG, 10)
	o2.Faults = fault.Schedule{{Kind: fault.Crash, Replica: 5, At: time.Second, Duration: time.Second}}
	if _, err := RunCluster(o2, 2, serve.LeastLoaded); err == nil {
		t.Fatal("RunCluster accepted an out-of-range replica")
	}
	// And bad resilience configs.
	o3 := baseOpts(t, VLiteRAG, 10)
	o3.Resilience = &serve.ResilienceConfig{MaxRetries: -1}
	if _, err := RunCluster(o3, 2, serve.LeastLoaded); err == nil {
		t.Fatal("RunCluster accepted negative MaxRetries")
	}
}
