package rag

import (
	"testing"
	"time"

	"vectorliterag/internal/workload"
)

func liveOpts(t *testing.T, rate float64) LiveOptions {
	t.Helper()
	return LiveOptions{
		Options: baseOpts(t, VLiteRAG, rate),
		Ingest: IngestOptions{
			InsertRate:    4,
			DeleteRate:    1,
			ReencodeEvery: 10 * time.Second,
		},
	}
}

// TestRunLiveFrozenMatchesRun: with no ingest configured, RunLive is
// Run — identical summary, identical per-request schedule. This is the
// frozen-corpus invariant: adding the subsystem changed nothing for
// runs that don't use it.
func TestRunLiveFrozenMatchesRun(t *testing.T) {
	opts := baseOpts(t, VLiteRAG, 12)
	frozen, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	live, err := RunLive(LiveOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if live.Summary.Attainment != frozen.Summary.Attainment ||
		live.Summary.TTFT.P90 != frozen.Summary.TTFT.P90 ||
		live.Summary.E2E.P99 != frozen.Summary.E2E.P99 ||
		live.Generated != frozen.Generated ||
		live.AvgBatch != frozen.AvgBatch {
		t.Fatalf("frozen RunLive diverged from Run:\n%+v\nvs\n%+v", live.Summary, frozen.Summary)
	}
	if len(live.Requests) != len(frozen.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(live.Requests), len(frozen.Requests))
	}
	for i := range frozen.Requests {
		a, b := &frozen.Requests[i], &live.Requests[i]
		if a.ArrivalAt != b.ArrivalAt || a.FirstToken != b.FirstToken || a.Done != b.Done {
			t.Fatalf("request %d schedule diverged: %+v vs %+v", i, a, b)
		}
	}
	if len(live.Mutations) != 0 || live.Freshness.Inserts != 0 || live.Reencodes != 0 {
		t.Fatalf("frozen run reports ingest activity: %+v", live.Freshness)
	}
}

// TestRunLiveStreamingIngest: a streaming run applies mutations on the
// serving timeline, folds them on the re-encode cadence, and reports
// freshness next to the request summary.
func TestRunLiveStreamingIngest(t *testing.T) {
	res, err := RunLive(liveOpts(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Freshness
	if f.Inserts < 100 || f.Deletes < 20 {
		t.Fatalf("too few mutations counted: %+v", f)
	}
	if res.Reencodes < 4 {
		t.Fatalf("only %d re-encodes in 60s at 10s cadence", res.Reencodes)
	}
	if f.TTS.P50 <= 0 || f.TTS.P99 < f.TTS.P50 {
		t.Fatalf("implausible time-to-searchable quantiles: %+v", f.TTS)
	}
	if f.Attainment <= 0.5 {
		t.Fatalf("freshness attainment %.3f implausibly low", f.Attainment)
	}
	if res.SizeSkew <= 0 || res.ResidualRatio <= 0 {
		t.Fatalf("drift trackers unset: skew %v, residual %v", res.SizeSkew, res.ResidualRatio)
	}
	// Serving survives the overlay: the live arm holds most of the
	// frozen arm's attainment (the experiment pins the exact margin).
	frozen, err := Run(baseOpts(t, VLiteRAG, 12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Attainment < 0.90*frozen.Summary.Attainment {
		t.Fatalf("live attainment %.3f collapsed vs frozen %.3f",
			res.Summary.Attainment, frozen.Summary.Attainment)
	}
}

// TestRunLiveDeterministic: identical options give bit-identical
// results, and Workers is schedule-irrelevant (one shared timeline).
func TestRunLiveDeterministic(t *testing.T) {
	a, err := RunLive(liveOpts(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	opts := liveOpts(t, 12)
	opts.Workers = 4
	b, err := RunLive(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Attainment != b.Summary.Attainment ||
		a.Summary.TTFT.P99 != b.Summary.TTFT.P99 ||
		a.Freshness != b.Freshness ||
		len(a.Mutations) != len(b.Mutations) {
		t.Fatalf("identical live runs diverged:\n%+v\nvs\n%+v", a.Freshness, b.Freshness)
	}
	for i := range a.Mutations {
		ma, mb := &a.Mutations[i], &b.Mutations[i]
		if ma.ArrivalAt != mb.ArrivalAt || ma.AppliedAt != mb.AppliedAt || ma.ID != mb.ID {
			t.Fatalf("mutation %d diverged: %+v vs %+v", i, ma, mb)
		}
	}
}

// TestRunLiveValidation: malformed ingest knobs fail fast.
func TestRunLiveValidation(t *testing.T) {
	opts := liveOpts(t, 12)
	opts.Ingest.InsertRate = -1
	if _, err := RunLive(opts); err == nil {
		t.Fatal("negative insert rate accepted")
	}
	opts = liveOpts(t, 12)
	opts.Ingest.ReencodeEvery = -time.Second
	if _, err := RunLive(opts); err == nil {
		t.Fatal("negative re-encode interval accepted")
	}
	opts = liveOpts(t, 12)
	opts.Ingest.Compaction = true
	opts.Kind = CPUOnly
	if _, err := RunLive(opts); err == nil {
		t.Fatal("compaction on a non-hot-swappable engine accepted")
	}
	opts = liveOpts(t, 12)
	opts.Ingest.InsertSchedule = workload.ConstantSchedule{Rate: 0} // zero max rate: invalid
	if _, err := RunLive(opts); err == nil {
		t.Fatal("invalid mutation schedule accepted")
	}
}
