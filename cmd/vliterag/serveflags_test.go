package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateServeFlags(t *testing.T) {
	cases := []struct {
		name       string
		rate       float64
		replicas   int
		workers    int
		timeoutMS  int
		timeoutSet bool
		ingest     ingestFlags
		brownout   brownoutFlags
		wantErr    string // substring; "" means valid
	}{
		{name: "defaults", rate: 30, replicas: 1, workers: 8},
		{name: "zero rate", rate: 0, replicas: 1, workers: 8, wantErr: "-rate"},
		{name: "negative rate", rate: -5, replicas: 1, workers: 8, wantErr: "-rate"},
		{name: "zero replicas", rate: 30, replicas: 0, workers: 8, wantErr: "-replicas"},
		{name: "negative replicas", rate: 30, replicas: -2, workers: 8, wantErr: "-replicas"},
		{name: "zero workers", rate: 30, replicas: 2, workers: 0, wantErr: "-workers"},
		{name: "negative workers", rate: 30, replicas: 2, workers: -1, wantErr: "-workers"},
		{name: "explicit zero timeout", rate: 30, replicas: 2, workers: 8, timeoutMS: 0, timeoutSet: true, wantErr: "-timeout-ms"},
		{name: "negative timeout", rate: 30, replicas: 2, workers: 8, timeoutMS: -100, timeoutSet: true, wantErr: "-timeout-ms"},
		{name: "unset timeout default", rate: 30, replicas: 2, workers: 8, timeoutMS: 0, timeoutSet: false},
		{name: "valid timeout", rate: 30, replicas: 2, workers: 8, timeoutMS: 8000, timeoutSet: true},
		{name: "valid ingest", rate: 30, replicas: 1, workers: 8,
			ingest: ingestFlags{on: true, insertRate: 4, deleteRate: 1, reencodeEvery: 25 * time.Second, tuned: true}},
		{name: "ingest zero rates", rate: 30, replicas: 1, workers: 8,
			ingest: ingestFlags{on: true, reencodeEvery: 25 * time.Second}},
		{name: "ingest tuning without -ingest", rate: 30, replicas: 1, workers: 8,
			ingest: ingestFlags{insertRate: 4, reencodeEvery: 25 * time.Second, tuned: true}, wantErr: "-ingest"},
		{name: "negative insert rate", rate: 30, replicas: 1, workers: 8,
			ingest: ingestFlags{on: true, insertRate: -4, reencodeEvery: 25 * time.Second}, wantErr: "-ingest-rate"},
		{name: "negative delete rate", rate: 30, replicas: 1, workers: 8,
			ingest: ingestFlags{on: true, deleteRate: -1, reencodeEvery: 25 * time.Second}, wantErr: "-delete-rate"},
		{name: "zero reencode interval", rate: 30, replicas: 1, workers: 8,
			ingest: ingestFlags{on: true, insertRate: 4}, wantErr: "-reencode-every"},
		{name: "negative reencode interval", rate: 30, replicas: 1, workers: 8,
			ingest: ingestFlags{on: true, insertRate: 4, reencodeEvery: -time.Second}, wantErr: "-reencode-every"},
		{name: "brownout with tenants", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{on: true, tenants: 3}},
		{name: "queue cap with tenants", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{queueCap: 32, capSet: true, tenants: 3}},
		{name: "full brownout group", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{on: true, queueCap: 32, capSet: true, budgets: "350ms:600ms", tenants: 3}},
		{name: "explicit zero queue cap", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{queueCap: 0, capSet: true, tenants: 3}, wantErr: "-queue-cap"},
		{name: "negative queue cap", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{queueCap: -4, capSet: true, tenants: 3}, wantErr: "-queue-cap"},
		{name: "brownout without tenants", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{on: true}, wantErr: "-tenants"},
		{name: "queue cap without tenants", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{queueCap: 32, capSet: true}, wantErr: "-tenants"},
		{name: "brownout on the shared queue", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{on: true, tenants: 3, sharedQueue: true}, wantErr: "-shared-queue"},
		{name: "stage budgets without brownout", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{budgets: "350ms:600ms", tenants: 3}, wantErr: "-brownout"},
		{name: "stage budgets missing a stage", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{on: true, budgets: "350ms", tenants: 3}, wantErr: "-stage-budgets"},
		{name: "stage budgets unparsable", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{on: true, budgets: "fast:slow", tenants: 3}, wantErr: "-stage-budgets"},
		{name: "stage budgets non-positive", rate: 30, replicas: 1, workers: 8,
			brownout: brownoutFlags{on: true, budgets: "350ms:-1s", tenants: 3}, wantErr: "-stage-budgets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateServeFlags(tc.rate, tc.replicas, tc.workers, tc.timeoutMS, tc.timeoutSet, tc.ingest, tc.brownout)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted; want error naming %s", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name %s", err, tc.wantErr)
			}
		})
	}
}

func TestResilienceFromFlags(t *testing.T) {
	// No resilience flags → nil config, any replica count.
	if rc, err := resilienceFromFlags("", 0, 0, 0, false, 1); err != nil || rc != nil {
		t.Fatalf("bare flags: got %v, %v; want nil, nil", rc, err)
	}
	// Any resilience flag on a single replica is rejected.
	if _, err := resilienceFromFlags("crash@10s:r0:5s", 0, 0, 0, false, 1); err == nil {
		t.Fatal("-faults with -replicas 1 accepted")
	}
	if _, err := resilienceFromFlags("", 2, 0, 0, false, 1); err == nil {
		t.Fatal("-retry with -replicas 1 accepted")
	}
	if _, err := resilienceFromFlags("", -1, 0, 0, false, 2); err == nil {
		t.Fatal("negative -retry accepted")
	}
	// Full group translates faithfully.
	rc, err := resilienceFromFlags("crash@10s:r0:5s", 2, 500, 8000, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rc.MaxRetries != 2 || rc.Timeout != 8*time.Second || rc.HedgeDelay != 500*time.Millisecond || rc.HedgeAuto || !rc.Degrade {
		t.Fatalf("config %+v does not match flags", rc)
	}
	// Negative hedge selects the p95-derived delay.
	rc, err = resilienceFromFlags("", 1, -1, 0, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.HedgeAuto || rc.HedgeDelay != 0 {
		t.Fatalf("config %+v: -hedge-ms -1 should set HedgeAuto", rc)
	}
}

func TestParseStageBudgets(t *testing.T) {
	retr, gen, err := parseStageBudgets("350ms:600ms")
	if err != nil || retr != 350*time.Millisecond || gen != 600*time.Millisecond {
		t.Fatalf("350ms:600ms -> %v, %v, %v", retr, gen, err)
	}
	if _, _, err := parseStageBudgets("350ms:600ms:1s"); err == nil {
		t.Fatal("three stages accepted")
	}
	if _, _, err := parseStageBudgets(""); err == nil {
		t.Fatal("empty value accepted")
	}
}
