package main

import (
	"fmt"
	"time"

	vlr "vectorliterag"
)

// ingestFlags carries the streaming-ingest flag group into validation.
// tuned records whether any tuning flag (-ingest-rate, -delete-rate,
// -reencode-every) was explicitly given, so tuning without -ingest is
// rejected instead of silently ignored — the same explicit-vs-default
// distinction timeoutSet draws for -timeout-ms.
type ingestFlags struct {
	on            bool
	insertRate    float64
	deleteRate    float64
	reencodeEvery time.Duration
	tuned         bool
}

// validateServeFlags rejects nonsensical serve parameters up front, in
// the style of serve.ResolvePolicy's error: name the knob, echo the bad
// value, state what is accepted. timeoutSet distinguishes an explicit
// -timeout-ms 0 (rejected — a zero deadline would fail everything) from
// the flag never being given (timeouts simply stay off).
func validateServeFlags(rate float64, replicas, workers, timeoutMS int, timeoutSet bool, ing ingestFlags) error {
	if rate <= 0 {
		return fmt.Errorf("serve: -rate must be positive (have %g)", rate)
	}
	if replicas <= 0 {
		return fmt.Errorf("serve: -replicas must be positive (have %d)", replicas)
	}
	if workers <= 0 {
		return fmt.Errorf("serve: -workers must be positive (have %d)", workers)
	}
	if timeoutSet && timeoutMS <= 0 {
		return fmt.Errorf("serve: -timeout-ms must be positive (have %d)", timeoutMS)
	}
	if ing.tuned && !ing.on {
		return fmt.Errorf("serve: -ingest-rate/-delete-rate/-reencode-every tune the mutation stream and need -ingest")
	}
	if ing.on {
		if ing.insertRate < 0 {
			return fmt.Errorf("serve: -ingest-rate must be non-negative (have %g)", ing.insertRate)
		}
		if ing.deleteRate < 0 {
			return fmt.Errorf("serve: -delete-rate must be non-negative (have %g)", ing.deleteRate)
		}
		if ing.reencodeEvery <= 0 {
			return fmt.Errorf("serve: -reencode-every must be positive (have %v)", ing.reencodeEvery)
		}
	}
	return nil
}

// resilienceFromFlags translates the failure-handling flag group into a
// ResilienceConfig, or nil when none of its flags is set. The resilient
// path needs spare replicas to fail over to, so any flag in the group
// requires -replicas > 1.
func resilienceFromFlags(faults string, retry, hedgeMS, timeoutMS int, degrade bool, replicas int) (*vlr.ResilienceConfig, error) {
	if faults == "" && retry == 0 && hedgeMS == 0 && timeoutMS == 0 && !degrade {
		return nil, nil
	}
	if replicas < 2 {
		return nil, fmt.Errorf("serve: -faults/-retry/-hedge-ms/-timeout-ms/-degrade need replicas to fail over to (have -replicas %d, want > 1)", replicas)
	}
	if retry < 0 {
		return nil, fmt.Errorf("serve: -retry must be non-negative (have %d)", retry)
	}
	rc := &vlr.ResilienceConfig{
		MaxRetries: retry,
		Timeout:    time.Duration(timeoutMS) * time.Millisecond,
		Degrade:    degrade,
	}
	switch {
	case hedgeMS > 0:
		rc.HedgeDelay = time.Duration(hedgeMS) * time.Millisecond
	case hedgeMS < 0:
		rc.HedgeAuto = true
	}
	return rc, nil
}
