package partition

import (
	"fmt"
	"sort"

	"vectorliterag/internal/profiler"
	"vectorliterag/internal/splitter"
)

// PrecisionInputs parameterizes the (tier, codec) refinement that runs
// after Algorithm 1 has fixed the placement point: which hot clusters
// to upgrade from PQ to SQ8 within a bounded HBM budget, and which
// cold clusters to demote to the NVMe tier.
type PrecisionInputs struct {
	Prof *profiler.AccessProfile
	Plan *splitter.Plan
	// RecallDeltas is the per-cluster recall gain of an SQ8 upgrade
	// (profiler.SQRecallDeltas).
	RecallDeltas []float64
	// SQRatio is SQ8 bytes per PQ byte (Spec.Dim / Spec.CodeBytes).
	SQRatio float64
	// SQBudgetBytes bounds the extra HBM the upgrades may consume.
	SQBudgetBytes int64
	// NVMeColdShare demotes the coldest CPU-resident clusters carrying
	// at most this share of profiled accesses (0 disables demotion).
	NVMeColdShare float64
}

// AssignPrecision is the greedy marginal-benefit loop of the joint
// placement x precision optimization. Placement (Algorithm 1) has
// already decided *where* each cluster lives; this pass decides *how*
// it is stored there:
//
//   - SQ upgrades: hot clusters ranked by marginal recall per extra
//     HBM byte (access-weighted recall delta over the SQ8-PQ size
//     difference), taken greedily until the budget is exhausted. The
//     upgrade never evicts a placed cluster — it only spends bytes the
//     placement loop left to the KV pool — so the modeled attainment
//     of the placement decision is never reduced by construction (the
//     Eq. 1 proxy prices only the CPU miss path, which upgrades do not
//     touch); what an upgrade buys at serve time is a faster streaming
//     kernel and the recall delta.
//   - NVMe demotion: walking the hot order from the coldest end, cold
//     clusters are demoted while their cumulative access share stays
//     within NVMeColdShare — the clusters whose page-read latency is
//     amortized over the fewest queries.
//
// Ties break toward lower cluster IDs, so the assignment is
// deterministic for a fixed profile.
func AssignPrecision(in PrecisionInputs) (*splitter.Precision, error) {
	if in.Prof == nil || in.Plan == nil {
		return nil, fmt.Errorf("partition: missing precision inputs")
	}
	if in.SQRatio <= 1 {
		return nil, fmt.Errorf("partition: SQRatio %v must exceed 1 (SQ8 codes are larger than PQ)", in.SQRatio)
	}
	if in.NVMeColdShare < 0 || in.NVMeColdShare >= 1 {
		return nil, fmt.Errorf("partition: NVMeColdShare %v outside [0,1)", in.NVMeColdShare)
	}
	nlist := len(in.Prof.Counts)
	prec := &splitter.Precision{
		SQ:      make([]bool, nlist),
		NVMe:    make([]bool, nlist),
		Deltas:  append([]float64(nil), in.RecallDeltas...),
		SQRatio: in.SQRatio,
	}

	// SQ upgrades: score = access-weighted recall delta per extra byte.
	type cand struct {
		c     int
		score float64
		extra int64
	}
	cands := make([]cand, 0, len(in.Plan.HotClusters))
	for _, c := range in.Plan.HotClusters {
		if c >= len(in.RecallDeltas) || in.RecallDeltas[c] <= 0 || in.Prof.Counts[c] == 0 {
			continue
		}
		extra := int64(float64(in.Prof.W.ClusterBytes(c)) * (in.SQRatio - 1))
		if extra <= 0 {
			continue
		}
		cands = append(cands, cand{
			c:     c,
			score: in.RecallDeltas[c] * float64(in.Prof.Counts[c]) / float64(extra),
			extra: extra,
		})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].c < cands[b].c
	})
	budget := in.SQBudgetBytes
	for _, cd := range cands {
		if cd.extra > budget {
			continue // a smaller, lower-ranked cluster may still fit
		}
		budget -= cd.extra
		prec.SQ[cd.c] = true
		prec.SQClusters++
		prec.SQExtraBytes += cd.extra
	}

	// NVMe demotion: coldest-first suffix of the hot order (everything
	// past the placement cut is cold by construction).
	if in.NVMeColdShare > 0 {
		var total int64
		for _, cnt := range in.Prof.Counts {
			total += cnt
		}
		var cum int64
		for i := len(in.Prof.HotOrder) - 1; i >= 0; i-- {
			c := in.Prof.HotOrder[i]
			if in.Plan.IsHot(c) {
				break
			}
			cum += in.Prof.Counts[c]
			if total > 0 && float64(cum) > in.NVMeColdShare*float64(total) {
				break
			}
			prec.NVMe[c] = true
			prec.NVMeClusters++
			prec.NVMeBytes += in.Prof.W.ClusterBytes(c)
		}
	}

	// Planning estimate of the mean per-query recall gain: the
	// work-share-weighted average delta over the corpus (the runtime
	// weights each probed SQ cluster by its byte share of the query's
	// scan; weighting by accesses x bytes is the profile-level analog).
	var gain, work float64
	for c := 0; c < nlist; c++ {
		w := float64(in.Prof.Counts[c]) * float64(in.Prof.W.ClusterBytes(c))
		work += w
		if prec.SQ[c] {
			gain += w * in.RecallDeltas[c]
		}
	}
	if work > 0 {
		prec.RecallGain = gain / work
	}
	return prec, nil
}
