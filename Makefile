# Developer entry points. CI runs `make verify`, `make bench-smoke`,
# `make examples-smoke`, `make fuzz-smoke`, and `make cover-check`.

GO ?= go

# Per-target budget for fuzz-smoke runs.
FUZZTIME ?= 5s

# Coverage ratchet: `make cover-check` fails below this total (the
# measured baseline at the time the gate was added was 76.6%; the
# resilience layer raised it to 77.3%, the streaming-ingest layer to
# 79.4%, and the mixed-precision and overload-control layers to
# 79.9%). Raise it when coverage improves; never lower it to make CI
# pass.
COVER_MIN ?= 79.0

.PHONY: verify build test vet lint race bench bench-search bench-serve bench-smoke scaling-smoke examples-smoke fuzz-smoke cover cover-check cover-ratchet fmt

verify: vet lint build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet when the tool is on PATH; a quiet no-op
# otherwise so verify works in hermetic containers without network
# access to install it.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

# Full micro-benchmark sweep (one iteration each; sanity, not timing).
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Timed search-kernel benchmarks — the numbers tracked in
# BENCH_search.json (see also `vliterag run -exp bench`).
bench-search:
	$(GO) test -run=NONE -bench=Search -benchmem -benchtime=2s ./...

# Timed end-to-end serving benchmarks — simulated-requests/sec,
# wall-clock per simulated second, and allocs/request for the serving
# scenarios, recorded with before/after rows in BENCH_serve.json (see
# also `vliterag run -exp bench-serve`, which honors
# -cpuprofile/-memprofile for profiling the serving loop directly).
bench-serve:
	$(GO) run ./cmd/vliterag run -exp bench-serve

# One-iteration compile-and-run of the search kernel benchmarks, a
# quick-mode bench-serve pass, and quick faults + ingest + overload
# runs (the resilience, live-corpus, and overload-control paths
# end-to-end through the CLI); CI runs this so none of them can rot.
bench-smoke:
	$(GO) test -run=NONE -bench=Search -benchtime=1x ./...
	$(GO) run ./cmd/vliterag run -exp bench-serve -quick
	$(GO) run ./cmd/vliterag run -exp faults -quick
	$(GO) run ./cmd/vliterag run -exp ingest -quick
	$(GO) run ./cmd/vliterag run -exp precision -quick
	$(GO) run ./cmd/vliterag run -exp overload -quick

# Wall-clock scaling assertion for the parallel sharded engine: a
# replicated cluster run must finish >=1.5x faster on 4 workers than on
# 1. Needs a quiet host with >=4 cores (the test skips itself
# otherwise), so it is its own target rather than part of `race`/`test`.
scaling-smoke:
	SCALING_SMOKE=1 $(GO) test ./internal/rag -run TestWorkerScalingSmoke -v -count=1

# Run every example binary in quick mode. `go test` only compiles the
# examples; this actually executes them, so their output paths cannot
# rot. CI runs it.
examples-smoke:
	@set -e; for d in ./examples/*/; do \
		echo "==> $$d"; \
		$(GO) run "$$d" -quick; \
	done

# Run each native fuzz target briefly (seed corpora are checked in
# under testdata/fuzz). CI runs this so the targets cannot rot; local
# deep fuzzing just raises FUZZTIME.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz='^FuzzScanCodes$$' -fuzztime=$(FUZZTIME) ./internal/pq
	$(GO) test -run=NONE -fuzz='^FuzzScanCodesIDs$$' -fuzztime=$(FUZZTIME) ./internal/pq
	$(GO) test -run=NONE -fuzz='^FuzzScanCodesMasked$$' -fuzztime=$(FUZZTIME) ./internal/pq
	$(GO) test -run=NONE -fuzz='^FuzzScanCodesIDsMasked$$' -fuzztime=$(FUZZTIME) ./internal/pq
	$(GO) test -run=NONE -fuzz='^FuzzScanSQ$$' -fuzztime=$(FUZZTIME) ./internal/pq
	$(GO) test -run=NONE -fuzz='^FuzzScanSQIDs$$' -fuzztime=$(FUZZTIME) ./internal/pq
	$(GO) test -run=NONE -fuzz='^FuzzScanSQMasked$$' -fuzztime=$(FUZZTIME) ./internal/pq
	$(GO) test -run=NONE -fuzz='^FuzzScanSQIDsMasked$$' -fuzztime=$(FUZZTIME) ./internal/pq
	$(GO) test -run=NONE -fuzz='^FuzzTopK$$' -fuzztime=$(FUZZTIME) ./internal/vecmath

# Per-package coverage plus the total.
cover:
	$(GO) test -cover -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1

# Ratcheting coverage gate: fail when total statement coverage drops
# below COVER_MIN. cover-ratchet only inspects an existing cover.out,
# so CI can produce the profile from its (race) test run instead of
# running the suite twice.
cover-check: cover cover-ratchet

cover-ratchet:
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	awk -v t=$$total -v min=$(COVER_MIN) 'BEGIN { \
		if (t+0 < min+0) { printf "FAIL: coverage %.1f%% below ratchet %.1f%%\n", t, min; exit 1 } \
		printf "coverage %.1f%% >= ratchet %.1f%%\n", t, min }'

fmt:
	gofmt -l -w .
