package metrics

import (
	"math"
	"testing"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		want   float64
	}{
		{"empty", nil, 0},
		// Equal-even-if-zero shares are perfectly fair: an all-zero
		// attainment vector means every tenant fared identically.
		{"all zero", []float64{0, 0, 0}, 1},
		{"single zero", []float64{0}, 1},
		{"equal", []float64{0.9, 0.9, 0.9}, 1},
		{"single", []float64{0.5}, 1},
		{"monopoly", []float64{1, 0, 0, 0}, 0.25},
		{"skewed", []float64{1, 0.5}, (1.5 * 1.5) / (2 * 1.25)},
	}
	for _, tc := range cases {
		if got := JainIndex(tc.values); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: JainIndex = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestJainIndexBounds(t *testing.T) {
	vals := []float64{0.93, 0.41, 0.77, 0.12, 0.99}
	j := JainIndex(vals)
	if j < 1.0/float64(len(vals)) || j > 1 {
		t.Fatalf("Jain index %v outside [1/n, 1]", j)
	}
}
