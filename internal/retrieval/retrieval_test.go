package retrieval

import (
	"testing"
	"time"

	"vectorliterag/internal/costmodel"
	"vectorliterag/internal/dataset"
	"vectorliterag/internal/des"
	"vectorliterag/internal/gpu"
	"vectorliterag/internal/hw"
	"vectorliterag/internal/profiler"
	"vectorliterag/internal/splitter"
	"vectorliterag/internal/workload"
)

type fixture struct {
	sim  *des.Sim
	w    *dataset.Workload
	prof *profiler.AccessProfile
	node hw.Node
	done []*workload.Request
	cfg  Config
	gpus []*gpu.State
	gm   costmodel.GPUScanModel
}

func setup(t *testing.T) *fixture {
	t.Helper()
	gc := dataset.GenConfig{NCenters: 64, PerCenter: 64, Dim: 16, PhysNList: 64, PhysNProbe: 8, Templates: 256, Seed: 5}
	w, err := dataset.Build(dataset.Orcas1K, gc)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profiler.CollectAccess(w, 3000, 41)
	if err != nil {
		t.Fatal(err)
	}
	node := hw.H100Node()
	f := &fixture{sim: &des.Sim{}, w: w, prof: prof, node: node, gm: costmodel.GPUScanModel{GPU: node.GPU}}
	f.gpus = gpu.NewStates(node)
	f.cfg = Config{
		Sim:      f.sim,
		W:        w,
		CPUModel: costmodel.NewSearchModel(node.CPU, w.Spec),
		Forward:  func(r *workload.Request) { f.done = append(f.done, r) },
	}
	return f
}

func (f *fixture) requests(n int) []*workload.Request {
	out := make([]*workload.Request, n)
	for i := range out {
		out[i] = &workload.Request{ID: i, Query: dataset.QueryID(i % f.w.Templates()), Shape: workload.DefaultShape()}
	}
	return out
}

func (f *fixture) plan(t *testing.T, coverage float64, shards int) *splitter.Plan {
	t.Helper()
	plan, err := splitter.Build(f.prof, coverage, shards)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestCPUOnlyCompletesAll(t *testing.T) {
	f := setup(t)
	e := NewCPUOnly(f.cfg)
	reqs := f.requests(5)
	f.sim.At(0, func() {
		for _, r := range reqs {
			e.Submit(r)
		}
	})
	f.sim.Run()
	if len(f.done) != 5 {
		t.Fatalf("forwarded %d of 5", len(f.done))
	}
	for _, r := range f.done {
		if r.SearchDone <= r.SearchStart {
			t.Fatalf("bad search window: %d..%d", r.SearchStart, r.SearchDone)
		}
	}
}

func TestCPUOnlyBatchLatencyMatchesModel(t *testing.T) {
	f := setup(t)
	e := NewCPUOnly(f.cfg)
	reqs := f.requests(4)
	f.sim.At(0, func() {
		for _, r := range reqs {
			e.Submit(r)
		}
	})
	f.sim.Run()
	// First request arrived at an idle engine, so it forms a batch of 1;
	// the remaining 3 form the second batch. Check the second batch's
	// service time against the model.
	var per []int64
	var total int64
	for _, r := range reqs[1:] {
		b := f.w.ScanBytesAll(r.Query)
		per = append(per, b)
		total += b
	}
	_ = per
	want := f.cfg.CPUModel.CQTime(3) + f.cfg.CPUModel.LUTTime(total, 3) + mergeCost
	got := time.Duration(reqs[1].SearchDone - reqs[1].SearchStart)
	if got != want {
		t.Fatalf("batch-of-3 latency %v, want %v", got, want)
	}
}

func TestDynamicBatchingGrowsUnderBacklog(t *testing.T) {
	f := setup(t)
	e := NewCPUOnly(f.cfg)
	// Submit 1 (forms batch of 1), then 30 during its service.
	reqs := f.requests(31)
	f.sim.At(0, func() { e.Submit(reqs[0]) })
	f.sim.At(1000, func() {
		for _, r := range reqs[1:] {
			e.Submit(r)
		}
	})
	f.sim.Run()
	if e.AvgBatch() < 10 {
		t.Fatalf("avg batch %v; backlog should have batched", e.AvgBatch())
	}
	// All 30 latecomers completed at the same time (batch semantics).
	end := reqs[1].SearchDone
	for _, r := range reqs[2:] {
		if r.SearchDone != end {
			t.Fatal("CPU-only batch did not complete together")
		}
	}
}

func TestMaxBatchCap(t *testing.T) {
	f := setup(t)
	f.cfg.MaxBatch = 8
	e := NewCPUOnly(f.cfg)
	reqs := f.requests(20)
	f.sim.At(0, func() {
		for _, r := range reqs {
			e.Submit(r)
		}
	})
	f.sim.Run()
	if len(f.done) != 20 {
		t.Fatalf("forwarded %d", len(f.done))
	}
	if e.AvgBatch() > 8 {
		t.Fatalf("avg batch %v exceeds cap", e.AvgBatch())
	}
}

func TestHybridFasterThanCPUOnly(t *testing.T) {
	f := setup(t)
	plan := f.plan(t, 0.3, 8)
	hy := NewHybrid(f.cfg, plan, f.gpus, f.gm)
	reqs := f.requests(6)
	f.sim.At(0, func() {
		for _, r := range reqs {
			hy.Submit(r)
		}
	})
	f.sim.Run()

	f2 := setup(t)
	cp := NewCPUOnly(f2.cfg)
	reqs2 := f2.requests(6)
	f2.sim.At(0, func() {
		for _, r := range reqs2 {
			cp.Submit(r)
		}
	})
	f2.sim.Run()

	// Compare the batch-of-5 service times (first request forms its own
	// batch in both runs).
	hyLat := reqs[1].SearchDone - reqs[1].SearchStart
	cpLat := reqs2[1].SearchDone - reqs2[1].SearchStart
	if hyLat >= cpLat {
		t.Fatalf("hybrid (%v) not faster than CPU-only (%v) at 30%% coverage", hyLat, cpLat)
	}
}

func TestHybridDispatcherPromotesEarly(t *testing.T) {
	f := setup(t)
	plan := f.plan(t, 0.3, 8)
	hy := NewHybrid(f.cfg, plan, f.gpus, f.gm)
	reqs := f.requests(12)
	f.sim.At(0, func() {
		for _, r := range reqs {
			hy.Submit(r)
		}
	})
	f.sim.Run()
	batch := reqs[1:] // the batch of 11
	var minDone, maxDone des.Time = 1 << 62, 0
	for _, r := range batch {
		if r.SearchDone < minDone {
			minDone = r.SearchDone
		}
		if r.SearchDone > maxDone {
			maxDone = r.SearchDone
		}
	}
	if minDone >= maxDone {
		t.Fatal("dispatcher produced no completion spread within the batch")
	}
}

func TestHybridDispatcherOffCompletesTogether(t *testing.T) {
	f := setup(t)
	plan := f.plan(t, 0.3, 8)
	hy := NewHybrid(f.cfg, plan, f.gpus, f.gm)
	hy.Dispatcher = false
	reqs := f.requests(12)
	f.sim.At(0, func() {
		for _, r := range reqs {
			hy.Submit(r)
		}
	})
	f.sim.Run()
	end := reqs[1].SearchDone
	for _, r := range reqs[2:] {
		if r.SearchDone != end {
			t.Fatal("dispatcher-off batch did not complete together")
		}
	}
}

func TestHybridDispatcherImprovesAverage(t *testing.T) {
	// Fig. 14: the dispatcher reduces average search latency.
	run := func(disp bool) float64 {
		f := setup(t)
		plan := f.plan(t, 0.3, 8)
		hy := NewHybrid(f.cfg, plan, f.gpus, f.gm)
		hy.Dispatcher = disp
		reqs := f.requests(16)
		f.sim.At(0, func() {
			for _, r := range reqs {
				hy.Submit(r)
			}
		})
		f.sim.Run()
		var sum float64
		for _, r := range reqs[1:] {
			sum += float64(r.SearchDone - r.SearchStart)
		}
		return sum / float64(len(reqs)-1)
	}
	on := run(true)
	off := run(false)
	if on >= off {
		t.Fatalf("dispatcher did not improve average: on=%v off=%v", on, off)
	}
}

func TestHybridMarksGPUBusy(t *testing.T) {
	f := setup(t)
	plan := f.plan(t, 0.3, 8)
	hy := NewHybrid(f.cfg, plan, f.gpus, f.gm)
	reqs := f.requests(4)
	f.sim.At(0, func() {
		for _, r := range reqs {
			hy.Submit(r)
		}
	})
	f.sim.Run()
	var any bool
	for _, g := range f.gpus {
		if g.RetrievalBusyUntil() > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no GPU marked busy by hybrid kernels")
	}
}

func TestHybridZeroCoverageDegradesToCPU(t *testing.T) {
	f := setup(t)
	plan := f.plan(t, 0, 8)
	hy := NewHybrid(f.cfg, plan, f.gpus, f.gm)
	reqs := f.requests(3)
	f.sim.At(0, func() {
		for _, r := range reqs {
			hy.Submit(r)
		}
	})
	f.sim.Run()
	if len(f.done) != 3 {
		t.Fatalf("forwarded %d", len(f.done))
	}
	for _, g := range f.gpus {
		if g.RetrievalBusyUntil() > 0 {
			t.Fatal("zero-coverage plan touched a GPU")
		}
	}
}

func TestAllGPUFastButBusy(t *testing.T) {
	f := setup(t)
	plan := f.plan(t, 1.0, 8)
	e := NewAllGPU(f.cfg, plan, f.gpus, f.gm)
	reqs := f.requests(6)
	f.sim.At(0, func() {
		for _, r := range reqs {
			e.Submit(r)
		}
	})
	f.sim.Run()
	if len(f.done) != 6 {
		t.Fatalf("forwarded %d", len(f.done))
	}
	// Full GPU residency: search is far below the CPU baseline.
	lat := time.Duration(reqs[1].SearchDone - reqs[1].SearchStart)
	if lat > 100*time.Millisecond {
		t.Fatalf("ALL-GPU batch latency %v too slow", lat)
	}
	busy := 0
	for _, g := range f.gpus {
		if g.RetrievalBusyUntil() > 0 {
			busy++
		}
	}
	if busy != 8 {
		t.Fatalf("only %d GPUs marked busy", busy)
	}
}

func TestUnprunedProbingSlowerThanPruned(t *testing.T) {
	// The router's probe pruning (§IV-B1): at equal coverage and equal
	// batch, the hybrid engine's shard kernels launch far fewer blocks
	// than IndexIVFShards-style probing, so its GPU phase is faster.
	f := setup(t)
	plan := f.plan(t, 0.3, 8)
	reqsH := f.requests(8)
	hy := NewHybrid(f.cfg, plan, f.gpus, f.gm)
	f.sim.At(0, func() {
		for _, r := range reqsH {
			hy.Submit(r)
		}
	})
	f.sim.Run()

	f2 := setup(t)
	plan2 := f2.plan(t, 0.3, 8)
	reqsU := f2.requests(8)
	he := NewHedra(f2.cfg, plan2, f2.gpus, f2.gm)
	f2.sim.At(0, func() {
		for _, r := range reqsU {
			he.Submit(r)
		}
	})
	f2.sim.Run()

	// Compare the max GPU busy horizon (kernel time) of the two runs.
	var hyBusy, heBusy des.Time
	for i := range f.gpus {
		if b := f.gpus[i].RetrievalBusyUntil(); b > hyBusy {
			hyBusy = b
		}
		if b := f2.gpus[i].RetrievalBusyUntil(); b > heBusy {
			heBusy = b
		}
	}
	if hyBusy >= heBusy {
		t.Fatalf("pruned kernels (%v) not faster than unpruned (%v)", hyBusy, heBusy)
	}
}

func TestDedGPUName(t *testing.T) {
	f := setup(t)
	plan := f.plan(t, 1.0, 2)
	e := NewDedGPU(f.cfg, plan, f.gpus[:2], f.gm)
	if e.Name() != "DED-GPU" {
		t.Fatalf("name = %q", e.Name())
	}
	reqs := f.requests(3)
	f.sim.At(0, func() {
		for _, r := range reqs {
			e.Submit(r)
		}
	})
	f.sim.Run()
	if len(f.done) != 3 {
		t.Fatalf("forwarded %d", len(f.done))
	}
}

func TestSearchStartStampsQueueing(t *testing.T) {
	f := setup(t)
	e := NewCPUOnly(f.cfg)
	r1 := f.requests(2)
	f.sim.At(0, func() { e.Submit(r1[0]) })
	f.sim.At(1000, func() { e.Submit(r1[1]) }) // arrives while busy
	f.sim.Run()
	if r1[1].SearchStart <= 1000 {
		t.Fatal("second request's SearchStart should reflect queueing")
	}
	if r1[1].ArrivalAt != 0 { // ArrivalAt is set by the generator, not the engine
		t.Log("engines must not touch ArrivalAt")
	}
}
