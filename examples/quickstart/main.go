// Quickstart: build a workload, run the offline hybrid-index
// construction, and serve traffic on every system — the 60-second tour
// of the library.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	vlr "vectorliterag"
)

func main() {
	quick := flag.Bool("quick", false, "shorter serving windows for smoke tests")
	flag.Parse()
	var duration time.Duration // zero = library default (120s)
	if *quick {
		duration = 40 * time.Second
	}

	// 1. Build the ORCAS-1K workload: a real IVF-PQ index over a
	// synthetic corpus whose query skew matches the paper's Fig. 5
	// characterization (this trains k-means and PQ codebooks — a few
	// seconds).
	fmt.Println("building ORCAS-1K workload...")
	w, err := vlr.NewWorkload(vlr.Orcas1K)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline construction (paper §IV-A): profile access skew, fit
	// the latency model, run the latency-bounded partitioning, split the
	// hot clusters into GPU shards.
	sys, err := vlr.BuildSystem(vlr.SystemOptions{Workload: w, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid index: cache %.1f%% of clusters = %.1f GB on GPUs\n",
		sys.Rho*100, float64(sys.PlanBytes)/1e9)
	fmt.Printf("planned batch %d, mean hit rate %.2f, batch-min hit rate %.2f\n",
		sys.Partition.ExpectedBatch, sys.MeanHitRate, sys.TailHitRate)
	fmt.Printf("online rebuild cycle would take %v\n\n", sys.Rebuild.Total().Round(1e6))

	// 3. Serve 30 req/s on each system and compare (Fig. 11 style).
	fmt.Printf("%-10s %-6s %-10s %-10s %-8s\n", "system", "rho", "attainment", "TTFT p90", "search")
	for _, system := range []vlr.System{vlr.CPUOnly, vlr.DedGPU, vlr.AllGPU, vlr.VLiteRAG} {
		rep, err := vlr.Serve(vlr.ServeOptions{
			Workload: w, System: system, Rate: 30, Seed: 1, Duration: duration,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-6.3f %-10.3f %-10v %-8v\n",
			system, rep.Rho, rep.Summary.Attainment,
			rep.Summary.TTFT.P90.Round(1e6), rep.Summary.Breakdown.Search.Round(1e6))
	}
}
